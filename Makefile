# Tier-1 entry point: `make check` is what CI (and the ROADMAP's
# tier-1 verify) runs.  It must stay green on every commit.

GO ?= go

.PHONY: check build test vet fmt fuzz

check: fmt vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails (and lists the files) if anything is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short fuzz session over the parser round-trip corpus (not part of
# `check`; the committed seeds already run under plain `go test`).
fuzz:
	$(GO) test ./internal/ir/ -fuzz FuzzParseRoundTrip -fuzztime 30s
