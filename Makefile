# Tier-1 entry point: `make check` is what CI (and the ROADMAP's
# tier-1 verify) runs.  It must stay green on every commit.

GO ?= go

.PHONY: check build test race vet fmt lint fuzz fuzz-smoke bench bench-hotpath bench-hotpath-smoke bench-serve-smoke

check: fmt vet lint build test race fuzz-smoke bench-hotpath-smoke bench-serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The service and the parallel drivers make concurrency a first-class
# feature; the race detector keeps it honest.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Repo-invariant linter (cmd/eprelint): CFG edges only written through
# the marking helpers, deterministic pass bodies (no wall clock, no
# map-order-dependent output), scratch-arena borrows always released.
# Runs beside go vet; both are part of `check`.
lint:
	$(GO) run ./cmd/eprelint .
	$(GO) vet ./...

# Fails (and lists the files) if anything is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short fuzz sessions over the parser round-trip corpus and the PL/0
# front end (not part of `check`; the committed seeds already run under
# plain `go test`).
fuzz:
	$(GO) test ./internal/ir/ -fuzz FuzzParseRoundTrip -fuzztime 30s
	$(GO) test ./internal/pl0/ -fuzz FuzzPL0Parse -fuzztime 30s

# Differential-fuzzing smoke test, part of `check`: 200 generated
# programs at fixed seeds, every optimization level interpreted
# against the unoptimized reference, then 200 more in each
# cross-backend mode (-gvn-diff: the GVN-carrying levels run under
# both the AWZ and the precise backend; -pre-diff: the PRE-carrying
# levels run under drechsler, lcm and lospre — the independent
# implementations oracle each other).  Any miscompile, verifier
# reject, panic, or runaway exits nonzero with a shrunk reproducer.
fuzz-smoke:
	$(GO) run ./cmd/epre fuzz -seed 1 -n 200 -workers 4
	$(GO) run ./cmd/epre fuzz -seed 1000 -n 200 -workers 4 -gvn-diff
	$(GO) run ./cmd/epre fuzz -seed 2000 -n 200 -workers 4 -pre-diff
	$(GO) run ./cmd/epre fuzz -seed 3000 -n 150 -workers 4 -call-heavy \
		-gvn-diff -pre-diff

# Performance tracking: Go micro-benchmarks, the serve/table1 bench
# (single-flight dedup assertion, analysis-cache counts into
# BENCH_passmgr.json, hot-path allocation profile into
# BENCH_hotpath.json), and the loadgen corpus replay that owns
# BENCH_serve.json (single/batch/warm-restart scenarios with HDR
# latency histograms and counter deltas).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/epre bench -passmgr-out BENCH_passmgr.json \
		-hotpath-out BENCH_hotpath.json
	$(GO) run ./cmd/epre loadgen -out BENCH_serve.json

# Hot-path allocation report alone, in short mode (quick regression
# probe: a few optimizer runs per level, pooled vs pool-disabled).
bench-hotpath:
	$(GO) run ./cmd/epre bench -out /dev/null -passmgr-out '' -requests 8 \
		-concurrency 4 -parallel 2 -hotpath-out BENCH_hotpath.json -hotpath-iters 3

# Hot-path smoke, part of `check`: one measurement iteration per level,
# report discarded.  The run exits nonzero unless the pooled and
# pool-ablated pipelines emit byte-identical ILOC at every level, so
# this is the determinism assertion, not a timing measurement —
# numbers land in BENCH_hotpath.json via `make bench-hotpath`.
bench-hotpath-smoke:
	$(GO) run ./cmd/epre bench -out /dev/null -passmgr-out '' -requests 1 \
		-concurrency 1 -hotpath-out /dev/null -hotpath-iters 1

# Serve-tier smoke, part of `check`: a tiny loadgen replay through the
# single, batch and warm-restart scenarios with response verification
# on — every served ILOC must be byte-identical to a direct in-process
# core optimization, across the memory-cache, batch and disk-warmed
# paths, with zero request errors.  Report discarded; numbers land in
# BENCH_serve.json via `make bench`.
bench-serve-smoke:
	$(GO) run ./cmd/epre loadgen -out '' -requests 24 -corpus-n 6 \
		-workers 4 -batch 6
	$(GO) run ./cmd/epre loadgen -out '' -requests 16 -corpus suite \
		-workers 4 -batch 4
