package epre

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/minift"
	"repro/internal/reassoc"
	"repro/internal/regalloc"
	"repro/internal/suite"
)

// The benchmarks regenerate every table and figure of the paper's
// evaluation:
//
//	BenchmarkTable1            — Table 1: dynamic op counts per routine
//	                             per optimization level (reported as the
//	                             "dynops" metric)
//	BenchmarkTable2ForwardProp — Table 2: static code expansion from
//	                             forward propagation ("expansion" metric)
//	BenchmarkRunningExample    — Figures 2–10: the foo pipeline
//	BenchmarkCSEHierarchy      — §5.3: dominator CSE vs AVAIL CSE vs PRE
//	BenchmarkDistributionLoss  — §4.2: the 4×(ri−1)/8×(ri−1) case
//	BenchmarkPeepholeOrdering  — §5.2: mul→shift before vs after
//	                             reassociation
//	BenchmarkAblation*         — design-choice ablations from DESIGN.md
//
// Wall-clock numbers measure the optimizer itself; the paper's actual
// metric is the reported dynops/expansion value.

// BenchmarkTable1 regenerates Table 1: for every suite routine and
// level, optimize and interpret, reporting dynamic operations.
func BenchmarkTable1(b *testing.B) {
	for _, r := range suite.All() {
		for _, level := range core.Levels {
			b.Run(fmt.Sprintf("%s/%s", r.Name, level), func(b *testing.B) {
				var ops int64
				for i := 0; i < b.N; i++ {
					n, err := suite.RunRoutine(r, level)
					if err != nil {
						b.Fatal(err)
					}
					ops = n
				}
				b.ReportMetric(float64(ops), "dynops")
			})
		}
	}
}

// BenchmarkTable2ForwardProp regenerates Table 2: static instruction
// counts before and after forward propagation.
func BenchmarkTable2ForwardProp(b *testing.B) {
	for _, r := range suite.All() {
		b.Run(r.Name, func(b *testing.B) {
			var expansion float64
			for i := 0; i < b.N; i++ {
				prog, err := r.Compile()
				if err != nil {
					b.Fatal(err)
				}
				before, after := 0, 0
				for _, f := range prog.Funcs {
					st := reassoc.Run(f, reassoc.DefaultOptions())
					before += st.BeforeProp
					after += st.AfterProp
				}
				expansion = float64(after) / float64(before)
			}
			b.ReportMetric(expansion, "expansion")
		})
	}
}

const runningExampleSrc = `
func foo(y: int, z: int): int {
    var s: int = 0
    var x: int = y + z
    for i = x to 100 {
        s = 1 + s + x
    }
    return s
}
`

// BenchmarkRunningExample regenerates the Figures 2–10 walkthrough:
// the full distribution-level pipeline over the paper's foo, reporting
// the dynamic count for foo(1,2) at each level.
func BenchmarkRunningExample(b *testing.B) {
	for _, level := range core.Levels {
		b.Run(string(level), func(b *testing.B) {
			var ops int64
			for i := 0; i < b.N; i++ {
				prog, err := minift.Compile(runningExampleSrc)
				if err != nil {
					b.Fatal(err)
				}
				opt, err := core.Optimize(prog, level)
				if err != nil {
					b.Fatal(err)
				}
				m := interp.NewMachine(opt)
				if _, err := m.Call("foo", interp.IntVal(1), interp.IntVal(2)); err != nil {
					b.Fatal(err)
				}
				ops = m.Steps
			}
			b.ReportMetric(float64(ops), "dynops")
		})
	}
}

// hierarchySrc is the §5.3 containment program (see examples/pipelines).
const hierarchySrc = `
program globalsize=0

func diamond(r1, r2) {
b0:
    enter(r1, r2)
    loadI 10 => r3
    cmpLT r1, r3 => r4
    cbr r4 -> b1, b2
b1:
    add r1, r2 => r10
    mul r10, r10 => r5
    jump -> b3
b2:
    add r1, r2 => r10
    sub r1, r2 => r8
    add r10, r8 => r5
    jump -> b3
b3:
    add r1, r2 => r10
    add r5, r10 => r7
    sub r1, r2 => r8
    add r7, r8 => r9
    ret r9
}
`

// BenchmarkCSEHierarchy regenerates §5.3: the three redundancy
// eliminators on the diamond program, reporting the dynamic count of
// the b2 path (where PRE's partial-redundancy conversion pays off).
func BenchmarkCSEHierarchy(b *testing.B) {
	schemes := []struct {
		name   string
		passes []string
	}{
		{"dominator", []string{"cse-dom"}},
		{"avail", []string{"cse-avail"}},
		{"pre", []string{"normalize", "pre", "dce", "coalesce", "emptyblocks"}},
	}
	for _, s := range schemes {
		b.Run(s.name, func(b *testing.B) {
			var ops int64
			for i := 0; i < b.N; i++ {
				prog, err := ParseILOC(hierarchySrc)
				if err != nil {
					b.Fatal(err)
				}
				opt, err := prog.OptimizePasses(s.passes...)
				if err != nil {
					b.Fatal(err)
				}
				res, err := opt.Run("diamond", Int(100), Int(2)) // b2 path
				if err != nil {
					b.Fatal(err)
				}
				ops = res.DynamicOps
			}
			b.ReportMetric(float64(ops), "dynops")
		})
	}
}

// distLossSrc is §4.2's distribution example: parallel accesses to a
// single-precision and a double-precision array share the subterm
// (i−1); distributing 4× and 8× over it loses the common
// subexpression.
const distLossSrc = `
func kernel(n: int, s: [*]real4, d: [*]real) {
    for i = 1 to n {
        d[i] = d[i] + s[i]
    }
}

func driver(n: int): real {
    var s: [64]real4
    var d: [64]real
    for i = 1 to n {
        s[i] = real(i)
        d[i] = real(2 * i)
    }
    kernel(n, s, d)
    var t: real = 0.0
    for i = 1 to n {
        t = t + d[i]
    }
    return t
}
`

// BenchmarkDistributionLoss regenerates the §4.2 distribution case:
// reassociation vs distribution on the two-element-size kernel.  The
// paper notes the distributed version "is slightly worse than the
// original code since the original allowed commoning of the
// subexpression ri − 1".
func BenchmarkDistributionLoss(b *testing.B) {
	for _, level := range []core.Level{core.LevelReassoc, core.LevelDist} {
		b.Run(string(level), func(b *testing.B) {
			var ops int64
			for i := 0; i < b.N; i++ {
				prog, err := Compile(distLossSrc)
				if err != nil {
					b.Fatal(err)
				}
				opt, err := prog.Optimize(level)
				if err != nil {
					b.Fatal(err)
				}
				res, err := opt.Run("driver", Int(48))
				if err != nil {
					b.Fatal(err)
				}
				ops = res.DynamicOps
			}
			b.ReportMetric(float64(ops), "dynops")
		})
	}
}

// shiftSrc is §5.2's interaction case, shaped as ((x×z)×2)×y with x
// and y loop-invariant and z varying: converting ×2 into a shift
// before reassociation freezes the association as shl(x×z,1)×y, so
// the invariant product 2·x·y can no longer be grouped and hoisted —
// "if ((x×y)×2)×z is prematurely converted into ((x×y)≪1)×z, we lose
// the opportunity to group z with either x or y".
const shiftSrc = `
func driver(x: int, y: int, n: int): int {
    var s: int = 0
    for z = 1 to n {
        s = s + x * z * 2 * y
    }
    return s
}
`

// BenchmarkPeepholeOrdering regenerates §5.2: running the
// shift-converting peephole before reassociation versus only after.
// "Since shifts are not associative, this optimization should not be
// performed until after global reassociation."
func BenchmarkPeepholeOrdering(b *testing.B) {
	orders := []struct {
		name   string
		passes []string
	}{
		{"shift-after-reassoc", []string{"reassoc", "gvn", "normalize", "pre", "sccp", "peephole-shift", "dce", "coalesce", "emptyblocks", "dce"}},
		{"shift-before-reassoc", []string{"peephole-shift", "reassoc", "gvn", "normalize", "pre", "sccp", "peephole-shift", "dce", "coalesce", "emptyblocks", "dce"}},
	}
	for _, o := range orders {
		b.Run(o.name, func(b *testing.B) {
			var ops int64
			for i := 0; i < b.N; i++ {
				prog, err := Compile(shiftSrc)
				if err != nil {
					b.Fatal(err)
				}
				opt, err := prog.OptimizePasses(o.passes...)
				if err != nil {
					b.Fatal(err)
				}
				res, err := opt.Run("driver", Int(3), Int(7), Int(50))
				if err != nil {
					b.Fatal(err)
				}
				ops = res.DynamicOps
			}
			b.ReportMetric(float64(ops), "dynops")
		})
	}
}

// BenchmarkAblationGVN measures the reassociation level with and
// without global value numbering before PRE — the naming half of the
// paper's contribution (DESIGN.md ablation).
func BenchmarkAblationGVN(b *testing.B) {
	pipelines := []struct {
		name   string
		passes []string
	}{
		{"with-gvn", []string{"reassoc", "gvn", "normalize", "pre", "sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"}},
		{"without-gvn", []string{"reassoc", "normalize", "pre", "sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"}},
	}
	routines := []string{"sgemv", "deseco", "tomcatv"}
	for _, name := range routines {
		r, ok := suite.ByName(name)
		if !ok {
			b.Fatalf("no suite routine %q", name)
		}
		for _, p := range pipelines {
			b.Run(r.Name+"/"+p.name, func(b *testing.B) {
				var ops int64
				for i := 0; i < b.N; i++ {
					prog, err := Compile(r.Source)
					if err != nil {
						b.Fatal(err)
					}
					opt, err := prog.OptimizePasses(p.passes...)
					if err != nil {
						b.Fatal(err)
					}
					res, err := opt.Run(r.Driver, r.Args...)
					if err != nil {
						b.Fatal(err)
					}
					ops = res.DynamicOps
				}
				b.ReportMetric(float64(ops), "dynops")
			})
		}
	}
}

// BenchmarkAblationDupLimit measures the multi-use duplication bound
// of forward propagation (Options.MaxDupSize): unbounded duplication
// explodes repeated-squaring code (see the x21y21 routine).
func BenchmarkAblationDupLimit(b *testing.B) {
	r, ok := suite.ByName("x21y21")
	if !ok {
		b.Fatal("no x21y21 routine")
	}
	limits := []struct {
		name string
		max  int
	}{
		{"default", 0},
		{"unbounded", 1 << 20},
	}
	for _, lim := range limits {
		b.Run(lim.name, func(b *testing.B) {
			var ops int64
			for i := 0; i < b.N; i++ {
				prog, err := r.Compile()
				if err != nil {
					b.Fatal(err)
				}
				for _, f := range prog.Funcs {
					reassoc.Run(f, reassoc.Options{AllowFloat: true, MaxDupSize: lim.max})
				}
				opt, err := core.Optimize(prog, core.LevelPartial) // gvn+pre+baseline tail
				if err != nil {
					b.Fatal(err)
				}
				m := interp.NewMachine(opt)
				v, err := m.Call(r.Driver, r.Args...)
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Check(v); err != nil {
					b.Fatal(err)
				}
				ops = m.Steps
			}
			b.ReportMetric(float64(ops), "dynops")
		})
	}
}

// BenchmarkOptimizerSpeed measures the optimizer's own throughput (the
// engineering cost of the transformations), independent of the
// dynamic-count metric.
func BenchmarkOptimizerSpeed(b *testing.B) {
	r, ok := suite.ByName("tomcatv")
	if !ok {
		b.Fatal("no tomcatv routine")
	}
	prog, err := r.Compile()
	if err != nil {
		b.Fatal(err)
	}
	for _, level := range core.Levels {
		b.Run(string(level), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Optimize(prog, level); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRegisterPressure measures, at a fixed register file size,
// how many values each optimization level forces the Chaitin–Briggs
// allocator to spill and what the spill code costs dynamically.
// Forward propagation and PRE's hoisted temporaries lengthen live
// ranges (the flip side of §4.3's space discussion), so the levels
// differ in pressure as well as in operation counts.
func BenchmarkRegisterPressure(b *testing.B) {
	r, ok := suite.ByName("tomcatv")
	if !ok {
		b.Fatal("no tomcatv")
	}
	const k = 12
	for _, level := range core.Levels {
		b.Run(string(level), func(b *testing.B) {
			var spills int
			var ops int64
			for i := 0; i < b.N; i++ {
				prog, err := r.Compile()
				if err != nil {
					b.Fatal(err)
				}
				opt, err := core.Optimize(prog, level)
				if err != nil {
					b.Fatal(err)
				}
				res, err := regalloc.Run(opt, k)
				if err != nil {
					b.Fatal(err)
				}
				m := interp.NewMachine(opt)
				v, err := m.Call(r.Driver, r.Args...)
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Check(v); err != nil {
					b.Fatal(err)
				}
				spills = res.Spilled
				ops = m.Steps
			}
			b.ReportMetric(float64(spills), "spills")
			b.ReportMetric(float64(ops), "dynops")
		})
	}
}
