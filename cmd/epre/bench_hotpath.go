package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/suite"
)

// hotpathReport is the BENCH_hotpath.json schema: the optimizer's own
// allocation profile per level, measured with the scratch pools live
// and again with them ablated (dataflow.SetPoolEnabled(false), which
// makes every Get a fresh allocation).  The reduction percentages are
// the hot-path allocation overhaul's headline numbers, and
// identical_output pins the determinism contract: pooling must never
// change what the optimizer emits.
type hotpathReport struct {
	Timestamp       string            `json:"timestamp"`
	GoMaxProcs      int               `json:"gomaxprocs"`
	PipelineVersion string            `json:"pipeline_version"`
	Routine         string            `json:"routine"`
	Iters           int               `json:"iters"`
	Levels          []hotpathLevelRow `json:"levels"`
}

type hotpathLevelRow struct {
	Level             string         `json:"level"`
	Pooled            hotpathMeasure `json:"pooled"`
	PoolDisabled      hotpathMeasure `json:"pool_disabled"`
	AllocReductionPct float64        `json:"alloc_reduction_pct"`
	IdenticalOutput   bool           `json:"identical_output"`
}

type hotpathMeasure struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// measureHotpath optimizes prog at level iters times and reports
// wall-clock and allocation cost per run, from runtime.MemStats deltas
// (single-goroutine, so Mallocs/TotalAlloc deltas are exact).
func measureHotpath(prog *ir.Program, level core.Level, iters int) (hotpathMeasure, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := core.Optimize(prog, level); err != nil {
			return hotpathMeasure{}, err
		}
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return hotpathMeasure{
		NsPerOp:     float64(wall.Nanoseconds()) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
	}, nil
}

// benchHotpath measures the pooled-vs-ablated allocation profile over
// the largest suite routine and writes the JSON report.
func benchHotpath(outPath string, iters int, stdout io.Writer) error {
	const routine = "tomcatv"
	r, ok := suite.ByName(routine)
	if !ok {
		return fmt.Errorf("bench: no suite routine %q", routine)
	}
	prog, err := r.Compile()
	if err != nil {
		return err
	}
	rep := &hotpathReport{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		PipelineVersion: core.PipelineVersion(),
		Routine:         routine,
		Iters:           iters,
	}
	defer dataflow.SetPoolEnabled(dataflow.SetPoolEnabled(true)) // restore on exit
	for _, level := range core.Levels {
		// Determinism first: the pooled and the ablated run must emit
		// byte-identical code.
		dataflow.SetPoolEnabled(true)
		pooledOut, err := core.Optimize(prog, level)
		if err != nil {
			return err
		}
		dataflow.SetPoolEnabled(false)
		ablatedOut, err := core.Optimize(prog, level)
		if err != nil {
			return err
		}
		identical := pooledOut.String() == ablatedOut.String()
		if !identical {
			return fmt.Errorf("bench: %s: pooled output differs from pool-disabled output", level)
		}

		dataflow.SetPoolEnabled(true)
		pooled, err := measureHotpath(prog, level, iters)
		if err != nil {
			return err
		}
		dataflow.SetPoolEnabled(false)
		ablated, err := measureHotpath(prog, level, iters)
		if err != nil {
			return err
		}
		row := hotpathLevelRow{
			Level:           string(level),
			Pooled:          pooled,
			PoolDisabled:    ablated,
			IdenticalOutput: identical,
		}
		if ablated.AllocsPerOp > 0 {
			row.AllocReductionPct = 100 * (ablated.AllocsPerOp - pooled.AllocsPerOp) / ablated.AllocsPerOp
		}
		rep.Levels = append(rep.Levels, row)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	for _, row := range rep.Levels {
		fmt.Fprintf(stdout, "hotpath %-14s %7.0f allocs/op pooled vs %7.0f ablated (%.0f%% fewer), %.2fms/op\n",
			row.Level, row.Pooled.AllocsPerOp, row.PoolDisabled.AllocsPerOp,
			row.AllocReductionPct, row.Pooled.NsPerOp/1e6)
	}
	fmt.Fprintf(stdout, "report written to %s\n", outPath)
	return nil
}
