package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/suite"
)

// passMgrReport is the BENCH_passmgr.json schema: per Table-1 level,
// the analysis constructions the shared cache actually performed
// against the constructions a cache-per-pass (pre-refactor) run
// performs, over the whole suite corpus.  The reduction percentages
// are the pass-manager refactor's headline numbers.
type passMgrReport struct {
	Timestamp       string            `json:"timestamp"`
	GoMaxProcs      int               `json:"gomaxprocs"`
	PipelineVersion string            `json:"pipeline_version"`
	Routines        int               `json:"routines"`
	Levels          []passMgrLevelRow `json:"levels"`
	Total           passMgrLevelRow   `json:"total"`
}

type passMgrLevelRow struct {
	Level           string          `json:"level,omitempty"`
	Cached          analysis.Builds `json:"cached_builds"`
	Uncached        analysis.Builds `json:"uncached_builds"`
	DomReductionPct float64         `json:"dom_reduction_pct"`
	RPOReductionPct float64         `json:"rpo_reduction_pct"`
	CachedSeconds   float64         `json:"cached_seconds"`
	UncachedSeconds float64         `json:"uncached_seconds"`
}

func reductionPct(uncached, cached uint64) float64 {
	if uncached == 0 {
		return 0
	}
	return 100 * float64(uncached-cached) / float64(uncached)
}

// measureLevelBuilds optimizes every suite routine at one level and
// returns the process-global analysis-construction delta.  The
// interpretation step of RunRoutineOpts builds nothing, so the delta is
// exactly the optimizer's analysis work.
func measureLevelBuilds(level core.Level, opts core.OptimizeOptions) (analysis.Builds, time.Duration, error) {
	before := analysis.GlobalBuilds()
	t0 := time.Now()
	for _, r := range suite.All() {
		if r.Generated() {
			// The reduction numbers are calibrated on the Mini-Fortran
			// corpus; the fuzzer-promoted routines force legitimate
			// rebuilds (trampoline/orphan cleanup mutates the CFG on
			// more passes) that would dilute them.
			continue
		}
		if _, err := suite.RunRoutineOpts(context.Background(), r, level, opts); err != nil {
			return analysis.Builds{}, 0, err
		}
	}
	return analysis.GlobalBuilds().Sub(before), time.Since(t0), nil
}

// benchPassMgr measures the shared analysis cache's effect per level —
// a cached run against a FreshAnalyses (cache-per-pass, the
// pre-refactor behavior) run — and writes the JSON report.
func benchPassMgr(outPath string, stdout io.Writer) error {
	measured := 0
	for _, r := range suite.All() {
		if !r.Generated() {
			measured++
		}
	}
	rep := &passMgrReport{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		PipelineVersion: core.PipelineVersion(),
		Routines:        measured,
	}
	var totalCached, totalUncached analysis.Builds
	var totalCachedWall, totalUncachedWall time.Duration
	for _, level := range core.Levels {
		cached, cachedWall, err := measureLevelBuilds(level, core.OptimizeOptions{})
		if err != nil {
			return err
		}
		uncached, uncachedWall, err := measureLevelBuilds(level, core.OptimizeOptions{FreshAnalyses: true})
		if err != nil {
			return err
		}
		rep.Levels = append(rep.Levels, passMgrLevelRow{
			Level:           string(level),
			Cached:          cached,
			Uncached:        uncached,
			DomReductionPct: reductionPct(uncached.Dom, cached.Dom),
			RPOReductionPct: reductionPct(uncached.RPO, cached.RPO),
			CachedSeconds:   cachedWall.Seconds(),
			UncachedSeconds: uncachedWall.Seconds(),
		})
		totalCached.RPO += cached.RPO
		totalCached.Dom += cached.Dom
		totalCached.Loops += cached.Loops
		totalCached.Liveness += cached.Liveness
		totalUncached.RPO += uncached.RPO
		totalUncached.Dom += uncached.Dom
		totalUncached.Loops += uncached.Loops
		totalUncached.Liveness += uncached.Liveness
		totalCachedWall += cachedWall
		totalUncachedWall += uncachedWall
	}
	rep.Total = passMgrLevelRow{
		Cached:          totalCached,
		Uncached:        totalUncached,
		DomReductionPct: reductionPct(totalUncached.Dom, totalCached.Dom),
		RPOReductionPct: reductionPct(totalUncached.RPO, totalCached.RPO),
		CachedSeconds:   totalCachedWall.Seconds(),
		UncachedSeconds: totalUncachedWall.Seconds(),
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "passmgr: dom builds %d cached vs %d uncached (%.0f%% fewer); rpo %d vs %d (%.0f%% fewer)\n",
		totalCached.Dom, totalUncached.Dom, rep.Total.DomReductionPct,
		totalCached.RPO, totalUncached.RPO, rep.Total.RPOReductionPct)
	fmt.Fprintf(stdout, "report written to %s\n", outPath)
	return nil
}
