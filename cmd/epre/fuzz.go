package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/ir"
)

// sabotageEnv, when set to a level name, wraps the pipeline with a
// deliberate miscompile (every integer add in main flipped to a
// subtract after optimizing at that level).  It exists so the CLI's
// failure path — nonzero exit, FAIL lines, artifact writing — can be
// exercised end to end in tests without shipping a broken pass.
const sabotageEnv = "EPRE_FUZZ_SABOTAGE"

func sabotagedOptimize(levelName string) (difftest.OptimizeFunc, error) {
	target, err := core.ParseLevel(levelName)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", sabotageEnv, err)
	}
	return func(ctx context.Context, p *ir.Program, level core.Level) (*ir.Program, error) {
		out, err := core.OptimizeWith(p, level, core.OptimizeOptions{Ctx: ctx})
		if err != nil || level != target {
			return out, err
		}
		if f := out.Func("main"); f != nil {
			for _, b := range f.Blocks {
				for _, inID := range b.Instrs {
					in := b.Fn.Instr(inID)
					if in.Op == ir.OpAdd {
						in.Op = ir.OpSub
					}
				}
			}
		}
		return out, nil
	}, nil
}

// cmdFuzz runs the differential fuzzing harness: generate random ILOC
// programs, optimize at the requested levels, and compare observable
// behavior against the unoptimized reference interpretation.  The exit
// status is nonzero when any failure is found, so the command doubles
// as a CI gate (see make fuzz-smoke).
func cmdFuzz(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "base seed; program i uses seed+i")
	n := fs.Int("n", 100, "number of programs to generate and test")
	levelSpec := fs.String("level", "all", "level to test (baseline|partial|reassoc|dist|all)")
	workers := fs.Int("workers", 1, "test programs concurrently (report is identical for any worker count)")
	shrink := fs.Bool("shrink", true, "minimize failing programs by delta debugging")
	artifactDir := fs.String("artifact-dir", "", "write failing reproducers into this directory")
	perPass := fs.Bool("per-pass", false, "re-validate miscompiles pass by pass to name the guilty pass")
	gvnDiff := fs.Bool("gvn-diff", false, "cross-backend mode: test every GVN-carrying level with both the awz and precise backends")
	preDiff := fs.Bool("pre-diff", false, "cross-backend mode: test every PRE-carrying level with the drechsler, lcm and lospre backends")
	callHeavy := fs.Bool("call-heavy", false, "force the generator's call-heavy shape: dense call sites and depth-two call chains")
	timeout := fs.Duration("timeout", 0, "overall run deadline (0 = none)")
	stats := fs.Bool("stats", false, "print expvar-style run metrics")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("fuzz: unexpected argument %q", fs.Arg(0))
	}

	var levels []core.Level
	if *levelSpec != "" && *levelSpec != "all" {
		for _, tok := range strings.Split(*levelSpec, ",") {
			lv, err := core.ParseLevel(strings.TrimSpace(tok))
			if err != nil {
				return err
			}
			levels = append(levels, lv)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var optimize difftest.OptimizeFunc
	if lv := os.Getenv(sabotageEnv); lv != "" {
		if *gvnDiff || *preDiff {
			return fmt.Errorf("fuzz: -gvn-diff/-pre-diff cannot be combined with %s", sabotageEnv)
		}
		var err error
		if optimize, err = sabotagedOptimize(lv); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "fuzz: %s=%s — pipeline deliberately broken for testing\n", sabotageEnv, lv)
	}

	metrics := difftest.NewMetrics()
	rep, err := difftest.Run(difftest.Options{
		Optimize:    optimize,
		Ctx:         ctx,
		Seed:        *seed,
		N:           *n,
		Levels:      levels,
		Workers:     *workers,
		Shrink:      *shrink,
		ArtifactDir: *artifactDir,
		PerPass:     *perPass,
		GVNDiff:     *gvnDiff,
		PREDiff:     *preDiff,
		CallHeavy:   *callHeavy,
		Metrics:     metrics,
	})
	if err != nil {
		return err
	}

	for i := range rep.Failures {
		f := &rep.Failures[i]
		fmt.Fprintln(stdout, "FAIL:", f.String())
		if f.Artifact != "" {
			fmt.Fprintf(stdout, "      reproducer: %s\n", f.Artifact)
		}
	}
	rate := float64(rep.Programs) / maxSeconds(rep.Elapsed)
	fmt.Fprintf(stdout, "fuzz: %d programs, %d failures in %s (%.1f programs/sec)\n",
		rep.Programs, len(rep.Failures), rep.Elapsed.Round(time.Millisecond), rate)
	if len(rep.ByKind) > 0 {
		for _, kind := range []difftest.Kind{
			difftest.KindMiscompile, difftest.KindVerifierReject,
			difftest.KindPanic, difftest.KindTimeout,
		} {
			if c := rep.ByKind[kind]; c > 0 {
				fmt.Fprintf(stdout, "fuzz:   %-16s %d\n", kind, c)
			}
		}
	}
	if *stats {
		metrics.WriteTo(stdout)
	}
	if len(rep.Failures) > 0 {
		return fmt.Errorf("fuzz: %d failure(s)", len(rep.Failures))
	}
	return nil
}

func maxSeconds(d time.Duration) float64 {
	if s := d.Seconds(); s > 0 {
		return s
	}
	return 1e-9
}
