package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"flag"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/progen"
	"repro/internal/serve"
	"repro/internal/suite"
)

// loadgenReport is the BENCH_serve.json schema written by `epre
// loadgen`: a deterministic replay of a generated corpus against the
// optimization service, one entry per scenario, each carrying an
// HDR-style latency histogram and the server counters the run moved.
type loadgenReport struct {
	Timestamp       string           `json:"timestamp"`
	Tool            string           `json:"tool"`
	GoMaxProcs      int              `json:"gomaxprocs"`
	PipelineVersion string           `json:"pipeline_version"`
	Level           string           `json:"level"`
	Corpus          string           `json:"corpus"`
	CorpusSeed      uint64           `json:"corpus_seed"`
	CorpusPrograms  int              `json:"corpus_programs"`
	ScheduleSeed    uint64           `json:"schedule_seed"`
	Verified        bool             `json:"verified"`
	Scenarios       []scenarioResult `json:"scenarios"`
	// BatchSpeedup is batch items/sec over single requests/sec, when the
	// default scenario suite ran both.
	BatchSpeedup float64 `json:"batch_speedup,omitempty"`
}

// scenarioResult is one load scenario's outcome.
type scenarioResult struct {
	Name           string  `json:"name"`
	Endpoint       string  `json:"endpoint"`
	Requests       int     `json:"requests"`
	Items          int     `json:"items"`
	Workers        int     `json:"workers"`
	BatchSize      int     `json:"batch_size,omitempty"`
	TargetQPS      float64 `json:"target_qps,omitempty"`
	WallSeconds    float64 `json:"wall_seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	ItemsPerSec    float64 `json:"items_per_sec"`

	// Latency percentiles (per HTTP request) from the histogram, plus
	// the nonzero histogram buckets themselves.
	P50Millis float64      `json:"p50_ms"`
	P90Millis float64      `json:"p90_ms"`
	P99Millis float64      `json:"p99_ms"`
	MaxMillis float64      `json:"max_ms"`
	Histogram []histBucket `json:"latency_histogram"`

	// Counters are the /debug/vars deltas this scenario produced.
	Counters lgCounters `json:"counters"`

	// FirstPassHitRate is set by the warm-restart scenario: the fraction
	// of the first post-restart pass answered without recomputation.
	FirstPassHitRate float64 `json:"first_pass_hit_rate,omitempty"`

	Errors int `json:"errors"`
}

// lgCounters is the server-counter subset a load scenario reports, as a
// before/after delta.
type lgCounters struct {
	Requests          int64 `json:"requests"`
	BatchRequests     int64 `json:"batch_requests"`
	BatchItems        int64 `json:"batch_items"`
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	Shared            int64 `json:"singleflight_shared"`
	DiskHits          int64 `json:"disk_hits"`
	DiskWrites        int64 `json:"disk_writes"`
	DiskWarmed        int64 `json:"disk_warmed"`
	PeerForwards      int64 `json:"peer_forwards"`
	PeerForwardErrors int64 `json:"peer_forward_errors"`
	Rejected          int64 `json:"rejected"`
	Timeouts          int64 `json:"timeouts"`
	Errors            int64 `json:"errors"`
}

func (a lgCounters) sub(b lgCounters) lgCounters {
	return lgCounters{
		Requests:          a.Requests - b.Requests,
		BatchRequests:     a.BatchRequests - b.BatchRequests,
		BatchItems:        a.BatchItems - b.BatchItems,
		CacheHits:         a.CacheHits - b.CacheHits,
		CacheMisses:       a.CacheMisses - b.CacheMisses,
		Shared:            a.Shared - b.Shared,
		DiskHits:          a.DiskHits - b.DiskHits,
		DiskWrites:        a.DiskWrites - b.DiskWrites,
		DiskWarmed:        a.DiskWarmed - b.DiskWarmed,
		PeerForwards:      a.PeerForwards - b.PeerForwards,
		PeerForwardErrors: a.PeerForwardErrors - b.PeerForwardErrors,
		Rejected:          a.Rejected - b.Rejected,
		Timeouts:          a.Timeouts - b.Timeouts,
		Errors:            a.Errors - b.Errors,
	}
}

func snapshotCounters(m *serve.Metrics) lgCounters {
	return lgCounters{
		Requests:          m.Get("requests"),
		BatchRequests:     m.Get("batch_requests"),
		BatchItems:        m.Get("batch_items"),
		CacheHits:         m.Get("cache_hits"),
		CacheMisses:       m.Get("cache_misses"),
		Shared:            m.Get("singleflight_shared"),
		DiskHits:          m.Get("disk_hits"),
		DiskWrites:        m.Get("disk_writes"),
		DiskWarmed:        m.Get("disk_warmed"),
		PeerForwards:      m.Get("peer_forwards"),
		PeerForwardErrors: m.Get("peer_forward_errors"),
		Rejected:          m.Get("rejected"),
		Timeouts:          m.Get("timeouts"),
		Errors:            m.Get("errors"),
	}
}

// ---------------------------------------------------------------------
// HDR-style histogram: log-linear buckets, powers of two subdivided
// into 8 linear sub-buckets, 1µs resolution.  Compact (a few hundred
// buckets cover µs to hours), constant-time insert, and percentile
// queries with bounded relative error (≤ 12.5%) — the standard shape
// for latency recording without keeping every sample.

const histSubBuckets = 8

type lgHist struct {
	counts []int64
	total  int64
	max    time.Duration
}

func histIndex(us int64) int {
	if us < histSubBuckets {
		return int(us)
	}
	exp := bits.Len64(uint64(us)) - 1 // >= 3
	sub := int((us >> uint(exp-3)) & 7)
	return (exp-2)*histSubBuckets + sub
}

// histUpper is the exclusive upper bound of bucket idx, in µs.
func histUpper(idx int) int64 {
	octave := idx / histSubBuckets
	sub := int64(idx % histSubBuckets)
	if octave == 0 {
		return sub + 1
	}
	exp := octave + 2
	width := int64(1) << uint(exp-3)
	return (8+sub)*width + width
}

func (h *lgHist) record(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	idx := histIndex(us)
	for len(h.counts) <= idx {
		h.counts = append(h.counts, 0)
	}
	h.counts[idx]++
	h.total++
	if d > h.max {
		h.max = d
	}
}

func (h *lgHist) merge(o *lgHist) {
	for len(h.counts) < len(o.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the q-quantile in milliseconds (upper bucket edge).
func (h *lgHist) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := int64(q * float64(h.total-1))
	var seen int64
	for i, c := range h.counts {
		seen += c
		if c > 0 && seen > rank {
			return float64(histUpper(i)) / 1000
		}
	}
	return float64(h.max.Microseconds()) / 1000
}

type histBucket struct {
	UpToMillis float64 `json:"up_to_ms"`
	Count      int64   `json:"count"`
}

func (h *lgHist) buckets() []histBucket {
	var out []histBucket
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, histBucket{UpToMillis: float64(histUpper(i)) / 1000, Count: c})
		}
	}
	return out
}

// ---------------------------------------------------------------------
// The load generator proper.

// lgTarget is one server under load: its base URL plus (for in-process
// servers) direct access to the metrics, avoiding an HTTP round trip
// per counter snapshot.
type lgTarget struct {
	base string
	m    *serve.Metrics
}

func (t *lgTarget) counters() (lgCounters, error) {
	if t.m != nil {
		return snapshotCounters(t.m), nil
	}
	resp, err := http.Get(t.base + "/debug/vars")
	if err != nil {
		return lgCounters{}, err
	}
	defer resp.Body.Close()
	var c lgCounters
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		return lgCounters{}, fmt.Errorf("loadgen: bad /debug/vars: %w", err)
	}
	return c, nil
}

// lgRun replays `schedule` (corpus indices) against the target.  With
// batch > 1 consecutive schedule entries are grouped into one
// /optimize/batch request; otherwise each entry is one /optimize call.
// qps > 0 paces request starts open-loop on a deterministic schedule
// (arrival i at i/qps); qps == 0 is closed-loop (workers go full tilt).
// expected, when non-nil, maps corpus index → the ILOC a correct server
// must return; any deviation is an error.
func lgRun(target *lgTarget, name string, corpus []string, schedule []int,
	level string, workers, batch int, qps float64, expected []string) (scenarioResult, error) {

	res := scenarioResult{Name: name, Endpoint: "/optimize", Workers: workers, TargetQPS: qps}
	if batch > 1 {
		res.Endpoint = "/optimize/batch"
		res.BatchSize = batch
	}
	before, err := target.counters()
	if err != nil {
		return res, err
	}

	// Requests: either one schedule entry each, or batch-sized groups.
	type job struct {
		items []int
		due   time.Duration // open-loop arrival offset; 0 in closed loop
	}
	var jobs []job
	if batch > 1 {
		for i := 0; i < len(schedule); i += batch {
			end := i + batch
			if end > len(schedule) {
				end = len(schedule)
			}
			jobs = append(jobs, job{items: schedule[i:end]})
		}
	} else {
		for i := range schedule {
			jobs = append(jobs, job{items: schedule[i : i+1]})
		}
	}
	if qps > 0 {
		for i := range jobs {
			jobs[i].due = time.Duration(float64(i) / qps * float64(time.Second))
		}
	}
	res.Requests = len(jobs)
	res.Items = len(schedule)

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: workers}}
	defer client.CloseIdleConnections()
	jobc := make(chan job)
	errc := make(chan error, workers)
	hists := make([]*lgHist, workers)
	errCounts := make([]int, workers)

	post := func(j job) (time.Duration, error) {
		var body []byte
		var err error
		path := "/optimize"
		if batch > 1 {
			req := serve.BatchRequest{Defaults: &serve.BatchDefaults{Level: level}}
			for _, ci := range j.items {
				req.Items = append(req.Items, serve.OptimizeRequest{Source: corpus[ci]})
			}
			body, err = json.Marshal(&req)
			path = "/optimize/batch"
		} else {
			body, err = json.Marshal(serve.OptimizeRequest{Source: corpus[j.items[0]], Level: level})
		}
		if err != nil {
			return 0, err
		}
		t0 := time.Now()
		resp, err := client.Post(target.base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		lat := time.Since(t0)
		if err != nil {
			return lat, err
		}
		if resp.StatusCode != http.StatusOK {
			return lat, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
		}
		if expected == nil {
			return lat, nil
		}
		if batch > 1 {
			var out serve.BatchResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				return lat, err
			}
			if len(out.Items) != len(j.items) {
				return lat, fmt.Errorf("batch returned %d items, want %d", len(out.Items), len(j.items))
			}
			for k, item := range out.Items {
				if item.Error != "" {
					return lat, fmt.Errorf("batch item %d: %s", k, item.Error)
				}
				if item.ILOC != expected[j.items[k]] {
					return lat, fmt.Errorf("batch item %d: ILOC differs from direct optimization", k)
				}
			}
		} else {
			var out serve.OptimizeResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				return lat, err
			}
			if out.ILOC != expected[j.items[0]] {
				return lat, fmt.Errorf("ILOC differs from direct optimization")
			}
		}
		return lat, nil
	}

	start := time.Now()
	for w := 0; w < workers; w++ {
		h := &lgHist{}
		hists[w] = h
		go func(w int) {
			var firstErr error
			for j := range jobc {
				if j.due > 0 {
					if d := j.due - time.Since(start); d > 0 {
						time.Sleep(d)
					}
				}
				lat, err := post(j)
				h.record(lat)
				if err != nil {
					errCounts[w]++
					if firstErr == nil {
						firstErr = err
					}
				}
			}
			errc <- firstErr
		}(w)
	}
	for _, j := range jobs {
		jobc <- j
	}
	close(jobc)
	var firstErr error
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	wall := time.Since(start)

	hist := &lgHist{}
	for _, h := range hists {
		hist.merge(h)
	}
	for _, n := range errCounts {
		res.Errors += n
	}
	res.WallSeconds = wall.Seconds()
	res.RequestsPerSec = float64(res.Requests) / wall.Seconds()
	res.ItemsPerSec = float64(res.Items) / wall.Seconds()
	res.P50Millis = hist.quantile(0.50)
	res.P90Millis = hist.quantile(0.90)
	res.P99Millis = hist.quantile(0.99)
	res.MaxMillis = float64(hist.max.Microseconds()) / 1000
	res.Histogram = hist.buckets()
	after, err := target.counters()
	if err != nil {
		return res, err
	}
	res.Counters = after.sub(before)
	if firstErr != nil {
		return res, fmt.Errorf("loadgen: %s: %d/%d requests failed; first: %w", name, res.Errors, res.Requests, firstErr)
	}
	return res, nil
}

// startLocalServer boots an in-process daemon for a scenario.
func startLocalServer(cfg serve.Config) (*lgTarget, func(), error) {
	s, err := serve.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go s.Serve(l)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}
	return &lgTarget{base: "http://" + l.Addr().String(), m: s.Metrics()}, stop, nil
}

// cmdLoadgen replays a deterministic corpus against the optimization
// service and writes the BENCH_serve.json report.  Without -addr it
// runs the standard three-scenario suite against in-process servers:
// single-endpoint throughput, batch-endpoint throughput over the same
// schedule, and a warm-restart pass over a persistent cache directory
// (measuring the first-pass hit rate a restarted server gets from disk
// warming).  With -addr it runs one scenario against the given server.
func cmdLoadgen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	out := fs.String("out", "BENCH_serve.json", "report file (empty to skip writing)")
	addr := fs.String("addr", "", "base URL of an already-running server (empty = in-process scenario suite)")
	requests := fs.Int("requests", 400, "schedule length, in programs (items)")
	workers := fs.Int("workers", 16, "concurrent client workers")
	qps := fs.Float64("qps", 0, "open-loop target request rate (0 = closed loop)")
	batch := fs.Int("batch", 32, "items per /optimize/batch request in the batch scenario (or with -addr, >1 selects the batch endpoint)")
	level := fs.String("level", "reassoc", "optimization level for every request")
	corpusKind := fs.String("corpus", "progen", "workload corpus: progen (generated ILOC) or suite (the paper's routines)")
	corpusSeed := fs.Uint64("corpus-seed", 1, "progen corpus seed")
	corpusN := fs.Int("corpus-n", 32, "distinct programs in the progen corpus")
	schedSeed := fs.Uint64("seed", 1, "deterministic request-schedule seed")
	verify := fs.Bool("verify", true, "check every response byte-identical to a direct in-process optimization")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("loadgen: unexpected arguments %v", fs.Args())
	}

	lvl, err := core.ParseLevel(*level)
	if err != nil {
		return err
	}
	var corpus []string
	switch *corpusKind {
	case "progen":
		corpus = progen.Corpus(*corpusSeed, *corpusN)
	case "suite":
		for _, r := range suite.All() {
			corpus = append(corpus, r.Source)
		}
	default:
		return fmt.Errorf("loadgen: unknown corpus %q (want progen or suite)", *corpusKind)
	}
	if len(corpus) == 0 {
		return fmt.Errorf("loadgen: empty corpus")
	}
	if *requests < len(corpus) {
		// Every corpus program appears at least once (the schedule below
		// starts with one full sweep), so the schedule cannot be shorter
		// than the corpus.
		*requests = len(corpus)
	}

	// Deterministic schedule: one full corpus sweep (so every program is
	// computed), then seeded random replay — the steady-state mix of hits
	// over a warmed cache.
	rng := rand.New(rand.NewSource(int64(*schedSeed)))
	schedule := make([]int, *requests)
	for i := range schedule {
		if i < len(corpus) {
			schedule[i] = i
		} else {
			schedule[i] = rng.Intn(len(corpus))
		}
	}

	// Ground truth for -verify: optimize each program directly, in
	// process — the bytes every serving path must reproduce.
	var expected []string
	if *verify {
		expected = make([]string, len(corpus))
		for i, src := range corpus {
			prog, err := parseAny(src)
			if err != nil {
				return fmt.Errorf("loadgen: corpus program %d: %w", i, err)
			}
			direct, err := core.OptimizeWith(prog, lvl, core.OptimizeOptions{})
			if err != nil {
				return fmt.Errorf("loadgen: direct optimization of corpus program %d: %w", i, err)
			}
			expected[i] = direct.String()
		}
	}

	rep := &loadgenReport{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		Tool:            "epre loadgen",
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		PipelineVersion: core.PipelineVersion(),
		Level:           string(lvl),
		Corpus:          *corpusKind,
		CorpusSeed:      *corpusSeed,
		CorpusPrograms:  len(corpus),
		ScheduleSeed:    *schedSeed,
		Verified:        *verify,
	}

	if *addr != "" {
		target := &lgTarget{base: *addr}
		res, err := lgRun(target, "remote", corpus, schedule, *level, *workers, *batch, *qps, expected)
		if err != nil {
			return err
		}
		rep.Scenarios = append(rep.Scenarios, res)
	} else {
		// Scenario 1: single-endpoint throughput on a fresh server.
		target, stop, err := startLocalServer(serve.Config{})
		if err != nil {
			return err
		}
		single, err := lgRun(target, "single", corpus, schedule, *level, *workers, 1, *qps, expected)
		stop()
		if err != nil {
			return err
		}
		rep.Scenarios = append(rep.Scenarios, single)

		// Scenario 2: the same schedule through the batch endpoint on a
		// fresh server — the HTTP/JSON amortization measurement.
		target, stop, err = startLocalServer(serve.Config{})
		if err != nil {
			return err
		}
		batchRes, err := lgRun(target, "batch", corpus, schedule, *level, *workers, *batch, *qps, expected)
		stop()
		if err != nil {
			return err
		}
		rep.Scenarios = append(rep.Scenarios, batchRes)
		if single.ItemsPerSec > 0 {
			rep.BatchSpeedup = batchRes.ItemsPerSec / single.ItemsPerSec
		}

		// Scenario 3: warm restart.  Seed a disk store, restart the
		// server over it, and replay one corpus pass: the fraction
		// answered without recomputation is the warming payoff.
		dir, err := os.MkdirTemp("", "epre-loadgen-cache-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		target, stop, err = startLocalServer(serve.Config{CacheDir: dir})
		if err != nil {
			return err
		}
		if _, err := lgRun(target, "seed", corpus, schedule[:len(corpus)], *level, *workers, *batch, 0, expected); err != nil {
			stop()
			return err
		}
		stop() // the "restart"
		target, stop, err = startLocalServer(serve.Config{CacheDir: dir})
		if err != nil {
			return err
		}
		warm, err := lgRun(target, "warm-restart", corpus, schedule[:len(corpus)], *level, *workers, 1, *qps, expected)
		if abs, cerr := target.counters(); cerr == nil {
			// Warming happens at server startup, before the replay's
			// delta window opens — report it absolutely.
			warm.Counters.DiskWarmed = abs.DiskWarmed
		}
		stop()
		if err != nil {
			return err
		}
		served := warm.Counters.CacheHits + warm.Counters.Shared + warm.Counters.DiskHits
		warm.FirstPassHitRate = float64(served) / float64(len(corpus))
		rep.Scenarios = append(rep.Scenarios, warm)
		if warm.FirstPassHitRate <= 0 {
			return fmt.Errorf("loadgen: warm-restart first-pass hit rate is zero; disk warming is broken")
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	for _, sc := range rep.Scenarios {
		extra := ""
		if sc.FirstPassHitRate > 0 {
			extra = fmt.Sprintf(", first-pass hit rate %.2f", sc.FirstPassHitRate)
		}
		fmt.Fprintf(stdout, "%-13s %5d reqs / %5d items in %6.2fs: %8.1f items/s (p50 %.1fms, p99 %.1fms; %d misses, %d hits%s)\n",
			sc.Name+":", sc.Requests, sc.Items, sc.WallSeconds, sc.ItemsPerSec,
			sc.P50Millis, sc.P99Millis, sc.Counters.CacheMisses, sc.Counters.CacheHits, extra)
	}
	if rep.BatchSpeedup > 0 {
		fmt.Fprintf(stdout, "batch speedup: %.2fx items/s over the single endpoint\n", rep.BatchSpeedup)
	}
	return nil
}

// parseAny compiles any supported source language by sniffing its
// leading keyword, mirroring the service's request parser.
func parseAny(src string) (*ir.Program, error) {
	p, _, err := lang.Compile(src, "")
	return p, err
}
