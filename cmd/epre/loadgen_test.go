package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLoadgenWritesReport: the loadgen subcommand runs its in-process
// scenario suite (single, batch, warm-restart) over a tiny corpus with
// verification on, and writes the BENCH_serve.json schema with the
// fields the acceptance criteria read: batch speedup, first-pass hit
// rate after a restart, zero errors.
func TestLoadgenWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	code, stdout, stderr := runEpre(t, "loadgen",
		"-out", out, "-requests", "24", "-corpus-n", "6", "-workers", "4", "-batch", "6")
	if code != 0 {
		t.Fatalf("loadgen failed: %s\n%s", stderr, stdout)
	}
	if !strings.Contains(stdout, "report written to") || !strings.Contains(stdout, "batch speedup") {
		t.Errorf("missing summary:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgenReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	if rep.Tool != "epre loadgen" || rep.PipelineVersion == "" || !rep.Verified {
		t.Errorf("implausible header: %+v", rep)
	}
	if rep.CorpusPrograms != 6 {
		t.Errorf("corpus_programs = %d, want 6", rep.CorpusPrograms)
	}
	if len(rep.Scenarios) != 3 {
		t.Fatalf("%d scenarios, want 3", len(rep.Scenarios))
	}
	byName := map[string]scenarioResult{}
	for _, sc := range rep.Scenarios {
		byName[sc.Name] = sc
		if sc.Errors != 0 || sc.Counters.Errors != 0 {
			t.Errorf("scenario %s saw errors: %d client, %d server", sc.Name, sc.Errors, sc.Counters.Errors)
		}
		if sc.ItemsPerSec <= 0 || sc.WallSeconds <= 0 {
			t.Errorf("scenario %s has no throughput: %+v", sc.Name, sc)
		}
		if len(sc.Histogram) == 0 || sc.P99Millis < sc.P50Millis {
			t.Errorf("scenario %s histogram implausible: p50=%v p99=%v buckets=%d",
				sc.Name, sc.P50Millis, sc.P99Millis, len(sc.Histogram))
		}
		var total int64
		for _, b := range sc.Histogram {
			total += b.Count
		}
		if total != int64(sc.Requests) {
			t.Errorf("scenario %s histogram holds %d samples for %d requests", sc.Name, total, sc.Requests)
		}
	}
	single, ok1 := byName["single"]
	batch, ok2 := byName["batch"]
	warm, ok3 := byName["warm-restart"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing scenarios: %v", byName)
	}
	// Each fresh server computed every distinct program exactly once;
	// the rest of the schedule was hits.
	if single.Counters.CacheMisses != 6 || batch.Counters.CacheMisses != 6 {
		t.Errorf("misses = %d/%d, want 6/6", single.Counters.CacheMisses, batch.Counters.CacheMisses)
	}
	if single.Items != 24 || batch.Items != 24 {
		t.Errorf("items = %d/%d, want 24/24", single.Items, batch.Items)
	}
	if batch.Requests >= single.Requests {
		t.Errorf("batching did not reduce request count: %d vs %d", batch.Requests, single.Requests)
	}
	if batch.Counters.BatchItems != 24 {
		t.Errorf("batch_items = %d, want 24", batch.Counters.BatchItems)
	}
	if rep.BatchSpeedup <= 0 {
		t.Errorf("batch_speedup = %v, want > 0", rep.BatchSpeedup)
	}
	// The restart-warming acceptance: the first post-restart pass is
	// answered from the warmed cache/disk, not recomputed.
	if warm.FirstPassHitRate <= 0 {
		t.Errorf("first_pass_hit_rate = %v, want > 0", warm.FirstPassHitRate)
	}
	if warm.Counters.CacheMisses != 0 {
		t.Errorf("warm pass recomputed %d programs", warm.Counters.CacheMisses)
	}
	if warm.Counters.DiskWarmed != 6 {
		t.Errorf("disk_warmed = %d, want 6", warm.Counters.DiskWarmed)
	}
}

// TestLoadgenOpenLoop: with -qps the schedule is open-loop — the run
// takes at least requests/qps wall time and still verifies.
func TestLoadgenOpenLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	t0 := time.Now()
	code, _, stderr := runEpre(t, "loadgen",
		"-out", out, "-requests", "8", "-corpus-n", "2", "-workers", "2",
		"-batch", "2", "-qps", "50")
	if code != 0 {
		t.Fatalf("loadgen failed: %s", stderr)
	}
	// Scenario 1 alone paces 8 single requests at 50/s ≈ 140ms.
	if elapsed := time.Since(t0); elapsed < 100*time.Millisecond {
		t.Errorf("open-loop run finished in %v; pacing not applied", elapsed)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgenReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	for _, sc := range rep.Scenarios {
		if sc.Name != "warm-restart" && sc.TargetQPS != 50 {
			t.Errorf("scenario %s target_qps = %v, want 50", sc.Name, sc.TargetQPS)
		}
	}
}

// TestLoadgenBadFlags: unknown corpus kinds and stray arguments fail
// cleanly.
func TestLoadgenBadFlags(t *testing.T) {
	if code, _, stderr := runEpre(t, "loadgen", "-corpus", "bogus", "-out", ""); code == 0 {
		t.Errorf("unknown corpus accepted: %s", stderr)
	}
	if code, _, _ := runEpre(t, "loadgen", "stray"); code == 0 {
		t.Error("stray argument accepted")
	}
}
