// Command epre is the reproduction driver: it compiles Mini-Fortran,
// optimizes at the paper's levels, interprets with dynamic operation
// counting, and regenerates the paper's tables.
//
// Usage:
//
//	epre compile [-o out.iloc] file.mf             # Mini-Fortran → ILOC
//	epre opt -level L [-o out.iloc] file.{mf,iloc} # optimize
//	epre run [-level L] -fn driver [-args 1,2] file.{mf,iloc}
//	epre table1                                    # the paper's Table 1
//	epre table2                                    # the paper's Table 2
//	epre example                                   # Figures 2–10 walkthrough
//	epre levels                                    # list levels and passes
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"flag"

	epre "repro"
	"repro/internal/core"
	"repro/internal/suite"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "compile":
		err = cmdCompile(os.Args[2:])
	case "opt":
		err = cmdOpt(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "table1":
		err = cmdTable1()
	case "table2":
		err = cmdTable2()
	case "example":
		err = cmdExample()
	case "levels":
		cmdLevels()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "epre: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "epre:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  epre compile [-o out.iloc] file.mf
  epre opt -level LEVEL [-o out.iloc] file.{mf,iloc}
  epre run [-level LEVEL] -fn NAME [-args a,b,...] file.{mf,iloc}
  epre table1        regenerate the paper's Table 1 over the suite
  epre table2        regenerate the paper's Table 2 (code expansion)
  epre example       print the Figures 2-10 walkthrough
  epre levels        list optimization levels and passes`)
}

// load reads a program from a .mf (Mini-Fortran) or .iloc file.
func load(path string) (*epre.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".iloc") {
		return epre.ParseILOC(string(data))
	}
	return epre.Compile(string(data))
}

func output(out string, text string) error {
	if out == "" || out == "-" {
		_, err := os.Stdout.WriteString(text)
		return err
	}
	return os.WriteFile(out, []byte(text), 0o644)
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("compile: need exactly one input file")
	}
	p, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	return output(*out, p.ILOC())
}

func cmdOpt(args []string) error {
	fs := flag.NewFlagSet("opt", flag.ExitOnError)
	level := fs.String("level", "reassoc", "optimization level (baseline|partial|reassoc|dist)")
	passes := fs.String("passes", "", "comma-separated explicit pass list (overrides -level)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("opt: need exactly one input file")
	}
	p, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if *passes != "" {
		p, err = p.OptimizePasses(strings.Split(*passes, ",")...)
	} else {
		var lv epre.Level
		lv, err = epre.ParseLevel(*level)
		if err == nil {
			p, err = p.Optimize(lv)
		}
	}
	if err != nil {
		return err
	}
	return output(*out, p.ILOC())
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	level := fs.String("level", "none", "optimization level before running")
	fn := fs.String("fn", "driver", "function to call")
	argSpec := fs.String("args", "", "comma-separated arguments (42 int, 4.2 float)")
	regs := fs.Int("regs", 0, "allocate to this many physical registers first (0 = keep virtual registers)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need exactly one input file")
	}
	p, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	lv, err := epre.ParseLevel(*level)
	if err != nil {
		return err
	}
	if lv != epre.LevelNone {
		if p, err = p.Optimize(lv); err != nil {
			return err
		}
	}
	spilled := -1
	if *regs > 0 {
		if spilled, err = p.AllocateRegisters(*regs); err != nil {
			return err
		}
	}
	var vals []epre.Value
	if *argSpec != "" {
		for _, tok := range strings.Split(*argSpec, ",") {
			tok = strings.TrimSpace(tok)
			if strings.ContainsAny(tok, ".eE") {
				f, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return fmt.Errorf("bad argument %q", tok)
				}
				vals = append(vals, epre.Float(f))
			} else {
				i, err := strconv.ParseInt(tok, 10, 64)
				if err != nil {
					return fmt.Errorf("bad argument %q", tok)
				}
				vals = append(vals, epre.Int(i))
			}
		}
	}
	res, err := p.Run(*fn, vals...)
	if err != nil {
		return err
	}
	for _, v := range res.Output {
		fmt.Println(v)
	}
	fmt.Printf("result      = %s\n", res.Value)
	fmt.Printf("dynamic ops = %d\n", res.DynamicOps)
	fmt.Printf("static ops  = %d\n", p.StaticOps())
	if spilled >= 0 {
		fmt.Printf("spills      = %d (K=%d)\n", spilled, *regs)
	}
	return nil
}

func cmdTable1() error {
	rows, err := suite.Table1()
	if err != nil {
		return err
	}
	suite.WriteTable1(os.Stdout, rows)
	return nil
}

func cmdTable2() error {
	rows, err := suite.Table2()
	if err != nil {
		return err
	}
	suite.WriteTable2(os.Stdout, rows)
	return nil
}

func cmdLevels() {
	fmt.Println("optimization levels (Table 1 columns):")
	for _, l := range epre.Levels {
		fmt.Printf("  %-14s passes: %s\n", l, strings.Join(core.PassNames(l), " → "))
	}
	fmt.Println("\nindividual passes (for -passes and ilocfilter):")
	for _, p := range core.AllPasses() {
		fmt.Printf("  %s\n", p.Name)
	}
}

// cmdExample prints the paper's running example at each stage: the
// Figure 2 source, its naive translation (Figure 3), and the code
// after each pass of the distribution-level pipeline, ending with the
// Figure 10 shape.
func cmdExample() error {
	const src = `
func foo(y: int, z: int): int {
    var s: int = 0
    var x: int = y + z
    for i = x to 100 {
        s = 1 + s + x
    }
    return s
}
`
	fmt.Println("=== Figure 2: source ===")
	fmt.Print(src)
	p, err := epre.Compile(src)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Figure 3: naive ILOC translation ===")
	fmt.Print(p.ILOC())
	stages := []struct {
		title  string
		passes []string
	}{
		{"Figures 4-7: after global reassociation (SSA, ranks, forward propagation, sorting)", []string{"reassoc"}},
		{"Figure 8: after global value numbering (renaming only)", []string{"gvn"}},
		{"Figure 9: after PRE (invariants hoisted, redundancies removed)", []string{"normalize", "pre"}},
		{"Figure 10: after coalescing and cleanup", []string{"sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"}},
	}
	cur := p
	for _, st := range stages {
		cur, err = cur.OptimizePasses(st.passes...)
		if err != nil {
			return err
		}
		fmt.Printf("\n=== %s ===\n", st.title)
		fmt.Print(cur.ILOC())
	}
	for _, level := range epre.Levels {
		opt, err := p.Optimize(level)
		if err != nil {
			return err
		}
		res, err := opt.Run("foo", epre.Int(1), epre.Int(2))
		if err != nil {
			return err
		}
		fmt.Printf("%-14s foo(1,2) = %-6s dynamic ops = %d\n", level, res.Value, res.DynamicOps)
	}
	return nil
}
