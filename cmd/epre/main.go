// Command epre is the reproduction driver: it compiles Mini-Fortran
// and PL/0, optimizes at the paper's levels, interprets with dynamic
// operation counting, and regenerates the paper's tables.
//
// Usage:
//
//	epre compile [-o out.iloc] file.{mf,pl0}           # source → ILOC
//	epre opt -level L [-o out.iloc] file.{mf,pl0,iloc} # optimize
//	epre run [-level L] -fn driver [-args 1,2] file.{mf,pl0,iloc}
//	epre lint [-level L | -passes p,..] file.{mf,pl0,iloc}  # checks
//	epre serve [-addr :8080]                       # optimization service
//	epre table1 [-parallel N]                      # the paper's Table 1
//	epre table2                                    # the paper's Table 2
//	epre bench                                     # service/parallel bench
//	epre loadgen [-out BENCH_serve.json]           # corpus replay load test
//	epre fuzz [-seed 1] [-n 200] [-level all]      # differential fuzzing
//	epre example                                   # Figures 2–10 walkthrough
//	epre levels                                    # list levels and passes
//
// Setting EPRE_CHECK=1 in the environment makes every optimization
// (opt, run, table1, table2) validate each pass application with the
// internal/check analyzers and fail loudly on a miscompile.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"flag"

	epre "repro"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "compile":
		err = cmdCompile(args[1:], stdout)
	case "opt":
		err = cmdOpt(args[1:], stdout)
	case "run":
		err = cmdRun(args[1:], stdout)
	case "lint":
		return cmdLint(args[1:], stdout, stderr)
	case "serve":
		err = cmdServe(args[1:], stderr)
	case "bench":
		err = cmdBench(args[1:], stdout)
	case "loadgen":
		err = cmdLoadgen(args[1:], stdout)
	case "fuzz":
		err = cmdFuzz(args[1:], stdout)
	case "table1":
		err = cmdTable1(args[1:], stdout)
	case "table2":
		err = cmdTable2(stdout)
	case "gvncompare":
		err = cmdGVNCompare(args[1:], stdout)
	case "precompare":
		err = cmdPreCompare(args[1:], stdout)
	case "example":
		err = cmdExample(stdout)
	case "levels":
		cmdLevels(stdout)
	case "-h", "--help", "help":
		usage(stdout)
	default:
		fmt.Fprintf(stderr, "epre: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "epre:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  epre compile [-o out.iloc] file.{mf,pl0}
  epre opt -level LEVEL [-o out.iloc] file.{mf,pl0,iloc}
  epre run [-level LEVEL] -fn NAME [-args a,b,...] file.{mf,pl0,iloc}
  epre lint [-level LEVEL | -passes a,b,...] [-discipline] [-strict-ssa]
            [-no-validate] file.{mf,pl0,iloc}
  epre serve [-addr :8080] [-workers N] [-queue N] [-cache N]
             [-timeout 30s]   run the concurrent optimization service
  epre table1 [-parallel N] [-gvn awz|precise]
              [-pre drechsler|lcm|lospre] [-passstats]
              [-cpuprofile f] [-memprofile f]
                     regenerate the paper's Table 1 over the suite
  epre table2        regenerate the paper's Table 2 (code expansion)
  epre gvncompare [-parallel N]
                     compare the AWZ and precise GVN backends per
                     routine: congruence classes on identical SSA and
                     dynamic ops at the distribution level
  epre precompare [-parallel N]
                     compare the drechsler, lcm and lospre PRE backends
                     per routine: static insert/eliminate counts at the
                     PRE position and dynamic ops at the partial level
  epre bench [-out report.json] [-passmgr-out BENCH_passmgr.json]
             [-hotpath-out BENCH_hotpath.json] [-hotpath-iters N]
             [-requests N] [-concurrency N] [-parallel N]
             [-cpuprofile f] [-memprofile f]
                     serve-mode, analysis-cache and hot-path benchmarks
  epre loadgen [-out BENCH_serve.json] [-addr URL] [-requests N]
               [-workers N] [-qps R] [-batch N] [-level L]
               [-corpus progen|suite] [-corpus-seed N] [-corpus-n N]
               [-seed N] [-verify=false]
                     deterministic corpus replay against the service:
                     single/batch/warm-restart scenarios (or one
                     scenario against -addr), HDR latency histograms
                     and counter deltas written to BENCH_serve.json
  epre fuzz [-seed N] [-n N] [-level L|all] [-workers N] [-shrink]
            [-artifact-dir DIR] [-per-pass] [-gvn-diff] [-pre-diff]
            [-call-heavy] [-timeout 5m] [-stats]
                     differential fuzzing: random programs vs. the
                     reference interpreter at every optimization level
                     (-gvn-diff additionally cross-checks the AWZ and
                     precise GVN backends against each other; -pre-diff
                     does the same for the drechsler, lcm and lospre
                     PRE backends)
  epre example       print the Figures 2-10 walkthrough
  epre levels        list optimization levels and passes`)
}

// load reads a program from a .mf (Mini-Fortran), .pl0, or .iloc
// file.  A known extension forces that language; anything else is
// detected from the source's leading keyword.
func load(path string) (*epre.Program, error) {
	p, err := loadIR(path)
	if err != nil {
		return nil, err
	}
	return epre.ParseILOC(p.String())
}

// loadIR reads the raw IR program (the lint subcommand works below
// the public facade), dispatching through the language registry.
func loadIR(path string) (*ir.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := ""
	if l := lang.ByExt(filepath.Ext(path)); l != nil {
		name = l.Name
	}
	prog, _, err := lang.Compile(string(data), name)
	return prog, err
}

func output(out string, text string) error {
	if out == "" || out == "-" {
		_, err := os.Stdout.WriteString(text)
		return err
	}
	return os.WriteFile(out, []byte(text), 0o644)
}

func cmdCompile(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("compile: need exactly one input file")
	}
	p, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if *out == "" || *out == "-" {
		_, err := io.WriteString(stdout, p.ILOC())
		return err
	}
	return output(*out, p.ILOC())
}

func cmdOpt(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("opt", flag.ExitOnError)
	level := fs.String("level", "reassoc", "optimization level (baseline|partial|reassoc|dist)")
	passes := fs.String("passes", "", "comma-separated explicit pass list (overrides -level)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("opt: need exactly one input file")
	}
	p, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if *passes != "" {
		p, err = p.OptimizePasses(strings.Split(*passes, ",")...)
	} else {
		var lv epre.Level
		lv, err = epre.ParseLevel(*level)
		if err == nil {
			p, err = p.Optimize(lv)
		}
	}
	if err != nil {
		return err
	}
	if *out == "" || *out == "-" {
		_, err := io.WriteString(stdout, p.ILOC())
		return err
	}
	return output(*out, p.ILOC())
}

// cmdLint runs the semantic analyzers of internal/check.  Without
// -level/-passes it checks the input program statically; with them it
// applies the pass sequence in checked mode, validating every pass
// application (translation validation can be switched off with
// -no-validate).  Diagnostics go to stdout; the exit status is 1 when
// any error-severity diagnostic fired, 2 on usage errors.
func cmdLint(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	level := fs.String("level", "", "optimize at this level in checked mode, validating every pass")
	passNames := fs.String("passes", "", "comma-separated pass list to run in checked mode")
	discipline := fs.Bool("discipline", false, "lint the §2.2 naming discipline (expression vs. variable names); meaningful after normalize/gvn")
	strictSSA := fs.Bool("strict-ssa", false, "require single definitions per register (true SSA form)")
	noValidate := fs.Bool("no-validate", false, "skip translation validation in checked mode")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "epre: lint: need exactly one input file")
		return 2
	}
	prog, err := loadIR(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "epre:", err)
		return 1
	}
	if err := ir.VerifyProgram(prog); err != nil {
		fmt.Fprintln(stdout, err)
		return 1
	}

	var diags []check.Diagnostic
	opt := check.Options{StrictSSA: *strictSSA, Discipline: *discipline}
	if *level != "" || *passNames != "" {
		var names []string
		if *passNames != "" {
			names = strings.Split(*passNames, ",")
		} else {
			lv, err := core.ParseLevel(*level)
			if err != nil {
				fmt.Fprintln(stderr, "epre:", err)
				return 2
			}
			names = core.PassNames(lv)
		}
		passes := make([]core.Pass, 0, len(names))
		for _, n := range names {
			p, err := core.PassByName(n)
			if err != nil {
				fmt.Fprintln(stderr, "epre:", err)
				return 2
			}
			passes = append(passes, p)
		}
		cfg := core.DefaultCheckConfig()
		cfg.Validate = !*noValidate
		out, ds, err := core.CheckedRun(prog, passes, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "epre:", err)
			return 1
		}
		diags = ds
		diags = append(diags, check.Program(out, opt)...)
	} else {
		diags = check.Program(prog, opt)
	}

	check.Report(stdout, diags)
	errs := len(check.Errors(diags))
	if n := len(diags); n > 0 {
		fmt.Fprintf(stdout, "epre lint: %d error(s), %d warning(s)\n", errs, n-errs)
	}
	if errs > 0 {
		return 1
	}
	return 0
}

func cmdRun(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	level := fs.String("level", "none", "optimization level before running")
	fn := fs.String("fn", "driver", "function to call")
	argSpec := fs.String("args", "", "comma-separated arguments (42 int, 4.2 float)")
	regs := fs.Int("regs", 0, "allocate to this many physical registers first (0 = keep virtual registers)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need exactly one input file")
	}
	p, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	lv, err := epre.ParseLevel(*level)
	if err != nil {
		return err
	}
	if lv != epre.LevelNone {
		if p, err = p.Optimize(lv); err != nil {
			return err
		}
	}
	spilled := -1
	if *regs > 0 {
		if spilled, err = p.AllocateRegisters(*regs); err != nil {
			return err
		}
	}
	var vals []epre.Value
	if *argSpec != "" {
		for _, tok := range strings.Split(*argSpec, ",") {
			tok = strings.TrimSpace(tok)
			if strings.ContainsAny(tok, ".eE") {
				f, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return fmt.Errorf("bad argument %q", tok)
				}
				vals = append(vals, epre.Float(f))
			} else {
				i, err := strconv.ParseInt(tok, 10, 64)
				if err != nil {
					return fmt.Errorf("bad argument %q", tok)
				}
				vals = append(vals, epre.Int(i))
			}
		}
	}
	res, err := p.Run(*fn, vals...)
	if err != nil {
		return err
	}
	for _, v := range res.Output {
		fmt.Fprintln(stdout, v)
	}
	fmt.Fprintf(stdout, "result      = %s\n", res.Value)
	fmt.Fprintf(stdout, "dynamic ops = %d\n", res.DynamicOps)
	fmt.Fprintf(stdout, "static ops  = %d\n", p.StaticOps())
	if spilled >= 0 {
		fmt.Fprintf(stdout, "spills      = %d (K=%d)\n", spilled, *regs)
	}
	return nil
}

func cmdTable1(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	parallel := fs.Int("parallel", 1, "measure up to N routines concurrently (output is byte-identical to the serial run)")
	passStats := fs.Bool("passstats", false, "append a per-pass table: applications, changed-bit reports, time, analysis cache misses")
	gvnName := fs.String("gvn", "", "global value numbering backend (awz|precise; default awz)")
	preName := fs.String("pre", "", "redundancy elimination backend (drechsler|lcm|lospre; default drechsler)")
	prof := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	var opts core.OptimizeOptions
	if opts.GVN, err = core.ParseGVNBackend(*gvnName); err != nil {
		return err
	}
	if opts.PRE, err = core.ParsePREBackend(*preName); err != nil {
		return err
	}
	var collector *core.PassStatsCollector
	if *passStats {
		collector = core.NewPassStatsCollector()
		opts.OnPass = collector.Observe
	}
	rows, err := suite.Table1Opts(context.Background(), *parallel, opts)
	if err != nil {
		return err
	}
	suite.WriteTable1(stdout, rows)
	if collector != nil {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "per-pass statistics (analysis columns count cache misses, not queries):")
		collector.Write(stdout)
	}
	return nil
}

func cmdGVNCompare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gvncompare", flag.ExitOnError)
	parallel := fs.Int("parallel", 1, "measure up to N routines concurrently (output is byte-identical to the serial run)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("gvncompare: unexpected argument %q", fs.Arg(0))
	}
	rows, err := suite.GVNCompare(context.Background(), *parallel)
	if err != nil {
		return err
	}
	suite.WriteGVNCompare(stdout, rows)
	return nil
}

func cmdPreCompare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("precompare", flag.ExitOnError)
	parallel := fs.Int("parallel", 1, "measure up to N routines concurrently (output is byte-identical to the serial run)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("precompare: unexpected argument %q", fs.Arg(0))
	}
	rows, err := suite.PreCompare(context.Background(), *parallel)
	if err != nil {
		return err
	}
	suite.WritePreCompare(stdout, rows)
	return nil
}

func cmdTable2(stdout io.Writer) error {
	rows, err := suite.Table2()
	if err != nil {
		return err
	}
	suite.WriteTable2(stdout, rows)
	return nil
}

func cmdLevels(stdout io.Writer) {
	fmt.Fprintln(stdout, "optimization levels (Table 1 columns):")
	for _, l := range epre.Levels {
		fmt.Fprintf(stdout, "  %-14s passes: %s\n", l, strings.Join(core.PassNames(l), " → "))
	}
	// The pass inventory prints in explicitly sorted order — canonical
	// output regardless of how the pass table is arranged internally.
	names := make([]string, 0, len(core.AllPasses()))
	for _, p := range core.AllPasses() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	fmt.Fprintln(stdout, "\nindividual passes (for -passes and ilocfilter):")
	for _, name := range names {
		fmt.Fprintf(stdout, "  %s\n", name)
	}
	fmt.Fprintln(stdout, "\nselectable backends (swap a level's slot without renaming the stage):")
	gvnNames := make([]string, len(core.GVNBackends))
	for i, b := range core.GVNBackends {
		gvnNames[i] = fmt.Sprintf("%s (pass %s)", b, b.PassName())
	}
	fmt.Fprintf(stdout, "  %-5s %s\n", "gvn:", strings.Join(gvnNames, ", "))
	preNames := make([]string, len(core.PREBackends))
	for i, b := range core.PREBackends {
		preNames[i] = fmt.Sprintf("%s (pass %s)", b, b.PassName())
	}
	fmt.Fprintf(stdout, "  %-5s %s\n", "pre:", strings.Join(preNames, ", "))
}

// cmdExample prints the paper's running example at each stage: the
// Figure 2 source, its naive translation (Figure 3), and the code
// after each pass of the distribution-level pipeline, ending with the
// Figure 10 shape.
func cmdExample(stdout io.Writer) error {
	const src = `
func foo(y: int, z: int): int {
    var s: int = 0
    var x: int = y + z
    for i = x to 100 {
        s = 1 + s + x
    }
    return s
}
`
	fmt.Fprintln(stdout, "=== Figure 2: source ===")
	fmt.Fprint(stdout, src)
	p, err := epre.Compile(src)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "\n=== Figure 3: naive ILOC translation ===")
	fmt.Fprint(stdout, p.ILOC())
	stages := []struct {
		title  string
		passes []string
	}{
		{"Figures 4-7: after global reassociation (SSA, ranks, forward propagation, sorting)", []string{"reassoc"}},
		{"Figure 8: after global value numbering (renaming only)", []string{"gvn"}},
		{"Figure 9: after PRE (invariants hoisted, redundancies removed)", []string{"normalize", "pre"}},
		{"Figure 10: after coalescing and cleanup", []string{"sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"}},
	}
	cur := p
	for _, st := range stages {
		cur, err = cur.OptimizePasses(st.passes...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n=== %s ===\n", st.title)
		fmt.Fprint(stdout, cur.ILOC())
	}
	for _, level := range epre.Levels {
		opt, err := p.Optimize(level)
		if err != nil {
			return err
		}
		res, err := opt.Run("foo", epre.Int(1), epre.Int(2))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-14s foo(1,2) = %-6s dynamic ops = %d\n", level, res.Value, res.DynamicOps)
	}
	return nil
}
