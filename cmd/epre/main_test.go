package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/ir"
)

func runEpre(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const mainSrc = `
func main(n: int): int {
    var s: int = 0
    for i = 1 to n {
        s = s + i * n
    }
    return s
}
`

func TestHelpGolden(t *testing.T) {
	code, stdout, _ := runEpre(t, "--help")
	if code != 0 {
		t.Errorf("help exit = %d, want 0", code)
	}
	for _, want := range []string{
		"epre compile", "epre opt", "epre run", "epre lint",
		"epre table1", "epre levels", "-discipline", "-strict-ssa",
		"epre serve", "epre bench", "-parallel",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("help missing %q:\n%s", want, stdout)
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, stderr := runEpre(t, "frobnicate")
	if code != 2 || !strings.Contains(stderr, "unknown command") {
		t.Errorf("code=%d stderr=%q", code, stderr)
	}
}

func TestLevelsListsCheckPass(t *testing.T) {
	code, stdout, _ := runEpre(t, "levels")
	if code != 0 {
		t.Fatalf("levels exit = %d", code)
	}
	for _, want := range []string{"baseline", "distribution", "check", "pre", "gvn"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("levels missing %q:\n%s", want, stdout)
		}
	}
}

// TestLevelsPassInventorySorted: the individual-pass listing prints in
// explicitly sorted order, so the output is canonical.
func TestLevelsPassInventorySorted(t *testing.T) {
	code, stdout, _ := runEpre(t, "levels")
	if code != 0 {
		t.Fatalf("levels exit = %d", code)
	}
	_, inventory, found := strings.Cut(stdout, "individual passes")
	if !found {
		t.Fatalf("no pass inventory in output:\n%s", stdout)
	}
	var names []string
	for _, line := range strings.Split(inventory, "\n")[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			if len(names) > 0 {
				break // the inventory ends at the first blank line
			}
			continue
		}
		names = append(names, line)
	}
	if len(names) < 10 {
		t.Fatalf("suspiciously short inventory: %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("pass inventory not sorted: %v", names)
	}
	// The backend matrix follows the inventory, naming every slot.
	for _, want := range []string{"gvn:", "pre:", "drechsler (pass pre)", "lcm (pass pre-lcm)", "lospre (pass pre-lospre)"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("levels output missing %q:\n%s", want, stdout)
		}
	}
}

// TestTable1ParallelFlag: table1 -parallel renders byte-identically to
// the serial run.
func TestTable1ParallelFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	code, serial, stderr := runEpre(t, "table1")
	if code != 0 {
		t.Fatalf("table1: %s", stderr)
	}
	code, par, stderr := runEpre(t, "table1", "-parallel", "8")
	if code != 0 {
		t.Fatalf("table1 -parallel: %s", stderr)
	}
	if serial != par {
		t.Errorf("parallel table1 differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
}

// TestBenchWritesReport: the bench subcommand produces a parseable
// BENCH_serve.json with the serve and table1 sections filled in.
func TestBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")
	passMgrOut := filepath.Join(dir, "BENCH_passmgr.json")
	hotpathOut := filepath.Join(dir, "BENCH_hotpath.json")
	code, stdout, stderr := runEpre(t, "bench",
		"-out", out, "-passmgr-out", passMgrOut,
		"-hotpath-out", hotpathOut, "-hotpath-iters", "1",
		"-requests", "8", "-concurrency", "4", "-parallel", "2")
	if code != 0 {
		t.Fatalf("bench failed: %s", stderr)
	}
	if !strings.Contains(stdout, "report written to") {
		t.Errorf("missing summary:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		PipelineVersion string `json:"pipeline_version"`
		Serve           struct {
			Requests       int     `json:"requests"`
			RequestsPerSec float64 `json:"requests_per_sec"`
			CacheMisses    int64   `json:"cache_misses"`
			Errors         int64   `json:"errors"`
		} `json:"serve"`
		Table1 struct {
			Speedup   float64 `json:"speedup"`
			Identical bool    `json:"identical_output"`
		} `json:"table1"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	if rep.PipelineVersion == "" || rep.Serve.Requests != 8 || rep.Serve.RequestsPerSec <= 0 {
		t.Errorf("implausible report: %+v", rep)
	}
	if rep.Serve.Errors != 0 {
		t.Errorf("bench saw %d errors", rep.Serve.Errors)
	}
	if !rep.Table1.Identical {
		t.Error("parallel table1 output not identical to serial")
	}

	pmData, err := os.ReadFile(passMgrOut)
	if err != nil {
		t.Fatal(err)
	}
	var pm struct {
		Levels []struct {
			Level string `json:"level"`
		} `json:"levels"`
		Total struct {
			Cached struct {
				Dom uint64 `json:"dom"`
			} `json:"cached_builds"`
			Uncached struct {
				Dom uint64 `json:"dom"`
			} `json:"uncached_builds"`
			DomReductionPct float64 `json:"dom_reduction_pct"`
		} `json:"total"`
	}
	if err := json.Unmarshal(pmData, &pm); err != nil {
		t.Fatalf("passmgr report is not JSON: %v\n%s", err, pmData)
	}
	if len(pm.Levels) != 4 {
		t.Errorf("passmgr report has %d levels, want 4", len(pm.Levels))
	}
	if pm.Total.Uncached.Dom == 0 || pm.Total.DomReductionPct < 50 {
		t.Errorf("implausible passmgr totals: %+v", pm.Total)
	}

	hpData, err := os.ReadFile(hotpathOut)
	if err != nil {
		t.Fatal(err)
	}
	var hp struct {
		Routine string `json:"routine"`
		Iters   int    `json:"iters"`
		Levels  []struct {
			Level  string `json:"level"`
			Pooled struct {
				NsPerOp     float64 `json:"ns_per_op"`
				AllocsPerOp float64 `json:"allocs_per_op"`
			} `json:"pooled"`
			PoolDisabled struct {
				AllocsPerOp float64 `json:"allocs_per_op"`
			} `json:"pool_disabled"`
			AllocReductionPct float64 `json:"alloc_reduction_pct"`
			IdenticalOutput   bool    `json:"identical_output"`
		} `json:"levels"`
	}
	if err := json.Unmarshal(hpData, &hp); err != nil {
		t.Fatalf("hotpath report is not JSON: %v\n%s", err, hpData)
	}
	if hp.Routine == "" || hp.Iters != 1 || len(hp.Levels) != 4 {
		t.Errorf("implausible hotpath report: routine=%q iters=%d levels=%d",
			hp.Routine, hp.Iters, len(hp.Levels))
	}
	for _, row := range hp.Levels {
		if !row.IdenticalOutput {
			t.Errorf("hotpath %s: pooled output differs from ablated", row.Level)
		}
		if row.Pooled.NsPerOp <= 0 || row.Pooled.AllocsPerOp <= 0 || row.PoolDisabled.AllocsPerOp <= 0 {
			t.Errorf("hotpath %s: empty measurement: %+v", row.Level, row)
		}
	}
}

// TestProfileFlags: -cpuprofile/-memprofile write non-empty pprof
// files around a measured subcommand.
func TestProfileFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, stderr := runEpre(t, "table1", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("table1 with profiles failed: %s", stderr)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
}

// TestCompileFilterRunRoundTrip: compile to a .iloc file, optimize it
// with opt, and run the result — the full CLI round trip.
func TestCompileFilterRunRoundTrip(t *testing.T) {
	src := writeFile(t, "prog.mf", mainSrc)
	iloc := filepath.Join(t.TempDir(), "prog.iloc")
	if code, _, stderr := runEpre(t, "compile", "-o", iloc, src); code != 0 {
		t.Fatalf("compile failed: %s", stderr)
	}
	opt := filepath.Join(t.TempDir(), "opt.iloc")
	if code, _, stderr := runEpre(t, "opt", "-level", "dist", "-o", opt, iloc); code != 0 {
		t.Fatalf("opt failed: %s", stderr)
	}
	code, stdout, stderr := runEpre(t, "run", "-fn", "main", "-args", "9", opt)
	if code != 0 {
		t.Fatalf("run failed: %s", stderr)
	}
	// sum_{i=1..9} 9i = 9*45 = 405
	if !strings.Contains(stdout, "result      = 405") {
		t.Errorf("wrong result:\n%s", stdout)
	}
	if !strings.Contains(stdout, "dynamic ops = ") || !strings.Contains(stdout, "static ops  = ") {
		t.Errorf("missing count lines:\n%s", stdout)
	}
}

func TestLintCleanProgram(t *testing.T) {
	src := writeFile(t, "prog.mf", mainSrc)
	code, stdout, stderr := runEpre(t, "lint", src)
	if code != 0 || stdout != "" || stderr != "" {
		t.Errorf("lint on clean program: code=%d stdout=%q stderr=%q", code, stdout, stderr)
	}
}

// TestLintCheckedLevel: lint -level runs the whole pipeline in checked
// mode (per-pass defuse + translation validation) and stays quiet on
// correct code.
func TestLintCheckedLevel(t *testing.T) {
	src := writeFile(t, "prog.mf", mainSrc)
	for _, level := range []string{"baseline", "dist"} {
		code, stdout, stderr := runEpre(t, "lint", "-level", level, src)
		if code != 0 || stdout != "" {
			t.Errorf("lint -level %s: code=%d stdout=%q stderr=%q", level, code, stdout, stderr)
		}
	}
}

func TestLintFlagsUndefinedRegister(t *testing.T) {
	iloc := writeFile(t, "bad.iloc", `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    add r1, r9 => r2
    ret r2
}
`)
	code, stdout, _ := runEpre(t, "lint", iloc)
	if code != 1 {
		t.Errorf("lint exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "undefined register r9") || !strings.Contains(stdout, "[defuse]") {
		t.Errorf("missing diagnostic:\n%s", stdout)
	}
	if !strings.Contains(stdout, "epre lint: 1 error(s), 0 warning(s)") {
		t.Errorf("missing summary line:\n%s", stdout)
	}
}

// TestLintDiscipline: the naming-discipline lint flags a cross-block
// expression name on raw code and is satisfied once normalize ran.
func TestLintDiscipline(t *testing.T) {
	iloc := writeFile(t, "expr.iloc", `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    add r1, r1 => r2
    jump -> b1
b1:
    ret r2
}
`)
	code, stdout, _ := runEpre(t, "lint", "-discipline", iloc)
	if code != 1 || !strings.Contains(stdout, "[discipline]") {
		t.Errorf("discipline violation not flagged: code=%d\n%s", code, stdout)
	}
	code, stdout, _ = runEpre(t, "lint", "-discipline", "-passes", "normalize", iloc)
	if code != 0 {
		t.Errorf("normalize should establish the discipline: code=%d\n%s", code, stdout)
	}
}

func TestLintBadLevel(t *testing.T) {
	src := writeFile(t, "prog.mf", mainSrc)
	code, _, stderr := runEpre(t, "lint", "-level", "bogus", src)
	if code != 2 || !strings.Contains(stderr, "unknown optimization level") {
		t.Errorf("code=%d stderr=%q", code, stderr)
	}
}

// TestRunHonorsCheckEnv: EPRE_CHECK=1 routes optimization through the
// checked pipeline; correct code still runs and miscompiles would fail
// (exercised end to end in internal/core).
func TestRunHonorsCheckEnv(t *testing.T) {
	t.Setenv("EPRE_CHECK", "1")
	src := writeFile(t, "prog.mf", mainSrc)
	code, stdout, stderr := runEpre(t, "run", "-level", "reassoc", "-fn", "main", "-args", "9", src)
	if code != 0 {
		t.Fatalf("checked run failed: %s", stderr)
	}
	if !strings.Contains(stdout, "result      = 405") {
		t.Errorf("wrong result:\n%s", stdout)
	}
}

func TestFuzzClean(t *testing.T) {
	code, stdout, stderr := runEpre(t, "fuzz", "-seed", "1", "-n", "10", "-workers", "2", "-stats")
	if code != 0 {
		t.Fatalf("fuzz on a clean pipeline exited %d: %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "10 programs, 0 failures") {
		t.Errorf("missing summary line: %s", stdout)
	}
	if !strings.Contains(stdout, "programs_per_second") {
		t.Errorf("-stats did not print metrics: %s", stdout)
	}
}

func TestFuzzLevelFlag(t *testing.T) {
	code, stdout, stderr := runEpre(t, "fuzz", "-seed", "1", "-n", "5", "-level", "partial")
	if code != 0 {
		t.Fatalf("fuzz -level partial exited %d: %s%s", code, stdout, stderr)
	}
	if code, _, stderr := runEpre(t, "fuzz", "-level", "bogus"); code == 0 || !strings.Contains(stderr, "unknown optimization level") {
		t.Errorf("bogus level accepted (exit %d): %s", code, stderr)
	}
	if code, _, _ := runEpre(t, "fuzz", "stray-arg"); code == 0 {
		t.Error("stray positional argument accepted")
	}
}

func TestFuzzArtifactDir(t *testing.T) {
	// A clean pipeline writes no artifacts; the directory flag alone
	// must not create clutter or fail.
	dir := filepath.Join(t.TempDir(), "artifacts")
	code, _, stderr := runEpre(t, "fuzz", "-seed", "1", "-n", "3", "-artifact-dir", dir)
	if code != 0 {
		t.Fatalf("fuzz with -artifact-dir exited %d: %s", code, stderr)
	}
	if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
		t.Errorf("clean run wrote %d artifacts", len(entries))
	}
}

func TestFuzzUsageListed(t *testing.T) {
	code, stdout, _ := runEpre(t, "help")
	if code != 0 {
		t.Fatalf("help exited %d", code)
	}
	if !strings.Contains(stdout, "epre fuzz") {
		t.Error("usage text does not mention the fuzz command")
	}
}

// TestFuzzMiscompileExit drives the CLI's failure path end to end: a
// deliberately sabotaged pipeline (via the test-only EPRE_FUZZ_SABOTAGE
// hook) must produce a nonzero exit, FAIL lines with shrink counts, and
// a reparsable artifact on disk.
func TestFuzzMiscompileExit(t *testing.T) {
	t.Setenv("EPRE_FUZZ_SABOTAGE", "partial")
	dir := filepath.Join(t.TempDir(), "artifacts")
	code, stdout, stderr := runEpre(t, "fuzz",
		"-seed", "1", "-n", "3", "-level", "partial", "-artifact-dir", dir)
	if code == 0 {
		t.Fatalf("sabotaged fuzz run exited 0:\n%s", stdout)
	}
	if !strings.Contains(stdout, "FAIL: miscompile at partial") {
		t.Errorf("missing FAIL line:\n%s", stdout)
	}
	if !strings.Contains(stdout, "shrunk") {
		t.Errorf("failures were not shrunk:\n%s", stdout)
	}
	if !strings.Contains(stderr, "failure(s)") {
		t.Errorf("stderr missing failure summary: %s", stderr)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no artifacts written (err %v)", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.ParseProgramString(string(data)); err != nil {
		t.Errorf("artifact %s does not reparse: %v", entries[0].Name(), err)
	}
}

func TestFuzzGVNDiffFlag(t *testing.T) {
	code, stdout, stderr := runEpre(t, "fuzz", "-seed", "1", "-n", "8", "-workers", "2", "-gvn-diff")
	if code != 0 {
		t.Fatalf("fuzz -gvn-diff exited %d: %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "8 programs, 0 failures") {
		t.Errorf("missing summary line: %s", stdout)
	}
	// The sabotage hook binds a custom pipeline, which is incompatible
	// with backend fan-out; the CLI must refuse the combination.
	t.Setenv("EPRE_FUZZ_SABOTAGE", "partial")
	if code, _, stderr := runEpre(t, "fuzz", "-n", "1", "-gvn-diff"); code == 0 ||
		!strings.Contains(stderr, "cannot be combined") {
		t.Errorf("sabotage + -gvn-diff accepted (exit %d): %s", code, stderr)
	}
}

func TestFuzzPREDiffFlag(t *testing.T) {
	code, stdout, stderr := runEpre(t, "fuzz", "-seed", "1", "-n", "8", "-workers", "2", "-pre-diff")
	if code != 0 {
		t.Fatalf("fuzz -pre-diff exited %d: %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "8 programs, 0 failures") {
		t.Errorf("missing summary line: %s", stdout)
	}
	t.Setenv("EPRE_FUZZ_SABOTAGE", "partial")
	if code, _, stderr := runEpre(t, "fuzz", "-n", "1", "-pre-diff"); code == 0 ||
		!strings.Contains(stderr, "cannot be combined") {
		t.Errorf("sabotage + -pre-diff accepted (exit %d): %s", code, stderr)
	}
}

func TestTable1PREFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	code, dre, stderr := runEpre(t, "table1", "-parallel", "8")
	if code != 0 {
		t.Fatalf("table1: %s", stderr)
	}
	for _, backend := range []string{"lcm", "lospre"} {
		code, alt, stderr := runEpre(t, "table1", "-parallel", "8", "-pre", backend)
		if code != 0 {
			t.Fatalf("table1 -pre %s: %s", backend, stderr)
		}
		// Every row is checked against the routine's reference result
		// inside the harness; here pin that the flag threads through and
		// still yields a full table.
		if len(alt) == 0 || strings.Count(alt, "\n") != strings.Count(dre, "\n") {
			t.Errorf("-pre %s table shape differs:\n%s", backend, alt)
		}
	}
	if code, _, stderr := runEpre(t, "table1", "-pre", "bogus"); code == 0 ||
		!strings.Contains(stderr, "unknown PRE backend") {
		t.Errorf("bogus backend accepted (exit %d): %s", code, stderr)
	}
}

func TestPreCompareCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	code, serial, stderr := runEpre(t, "precompare")
	if code != 0 {
		t.Fatalf("precompare: %s", stderr)
	}
	code, par, stderr := runEpre(t, "precompare", "-parallel", "8")
	if code != 0 {
		t.Fatalf("precompare -parallel: %s", stderr)
	}
	if serial != par {
		t.Errorf("parallel precompare differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
	for _, want := range []string{"routine", "drechsler", "lcm", "lospre", "tomcatv"} {
		if !strings.Contains(serial, want) {
			t.Errorf("precompare output missing %q:\n%s", want, serial)
		}
	}
	if code, _, _ := runEpre(t, "precompare", "stray"); code == 0 {
		t.Error("stray positional argument accepted")
	}
}

func TestTable1GVNFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	code, awz, stderr := runEpre(t, "table1", "-parallel", "8")
	if code != 0 {
		t.Fatalf("table1: %s", stderr)
	}
	code, precise, stderr := runEpre(t, "table1", "-parallel", "8", "-gvn", "precise")
	if code != 0 {
		t.Fatalf("table1 -gvn precise: %s", stderr)
	}
	// On the current suite the pruned-SSA partitions coincide (see
	// internal/suite gvncompare tests), so the measured tables agree;
	// what this test pins is that the flag parses, threads through, and
	// still produces a full, checked table.
	if len(precise) == 0 || strings.Count(precise, "\n") != strings.Count(awz, "\n") {
		t.Errorf("precise table shape differs:\n%s", precise)
	}
	if code, _, stderr := runEpre(t, "table1", "-gvn", "bogus"); code == 0 ||
		!strings.Contains(stderr, "unknown GVN backend") {
		t.Errorf("bogus backend accepted (exit %d): %s", code, stderr)
	}
}

func TestGVNCompareCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	code, serial, stderr := runEpre(t, "gvncompare")
	if code != 0 {
		t.Fatalf("gvncompare: %s", stderr)
	}
	code, par, stderr := runEpre(t, "gvncompare", "-parallel", "8")
	if code != 0 {
		t.Fatalf("gvncompare -parallel: %s", stderr)
	}
	if serial != par {
		t.Errorf("parallel gvncompare differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
	for _, want := range []string{"routine", "merged", "monotone", "tomcatv"} {
		if !strings.Contains(serial, want) {
			t.Errorf("gvncompare output missing %q:\n%s", want, serial)
		}
	}
	if code, _, _ := runEpre(t, "gvncompare", "stray"); code == 0 {
		t.Error("stray positional argument accepted")
	}
}
