package main

import (
	"os"
	"runtime"
	"runtime/pprof"

	"flag"
)

// profileFlags carries the -cpuprofile/-memprofile options shared by
// the measurement subcommands (table1, bench).  The profiles are the
// standard pprof formats: `go tool pprof <binary> <file>` reads them.
type profileFlags struct {
	cpu *string
	mem *string
}

// addProfileFlags registers the profiling options on a subcommand's
// flag set.
func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write an allocation profile to this file on exit"),
	}
}

// start begins CPU profiling when requested and returns a stop
// function that finishes the CPU profile and writes the heap profile.
// Call stop exactly once, after the measured work.
func (p *profileFlags) start() (stop func() error, err error) {
	var cpuFile *os.File
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
