package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"flag"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/suite"
)

// cmdServe runs the optimization service until SIGINT/SIGTERM, then
// drains gracefully: in-flight requests complete, the worker pool
// empties, and the process exits 0.
func cmdServe(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent optimizations (default GOMAXPROCS)")
	queue := fs.Int("queue", 64, "additionally queued optimizations before shedding with 503")
	cacheSize := fs.Int("cache", 256, "result cache capacity, entries")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown budget")
	optParallel := fs.Int("opt-parallel", 1, "function-level parallelism inside one optimization")
	maxBatch := fs.Int("max-batch", 256, "maximum items per /optimize/batch request")
	cacheDir := fs.String("cache-dir", "", "persistent content-addressed result store directory (empty = memory only)")
	diskBytes := fs.Int64("disk-cache-bytes", 0, "on-disk store byte budget (0 = unlimited)")
	diskFsync := fs.Bool("disk-fsync", false, "fsync disk-store entries before the atomic rename")
	peers := fs.String("peers", "", "comma-separated base URLs of every ring peer, including this server")
	self := fs.String("self", "", "this server's base URL as it appears in -peers")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *self == "" {
			return fmt.Errorf("serve: -peers requires -self (this server's URL as listed in -peers)")
		}
		found := false
		for _, p := range peerList {
			found = found || p == *self
		}
		if !found {
			return fmt.Errorf("serve: -self %q is not in -peers %q", *self, *peers)
		}
	}

	s, err := serve.New(serve.Config{
		Workers:        *workers,
		Queue:          *queue,
		CacheSize:      *cacheSize,
		Timeout:        *timeout,
		DrainTimeout:   *drain,
		OptWorkers:     *optParallel,
		MaxBatch:       *maxBatch,
		CacheDir:       *cacheDir,
		DiskCacheBytes: *diskBytes,
		DiskFsync:      *diskFsync,
		Peers:          peerList,
		Self:           *self,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := serve.NotifyContext(context.Background())
	defer stop()
	fmt.Fprintf(stderr, "epre serve: listening on %s (pipeline %s)\n", l.Addr(), s.Version())
	err = s.Run(ctx, l)
	fmt.Fprintln(stderr, "epre serve: drained, bye")
	return err
}

// benchReport is the BENCH_serve.json schema: one serve-mode
// throughput measurement plus the serial-vs-parallel Table 1
// comparison, so the perf trajectory is tracked commit over commit.
type benchReport struct {
	Timestamp       string `json:"timestamp"`
	GoMaxProcs      int    `json:"gomaxprocs"`
	PipelineVersion string `json:"pipeline_version"`
	Serve           struct {
		Requests       int     `json:"requests"`
		Concurrency    int     `json:"concurrency"`
		UniquePrograms int     `json:"unique_programs"`
		WallSeconds    float64 `json:"wall_seconds"`
		RequestsPerSec float64 `json:"requests_per_sec"`
		P50Millis      float64 `json:"p50_ms"`
		P99Millis      float64 `json:"p99_ms"`
		CacheHits      int64   `json:"cache_hits"`
		CacheMisses    int64   `json:"cache_misses"`
		DupRequests    int     `json:"dup_requests"`
		Shared         int64   `json:"singleflight_shared"`
		Errors         int64   `json:"errors"`
	} `json:"serve"`
	Table1 struct {
		Workers         int     `json:"workers"`
		SerialSeconds   float64 `json:"serial_seconds"`
		ParallelSeconds float64 `json:"parallel_seconds"`
		Speedup         float64 `json:"speedup"`
		Identical       bool    `json:"identical_output"`
	} `json:"table1"`
}

// cmdBench measures the service end to end — an in-process daemon under
// concurrent load over the whole suite corpus — and the parallel
// Table 1 run against the serial one, then writes the JSON report.
func cmdBench(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "", "serve/table1 report file (empty to skip writing; BENCH_serve.json is produced by `epre loadgen`)")
	passMgrOut := fs.String("passmgr-out", "BENCH_passmgr.json", "pass-manager/analysis-cache report file (empty to skip)")
	hotpathOut := fs.String("hotpath-out", "BENCH_hotpath.json", "hot-path allocation report file (empty to skip)")
	hotpathIters := fs.Int("hotpath-iters", 10, "optimizer runs per hot-path measurement")
	requests := fs.Int("requests", 200, "optimize requests to issue")
	concurrency := fs.Int("concurrency", 16, "concurrent clients")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "table1 worker count to compare against serial")
	level := fs.String("level", "reassoc", "optimization level for the serve workload")
	prof := addProfileFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("bench: unexpected arguments %v", fs.Args())
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	rep := &benchReport{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		PipelineVersion: core.PipelineVersion(),
	}

	if err := benchServe(rep, *requests, *concurrency, *level); err != nil {
		return err
	}
	if err := benchTable1(rep, *parallel); err != nil {
		return err
	}
	if *passMgrOut != "" {
		if err := benchPassMgr(*passMgrOut, stdout); err != nil {
			return err
		}
	}
	if *hotpathOut != "" {
		if err := benchHotpath(*hotpathOut, *hotpathIters, stdout); err != nil {
			return err
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	fmt.Fprintf(stdout, "serve:  %d reqs, %d clients: %.2f req/s (p50 %.1fms, p99 %.1fms; %d misses, %d hits, %d shared)\n",
		rep.Serve.Requests, rep.Serve.Concurrency, rep.Serve.RequestsPerSec,
		rep.Serve.P50Millis, rep.Serve.P99Millis,
		rep.Serve.CacheMisses, rep.Serve.CacheHits, rep.Serve.Shared)
	fmt.Fprintf(stdout, "table1: serial %.2fs, parallel(%d) %.2fs: %.2fx speedup, identical=%v\n",
		rep.Table1.SerialSeconds, rep.Table1.Workers, rep.Table1.ParallelSeconds,
		rep.Table1.Speedup, rep.Table1.Identical)
	return nil
}

// benchServe drives an in-process daemon with `concurrency` clients
// cycling `requests` optimize calls over the suite corpus.
func benchServe(rep *benchReport, requests, concurrency int, level string) error {
	corpus := suite.All()
	if len(corpus) == 0 {
		return fmt.Errorf("bench: empty suite corpus")
	}
	s, err := serve.New(serve.Config{})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go s.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	url := "http://" + l.Addr().String() + "/optimize"

	bodies := make([][]byte, len(corpus))
	for i, r := range corpus {
		b, err := json.Marshal(serve.OptimizeRequest{Source: r.Source, Level: level})
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: concurrency}}
	jobs := make(chan int)
	lats := make([]time.Duration, requests)
	errc := make(chan error, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		go func() {
			for i := range jobs {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("bench: request %d: status %d", i, resp.StatusCode)
					return
				}
				lats[i] = time.Since(t0)
			}
			errc <- nil
		}()
	}
	for i := 0; i < requests; i++ {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < concurrency; w++ {
		if err := <-errc; err != nil {
			return err
		}
	}
	wall := time.Since(start)

	// Single-flight exercise: barrier-released bursts of identical
	// requests at keys the main loop never touched (checked mode is its
	// own cache dimension).  The first computes; the rest must coalesce
	// onto that in-flight computation, so the dedup path — and its
	// counter — is actually driven by the bench, not just by unit tests.
	// Bursts start with the largest programs (the longest in-flight
	// window) and retry smaller ones only if a burst ever lost the race.
	const dupRequests = 16
	bySize := make([]int, len(corpus))
	for i := range bySize {
		bySize[i] = i
	}
	sort.Slice(bySize, func(a, b int) bool { return len(corpus[bySize[a]].Source) > len(corpus[bySize[b]].Source) })
	for attempt := 0; attempt < len(bySize); attempt++ {
		dupBody, err := json.Marshal(serve.OptimizeRequest{Source: corpus[bySize[attempt]].Source, Level: level, Check: true})
		if err != nil {
			return err
		}
		var dupWG sync.WaitGroup
		dupStart := make(chan struct{})
		dupErrs := make([]error, dupRequests)
		for i := 0; i < dupRequests; i++ {
			dupWG.Add(1)
			go func(i int) {
				defer dupWG.Done()
				<-dupStart
				resp, err := client.Post(url, "application/json", bytes.NewReader(dupBody))
				if err != nil {
					dupErrs[i] = err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					dupErrs[i] = fmt.Errorf("bench: duplicate burst: status %d", resp.StatusCode)
				}
			}(i)
		}
		close(dupStart)
		dupWG.Wait()
		for _, err := range dupErrs {
			if err != nil {
				return err
			}
		}
		if s.Metrics().Get("singleflight_shared") > 0 {
			break
		}
	}
	if shared := s.Metrics().Get("singleflight_shared"); shared == 0 {
		return fmt.Errorf("bench: concurrent duplicate requests never produced singleflight_shared > 0; dedup is broken")
	}

	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return float64(sorted[idx].Microseconds()) / 1000
	}

	m := s.Metrics()
	rep.Serve.Requests = requests
	rep.Serve.Concurrency = concurrency
	rep.Serve.UniquePrograms = len(corpus)
	rep.Serve.WallSeconds = wall.Seconds()
	rep.Serve.RequestsPerSec = float64(requests) / wall.Seconds()
	rep.Serve.P50Millis = pct(0.50)
	rep.Serve.P99Millis = pct(0.99)
	rep.Serve.CacheHits = m.Get("cache_hits")
	rep.Serve.CacheMisses = m.Get("cache_misses")
	rep.Serve.DupRequests = dupRequests
	rep.Serve.Shared = m.Get("singleflight_shared")
	rep.Serve.Errors = m.Get("errors")
	return nil
}

// benchTable1 times the serial suite measurement against the parallel
// one and verifies byte-identical rendering.
func benchTable1(rep *benchReport, workers int) error {
	ctx := context.Background()
	t0 := time.Now()
	serialRows, err := suite.Table1Ctx(ctx, 1)
	if err != nil {
		return err
	}
	serialWall := time.Since(t0)
	t1 := time.Now()
	parRows, err := suite.Table1Ctx(ctx, workers)
	if err != nil {
		return err
	}
	parWall := time.Since(t1)

	var serial, par bytes.Buffer
	suite.WriteTable1(&serial, serialRows)
	suite.WriteTable1(&par, parRows)

	rep.Table1.Workers = workers
	rep.Table1.SerialSeconds = serialWall.Seconds()
	rep.Table1.ParallelSeconds = parWall.Seconds()
	if parWall > 0 {
		rep.Table1.Speedup = serialWall.Seconds() / parWall.Seconds()
	}
	rep.Table1.Identical = bytes.Equal(serial.Bytes(), par.Bytes())
	if !rep.Table1.Identical {
		return fmt.Errorf("bench: parallel table1 output differs from serial")
	}
	return nil
}
