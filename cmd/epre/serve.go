package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"flag"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/suite"
)

// cmdServe runs the optimization service until SIGINT/SIGTERM, then
// drains gracefully: in-flight requests complete, the worker pool
// empties, and the process exits 0.
func cmdServe(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent optimizations (default GOMAXPROCS)")
	queue := fs.Int("queue", 64, "additionally queued optimizations before shedding with 503")
	cacheSize := fs.Int("cache", 256, "result cache capacity, entries")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown budget")
	optParallel := fs.Int("opt-parallel", 1, "function-level parallelism inside one optimization")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}

	s := serve.New(serve.Config{
		Workers:      *workers,
		Queue:        *queue,
		CacheSize:    *cacheSize,
		Timeout:      *timeout,
		DrainTimeout: *drain,
		OptWorkers:   *optParallel,
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := serve.NotifyContext(context.Background())
	defer stop()
	fmt.Fprintf(stderr, "epre serve: listening on %s (pipeline %s)\n", l.Addr(), s.Version())
	err = s.Run(ctx, l)
	fmt.Fprintln(stderr, "epre serve: drained, bye")
	return err
}

// benchReport is the BENCH_serve.json schema: one serve-mode
// throughput measurement plus the serial-vs-parallel Table 1
// comparison, so the perf trajectory is tracked commit over commit.
type benchReport struct {
	Timestamp       string `json:"timestamp"`
	GoMaxProcs      int    `json:"gomaxprocs"`
	PipelineVersion string `json:"pipeline_version"`
	Serve           struct {
		Requests       int     `json:"requests"`
		Concurrency    int     `json:"concurrency"`
		UniquePrograms int     `json:"unique_programs"`
		WallSeconds    float64 `json:"wall_seconds"`
		RequestsPerSec float64 `json:"requests_per_sec"`
		P50Millis      float64 `json:"p50_ms"`
		P99Millis      float64 `json:"p99_ms"`
		CacheHits      int64   `json:"cache_hits"`
		CacheMisses    int64   `json:"cache_misses"`
		Shared         int64   `json:"singleflight_shared"`
		Errors         int64   `json:"errors"`
	} `json:"serve"`
	Table1 struct {
		Workers         int     `json:"workers"`
		SerialSeconds   float64 `json:"serial_seconds"`
		ParallelSeconds float64 `json:"parallel_seconds"`
		Speedup         float64 `json:"speedup"`
		Identical       bool    `json:"identical_output"`
	} `json:"table1"`
}

// cmdBench measures the service end to end — an in-process daemon under
// concurrent load over the whole suite corpus — and the parallel
// Table 1 run against the serial one, then writes the JSON report.
func cmdBench(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_serve.json", "report file")
	passMgrOut := fs.String("passmgr-out", "BENCH_passmgr.json", "pass-manager/analysis-cache report file (empty to skip)")
	hotpathOut := fs.String("hotpath-out", "BENCH_hotpath.json", "hot-path allocation report file (empty to skip)")
	hotpathIters := fs.Int("hotpath-iters", 10, "optimizer runs per hot-path measurement")
	requests := fs.Int("requests", 200, "optimize requests to issue")
	concurrency := fs.Int("concurrency", 16, "concurrent clients")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "table1 worker count to compare against serial")
	level := fs.String("level", "reassoc", "optimization level for the serve workload")
	prof := addProfileFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("bench: unexpected arguments %v", fs.Args())
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	rep := &benchReport{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		PipelineVersion: core.PipelineVersion(),
	}

	if err := benchServe(rep, *requests, *concurrency, *level); err != nil {
		return err
	}
	if err := benchTable1(rep, *parallel); err != nil {
		return err
	}
	if *passMgrOut != "" {
		if err := benchPassMgr(*passMgrOut, stdout); err != nil {
			return err
		}
	}
	if *hotpathOut != "" {
		if err := benchHotpath(*hotpathOut, *hotpathIters, stdout); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serve:  %d reqs, %d clients: %.2f req/s (p50 %.1fms, p99 %.1fms; %d misses, %d hits, %d shared)\n",
		rep.Serve.Requests, rep.Serve.Concurrency, rep.Serve.RequestsPerSec,
		rep.Serve.P50Millis, rep.Serve.P99Millis,
		rep.Serve.CacheMisses, rep.Serve.CacheHits, rep.Serve.Shared)
	fmt.Fprintf(stdout, "table1: serial %.2fs, parallel(%d) %.2fs: %.2fx speedup, identical=%v\n",
		rep.Table1.SerialSeconds, rep.Table1.Workers, rep.Table1.ParallelSeconds,
		rep.Table1.Speedup, rep.Table1.Identical)
	fmt.Fprintf(stdout, "report written to %s\n", *out)
	return nil
}

// benchServe drives an in-process daemon with `concurrency` clients
// cycling `requests` optimize calls over the suite corpus.
func benchServe(rep *benchReport, requests, concurrency int, level string) error {
	corpus := suite.All()
	if len(corpus) == 0 {
		return fmt.Errorf("bench: empty suite corpus")
	}
	s := serve.New(serve.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go s.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	url := "http://" + l.Addr().String() + "/optimize"

	bodies := make([][]byte, len(corpus))
	for i, r := range corpus {
		b, err := json.Marshal(serve.OptimizeRequest{Source: r.Source, Level: level})
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: concurrency}}
	jobs := make(chan int)
	lats := make([]time.Duration, requests)
	errc := make(chan error, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		go func() {
			for i := range jobs {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("bench: request %d: status %d", i, resp.StatusCode)
					return
				}
				lats[i] = time.Since(t0)
			}
			errc <- nil
		}()
	}
	for i := 0; i < requests; i++ {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < concurrency; w++ {
		if err := <-errc; err != nil {
			return err
		}
	}
	wall := time.Since(start)

	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return float64(sorted[idx].Microseconds()) / 1000
	}

	m := s.Metrics()
	rep.Serve.Requests = requests
	rep.Serve.Concurrency = concurrency
	rep.Serve.UniquePrograms = len(corpus)
	rep.Serve.WallSeconds = wall.Seconds()
	rep.Serve.RequestsPerSec = float64(requests) / wall.Seconds()
	rep.Serve.P50Millis = pct(0.50)
	rep.Serve.P99Millis = pct(0.99)
	rep.Serve.CacheHits = m.Get("cache_hits")
	rep.Serve.CacheMisses = m.Get("cache_misses")
	rep.Serve.Shared = m.Get("singleflight_shared")
	rep.Serve.Errors = m.Get("errors")
	return nil
}

// benchTable1 times the serial suite measurement against the parallel
// one and verifies byte-identical rendering.
func benchTable1(rep *benchReport, workers int) error {
	ctx := context.Background()
	t0 := time.Now()
	serialRows, err := suite.Table1Ctx(ctx, 1)
	if err != nil {
		return err
	}
	serialWall := time.Since(t0)
	t1 := time.Now()
	parRows, err := suite.Table1Ctx(ctx, workers)
	if err != nil {
		return err
	}
	parWall := time.Since(t1)

	var serial, par bytes.Buffer
	suite.WriteTable1(&serial, serialRows)
	suite.WriteTable1(&par, parRows)

	rep.Table1.Workers = workers
	rep.Table1.SerialSeconds = serialWall.Seconds()
	rep.Table1.ParallelSeconds = parWall.Seconds()
	if parWall > 0 {
		rep.Table1.Speedup = serialWall.Seconds() / parWall.Seconds()
	}
	rep.Table1.Identical = bytes.Equal(serial.Bytes(), par.Bytes())
	if !rep.Table1.Identical {
		return fmt.Errorf("bench: parallel table1 output differs from serial")
	}
	return nil
}
