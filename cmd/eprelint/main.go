// Command eprelint runs the repo-invariant linter (internal/lint)
// over a module tree and reports findings in the familiar
// file:line:col format.  It enforces the project conventions go vet
// cannot: CFG edge lists are only written through the marking helpers,
// pass bodies stay deterministic (no wall clock, no map-iteration
// order reaching output), and scratch-arena borrows are always
// released.  Exit status: 0 clean, 1 findings, 2 usage or parse error.
//
//	eprelint            # lint the module rooted at the cwd
//	eprelint path/to/repo
//
// Suppress a deliberate violation inline, with a reason:
//
//	t.Preds = append(t.Preds, e.from) //lint:ignore cfgwrite splice keeps φ slot order
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	root := "."
	switch len(args) {
	case 0:
	case 1:
		if args[0] == "-h" || args[0] == "--help" {
			fmt.Fprintln(os.Stderr, "usage: eprelint [module-root]")
			return 2
		}
		root = args[0]
	default:
		fmt.Fprintln(os.Stderr, "usage: eprelint [module-root]")
		return 2
	}
	diags, err := lint.Tree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eprelint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "eprelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
