package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRepoLintsClean(t *testing.T) {
	if code := run([]string{"../.."}); code != 0 {
		t.Errorf("eprelint on the repo exited %d, want 0", code)
	}
}

func TestFindingsExitNonzero(t *testing.T) {
	dir := t.TempDir()
	// A fake pass package with a wall-clock read.
	pkg := filepath.Join(dir, "internal", "gvn")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package gvn\nimport \"time\"\nfunc f() time.Time { return time.Now() }\n"
	if err := os.WriteFile(filepath.Join(pkg, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{dir}); code != 1 {
		t.Errorf("eprelint on a dirty tree exited %d, want 1", code)
	}
}

func TestUsage(t *testing.T) {
	if code := run([]string{"a", "b"}); code != 2 {
		t.Errorf("two arguments accepted (exit %d), want usage error 2", code)
	}
	if code := run([]string{"--help"}); code != 2 {
		t.Errorf("--help exited %d, want 2", code)
	}
}
