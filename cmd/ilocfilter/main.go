// Command ilocfilter runs a single optimization pass as a Unix filter:
// it reads ILOC text on stdin, applies the named pass to every
// function, and writes ILOC text on stdout.  This mirrors the paper's
// optimizer structure (§4): "each pass is a Unix filter that consumes
// and produces ILOC ... its flexibility makes it ideal for
// experimentation".  Passes compose with ordinary shell pipelines:
//
//	epre compile prog.mf | ilocfilter reassoc | ilocfilter gvn |
//	    ilocfilter normalize | ilocfilter pre | ilocfilter sccp |
//	    ilocfilter peephole | ilocfilter dce | ilocfilter coalesce |
//	    ilocfilter emptyblocks
//
// Every filter re-verifies its output before printing and exits
// non-zero (naming the pass) if the pass broke the program, so a buggy
// filter cannot silently feed the next pipe stage.
//
// "ilocfilter check" is the assertion stage: it transforms nothing,
// runs the semantic analyzers (structural verification plus the
// dataflow/SSA def-use verifier) on its input, echoes the program
// unchanged, and exits non-zero if any error diagnostic fires:
//
//	... | ilocfilter pre | ilocfilter check | ilocfilter dce | ...
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ilocfilter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gvnName := fs.String("gvn", "", "GVN backend selecting the pass the generic \"gvn\" stage runs (awz|precise; default awz)")
	preName := fs.String("pre", "", "PRE backend selecting the pass the generic \"pre\" stage runs (drechsler|lcm|lospre; default drechsler)")
	usage := func() {
		fmt.Fprintln(stderr, "usage: ilocfilter [-gvn awz|precise] [-pre drechsler|lcm|lospre] PASS   (reads ILOC on stdin, writes ILOC on stdout)")
		fmt.Fprintln(stderr, "passes:")
		for _, p := range core.AllPasses() {
			fmt.Fprintf(stderr, "  %s\n", p.Name)
		}
	}
	fs.Usage = usage
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		usage()
		return 2
	}
	gvnBackend, err := core.ParseGVNBackend(*gvnName)
	if err != nil {
		fmt.Fprintln(stderr, "ilocfilter:", err)
		return 2
	}
	preBackend, err := core.ParsePREBackend(*preName)
	if err != nil {
		fmt.Fprintln(stderr, "ilocfilter:", err)
		return 2
	}
	name := fs.Arg(0)
	// The generic stage names resolve through the backend flags, so
	// pipelines can switch backends without renaming the stage.
	switch name {
	case "gvn":
		name = gvnBackend.PassName()
	case "pre":
		name = preBackend.PassName()
	}
	pass, err := core.PassByName(name)
	if err != nil {
		fmt.Fprintln(stderr, "ilocfilter:", err)
		return 2
	}
	text, err := io.ReadAll(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "ilocfilter:", err)
		return 1
	}
	// Input is usually ILOC (the pipe case), but a front-end source —
	// Mini-Fortran or PL/0 — works directly, letting a pipeline start
	// at `ilocfilter reassoc < prog.pl0` without a compile stage.
	prog, _, err := lang.Compile(string(text), "")
	if err != nil {
		fmt.Fprintln(stderr, "ilocfilter: input:", err)
		return 1
	}
	if name == "check" {
		// The assertion stage: analyze, echo unchanged, fail on errors.
		diags := check.Program(prog, check.Options{})
		check.Report(stderr, diags)
		prog.Fprint(stdout)
		if len(check.Errors(diags)) > 0 {
			return 1
		}
		return 0
	}
	for _, f := range prog.Funcs {
		pass.Run(&core.PassContext{
			Ctx:      context.Background(),
			Func:     f,
			Analyses: analysis.NewCache(f),
		})
	}
	if err := ir.VerifyProgram(prog); err != nil {
		fmt.Fprintf(stderr, "ilocfilter: after %s: %v\n", name, err)
		return 1
	}
	prog.Fprint(stdout)
	return 0
}
