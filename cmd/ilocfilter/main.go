// Command ilocfilter runs a single optimization pass as a Unix filter:
// it reads ILOC text on stdin, applies the named pass to every
// function, and writes ILOC text on stdout.  This mirrors the paper's
// optimizer structure (§4): "each pass is a Unix filter that consumes
// and produces ILOC ... its flexibility makes it ideal for
// experimentation".  Passes compose with ordinary shell pipelines:
//
//	epre compile prog.mf | ilocfilter reassoc | ilocfilter gvn |
//	    ilocfilter normalize | ilocfilter pre | ilocfilter sccp |
//	    ilocfilter peephole | ilocfilter dce | ilocfilter coalesce |
//	    ilocfilter emptyblocks
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/ir"
)

func main() {
	if len(os.Args) != 2 || os.Args[1] == "-h" || os.Args[1] == "--help" {
		fmt.Fprintln(os.Stderr, "usage: ilocfilter PASS   (reads ILOC on stdin, writes ILOC on stdout)")
		fmt.Fprintln(os.Stderr, "passes:")
		for _, p := range core.AllPasses() {
			fmt.Fprintf(os.Stderr, "  %s\n", p.Name)
		}
		os.Exit(2)
	}
	pass, err := core.PassByName(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilocfilter:", err)
		os.Exit(2)
	}
	text, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilocfilter:", err)
		os.Exit(1)
	}
	prog, err := ir.ParseProgramString(string(text))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilocfilter:", err)
		os.Exit(1)
	}
	if err := ir.VerifyProgram(prog); err != nil {
		fmt.Fprintln(os.Stderr, "ilocfilter: input:", err)
		os.Exit(1)
	}
	for _, f := range prog.Funcs {
		pass.Run(f)
		if err := ir.Verify(f); err != nil {
			fmt.Fprintf(os.Stderr, "ilocfilter: after %s: %v\n", pass.Name, err)
			os.Exit(1)
		}
	}
	prog.Fprint(os.Stdout)
}
