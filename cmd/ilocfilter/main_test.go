package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minift"
)

const filterSrc = `
func main(n: int): int {
    var s: int = 0
    for i = 1 to n {
        s = s + i * n
    }
    return s
}
`

func runFilter(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestHelp(t *testing.T) {
	code, _, stderr := runFilter(t, []string{"--help"}, "")
	if code != 2 {
		t.Errorf("help exit = %d, want 2", code)
	}
	for _, want := range []string{"usage: ilocfilter [-gvn awz|precise] [-pre drechsler|lcm|lospre] PASS", "pre", "gvn", "check"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("help output missing %q:\n%s", want, stderr)
		}
	}
}

func TestUnknownPass(t *testing.T) {
	code, _, stderr := runFilter(t, []string{"no-such-pass"}, "")
	if code != 2 || !strings.Contains(stderr, "unknown pass") {
		t.Errorf("code=%d stderr=%q", code, stderr)
	}
}

func TestBadInputRejected(t *testing.T) {
	code, _, stderr := runFilter(t, []string{"dce"}, "this is not iloc\n")
	if code != 1 || !strings.Contains(stderr, "ilocfilter:") {
		t.Errorf("code=%d stderr=%q", code, stderr)
	}
}

// TestPipelineRoundTrip pushes a compiled program through the full
// distribution-level pass pipeline one filter at a time — exactly the
// shell-pipe usage — and checks the final program still computes the
// same result.
func TestPipelineRoundTrip(t *testing.T) {
	prog, err := minift.Compile(filterSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(prog)
	want, err := m.Call("main", interp.IntVal(9))
	if err != nil {
		t.Fatal(err)
	}

	text := prog.String()
	pipeline := []string{"reassoc-dist", "gvn", "normalize", "pre", "check",
		"sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce", "check"}
	for _, pass := range pipeline {
		code, out, stderr := runFilter(t, []string{pass}, text)
		if code != 0 {
			t.Fatalf("filter %s failed (%d): %s", pass, code, stderr)
		}
		text = out
	}
	final, err := ir.ParseProgramString(text)
	if err != nil {
		t.Fatalf("pipeline output does not parse: %v", err)
	}
	m2 := interp.NewMachine(final)
	got, err := m2.Call("main", interp.IntVal(9))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("pipeline changed semantics: %s vs %s", got, want)
	}
	if m2.Steps > m.Steps {
		t.Errorf("pipeline lengthened execution: %d -> %d", m.Steps, m2.Steps)
	}
}

// TestCheckStageFails: the check stage exits non-zero on a program
// with an undefined register use, and still echoes the program so the
// pipe shape is preserved.
func TestCheckStageFails(t *testing.T) {
	const bad = `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    add r1, r9 => r2
    ret r2
}
`
	code, stdout, stderr := runFilter(t, []string{"check"}, bad)
	if code != 1 {
		t.Errorf("check on bad program: exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "undefined register r9") || !strings.Contains(stderr, "[defuse]") {
		t.Errorf("missing diagnostic on stderr: %q", stderr)
	}
	if !strings.Contains(stdout, "add r1, r9 => r2") {
		t.Errorf("check should echo the program, got: %q", stdout)
	}
}

func TestCheckStagePassesCleanProgram(t *testing.T) {
	prog, err := minift.Compile(filterSrc)
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runFilter(t, []string{"check"}, prog.String())
	if code != 0 || stderr != "" {
		t.Errorf("check on clean program: exit %d, stderr %q", code, stderr)
	}
	if stdout != prog.String() {
		t.Errorf("check must echo its input unchanged")
	}
}

// TestGVNBackendFlag: the generic "gvn" stage name resolves through
// -gvn, so shell pipelines switch backends without renaming stages.
// Both backends must produce a valid program with unchanged behavior.
func TestGVNBackendFlag(t *testing.T) {
	prog, err := minift.Compile(filterSrc)
	if err != nil {
		t.Fatal(err)
	}
	var src bytes.Buffer
	prog.Fprint(&src)
	want := runMain(t, prog)

	for _, backend := range []string{"awz", "precise"} {
		code, stdout, stderr := runFilter(t, []string{"-gvn", backend, "gvn"}, src.String())
		if code != 0 {
			t.Fatalf("-gvn %s gvn exited %d: %s", backend, code, stderr)
		}
		out, err := ir.ParseProgramString(stdout)
		if err != nil {
			t.Fatalf("-gvn %s output unparsable: %v", backend, err)
		}
		if got := runMain(t, out); got != want {
			t.Errorf("-gvn %s: main() = %s, want %s", backend, got, want)
		}
	}
	if code, _, stderr := runFilter(t, []string{"-gvn", "bogus", "gvn"}, src.String()); code != 2 ||
		!strings.Contains(stderr, "unknown GVN backend") {
		t.Errorf("bogus backend accepted (exit %d): %s", code, stderr)
	}
}

// TestPREBackendFlag: the generic "pre" stage resolves through -pre to
// each backend's pass, every backend's output reparses and computes the
// same result, and a bogus backend is a usage error.
func TestPREBackendFlag(t *testing.T) {
	prog, err := minift.Compile(filterSrc)
	if err != nil {
		t.Fatal(err)
	}
	var src bytes.Buffer
	prog.Fprint(&src)
	want := runMain(t, prog)

	for _, backend := range []string{"drechsler", "lcm", "lospre"} {
		code, stdout, stderr := runFilter(t, []string{"-pre", backend, "pre"}, src.String())
		if code != 0 {
			t.Fatalf("-pre %s pre exited %d: %s", backend, code, stderr)
		}
		out, err := ir.ParseProgramString(stdout)
		if err != nil {
			t.Fatalf("-pre %s output unparsable: %v", backend, err)
		}
		if got := runMain(t, out); got != want {
			t.Errorf("-pre %s: main() = %s, want %s", backend, got, want)
		}
	}
	// The default resolves to the paper's pass: identical bytes to an
	// explicit drechsler run.
	_, defOut, _ := runFilter(t, []string{"pre"}, src.String())
	_, dreOut, _ := runFilter(t, []string{"-pre", "drechsler", "pre"}, src.String())
	if defOut != dreOut {
		t.Error("default pre stage differs from explicit -pre drechsler")
	}
	if code, _, stderr := runFilter(t, []string{"-pre", "bogus", "pre"}, src.String()); code != 2 ||
		!strings.Contains(stderr, "unknown PRE backend") {
		t.Errorf("bogus backend accepted (exit %d): %s", code, stderr)
	}
}

func runMain(t *testing.T, prog *ir.Program) interp.Value {
	t.Helper()
	m := interp.NewMachine(prog)
	v, err := m.Call("main", interp.IntVal(7))
	if err != nil {
		t.Fatal(err)
	}
	return v
}
