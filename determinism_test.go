package epre

import (
	"testing"

	"repro/internal/core"
	"repro/internal/suite"
)

// TestDeterministicOutput guards against map-iteration-order leaks:
// every pipeline must produce byte-identical ILOC on repeated runs.
// (Register numbering feeds sorting tie-breaks, so even
// semantics-preserving reordering would make Table 1 unreproducible.)
func TestDeterministicOutput(t *testing.T) {
	routines := []string{"fmin", "sgemv", "tomcatv", "foo"}
	for _, name := range routines {
		r, ok := suite.ByName(name)
		if !ok {
			t.Fatalf("no routine %q", name)
		}
		for _, level := range core.Levels {
			var golden string
			for trial := 0; trial < 3; trial++ {
				prog, err := r.Compile()
				if err != nil {
					t.Fatal(err)
				}
				opt, err := core.Optimize(prog, level)
				if err != nil {
					t.Fatal(err)
				}
				text := opt.String()
				if trial == 0 {
					golden = text
				} else if text != golden {
					t.Fatalf("%s at %s: output differs between runs", name, level)
				}
			}
		}
	}
}
