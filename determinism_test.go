package epre

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/suite"
)

// TestDeterministicOutput guards against map-iteration-order leaks:
// every pipeline must produce byte-identical ILOC on repeated runs.
// (Register numbering feeds sorting tie-breaks, so even
// semantics-preserving reordering would make Table 1 unreproducible.)
//
// Since the arena refactor the test also pins the representation side
// of the property: determinism must survive a trip through the parser
// — a program rebuilt from its own printed text (fresh arena, fresh
// symbol table, fresh InstrIDs) must optimize to the same bytes as the
// original.  Interning order or arena layout leaking into pass
// decisions would show up here as a reparse/direct divergence even
// when direct runs agree with each other.
func TestDeterministicOutput(t *testing.T) {
	routines := []string{"fmin", "sgemv", "tomcatv", "foo"}
	for _, name := range routines {
		r, ok := suite.ByName(name)
		if !ok {
			t.Fatalf("no routine %q", name)
		}
		for _, level := range core.Levels {
			var golden string
			for trial := 0; trial < 3; trial++ {
				prog, err := r.Compile()
				if err != nil {
					t.Fatal(err)
				}
				opt, err := core.Optimize(prog, level)
				if err != nil {
					t.Fatal(err)
				}
				text := opt.String()
				if trial == 0 {
					golden = text
				} else if text != golden {
					t.Fatalf("%s at %s: output differs between runs", name, level)
				}
			}

			// Rebuild the input in a fresh arena via the textual
			// boundary and re-run the level: same bytes.
			prog, err := r.Compile()
			if err != nil {
				t.Fatal(err)
			}
			reparsed, err := ir.ParseProgramString(prog.String())
			if err != nil {
				t.Fatalf("%s: compiled program does not re-parse: %v", name, err)
			}
			opt, err := core.Optimize(reparsed, level)
			if err != nil {
				t.Fatal(err)
			}
			if text := opt.String(); text != golden {
				t.Fatalf("%s at %s: optimizing the reparsed program diverges from the direct run", name, level)
			}
		}
	}
}
