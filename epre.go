// Package epre reproduces Briggs & Cooper, "Effective Partial
// Redundancy Elimination" (PLDI 1994): an ILOC-based optimizer in
// which global reassociation and partition-based global value
// numbering reshape and rename code so that partial redundancy
// elimination finds more redundancies and hoists more loop invariants.
//
// The package is the public face of the library.  Typical use:
//
//	prog, _ := epre.Compile(src)                  // Mini-Fortran → ILOC
//	opt, _ := prog.Optimize(epre.LevelReassoc)    // paper's 3rd level
//	res, _ := opt.Run("driver", epre.Int(100))    // interpret, count ops
//	fmt.Println(res.DynamicOps)
//
// The four optimization levels correspond to the columns of the
// paper's Table 1; Run's dynamic operation count is the paper's
// metric.  See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the reproduced tables and figures.
package epre

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/minift"
	"repro/internal/pl0"
	"repro/internal/reassoc"
	"repro/internal/regalloc"
)

// Level selects an optimization pipeline (a Table 1 column).
type Level = core.Level

// The optimization levels of the paper's Table 1, plus LevelNone.
const (
	LevelNone     = core.LevelNone
	LevelBaseline = core.LevelBaseline
	LevelPartial  = core.LevelPartial
	LevelReassoc  = core.LevelReassoc
	LevelDist     = core.LevelDist
)

// Levels lists the Table 1 levels in presentation order.
var Levels = core.Levels

// ParseLevel maps a level name ("baseline", "partial", "reassoc",
// "dist", ...) to a Level.
func ParseLevel(s string) (Level, error) { return core.ParseLevel(s) }

// Value is a dynamically typed machine value (int64 or float64).
type Value = interp.Value

// Int wraps an integer argument for Run.
func Int(i int64) Value { return interp.IntVal(i) }

// Float wraps a floating argument for Run.
func Float(f float64) Value { return interp.FloatVal(f) }

// Program is a compiled ILOC program.
type Program struct {
	prog *ir.Program
}

// Compile compiles Mini-Fortran source to an unoptimized ILOC program.
func Compile(src string) (*Program, error) {
	p, err := minift.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// MustCompile is Compile panicking on error, for tests and examples.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// CompilePL0 compiles PL/0 source to an unoptimized ILOC program.
func CompilePL0(src string) (*Program, error) {
	p, err := pl0.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// CompileAny compiles source in any supported language — Mini-Fortran,
// PL/0, or textual ILOC — detecting which from the source's leading
// keyword.
func CompileAny(src string) (*Program, error) {
	p, _, err := lang.Compile(src, "")
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// ParseILOC parses a program in textual ILOC form.
func ParseILOC(text string) (*Program, error) {
	p, err := ir.ParseProgramString(text)
	if err != nil {
		return nil, err
	}
	if err := ir.VerifyProgram(p); err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// ILOC renders the program as ILOC text (parseable by ParseILOC).
func (p *Program) ILOC() string { return p.prog.String() }

// StaticOps returns the static instruction count (the paper's
// Table 2 metric).
func (p *Program) StaticOps() int { return p.prog.InstrCount() }

// Functions lists the program's function names.
func (p *Program) Functions() []string {
	names := make([]string, len(p.prog.Funcs))
	for i, f := range p.prog.Funcs {
		names[i] = f.Name
	}
	return names
}

// Optimize returns a new program transformed at the given level; the
// receiver is unchanged.  Optimize is safe for concurrent use on
// distinct Programs.
func (p *Program) Optimize(level Level) (*Program, error) {
	out, err := core.Optimize(p.prog, level)
	if err != nil {
		return nil, err
	}
	return &Program{prog: out}, nil
}

// OptimizeParallel is Optimize under a context with function-level
// parallelism: up to workers functions are transformed concurrently
// (workers <= 1 is serial, values above GOMAXPROCS are clamped).  The
// result is byte-identical to Optimize's — functions are optimized
// independently either way.  When ctx is cancelled the optimization
// stops with an error wrapping ctx.Err().
func (p *Program) OptimizeParallel(ctx context.Context, level Level, workers int) (*Program, error) {
	out, err := core.OptimizeWith(p.prog, level, core.OptimizeOptions{Ctx: ctx, Workers: workers})
	if err != nil {
		return nil, err
	}
	return &Program{prog: out}, nil
}

// OptimizeChecked is Optimize with every pass application sandwiched
// between semantic checks: structural verification, the dataflow/SSA
// def-use verifier, and translation validation by differential
// interpretation (see internal/check).  It returns the rendered
// diagnostics alongside the transformed program; the program is safe
// to use only when no diagnostics were reported.  Setting EPRE_CHECK=1
// in the environment applies the same checking to plain Optimize.
func (p *Program) OptimizeChecked(level Level) (*Program, []string, error) {
	out, diags, err := core.CheckedOptimize(p.prog, level)
	if err != nil {
		return nil, nil, err
	}
	msgs := make([]string, len(diags))
	for i, d := range diags {
		msgs[i] = d.String()
	}
	return &Program{prog: out}, msgs, nil
}

// OptimizePasses applies an explicit pass sequence by name (the
// Unix-filter view of the optimizer; see core.AllPasses).
func (p *Program) OptimizePasses(passes ...string) (*Program, error) {
	resolved := make([]core.Pass, len(passes))
	for i, name := range passes {
		pass, err := core.PassByName(name)
		if err != nil {
			return nil, err
		}
		resolved[i] = pass
	}
	out := p.prog.Clone()
	for _, f := range out.Funcs {
		pc := &core.PassContext{
			Ctx:      context.Background(),
			Func:     f,
			Analyses: analysis.NewCache(f),
		}
		for _, pass := range resolved {
			if pass.Run(pc) {
				if err := ir.Verify(f); err != nil {
					return nil, fmt.Errorf("after pass %s on %s: %w", pass.Name, f.Name, err)
				}
			}
		}
	}
	return &Program{prog: out}, nil
}

// RunResult reports one interpreted execution.
type RunResult struct {
	// Value is the called function's return value.
	Value Value
	// DynamicOps counts executed ILOC operations, branches included —
	// the paper's Table 1 metric.
	DynamicOps int64
	// Output collects values written by print statements.
	Output []Value
}

// Run interprets the program, calling the named function.
func (p *Program) Run(fn string, args ...Value) (RunResult, error) {
	m := interp.NewMachine(p.prog)
	v, err := m.Call(fn, args...)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{Value: v, DynamicOps: m.Steps, Output: m.Output}, nil
}

// ForwardPropagationExpansion runs the reassociation pass alone on a
// copy of the program and reports the static instruction counts before
// and after forward propagation, summed over functions — one row of
// the paper's Table 2.
func (p *Program) ForwardPropagationExpansion() (before, after int) {
	cp := p.prog.Clone()
	for _, f := range cp.Funcs {
		st := reassoc.Run(f, reassoc.DefaultOptions())
		before += st.BeforeProp
		after += st.AfterProp
	}
	return before, after
}

// AllocateRegisters maps the program onto k physical registers with a
// Chaitin–Briggs graph-coloring allocator, inserting spill code backed
// by static memory slots.  It returns the number of spilled values.
// The program must be fully optimized first (φ-free); k must be at
// least regalloc.MinK (4).
func (p *Program) AllocateRegisters(k int) (spilled int, err error) {
	res, err := regalloc.Run(p.prog, k)
	if err != nil {
		return 0, err
	}
	return res.Spilled, nil
}

// Dump returns the ILOC text of a single function, for inspection.
func (p *Program) Dump(fn string) (string, error) {
	f := p.prog.Func(fn)
	if f == nil {
		return "", fmt.Errorf("epre: no function %q", fn)
	}
	var sb strings.Builder
	f.Fprint(&sb)
	return sb.String(), nil
}
