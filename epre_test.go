package epre_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	epre "repro"
)

const quickSrc = `
func foo(y: int, z: int): int {
    var s: int = 0
    var x: int = y + z
    for i = x to 100 {
        s = 1 + s + x
    }
    return s
}
`

func TestCompileAndRun(t *testing.T) {
	p, err := epre.Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run("foo", epre.Int(1), epre.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I != 392 {
		t.Errorf("foo(1,2) = %s, want 392", res.Value)
	}
	if res.DynamicOps <= 0 {
		t.Error("no dynamic ops counted")
	}
	if fns := p.Functions(); len(fns) != 1 || fns[0] != "foo" {
		t.Errorf("Functions() = %v", fns)
	}
}

func TestOptimizeIsPureAndImproves(t *testing.T) {
	p := epre.MustCompile(quickSrc)
	before := p.ILOC()
	opt, err := p.Optimize(epre.LevelReassoc)
	if err != nil {
		t.Fatal(err)
	}
	if p.ILOC() != before {
		t.Error("Optimize mutated the receiver")
	}
	r0, err := p.Run("foo", epre.Int(1), epre.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := opt.Run("foo", epre.Int(1), epre.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if r0.Value.I != r1.Value.I {
		t.Errorf("optimization changed the result: %s vs %s", r0.Value, r1.Value)
	}
	if r1.DynamicOps >= r0.DynamicOps {
		t.Errorf("no improvement: %d vs %d", r1.DynamicOps, r0.DynamicOps)
	}
}

func TestILOCRoundTrip(t *testing.T) {
	p := epre.MustCompile(quickSrc)
	text := p.ILOC()
	q, err := epre.ParseILOC(text)
	if err != nil {
		t.Fatal(err)
	}
	if q.ILOC() != text {
		t.Error("ILOC round trip not stable")
	}
	r0, _ := p.Run("foo", epre.Int(3), epre.Int(4))
	r1, _ := q.Run("foo", epre.Int(3), epre.Int(4))
	if r0.Value.I != r1.Value.I {
		t.Error("round trip changed semantics")
	}
}

func TestParseILOCRejectsGarbage(t *testing.T) {
	if _, err := epre.ParseILOC("this is not iloc"); err == nil {
		t.Error("expected parse error")
	}
	// Structurally broken (cbr with one target) must fail verification.
	const bad = `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    cbr r1 -> b1
b1:
    ret r1
}
`
	if _, err := epre.ParseILOC(bad); err == nil {
		t.Error("expected verify error for single-target cbr")
	}
}

func TestOptimizePasses(t *testing.T) {
	p := epre.MustCompile(quickSrc)
	q, err := p.OptimizePasses("reassoc", "gvn", "normalize", "pre", "sccp", "dce", "coalesce", "emptyblocks")
	if err != nil {
		t.Fatal(err)
	}
	r, err := q.Run("foo", epre.Int(1), epre.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Value.I != 392 {
		t.Errorf("got %s, want 392", r.Value)
	}
	if _, err := p.OptimizePasses("no-such-pass"); err == nil {
		t.Error("expected unknown-pass error")
	}
}

func TestParseLevel(t *testing.T) {
	for _, s := range []string{"baseline", "partial", "reassoc", "dist", "none"} {
		if _, err := epre.ParseLevel(s); err != nil {
			t.Errorf("ParseLevel(%q): %v", s, err)
		}
	}
	if _, err := epre.ParseLevel("bogus"); err == nil {
		t.Error("expected error")
	}
}

func TestForwardPropagationExpansion(t *testing.T) {
	p := epre.MustCompile(quickSrc)
	before, after := p.ForwardPropagationExpansion()
	if before <= 0 || after <= 0 {
		t.Fatalf("bad counts %d, %d", before, after)
	}
	ratio := float64(after) / float64(before)
	if ratio < 0.8 || ratio > 3.0 {
		t.Errorf("expansion %.3f outside the plausible band", ratio)
	}
}

func TestDump(t *testing.T) {
	p := epre.MustCompile(quickSrc)
	text, err := p.Dump("foo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "func foo(") {
		t.Errorf("Dump output:\n%s", text)
	}
	if _, err := p.Dump("nope"); err == nil {
		t.Error("expected error for unknown function")
	}
}

func TestPrintOutput(t *testing.T) {
	const src = `
func main(n: int) {
    for i = 1 to n {
        print i * i
    }
}
`
	p := epre.MustCompile(src)
	res, err := p.Run("main", epre.Int(4))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 4, 9, 16}
	if len(res.Output) != len(want) {
		t.Fatalf("output %v", res.Output)
	}
	for i, v := range want {
		if res.Output[i].I != v {
			t.Errorf("output[%d] = %s, want %d", i, res.Output[i], v)
		}
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := epre.Compile("func f( {"); err == nil {
		t.Error("expected syntax error")
	}
	if _, err := epre.Compile("func f() { x = 1 }"); err == nil {
		t.Error("expected semantic error")
	}
}

func TestOptimizeParallel(t *testing.T) {
	p := epre.MustCompile(quickSrc)
	serial, err := p.Optimize(epre.LevelDist)
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.OptimizeParallel(context.Background(), epre.LevelDist, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial.ILOC() != par.ILOC() {
		t.Error("OptimizeParallel output differs from Optimize")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.OptimizeParallel(ctx, epre.LevelDist, 8); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}
