// Matrixaddress demonstrates the paper's motivating case (§2.1): the
// address arithmetic of multi-dimensional, column-major array accesses.
// Reassociation sorts the subscript expression by rank so the part
// that depends only on the outer loop's index hoists out of the inner
// loop, and distribution (of the element size over the index sum)
// exposes even more motion — the Scarborough–Kolsky effect the paper
// generalizes.
package main

import (
	"fmt"
	"log"

	epre "repro"
)

const src = `
// Column sums of a column-major matrix: the classic case where
// a[i,j]'s address is partly invariant in the inner loop.
func colsum(m: int, n: int, a: [m,*]real, s: [*]real) {
    for j = 1 to n {
        s[j] = 0.0
        for i = 1 to m {
            s[j] = s[j] + a[i,j]
        }
    }
}

func driver(m: int, n: int): real {
    var a: [32,32]real
    var s: [32]real
    for j = 1 to n {
        for i = 1 to m {
            a[i,j] = real(i) * 0.5 + real(j)
        }
    }
    colsum(m, n, a, s)
    var t: real = 0.0
    for j = 1 to n {
        t = t + s[j]
    }
    return t
}
`

func main() {
	prog, err := epre.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("column sums over a 32x32 column-major matrix")
	fmt.Println("(the a[i,j] subscript is  base + ((i-1) + (j-1)*m) * 8)")
	fmt.Println()
	var prev int64
	for _, level := range epre.Levels {
		opt, err := prog.Optimize(level)
		if err != nil {
			log.Fatal(err)
		}
		res, err := opt.Run("driver", epre.Int(32), epre.Int(32))
		if err != nil {
			log.Fatal(err)
		}
		delta := ""
		if prev > 0 {
			delta = fmt.Sprintf(" (%+.1f%% vs previous level)", 100*float64(prev-res.DynamicOps)/float64(prev))
		}
		fmt.Printf("  %-14s ops=%-8d result=%s%s\n", level, res.DynamicOps, res.Value, delta)
		prev = res.DynamicOps
	}

	fmt.Println("\ninner loop at the distribution level:")
	opt, _ := prog.Optimize(epre.LevelDist)
	text, _ := opt.Dump("colsum")
	fmt.Print(text)
}
