// Paperexample walks the running example of the paper through every
// transformation stage, printing the intermediate code after each —
// the programmatic version of Figures 2 through 10.
//
// Figure 2  source                     (Mini-Fortran here)
// Figure 3  naive ILOC translation     (epre.Compile)
// Figures 4–7  global reassociation    (pass "reassoc": SSA+ranks,
//
//	copies for φs, forward propagation, sorting by rank)
//
// Figure 8  global value numbering     (pass "gvn": renaming only)
// Figure 9  partial redundancy elim.   (passes "normalize", "pre")
// Figure 10 coalescing and cleanup     (baseline tail)
package main

import (
	"fmt"
	"log"

	epre "repro"
)

const src = `
func foo(y: int, z: int): int {
    var s: int = 0
    var x: int = y + z
    for i = x to 100 {
        s = 1 + s + x
    }
    return s
}
`

func main() {
	prog, err := epre.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	show := func(title string, p *epre.Program) {
		fmt.Printf("=== %s ===\n", title)
		text, err := p.Dump("foo")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
		fmt.Printf("(static ops: %d)\n\n", p.StaticOps())
	}
	fmt.Printf("=== Figure 2: source ===\n%s\n", src)
	show("Figure 3: naive three-address translation", prog)

	stages := []struct {
		title  string
		passes []string
	}{
		{"Figures 4-7: after global reassociation", []string{"reassoc"}},
		{"Figure 8: after partition-based global value numbering", []string{"gvn"}},
		{"Figure 9: after partial redundancy elimination", []string{"normalize", "pre"}},
		{"Figure 10: after constant propagation, peephole, DCE, coalescing", []string{"sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"}},
	}
	cur := prog
	for _, st := range stages {
		if cur, err = cur.OptimizePasses(st.passes...); err != nil {
			log.Fatal(err)
		}
		show(st.title, cur)
	}

	// Verify the paper's headline: the loop body shrank without
	// changing behavior.
	for _, in := range [][2]int64{{1, 2}, {50, 50}, {-10, 5}} {
		raw, err := prog.Run("foo", epre.Int(in[0]), epre.Int(in[1]))
		if err != nil {
			log.Fatal(err)
		}
		opt, err := cur.Run("foo", epre.Int(in[0]), epre.Int(in[1]))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("foo(%d,%d) = %s (unoptimized %s): %d ops vs %d unoptimized\n",
			in[0], in[1], opt.Value, raw.Value, opt.DynamicOps, raw.DynamicOps)
		if opt.Value != raw.Value {
			log.Fatal("semantics changed!")
		}
	}
}
