// Pipelines drives the optimizer the way the paper's experimental
// setup does (§4): as a sequence of independent passes, each consuming
// and producing ILOC.  It also reproduces, in miniature, the §5.3
// hierarchy — dominator-based CSE removes less than AVAIL-based CSE,
// which removes less than PRE — on a program with a partially
// redundant expression in an if-then-else.
package main

import (
	"fmt"
	"log"

	epre "repro"
)

// The §5.3 hierarchy in one function:
//   - "add r1,r2 => r10" is computed in BOTH arms and again after the
//     join: fully redundant there.  Neither arm dominates the join, so
//     dominator CSE must keep it; AVAIL CSE removes it.
//   - "sub r1,r2 => r8" is computed in one arm and after the join:
//     only PARTIALLY redundant, so only PRE gets it (by inserting a
//     copy of the computation in the other arm).
const iloc = `
program globalsize=0

func diamond(r1, r2) {
b0:
    enter(r1, r2)
    loadI 10 => r3
    cmpLT r1, r3 => r4
    cbr r4 -> b1, b2
b1:
    add r1, r2 => r10
    mul r10, r10 => r5
    jump -> b3
b2:
    add r1, r2 => r10
    sub r1, r2 => r8
    add r10, r8 => r5
    jump -> b3
b3:
    add r1, r2 => r10
    add r5, r10 => r7
    sub r1, r2 => r8
    add r7, r8 => r9
    ret r9
}
`

func main() {
	prog, err := epre.ParseILOC(iloc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input: x+y computed in both arms and after the join (fully redundant);")
	fmt.Println("       x-y computed in one arm and after the join (partially redundant)")
	fmt.Println()

	run := func(name string, passes ...string) *epre.Program {
		out, err := prog.OptimizePasses(passes...)
		if err != nil {
			log.Fatal(err)
		}
		via1, err := out.Run("diamond", epre.Int(1), epre.Int(2))
		if err != nil {
			log.Fatal(err)
		}
		via2, err := out.Run("diamond", epre.Int(100), epre.Int(2))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s static ops=%-3d  path via b1=%d  path via b2=%d\n",
			name, out.StaticOps(), via1.DynamicOps, via2.DynamicOps)
		return out
	}

	run("no optimization")
	run("dominator CSE (§5.3 #1)", "cse-dom")
	run("AVAIL CSE (§5.3 #2)", "cse-avail")
	out := run("PRE (§5.3 #3)", "normalize", "pre", "dce", "coalesce", "emptyblocks")

	fmt.Println("\nafter PRE (the b1 path gained an insertion of x-y, the join lost both recomputes):")
	text, _ := out.Dump("diamond")
	fmt.Print(text)

	fmt.Println("\nthe same pipeline, pass by pass (the paper's Unix-filter structure):")
	cur := prog
	for _, p := range []string{"normalize", "pre", "sccp", "peephole", "dce", "coalesce", "emptyblocks"} {
		if cur, err = cur.OptimizePasses(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after %-12s static ops=%d\n", p, cur.StaticOps())
	}
}
