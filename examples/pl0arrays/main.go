// PL/0 arrays: the paper's §3.1 address-arithmetic story on the
// procedural front end.  The subscript a[(i-1)*n+j] lowers to a naive
// base + (index-1)*8 chain rebuilt at every reference; partial
// redundancy elimination alone cannot hoist the row offset out of the
// inner loop because the chain is shaped wrong, but reassociation
// rewrites it so PRE can — compare the partial and reassociation
// levels below.
package main

import (
	"fmt"
	"log"

	epre "repro"
)

const src = `
procedure matvec(n);
var a[36], x[6], y[6], i, k, s;
begin
    i := 1;
    while i <= n do begin
        x[i] := i * 3 - 7;
        k := 1;
        while k <= n do begin
            a[(i - 1) * n + k] := i * 10 + k;
            k := k + 1
        end;
        i := i + 1
    end;
    i := 1;
    while i <= n do begin
        s := 0;
        k := 1;
        while k <= n do begin
            s := s + a[(i - 1) * n + k] * x[k];
            k := k + 1
        end;
        y[i] := s;
        i := i + 1
    end;
    s := 0;
    i := 1;
    while i <= n do begin
        s := s + y[i];
        i := i + 1
    end;
    matvec := s
end;

write matvec(6).
`

func main() {
	prog, err := epre.CompilePL0(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("levels (dynamic ILOC operations for matvec(6)):")
	for _, level := range epre.Levels {
		opt, err := prog.Optimize(level)
		if err != nil {
			log.Fatal(err)
		}
		res, err := opt.Run("matvec", epre.Int(6))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %6d ops  static %3d  (matvec = %d)\n",
			level, res.DynamicOps, opt.StaticOps(), res.Value.I)
	}
}
