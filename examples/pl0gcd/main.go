// PL/0 quickstart: compile a PL/0 procedure with the second front
// end, optimize at each of the paper's levels, and compare dynamic
// operation counts — the same flow as examples/quickstart, in the
// other source language.
package main

import (
	"fmt"
	"log"

	epre "repro"
)

const src = `
(* Subtraction-form Euclid, PL/0 style: one procedure per routine,
   Pascal-style return through the procedure's own name. *)
procedure gcd(a, b);
begin
    while a # b do
        if a > b then a := a - b
        else b := b - a;
    gcd := a
end;

write gcd(1071, 462).
`

func main() {
	prog, err := epre.CompilePL0(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("levels (dynamic ILOC operations for gcd(1071, 462)):")
	for _, level := range epre.Levels {
		opt, err := prog.Optimize(level)
		if err != nil {
			log.Fatal(err)
		}
		res, err := opt.Run("gcd", epre.Int(1071), epre.Int(462))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %6d ops  (gcd = %d)\n", level, res.DynamicOps, res.Value.I)
	}
}
