// Quickstart: compile a Mini-Fortran routine, optimize it at each of
// the paper's levels, and compare dynamic operation counts — the
// smallest end-to-end use of the library's public API.
package main

import (
	"fmt"
	"log"

	epre "repro"
)

const src = `
// The paper's running example (Figure 2).
func foo(y: int, z: int): int {
    var s: int = 0
    var x: int = y + z
    for i = x to 100 {
        s = 1 + s + x
    }
    return s
}
`

func main() {
	prog, err := epre.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("levels (dynamic ILOC operations for foo(1,2)):")
	var baseline int64
	for _, level := range epre.Levels {
		opt, err := prog.Optimize(level)
		if err != nil {
			log.Fatal(err)
		}
		res, err := opt.Run("foo", epre.Int(1), epre.Int(2))
		if err != nil {
			log.Fatal(err)
		}
		if level == epre.LevelBaseline {
			baseline = res.DynamicOps
		}
		fmt.Printf("  %-14s result=%-6s ops=%-6d improvement over baseline: %5.1f%%\n",
			level, res.Value, res.DynamicOps,
			100*float64(baseline-res.DynamicOps)/float64(baseline))
	}

	// The optimized ILOC itself:
	opt, _ := prog.Optimize(epre.LevelReassoc)
	text, _ := opt.Dump("foo")
	fmt.Println("\nfoo at the reassociation level (compare the paper's Figure 10):")
	fmt.Print(text)
}
