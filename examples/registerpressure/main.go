// Registerpressure shows the flip side of the paper's transformations:
// forward propagation and PRE's hoisted temporaries lengthen live
// ranges, so the same code that executes far fewer operations also
// demands more registers.  The example allocates the tomcatv-style
// relaxation kernel onto a fixed register file with the Chaitin–Briggs
// allocator at every optimization level and reports both the dynamic
// operation count and the spill count — the §4.3 time/space trade-off
// made concrete.
package main

import (
	"fmt"
	"log"

	epre "repro"
)

const src = `
func relax(n: int, x: [n,*]real, y: [n,*]real) {
    for j = 2 to n - 1 {
        for i = 2 to n - 1 {
            var dx: real = x[i+1,j] - x[i-1,j]
            var dy: real = x[i,j+1] - x[i,j-1]
            var a: real = 0.25 * (dx * dx + dy * dy)
            y[i,j] = x[i,j] + 0.05 * (a - x[i,j])
        }
    }
}

func driver(n: int, sweeps: int): real {
    var x: [16,16]real
    var y: [16,16]real
    for j = 1 to n {
        for i = 1 to n {
            x[i,j] = real(i) + 0.1 * real(j)
            y[i,j] = 0.0
        }
    }
    for s = 1 to sweeps {
        relax(n, x, y)
        relax(n, y, x)
    }
    var t: real = 0.0
    for j = 1 to n {
        for i = 1 to n {
            t = t + x[i,j]
        }
    }
    return t
}
`

func main() {
	prog, err := epre.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	const k = 10
	fmt.Printf("relaxation kernel on a %d-register machine:\n\n", k)
	fmt.Printf("  %-14s %10s %8s %12s\n", "level", "dynops", "spills", "result")
	for _, level := range epre.Levels {
		opt, err := prog.Optimize(level)
		if err != nil {
			log.Fatal(err)
		}
		spills, err := opt.AllocateRegisters(k)
		if err != nil {
			log.Fatalf("%s: %v", level, err)
		}
		res, err := opt.Run("driver", epre.Int(16), epre.Int(2))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %10d %8d %12.4f\n", level, res.DynamicOps, spills, res.Value.F)
	}
	fmt.Println("\nthe better levels run far fewer operations but keep more values")
	fmt.Println("live at once, so a finite register file pays in spill code —")
	fmt.Println("the space/speed tension the paper's §4.3 discusses.")
}
