package epre

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minift"
	"repro/internal/suite"
)

// applyPass runs one pass on one function with a fresh analysis cache,
// the single-shot equivalent of the pipeline's shared-cache loop.
func applyPass(p core.Pass, f *ir.Func) {
	p.Run(&core.PassContext{Ctx: context.Background(), Func: f, Analyses: analysis.NewCache(f)})
}

// Benchmarks for the paper's stated future work (§4.1/§5.2): the two
// passes missing from the original optimizer, implemented here as
// extensions.
//
//	BenchmarkExtensionStrength — "We expect that strength reduction
//	    will improve the code beyond the results shown in this paper."
//	BenchmarkExtensionLVN      — "hash-based value numbering should
//	    also benefit from reassociation."

// distPipeline is the paper's best level; the extension variants splice
// the new passes into it.
var distPipeline = []string{"reassoc-dist", "gvn", "normalize", "pre", "sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"}

func measurePipeline(b *testing.B, src, driver string, args []interp.Value, passes []string) (int64, int64) {
	b.Helper()
	prog, err := minift.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range passes {
		p, err := core.PassByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range prog.Funcs {
			applyPass(p, f)
		}
	}
	m := interp.NewMachine(prog)
	m.EnableOpCounts()
	if _, err := m.Call(driver, args...); err != nil {
		b.Fatal(err)
	}
	return m.Steps, m.OpCounts[ir.OpMul] + m.OpCounts[ir.OpFMul]
}

// BenchmarkExtensionStrength measures the distribution level with and
// without loop strength reduction appended.  Strength reduction turns
// the per-iteration ×elemsize address multiplications that distribution
// exposes into additive recurrences.
func BenchmarkExtensionStrength(b *testing.B) {
	variants := []struct {
		name   string
		passes []string
	}{
		{"dist", distPipeline},
		{"dist+strength", append(append([]string{}, distPipeline...),
			"strength", "sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce")},
	}
	for _, rn := range []string{"sgemv", "saxpy", "iniset", "colbur"} {
		r, ok := suite.ByName(rn)
		if !ok {
			b.Fatalf("no routine %q", rn)
		}
		for _, v := range variants {
			b.Run(fmt.Sprintf("%s/%s", r.Name, v.name), func(b *testing.B) {
				var ops, muls int64
				for i := 0; i < b.N; i++ {
					ops, muls = measurePipeline(b, r.Source, r.Driver, r.Args, v.passes)
				}
				b.ReportMetric(float64(ops), "dynops")
				b.ReportMetric(float64(muls), "dynmuls")
			})
		}
	}
}

// BenchmarkExtensionLVN measures hash-based local value numbering
// after reassociation (the paper's conjecture) versus without it, on
// straight-line-heavy code.
func BenchmarkExtensionLVN(b *testing.B) {
	variants := []struct {
		name   string
		passes []string
	}{
		{"dist", distPipeline},
		{"dist+lvn", append(append([]string{}, distPipeline...),
			"lvn", "dce", "coalesce", "emptyblocks", "dce")},
		{"lvn-only", []string{"lvn", "sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"}},
	}
	for _, rn := range []string{"fpppp", "rkf45", "deseco"} {
		r, ok := suite.ByName(rn)
		if !ok {
			b.Fatalf("no routine %q", rn)
		}
		for _, v := range variants {
			b.Run(fmt.Sprintf("%s/%s", r.Name, v.name), func(b *testing.B) {
				var ops int64
				for i := 0; i < b.N; i++ {
					ops, _ = measurePipeline(b, r.Source, r.Driver, r.Args, v.passes)
				}
				b.ReportMetric(float64(ops), "dynops")
			})
		}
	}
}

// TestExtensionsPreserveSemantics runs the extension pipelines over the
// whole suite, validating against the references.
func TestExtensionsPreserveSemantics(t *testing.T) {
	pipelines := [][]string{
		append(append([]string{}, distPipeline...), "strength", "sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"),
		append(append([]string{}, distPipeline...), "lvn", "dce", "coalesce", "emptyblocks", "dce"),
		{"lvn", "strength", "sccp", "dce", "coalesce", "emptyblocks"},
	}
	for _, r := range suite.All() {
		for pi, passes := range pipelines {
			prog, err := r.Compile()
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range passes {
				p, err := core.PassByName(name)
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range prog.Funcs {
					applyPass(p, f)
				}
			}
			m := interp.NewMachine(prog)
			v, err := m.Call(r.Driver, r.Args...)
			if err != nil {
				t.Errorf("%s pipeline %d: %v", r.Name, pi, err)
				continue
			}
			if err := r.Check(v); err != nil {
				t.Errorf("%s pipeline %d: %v", r.Name, pi, err)
			}
		}
	}
}

// TestStrengthReductionHelps asserts the paper's expectation on array
// kernels.  The honest metric is dynamic *multiplications*: strength
// reduction trades a multiply for an add each iteration, which total
// operation counts cannot see (the paper's §4.1 makes the same point —
// "strength reduction should reduce non-essential overhead").
func TestStrengthReductionHelps(t *testing.T) {
	measure := func(r suite.Routine, passes []string) (int64, int64) {
		prog, err := r.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range passes {
			p, _ := core.PassByName(name)
			for _, f := range prog.Funcs {
				applyPass(p, f)
			}
		}
		m := interp.NewMachine(prog)
		m.EnableOpCounts()
		v, err := m.Call(r.Driver, r.Args...)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Check(v); err != nil {
			t.Fatal(err)
		}
		return m.Steps, m.OpCounts[ir.OpMul]
	}
	srPipeline := append(append([]string{}, distPipeline...),
		"strength", "sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce")
	for _, rn := range []string{"saxpy", "sgemv", "iniset"} {
		r, ok := suite.ByName(rn)
		if !ok {
			t.Fatalf("no %s", rn)
		}
		distOps, distMuls := measure(r, distPipeline)
		srOps, srMuls := measure(r, srPipeline)
		t.Logf("%s: dist ops=%d muls=%d | +strength ops=%d muls=%d",
			rn, distOps, distMuls, srOps, srMuls)
		if srMuls >= distMuls {
			t.Errorf("%s: strength reduction did not cut multiplications: %d vs %d",
				rn, srMuls, distMuls)
		}
		if srOps > distOps+distOps/20 {
			t.Errorf("%s: strength reduction blew up total ops: %d vs %d", rn, srOps, distOps)
		}
	}
}
