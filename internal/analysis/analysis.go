// Package analysis provides a per-function cache of the standard CFG
// and dataflow analyses: reverse postorder, RPO numbering, the
// dominator tree (with frontiers and children), the natural-loop nest,
// and liveness.
//
// Results are memoized lazily and invalidated by the owning function's
// generation counters (ir.Func.CFGGeneration / CodeGeneration): the
// structural analyses rebuild when the CFG generation has moved on,
// liveness rebuilds when the code generation has.  The ir and cfg
// mutating helpers bump those counters automatically, so a pass that
// mutates only through them gets invalidation for free; passes that
// rewrite instruction slices in place must call ir.Func.MarkCodeMutated.
//
// A Cache is not safe for concurrent use; the pass manager creates one
// cache per function and runs that function's passes sequentially.
package analysis

import (
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// BuildCounts records how many times each analysis was (re)built
// through a Cache.  The pass manager snapshots these around each pass
// to report per-pass analysis work.
type BuildCounts struct {
	RPO      uint64
	Dom      uint64
	Loops    uint64
	Liveness uint64
}

// Sub returns c - o, field-wise.
func (c BuildCounts) Sub(o BuildCounts) BuildCounts {
	return BuildCounts{
		RPO:      c.RPO - o.RPO,
		Dom:      c.Dom - o.Dom,
		Loops:    c.Loops - o.Loops,
		Liveness: c.Liveness - o.Liveness,
	}
}

// Total returns the sum of all fields.
func (c BuildCounts) Total() uint64 { return c.RPO + c.Dom + c.Loops + c.Liveness }

// Cache lazily memoizes analyses for one function.  Each getter checks
// the function's generation counters and rebuilds a stale result before
// returning it; callers therefore always see an up-to-date analysis and
// must not retain results across mutations they perform themselves.
type Cache struct {
	fn *ir.Func

	// Generations at which the cached results were built.
	cfgGen  uint64
	codeGen uint64

	rpo     []*ir.Block
	rpoNums []int
	dom     *cfg.DomTree
	loops   *cfg.LoopInfo
	live    *dataflow.Liveness

	// Reusable worklist buffers the passes borrow; see scratch.go.
	scratch scratch

	counts BuildCounts
}

// NewCache returns an empty cache for f.  Nothing is computed until a
// getter is called.
func NewCache(f *ir.Func) *Cache { return &Cache{fn: f} }

// Func returns the function this cache serves.
func (c *Cache) Func() *ir.Func { return c.fn }

// Counts returns the number of rebuilds this cache has performed, by
// analysis kind.
func (c *Cache) Counts() BuildCounts { return c.counts }

// refresh drops any results invalidated by mutations since they were
// built.  Structural analyses are keyed by the CFG generation, liveness
// by the (superset) code generation.
func (c *Cache) refresh() {
	if g := c.fn.CFGGeneration(); g != c.cfgGen {
		c.cfgGen = g
		c.rpo = nil
		c.rpoNums = nil
		c.dom = nil
		c.loops = nil
	}
	if g := c.fn.CodeGeneration(); g != c.codeGen {
		c.codeGen = g
		c.live = nil
	}
}

// RPO returns the reverse postorder of the function's reachable blocks.
// Callers must treat the slice as read-only.
func (c *Cache) RPO() []*ir.Block {
	c.refresh()
	if c.rpo == nil {
		c.rpo = cfg.ReversePostorder(c.fn)
		c.counts.RPO++
	}
	return c.rpo
}

// RPONumbers returns the per-block-ID reverse-postorder indices (-1 for
// unreachable blocks).  Callers must treat the slice as read-only.
func (c *Cache) RPONumbers() []int {
	c.refresh()
	if c.rpoNums == nil {
		rpo := c.RPO()
		nums := make([]int, len(c.fn.Blocks))
		for i := range nums {
			nums[i] = -1
		}
		for i, b := range rpo {
			nums[b.ID] = i
		}
		c.rpoNums = nums
	}
	return c.rpoNums
}

// DomTree returns the dominator tree (with frontiers).
func (c *Cache) DomTree() *cfg.DomTree {
	c.refresh()
	if c.dom == nil {
		c.dom = cfg.BuildDomTree(c.fn)
		c.counts.Dom++
	}
	return c.dom
}

// Loops returns the natural-loop nest, built over the cached dominator
// tree.
func (c *Cache) Loops() *cfg.LoopInfo {
	c.refresh()
	if c.loops == nil {
		c.loops = cfg.FindLoops(c.fn, c.DomTree())
		c.counts.Loops++
	}
	return c.loops
}

// Liveness returns per-block live-in/live-out sets.
func (c *Cache) Liveness() *dataflow.Liveness {
	c.refresh()
	if c.live == nil {
		c.live = dataflow.ComputeLiveness(c.fn)
		c.counts.Liveness++
	}
	return c.live
}

// RemoveUnreachable deletes unreachable blocks using the cached reverse
// postorder for the reachability test, returning the number removed.
// When nothing is removed the function's generations — and therefore
// every cached analysis — stay valid.
func (c *Cache) RemoveUnreachable() int {
	return cfg.RemoveUnreachableRPO(c.fn, c.RPO())
}

// Builds snapshots the process-wide analysis construction counters.
// Deltas between two snapshots measure how much CFG scaffolding a
// workload actually built, cache hits excluded.
type Builds struct {
	RPO      uint64 `json:"rpo"`
	Dom      uint64 `json:"dom"`
	Loops    uint64 `json:"loops"`
	Liveness uint64 `json:"liveness"`
}

// GlobalBuilds reads the current process-wide construction counters.
func GlobalBuilds() Builds {
	return Builds{
		RPO:      cfg.RPOBuilds(),
		Dom:      cfg.DomTreeBuilds(),
		Loops:    cfg.LoopBuilds(),
		Liveness: dataflow.LivenessBuilds(),
	}
}

// Sub returns b - o, field-wise.
func (b Builds) Sub(o Builds) Builds {
	return Builds{
		RPO:      b.RPO - o.RPO,
		Dom:      b.Dom - o.Dom,
		Loops:    b.Loops - o.Loops,
		Liveness: b.Liveness - o.Liveness,
	}
}
