package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// diamond builds entry→{a,b}→exit with valid terminators.
func diamond(t *testing.T) *ir.Func {
	t.Helper()
	f := ir.NewFunc("d", 1)
	entry := f.Entry()
	a, b, exit := f.NewBlock(), f.NewBlock(), f.NewBlock()
	entry.Append(entry.Fn.NewInstr(ir.OpCBr, ir.NoReg, f.Params[0]))
	a.Append(a.Fn.NewInstr(ir.OpJump, ir.NoReg))
	b.Append(b.Fn.NewInstr(ir.OpJump, ir.NoReg))
	exit.Append(exit.Fn.NewInstr(ir.OpRet, ir.NoReg))
	ir.AddEdge(entry, a)
	ir.AddEdge(entry, b)
	ir.AddEdge(a, exit)
	ir.AddEdge(b, exit)
	return f
}

func TestCacheMemoizes(t *testing.T) {
	f := diamond(t)
	c := analysis.NewCache(f)

	rpo1 := c.RPO()
	rpo2 := c.RPO()
	if &rpo1[0] != &rpo2[0] {
		t.Errorf("RPO not memoized: distinct slices across calls")
	}
	dom1 := c.DomTree()
	if c.DomTree() != dom1 {
		t.Errorf("DomTree not memoized")
	}
	lv1 := c.Liveness()
	if c.Liveness() != lv1 {
		t.Errorf("Liveness not memoized")
	}
	if c.Loops() != c.Loops() {
		t.Errorf("Loops not memoized")
	}
	want := analysis.BuildCounts{RPO: 1, Dom: 1, Loops: 1, Liveness: 1}
	if got := c.Counts(); got != want {
		t.Errorf("Counts() = %+v, want %+v", got, want)
	}
}

func TestCacheInvalidation(t *testing.T) {
	f := diamond(t)
	c := analysis.NewCache(f)
	dom1 := c.DomTree()
	lv1 := c.Liveness()

	// Instruction-level mutation: liveness rebuilds, dom tree survives.
	f.Blocks[1].Append(f.Blocks[1].Fn.NewInstr(ir.OpAdd, f.NewReg(), f.Params[0], f.Params[0]))
	if c.DomTree() != dom1 {
		t.Errorf("DomTree invalidated by instruction-level mutation")
	}
	if c.Liveness() == lv1 {
		t.Errorf("Liveness not invalidated by instruction-level mutation")
	}

	// Structural mutation: everything rebuilds.
	lv2 := c.Liveness()
	nb := f.NewBlock()
	nb.Append(nb.Fn.NewInstr(ir.OpRet, ir.NoReg))
	if c.DomTree() == dom1 {
		t.Errorf("DomTree not invalidated by structural mutation")
	}
	if c.Liveness() == lv2 {
		t.Errorf("Liveness not invalidated by structural mutation")
	}
	// DomTree builds its RPO internally, so the cache's own RPO getter
	// was never exercised here.
	want := analysis.BuildCounts{Dom: 2, Liveness: 3}
	if got := c.Counts(); got != want {
		t.Errorf("Counts() = %+v, want %+v", got, want)
	}
}

func TestCacheRemoveUnreachable(t *testing.T) {
	f := diamond(t)
	// An unreachable self-loop pair feeding nothing reachable.
	u1, u2 := f.NewBlock(), f.NewBlock()
	u1.Append(u1.Fn.NewInstr(ir.OpJump, ir.NoReg))
	u2.Append(u2.Fn.NewInstr(ir.OpJump, ir.NoReg))
	ir.AddEdge(u1, u2)
	ir.AddEdge(u2, u1)

	c := analysis.NewCache(f)
	genBefore := f.CFGGeneration()
	if removed := c.RemoveUnreachable(); removed != 2 {
		t.Fatalf("RemoveUnreachable() = %d, want 2", removed)
	}
	if f.CFGGeneration() == genBefore {
		t.Errorf("CFG generation not bumped by block removal")
	}
	if len(c.RPO()) != len(f.Blocks) {
		t.Errorf("stale RPO after removal: %d blocks in RPO, %d in func", len(c.RPO()), len(f.Blocks))
	}

	// Second call is a no-op and must not invalidate anything.
	dom := c.DomTree()
	genBefore = f.CFGGeneration()
	if removed := c.RemoveUnreachable(); removed != 0 {
		t.Fatalf("second RemoveUnreachable() = %d, want 0", removed)
	}
	if f.CFGGeneration() != genBefore {
		t.Errorf("no-op RemoveUnreachable bumped the CFG generation")
	}
	if c.DomTree() != dom {
		t.Errorf("no-op RemoveUnreachable invalidated the dom tree")
	}
}
