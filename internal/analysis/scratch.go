package analysis

import "repro/internal/ir"

// scratch is the Cache's per-function arena of reusable worklist
// buffers.  Passes over one function run sequentially on one goroutine
// (the Cache contract), so a simple free-list per element type is
// enough: Borrow pops a zeroed buffer, Return pushes it back.  The
// arena survives across passes — the second pass that needs an
// RPO-sized []int gets the first pass's buffer instead of the
// allocator.
//
// Ownership rules (DESIGN.md §12): a borrowed buffer is owned until
// Returned, must not be retained across a Return, and must never
// escape the pass that borrowed it.  Returning is optional — a buffer
// that escapes analysis (or whose lifetime is unclear) is simply not
// Returned and becomes ordinary garbage.
type scratch struct {
	ints   [][]int
	regs   [][]ir.Reg
	blocks [][]*ir.Block
	bools  [][]bool
}

// BorrowInts returns a zeroed []int of length n from the arena.
func (c *Cache) BorrowInts(n int) []int {
	for i := len(c.scratch.ints) - 1; i >= 0; i-- {
		if buf := c.scratch.ints[i]; cap(buf) >= n {
			c.scratch.ints = append(c.scratch.ints[:i], c.scratch.ints[i+1:]...)
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]int, n)
}

// ReturnInts gives a BorrowInts buffer back to the arena.
func (c *Cache) ReturnInts(buf []int) {
	if cap(buf) > 0 {
		c.scratch.ints = append(c.scratch.ints, buf)
	}
}

// BorrowRegs returns a zeroed []ir.Reg of length n from the arena.
func (c *Cache) BorrowRegs(n int) []ir.Reg {
	for i := len(c.scratch.regs) - 1; i >= 0; i-- {
		if buf := c.scratch.regs[i]; cap(buf) >= n {
			c.scratch.regs = append(c.scratch.regs[:i], c.scratch.regs[i+1:]...)
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]ir.Reg, n)
}

// ReturnRegs gives a BorrowRegs buffer back to the arena.
func (c *Cache) ReturnRegs(buf []ir.Reg) {
	if cap(buf) > 0 {
		c.scratch.regs = append(c.scratch.regs, buf)
	}
}

// BorrowBlocks returns a zeroed []*ir.Block of length n from the
// arena — the shape of postorder stacks and block worklists.
func (c *Cache) BorrowBlocks(n int) []*ir.Block {
	for i := len(c.scratch.blocks) - 1; i >= 0; i-- {
		if buf := c.scratch.blocks[i]; cap(buf) >= n {
			c.scratch.blocks = append(c.scratch.blocks[:i], c.scratch.blocks[i+1:]...)
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]*ir.Block, n)
}

// ReturnBlocks gives a BorrowBlocks buffer back to the arena.
func (c *Cache) ReturnBlocks(buf []*ir.Block) {
	if cap(buf) > 0 {
		c.scratch.blocks = append(c.scratch.blocks, buf)
	}
}

// BorrowBools returns a zeroed []bool of length n from the arena.
func (c *Cache) BorrowBools(n int) []bool {
	for i := len(c.scratch.bools) - 1; i >= 0; i-- {
		if buf := c.scratch.bools[i]; cap(buf) >= n {
			c.scratch.bools = append(c.scratch.bools[:i], c.scratch.bools[i+1:]...)
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]bool, n)
}

// ReturnBools gives a BorrowBools buffer back to the arena.
func (c *Cache) ReturnBools(buf []bool) {
	if cap(buf) > 0 {
		c.scratch.bools = append(c.scratch.bools, buf)
	}
}
