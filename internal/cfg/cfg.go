// Package cfg provides control-flow-graph analyses over the ir package:
// reverse-postorder numbering, dominator trees (Cooper–Harvey–Kennedy),
// dominance frontiers, natural-loop detection, critical-edge splitting
// and dead/empty block cleanup.
//
// The paper relies on these as substrate: ranks are assigned during a
// reverse-postorder traversal (§3.1), SSA construction needs dominance
// frontiers, and PRE's edge placement requires splittable edges.
package cfg

import "repro/internal/ir"

// ReversePostorder returns the blocks of f reachable from the entry in
// reverse postorder.  The entry block is always first.
func ReversePostorder(f *ir.Func) []*ir.Block {
	rpoBuilds.Add(1)
	seen := make([]bool, len(f.Blocks))
	post := make([]*ir.Block, 0, len(f.Blocks))

	type frame struct {
		b    *ir.Block
		next int
	}
	stack := []frame{{b: f.Entry()}}
	seen[f.Entry().ID] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(top.b.Succs) {
			s := top.b.Succs[top.next]
			top.next++
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// RPONumbers returns, for each block ID, its index in reverse postorder
// (or -1 for unreachable blocks).  These indices are the block "ranks"
// of the paper's §3.1: the first block visited has rank 0 here (the
// paper counts from 1; only the order matters).
func RPONumbers(f *ir.Func) []int {
	rpo := ReversePostorder(f)
	nums := make([]int, len(f.Blocks))
	for i := range nums {
		nums[i] = -1
	}
	for i, b := range rpo {
		nums[b.ID] = i
	}
	return nums
}

// RemoveUnreachable deletes blocks not reachable from the entry,
// unlinking their edges (and trimming φ-operands in reachable targets).
// It returns the number of blocks removed.  A call that removes nothing
// leaves the function's analysis generations untouched.
func RemoveUnreachable(f *ir.Func) int {
	return RemoveUnreachableRPO(f, ReversePostorder(f))
}

// RemoveUnreachableRPO is RemoveUnreachable with the reachability
// traversal supplied by the caller (typically a cached reverse
// postorder), avoiding a redundant walk.  rpo must be a current
// reverse postorder of f.
func RemoveUnreachableRPO(f *ir.Func, rpo []*ir.Block) int {
	reach := make([]bool, len(f.Blocks))
	for _, b := range rpo {
		reach[b.ID] = true
	}
	removed := 0
	for _, b := range f.Blocks {
		if reach[b.ID] {
			continue
		}
		removed++
		for len(b.Succs) > 0 {
			ir.RemoveEdge(b, b.Succs[0])
		}
	}
	if removed > 0 {
		f.RemoveBlocks(func(b *ir.Block) bool { return !reach[b.ID] })
	}
	return removed
}
