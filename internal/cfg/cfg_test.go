package cfg_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// buildCFG constructs a function with the given edge list over n
// blocks (block 0 is entry).  Every block gets a structurally valid
// terminator for its out-degree.
func buildCFG(t *testing.T, n int, edges [][2]int) *ir.Func {
	t.Helper()
	f := ir.NewFunc("g", 1)
	blocks := []*ir.Block{f.Entry()}
	for i := 1; i < n; i++ {
		blocks = append(blocks, f.NewBlock())
	}
	out := make([][]int, n)
	for _, e := range edges {
		out[e[0]] = append(out[e[0]], e[1])
	}
	for i, b := range blocks {
		switch len(out[i]) {
		case 0:
			b.Append(b.Fn.NewInstr(ir.OpRet, ir.NoReg))
		case 1:
			b.Append(b.Fn.NewInstr(ir.OpJump, ir.NoReg))
		case 2:
			b.Append(b.Fn.NewInstr(ir.OpCBr, ir.NoReg, f.Params[0]))
		default:
			t.Fatalf("block %d has out-degree %d", i, len(out[i]))
		}
		for _, s := range out[i] {
			ir.AddEdge(b, blocks[s])
		}
	}
	return f
}

// bruteDominators computes dominators by the definition: remove b,
// see what becomes unreachable.
func bruteDominators(f *ir.Func) map[int]map[int]bool {
	reachAvoiding := func(avoid *ir.Block) map[int]bool {
		seen := map[int]bool{}
		var walk func(b *ir.Block)
		walk = func(b *ir.Block) {
			if b == avoid || seen[b.ID] {
				return
			}
			seen[b.ID] = true
			for _, s := range b.Succs {
				walk(s)
			}
		}
		walk(f.Entry())
		return seen
	}
	all := reachAvoiding(nil)
	dom := map[int]map[int]bool{}
	for _, d := range f.Blocks {
		if !all[d.ID] {
			continue
		}
		reach := reachAvoiding(d)
		dom[d.ID] = map[int]bool{}
		for _, b := range f.Blocks {
			if all[b.ID] && (!reach[b.ID] || b == d) {
				dom[d.ID][b.ID] = true // d dominates b
			}
		}
	}
	return dom
}

func TestDominatorsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		var edges [][2]int
		outdeg := make([]int, n)
		// Spanning structure: every block i>0 gets an edge from some
		// earlier block (keeps most blocks reachable), plus extras.
		for i := 1; i < n; i++ {
			from := rng.Intn(i)
			if outdeg[from] < 2 {
				edges = append(edges, [2]int{from, i})
				outdeg[from]++
			}
		}
		for k := 0; k < n; k++ {
			from := rng.Intn(n)
			to := rng.Intn(n)
			if to == 0 || outdeg[from] >= 2 {
				continue
			}
			edges = append(edges, [2]int{from, to})
			outdeg[from]++
		}
		f := buildCFG(t, n, edges)
		cfg.RemoveUnreachable(f)
		dom := cfg.BuildDomTree(f)
		brute := bruteDominators(f)
		for _, a := range f.Blocks {
			for _, b := range f.Blocks {
				want := brute[a.ID][b.ID]
				got := dom.Dominates(a, b)
				if got != want {
					t.Fatalf("trial %d: Dominates(%s,%s) = %v, want %v\n%s",
						trial, a.Name, b.Name, got, want, f)
				}
			}
		}
		// IDom must be the unique closest strict dominator.
		for _, b := range f.Blocks {
			id := dom.IDom(b)
			if b == f.Entry() {
				if id != nil {
					t.Fatalf("entry has idom %v", id)
				}
				continue
			}
			if id == nil {
				t.Fatalf("%s has no idom", b.Name)
			}
			if !brute[id.ID][b.ID] {
				t.Fatalf("idom(%s)=%s does not dominate", b.Name, id.Name)
			}
			// Every other strict dominator of b dominates the idom.
			for d, doms := range brute {
				if doms[b.ID] && d != b.ID && d != id.ID {
					if !brute[d][id.ID] {
						t.Fatalf("dominator %d of %s does not dominate idom %s", d, b.Name, id.Name)
					}
				}
			}
		}
	}
}

func TestDominanceFrontierProperty(t *testing.T) {
	// DF(b) = blocks d such that b dominates a predecessor of d but
	// does not strictly dominate d.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(9)
		var edges [][2]int
		outdeg := make([]int, n)
		for i := 1; i < n; i++ {
			from := rng.Intn(i)
			if outdeg[from] < 2 {
				edges = append(edges, [2]int{from, i})
				outdeg[from]++
			}
		}
		for k := 0; k < n; k++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if to != 0 && outdeg[from] < 2 {
				edges = append(edges, [2]int{from, to})
				outdeg[from]++
			}
		}
		f := buildCFG(t, n, edges)
		cfg.RemoveUnreachable(f)
		dom := cfg.BuildDomTree(f)
		for _, b := range f.Blocks {
			want := map[int]bool{}
			for _, d := range f.Blocks {
				inFrontier := false
				for _, p := range d.Preds {
					if dom.Dominates(b, p) && !(dom.Dominates(b, d) && b != d) {
						inFrontier = true
					}
				}
				if inFrontier {
					want[d.ID] = true
				}
			}
			got := map[int]bool{}
			for _, d := range dom.Frontier(b) {
				got[d.ID] = true
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("trial %d: DF(%s) missing b%d\n%s", trial, b.Name, id, f)
				}
			}
			for id := range got {
				if !want[id] {
					t.Fatalf("trial %d: DF(%s) has spurious b%d\n%s", trial, b.Name, id, f)
				}
			}
		}
	}
}

func TestReversePostorder(t *testing.T) {
	// Diamond: entry before arms before join; unreachable excluded.
	f := buildCFG(t, 5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}) // block 4 unreachable
	rpo := cfg.ReversePostorder(f)
	if len(rpo) != 4 {
		t.Fatalf("rpo covers %d blocks, want 4", len(rpo))
	}
	pos := map[int]int{}
	for i, b := range rpo {
		pos[b.ID] = i
	}
	if pos[0] != 0 {
		t.Error("entry not first")
	}
	if !(pos[0] < pos[1] && pos[0] < pos[2] && pos[1] < pos[3] && pos[2] < pos[3]) {
		t.Errorf("rpo order wrong: %v", pos)
	}
}

func TestLoops(t *testing.T) {
	// Nested loops: 0 → 1(outer header) → 2(inner header) → 3 → 2, 3 → 1... build:
	// 0→1, 1→2, 2→3, 3→2 (inner back), 3→4, 4→1 (outer back), 1→5 exit? keep simple:
	f := buildCFG(t, 6, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 2}, {3, 4}, {4, 1}, {4, 5},
	})
	dom := cfg.BuildDomTree(f)
	li := cfg.FindLoops(f, dom)
	if len(li.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(li.Loops))
	}
	depth := map[int]int{}
	for _, b := range f.Blocks {
		depth[b.ID] = li.Depth(b)
	}
	if depth[0] != 0 || depth[5] != 0 {
		t.Errorf("entry/exit depth: %v", depth)
	}
	if depth[1] != 1 || depth[4] != 1 {
		t.Errorf("outer loop depth: %v", depth)
	}
	if depth[2] != 2 || depth[3] != 2 {
		t.Errorf("inner loop depth: %v", depth)
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// 0 →(crit) 2; 0→1→2: edge 0→2 is critical (0 has 2 succs, 2 has 2 preds).
	f := buildCFG(t, 3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	n := cfg.SplitCriticalEdges(f)
	if n != 1 {
		t.Fatalf("split %d edges, want 1", n)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if cfg.IsCriticalEdge(b, s) {
				t.Fatalf("critical edge %s→%s remains", b.Name, s.Name)
			}
		}
	}
}

func TestSplitEdgePreservesPhiSlots(t *testing.T) {
	f := buildCFG(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	join := f.Blocks[3]
	phi := f.NewInstr(ir.OpPhi, f.NewReg(), f.Params[0], f.Params[0])
	join.InsertAt(0, phi)
	pred := f.Blocks[1]
	slot := join.PredIndex(pred)
	mid := cfg.SplitEdge(pred, join)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if join.PredIndex(mid) != slot {
		t.Errorf("φ slot moved: was %d, mid at %d", slot, join.PredIndex(mid))
	}
	if len(phi.Args) != 2 {
		t.Errorf("φ operand count changed: %d", len(phi.Args))
	}
}

func TestRemoveEmptyBlocks(t *testing.T) {
	// 0 → 1(empty jump) → 2.
	f := buildCFG(t, 3, [][2]int{{0, 1}, {1, 2}})
	removed := cfg.RemoveEmptyBlocks(f)
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 2 {
		t.Errorf("%d blocks remain", len(f.Blocks))
	}
}

func TestMergeStraightLine(t *testing.T) {
	f := buildCFG(t, 3, [][2]int{{0, 1}, {1, 2}})
	f.Blocks[1].InsertAt(0, f.Blocks[1].Fn.NewLoadI(f.NewReg(), 7)) // non-empty, so not "empty block"
	f.Blocks[2].InsertAt(0, f.Blocks[2].Fn.NewLoadI(f.NewReg(), 8))
	merged := cfg.MergeStraightLine(f)
	if merged != 2 {
		t.Fatalf("merged %d, want 2", merged)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("%d blocks remain, want 1", len(f.Blocks))
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f := buildCFG(t, 4, [][2]int{{0, 1}, {2, 3}, {3, 1}}) // 2,3 unreachable
	n := cfg.RemoveUnreachable(f)
	if n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestRPONumbers(t *testing.T) {
	f := buildCFG(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	nums := cfg.RPONumbers(f)
	if nums[0] != 0 {
		t.Errorf("entry rank %d, want 0", nums[0])
	}
	if !(nums[1] > 0 && nums[2] > 0 && nums[3] > nums[1] && nums[3] > nums[2]) {
		t.Errorf("rpo numbers %v", nums)
	}
}

func TestDomPreorder(t *testing.T) {
	f := buildCFG(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	dom := cfg.BuildDomTree(f)
	order := dom.Preorder()
	if len(order) != 4 || order[0] != f.Entry() {
		t.Errorf("preorder %v", order)
	}
	// A parent appears before its dominated children.
	pos := map[*ir.Block]int{}
	for i, b := range order {
		pos[b] = i
	}
	for _, b := range f.Blocks {
		if id := dom.IDom(b); id != nil && pos[id] >= pos[b] {
			t.Errorf("idom of %s after it in preorder", b.Name)
		}
	}
}
