package cfg

import "repro/internal/ir"

// DomTree holds immediate-dominator and dominance-frontier information
// for the reachable blocks of a function.
type DomTree struct {
	fn *ir.Func
	// idom[b.ID] is b's immediate dominator; the entry maps to itself.
	// Unreachable blocks map to nil.
	idom []*ir.Block
	// children[b.ID] lists the blocks immediately dominated by b.
	children [][]*ir.Block
	// frontier[b.ID] is b's dominance frontier.
	frontier [][]*ir.Block
	// rpo numbers for the intersect walk.
	rpoNum []int
	rpo    []*ir.Block
}

// BuildDomTree computes dominators with the Cooper–Harvey–Kennedy
// iterative algorithm ("A Simple, Fast Dominance Algorithm") and
// dominance frontiers with their two-finger method.
func BuildDomTree(f *ir.Func) *DomTree {
	domBuilds.Add(1)
	t := &DomTree{fn: f}
	t.rpo = ReversePostorder(f)
	t.rpoNum = make([]int, len(f.Blocks))
	for i := range t.rpoNum {
		t.rpoNum[i] = -1
	}
	for i, b := range t.rpo {
		t.rpoNum[b.ID] = i
	}
	t.idom = make([]*ir.Block, len(f.Blocks))
	entry := f.Entry()
	t.idom[entry.ID] = entry

	changed := true
	for changed {
		changed = false
		for _, b := range t.rpo[1:] {
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if t.rpoNum[p.ID] < 0 || t.idom[p.ID] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b.ID] != newIdom {
				t.idom[b.ID] = newIdom
				changed = true
			}
		}
	}

	// Child lists are views into one flat array, built by counting
	// sort, instead of len(f.Blocks) independently grown slices.
	nb := len(f.Blocks)
	offs := make([]int32, nb+1)
	for _, b := range t.rpo[1:] {
		if id := t.idom[b.ID]; id != nil {
			offs[id.ID+1]++
		}
	}
	for i := 1; i <= nb; i++ {
		offs[i] += offs[i-1]
	}
	flat := make([]*ir.Block, offs[nb])
	fill := make([]int32, nb)
	copy(fill, offs[:nb])
	for _, b := range t.rpo[1:] {
		if id := t.idom[b.ID]; id != nil {
			flat[fill[id.ID]] = b
			fill[id.ID]++
		}
	}
	t.children = make([][]*ir.Block, nb)
	for i := range t.children {
		t.children[i] = flat[offs[i]:offs[i+1]:offs[i+1]]
	}

	t.frontier = make([][]*ir.Block, len(f.Blocks))
	for _, b := range t.rpo {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if t.rpoNum[p.ID] < 0 {
				continue
			}
			runner := p
			for runner != t.idom[b.ID] {
				t.frontier[runner.ID] = appendUnique(t.frontier[runner.ID], b)
				runner = t.idom[runner.ID]
			}
		}
	}
	return t
}

func appendUnique(s []*ir.Block, b *ir.Block) []*ir.Block {
	for _, x := range s {
		if x == b {
			return s
		}
	}
	return append(s, b)
}

func (t *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for t.rpoNum[a.ID] > t.rpoNum[b.ID] {
			a = t.idom[a.ID]
		}
		for t.rpoNum[b.ID] > t.rpoNum[a.ID] {
			b = t.idom[b.ID]
		}
	}
	return a
}

// IDom returns b's immediate dominator (nil for the entry block and for
// unreachable blocks).
func (t *DomTree) IDom(b *ir.Block) *ir.Block {
	id := t.idom[b.ID]
	if id == b {
		return nil
	}
	return id
}

// Children returns the blocks whose immediate dominator is b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.children[b.ID] }

// Frontier returns b's dominance frontier.
func (t *DomTree) Frontier(b *ir.Block) []*ir.Block { return t.frontier[b.ID] }

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if t.rpoNum[a.ID] < 0 || t.rpoNum[b.ID] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		id := t.idom[b.ID]
		if id == nil || id == b {
			return false
		}
		b = id
	}
}

// Preorder returns a dominator-tree preorder walk starting at the entry.
func (t *DomTree) Preorder() []*ir.Block {
	var order []*ir.Block
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		order = append(order, b)
		for _, c := range t.children[b.ID] {
			walk(c)
		}
	}
	walk(t.fn.Entry())
	return order
}
