package cfg

import "repro/internal/ir"

// SplitEdge inserts a fresh block on the edge pred→succ and returns it.
// The new block consists of a single jump to succ.  φ-operands in succ
// are preserved: the new block takes over pred's operand slot.
//
// Both PRE's edge placement (Drechsler–Stadel) and the paper's forward
// propagation ("if necessary, the entering edges are split and
// appropriate predecessor blocks are created", §3.1) rely on this.
func SplitEdge(pred, succ *ir.Block) *ir.Block {
	f := pred.Fn
	mid := f.NewBlock()
	mid.Instrs = append(mid.Instrs, f.NewInstr(ir.OpJump, ir.NoReg).ID())
	pred.ReplaceSucc(succ, mid)
	succ.ReplacePred(pred, mid)
	mid.Preds = []*ir.Block{pred}
	mid.Succs = []*ir.Block{succ}
	return mid
}

// IsCriticalEdge reports whether pred→succ is a critical edge: pred has
// several successors and succ several predecessors, so code cannot be
// placed "on" the edge without a new block.
func IsCriticalEdge(pred, succ *ir.Block) bool {
	return len(pred.Succs) > 1 && len(succ.Preds) > 1
}

// SplitCriticalEdges splits every critical edge in f and returns the
// number of edges split.
func SplitCriticalEdges(f *ir.Func) int {
	n := 0
	// Iterate by index with the pre-split bounds: SplitEdge replaces
	// the successor slot in place (no growth of b.Succs) and only
	// appends fresh blocks — which have a single predecessor and a
	// single successor, so they never source a critical edge.
	nb := len(f.Blocks)
	for bi := 0; bi < nb; bi++ {
		b := f.Blocks[bi]
		for si := 0; si < len(b.Succs); si++ {
			if s := b.Succs[si]; IsCriticalEdge(b, s) {
				SplitEdge(b, s)
				n++
			}
		}
	}
	return n
}

// RemoveEmptyBlocks deletes blocks that contain only a jump, rerouting
// their predecessors directly to the jump target.  Blocks whose target
// has φ-nodes are kept when removal would create a duplicate
// predecessor slot ambiguity.  This is the paper's "final pass to
// eliminate empty basic blocks" (§4.1).  Returns the number removed.
func RemoveEmptyBlocks(f *ir.Func) int {
	removed := 0
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if b == f.Entry() || len(b.Instrs) != 1 || b.Instr(0).Op != ir.OpJump {
				continue
			}
			succ := b.Succs[0]
			if succ == b {
				continue // degenerate self-loop
			}
			// If succ has φ-nodes, rerouting a predecessor p of b to
			// succ is only unambiguous when p is not already a
			// predecessor of succ.
			if len(succ.Phis()) > 0 {
				conflict := false
				for _, p := range b.Preds {
					if succ.PredIndex(p) >= 0 {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
			}
			slot := succ.PredIndex(b)
			// Reroute each predecessor of b to succ.
			preds := append([]*ir.Block(nil), b.Preds...)
			for i, p := range preds {
				p.ReplaceSucc(b, succ)
				if i == 0 {
					// First predecessor takes over b's slot in succ.
					succ.ReplacePred(b, p)
				} else {
					succ.Preds = append(succ.Preds, p)
					for _, pid := range succ.Phis() {
						phi := f.Instr(pid)
						phi.Args = append(phi.Args, phi.Args[slot])
					}
				}
			}
			if len(preds) == 0 {
				// Unreachable empty block: just unlink from succ.
				ir.RemoveEdge(b, succ)
			}
			b.Preds = nil
			b.Succs = nil
			b.Instrs = nil
			removed++
			changed = true
		}
		if changed {
			f.RemoveBlocks(func(b *ir.Block) bool {
				return b != f.Entry() && len(b.Instrs) == 0
			})
		}
	}
	return removed
}

// MergeStraightLine merges blocks with a single successor whose
// successor has a single predecessor (and no φ-nodes), a common cleanup
// after PRE and empty-block removal.  Returns the number of merges.
func MergeStraightLine(f *ir.Func) int {
	merged := 0
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				continue
			}
			t := b.Terminator()
			if t == nil || t.Op != ir.OpJump {
				continue
			}
			succ := b.Succs[0]
			if succ == b || len(succ.Preds) != 1 || len(succ.Phis()) > 0 || succ == f.Entry() {
				continue
			}
			// Splice succ's instructions into b, replacing b's jump.
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], succ.Instrs...)
			b.Succs = succ.Succs
			for _, s := range succ.Succs {
				s.ReplacePred(succ, b)
			}
			succ.Instrs = nil
			succ.Succs = nil
			succ.Preds = nil
			merged++
			changed = true
		}
		if changed {
			f.RemoveBlocks(func(b *ir.Block) bool {
				return b != f.Entry() && len(b.Instrs) == 0
			})
		}
	}
	return merged
}
