package cfg

import "repro/internal/ir"

// Loop describes one natural loop.
type Loop struct {
	Header *ir.Block
	// Blocks is the loop body including the header.
	Blocks []*ir.Block
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Depth is 1 for outermost loops.
	Depth int
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool {
	for _, x := range l.Blocks {
		if x == b {
			return true
		}
	}
	return false
}

// LoopInfo maps blocks to the loops containing them.
type LoopInfo struct {
	Loops []*Loop
	// innermost[b.ID] is the innermost loop containing b, or nil.
	innermost []*Loop
}

// InnermostLoop returns the innermost loop containing b, or nil.
func (li *LoopInfo) InnermostLoop(b *ir.Block) *Loop {
	if b.ID >= len(li.innermost) {
		return nil
	}
	return li.innermost[b.ID]
}

// Depth returns the loop-nesting depth of b (0 outside all loops).
func (li *LoopInfo) Depth(b *ir.Block) int {
	if l := li.InnermostLoop(b); l != nil {
		return l.Depth
	}
	return 0
}

// FindLoops identifies natural loops from back edges (edges t→h where h
// dominates t), merging loops that share a header, and nests them.
func FindLoops(f *ir.Func, dom *DomTree) *LoopInfo {
	loopBuilds.Add(1)
	li := &LoopInfo{innermost: make([]*Loop, len(f.Blocks))}
	byHeader := map[*ir.Block]*Loop{}

	for _, b := range ReversePostorder(f) {
		for _, s := range b.Succs {
			if !dom.Dominates(s, b) {
				continue // not a back edge
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: []*ir.Block{s}}
				byHeader[s] = l
				li.Loops = append(li.Loops, l)
			}
			// Collect the natural loop of edge b→s: all blocks that
			// reach b without passing through s.
			inLoop := map[*ir.Block]bool{s: true}
			for _, blk := range l.Blocks {
				inLoop[blk] = true
			}
			stack := []*ir.Block{}
			if !inLoop[b] {
				inLoop[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range x.Preds {
					if !inLoop[p] {
						inLoop[p] = true
						stack = append(stack, p)
					}
				}
			}
			l.Blocks = l.Blocks[:0]
			for _, blk := range f.Blocks {
				if inLoop[blk] {
					l.Blocks = append(l.Blocks, blk)
				}
			}
		}
	}

	// Nest loops: loop A is inside loop B if A's header is in B's body
	// and A != B.  Choose the smallest enclosing body as parent.
	for _, a := range li.Loops {
		for _, b := range li.Loops {
			if a == b || !b.Contains(a.Header) {
				continue
			}
			if a.Parent == nil || len(b.Blocks) < len(a.Parent.Blocks) {
				a.Parent = b
			}
		}
	}
	for _, l := range li.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	for _, l := range li.Loops {
		for _, b := range l.Blocks {
			cur := li.innermost[b.ID]
			if cur == nil || l.Depth > cur.Depth {
				li.innermost[b.ID] = l
			}
		}
	}
	return li
}
