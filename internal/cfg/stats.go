package cfg

import "sync/atomic"

// Process-wide construction counters.  Every ReversePostorder walk,
// dominator-tree build and loop-nest discovery increments one of these,
// whether it was reached through the analysis cache or by a direct
// call, so the numbers are ground truth for how much CFG scaffolding
// the process has actually built.  The bench harness and the
// pass-manager tests read deltas around a workload to measure cache
// effectiveness.
var (
	rpoBuilds  atomic.Uint64
	domBuilds  atomic.Uint64
	loopBuilds atomic.Uint64
)

// RPOBuilds returns the number of reverse-postorder traversals
// performed so far (including the one embedded in every dominator-tree
// build).
func RPOBuilds() uint64 { return rpoBuilds.Load() }

// DomTreeBuilds returns the number of dominator trees constructed so
// far.
func DomTreeBuilds() uint64 { return domBuilds.Load() }

// LoopBuilds returns the number of loop-nest discoveries performed so
// far.
func LoopBuilds() uint64 { return loopBuilds.Load() }
