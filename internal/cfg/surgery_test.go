package cfg_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/ir"
)

// The block-surgery tests exercise the CFG helpers on the degenerate
// shapes the optimizer produces mid-pipeline — self-loops, unreachable
// cycles, graphs made entirely of critical edges — and prove two
// properties the shared analysis cache depends on: every structural
// mutation moves the function's CFG generation, no-op surgery moves
// nothing, and a cache queried across surgery serves freshly correct
// dominators rather than stale ones.

// TestRemoveUnreachableCycle: an unreachable two-block cycle keeps
// itself alive through its internal edges; reachability from the entry
// must still delete it, and the deletion must bump the CFG generation.
func TestRemoveUnreachableCycle(t *testing.T) {
	f := buildCFG(t, 4, [][2]int{{0, 1}, {2, 3}, {3, 2}})
	gen := f.CFGGeneration()
	ac := analysis.NewCache(f)
	if n := ac.RemoveUnreachable(); n != 2 {
		t.Fatalf("removed %d blocks, want 2", n)
	}
	if f.CFGGeneration() == gen {
		t.Error("removing blocks did not bump the CFG generation")
	}
	if len(f.Blocks) != 2 {
		t.Fatalf("have %d blocks, want 2", len(f.Blocks))
	}
	// The refreshed cache must agree with a from-scratch dominator tree.
	dom := ac.DomTree()
	if got := dom.IDom(f.Blocks[1]); got != f.Entry() {
		t.Errorf("idom(b1) = %v, want entry", got)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveUnreachableNoOpKeepsGenerations: surgery that removes
// nothing must leave the generations — and therefore every cached
// analysis — untouched.
func TestRemoveUnreachableNoOpKeepsGenerations(t *testing.T) {
	f := buildCFG(t, 3, [][2]int{{0, 1}, {1, 2}})
	// Give every block a real instruction so none is an empty (jump-only)
	// block that RemoveEmptyBlocks would legitimately take out.
	for _, b := range f.Blocks {
		b.InsertAt(0, b.Fn.NewInstr(ir.OpCopy, f.NewReg(), f.Params[0]))
	}
	ac := analysis.NewCache(f)
	domBefore := ac.DomTree()
	cfgGen, codeGen := f.CFGGeneration(), f.CodeGeneration()
	if n := ac.RemoveUnreachable(); n != 0 {
		t.Fatalf("removed %d blocks from a fully reachable graph", n)
	}
	if n := cfg.RemoveEmptyBlocks(f); n != 0 {
		t.Fatalf("RemoveEmptyBlocks removed %d, want 0", n)
	}
	if f.CFGGeneration() != cfgGen || f.CodeGeneration() != codeGen {
		t.Error("no-op surgery bumped a generation")
	}
	if ac.DomTree() != domBefore {
		t.Error("no-op surgery invalidated the cached dominator tree")
	}
}

// TestSelfLoopSurgery: a block looping on itself is its own loop of
// depth 1; self-loop back edges are critical (the block has two succs,
// itself and the exit path's target has two preds) only when the shape
// makes them so, and surgery around the loop must keep dominators
// honest through the cache.
func TestSelfLoopSurgery(t *testing.T) {
	// 0 → 1, 1 → 1 (self-loop), 1 → 2.
	f := buildCFG(t, 3, [][2]int{{0, 1}, {1, 1}, {1, 2}})
	ac := analysis.NewCache(f)
	loops := ac.Loops()
	b1 := f.Blocks[1]
	if l := loops.InnermostLoop(b1); l == nil || l.Header != b1 {
		t.Fatalf("self-loop not detected: %v", l)
	}
	if d := loops.Depth(b1); d != 1 {
		t.Errorf("self-loop depth %d, want 1", d)
	}

	// The self-loop back edge 1→1 is critical (1 has two successors,
	// and 1 has two predecessors: 0 and itself).  Splitting it inserts
	// a latch block and must bump the CFG generation.
	gen := f.CFGGeneration()
	n := cfg.SplitCriticalEdges(f)
	if n == 0 {
		t.Fatal("no critical edge split around the self-loop")
	}
	if f.CFGGeneration() == gen {
		t.Error("SplitCriticalEdges mutated without bumping the CFG generation")
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	// The cache self-invalidates: the new latch block dominates nothing
	// but sits on the back edge, and b1 still dominates it.
	dom := ac.DomTree()
	for _, p := range b1.Preds {
		if p != f.Entry() && !dom.Dominates(b1, p) {
			t.Errorf("b1 does not dominate its latch %v", p)
		}
	}
	if !dom.Dominates(f.Entry(), b1) {
		t.Error("entry lost dominance over b1 after splitting")
	}
}

// TestCriticalEdgeOnlyGraph: a diamond where both sides branch again —
// every edge out of a multi-successor block lands on a multi-pred
// block, so every such edge is critical.  Splitting them all leaves no
// critical edges, bumps the generation once per split, and the cached
// dominator tree rebuilt afterwards matches brute force.
func TestCriticalEdgeOnlyGraph(t *testing.T) {
	// 0 → {1, 2}; 1 → {3, 4}; 2 → {3, 4}; 3 → 5; 4 → 5.
	f := buildCFG(t, 6, [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 5}, {4, 5}})
	crit := 0
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if cfg.IsCriticalEdge(b, s) {
				crit++
			}
		}
	}
	if crit != 4 {
		t.Fatalf("expected the 4 fan edges critical, found %d", crit)
	}
	ac := analysis.NewCache(f)
	ac.DomTree() // populate, to prove invalidation below
	gen := f.CFGGeneration()
	if n := cfg.SplitCriticalEdges(f); n != crit {
		t.Fatalf("split %d edges, want %d", n, crit)
	}
	if f.CFGGeneration() == gen {
		t.Error("splitting critical edges did not bump the CFG generation")
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if cfg.IsCriticalEdge(b, s) {
				t.Fatalf("critical edge %v→%v survived splitting", b, s)
			}
		}
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	// Cache-refreshed dominators agree with the brute-force definition.
	dom := ac.DomTree()
	brute := bruteDominators(f)
	for _, a := range f.Blocks {
		for _, b := range f.Blocks {
			if got, want := dom.Dominates(a, b), brute[a.ID][b.ID]; got != want {
				t.Errorf("Dominates(%v, %v) = %v, brute force says %v", a, b, got, want)
			}
		}
	}
}

// TestMergeStraightLineGenerations: merging a jump-only chain is
// structural surgery; the generation must move and the cache must
// rebuild dominators over the merged graph.
func TestMergeStraightLineGenerations(t *testing.T) {
	f := buildCFG(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	ac := analysis.NewCache(f)
	ac.DomTree()
	gen := f.CFGGeneration()
	if n := cfg.MergeStraightLine(f); n == 0 {
		t.Fatal("nothing merged in a straight-line chain")
	}
	if f.CFGGeneration() == gen {
		t.Error("MergeStraightLine mutated without bumping the CFG generation")
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("chain not fully merged: %d blocks", len(f.Blocks))
	}
	dom := ac.DomTree()
	if got := dom.IDom(f.Entry()); got != nil {
		t.Errorf("entry has idom %v after merge", got)
	}
}
