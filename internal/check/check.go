// Package check is the semantic static-analysis layer over the ILOC IR.
// Where ir.Verify guards structural invariants (terminators, edge
// symmetry, φ arity), this package proves deeper properties:
//
//   - defuse.go: a dataflow/SSA verifier that proves every register use
//     is dominated by a definition, using the dominator tree for
//     single-definition registers and a definite-assignment dataflow for
//     the general (non-SSA) case; φ operands are checked along their
//     predecessor edge.
//   - discipline.go: a lint for the paper's naming contract (§2.2,
//     §5.1) — only copies, calls, φs and enter target variable names;
//     expression names must not be live across block boundaries.
//   - validate.go: a per-pass translation validator that checks a
//     transformed program against the original by differential
//     interpretation on generated inputs, with a value-numbering-based
//     equivalence fast path.
//
// All analyzers report findings as Diagnostics rather than errors, so a
// driver can aggregate results across passes and functions and decide
// its own failure policy (core.CheckedRun, cmd/epre lint,
// cmd/ilocfilter check).
package check

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// Severity grades a diagnostic.
type Severity int

const (
	// SevWarning marks suspicious but not provably wrong code.
	SevWarning Severity = iota
	// SevError marks a provable violation: an undefined use, a broken
	// naming contract, or a semantic difference between pass input and
	// output.
	SevError
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding from a semantic analyzer.
type Diagnostic struct {
	Analyzer string   // "defuse", "discipline", "validate", ...
	Severity Severity // warning or error
	Func     string   // function name
	Block    string   // block label ("" when function-level)
	Instr    int      // instruction index within Block, or -1
	Pass     string   // offending pass, when known ("" otherwise)
	Msg      string
}

// String renders the diagnostic as "func/block:instr: severity [analyzer] msg"
// with the offending pass appended when known.
func (d Diagnostic) String() string {
	var sb strings.Builder
	sb.WriteString(d.Func)
	if d.Block != "" {
		sb.WriteByte('/')
		sb.WriteString(d.Block)
		if d.Instr >= 0 {
			fmt.Fprintf(&sb, ":%d", d.Instr)
		}
	}
	fmt.Fprintf(&sb, ": %s [%s] %s", d.Severity, d.Analyzer, d.Msg)
	if d.Pass != "" {
		fmt.Fprintf(&sb, " (after pass %s)", d.Pass)
	}
	return sb.String()
}

// Errors filters the error-severity diagnostics.
func Errors(diags []Diagnostic) []Diagnostic {
	var errs []Diagnostic
	for _, d := range diags {
		if d.Severity == SevError {
			errs = append(errs, d)
		}
	}
	return errs
}

// TagPass stamps a pass name onto every diagnostic that lacks one.
func TagPass(diags []Diagnostic, pass string) []Diagnostic {
	for i := range diags {
		if diags[i].Pass == "" {
			diags[i].Pass = pass
		}
	}
	return diags
}

// Report writes one diagnostic per line.
func Report(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// Options configure the per-function analyzers.
type Options struct {
	// StrictSSA additionally requires single definitions per register,
	// the invariant of true SSA form.  Off by default: most pipeline
	// states are legitimately out of SSA.
	StrictSSA bool
	// Discipline additionally runs the naming-discipline lint.  Off by
	// default: raw front-end output violates the contract by design
	// (establishing it is normalize/gvn's job).
	Discipline bool
}

// Func runs the static analyzers on one function and returns their
// findings.  The function should already pass ir.Verify; structurally
// broken input may produce noisy diagnostics but never panics the
// analyzers into reading out-of-range registers.
func Func(f *ir.Func, opt Options) []Diagnostic {
	return FuncWith(f, opt, analysis.NewCache(f))
}

// FuncWith is Func drawing CFG analyses from the given cache.  The
// analyzers never mutate f, so the cache stays valid afterwards.
func FuncWith(f *ir.Func, opt Options, ac *analysis.Cache) []Diagnostic {
	diags := DefUseWith(f, opt.StrictSSA, ac)
	if opt.Discipline {
		diags = append(diags, Discipline(f)...)
	}
	return diags
}

// Program runs Func over every function of a program.
func Program(p *ir.Program, opt Options) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Funcs {
		diags = append(diags, Func(f, opt)...)
	}
	return diags
}
