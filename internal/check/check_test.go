package check_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/minift"
	"repro/internal/ssa"
)

func parse(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.ParseProgramString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := minift.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

const cleanSrc = `
func leaf(x: real, k: int): real {
    if k % 2 == 0 {
        return x * 2.0
    }
    return x + 1.0
}

func main(n: int): real {
    var a: [16]real
    var t: real = 0.0
    for i = 1 to n {
        a[i] = real(i * i) / 4.0
    }
    for i = 1 to n {
        t = t + a[i] * 3.0 + leaf(t, i)
    }
    return t
}
`

// TestDefUseCleanOnFrontEndOutput: naive front-end code is fully
// defined — no diagnostics, before or after any single pass.
func TestDefUseCleanOnFrontEndOutput(t *testing.T) {
	prog := compile(t, cleanSrc)
	for _, f := range prog.Funcs {
		if diags := check.DefUse(f, false); len(diags) != 0 {
			t.Errorf("%s: unexpected diagnostics: %v", f.Name, diags)
		}
	}
	for _, pass := range core.AllPasses() {
		p := prog.Clone()
		for _, f := range p.Funcs {
			pass.Run(&core.PassContext{Ctx: context.Background(), Func: f, Analyses: analysis.NewCache(f)})
			if diags := check.DefUse(f, false); len(diags) != 0 {
				t.Errorf("after %s, %s: unexpected diagnostics: %v", pass.Name, f.Name, diags)
			}
		}
	}
}

func TestDefUseUndefinedRegister(t *testing.T) {
	p := parse(t, `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    add r1, r7 => r2
    ret r2
}
`)
	diags := check.DefUse(p.Funcs[0], false)
	if len(check.Errors(diags)) != 1 || !strings.Contains(diags[0].Msg, "undefined register r7") {
		t.Fatalf("want one undefined-register error, got %v", diags)
	}
	if got := diags[0].String(); !strings.Contains(got, "f/b0:1") || !strings.Contains(got, "[defuse]") {
		t.Errorf("diagnostic location rendering: %q", got)
	}
}

// TestDefUseDominance: a definition on only one side of a diamond does
// not dominate a use after the join.
func TestDefUseDominance(t *testing.T) {
	p := parse(t, `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    cbr r1 -> b1, b2
b1:
    loadI 1 => r2
    jump -> b3
b2:
    jump -> b3
b3:
    ret r2
}
`)
	diags := check.DefUse(p.Funcs[0], false)
	if len(check.Errors(diags)) != 1 || !strings.Contains(diags[0].Msg, "not dominated") {
		t.Fatalf("want one dominance error, got %v", diags)
	}
}

// TestDefUsePhiOperandEdge: each φ operand is checked along its own
// predecessor edge, so an operand defined only on the *other* side of
// the diamond is flagged — and a correct φ is not.
func TestDefUsePhiOperandEdge(t *testing.T) {
	good := parse(t, `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    cbr r1 -> b1, b2
b1:
    loadI 1 => r2
    jump -> b3
b2:
    loadI 2 => r3
    jump -> b3
b3:
    phi r2, r3 => r4
    ret r4
}
`)
	if diags := check.DefUse(good.Funcs[0], false); len(diags) != 0 {
		t.Fatalf("well-formed φ flagged: %v", diags)
	}
	bad := parse(t, `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    cbr r1 -> b1, b2
b1:
    loadI 1 => r2
    jump -> b3
b2:
    loadI 2 => r3
    jump -> b3
b3:
    phi r2, r2 => r4
    ret r4
}
`)
	diags := check.Errors(check.DefUse(bad.Funcs[0], false))
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "b2->b3") {
		t.Fatalf("want one φ-edge error naming edge b2->b3, got %v", diags)
	}
}

// TestDefUseLoopCarried: a φ whose back-edge operand is defined later
// in the loop body is legal SSA; the first-iteration value comes from
// the preheader operand.
func TestDefUseLoopCarried(t *testing.T) {
	p := parse(t, `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    jump -> b1
b1:
    phi r2, r3 => r4
    add r4, r1 => r3
    cmpLT r3, r1 => r5
    cbr r5 -> b1, b2
b2:
    ret r3
}
`)
	if diags := check.DefUse(p.Funcs[0], false); len(diags) != 0 {
		t.Fatalf("loop-carried φ flagged: %v", diags)
	}
}

// TestDefUseUseBeforeDefInLoop: reading a register that is only
// assigned *later* in the same loop body is undefined on the first
// iteration, even though a definition reaches along the back edge.
func TestDefUseUseBeforeDefInLoop(t *testing.T) {
	p := parse(t, `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    jump -> b1
b1:
    add r2, r3 => r2
    loadI 7 => r3
    cmpLT r2, r1 => r4
    cbr r4 -> b1, b2
b2:
    ret r2
}
`)
	diags := check.Errors(check.DefUse(p.Funcs[0], false))
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "r3") {
		t.Fatalf("want one first-iteration-undefined error for r3, got %v", diags)
	}
}

func TestDefUseStrictSSA(t *testing.T) {
	p := parse(t, `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    loadI 1 => r2
    loadI 2 => r2
    ret r2
}
`)
	if diags := check.DefUse(p.Funcs[0], false); len(diags) != 0 {
		t.Fatalf("multiple defs are legal outside SSA, got %v", diags)
	}
	diags := check.Errors(check.DefUse(p.Funcs[0], true))
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "defined 2 times") {
		t.Fatalf("strict SSA should flag the double definition, got %v", diags)
	}
}

// TestDefUseStrictAfterSSABuild: ssa.Build output satisfies the strict
// single-assignment check on every suite-style function.
func TestDefUseStrictAfterSSABuild(t *testing.T) {
	prog := compile(t, cleanSrc)
	for _, f := range prog.Funcs {
		ssa.Build(f, ssa.BuildOptions{Prune: true, FoldCopies: true})
		if diags := check.DefUse(f, true); len(diags) != 0 {
			t.Errorf("%s after ssa.Build: %v", f.Name, diags)
		}
	}
}

func TestDefUseDeadPhiWarning(t *testing.T) {
	p := parse(t, `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    cbr r1 -> b1, b2
b1:
    loadI 1 => r2
    jump -> b3
b2:
    loadI 2 => r3
    jump -> b3
b3:
    phi r2, r3 => r4
    ret r1
}
`)
	diags := check.DefUse(p.Funcs[0], false)
	if len(diags) != 1 || diags[0].Severity != check.SevWarning || !strings.Contains(diags[0].Msg, "dead φ") {
		t.Fatalf("want one dead-φ warning, got %v", diags)
	}
}

func TestDisciplineCrossBlockExpressionName(t *testing.T) {
	p := parse(t, `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    add r1, r1 => r2
    jump -> b1
b1:
    ret r2
}
`)
	diags := check.Discipline(p.Funcs[0])
	if len(check.Errors(diags)) != 1 || !strings.Contains(diags[0].Msg, "live across a block boundary") {
		t.Fatalf("want one cross-block error, got %v", diags)
	}

	// Normalize establishes the contract; the lint must then be clean.
	f := p.Funcs[0]
	core.Normalize(f)
	if diags := check.Errors(check.Discipline(f)); len(diags) != 0 {
		t.Fatalf("normalized function still flagged: %v", diags)
	}
}

// TestDisciplineAfterPipelineFront: reassociation + gvn + normalize —
// the paper's naming stage — must leave zero discipline errors on
// front-end output.
func TestDisciplineAfterPipelineFront(t *testing.T) {
	prog := compile(t, cleanSrc)
	for _, name := range []string{"reassoc", "gvn", "normalize"} {
		pass, err := core.PassByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range prog.Funcs {
			pass.Run(&core.PassContext{Ctx: context.Background(), Func: f, Analyses: analysis.NewCache(f)})
		}
	}
	for _, f := range prog.Funcs {
		if diags := check.Errors(check.Discipline(f)); len(diags) != 0 {
			t.Errorf("%s: discipline errors after reassoc+gvn+normalize: %v", f.Name, diags)
		}
	}
}

func TestValidatePassFastPathOnRenaming(t *testing.T) {
	before := parse(t, `
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    add r1, r1 => r2
    ret r2
}
`)
	after := parse(t, `
program globalsize=0

func f(r5) {
b0:
    enter(r5)
    add r5, r5 => r9
    ret r9
}
`)
	if diags := check.ValidatePass(before, after, "rename", check.ValidateOptions{}); len(diags) != 0 {
		t.Fatalf("pure renaming flagged: %v", diags)
	}
}

func TestValidatePassCatchesMiscompile(t *testing.T) {
	before := parse(t, `
program globalsize=0

func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    ret r3
}
`)
	after := before.Clone()
	after.Funcs[0].Blocks[0].Instr(1).Op = ir.OpSub // add -> sub: wrong
	diags := check.ValidatePass(before, after, "bad-fold", check.ValidateOptions{})
	if len(check.Errors(diags)) == 0 {
		t.Fatal("miscompile not caught")
	}
	d := diags[0]
	if d.Pass != "bad-fold" || d.Analyzer != "validate" || d.Func != "f" {
		t.Errorf("diagnostic should name the pass and function: %+v", d)
	}
}

// TestValidatePassFloatParams: parameter kinds are inferred, so a
// function over floats is exercised with float inputs (an all-int guess
// would trap and skip every input, validating nothing).
func TestValidatePassFloatParams(t *testing.T) {
	before := parse(t, `
program globalsize=0

func f(r1, r2) {
b0:
    enter(r1, r2)
    fadd r1, r2 => r3
    ret r3
}
`)
	after := before.Clone()
	after.Funcs[0].Blocks[0].Instr(1).Op = ir.OpFMul
	diags := check.ValidatePass(before, after, "bad", check.ValidateOptions{})
	if len(check.Errors(diags)) == 0 {
		t.Fatal("float miscompile not caught — param kinds likely misinferred")
	}
}

// TestValidatePassMemory: for an exact pass, dropping a store is caught
// through the final-memory comparison even when the return value and
// output agree.
func TestValidatePassMemory(t *testing.T) {
	before := parse(t, `
program globalsize=16

func f(r1) {
b0:
    enter(r1)
    loadI 8 => r2
    stw r1 => [r2]
    ret r1
}
`)
	after := before.Clone()
	bb := after.Funcs[0].Blocks[0]
	bb.RemoveAt(2) // drop the store
	diags := check.ValidatePass(before, after, "bad-dse", check.ValidateOptions{})
	if len(check.Errors(diags)) == 0 {
		t.Fatal("dropped store not caught")
	}
	if !strings.Contains(diags[0].Msg, "memory") {
		t.Errorf("expected a memory diagnostic, got %v", diags[0])
	}
}

// TestValidatePassTolerance: with a relative tolerance, rounding-level
// float differences (a reassociation) pass, while a real miscompile is
// still caught.
func TestValidatePassTolerance(t *testing.T) {
	before := parse(t, `
program globalsize=0

func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    fadd r1, r2 => r4
    fadd r4, r3 => r5
    ret r5
}
`)
	reassociated := parse(t, `
program globalsize=0

func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    fadd r2, r3 => r4
    fadd r4, r1 => r5
    ret r5
}
`)
	opt := check.ValidateOptions{FloatTol: 1e-6}
	if diags := check.ValidatePass(before, reassociated, "reassoc", opt); len(diags) != 0 {
		t.Fatalf("rounding-level difference flagged despite tolerance: %v", diags)
	}
	broken := before.Clone()
	broken.Funcs[0].Blocks[0].Instr(1).Op = ir.OpFMul
	if diags := check.ValidatePass(before, broken, "reassoc", opt); len(check.Errors(diags)) == 0 {
		t.Fatal("real miscompile slipped through the tolerance")
	}
}
