package check

import (
	"repro/internal/analysis"
	"repro/internal/dataflow"
	"repro/internal/ir"

	"fmt"
)

// defsite records one definition of a register.
type defsite struct {
	block *ir.Block
	index int
}

// DefUse proves that every register use is dominated by a definition.
//
// Registers with a single definition are checked directly against the
// dominator tree: the defining instruction must precede the use in the
// same block or its block must dominate the use's block.  Registers
// with several definitions (legal outside SSA form) fall back to a
// definite-assignment dataflow — the intersection over all paths of the
// registers assigned so far — which is the path-sensitive statement of
// the same property.  φ operands are checked along their predecessor
// edge: the operand must be defined at the end of the corresponding
// predecessor, not at the φ itself.
//
// With strictSSA set, multiple definitions of one register are
// themselves errors (the single-assignment invariant); use it on code
// that claims to be in SSA form, e.g. directly after ssa.Build.
//
// Warnings flag φ pathologies that interpret fine but indicate a pass
// bug: operands on edges from unreachable predecessors ("dead φ
// operands") and φ-nodes whose result is never used.
func DefUse(f *ir.Func, strictSSA bool) []Diagnostic {
	return DefUseWith(f, strictSSA, analysis.NewCache(f))
}

// DefUseWith is DefUse drawing the reverse postorder and dominator tree
// from the given analysis cache.  The checker never mutates f, so the
// cache stays valid for subsequent passes.
func DefUseWith(f *ir.Func, strictSSA bool, ac *analysis.Cache) []Diagnostic {
	var diags []Diagnostic
	errf := func(b *ir.Block, i int, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "defuse", Severity: SevError,
			Func: f.Name, Block: b.Name, Instr: i,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	warnf := func(b *ir.Block, i int, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "defuse", Severity: SevWarning,
			Func: f.Name, Block: b.Name, Instr: i,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	if len(f.Blocks) == 0 {
		return diags
	}
	nr := f.NumRegs()
	inRange := func(r ir.Reg) bool { return r != ir.NoReg && int(r) < nr }

	reachable := make([]bool, len(f.Blocks))
	rpo := ac.RPO()
	for _, b := range rpo {
		reachable[b.ID] = true
	}
	dom := ac.DomTree()

	// Collect definition sites (enter's operands define the parameters).
	defs := make([][]defsite, nr)
	used := make([]bool, nr)
	for _, b := range f.Blocks {
		if !reachable[b.ID] {
			continue
		}
		for i, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpEnter {
				for _, p := range in.Args {
					if inRange(p) {
						defs[p] = append(defs[p], defsite{b, i})
					}
				}
				continue
			}
			for _, a := range in.Args {
				if inRange(a) {
					used[a] = true
				}
			}
			if inRange(in.Dst) {
				defs[in.Dst] = append(defs[in.Dst], defsite{b, i})
			}
		}
	}

	if strictSSA {
		for r := ir.Reg(1); int(r) < nr; r++ {
			if len(defs[r]) > 1 {
				d := defs[r][1]
				errf(d.block, d.index, "register %s defined %d times in SSA-form function", r, len(defs[r]))
			}
		}
	}

	// Definite assignment for multi-definition registers: out[b] is the
	// set of registers assigned on every path from entry through b.
	outs := make([]*dataflow.BitSet, len(f.Blocks))
	for _, b := range f.Blocks {
		outs[b.ID] = dataflow.NewBitSet(nr)
		if b != f.Entry() {
			outs[b.ID].SetAll()
		}
	}
	addDefs := func(b *ir.Block, s *dataflow.BitSet) {
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpEnter {
				for _, p := range in.Args {
					if inRange(p) {
						s.Set(int(p))
					}
				}
			} else if inRange(in.Dst) {
				s.Set(int(in.Dst))
			}
		}
	}
	blockIn := func(b *ir.Block, dst *dataflow.BitSet) {
		dst.SetAll()
		any := false
		for _, p := range b.Preds {
			if reachable[p.ID] {
				dst.Intersect(outs[p.ID])
				any = true
			}
		}
		if !any {
			dst.ClearAll()
		}
	}
	addDefs(f.Entry(), outs[f.Entry().ID])
	tmp := dataflow.NewBitSet(nr)
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			blockIn(b, tmp)
			addDefs(b, tmp)
			if !tmp.Equal(outs[b.ID]) {
				outs[b.ID].CopyFrom(tmp)
				changed = true
			}
		}
	}

	// checkUse reports whether register r is surely defined when read at
	// (b, i); for φ operands the reading point is the end of pred.
	checkUse := func(r ir.Reg, b *ir.Block, i int, pred *ir.Block, live *dataflow.BitSet) {
		if !inRange(r) {
			return // ir.Verify reports out-of-range operands
		}
		switch len(defs[r]) {
		case 0:
			errf(b, i, "use of undefined register %s", r)
		case 1:
			d := defs[r][0]
			var ok bool
			if pred != nil {
				ok = d.block == pred || dom.Dominates(d.block, pred)
			} else {
				ok = (d.block == b && d.index < i) || (d.block != b && dom.Dominates(d.block, b))
			}
			if !ok {
				where := b.Name
				if pred != nil {
					where = "edge " + pred.Name + "->" + b.Name
				}
				errf(b, i, "use of %s at %s not dominated by its definition in %s", r, where, d.block.Name)
			}
		default:
			if pred != nil {
				if !outs[pred.ID].Has(int(r)) {
					errf(b, i, "φ operand %s may be undefined on edge %s->%s", r, pred.Name, b.Name)
				}
			} else if !live.Has(int(r)) {
				errf(b, i, "use of %s not dominated by any definition", r)
			}
		}
	}

	live := dataflow.NewBitSet(nr)
	for _, b := range rpo {
		blockIn(b, live)
		for i, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			switch in.Op {
			case ir.OpEnter:
				for _, p := range in.Args {
					if inRange(p) {
						live.Set(int(p))
					}
				}
				continue
			case ir.OpPhi:
				for ai, a := range in.Args {
					if ai >= len(b.Preds) {
						break // arity mismatch is ir.Verify's report
					}
					p := b.Preds[ai]
					if !reachable[p.ID] {
						warnf(b, i, "dead φ operand %s from unreachable predecessor %s", a, p.Name)
						continue
					}
					checkUse(a, b, i, p, nil)
				}
				if inRange(in.Dst) && !used[in.Dst] {
					warnf(b, i, "dead φ: result %s is never used", in.Dst)
				}
			default:
				for _, a := range in.Args {
					checkUse(a, b, i, nil, live)
				}
			}
			if inRange(in.Dst) {
				live.Set(int(in.Dst))
			}
		}
	}
	return diags
}
