package check

import (
	"fmt"

	"repro/internal/ir"
)

// Discipline lints the paper's naming contract (§2.2, §5.1), the
// precondition lexical PRE needs and the property gvn renaming,
// reassociation's forward propagation, and core.Normalize are supposed
// to establish:
//
//   - only copies, φ-nodes, calls and enter may target variable names;
//     the target of any other computation is an expression name;
//   - expression names must not be live across basic-block boundaries —
//     every use of an expression name must follow a definition of it in
//     the same block.
//
// A register whose definitions mix both kinds ("both expression and
// variable name") is reported as a warning: normalize deliberately
// treats such registers as variables, so downstream passes tolerate
// them, but a renaming pass that produces new ones is suspect.  A
// cross-block use of a pure expression name is an error — that is
// exactly the regression this lint exists to catch in gvn/reassoc.
//
// Raw front-end output fails this lint by design; run it only on code
// that claims the discipline (after normalize, or after reassociation's
// forward propagation plus gvn renaming).
func Discipline(f *ir.Func) []Diagnostic {
	var diags []Diagnostic
	nr := f.NumRegs()
	inRange := func(r ir.Reg) bool { return r != ir.NoReg && int(r) < nr }

	// isExprDef mirrors core.Normalize's classification: destinations of
	// pure non-copy computations and loads are expression names.
	isExprDef := func(in *ir.Instr) bool {
		if in.Dst == ir.NoReg {
			return false
		}
		switch in.Op {
		case ir.OpCopy, ir.OpEnter, ir.OpCall, ir.OpPhi:
			return false
		}
		return in.Op.Pure() || in.Op.IsLoad()
	}

	exprDef := make([]bool, nr)
	varDef := make([]bool, nr)
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if isExprDef(in) {
			exprDef[in.Dst] = true
			return
		}
		if in.Op == ir.OpEnter {
			for _, p := range in.Args {
				if inRange(p) {
					varDef[p] = true
				}
			}
			return
		}
		if inRange(in.Dst) {
			varDef[in.Dst] = true
		}
	})

	for r := ir.Reg(1); int(r) < nr; r++ {
		if exprDef[r] && varDef[r] {
			diags = append(diags, Diagnostic{
				Analyzer: "discipline", Severity: SevWarning, Func: f.Name, Instr: -1,
				Msg: fmt.Sprintf("register %s is both an expression name and a variable name", r),
			})
		}
	}

	// Cross-block uses of pure expression names.  A use is local when a
	// definition of the register appears earlier in the same block; a φ
	// operand reads at the end of its predecessor, so it is local only
	// to a definition in that predecessor.
	exprOnly := func(r ir.Reg) bool { return inRange(r) && exprDef[r] && !varDef[r] }
	local := make([]int, nr) // generation of the last local definition
	gen := 0
	for _, b := range f.Blocks {
		gen++
		for i, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			switch in.Op {
			case ir.OpEnter:
				for _, p := range in.Args {
					if inRange(p) {
						local[p] = gen
					}
				}
				continue
			case ir.OpPhi:
				for ai, a := range in.Args {
					if !exprOnly(a) || ai >= len(b.Preds) {
						continue
					}
					diags = append(diags, Diagnostic{
						Analyzer: "discipline", Severity: SevError,
						Func: f.Name, Block: b.Name, Instr: i,
						Msg: fmt.Sprintf("expression name %s flows into φ along edge %s->%s", a, b.Preds[ai].Name, b.Name),
					})
				}
			default:
				for _, a := range in.Args {
					if exprOnly(a) && local[a] != gen {
						diags = append(diags, Diagnostic{
							Analyzer: "discipline", Severity: SevError,
							Func: f.Name, Block: b.Name, Instr: i,
							Msg: fmt.Sprintf("expression name %s is live across a block boundary (used in %s without a local definition)", a, b.Name),
						})
					}
				}
			}
			if inRange(in.Dst) {
				local[in.Dst] = gen
			}
		}
	}
	return diags
}
