package check

import (
	"bytes"
	"context"
	"fmt"
	"math"

	"repro/internal/interp"
	"repro/internal/ir"
)

// ValidateOptions configure translation validation.
type ValidateOptions struct {
	// Ctx, when non-nil, bounds the differential interpretation: the
	// interpreter polls it, and ValidatePass returns early (with the
	// diagnostics gathered so far, and none blaming the timeout on the
	// pass) once it is cancelled.  Callers that care about the
	// distinction check Ctx.Err() after the call.
	Ctx context.Context
	// FloatTol is the relative tolerance for floating-point results.
	// Zero means exact: the pass claims bit-identical float behavior
	// (true for everything except the reassociating passes, which
	// legitimately change rounding).  When zero, the final global
	// memory images are compared byte for byte as well.
	FloatTol float64
	// MaxInputs bounds the generated input tuples per function
	// (default 3).
	MaxInputs int
	// MaxSteps bounds the reference interpretation of one input
	// (default 1e6); inputs whose reference run exceeds it are skipped.
	MaxSteps int64
}

func (o ValidateOptions) maxInputs() int {
	if o.MaxInputs <= 0 {
		return 3
	}
	return o.MaxInputs
}

func (o ValidateOptions) maxSteps() int64 {
	if o.MaxSteps <= 0 {
		return 1_000_000
	}
	return o.MaxSteps
}

// ValidatePass checks that a pass application preserved semantics:
// before is the program as it entered the pass, after the program the
// pass produced.  Validation is differential interpretation — every
// function is run against generated inputs in both programs and the
// results, printed output and (for exact passes) final memory are
// compared — preceded by a value-numbering-based fast path: functions
// congruent to their originals modulo register names are semantically
// unchanged, and if no function changed the expensive interpretation is
// skipped entirely.
//
// Inputs whose reference run traps or exceeds the step budget are
// skipped: the reference behavior is undefined or unaffordable there,
// so nothing can be concluded.  Every returned diagnostic is an error
// naming the offending pass.
func ValidatePass(before, after *ir.Program, pass string, opt ValidateOptions) []Diagnostic {
	var diags []Diagnostic
	errf := func(fn string, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "validate", Severity: SevError,
			Func: fn, Instr: -1, Pass: pass,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	changed := false
	for _, bf := range before.Funcs {
		af := after.Func(bf.Name)
		if af == nil {
			errf(bf.Name, "pass removed the function")
			continue
		}
		if !vnEqual(bf, af) {
			changed = true
		}
	}
	if !changed || len(diags) > 0 {
		return diags
	}

	cancelled := func() bool { return opt.Ctx != nil && opt.Ctx.Err() != nil }
	kinds := inferParamKinds(before)
	for _, bf := range before.Funcs {
		inputs := genInputs(kinds[bf.Name], opt.maxInputs())
		for _, in := range inputs {
			if cancelled() {
				return diags
			}
			mb := interp.NewMachine(before)
			mb.MaxSteps = opt.maxSteps()
			if opt.Ctx != nil {
				mb.SetContext(opt.Ctx)
			}
			vb, err := mb.Call(bf.Name, in...)
			if err != nil {
				continue // reference behavior undefined here (or cancelled)
			}
			ma := interp.NewMachine(after)
			ma.MaxSteps = 4*mb.Steps + 4096
			if opt.Ctx != nil {
				ma.SetContext(opt.Ctx)
			}
			va, err := ma.Call(bf.Name, in...)
			if cancelled() {
				// Don't let a deadline masquerade as a miscompile.
				return diags
			}
			if err != nil {
				errf(bf.Name, "on input %v: reference returns %s but transformed program fails: %v", in, vb, err)
				continue
			}
			if !valuesAgree(vb, va, opt.FloatTol) {
				errf(bf.Name, "on input %v: result %s, want %s", in, va, vb)
				continue
			}
			if len(mb.Output) != len(ma.Output) {
				errf(bf.Name, "on input %v: printed %d values, want %d", in, len(ma.Output), len(mb.Output))
				continue
			}
			outOK := true
			for i := range mb.Output {
				if !valuesAgree(mb.Output[i], ma.Output[i], opt.FloatTol) {
					errf(bf.Name, "on input %v: printed value %d is %s, want %s", in, i, ma.Output[i], mb.Output[i])
					outOK = false
					break
				}
			}
			if outOK && opt.FloatTol == 0 && !bytes.Equal(mb.Mem, ma.Mem) {
				errf(bf.Name, "on input %v: final memory images differ", in)
			}
		}
	}
	return diags
}

// ValuesAgree reports whether two interpreter values agree under the
// given relative float tolerance (exact, bit-for-bit on floats, when
// tol is zero).  Exported so differential harnesses compare observed
// behavior with exactly the semantics translation validation uses.
func ValuesAgree(want, got interp.Value, tol float64) bool {
	return valuesAgree(want, got, tol)
}

// valuesAgree compares two interpreter values; float comparisons use
// the given relative tolerance (exact when tol is zero).
func valuesAgree(want, got interp.Value, tol float64) bool {
	if want.Float != got.Float {
		return false
	}
	if !want.Float {
		return want.I == got.I
	}
	if tol == 0 {
		return math.Float64bits(want.F) == math.Float64bits(got.F) ||
			(math.IsNaN(want.F) && math.IsNaN(got.F))
	}
	if math.IsNaN(want.F) || math.IsNaN(got.F) {
		return math.IsNaN(want.F) == math.IsNaN(got.F)
	}
	if math.IsInf(want.F, 0) || math.IsInf(got.F, 0) {
		return want.F == got.F
	}
	diff := math.Abs(got.F - want.F)
	scale := math.Max(math.Abs(want.F), 1)
	return diff <= tol*scale
}

// vnEqual reports whether two functions are congruent modulo register
// names: same block structure and, position by position, the same
// operations with operands that received the same value numbers.  A
// register's value number is its order of first appearance in a fixed
// walk, so any pure renaming (the only thing gvn's rewrite or a no-op
// application changes) maps to the same numbering.
func vnEqual(f, g *ir.Func) bool {
	if len(f.Blocks) != len(g.Blocks) {
		return false
	}
	fn := map[ir.Reg]int{}
	gn := map[ir.Reg]int{}
	number := func(m map[ir.Reg]int, r ir.Reg) int {
		if r == ir.NoReg {
			return -1
		}
		n, ok := m[r]
		if !ok {
			n = len(m)
			m[r] = n
		}
		return n
	}
	for bi, fb := range f.Blocks {
		gb := g.Blocks[bi]
		if len(fb.Instrs) != len(gb.Instrs) || len(fb.Succs) != len(gb.Succs) {
			return false
		}
		for si, fs := range fb.Succs {
			if fs.ID != gb.Succs[si].ID {
				return false
			}
		}
		for ii, fiID := range fb.Instrs {
			fi := fb.Fn.Instr(fiID)
			gi := gb.Instr(ii)
			if fi.Op != gi.Op || fi.Imm != gi.Imm || fi.Sym != gi.Sym ||
				math.Float64bits(fi.FImm) != math.Float64bits(gi.FImm) ||
				len(fi.Args) != len(gi.Args) {
				return false
			}
			for ai, fa := range fi.Args {
				if number(fn, fa) != number(gn, gi.Args[ai]) {
					return false
				}
			}
			if number(fn, fi.Dst) != number(gn, gi.Dst) {
				return false
			}
		}
	}
	return true
}

// Register kinds for input generation.
type kind uint8

const (
	kindUnknown kind = iota
	kindInt
	kindFloat
)

// inferParamKinds infers, for every function, whether each parameter
// holds an integer or a float, by propagating the operand and result
// types the opcodes dictate through copies, φ-nodes, call argument
// bindings and returns.  Parameters whose kind cannot be determined
// default to integer.
func inferParamKinds(p *ir.Program) map[string][]kind {
	// Node space: one node per register per function, plus one "return
	// value" node per function.
	offset := map[string]int{}
	total := 0
	for _, f := range p.Funcs {
		offset[f.Name] = total
		total += f.NumRegs() + 1
	}
	retNode := func(f *ir.Func) int { return offset[f.Name] + f.NumRegs() }
	node := func(f *ir.Func, r ir.Reg) int {
		if r == ir.NoReg || int(r) >= f.NumRegs() {
			return -1
		}
		return offset[f.Name] + int(r)
	}

	kinds := make([]kind, total)
	var edges [][2]int // equality constraints
	set := func(n int, k kind) {
		if n >= 0 && kinds[n] == kindUnknown {
			kinds[n] = k
		}
	}
	equate := func(a, b int) {
		if a >= 0 && b >= 0 {
			edges = append(edges, [2]int{a, b})
		}
	}

	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, inID := range b.Instrs {
				in := b.Fn.Instr(inID)
				switch in.Op {
				case ir.OpEnter:
					// Parameter kinds come from their uses.
				case ir.OpCopy:
					if len(in.Args) == 1 {
						equate(node(f, in.Dst), node(f, in.Args[0]))
					}
				case ir.OpPhi:
					for _, a := range in.Args {
						equate(node(f, in.Dst), node(f, a))
					}
				case ir.OpCall:
					if callee := p.Func(f.SymName(in.Sym)); callee != nil {
						for i, a := range in.Args {
							if i < len(callee.Params) {
								equate(node(f, a), node(callee, callee.Params[i]))
							}
						}
						equate(node(f, in.Dst), retNode(callee))
					}
				case ir.OpRet:
					if len(in.Args) == 1 {
						equate(node(f, in.Args[0]), retNode(f))
					}
				default:
					for i, a := range in.Args {
						switch argKind(in.Op, i) {
						case kindInt:
							set(node(f, a), kindInt)
						case kindFloat:
							set(node(f, a), kindFloat)
						}
					}
					if in.Dst != ir.NoReg {
						if in.Op.Float() {
							set(node(f, in.Dst), kindFloat)
						} else {
							set(node(f, in.Dst), kindInt)
						}
					}
				}
			}
		}
	}

	// Propagate known kinds across the equality edges to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			a, b := e[0], e[1]
			switch {
			case kinds[a] != kindUnknown && kinds[b] == kindUnknown:
				kinds[b] = kinds[a]
				changed = true
			case kinds[b] != kindUnknown && kinds[a] == kindUnknown:
				kinds[a] = kinds[b]
				changed = true
			}
		}
	}

	out := map[string][]kind{}
	for _, f := range p.Funcs {
		ks := make([]kind, len(f.Params))
		for i, pr := range f.Params {
			k := kindInt
			if n := node(f, pr); n >= 0 && kinds[n] == kindFloat {
				k = kindFloat
			}
			ks[i] = k
		}
		out[f.Name] = ks
	}
	return out
}

// argKind returns the kind an opcode demands of operand i, or
// kindUnknown for polymorphic positions.
func argKind(op ir.Op, i int) kind {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpNeg,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot, ir.OpShl, ir.OpShr,
		ir.OpMin, ir.OpMax, ir.OpAbs, ir.OpI2F, ir.OpCBr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
		ir.OpLoadW, ir.OpLoadD, ir.OpLoadS:
		return kindInt
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFNeg,
		ir.OpFMin, ir.OpFMax, ir.OpSqrt, ir.OpFAbs, ir.OpF2I,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE:
		return kindFloat
	case ir.OpStoreW:
		return kindInt // value and address are both integers
	case ir.OpStoreD, ir.OpStoreS:
		if i == 0 {
			return kindFloat // stored value
		}
		return kindInt // address
	}
	return kindUnknown
}

// ProgramInputs returns up to n deterministic argument tuples for the
// named function, with each parameter's int/float kind inferred from
// its uses across the whole program (the same inference translation
// validation uses).  Differential harnesses call this so that their
// inputs and the checker's inputs agree on typing and never provoke
// spurious int/float traps.  It returns nil if the function is absent.
func ProgramInputs(p *ir.Program, fn string, n int) [][]interp.Value {
	f := p.Func(fn)
	if f == nil {
		return nil
	}
	return genInputs(inferParamKinds(p)[fn], n)
}

// genInputs builds up to n deterministic argument tuples for a function
// with the given parameter kinds.  The integer values are chosen to be
// small and 8-aligned-friendly so that parameters used as sizes keep
// loops short and parameters used as addresses stay within the global
// segment on at least some tuples.
func genInputs(kinds []kind, n int) [][]interp.Value {
	mk := func(iv func(i int) int64, fv func(i int) float64) []interp.Value {
		args := make([]interp.Value, len(kinds))
		for i, k := range kinds {
			if k == kindFloat {
				args[i] = interp.FloatVal(fv(i))
			} else {
				args[i] = interp.IntVal(iv(i))
			}
		}
		return args
	}
	tuples := [][]interp.Value{
		mk(func(i int) int64 { return int64(i + 1) },
			func(i int) float64 { return 1.5 + float64(i) }),
		mk(func(i int) int64 { return int64(8 * i) },
			func(i int) float64 { return 0.25*float64(i) - 0.5 }),
		mk(func(i int) int64 { return int64(2 - i) },
			func(i int) float64 { return -2.25 * float64(i+1) }),
	}
	if n < len(tuples) {
		tuples = tuples[:n]
	}
	return tuples
}
