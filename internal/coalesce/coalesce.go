// Package coalesce implements Chaitin-style copy coalescing, the
// "coalescing phase of a Chaitin-style global register allocator" the
// paper relies on to "remove unnecessary copy instructions" (§3.2,
// Figure 10).  Two names joined by a copy are merged when they do not
// interfere; merging renames every occurrence and deletes the copy.
package coalesce

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// Stats reports the copies removed.
type Stats struct {
	Coalesced int // copies removed by merging names
	SelfCopy  int // trivial "copy r => r" removed
	Rounds    int
}

// Run coalesces copies in f until no more merges are possible.  It
// must run on φ-free code (after SSA destruction); φ-bearing functions
// are left untouched.
func Run(f *ir.Func) Stats {
	return RunWith(f, analysis.NewCache(f))
}

// RunWith is Run drawing liveness from the given cache.  Each mutating
// round marks the function so the next round recomputes liveness; the
// final (no-op) round leaves valid liveness cached for later passes.
func RunWith(f *ir.Func, ac *analysis.Cache) Stats {
	var st Stats
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				return st
			}
		}
	}
	for {
		st.Rounds++
		merged := coalesceRound(f, ac, &st)
		if !merged {
			return st
		}
	}
}

// interference is a sparse symmetric adjacency over registers.
type interference struct {
	adj []map[ir.Reg]bool
}

func (g *interference) add(a, b ir.Reg) {
	if a == b {
		return
	}
	if g.adj[a] == nil {
		g.adj[a] = map[ir.Reg]bool{}
	}
	if g.adj[b] == nil {
		g.adj[b] = map[ir.Reg]bool{}
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

func (g *interference) has(a, b ir.Reg) bool {
	return g.adj[a] != nil && g.adj[a][b]
}

// union merges b's adjacency into a's (conservative after coalescing).
func (g *interference) union(a, b ir.Reg) {
	for n := range g.adj[b] {
		if n != a {
			g.add(a, n)
		}
	}
}

func coalesceRound(f *ir.Func, ac *analysis.Cache, st *Stats) bool {
	lv := ac.Liveness()
	g := &interference{adj: make([]map[ir.Reg]bool, f.NumRegs())}

	// Build interference: at each definition of r, r interferes with
	// everything live after the instruction; for a copy d ← s, d does
	// not interfere with s on account of this def.
	for _, b := range f.Blocks {
		live := lv.LiveOut[b.ID].Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			defs := in.Args
			if in.Op != ir.OpEnter {
				defs = nil
				if in.Dst != ir.NoReg {
					defs = []ir.Reg{in.Dst}
				}
			}
			for _, d := range defs {
				skip := ir.NoReg
				if in.Op == ir.OpCopy {
					skip = in.Args[0]
				}
				live.ForEach(func(l int) {
					if ir.Reg(l) != skip {
						g.add(d, ir.Reg(l))
					}
				})
			}
			for _, d := range defs {
				live.Clear(int(d))
			}
			if in.Op != ir.OpEnter {
				for _, a := range in.Args {
					live.Set(int(a))
				}
			}
		}
	}

	// Union-find over registers so multiple merges compose in one round.
	parent := make([]ir.Reg, f.NumRegs())
	for i := range parent {
		parent[i] = ir.Reg(i)
	}
	var find func(r ir.Reg) ir.Reg
	find = func(r ir.Reg) ir.Reg {
		if parent[r] != r {
			parent[r] = find(parent[r])
		}
		return parent[r]
	}

	merged := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCopy {
				continue
			}
			d, s := find(in.Dst), find(in.Args[0])
			if d == s {
				continue // already merged; copy removed below
			}
			if g.has(d, s) {
				continue
			}
			// Merge d into s.
			parent[d] = s
			g.union(s, d)
			merged = true
		}
	}
	if !merged {
		// Still remove degenerate self-copies.
		before := st.SelfCopy
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op == ir.OpCopy && in.Dst == in.Args[0] {
					st.SelfCopy++
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if st.SelfCopy > before {
			f.MarkCodeMutated()
		}
		return false
	}

	// Rewrite all registers through the union-find and drop copies
	// that became self-copies.
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				in.Args[i] = find(a)
			}
			if in.Dst != ir.NoReg {
				in.Dst = find(in.Dst)
			}
			if in.Op == ir.OpCopy && in.Dst == in.Args[0] {
				st.Coalesced++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	for i, p := range f.Params {
		f.Params[i] = find(p)
	}
	// The register rewrites above bypass the Block helpers.
	f.MarkCodeMutated()
	return true
}
