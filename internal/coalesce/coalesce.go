// Package coalesce implements Chaitin-style copy coalescing, the
// "coalescing phase of a Chaitin-style global register allocator" the
// paper relies on to "remove unnecessary copy instructions" (§3.2,
// Figure 10).  Two names joined by a copy are merged when they do not
// interfere; merging renames every occurrence and deletes the copy.
package coalesce

import (
	"repro/internal/analysis"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// Stats reports the copies removed.
type Stats struct {
	Coalesced int // copies removed by merging names
	SelfCopy  int // trivial "copy r => r" removed
	Rounds    int
}

// Run coalesces copies in f until no more merges are possible.  It
// must run on φ-free code (after SSA destruction); φ-bearing functions
// are left untouched.
func Run(f *ir.Func) Stats {
	return RunWith(f, analysis.NewCache(f))
}

// RunWith is Run drawing liveness from the given cache.  Each mutating
// round marks the function so the next round recomputes liveness; the
// final (no-op) round leaves valid liveness cached for later passes.
func RunWith(f *ir.Func, ac *analysis.Cache) Stats {
	var st Stats
	for _, b := range f.Blocks {
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpPhi {
				return st
			}
		}
	}
	g := &interference{pairs: make(map[uint64]struct{})}
	for {
		st.Rounds++
		merged := coalesceRound(f, ac, g, &st)
		if !merged {
			return st
		}
	}
}

// interference is a sparse symmetric adjacency over registers: a hash
// set of packed register pairs answers membership, and an index-linked
// edge list drives neighbor iteration.  Edges live in two flat arrays
// (to, next) threaded through per-register head indices, so adding an
// edge never allocates beyond the amortized growth of those arrays —
// per-register append slices would pay a grow-allocation per register
// instead.  All storage survives round over round (reset, not
// reallocated).
type interference struct {
	pairs map[uint64]struct{}
	head  []int32 // first edge index per register, -1 when none
	to    []ir.Reg
	next  []int32
}

func pairKey(a, b ir.Reg) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// reset empties the graph and re-dimensions it for nr registers.
func (g *interference) reset(nr int) {
	clear(g.pairs)
	if cap(g.head) < nr {
		g.head = make([]int32, nr)
	} else {
		g.head = g.head[:nr]
	}
	for i := range g.head {
		g.head[i] = -1
	}
	g.to = g.to[:0]
	g.next = g.next[:0]
}

func (g *interference) add(a, b ir.Reg) {
	if a == b {
		return
	}
	k := pairKey(a, b)
	if _, dup := g.pairs[k]; dup {
		return
	}
	g.pairs[k] = struct{}{}
	g.to = append(g.to, b)
	g.next = append(g.next, g.head[a])
	g.head[a] = int32(len(g.to) - 1)
	g.to = append(g.to, a)
	g.next = append(g.next, g.head[b])
	g.head[b] = int32(len(g.to) - 1)
}

func (g *interference) has(a, b ir.Reg) bool {
	_, ok := g.pairs[pairKey(a, b)]
	return ok
}

// union merges b's adjacency into a's (conservative after coalescing).
// New edges are appended past the end of b's chain, so the traversal
// never revisits them.
func (g *interference) union(a, b ir.Reg) {
	for e := g.head[b]; e >= 0; e = g.next[e] {
		if n := g.to[e]; n != a {
			g.add(a, n)
		}
	}
}

func coalesceRound(f *ir.Func, ac *analysis.Cache, g *interference, st *Stats) bool {
	lv := ac.Liveness()
	g.reset(f.NumRegs())

	// Build interference: at each definition of r, r interferes with
	// everything live after the instruction; for a copy d ← s, d does
	// not interfere with s on account of this def.
	live := dataflow.GetScratch(f.NumRegs())
	defer dataflow.PutScratch(live)
	for _, b := range f.Blocks {
		live.CopyFrom(lv.LiveOut[b.ID])
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instr(i)
			defs := in.Args
			if in.Op != ir.OpEnter {
				defs = nil
				if in.Dst != ir.NoReg {
					defs = []ir.Reg{in.Dst}
				}
			}
			for _, d := range defs {
				skip := ir.NoReg
				if in.Op == ir.OpCopy {
					skip = in.Args[0]
				}
				live.ForEach(func(l int) {
					if ir.Reg(l) != skip {
						g.add(d, ir.Reg(l))
					}
				})
			}
			for _, d := range defs {
				live.Clear(int(d))
			}
			if in.Op != ir.OpEnter {
				for _, a := range in.Args {
					live.Set(int(a))
				}
			}
		}
	}

	// Union-find over registers so multiple merges compose in one round.
	parent := make([]ir.Reg, f.NumRegs())
	for i := range parent {
		parent[i] = ir.Reg(i)
	}
	var find func(r ir.Reg) ir.Reg
	find = func(r ir.Reg) ir.Reg {
		if parent[r] != r {
			parent[r] = find(parent[r])
		}
		return parent[r]
	}

	merged := false
	for _, b := range f.Blocks {
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op != ir.OpCopy {
				continue
			}
			d, s := find(in.Dst), find(in.Args[0])
			if d == s {
				continue // already merged; copy removed below
			}
			if g.has(d, s) {
				continue
			}
			// Merge d into s.
			parent[d] = s
			g.union(s, d)
			merged = true
		}
	}
	if !merged {
		// Still remove degenerate self-copies.
		before := st.SelfCopy
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, inID := range b.Instrs {
				in := b.Fn.Instr(inID)
				if in.Op == ir.OpCopy && in.Dst == in.Args[0] {
					st.SelfCopy++
					continue
				}
				kept = append(kept, inID)
			}
			b.Instrs = kept
		}
		if st.SelfCopy > before {
			f.MarkCodeMutated()
		}
		return false
	}

	// Rewrite all registers through the union-find and drop copies
	// that became self-copies.
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			for i, a := range in.Args {
				in.Args[i] = find(a)
			}
			if in.Dst != ir.NoReg {
				in.Dst = find(in.Dst)
			}
			if in.Op == ir.OpCopy && in.Dst == in.Args[0] {
				st.Coalesced++
				continue
			}
			kept = append(kept, inID)
		}
		b.Instrs = kept
	}
	for i, p := range f.Params {
		f.Params[i] = find(p)
	}
	// The register rewrites above bypass the Block helpers.
	f.MarkCodeMutated()
	return true
}
