package coalesce_test

import (
	"testing"

	"repro/internal/coalesce"
	"repro/internal/interp"
	"repro/internal/ir"
)

func run(t *testing.T, f *ir.Func, args ...int64) interp.Value {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(f.Name, vals...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v
}

func countCopies(f *ir.Func) int {
	n := 0
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpCopy {
			n++
		}
	})
	return n
}

func TestCoalescesChain(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 1 => r2
    add r1, r2 => r3
    copy r3 => r4
    copy r4 => r5
    add r5, r2 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	want := run(t, f, 10)
	st := coalesce.Run(f)
	got := run(t, f, 10)
	if got.I != want.I || got.I != 12 {
		t.Fatalf("got %d, want 12", got.I)
	}
	if st.Coalesced != 2 {
		t.Errorf("coalesced %d, want 2\n%s", st.Coalesced, f)
	}
	if countCopies(f) != 0 {
		t.Errorf("copies remain\n%s", f)
	}
}

// TestKeepsInterferingCopy: v = old value of x, x changes, both used —
// the copy must survive.
func TestKeepsInterferingCopy(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    copy r1 => r2
    loadI 1 => r3
    add r1, r3 => r1
    mul r1, r2 => r4
    ret r4
}
`
	f := ir.MustParseFunc(src)
	want := run(t, f, 6) // (6+1)*6 = 42
	coalesce.Run(f)
	got := run(t, f, 6)
	if got.I != want.I || got.I != 42 {
		t.Fatalf("got %d, want 42", got.I)
	}
	if countCopies(f) != 1 {
		t.Errorf("interfering copy removed\n%s", f)
	}
}

// TestLoopCarriedCopies: the classic post-SSA shape — the φ-copies in
// a loop latch coalesce away when they do not interfere.
func TestLoopCarriedCopies(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    jump -> b1
b1:
    loadI 1 => r3
    add r2, r3 => r4
    copy r4 => r2
    cmpLT r2, r1 => r5
    cbr r5 -> b1, b2
b2:
    ret r2
}
`
	f := ir.MustParseFunc(src)
	want := run(t, f, 5)
	st := coalesce.Run(f)
	got := run(t, f, 5)
	if got.I != want.I || got.I != 5 {
		t.Fatalf("got %d, want %d", got.I, want.I)
	}
	if st.Coalesced != 1 {
		t.Errorf("loop copy not coalesced: %+v\n%s", st, f)
	}
}

// TestSwapCopiesSurvive: a cyclic swap through a temp must not be
// mangled (all three copies interfere pairwise except via the temp).
func TestSwapCopiesSurvive(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    jump -> b1
b1:
    copy r1 => r5
    copy r2 => r1
    copy r5 => r2
    loadI 1 => r6
    add r4, r6 => r4
    cmpLT r4, r3 => r7
    cbr r7 -> b1, b2
b2:
    loadI 100 => r8
    mul r1, r8 => r9
    add r9, r2 => r10
    ret r10
}
`
	ref := func(a, b, n int64) int64 {
		iters := n
		if iters < 1 {
			iters = 1 // the CFG is do-while: the body runs at least once
		}
		for i := int64(0); i < iters; i++ {
			a, b = b, a
		}
		return a*100 + b
	}
	for _, n := range []int64{0, 1, 2, 5} {
		f := ir.MustParseFunc(src)
		coalesce.Run(f)
		if err := ir.Verify(f); err != nil {
			t.Fatal(err)
		}
		got := run(t, f, 1, 2, n)
		if got.I != ref(1, 2, n) {
			t.Errorf("swap(%d): got %d, want %d\n%s", n, got.I, ref(1, 2, n), f)
		}
	}
}

func TestSelfCopyRemoved(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    copy r1 => r1
    ret r1
}
`
	f := ir.MustParseFunc(src)
	coalesce.Run(f)
	if countCopies(f) != 0 {
		t.Errorf("self copy remains\n%s", f)
	}
}
