package core

import (
	"context"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/check"
	"repro/internal/ir"
)

// CheckEnv is the environment variable that turns every Optimize call
// into a CheckedOptimize call: set EPRE_CHECK=1 and the whole stack —
// the public API, cmd/epre, the table harnesses — sandwiches every pass
// between semantic checks and fails on any error diagnostic.
const CheckEnv = "EPRE_CHECK"

// CheckEnabled reports whether the EPRE_CHECK environment variable
// requests checked optimization.
func CheckEnabled() bool {
	v := os.Getenv(CheckEnv)
	return v != "" && v != "0"
}

// CheckConfig tunes the per-pass checking of CheckedRun.
type CheckConfig struct {
	// Validate enables translation validation (differential
	// interpretation) for every pass application.  The dataflow/SSA
	// verifier always runs; validation is the expensive part.
	Validate bool
	// MaxInputs and MaxSteps bound each validation (see
	// check.ValidateOptions).
	MaxInputs int
	MaxSteps  int64
}

// DefaultCheckConfig enables full checking with the default budgets.
func DefaultCheckConfig() CheckConfig { return CheckConfig{Validate: true} }

// reassociating names the passes that may legitimately change
// floating-point rounding; translation validation compares their float
// results within a relative tolerance instead of bit-exactly.
func reassociating(pass string) bool {
	return strings.HasPrefix(pass, "reassoc")
}

// reassocFloatTol is the relative tolerance granted to reassociating
// passes, matching the suite's validation tolerance.
const reassocFloatTol = 1e-6

// CheckedOptimize is Optimize with every pass application sandwiched
// between semantic checks; see CheckedRun.
func CheckedOptimize(p *ir.Program, level Level) (*ir.Program, []check.Diagnostic, error) {
	return CheckedOptimizeCtx(context.Background(), p, level)
}

// CheckedOptimizeCtx is CheckedOptimize under a context: the per-pass
// differential interpretation polls the context, so a request deadline
// bounds even the checker's reference executions.  On expiry it returns
// an error wrapping ctx.Err().
func CheckedOptimizeCtx(ctx context.Context, p *ir.Program, level Level) (*ir.Program, []check.Diagnostic, error) {
	return CheckedOptimizeFor(ctx, p, level, GVNAWZ, PREDrechsler)
}

// CheckedOptimizeFor is CheckedOptimizeCtx with explicit GVN and PRE
// backends filling the pipeline's slots, so checked mode covers every
// backend with the same per-pass translation validation.
func CheckedOptimizeFor(ctx context.Context, p *ir.Program, level Level, gvn GVNBackend, pre PREBackend) (*ir.Program, []check.Diagnostic, error) {
	passes, err := passesForLevel(level, gvn, pre)
	if err != nil {
		return nil, nil, err
	}
	return CheckedRunCtx(ctx, p, passes, DefaultCheckConfig())
}

func passesForLevel(level Level, gvn GVNBackend, pre PREBackend) ([]Pass, error) {
	var passes []Pass
	for _, name := range PassNamesWith(level, gvn, pre) {
		p, err := PassByName(name)
		if err != nil {
			return nil, err
		}
		passes = append(passes, p)
	}
	return passes, nil
}

// CheckedRun applies a pass sequence to a copy of the program, checking
// each pass application three ways:
//
//  1. ir.Verify — the structural invariants (a hard error, as in
//     OptimizeFunc);
//  2. check.DefUse — every register use is dominated by a definition;
//  3. check.ValidatePass — translation validation by differential
//     interpretation, with a congruence fast path (when cfg.Validate).
//
// Diagnostics accumulate across passes, each tagged with the pass that
// produced it; the transformed program is returned alongside them so
// callers can decide whether error diagnostics are fatal.  The error
// return is reserved for unknown passes and structural verification
// failures.
func CheckedRun(p *ir.Program, passes []Pass, cfg CheckConfig) (*ir.Program, []check.Diagnostic, error) {
	return CheckedRunCtx(context.Background(), p, passes, cfg)
}

// CheckedRunCtx is CheckedRun under a context.  The context is checked
// between passes and threaded into the differential interpreter, so a
// deadline produces a clean timeout error (wrapping ctx.Err()) rather
// than an unbounded validation run or a spurious miscompile diagnostic.
func CheckedRunCtx(ctx context.Context, p *ir.Program, passes []Pass, cfg CheckConfig) (*ir.Program, []check.Diagnostic, error) {
	out := p.Clone()
	var diags []check.Diagnostic
	// One analysis cache per function, shared across all passes of the
	// run; checkedOnce[i] records that function i has passed DefUse at
	// least once, so passes that report no change can skip re-proving
	// the same property over identical code.
	caches := make([]*analysis.Cache, len(out.Funcs))
	for i, f := range out.Funcs {
		caches[i] = analysis.NewCache(f)
	}
	checkedOnce := make([]bool, len(out.Funcs))
	for _, pass := range passes {
		if err := ctx.Err(); err != nil {
			return nil, diags, fmt.Errorf("core: checked run cancelled before pass %s: %w", pass.Name, err)
		}
		var before *ir.Program
		if cfg.Validate {
			before = out.Clone()
		}
		anyChanged := false
		changedFn := make([]bool, len(out.Funcs))
		for i, f := range out.Funcs {
			pc := &PassContext{Ctx: ctx, Func: f, Analyses: caches[i]}
			changedFn[i] = pass.Run(pc)
			anyChanged = anyChanged || changedFn[i]
			if changedFn[i] {
				if err := ir.Verify(f); err != nil {
					return nil, diags, fmt.Errorf("after pass %s: %w", pass.Name, err)
				}
			}
		}
		for i, f := range out.Funcs {
			if checkedOnce[i] && !changedFn[i] {
				continue // unchanged since its last clean DefUse proof
			}
			fd := check.TagPass(check.DefUseWith(f, false, caches[i]), pass.Name)
			diags = append(diags, fd...)
			checkedOnce[i] = len(check.Errors(fd)) == 0
		}
		if cfg.Validate && anyChanged {
			opt := check.ValidateOptions{Ctx: ctx, MaxInputs: cfg.MaxInputs, MaxSteps: cfg.MaxSteps}
			if reassociating(pass.Name) {
				opt.FloatTol = reassocFloatTol
			}
			diags = append(diags, check.ValidatePass(before, out, pass.Name, opt)...)
			if err := ctx.Err(); err != nil {
				return nil, diags, fmt.Errorf("core: checked run cancelled validating pass %s: %w", pass.Name, err)
			}
		}
	}
	return out, diags, nil
}

// checkedOptimizeStrict runs CheckedOptimize and converts error
// diagnostics into a hard error; this is the EPRE_CHECK=1 path of
// Optimize.
func checkedOptimizeStrict(ctx context.Context, p *ir.Program, level Level, gvn GVNBackend, pre PREBackend) (*ir.Program, error) {
	out, diags, err := CheckedOptimizeFor(ctx, p, level, gvn, pre)
	if err != nil {
		return nil, err
	}
	if errs := check.Errors(diags); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, d := range errs {
			msgs[i] = d.String()
		}
		return nil, fmt.Errorf("core: checked optimize at %s: %s", level, strings.Join(msgs, "; "))
	}
	return out, nil
}
