package core_test

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/minift"
	"repro/internal/suite"
)

// TestCheckedOptimizeSuiteClean is the acceptance gate for the checker:
// every Table-1 level over the full suite corpus, with per-pass
// dataflow verification and translation validation enabled, must
// produce zero diagnostics.
func TestCheckedOptimizeSuiteClean(t *testing.T) {
	routines := suite.All()
	if testing.Short() {
		routines = routines[:6]
	}
	// MaxInputs 3 (the default) matters: the third, degenerate input
	// tuple is what once exposed NaN-sign sensitivity in the memory
	// comparison (decomp at reassociation; see interp.FloatVal).
	cfg := core.CheckConfig{Validate: true, MaxInputs: 3, MaxSteps: 200_000}
	for _, r := range routines {
		prog, err := r.Compile()
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		for _, level := range core.Levels {
			passes := make([]core.Pass, 0, 8)
			for _, name := range core.PassNames(level) {
				p, err := core.PassByName(name)
				if err != nil {
					t.Fatal(err)
				}
				passes = append(passes, p)
			}
			_, diags, err := core.CheckedRun(prog, passes, cfg)
			if err != nil {
				t.Errorf("%s at %s: %v", r.Name, level, err)
				continue
			}
			for _, d := range diags {
				t.Errorf("%s at %s: %s", r.Name, level, d)
			}
		}
	}
}

// TestCheckedRunCatchesMiscompilingPass: a deliberately broken peephole
// rule — folding add into sub — must be caught by the translation
// validator with a diagnostic naming the offending pass.
func TestCheckedRunCatchesMiscompilingPass(t *testing.T) {
	prog, err := minift.Compile(`
func main(a: int, b: int): int {
    var s: int = 0
    for i = 1 to a {
        s = s + b * i
    }
    return s
}
`)
	if err != nil {
		t.Fatal(err)
	}
	bad := core.Pass{Name: "bad-peephole", Run: func(pc *core.PassContext) bool {
		pc.Func.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == ir.OpAdd {
				in.Op = ir.OpSub
			}
		})
		pc.Func.MarkCodeMutated()
		return true
	}}
	_, diags, err := core.CheckedRun(prog, []core.Pass{bad}, core.DefaultCheckConfig())
	if err != nil {
		t.Fatal(err)
	}
	errs := check.Errors(diags)
	if len(errs) == 0 {
		t.Fatal("miscompiling pass not caught")
	}
	found := false
	for _, d := range errs {
		if d.Pass == "bad-peephole" && d.Analyzer == "validate" {
			found = true
		}
	}
	if !found {
		t.Errorf("no validate diagnostic names the offending pass: %v", errs)
	}
}

// TestCheckedRunCatchesUndefinedUse: a pass that deletes a definition
// but not its uses is caught by the dataflow verifier even without
// translation validation.
func TestCheckedRunCatchesUndefinedUse(t *testing.T) {
	prog, err := ir.ParseProgramString(`
program globalsize=0

func f(r1) {
b0:
    enter(r1)
    loadI 3 => r2
    add r1, r2 => r3
    ret r3
}
`)
	if err != nil {
		t.Fatal(err)
	}
	bad := core.Pass{Name: "bad-dce", Run: func(pc *core.PassContext) bool {
		pc.Func.Entry().RemoveAt(1) // drop "loadI 3 => r2", leaving r2 undefined
		return true
	}}
	_, diags, err := core.CheckedRun(prog, []core.Pass{bad}, core.CheckConfig{Validate: false})
	if err != nil {
		t.Fatal(err)
	}
	errs := check.Errors(diags)
	if len(errs) == 0 || errs[0].Analyzer != "defuse" || errs[0].Pass != "bad-dce" {
		t.Fatalf("want a defuse error naming bad-dce, got %v", diags)
	}
}

// TestOptimizeHonorsCheckEnv: with EPRE_CHECK=1, Optimize runs the
// checked pipeline — and still succeeds on correct code.
func TestOptimizeHonorsCheckEnv(t *testing.T) {
	t.Setenv(core.CheckEnv, "1")
	if !core.CheckEnabled() {
		t.Fatal("CheckEnabled should see the environment variable")
	}
	prog, err := minift.Compile(`
func main(n: int): int {
    var s: int = 0
    for i = 1 to n {
        s = s + i * i
    }
    return s
}
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range core.Levels {
		if _, err := core.Optimize(prog, level); err != nil {
			t.Errorf("checked Optimize at %s: %v", level, err)
		}
	}
}

// TestCheckedOptimizeStrictErrorMessage: the EPRE_CHECK failure path
// renders the diagnostics into the error.
func TestCheckedOptimizeStrictErrorMessage(t *testing.T) {
	_, diags, err := core.CheckedOptimize(&ir.Program{}, core.LevelBaseline)
	if err != nil || len(diags) != 0 {
		t.Fatalf("empty program should check cleanly: %v %v", diags, err)
	}
	if !strings.Contains(check.Diagnostic{Analyzer: "validate", Severity: check.SevError,
		Func: "f", Instr: -1, Pass: "pre", Msg: "boom"}.String(), "after pass pre") {
		t.Error("diagnostic rendering should include the pass name")
	}
}
