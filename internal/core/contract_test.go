package core_test

import (
	"context"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/suite"
)

func preserves(p core.Pass, what string) bool {
	for _, a := range p.Preserves {
		if a == what {
			return true
		}
	}
	return false
}

// TestPreservesContracts proves every pass's declared invalidation
// contract against the observed mutation generations, over the suite
// corpus in two pipeline states (raw front-end output and the
// reassociation level's result).  A pass declaring PreservesCFG must
// never move the CFG generation; one declaring PreservesLiveness must
// never move the code generation.  The inverse honesty property is
// checked for every pass: generations may only move when the pass
// reported a change, since an unreported mutation would let the
// pipeline skip verification over modified code.
func TestPreservesContracts(t *testing.T) {
	routines := suite.All()
	if testing.Short() {
		routines = routines[:6]
	}
	for _, r := range routines {
		raw, err := r.Compile()
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		opt, err := core.Optimize(raw, core.LevelReassoc)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		states := []struct {
			name string
			prog *ir.Program
		}{{"raw", raw}, {"optimized", opt}}
		for _, state := range states {
			for _, p := range core.AllPasses() {
				cp := state.prog.Clone()
				for _, f := range cp.Funcs {
					cfgBefore, codeBefore := f.CFGGeneration(), f.CodeGeneration()
					changed := p.Run(&core.PassContext{
						Ctx:      context.Background(),
						Func:     f,
						Analyses: analysis.NewCache(f),
					})
					cfgMoved := f.CFGGeneration() != cfgBefore
					codeMoved := f.CodeGeneration() != codeBefore
					if preserves(p, core.PreservesCFG) && cfgMoved {
						t.Errorf("%s/%s (%s): pass %s declares PreservesCFG but moved the CFG generation",
							r.Name, f.Name, state.name, p.Name)
					}
					if preserves(p, core.PreservesLiveness) && codeMoved {
						t.Errorf("%s/%s (%s): pass %s declares PreservesLiveness but moved the code generation",
							r.Name, f.Name, state.name, p.Name)
					}
					if !changed && (cfgMoved || codeMoved) {
						t.Errorf("%s/%s (%s): pass %s mutated (cfg %v, code %v) but reported no change",
							r.Name, f.Name, state.name, p.Name, cfgMoved, codeMoved)
					}
				}
			}
		}
	}
}
