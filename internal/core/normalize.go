// Package core assembles the paper's optimization pipelines.  It
// provides the pass abstraction, the four optimization levels of
// Table 1 (baseline / partial / reassociation / distribution), the
// §5.1 naming normalization, and helpers the tools, benchmarks and
// public API share.
package core

import (
	"repro/internal/ir"
)

// NormalizeStats reports the work of the naming normalization.
type NormalizeStats struct {
	CopiesInserted int
	UsesRewritten  int
}

// Changed reports whether the run modified the function.
func (s NormalizeStats) Changed() bool { return s.CopiesInserted+s.UsesRewritten > 0 }

// Normalize enforces the naming discipline PRE requires (paper §2.2 and
// §5.1): expression names — targets of non-copy computations — must
// not be live across basic-block boundaries, and operands of
// expressions should be variable names.  For every expression-name
// definition t the pass inserts "copy t => v" immediately after it and
// rewrites all other uses of t to v.  The paper obtains the same
// property from forward propagation and notes the copy-insertion
// alternative explicitly ("insert copies to newly created variable
// names and rewrite later references").  Coalescing later removes the
// copies that were not needed.
func Normalize(f *ir.Func) NormalizeStats {
	var st NormalizeStats

	// Identify expression-name registers: destinations of pure non-copy
	// computations and loads.  Copy/enter/call targets are variables.
	isExprDef := func(in *ir.Instr) bool {
		if in.Dst == ir.NoReg {
			return false
		}
		switch in.Op {
		case ir.OpCopy, ir.OpEnter, ir.OpCall, ir.OpPhi:
			return false
		}
		return in.Op.Pure() || in.Op.IsLoad()
	}

	// Phase 1: classify registers.  A register is an expression name
	// only when *every* definition of it is a computation; a register
	// that is ever a copy/call/enter target is already a variable
	// (e.g. a loop counter initialized by loadI and updated through a
	// copy).
	nr := f.NumRegs()
	exprOnly := make([]bool, nr)
	varTarget := make([]bool, nr)
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if isExprDef(in) {
			exprOnly[in.Dst] = true
			return
		}
		if in.Op == ir.OpEnter {
			for _, p := range in.Args {
				varTarget[p] = true
			}
			return
		}
		if in.Dst != ir.NoReg {
			varTarget[in.Dst] = true
		}
	})
	candidate := func(r ir.Reg) bool { return exprOnly[r] && !varTarget[r] }

	// Phase 2: rewrite the *cross-block* uses.  A use is local when a
	// definition of the register appears earlier in the same block;
	// local uses keep the expression name — that is what lets PRE hoist
	// chained expressions the way the paper's Figure 9 does.  Only
	// cross-block uses violate the §5.1 rule and move to the shadow
	// variable.
	varFor := make([]ir.Reg, nr)
	needShadow := make([]bool, nr)
	definedHere := make([]int, nr) // generation counter per block
	gen := 0
	for _, b := range f.Blocks {
		gen++
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op != ir.OpEnter {
				for ai, a := range in.Args {
					if !candidate(a) || definedHere[a] == gen {
						continue
					}
					if varFor[a] == ir.NoReg {
						varFor[a] = f.NewReg()
						needShadow[a] = true
					}
					in.Args[ai] = varFor[a]
					st.UsesRewritten++
				}
			}
			if in.Dst != ir.NoReg {
				definedHere[in.Dst] = gen
			}
		}
	}

	// Phase 3: insert the shadow copy after every definition of each
	// register that acquired cross-block uses.
	for _, b := range f.Blocks {
		rebuilt := make([]ir.InstrID, 0, len(b.Instrs))
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			rebuilt = append(rebuilt, inID)
			if in.Dst != ir.NoReg && needShadow[in.Dst] {
				rebuilt = append(rebuilt, f.NewCopy(varFor[in.Dst], in.Dst).ID())
				st.CopiesInserted++
			}
		}
		b.Instrs = rebuilt
	}
	if st.Changed() {
		// The rebuilt-slice writes bypass the Block helpers.
		f.MarkCodeMutated()
	}
	return st
}
