package core_test

import (
	"context"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minift"
	"repro/internal/pre"
)

// runPass applies one pass to one function with a fresh analysis cache.
func runPass(p core.Pass, f *ir.Func) {
	p.Run(&core.PassContext{Ctx: context.Background(), Func: f, Analyses: analysis.NewCache(f)})
}

// TestExpressionNameLiveAcrossBlock reproduces §5.1: an expression
// name (here the sqrt result r10) live across a basic-block boundary.
// "PRE will sometimes hoist an expression past a use of its name" in
// the classic formulation; our pipeline (normalize before PRE) must
// keep the program correct, with r20 receiving the OLD sqrt value even
// though r9 is redefined before a later recomputation point.
func TestExpressionNameLiveAcrossBlock(t *testing.T) {
	const src = `
func f(r1, r9) {
b0:
    enter(r1, r9)
    sqrt r9 => r10
    cbr r1 -> b1, b2
b1:
    loadF 1000.0 => r9
    sqrt r9 => r10
    jump -> b2
b2:
    copy r10 => r20
    ret r20
}
`
	f := ir.MustParseFunc(src)
	runIt := func(g *ir.Func, take int64) float64 {
		m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{g.Clone()}})
		v, err := m.Call("f", interp.IntVal(take), interp.FloatVal(16.0))
		if err != nil {
			t.Fatalf("%v\n%s", err, g)
		}
		return v.F
	}
	// Reference: through b1 → sqrt(1000); skipping b1 → sqrt(16)=4.
	if got := runIt(f, 0); got != 4.0 {
		t.Fatalf("premise: f(0)=%g, want 4", got)
	}
	for _, passes := range [][]string{
		{"normalize", "pre"},
		{"gvn", "normalize", "pre", "sccp", "peephole", "dce", "coalesce", "emptyblocks"},
	} {
		g := f.Clone()
		for _, name := range passes {
			p, err := core.PassByName(name)
			if err != nil {
				t.Fatal(err)
			}
			runPass(p, g)
			if err := ir.Verify(g); err != nil {
				t.Fatalf("after %s: %v", name, err)
			}
		}
		if got := runIt(g, 0); got != 4.0 {
			t.Errorf("passes %v broke the §5.1 case: f(0)=%g, want 4\n%s", passes, got, g)
		}
		if got := runIt(g, 1); got != runIt(f, 1) {
			t.Errorf("passes %v broke the b1 path", passes)
		}
	}
}

// TestNormalizeEnforcesRule checks that after Normalize, no
// expression-name register is live across a block boundary.
func TestNormalizeEnforcesRule(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    cbr r1 -> b1, b2
b1:
    mul r3, r3 => r4
    jump -> b3
b2:
    copy r3 => r4
    jump -> b3
b3:
    add r4, r3 => r5
    ret r5
}
`
	f := ir.MustParseFunc(src)
	want := func(g *ir.Func, a int64) int64 {
		m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{g.Clone()}})
		v, err := m.Call("f", interp.IntVal(a), interp.IntVal(3))
		if err != nil {
			t.Fatalf("%v\n%s", err, g)
		}
		return v.I
	}
	w0, w1 := want(f, 0), want(f, 1)
	st := core.Normalize(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if st.CopiesInserted == 0 {
		t.Errorf("nothing normalized: %+v", st)
	}
	if want(f, 0) != w0 || want(f, 1) != w1 {
		t.Error("Normalize changed semantics")
	}
	// The §5.1 rule: expression names (non-copy computation targets)
	// must not be live across block boundaries.
	live := dataflow.LiveAcrossBlocks(f)
	exprDst := map[ir.Reg]bool{}
	varDst := map[ir.Reg]bool{}
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		switch in.Op {
		case ir.OpCopy, ir.OpCall:
			varDst[in.Dst] = true
		case ir.OpEnter:
			for _, p := range in.Args {
				varDst[p] = true
			}
		default:
			if in.Dst != ir.NoReg {
				exprDst[in.Dst] = true
			}
		}
	})
	for r := range exprDst {
		if !varDst[r] && live.Has(int(r)) {
			t.Errorf("expression name %s live across a block boundary\n%s", r, f)
		}
	}
}

// TestReassocCanHideCSE documents the paper's §4.2 reassociation loss:
// the final arrangement of the running example recomputes r0+r1 in two
// differently-sorted contexts ("this sort of problem occurred quite
// often"), and the effect "is usually dominated by the improved motion
// of loop invariants".  We assert the overall pipeline still wins on
// the running example even though the preheader computes y+z twice in
// different groupings.
func TestReassocCanHideCSE(t *testing.T) {
	const src = `
func foo(y: int, z: int): int {
    var s: int = 0
    var x: int = y + z
    for i = x to 100 {
        s = 1 + s + x
    }
    return s
}
`
	prog, err := minift.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[core.Level]int64{}
	for _, level := range core.Levels {
		opt, err := core.Optimize(prog, level)
		if err != nil {
			t.Fatal(err)
		}
		m := interp.NewMachine(opt)
		if _, err := m.Call("foo", interp.IntVal(1), interp.IntVal(2)); err != nil {
			t.Fatal(err)
		}
		counts[level] = m.Steps
	}
	if counts[core.LevelReassoc] >= counts[core.LevelPartial] {
		t.Errorf("reassociation should still win overall: %v", counts)
	}
}

// TestMulShiftOrdering is §5.2 as a test: converting ×2 to a shift
// before reassociation must cost dynamic operations relative to
// converting after.
func TestMulShiftOrdering(t *testing.T) {
	const src = `
func driver(x: int, y: int, n: int): int {
    var s: int = 0
    for z = 1 to n {
        s = s + x * z * 2 * y
    }
    return s
}
`
	prog, err := minift.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(passes []string) int64 {
		t.Helper()
		cp := prog.Clone()
		for _, name := range passes {
			p, err := core.PassByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range cp.Funcs {
				runPass(p, f)
			}
		}
		m := interp.NewMachine(cp)
		v, err := m.Call("driver", interp.IntVal(3), interp.IntVal(7), interp.IntVal(50))
		if err != nil {
			t.Fatal(err)
		}
		if v.I != 3*2*7*50*51/2 {
			t.Fatalf("wrong result %d", v.I)
		}
		return m.Steps
	}
	after := measure([]string{"reassoc", "gvn", "normalize", "pre", "sccp", "peephole-shift", "dce", "coalesce", "emptyblocks", "dce"})
	before := measure([]string{"peephole-shift", "reassoc", "gvn", "normalize", "pre", "sccp", "peephole-shift", "dce", "coalesce", "emptyblocks", "dce"})
	if before <= after {
		t.Errorf("premature mul→shift should cost ops: before=%d after=%d", before, after)
	}
	t.Logf("§5.2: shift-before=%d, shift-after=%d (%.0f%% worse)",
		before, after, 100*float64(before-after)/float64(after))
}

// TestRunningExampleFigures walks the paper's Figures 3→10 pipeline
// asserting the headline structural facts at each stage.
func TestRunningExampleFigures(t *testing.T) {
	const src = `
func foo(y: int, z: int): int {
    var s: int = 0
    var x: int = y + z
    for i = x to 100 {
        s = 1 + s + x
    }
    return s
}
`
	prog, err := minift.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs[0]

	apply := func(names ...string) {
		t.Helper()
		for _, name := range names {
			p, err := core.PassByName(name)
			if err != nil {
				t.Fatal(err)
			}
			runPass(p, f)
			if err := ir.Verify(f); err != nil {
				t.Fatalf("after %s: %v", name, err)
			}
		}
	}
	countOp := func(op ir.Op) int {
		n := 0
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == op {
				n++
			}
		})
		return n
	}

	// Figures 4–7: reassociation (SSA+ranks+propagation+sorting).
	apply("reassoc")
	if countOp(ir.OpPhi) != 0 {
		t.Error("Figure 5: φ-nodes must be gone (copies inserted)")
	}

	// Figure 8: value numbering — renaming only, counts unchanged.
	before := f.InstrCount()
	apply("gvn")
	if c := f.InstrCount(); c != before {
		t.Errorf("Figure 8: GVN must not add or delete instructions (%d -> %d)", before, c)
	}
	// After renaming, lexically identical expressions share keys:
	// the two computations of 1+y (or its sorted form) collide.
	keys := map[dataflow.ExprKey]int{}
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if k, ok := dataflow.KeyOf(in); ok {
			keys[k]++
		}
	})
	dup := false
	for _, n := range keys {
		if n > 1 {
			dup = true
		}
	}
	if !dup {
		t.Errorf("Figure 8: no lexically identical expressions after GVN\n%s", f)
	}

	// Figure 9: PRE removes them and hoists the invariants.
	st := pre.RunToFixpoint(f)
	if st.Deleted == 0 && st.Rewritten == 0 {
		t.Errorf("Figure 9: PRE found nothing: %+v\n%s", st, f)
	}

	// Figure 10: cleanup; the loop body ends at 4 operations
	// (s-add, i-add, compare, branch).
	apply("sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce")
	m := interp.NewMachine(prog)
	if _, err := m.Call("foo", interp.IntVal(1), interp.IntVal(2)); err != nil {
		t.Fatal(err)
	}
	// 98 iterations; entry+preheader+exit is a small constant.
	perIter := (m.Steps - 12) / 98
	if perIter > 4 {
		t.Errorf("Figure 10: loop body has %d ops/iteration, want ≤4\n%s", perIter, f)
	}
}
