package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/minift"
)

// multiFuncSrc has several functions so function-level parallelism has
// something to fan out over.
const multiFuncSrc = `
func a(n: int): int {
    var s: int = 0
    for i = 1 to n {
        s = s + i * n
    }
    return s
}

func b(n: int): int {
    var s: int = 0
    for i = 1 to n {
        s = s + (i + n) * (i + n)
    }
    return s
}

func c(x: real, n: int): real {
    var s: real = 0.0
    for i = 1 to n {
        s = s + x * x
    }
    return s
}

func driver(n: int): int {
    return a(n) + b(n)
}
`

// TestOptimizeWithParallelIdentical: the parallel driver produces
// byte-identical output to the serial one at every level.
func TestOptimizeWithParallelIdentical(t *testing.T) {
	prog, err := minift.Compile(multiFuncSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range Levels {
		serial, err := OptimizeWith(prog, level, OptimizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := OptimizeWith(prog, level, OptimizeOptions{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if serial.String() != par.String() {
			t.Errorf("%s: parallel output differs from serial", level)
		}
	}
}

// TestOptimizeConcurrentDistinctPrograms is the shared-mutable-state
// audit: many goroutines optimizing distinct programs at once must not
// race (the race detector enforces this under `go test -race`, which
// make check runs).
func TestOptimizeConcurrentDistinctPrograms(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prog, err := minift.Compile(multiFuncSrc)
			if err != nil {
				t.Error(err)
				return
			}
			for _, level := range Levels {
				if _, err := Optimize(prog, level); err != nil {
					t.Errorf("%s: %v", level, err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestOptimizeWithCancelled: a dead context stops the optimization with
// an error wrapping the context error, serial and parallel alike.
func TestOptimizeWithCancelled(t *testing.T) {
	prog, err := minift.Compile(multiFuncSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := OptimizeWith(prog, LevelDist, OptimizeOptions{Ctx: ctx, Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: want context.Canceled, got %v", workers, err)
		}
	}
}

// TestOptimizeWithOnPass: the per-pass hook observes every pass
// application on every function, with sane durations.
func TestOptimizeWithOnPass(t *testing.T) {
	prog, err := minift.Compile(multiFuncSrc)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := map[string]int{}
	_, err = OptimizeWith(prog, LevelReassoc, OptimizeOptions{
		Workers: 4,
		OnPass: func(info PassInfo) {
			if info.Duration < 0 {
				t.Errorf("negative duration for %s on %s", info.Pass, info.Func)
			}
			mu.Lock()
			count[info.Pass]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	nfuncs := len(prog.Funcs)
	want := map[string]int{}
	for _, pass := range PassNames(LevelReassoc) {
		want[pass] += nfuncs // some passes (dce) run more than once per level
	}
	for pass, n := range want {
		if count[pass] != n {
			t.Errorf("pass %s observed %d times, want %d", pass, count[pass], n)
		}
	}
}

// TestCheckedRunCtxCancelled: the checked pipeline fails cleanly —
// error wrapping the context error, no spurious miscompile diagnostics
// — when its context dies.
func TestCheckedRunCtxCancelled(t *testing.T) {
	prog, err := minift.Compile(multiFuncSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	passes, err := passesForLevel(LevelDist, GVNAWZ, PREDrechsler)
	if err != nil {
		t.Fatal(err)
	}
	_, diags, err := CheckedRunCtx(ctx, prog, passes, DefaultCheckConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for _, d := range diags {
		t.Errorf("cancellation produced a diagnostic: %s", d)
	}
}

// TestCheckedRunCtxDeadline: a deadline long enough to start but too
// short to validate everything still yields a clean timeout, never a
// bogus validation failure.
func TestCheckedRunCtxDeadline(t *testing.T) {
	prog, err := minift.Compile(multiFuncSrc)
	if err != nil {
		t.Fatal(err)
	}
	passes, err := passesForLevel(LevelDist, GVNAWZ, PREDrechsler)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep a few tiny budgets; at least the smallest should expire
	// mid-run, and whenever one does the failure must be the clean
	// timeout shape.
	for _, budget := range []time.Duration{time.Microsecond, 50 * time.Microsecond, time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		_, diags, err := CheckedRunCtx(ctx, prog, passes, DefaultCheckConfig())
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("budget %v: non-timeout error: %v", budget, err)
		}
		if err != nil {
			for _, d := range diags {
				t.Errorf("budget %v: timeout produced diagnostic: %s", budget, d)
			}
		}
	}
}
