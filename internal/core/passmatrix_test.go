package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minift"
)

// matrixSrc mixes loops, branches, arrays, floats and calls so that
// every pass has something to chew on.
const matrixSrc = `
func leaf(x: real, k: int): real {
    if k % 2 == 0 {
        return x * 2.0
    }
    return x + 1.0
}

func main(n: int): real {
    var a: [16]real
    var t: real = 0.0
    for i = 1 to n {
        a[i] = real(i * i) / 4.0
    }
    for i = 1 to n {
        var u: real = a[i] * 3.0 + 1.0
        var v: real = a[i] * 3.0 - 1.0
        t = t + u * v + leaf(t, i)
    }
    return t
}
`

func runMatrix(t *testing.T, prog *ir.Program) float64 {
	t.Helper()
	m := interp.NewMachine(prog)
	v, err := m.Call("main", interp.IntVal(12))
	if err != nil {
		t.Fatalf("%v", err)
	}
	return v.F
}

// TestEveryPassPreservesSemantics applies each registered pass alone.
func TestEveryPassPreservesSemantics(t *testing.T) {
	base, err := minift.Compile(matrixSrc)
	if err != nil {
		t.Fatal(err)
	}
	want := runMatrix(t, base.Clone())
	for _, p := range core.AllPasses() {
		prog := base.Clone()
		for _, f := range prog.Funcs {
			runPass(p, f)
			if err := ir.Verify(f); err != nil {
				t.Errorf("pass %s: verify: %v", p.Name, err)
			}
		}
		if got := runMatrix(t, prog); got != want {
			t.Errorf("pass %s changed semantics: %.15g vs %.15g", p.Name, got, want)
		}
	}
}

// TestEveryPassPairPreservesSemantics applies every ordered pair of
// passes — the Unix-filter architecture promises passes compose in any
// order.  Floating results may differ once a reassociating pass ran,
// so pairs involving reassociation compare within a tolerance.
func TestEveryPassPairPreservesSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic in pass count")
	}
	base, err := minift.Compile(matrixSrc)
	if err != nil {
		t.Fatal(err)
	}
	want := runMatrix(t, base.Clone())
	passes := core.AllPasses()
	reassociating := map[string]bool{"reassoc": true, "reassoc-dist": true}
	for _, p1 := range passes {
		for _, p2 := range passes {
			prog := base.Clone()
			for _, f := range prog.Funcs {
				runPass(p1, f)
				runPass(p2, f)
				if err := ir.Verify(f); err != nil {
					t.Errorf("%s;%s: verify: %v", p1.Name, p2.Name, err)
				}
			}
			got := runMatrix(t, prog)
			exact := !reassociating[p1.Name] && !reassociating[p2.Name]
			if exact && got != want {
				t.Errorf("%s;%s changed semantics: %.15g vs %.15g", p1.Name, p2.Name, got, want)
			}
			if !exact {
				diff := got - want
				if diff < 0 {
					diff = -diff
				}
				if diff > 1e-6*abs(want) {
					t.Errorf("%s;%s drifted: %.15g vs %.15g", p1.Name, p2.Name, got, want)
				}
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
