package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
)

// PassStats aggregates every application of one pass across an
// optimization run: how often it ran, how often it reported a change,
// cumulative wall time, and how many analyses the shared cache had to
// build while it ran (cache misses — a pass served entirely from cache
// contributes zero).
type PassStats struct {
	Pass     string
	Applied  int
	Changed  int
	Duration time.Duration
	Builds   analysis.BuildCounts
}

// PassStatsCollector accumulates PassInfo observations; its Observe
// method is an OptimizeOptions.OnPass hook and is safe for the
// concurrent calls a parallel optimization produces.
type PassStatsCollector struct {
	mu     sync.Mutex
	order  []string
	byPass map[string]*PassStats
}

// NewPassStatsCollector returns an empty collector.
func NewPassStatsCollector() *PassStatsCollector {
	return &PassStatsCollector{byPass: make(map[string]*PassStats)}
}

// Observe folds one pass application into the totals.
func (c *PassStatsCollector) Observe(info PassInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.byPass[info.Pass]
	if !ok {
		st = &PassStats{Pass: info.Pass}
		c.byPass[info.Pass] = st
		c.order = append(c.order, info.Pass)
	}
	st.Applied++
	if info.Changed {
		st.Changed++
	}
	st.Duration += info.Duration
	st.Builds.RPO += info.Builds.RPO
	st.Builds.Dom += info.Builds.Dom
	st.Builds.Loops += info.Builds.Loops
	st.Builds.Liveness += info.Builds.Liveness
}

// Stats returns a snapshot of the per-pass totals in first-observed
// order (the pipeline's pass order for a serial run; ties are stable).
func (c *PassStatsCollector) Stats() []PassStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PassStats, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, *c.byPass[name])
	}
	return out
}

// TotalBuilds sums the analysis builds over every pass.
func (c *PassStatsCollector) TotalBuilds() analysis.BuildCounts {
	var t analysis.BuildCounts
	for _, st := range c.Stats() {
		t.RPO += st.Builds.RPO
		t.Dom += st.Builds.Dom
		t.Loops += st.Builds.Loops
		t.Liveness += st.Builds.Liveness
	}
	return t
}

// Write renders the totals as an aligned table, sorted by cumulative
// time (the expensive passes first), with a totals line.
func (c *PassStatsCollector) Write(w io.Writer) {
	stats := c.Stats()
	sort.SliceStable(stats, func(i, j int) bool { return stats[i].Duration > stats[j].Duration })
	fmt.Fprintf(w, "%-16s %8s %8s %12s %6s %6s %6s %6s\n",
		"pass", "applied", "changed", "time", "rpo", "dom", "loops", "live")
	fmt.Fprintln(w, strings.Repeat("-", 75))
	var total PassStats
	for _, st := range stats {
		fmt.Fprintf(w, "%-16s %8d %8d %12s %6d %6d %6d %6d\n",
			st.Pass, st.Applied, st.Changed, st.Duration.Round(time.Microsecond),
			st.Builds.RPO, st.Builds.Dom, st.Builds.Loops, st.Builds.Liveness)
		total.Applied += st.Applied
		total.Changed += st.Changed
		total.Duration += st.Duration
		total.Builds.RPO += st.Builds.RPO
		total.Builds.Dom += st.Builds.Dom
		total.Builds.Loops += st.Builds.Loops
		total.Builds.Liveness += st.Builds.Liveness
	}
	fmt.Fprintln(w, strings.Repeat("-", 75))
	fmt.Fprintf(w, "%-16s %8d %8d %12s %6d %6d %6d %6d\n",
		"total", total.Applied, total.Changed, total.Duration.Round(time.Microsecond),
		total.Builds.RPO, total.Builds.Dom, total.Builds.Loops, total.Builds.Liveness)
}
