package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/check"
	"repro/internal/coalesce"
	"repro/internal/cse"
	"repro/internal/dce"
	"repro/internal/gvn"
	"repro/internal/ir"
	"repro/internal/lcm"
	"repro/internal/lospre"
	"repro/internal/lvn"
	"repro/internal/peephole"
	"repro/internal/pre"
	"repro/internal/reassoc"
	"repro/internal/sccp"
	"repro/internal/strength"
)

// Level names one of the paper's Table 1 optimization levels.
type Level string

// The four levels of Table 1, in order of increasing transformation.
const (
	// LevelNone performs no optimization at all (not in Table 1; the
	// raw front-end output, useful for debugging and ablations).
	LevelNone Level = "none"
	// LevelBaseline is "a sequence of global constant propagation,
	// global peephole optimization, global dead code elimination,
	// coalescing, and a final pass to eliminate empty basic blocks".
	LevelBaseline Level = "baseline"
	// LevelPartial adds PRE before the baseline sequence.
	LevelPartial Level = "partial"
	// LevelReassoc runs global reassociation (without distribution)
	// and global value numbering before PRE and the baseline.
	LevelReassoc Level = "reassociation"
	// LevelDist is LevelReassoc with distribution of multiplication
	// over addition enabled.
	LevelDist Level = "distribution"
)

// Levels lists the Table 1 levels in presentation order.
var Levels = []Level{LevelBaseline, LevelPartial, LevelReassoc, LevelDist}

// GVNBackend selects the analysis behind the pipeline's value-numbering
// slot.  Both backends share the renaming transformation (classes →
// representative registers); they differ only in which congruences the
// analysis proves.
type GVNBackend string

const (
	// GVNAWZ is the paper's backend: Alpern–Wegman–Zadeck partition
	// refinement, "the simplest variation" (§4).  The zero value of
	// GVNBackend behaves as GVNAWZ everywhere.
	GVNAWZ GVNBackend = "awz"
	// GVNPrecise is the sparse iterative value-expression analysis with
	// value-φ folding (fold/compose rules); it proves strictly more
	// congruences — every AWZ congruence plus those that flow through
	// φs (φ(x,x) ≡ x, φ(x+1,y+1) ≡ φ(x,y)+1) and commutations.
	GVNPrecise GVNBackend = "precise"
)

// GVNBackends lists the selectable backends in presentation order.
var GVNBackends = []GVNBackend{GVNAWZ, GVNPrecise}

// ParseGVNBackend maps a -gvn flag value to a backend; the empty string
// selects the default (AWZ).
func ParseGVNBackend(s string) (GVNBackend, error) {
	switch s {
	case "", "awz":
		return GVNAWZ, nil
	case "precise":
		return GVNPrecise, nil
	}
	return "", fmt.Errorf("core: unknown GVN backend %q (want awz or precise)", s)
}

// orDefault folds the zero value into the default backend.
func (b GVNBackend) orDefault() GVNBackend {
	if b == "" {
		return GVNAWZ
	}
	return b
}

// PassName is the pipeline pass implementing this backend.
func (b GVNBackend) PassName() string {
	if b.orDefault() == GVNPrecise {
		return "gvn-precise"
	}
	return "gvn"
}

// PREBackend selects the algorithm behind the pipeline's redundancy-
// elimination slot.  All three backends eliminate partial redundancies
// by inserting computations and rewriting occurrences into copies; they
// differ in placement strategy and safety envelope.
type PREBackend string

const (
	// PREDrechsler is the paper's backend: the Drechsler–Stadel
	// edge-placement variant of Morel–Renvoise PRE (internal/pre),
	// with the Mode A naming discipline.  The zero value of PREBackend
	// behaves as PREDrechsler everywhere.
	PREDrechsler PREBackend = "drechsler"
	// PRELCM is Knoop–Rüthing–Steffen lazy code motion
	// (internal/lcm): computationally optimal like Drechsler–Stadel
	// but additionally lifetime-optimal — insertions are postponed to
	// the latest down-safe points, minimizing temp live ranges.
	PRELCM PREBackend = "lcm"
	// PRELospre is speculative PRE as a per-expression minimum cut
	// (internal/lospre): it may insert on paths that never computed
	// the expression when the frequency model says that is cheaper,
	// restricted to operations that cannot trap.
	PRELospre PREBackend = "lospre"
)

// PREBackends lists the selectable backends in presentation order.
var PREBackends = []PREBackend{PREDrechsler, PRELCM, PRELospre}

// ParsePREBackend maps a -pre flag value to a backend; the empty string
// selects the default (Drechsler–Stadel).
func ParsePREBackend(s string) (PREBackend, error) {
	switch s {
	case "", "drechsler":
		return PREDrechsler, nil
	case "lcm":
		return PRELCM, nil
	case "lospre":
		return PRELospre, nil
	}
	return "", fmt.Errorf("core: unknown PRE backend %q (want drechsler, lcm or lospre)", s)
}

// orDefault folds the zero value into the default backend.
func (b PREBackend) orDefault() PREBackend {
	if b == "" {
		return PREDrechsler
	}
	return b
}

// PassName is the pipeline pass implementing this backend.
func (b PREBackend) PassName() string {
	switch b.orDefault() {
	case PRELCM:
		return "pre-lcm"
	case PRELospre:
		return "pre-lospre"
	}
	return "pre"
}

// ParseLevel maps a level name (or its common abbreviations) to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "none", "raw":
		return LevelNone, nil
	case "baseline", "base":
		return LevelBaseline, nil
	case "partial", "pre":
		return LevelPartial, nil
	case "reassociation", "reassoc":
		return LevelReassoc, nil
	case "distribution", "dist":
		return LevelDist, nil
	}
	return "", fmt.Errorf("core: unknown optimization level %q", s)
}

// PassContext carries everything a pass application needs: the function
// under optimization, a cancellation context, and the function's shared
// analysis cache.  Passes pull dominators, liveness, loops and reverse
// postorder from Analyses instead of rebuilding them, and the cache
// invalidates itself from the function's mutation generations.
type PassContext struct {
	Ctx      context.Context
	Func     *ir.Func
	Analyses *analysis.Cache
}

// Analysis names usable in Pass.Preserves.
const (
	// PreservesCFG declares that the pass never changes the block/edge
	// structure, so reverse postorder, dominators and loops stay valid.
	PreservesCFG = "cfg"
	// PreservesLiveness declares that the pass never changes
	// instructions at all, so even liveness stays valid.
	PreservesLiveness = "liveness"
)

// Pass is one optimizer phase: a named transformation over a function,
// mirroring the paper's structure of the optimizer as "a sequence of
// passes, where each pass is a Unix filter" (§4).
//
// Run reports whether it changed the function; false lets the pipeline
// skip post-pass verification and lets fixpoint drivers terminate.
// Reporting true conservatively is always sound.  Preserves is the
// pass's declared worst-case invalidation contract — the analyses it
// never invalidates on any input.  It is folded into PipelineVersion
// (a contract change must invalidate content-addressed result caches)
// and enforced by tests against the observed mutation generations; the
// pipeline itself trusts the generations, not the declaration.
type Pass struct {
	Name      string
	Preserves []string
	Run       func(*PassContext) bool
}

var (
	passIndexOnce sync.Once
	passIndex     map[string]Pass
)

// PassByName returns a single pass for the filter tool; see AllPasses.
func PassByName(name string) (Pass, error) {
	passIndexOnce.Do(func() {
		passIndex = make(map[string]Pass)
		for _, p := range AllPasses() {
			passIndex[p.Name] = p
		}
	})
	p, ok := passIndex[name]
	if !ok {
		return Pass{}, fmt.Errorf("core: unknown pass %q", name)
	}
	return p, nil
}

// AllPasses enumerates every individually runnable pass.
func AllPasses() []Pass {
	// Shared Preserves values.  A pass listing PreservesCFG keeps the
	// block/edge structure intact on every input; one listing both
	// never mutates at all.
	cfgOnly := []string{PreservesCFG}
	readOnly := []string{PreservesCFG, PreservesLiveness}
	return []Pass{
		{"sccp", nil, func(pc *PassContext) bool {
			return sccp.RunWith(pc.Func, pc.Analyses).Changed()
		}},
		{"peephole", cfgOnly, func(pc *PassContext) bool {
			return peephole.Run(pc.Func, peephole.Options{}).Changed()
		}},
		{"peephole-shift", cfgOnly, func(pc *PassContext) bool {
			return peephole.Run(pc.Func, peephole.Options{MulToShift: true}).Changed()
		}},
		{"dce", cfgOnly, func(pc *PassContext) bool {
			return dce.RunWith(pc.Func, pc.Analyses).Removed > 0
		}},
		{"coalesce", cfgOnly, func(pc *PassContext) bool {
			st := coalesce.RunWith(pc.Func, pc.Analyses)
			return st.Coalesced+st.SelfCopy > 0
		}},
		{"emptyblocks", nil, func(pc *PassContext) bool {
			n := pc.Analyses.RemoveUnreachable()
			n += cfg.RemoveEmptyBlocks(pc.Func)
			n += cfg.MergeStraightLine(pc.Func)
			return n > 0
		}},
		{"normalize", cfgOnly, func(pc *PassContext) bool {
			return Normalize(pc.Func).Changed()
		}},
		{"pre", nil, func(pc *PassContext) bool {
			return pre.RunToFixpointWith(pc.Func, pc.Analyses).Mutated()
		}},
		{"pre-lcm", nil, func(pc *PassContext) bool {
			return lcm.RunToFixpointWith(pc.Func, pc.Analyses).Mutated()
		}},
		{"pre-lospre", nil, func(pc *PassContext) bool {
			return lospre.RunToFixpointWith(pc.Func, pc.Analyses).Mutated()
		}},
		// gvn, reassoc and strength rebuild the function through an
		// SSA round-trip, which renames registers wholesale even when
		// no optimization fires; they always report changed.
		{"gvn", nil, func(pc *PassContext) bool {
			gvn.RunWith(pc.Func, pc.Analyses)
			return true
		}},
		{"gvn-precise", nil, func(pc *PassContext) bool {
			gvn.RunPreciseWith(pc.Func, pc.Analyses)
			return true
		}},
		{"reassoc", nil, func(pc *PassContext) bool {
			reassoc.RunWith(pc.Func, reassoc.Options{AllowFloat: true}, pc.Analyses)
			return true
		}},
		{"reassoc-dist", nil, func(pc *PassContext) bool {
			reassoc.RunWith(pc.Func, reassoc.Options{Distribute: true, AllowFloat: true}, pc.Analyses)
			return true
		}},
		{"cse-dom", nil, func(pc *PassContext) bool {
			return cse.RunDominatorWith(pc.Func, pc.Analyses).Changed()
		}},
		{"cse-avail", nil, func(pc *PassContext) bool {
			return cse.RunAvailWith(pc.Func, pc.Analyses).Changed()
		}},
		// Extensions: the two passes the paper reports missing (§4.1)
		// and expects to compose with reassociation (§5.2).
		{"lvn", cfgOnly, func(pc *PassContext) bool {
			return lvn.Run(pc.Func).Changed()
		}},
		{"strength", nil, func(pc *PassContext) bool {
			strength.RunWith(pc.Func, pc.Analyses)
			return true
		}},
		// Diagnostic pass: transforms nothing, runs the semantic
		// checkers and reports findings on stderr.  In a filter
		// pipeline it acts as an assertion stage (cmd/ilocfilter gives
		// it a failing exit status on errors).
		{"check", readOnly, func(pc *PassContext) bool {
			check.Report(os.Stderr, checkFunc(pc))
			return false
		}},
	}
}

// checkFunc runs the semantic checkers for the check pass through the
// shared analysis cache.
func checkFunc(pc *PassContext) []check.Diagnostic {
	return check.FuncWith(pc.Func, check.Options{}, pc.Analyses)
}

// baselineTail is the paper's baseline sequence, run at the end of
// every level.
func baselineTail() []string {
	return []string{"sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"}
}

// PassNames returns the pass sequence for a level with the default
// backends (AWZ value numbering, Drechsler–Stadel PRE).
func PassNames(level Level) []string { return PassNamesWith(level, GVNAWZ, PREDrechsler) }

// PassNamesWith returns the pass sequence for a level with the given
// backends filling the pipeline's GVN and PRE slots.  Levels without a
// slot are identical across that slot's backends: baseline has neither,
// partial has only the PRE slot.
func PassNamesWith(level Level, gvn GVNBackend, pre PREBackend) []string {
	g := gvn.PassName()
	p := pre.PassName()
	switch level {
	case LevelNone:
		return nil
	case LevelBaseline:
		return baselineTail()
	case LevelPartial:
		return append([]string{"normalize", p}, baselineTail()...)
	case LevelReassoc:
		return append([]string{"reassoc", g, "normalize", p}, baselineTail()...)
	case LevelDist:
		return append([]string{"reassoc-dist", g, "normalize", p}, baselineTail()...)
	}
	return nil
}

// PipelineVersion is a fingerprint of the optimizer's pass pipelines:
// a hash over every level's pass sequence and the full pass inventory
// with each pass's preservation contract.  Content-addressed caches
// fold it into their keys so a cached result is invalidated
// automatically whenever a pass is added, removed, resequenced, or its
// invalidation contract changes.  It is deterministic across processes
// and runs.
func PipelineVersion() string { return PipelineVersionFor(GVNAWZ, PREDrechsler) }

// PipelineVersionFor is the pipeline fingerprint with the given GVN and
// PRE backends selected.  Each backend changes some level's pass
// sequence (and both are hashed explicitly besides), so distinct
// backend combinations always fingerprint differently and a
// content-addressed cache can never serve one combination's result for
// another's request.
func PipelineVersionFor(gvn GVNBackend, pre PREBackend) string {
	return pipelineVersion(AllPasses(), gvn, pre)
}

// pipelineVersion computes the fingerprint over a given pass inventory;
// split out so tests can prove the hash is sensitive to contract edits.
func pipelineVersion(passes []Pass, gvn GVNBackend, pre PREBackend) string {
	h := sha256.New()
	io.WriteString(h, "gvn-backend:")
	io.WriteString(h, string(gvn.orDefault()))
	io.WriteString(h, "\n")
	io.WriteString(h, "pre-backend:")
	io.WriteString(h, string(pre.orDefault()))
	io.WriteString(h, "\n")
	for _, l := range append([]Level{LevelNone}, Levels...) {
		io.WriteString(h, string(l))
		for _, name := range PassNamesWith(l, gvn, pre) {
			io.WriteString(h, ":")
			io.WriteString(h, name)
		}
		io.WriteString(h, "\n")
	}
	for _, p := range passes {
		io.WriteString(h, p.Name)
		for _, a := range p.Preserves {
			io.WriteString(h, " preserves:")
			io.WriteString(h, a)
		}
		io.WriteString(h, "\n")
	}
	return "epre-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// PassInfo describes one pass application, delivered to
// OptimizeOptions.OnPass.
type PassInfo struct {
	Func     string
	Pass     string
	Duration time.Duration
	// Changed is the pass's own report of whether it modified the
	// function.
	Changed bool
	// Builds counts the analyses the shared cache had to (re)build
	// during this pass — cache misses, not total queries.
	Builds analysis.BuildCounts
}

// OptimizeOptions tune OptimizeWith beyond the level itself.  The zero
// value reproduces plain Optimize: background context, serial, no
// instrumentation, shared analyses, single pipeline sweep.
type OptimizeOptions struct {
	// Ctx, when non-nil, is checked between passes and plumbed into
	// any checked-mode differential interpretation; optimization stops
	// with an error wrapping ctx.Err() once it is done.
	Ctx context.Context
	// Workers bounds function-level parallelism: up to Workers
	// functions are optimized concurrently, each running the full pass
	// sequence on its own function.  Values <= 1 mean serial; values
	// above GOMAXPROCS are clamped to it.  The result is byte-identical
	// to the serial run — functions are optimized independently in both
	// cases and the output order is the program's function order.
	Workers int
	// OnPass, when non-nil, observes every pass application.  It may
	// be called from multiple goroutines concurrently when Workers > 1
	// and must be safe for that.
	OnPass func(PassInfo)
	// FreshAnalyses gives every pass a brand-new analysis cache,
	// reproducing the pre-cache behavior where each pass rebuilt its
	// own dominators and liveness.  Used by benchmarks to measure the
	// cache's effect; the optimized output is identical either way.
	FreshAnalyses bool
	// TailFixpoint re-runs the baseline tail after the level's normal
	// sequence until no tail pass reports a change (bounded by
	// MaxTailRounds).  The default single sweep matches the paper.
	TailFixpoint bool
	// GVN selects the value-numbering backend filling the pipeline's
	// GVN slot at the reassociation levels.  The zero value is GVNAWZ,
	// the paper's configuration.
	GVN GVNBackend
	// PRE selects the redundancy-elimination backend filling the
	// pipeline's PRE slot at the partial level and above.  The zero
	// value is PREDrechsler, the paper's configuration.
	PRE PREBackend
}

// MaxTailRounds bounds OptimizeOptions.TailFixpoint iteration.
const MaxTailRounds = 8

func (o OptimizeOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o OptimizeOptions) workers(nfuncs int) int {
	w := o.Workers
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w > nfuncs {
		w = nfuncs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// OptimizeFunc applies a level's pass sequence to one function.
func OptimizeFunc(f *ir.Func, level Level) error {
	return optimizeFunc(context.Background(), f, level, OptimizeOptions{})
}

func optimizeFunc(ctx context.Context, f *ir.Func, level Level, opts OptimizeOptions) error {
	pc := &PassContext{Ctx: ctx, Func: f, Analyses: analysis.NewCache(f)}
	runPass := func(name string) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("before pass %s: %w", name, err)
		}
		p, err := PassByName(name)
		if err != nil {
			return false, err
		}
		if opts.FreshAnalyses {
			pc.Analyses = analysis.NewCache(f)
		}
		before := pc.Analyses.Counts()
		start := time.Now()
		changed := p.Run(pc)
		if opts.OnPass != nil {
			opts.OnPass(PassInfo{
				Func:     f.Name,
				Pass:     name,
				Duration: time.Since(start),
				Changed:  changed,
				Builds:   pc.Analyses.Counts().Sub(before),
			})
		}
		// A pass that reports no change cannot have invalidated the
		// verified invariants; skip re-verification.
		if changed {
			if err := ir.Verify(f); err != nil {
				return changed, fmt.Errorf("after pass %s: %w", name, err)
			}
		}
		return changed, nil
	}

	for _, name := range PassNamesWith(level, opts.GVN, opts.PRE) {
		if _, err := runPass(name); err != nil {
			return err
		}
	}
	if opts.TailFixpoint && level != LevelNone {
		for round := 0; round < MaxTailRounds; round++ {
			anyChanged := false
			for _, name := range baselineTail() {
				changed, err := runPass(name)
				if err != nil {
					return err
				}
				anyChanged = anyChanged || changed
			}
			if !anyChanged {
				break
			}
		}
	}
	return nil
}

// Optimize applies a level to every function of a program, returning a
// new program (the input is not modified).  With EPRE_CHECK=1 in the
// environment every pass application is additionally checked by the
// internal/check analyzers (see CheckedOptimize) and any error
// diagnostic fails the optimization.
//
// Optimize (and OptimizeWith) is safe for concurrent use on distinct
// programs: the passes keep all scratch state per invocation and the
// input program is cloned before any transformation.
func Optimize(p *ir.Program, level Level) (*ir.Program, error) {
	return OptimizeWith(p, level, OptimizeOptions{})
}

// OptimizeWith is Optimize with a context, optional function-level
// parallelism and per-pass instrumentation; see OptimizeOptions.
func OptimizeWith(p *ir.Program, level Level, opts OptimizeOptions) (*ir.Program, error) {
	ctx := opts.ctx()
	if CheckEnabled() {
		// Checked mode validates whole-program snapshots around every
		// pass, so it stays serial at pass granularity.
		return checkedOptimizeStrict(ctx, p, level, opts.GVN, opts.PRE)
	}
	out := p.Clone()
	workers := opts.workers(len(out.Funcs))
	if workers <= 1 {
		for _, f := range out.Funcs {
			if err := optimizeFunc(ctx, f, level, opts); err != nil {
				return nil, fmt.Errorf("%s: %w", f.Name, err)
			}
		}
		return out, nil
	}

	// Fixed worker pool: exactly `workers` goroutines drain a function
	// channel, so a 10,000-function program never spawns 10,000
	// goroutines, and dispatch stops at the first error instead of
	// feeding work that will be thrown away.
	var (
		wg       sync.WaitGroup
		work     = make(chan *ir.Func)
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range work {
				if failed() {
					continue // drain remaining work without running it
				}
				if err := optimizeFunc(ctx, f, level, opts); err != nil {
					fail(fmt.Errorf("%s: %w", f.Name, err))
				}
			}
		}()
	}
	for _, f := range out.Funcs {
		if failed() {
			break
		}
		work <- f
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
