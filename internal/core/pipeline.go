package core

import (
	"fmt"
	"os"

	"repro/internal/cfg"
	"repro/internal/check"
	"repro/internal/coalesce"
	"repro/internal/cse"
	"repro/internal/dce"
	"repro/internal/gvn"
	"repro/internal/ir"
	"repro/internal/lvn"
	"repro/internal/peephole"
	"repro/internal/pre"
	"repro/internal/reassoc"
	"repro/internal/sccp"
	"repro/internal/strength"
)

// Level names one of the paper's Table 1 optimization levels.
type Level string

// The four levels of Table 1, in order of increasing transformation.
const (
	// LevelNone performs no optimization at all (not in Table 1; the
	// raw front-end output, useful for debugging and ablations).
	LevelNone Level = "none"
	// LevelBaseline is "a sequence of global constant propagation,
	// global peephole optimization, global dead code elimination,
	// coalescing, and a final pass to eliminate empty basic blocks".
	LevelBaseline Level = "baseline"
	// LevelPartial adds PRE before the baseline sequence.
	LevelPartial Level = "partial"
	// LevelReassoc runs global reassociation (without distribution)
	// and global value numbering before PRE and the baseline.
	LevelReassoc Level = "reassociation"
	// LevelDist is LevelReassoc with distribution of multiplication
	// over addition enabled.
	LevelDist Level = "distribution"
)

// Levels lists the Table 1 levels in presentation order.
var Levels = []Level{LevelBaseline, LevelPartial, LevelReassoc, LevelDist}

// ParseLevel maps a level name (or its common abbreviations) to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "none", "raw":
		return LevelNone, nil
	case "baseline", "base":
		return LevelBaseline, nil
	case "partial", "pre":
		return LevelPartial, nil
	case "reassociation", "reassoc":
		return LevelReassoc, nil
	case "distribution", "dist":
		return LevelDist, nil
	}
	return "", fmt.Errorf("core: unknown optimization level %q", s)
}

// Pass is one optimizer phase: a named transformation over a function,
// mirroring the paper's structure of the optimizer as "a sequence of
// passes, where each pass is a Unix filter" (§4).
type Pass struct {
	Name string
	Run  func(*ir.Func)
}

// PassByName returns a single pass for the filter tool; see Passes.
func PassByName(name string) (Pass, error) {
	for _, p := range AllPasses() {
		if p.Name == name {
			return p, nil
		}
	}
	return Pass{}, fmt.Errorf("core: unknown pass %q", name)
}

// AllPasses enumerates every individually runnable pass.
func AllPasses() []Pass {
	return []Pass{
		{"sccp", func(f *ir.Func) { sccp.Run(f) }},
		{"peephole", func(f *ir.Func) { peephole.Run(f, peephole.Options{}) }},
		{"peephole-shift", func(f *ir.Func) { peephole.Run(f, peephole.Options{MulToShift: true}) }},
		{"dce", func(f *ir.Func) { dce.Run(f) }},
		{"coalesce", func(f *ir.Func) { coalesce.Run(f) }},
		{"emptyblocks", func(f *ir.Func) {
			cfg.RemoveUnreachable(f)
			cfg.RemoveEmptyBlocks(f)
			cfg.MergeStraightLine(f)
		}},
		{"normalize", func(f *ir.Func) { Normalize(f) }},
		{"pre", func(f *ir.Func) { pre.RunToFixpoint(f) }},
		{"gvn", func(f *ir.Func) { gvn.Run(f) }},
		{"reassoc", func(f *ir.Func) { reassoc.Run(f, reassoc.Options{AllowFloat: true}) }},
		{"reassoc-dist", func(f *ir.Func) { reassoc.Run(f, reassoc.Options{Distribute: true, AllowFloat: true}) }},
		{"cse-dom", func(f *ir.Func) { cse.RunDominator(f) }},
		{"cse-avail", func(f *ir.Func) { cse.RunAvail(f) }},
		// Extensions: the two passes the paper reports missing (§4.1)
		// and expects to compose with reassociation (§5.2).
		{"lvn", func(f *ir.Func) { lvn.Run(f) }},
		{"strength", func(f *ir.Func) { strength.Run(f) }},
		// Diagnostic pass: transforms nothing, runs the semantic
		// checkers and reports findings on stderr.  In a filter
		// pipeline it acts as an assertion stage (cmd/ilocfilter gives
		// it a failing exit status on errors).
		{"check", func(f *ir.Func) { check.Report(os.Stderr, check.Func(f, check.Options{})) }},
	}
}

// baselineTail is the paper's baseline sequence, run at the end of
// every level.
func baselineTail() []string {
	return []string{"sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"}
}

// PassNames returns the pass sequence for a level.
func PassNames(level Level) []string {
	switch level {
	case LevelNone:
		return nil
	case LevelBaseline:
		return baselineTail()
	case LevelPartial:
		return append([]string{"normalize", "pre"}, baselineTail()...)
	case LevelReassoc:
		return append([]string{"reassoc", "gvn", "normalize", "pre"}, baselineTail()...)
	case LevelDist:
		return append([]string{"reassoc-dist", "gvn", "normalize", "pre"}, baselineTail()...)
	}
	return nil
}

// OptimizeFunc applies a level's pass sequence to one function.
func OptimizeFunc(f *ir.Func, level Level) error {
	for _, name := range PassNames(level) {
		p, err := PassByName(name)
		if err != nil {
			return err
		}
		p.Run(f)
		if err := ir.Verify(f); err != nil {
			return fmt.Errorf("after pass %s: %w", name, err)
		}
	}
	return nil
}

// Optimize applies a level to every function of a program, returning a
// new program (the input is not modified).  With EPRE_CHECK=1 in the
// environment every pass application is additionally checked by the
// internal/check analyzers (see CheckedOptimize) and any error
// diagnostic fails the optimization.
func Optimize(p *ir.Program, level Level) (*ir.Program, error) {
	if CheckEnabled() {
		return checkedOptimizeStrict(p, level)
	}
	out := p.Clone()
	for _, f := range out.Funcs {
		if err := OptimizeFunc(f, level); err != nil {
			return nil, fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	return out, nil
}
