package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/check"
	"repro/internal/coalesce"
	"repro/internal/cse"
	"repro/internal/dce"
	"repro/internal/gvn"
	"repro/internal/ir"
	"repro/internal/lvn"
	"repro/internal/peephole"
	"repro/internal/pre"
	"repro/internal/reassoc"
	"repro/internal/sccp"
	"repro/internal/strength"
)

// Level names one of the paper's Table 1 optimization levels.
type Level string

// The four levels of Table 1, in order of increasing transformation.
const (
	// LevelNone performs no optimization at all (not in Table 1; the
	// raw front-end output, useful for debugging and ablations).
	LevelNone Level = "none"
	// LevelBaseline is "a sequence of global constant propagation,
	// global peephole optimization, global dead code elimination,
	// coalescing, and a final pass to eliminate empty basic blocks".
	LevelBaseline Level = "baseline"
	// LevelPartial adds PRE before the baseline sequence.
	LevelPartial Level = "partial"
	// LevelReassoc runs global reassociation (without distribution)
	// and global value numbering before PRE and the baseline.
	LevelReassoc Level = "reassociation"
	// LevelDist is LevelReassoc with distribution of multiplication
	// over addition enabled.
	LevelDist Level = "distribution"
)

// Levels lists the Table 1 levels in presentation order.
var Levels = []Level{LevelBaseline, LevelPartial, LevelReassoc, LevelDist}

// ParseLevel maps a level name (or its common abbreviations) to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "none", "raw":
		return LevelNone, nil
	case "baseline", "base":
		return LevelBaseline, nil
	case "partial", "pre":
		return LevelPartial, nil
	case "reassociation", "reassoc":
		return LevelReassoc, nil
	case "distribution", "dist":
		return LevelDist, nil
	}
	return "", fmt.Errorf("core: unknown optimization level %q", s)
}

// Pass is one optimizer phase: a named transformation over a function,
// mirroring the paper's structure of the optimizer as "a sequence of
// passes, where each pass is a Unix filter" (§4).
type Pass struct {
	Name string
	Run  func(*ir.Func)
}

// PassByName returns a single pass for the filter tool; see Passes.
func PassByName(name string) (Pass, error) {
	for _, p := range AllPasses() {
		if p.Name == name {
			return p, nil
		}
	}
	return Pass{}, fmt.Errorf("core: unknown pass %q", name)
}

// AllPasses enumerates every individually runnable pass.
func AllPasses() []Pass {
	return []Pass{
		{"sccp", func(f *ir.Func) { sccp.Run(f) }},
		{"peephole", func(f *ir.Func) { peephole.Run(f, peephole.Options{}) }},
		{"peephole-shift", func(f *ir.Func) { peephole.Run(f, peephole.Options{MulToShift: true}) }},
		{"dce", func(f *ir.Func) { dce.Run(f) }},
		{"coalesce", func(f *ir.Func) { coalesce.Run(f) }},
		{"emptyblocks", func(f *ir.Func) {
			cfg.RemoveUnreachable(f)
			cfg.RemoveEmptyBlocks(f)
			cfg.MergeStraightLine(f)
		}},
		{"normalize", func(f *ir.Func) { Normalize(f) }},
		{"pre", func(f *ir.Func) { pre.RunToFixpoint(f) }},
		{"gvn", func(f *ir.Func) { gvn.Run(f) }},
		{"reassoc", func(f *ir.Func) { reassoc.Run(f, reassoc.Options{AllowFloat: true}) }},
		{"reassoc-dist", func(f *ir.Func) { reassoc.Run(f, reassoc.Options{Distribute: true, AllowFloat: true}) }},
		{"cse-dom", func(f *ir.Func) { cse.RunDominator(f) }},
		{"cse-avail", func(f *ir.Func) { cse.RunAvail(f) }},
		// Extensions: the two passes the paper reports missing (§4.1)
		// and expects to compose with reassociation (§5.2).
		{"lvn", func(f *ir.Func) { lvn.Run(f) }},
		{"strength", func(f *ir.Func) { strength.Run(f) }},
		// Diagnostic pass: transforms nothing, runs the semantic
		// checkers and reports findings on stderr.  In a filter
		// pipeline it acts as an assertion stage (cmd/ilocfilter gives
		// it a failing exit status on errors).
		{"check", func(f *ir.Func) { check.Report(os.Stderr, check.Func(f, check.Options{})) }},
	}
}

// baselineTail is the paper's baseline sequence, run at the end of
// every level.
func baselineTail() []string {
	return []string{"sccp", "peephole", "dce", "coalesce", "emptyblocks", "dce"}
}

// PassNames returns the pass sequence for a level.
func PassNames(level Level) []string {
	switch level {
	case LevelNone:
		return nil
	case LevelBaseline:
		return baselineTail()
	case LevelPartial:
		return append([]string{"normalize", "pre"}, baselineTail()...)
	case LevelReassoc:
		return append([]string{"reassoc", "gvn", "normalize", "pre"}, baselineTail()...)
	case LevelDist:
		return append([]string{"reassoc-dist", "gvn", "normalize", "pre"}, baselineTail()...)
	}
	return nil
}

// PipelineVersion is a fingerprint of the optimizer's pass pipelines:
// a hash over every level's pass sequence and the full pass inventory.
// Content-addressed caches fold it into their keys so a cached result
// is invalidated automatically whenever a pass is added, removed or
// resequenced.  It is deterministic across processes and runs.
func PipelineVersion() string {
	h := sha256.New()
	for _, l := range append([]Level{LevelNone}, Levels...) {
		io.WriteString(h, string(l))
		for _, name := range PassNames(l) {
			io.WriteString(h, ":")
			io.WriteString(h, name)
		}
		io.WriteString(h, "\n")
	}
	for _, p := range AllPasses() {
		io.WriteString(h, p.Name)
		io.WriteString(h, "\n")
	}
	return "epre-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// OptimizeOptions tune OptimizeWith beyond the level itself.  The zero
// value reproduces plain Optimize: background context, serial, no
// instrumentation.
type OptimizeOptions struct {
	// Ctx, when non-nil, is checked between passes and plumbed into
	// any checked-mode differential interpretation; optimization stops
	// with an error wrapping ctx.Err() once it is done.
	Ctx context.Context
	// Workers bounds function-level parallelism: up to Workers
	// functions are optimized concurrently, each running the full pass
	// sequence on its own function.  Values <= 1 mean serial; values
	// above GOMAXPROCS are clamped to it.  The result is byte-identical
	// to the serial run — functions are optimized independently in both
	// cases and the output order is the program's function order.
	Workers int
	// OnPass, when non-nil, observes every pass application with its
	// wall-clock duration.  It may be called from multiple goroutines
	// concurrently when Workers > 1 and must be safe for that.
	OnPass func(fn, pass string, d time.Duration)
}

func (o OptimizeOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o OptimizeOptions) workers(nfuncs int) int {
	w := o.Workers
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w > nfuncs {
		w = nfuncs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// OptimizeFunc applies a level's pass sequence to one function.
func OptimizeFunc(f *ir.Func, level Level) error {
	return optimizeFunc(context.Background(), f, level, nil)
}

func optimizeFunc(ctx context.Context, f *ir.Func, level Level, onPass func(fn, pass string, d time.Duration)) error {
	for _, name := range PassNames(level) {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("before pass %s: %w", name, err)
		}
		p, err := PassByName(name)
		if err != nil {
			return err
		}
		start := time.Now()
		p.Run(f)
		if onPass != nil {
			onPass(f.Name, name, time.Since(start))
		}
		if err := ir.Verify(f); err != nil {
			return fmt.Errorf("after pass %s: %w", name, err)
		}
	}
	return nil
}

// Optimize applies a level to every function of a program, returning a
// new program (the input is not modified).  With EPRE_CHECK=1 in the
// environment every pass application is additionally checked by the
// internal/check analyzers (see CheckedOptimize) and any error
// diagnostic fails the optimization.
//
// Optimize (and OptimizeWith) is safe for concurrent use on distinct
// programs: the passes keep all scratch state per invocation and the
// input program is cloned before any transformation.
func Optimize(p *ir.Program, level Level) (*ir.Program, error) {
	return OptimizeWith(p, level, OptimizeOptions{})
}

// OptimizeWith is Optimize with a context, optional function-level
// parallelism and per-pass instrumentation; see OptimizeOptions.
func OptimizeWith(p *ir.Program, level Level, opts OptimizeOptions) (*ir.Program, error) {
	ctx := opts.ctx()
	if CheckEnabled() {
		// Checked mode validates whole-program snapshots around every
		// pass, so it stays serial at pass granularity.
		return checkedOptimizeStrict(ctx, p, level)
	}
	out := p.Clone()
	workers := opts.workers(len(out.Funcs))
	if workers <= 1 {
		for _, f := range out.Funcs {
			if err := optimizeFunc(ctx, f, level, opts.OnPass); err != nil {
				return nil, fmt.Errorf("%s: %w", f.Name, err)
			}
		}
		return out, nil
	}

	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
		mu       sync.Mutex
		firstErr error
	)
	for _, f := range out.Funcs {
		wg.Add(1)
		go func(f *ir.Func) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			stop := firstErr != nil
			mu.Unlock()
			if stop {
				return
			}
			if err := optimizeFunc(ctx, f, level, opts.OnPass); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", f.Name, err)
				}
				mu.Unlock()
			}
		}(f)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
