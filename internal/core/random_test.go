package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/minift"
)

// progGen generates random but well-formed Mini-Fortran programs:
// integer and floating scalars, a small array, nested counted loops,
// if/else diamonds, and expressions built from the associative and
// non-associative operators the optimizer reorders.  Division and
// modulus are guarded so no input traps.  Every optimization level
// must agree with the unoptimized interpretation.
type progGen struct {
	rng   *rand.Rand
	sb    strings.Builder
	depth int
}

func (g *progGen) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(20)-10)
		case 1:
			return "a"
		case 2:
			return "b"
		default:
			return "i" // innermost loop variable(s) always exist in loops; guarded below
		}
	}
	l := g.intExpr(depth - 1)
	r := g.intExpr(depth - 1)
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r)
	case 2:
		return fmt.Sprintf("(%s * %s)", l, r)
	case 3:
		return fmt.Sprintf("(%s / (1 + abs(%s) %% 9))", l, r)
	case 4:
		return fmt.Sprintf("(%s %% (1 + abs(%s) %% 9))", l, r)
	default:
		return fmt.Sprintf("min(%s, %s)", l, r)
	}
}

func (g *progGen) realExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d.%d", g.rng.Intn(10), g.rng.Intn(100))
		case 1:
			return "u"
		default:
			return "v"
		}
	}
	l := g.realExpr(depth - 1)
	r := g.realExpr(depth - 1)
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r)
	default:
		return fmt.Sprintf("(%s * 0.5 + %s * 0.25)", l, r)
	}
}

func (g *progGen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.intExpr(1), ops[g.rng.Intn(len(ops))], g.intExpr(1))
}

func (g *progGen) stmt(indent string, inLoop bool) {
	switch g.rng.Intn(7) {
	case 0, 1: // int assignment
		v := []string{"a", "b"}[g.rng.Intn(2)]
		fmt.Fprintf(&g.sb, "%s%s = %s\n", indent, v, g.intExpr(2))
	case 2: // real assignment
		v := []string{"u", "v"}[g.rng.Intn(2)]
		fmt.Fprintf(&g.sb, "%s%s = %s\n", indent, v, g.realExpr(2))
	case 3: // array write + read
		fmt.Fprintf(&g.sb, "%sw[1 + abs(%s) %% 16] = %s\n", indent, g.intExpr(1), g.intExpr(2))
		fmt.Fprintf(&g.sb, "%sa = a + w[1 + abs(%s) %% 16]\n", indent, g.intExpr(1))
	case 4: // if/else
		fmt.Fprintf(&g.sb, "%sif %s {\n", indent, g.cond())
		g.stmt(indent+"    ", inLoop)
		fmt.Fprintf(&g.sb, "%s} else {\n", indent)
		g.stmt(indent+"    ", inLoop)
		fmt.Fprintf(&g.sb, "%s}\n", indent)
	case 5: // nested loop (bounded depth)
		if g.depth >= 2 {
			fmt.Fprintf(&g.sb, "%sb = b + %s\n", indent, g.intExpr(2))
			return
		}
		g.depth++
		v := fmt.Sprintf("i%d", g.depth)
		fmt.Fprintf(&g.sb, "%sfor %s = 1 to %d {\n", indent, v, 2+g.rng.Intn(5))
		n := 1 + g.rng.Intn(3)
		for k := 0; k < n; k++ {
			g.stmt(indent+"    ", true)
		}
		fmt.Fprintf(&g.sb, "%s}\n", indent)
		g.depth--
	default:
		fmt.Fprintf(&g.sb, "%sa = a + i * 3 - b\n", indent)
	}
}

func (g *progGen) generate() string {
	g.sb.Reset()
	g.sb.WriteString("func main(a0: int, b0: int): real {\n")
	g.sb.WriteString("    var a: int = a0\n")
	g.sb.WriteString("    var b: int = b0\n")
	g.sb.WriteString("    var u: real = 1.5\n")
	g.sb.WriteString("    var v: real = 0.25\n")
	g.sb.WriteString("    var w: [16]int\n")
	g.sb.WriteString("    var i: int = 1\n")
	g.sb.WriteString("    for i = 1 to " + fmt.Sprintf("%d", 3+g.rng.Intn(6)) + " {\n")
	n := 2 + g.rng.Intn(5)
	for k := 0; k < n; k++ {
		g.stmt("        ", true)
	}
	g.sb.WriteString("    }\n")
	g.sb.WriteString("    return real(a) + real(b) * 0.001 + u + v * 0.01\n")
	g.sb.WriteString("}\n")
	return g.sb.String()
}

// TestRandomProgramsAllLevelsAgree is the end-to-end soundness net:
// random structured programs, every optimization level, results
// compared to the unoptimized interpretation.  Integer state is exact;
// floating results may differ by reassociation, so the comparison uses
// a relative tolerance.
func TestRandomProgramsAllLevelsAgree(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < trials; trial++ {
		g := &progGen{rng: rng}
		src := g.generate()
		prog, err := minift.Compile(src)
		if err != nil {
			t.Fatalf("trial %d: generated program does not compile: %v\n%s", trial, err, src)
		}
		args := []interp.Value{
			interp.IntVal(int64(rng.Intn(21) - 10)),
			interp.IntVal(int64(rng.Intn(21) - 10)),
		}
		base := interp.NewMachine(prog)
		want, err := base.Call("main", args...)
		if err != nil {
			t.Fatalf("trial %d: unoptimized run failed: %v\n%s", trial, err, src)
		}
		for _, level := range core.Levels {
			opt, err := core.Optimize(prog, level)
			if err != nil {
				t.Fatalf("trial %d at %s: %v\n%s", trial, level, err, src)
			}
			m := interp.NewMachine(opt)
			got, err := m.Call("main", args...)
			if err != nil {
				t.Fatalf("trial %d at %s: run failed: %v\n%s\n%s", trial, level, err, src, opt.Funcs[0])
			}
			diff := math.Abs(got.F - want.F)
			scale := math.Max(math.Abs(want.F), 1)
			if diff > 1e-9*scale {
				t.Fatalf("trial %d at %s: main%v = %.15g, want %.15g\nsource:\n%s",
					trial, level, args, got.F, want.F, src)
			}
			if m.Steps > base.Steps {
				t.Errorf("trial %d at %s: optimization lengthened execution %d -> %d\n%s",
					trial, level, base.Steps, m.Steps, src)
			}
		}
	}
}
