package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
)

// figure3 is the paper's running example (Figure 2/3): the FORTRAN
// routine foo(y,z) { s=0; x=y+z; DO i=x,100 { s=1+s+x }; return s }
// translated naively to ILOC, *not* conforming to the naming
// discipline — exactly the translation the paper starts from.
const figure3 = `
func foo(r1, r2) {
b0:
    enter(r1, r2)
    loadI 0 => r3
    add r1, r2 => r4
    copy r4 => r5
    loadI 100 => r6
    cmpGT r5, r6 => r7
    cbr r7 -> b3, b1
b1:
    loadI 1 => r8
    add r8, r3 => r9
    add r9, r4 => r10
    copy r10 => r3
    loadI 1 => r11
    add r5, r11 => r12
    copy r12 => r5
    loadI 100 => r13
    cmpLE r5, r13 => r14
    cbr r14 -> b1, b2
b2:
    jump -> b3
b3:
    ret r3
}
`

// fooReference computes what foo must return.
func fooReference(y, z int64) int64 {
	s := int64(0)
	x := y + z
	for i := x; i <= 100; i++ {
		s = 1 + s + x
	}
	return s
}

func runFoo(t *testing.T, f *ir.Func, y, z int64) (int64, int64) {
	t.Helper()
	prog := &ir.Program{Funcs: []*ir.Func{f}}
	m := interp.NewMachine(prog)
	v, err := m.Call("foo", interp.IntVal(y), interp.IntVal(z))
	if err != nil {
		t.Fatalf("interp: %v\n%s", err, f)
	}
	if v.Float {
		t.Fatalf("foo returned a float")
	}
	return v.I, m.Steps
}

// TestRunningExampleSemantics checks that every optimization level
// preserves the running example's semantics over a grid of inputs.
func TestRunningExampleSemantics(t *testing.T) {
	inputs := [][2]int64{{1, 2}, {0, 0}, {50, 50}, {100, 1}, {-10, 5}, {99, 1}, {101, 0}, {-200, 100}}
	for _, level := range append([]core.Level{core.LevelNone}, core.Levels...) {
		f := ir.MustParseFunc(figure3)
		if err := core.OptimizeFunc(f, level); err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		if err := ir.Verify(f); err != nil {
			t.Fatalf("%s: verify: %v", level, err)
		}
		for _, in := range inputs {
			got, _ := runFoo(t, f, in[0], in[1])
			want := fooReference(in[0], in[1])
			if got != want {
				t.Errorf("%s: foo(%d,%d) = %d, want %d\n%s", level, in[0], in[1], got, want, f)
			}
		}
	}
}

// TestRunningExampleImproves checks the paper's qualitative claims on
// the running example: PRE improves on the baseline, and
// reassociation+GVN improve on PRE alone ("the sequence of
// transformations reduced the length of the loop by 1 operation
// without increasing the length of any path", §3.2).
func TestRunningExampleImproves(t *testing.T) {
	counts := map[core.Level]int64{}
	for _, level := range core.Levels {
		f := ir.MustParseFunc(figure3)
		if err := core.OptimizeFunc(f, level); err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		_, steps := runFoo(t, f, 1, 2) // x=3: 98 iterations
		counts[level] = steps
	}
	t.Logf("dynamic counts: %+v", counts)
	if counts[core.LevelPartial] > counts[core.LevelBaseline] {
		t.Errorf("partial (%d) should not exceed baseline (%d)",
			counts[core.LevelPartial], counts[core.LevelBaseline])
	}
	if counts[core.LevelReassoc] > counts[core.LevelPartial] {
		t.Errorf("reassociation (%d) should not exceed partial (%d)",
			counts[core.LevelReassoc], counts[core.LevelPartial])
	}
	if counts[core.LevelPartial] >= counts[core.LevelBaseline] {
		t.Errorf("PRE found nothing: partial %d vs baseline %d",
			counts[core.LevelPartial], counts[core.LevelBaseline])
	}
}
