package core

import (
	"strings"
	"testing"
)

// TestPipelineVersionStable: the fingerprint is deterministic across
// calls and carries the expected shape.
func TestPipelineVersionStable(t *testing.T) {
	v1, v2 := PipelineVersion(), PipelineVersion()
	if v1 != v2 {
		t.Fatalf("PipelineVersion not deterministic: %q vs %q", v1, v2)
	}
	if !strings.HasPrefix(v1, "epre-") || len(v1) != len("epre-")+16 {
		t.Fatalf("unexpected version shape: %q", v1)
	}
}

// TestPipelineVersionSensitivity: the fingerprint must move when a pass
// is renamed, removed, or — crucially for the result caches — when its
// preservation contract changes without any other edit.
func TestPipelineVersionSensitivity(t *testing.T) {
	base := pipelineVersion(AllPasses(), GVNAWZ, PREDrechsler)

	renamed := AllPasses()
	renamed[0].Name = renamed[0].Name + "-v2"
	if pipelineVersion(renamed, GVNAWZ, PREDrechsler) == base {
		t.Error("renaming a pass did not change the version")
	}

	removed := AllPasses()[1:]
	if pipelineVersion(removed, GVNAWZ, PREDrechsler) == base {
		t.Error("removing a pass did not change the version")
	}

	// Flip the Preserves contract of the first pass that has one, and
	// grant one to the first pass that has none.
	contract := AllPasses()
	flipped := false
	for i := range contract {
		if len(contract[i].Preserves) > 0 {
			contract[i].Preserves = nil
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no pass declares a Preserves contract")
	}
	if pipelineVersion(contract, GVNAWZ, PREDrechsler) == base {
		t.Error("clearing a Preserves contract did not change the version")
	}

	granted := AllPasses()
	for i := range granted {
		if len(granted[i].Preserves) == 0 {
			granted[i].Preserves = []string{PreservesCFG}
			break
		}
	}
	if pipelineVersion(granted, GVNAWZ, PREDrechsler) == base {
		t.Error("granting a Preserves contract did not change the version")
	}
}

// TestPipelineVersionGVNBackend: selecting a different GVN backend must
// move the fingerprint, so a content-addressed result cache (the serve
// cache folds the version into its keys) can never return a stale
// cross-backend result.  The zero value must fingerprint exactly as the
// explicit default.
func TestPipelineVersionGVNBackend(t *testing.T) {
	awz := PipelineVersionFor(GVNAWZ, PREDrechsler)
	precise := PipelineVersionFor(GVNPrecise, PREDrechsler)
	if awz == precise {
		t.Fatalf("AWZ and precise backends share a pipeline version: %q", awz)
	}
	if def := PipelineVersionFor("", ""); def != awz {
		t.Errorf("zero-value backend version %q differs from explicit awz %q", def, awz)
	}
	if PipelineVersion() != awz {
		t.Errorf("PipelineVersion() does not default to the AWZ backend")
	}
	for _, b := range GVNBackends {
		v := PipelineVersionFor(b, PREDrechsler)
		if !strings.HasPrefix(v, "epre-") || len(v) != len("epre-")+16 {
			t.Errorf("backend %s: unexpected version shape %q", b, v)
		}
	}
}

// TestPassNamesWithBackend: the precise backend swaps only the GVN slot
// of the reassociation levels; every other level is identical.
func TestPassNamesWithBackend(t *testing.T) {
	for _, l := range append([]Level{LevelNone}, Levels...) {
		a := PassNamesWith(l, GVNAWZ, PREDrechsler)
		p := PassNamesWith(l, GVNPrecise, PREDrechsler)
		if len(a) != len(p) {
			t.Fatalf("%s: pass count differs across backends: %v vs %v", l, a, p)
		}
		diff := 0
		for i := range a {
			if a[i] != p[i] {
				diff++
				if a[i] != "gvn" || p[i] != "gvn-precise" {
					t.Errorf("%s: unexpected substitution %s -> %s", l, a[i], p[i])
				}
			}
		}
		hasGVN := l == LevelReassoc || l == LevelDist
		if hasGVN && diff != 1 || !hasGVN && diff != 0 {
			t.Errorf("%s: %d slots differ across backends (%v vs %v)", l, diff, a, p)
		}
	}
}

// TestPipelineVersionPREBackend mirrors the GVN-backend test for the
// redundancy-elimination slot: each PRE backend must fingerprint
// differently (pairwise, and across GVN backends), and the zero value
// must fingerprint exactly as the explicit default.
func TestPipelineVersionPREBackend(t *testing.T) {
	seen := map[string]string{}
	for _, g := range GVNBackends {
		for _, p := range PREBackends {
			v := PipelineVersionFor(g, p)
			if !strings.HasPrefix(v, "epre-") || len(v) != len("epre-")+16 {
				t.Errorf("%s/%s: unexpected version shape %q", g, p, v)
			}
			if prev, dup := seen[v]; dup {
				t.Errorf("backend pairs %s and %s/%s share version %q", prev, g, p, v)
			}
			seen[v] = string(g) + "/" + string(p)
		}
	}
	def := PipelineVersionFor(GVNAWZ, PREDrechsler)
	if v := PipelineVersionFor(GVNAWZ, ""); v != def {
		t.Errorf("zero-value PRE backend version %q differs from explicit drechsler %q", v, def)
	}
	if PipelineVersion() != def {
		t.Errorf("PipelineVersion() does not default to the drechsler backend")
	}
}

// TestPassNamesWithPREBackend: a non-default PRE backend swaps only the
// PRE slot of the partial level and above; baseline and none are
// identical across backends.
func TestPassNamesWithPREBackend(t *testing.T) {
	for _, pb := range []PREBackend{PRELCM, PRELospre} {
		for _, l := range append([]Level{LevelNone}, Levels...) {
			a := PassNamesWith(l, GVNAWZ, PREDrechsler)
			p := PassNamesWith(l, GVNAWZ, pb)
			if len(a) != len(p) {
				t.Fatalf("%s/%s: pass count differs across backends: %v vs %v", l, pb, a, p)
			}
			diff := 0
			for i := range a {
				if a[i] != p[i] {
					diff++
					if a[i] != "pre" || p[i] != pb.PassName() {
						t.Errorf("%s/%s: unexpected substitution %s -> %s", l, pb, a[i], p[i])
					}
				}
			}
			hasPRE := l == LevelPartial || l == LevelReassoc || l == LevelDist
			if hasPRE && diff != 1 || !hasPRE && diff != 0 {
				t.Errorf("%s/%s: %d slots differ across backends (%v vs %v)", l, pb, diff, a, p)
			}
		}
	}
}

// TestParsePREBackend covers the flag-value mapping, including the
// default and the error message naming the valid options.
func TestParsePREBackend(t *testing.T) {
	ok := []struct {
		in   string
		want PREBackend
	}{
		{"", PREDrechsler},
		{"drechsler", PREDrechsler},
		{"lcm", PRELCM},
		{"lospre", PRELospre},
	}
	for _, c := range ok {
		got, err := ParsePREBackend(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePREBackend(%q) = %v, %v; want %v, nil", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"morel", "LCM", "pre", "drechsler "} {
		if _, err := ParsePREBackend(bad); err == nil {
			t.Errorf("ParsePREBackend(%q) succeeded, want error", bad)
		} else {
			for _, name := range []string{"drechsler", "lcm", "lospre"} {
				if !strings.Contains(err.Error(), name) {
					t.Errorf("ParsePREBackend(%q) error %q does not name %s", bad, err, name)
				}
			}
		}
	}
	// Every backend's pass name must resolve to a registered pass.
	for _, b := range PREBackends {
		if _, err := PassByName(b.PassName()); err != nil {
			t.Errorf("backend %s: %v", b, err)
		}
	}
}
