package core

import (
	"strings"
	"testing"
)

// TestPipelineVersionStable: the fingerprint is deterministic across
// calls and carries the expected shape.
func TestPipelineVersionStable(t *testing.T) {
	v1, v2 := PipelineVersion(), PipelineVersion()
	if v1 != v2 {
		t.Fatalf("PipelineVersion not deterministic: %q vs %q", v1, v2)
	}
	if !strings.HasPrefix(v1, "epre-") || len(v1) != len("epre-")+16 {
		t.Fatalf("unexpected version shape: %q", v1)
	}
}

// TestPipelineVersionSensitivity: the fingerprint must move when a pass
// is renamed, removed, or — crucially for the result caches — when its
// preservation contract changes without any other edit.
func TestPipelineVersionSensitivity(t *testing.T) {
	base := pipelineVersion(AllPasses(), GVNAWZ)

	renamed := AllPasses()
	renamed[0].Name = renamed[0].Name + "-v2"
	if pipelineVersion(renamed, GVNAWZ) == base {
		t.Error("renaming a pass did not change the version")
	}

	removed := AllPasses()[1:]
	if pipelineVersion(removed, GVNAWZ) == base {
		t.Error("removing a pass did not change the version")
	}

	// Flip the Preserves contract of the first pass that has one, and
	// grant one to the first pass that has none.
	contract := AllPasses()
	flipped := false
	for i := range contract {
		if len(contract[i].Preserves) > 0 {
			contract[i].Preserves = nil
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no pass declares a Preserves contract")
	}
	if pipelineVersion(contract, GVNAWZ) == base {
		t.Error("clearing a Preserves contract did not change the version")
	}

	granted := AllPasses()
	for i := range granted {
		if len(granted[i].Preserves) == 0 {
			granted[i].Preserves = []string{PreservesCFG}
			break
		}
	}
	if pipelineVersion(granted, GVNAWZ) == base {
		t.Error("granting a Preserves contract did not change the version")
	}
}

// TestPipelineVersionGVNBackend: selecting a different GVN backend must
// move the fingerprint, so a content-addressed result cache (the serve
// cache folds the version into its keys) can never return a stale
// cross-backend result.  The zero value must fingerprint exactly as the
// explicit default.
func TestPipelineVersionGVNBackend(t *testing.T) {
	awz := PipelineVersionFor(GVNAWZ)
	precise := PipelineVersionFor(GVNPrecise)
	if awz == precise {
		t.Fatalf("AWZ and precise backends share a pipeline version: %q", awz)
	}
	if def := PipelineVersionFor(""); def != awz {
		t.Errorf("zero-value backend version %q differs from explicit awz %q", def, awz)
	}
	if PipelineVersion() != awz {
		t.Errorf("PipelineVersion() does not default to the AWZ backend")
	}
	for _, b := range GVNBackends {
		v := PipelineVersionFor(b)
		if !strings.HasPrefix(v, "epre-") || len(v) != len("epre-")+16 {
			t.Errorf("backend %s: unexpected version shape %q", b, v)
		}
	}
}

// TestPassNamesWithBackend: the precise backend swaps only the GVN slot
// of the reassociation levels; every other level is identical.
func TestPassNamesWithBackend(t *testing.T) {
	for _, l := range append([]Level{LevelNone}, Levels...) {
		a := PassNamesWith(l, GVNAWZ)
		p := PassNamesWith(l, GVNPrecise)
		if len(a) != len(p) {
			t.Fatalf("%s: pass count differs across backends: %v vs %v", l, a, p)
		}
		diff := 0
		for i := range a {
			if a[i] != p[i] {
				diff++
				if a[i] != "gvn" || p[i] != "gvn-precise" {
					t.Errorf("%s: unexpected substitution %s -> %s", l, a[i], p[i])
				}
			}
		}
		hasGVN := l == LevelReassoc || l == LevelDist
		if hasGVN && diff != 1 || !hasGVN && diff != 0 {
			t.Errorf("%s: %d slots differ across backends (%v vs %v)", l, diff, a, p)
		}
	}
}
