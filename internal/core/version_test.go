package core

import (
	"strings"
	"testing"
)

// TestPipelineVersionStable: the fingerprint is deterministic across
// calls and carries the expected shape.
func TestPipelineVersionStable(t *testing.T) {
	v1, v2 := PipelineVersion(), PipelineVersion()
	if v1 != v2 {
		t.Fatalf("PipelineVersion not deterministic: %q vs %q", v1, v2)
	}
	if !strings.HasPrefix(v1, "epre-") || len(v1) != len("epre-")+16 {
		t.Fatalf("unexpected version shape: %q", v1)
	}
}

// TestPipelineVersionSensitivity: the fingerprint must move when a pass
// is renamed, removed, or — crucially for the result caches — when its
// preservation contract changes without any other edit.
func TestPipelineVersionSensitivity(t *testing.T) {
	base := pipelineVersion(AllPasses())

	renamed := AllPasses()
	renamed[0].Name = renamed[0].Name + "-v2"
	if pipelineVersion(renamed) == base {
		t.Error("renaming a pass did not change the version")
	}

	removed := AllPasses()[1:]
	if pipelineVersion(removed) == base {
		t.Error("removing a pass did not change the version")
	}

	// Flip the Preserves contract of the first pass that has one, and
	// grant one to the first pass that has none.
	contract := AllPasses()
	flipped := false
	for i := range contract {
		if len(contract[i].Preserves) > 0 {
			contract[i].Preserves = nil
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no pass declares a Preserves contract")
	}
	if pipelineVersion(contract) == base {
		t.Error("clearing a Preserves contract did not change the version")
	}

	granted := AllPasses()
	for i := range granted {
		if len(granted[i].Preserves) == 0 {
			granted[i].Preserves = []string{PreservesCFG}
			break
		}
	}
	if pipelineVersion(granted) == base {
		t.Error("granting a Preserves contract did not change the version")
	}
}
