// Package cse implements the two weaker redundancy-elimination schemes
// of the paper's §5.3, for comparison against PRE:
//
//  1. Dominator-based removal (Alpern–Wegman–Zadeck): "If a value x is
//     computed at two points, p and q, and p dominates q, then the
//     computation at q is redundant and may be deleted."
//  2. Classic global common-subexpression elimination over AVAIL sets:
//     "If x is available on every path reaching p, then any
//     computation of x at p is redundant and may be deleted."
//
// These methods form a hierarchy: dominator-CSE removes a subset of
// what AVAIL-CSE removes, which removes a subset of what PRE removes
// (PRE also converts partial redundancies).  The §5.3 bench and test
// demonstrate the containment.
//
// Both transformations use the same naming-discipline deletion as PRE
// Mode A: an expression is only removed when its occurrences share one
// canonical destination with no other definitions and no non-local
// uses, so deleting the instruction leaves every reader correct.
package cse

import (
	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// Stats reports removals.
type Stats struct {
	Removed       int
	RemovedBlocks int // unreachable blocks dropped before analysis
}

// Changed reports whether the run modified the function.
func (s Stats) Changed() bool { return s.Removed+s.RemovedBlocks > 0 }

// RunDominator performs dominator-based redundancy elimination: a
// computation is deleted when a lexically identical computation
// strictly dominates it with no intervening kill.
func RunDominator(f *ir.Func) Stats {
	return RunDominatorWith(f, analysis.NewCache(f))
}

// RunDominatorWith is RunDominator drawing CFG analyses from the given
// cache.
func RunDominatorWith(f *ir.Func, ac *analysis.Cache) Stats {
	var st Stats
	st.RemovedBlocks = ac.RemoveUnreachable()
	u := dataflow.BuildUniverse(f)
	defer u.Release()
	canon := CanonicalDsts(f, u)
	dom := ac.DomTree()
	n := u.NumExprs()

	// available[e] is true while a computation of e dominates the
	// current walk position with operands unmodified since.
	available := dataflow.NewBitSet(n)

	var walk func(b *ir.Block, avail *dataflow.BitSet)
	walk = func(b *ir.Block, avail *dataflow.BitSet) {
		local := avail.Copy()
		kept := b.Instrs[:0]
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if k, ok := dataflow.KeyOf(in); ok {
				if e, found := u.Index[k]; found && canon[e] != ir.NoReg {
					if local.Has(e) {
						st.Removed++
						continue // dominated by an identical computation
					}
					local.Set(e)
				}
			}
			kept = append(kept, inID)
			killUpdate(u, local, in)
		}
		b.Instrs = kept
		for _, c := range dom.Children(b) {
			// Availability at a child is the state at the END of b
			// only when kills between are accounted; since the child
			// is dominated by b, everything available at b's end that
			// is transparent on all paths b→child... the classic AWZ
			// scheme conservatively passes the end-of-block state and
			// relies on kills being visible in the dominator walk.
			// Expressions killed on some path around the child are
			// nevertheless recomputed there and re-established; to stay
			// sound we clear expressions not transparent everywhere in
			// between — conservatively approximated by requiring
			// transparency in the child itself before reuse, which the
			// in-block kill scan enforces as the child is entered.
			walk(c, pruneNonTransparentPath(u, dom, b, c, local))
		}
	}
	walk(f.Entry(), available)
	if st.Removed > 0 {
		// The kept-slice rewrites bypass the Block helpers.
		f.MarkCodeMutated()
	}
	return st
}

// pruneNonTransparentPath conservatively clears expressions that might
// be killed on some path from the end of b to child.  Any block that
// can lie on such a path (reachable from b without passing through
// child... approximated as: any block not dominated by child and not
// equal to b that is a CFG ancestor of child) could kill.  We use a
// simple sound approximation: keep e only if every block other than
// those dominated by the child is transparent for e, whenever child
// has multiple predecessors; when child's only predecessor is b, the
// state passes through unchanged.
func pruneNonTransparentPath(u *dataflow.Universe, dom *cfg.DomTree, b, child *ir.Block, avail *dataflow.BitSet) *dataflow.BitSet {
	out := avail.Copy()
	if len(child.Preds) == 1 && child.Preds[0] == b {
		return out
	}
	// Conservative: clear anything not transparent in some block that
	// is not dominated by child (a potential intervening block).
	for _, blk := range child.Fn.Blocks {
		if blk == child || dom.Dominates(child, blk) {
			continue
		}
		out.Intersect(u.Transp[blk.ID])
	}
	return out
}

// RunAvail performs classic global CSE over available-expression sets:
// a computation of e is removed when e ∈ AVIN of its block and no kill
// precedes it locally.
func RunAvail(f *ir.Func) Stats {
	return RunAvailWith(f, analysis.NewCache(f))
}

// RunAvailWith is RunAvail drawing CFG analyses from the given cache.
func RunAvailWith(f *ir.Func, ac *analysis.Cache) Stats {
	var st Stats
	st.RemovedBlocks = ac.RemoveUnreachable()
	u := dataflow.BuildUniverse(f)
	defer u.Release()
	canon := CanonicalDsts(f, u)
	n := u.NumExprs()
	nb := len(f.Blocks)
	rpo := ac.RPO()

	avin := make([]*dataflow.BitSet, nb)
	avout := make([]*dataflow.BitSet, nb)
	for _, b := range f.Blocks {
		avin[b.ID] = dataflow.NewBitSet(n)
		avout[b.ID] = dataflow.NewBitSet(n)
		if b != f.Entry() {
			avout[b.ID].SetAll()
		} else {
			avout[b.ID].CopyFrom(u.Comp[b.ID])
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			in := avin[b.ID]
			if len(b.Preds) == 0 {
				in.ClearAll()
			} else {
				in.SetAll()
				for _, p := range b.Preds {
					in.Intersect(avout[p.ID])
				}
			}
			out := in.Copy()
			out.Intersect(u.Transp[b.ID])
			out.Union(u.Comp[b.ID])
			if !out.Equal(avout[b.ID]) {
				avout[b.ID].CopyFrom(out)
				changed = true
			}
		}
	}

	for _, b := range f.Blocks {
		avail := avin[b.ID].Copy()
		kept := b.Instrs[:0]
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if k, ok := dataflow.KeyOf(in); ok {
				if e, found := u.Index[k]; found && canon[e] != ir.NoReg {
					if avail.Has(e) {
						st.Removed++
						continue
					}
					avail.Set(e)
				}
			}
			kept = append(kept, inID)
			killUpdate(u, avail, in)
		}
		b.Instrs = kept
	}
	if st.Removed > 0 {
		// The kept-slice rewrites bypass the Block helpers.
		f.MarkCodeMutated()
	}
	return st
}

// killUpdate clears expressions invalidated by in: loads on memory
// writes, and anything whose operand in defines.
func killUpdate(u *dataflow.Universe, set *dataflow.BitSet, in *ir.Instr) {
	n := u.NumExprs()
	if in.Op.WritesMemory() {
		for e := 0; e < n; e++ {
			if u.IsLoad[e] {
				set.Clear(e)
			}
		}
	}
	if in.Dst == ir.NoReg {
		return
	}
	for e := 0; e < n; e++ {
		if k := u.Keys[e]; k.A == in.Dst || k.B == in.Dst {
			set.Clear(e)
		}
	}
}

// CanonicalDsts finds the naming-discipline canonical destination per
// expression: all occurrences share one dst, the dst has no other
// defs, is not an operand of its own expression, and has no cross-block
// (non-local) uses.  Deleting such an occurrence is always safe when
// the value is already in the register.
func CanonicalDsts(f *ir.Func, u *dataflow.Universe) []ir.Reg {
	n := u.NumExprs()
	canon := make([]ir.Reg, n)
	for i := range canon {
		canon[i] = ir.Reg(-1)
	}
	defCount := make([]int, f.NumRegs())
	exprDefCount := make([]int, n)
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpEnter {
			for _, p := range in.Args {
				defCount[p]++
			}
			return
		}
		if in.Dst != ir.NoReg {
			defCount[in.Dst]++
		}
		if k, ok := dataflow.KeyOf(in); ok {
			if e, found := u.Index[k]; found {
				exprDefCount[e]++
				switch {
				case canon[e] == ir.Reg(-1):
					canon[e] = in.Dst
				case canon[e] != in.Dst:
					canon[e] = ir.NoReg
				}
			}
		}
	})
	nonLocal := make([]bool, f.NumRegs())
	defined := make([]int, f.NumRegs())
	gen := 0
	for _, b := range f.Blocks {
		gen++
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op != ir.OpEnter {
				for _, a := range in.Args {
					if defined[a] != gen {
						nonLocal[a] = true
					}
				}
			}
			if in.Dst != ir.NoReg {
				defined[in.Dst] = gen
			}
		}
	}
	for e := 0; e < n; e++ {
		t := canon[e]
		if t == ir.Reg(-1) || t == ir.NoReg {
			canon[e] = ir.NoReg
			continue
		}
		k := u.Keys[e]
		if defCount[t] != exprDefCount[e] || k.A == t || k.B == t || nonLocal[t] {
			canon[e] = ir.NoReg
		}
	}
	return canon
}
