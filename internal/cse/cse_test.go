package cse_test

import (
	"testing"

	"repro/internal/cse"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pre"
)

func run(t *testing.T, f *ir.Func, args ...int64) (interp.Value, int64) {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(f.Name, vals...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v, m.Steps
}

// straightline: a dominating redundancy every scheme removes.
const straightline = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    mul r3, r3 => r4
    add r1, r2 => r3
    add r4, r3 => r5
    ret r5
}
`

// diamondFull: x+y in both arms and after the join — AVAIL and PRE
// remove the join occurrence, dominator CSE cannot (§5.3).
const diamondFull = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    cbr r1 -> b1, b2
b1:
    add r1, r2 => r3
    mul r3, r3 => r4
    jump -> b3
b2:
    add r1, r2 => r3
    loadI 1 => r4
    jump -> b3
b3:
    add r1, r2 => r3
    add r4, r3 => r5
    ret r5
}
`

// diamondPartial: x+y in one arm and after the join — only PRE.
const diamondPartial = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    cbr r1 -> b1, b2
b1:
    add r1, r2 => r3
    mul r3, r3 => r4
    jump -> b3
b2:
    loadI 1 => r4
    jump -> b3
b3:
    add r1, r2 => r3
    add r4, r3 => r5
    ret r5
}
`

func removals(t *testing.T, src string, scheme string) int {
	t.Helper()
	f := ir.MustParseFunc(src)
	before := f.InstrCount()
	var after int
	switch scheme {
	case "dom":
		cse.RunDominator(f)
		after = f.InstrCount()
	case "avail":
		cse.RunAvail(f)
		after = f.InstrCount()
	case "pre":
		pre.RunToFixpoint(f)
		// PRE inserts as well as deletes; count deletions net of
		// insertions by comparing computation counts is messy — use
		// static delta and allow negatives.
		after = f.InstrCount()
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("%s: %v", scheme, err)
	}
	// Semantics must hold for both branch directions.
	for _, a := range []int64{0, 1} {
		g := ir.MustParseFunc(src)
		want, _ := run(t, g, a, 7)
		got, _ := run(t, f, a, 7)
		if want.I != got.I {
			t.Fatalf("%s broke semantics on arg %d: %d vs %d\n%s", scheme, a, got.I, want.I, f)
		}
	}
	return before - after
}

// TestDominatorCSERemovesDominated: the straight-line redundancy.
func TestDominatorCSERemovesDominated(t *testing.T) {
	if n := removals(t, straightline, "dom"); n != 1 {
		t.Errorf("dominator CSE removed %d, want 1", n)
	}
}

// TestHierarchy is §5.3: "These methods form a hierarchy."
func TestHierarchy(t *testing.T) {
	type row struct {
		src  string
		name string
		dom  int
		avl  int
	}
	cases := []row{
		{straightline, "straightline", 1, 1},
		{diamondFull, "diamond-full", 0, 1},
		{diamondPartial, "diamond-partial", 0, 0},
	}
	for _, c := range cases {
		dom := removals(t, c.src, "dom")
		avl := removals(t, c.src, "avail")
		if dom != c.dom {
			t.Errorf("%s: dominator CSE removed %d, want %d", c.name, dom, c.dom)
		}
		if avl != c.avl {
			t.Errorf("%s: AVAIL CSE removed %d, want %d", c.name, avl, c.avl)
		}
		if dom > avl {
			t.Errorf("%s: hierarchy violated: dom %d > avail %d", c.name, dom, avl)
		}
	}
	// PRE handles the partial case: the else-path dynamic count drops.
	f := ir.MustParseFunc(diamondPartial)
	_, elseBefore := run(t, f, 0, 7)
	pre.RunToFixpoint(f)
	_, elseAfterRaw := run(t, f, 0, 7)
	// PRE's Mode B may add copies; measure computations by also
	// checking the then path never lengthens beyond +copies.
	if elseAfterRaw > elseBefore+1 {
		t.Errorf("PRE did not convert the partial redundancy: %d -> %d\n%s",
			elseBefore, elseAfterRaw, f)
	}
}

// TestDomCSEConservativeWithKills: a redundant-looking expression
// whose operand changes between the occurrences must stay.
func TestDomCSEConservativeWithKills(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    mul r3, r3 => r4
    loadI 1 => r5
    add r1, r5 => r1
    add r1, r2 => r3
    add r4, r3 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, 2, 3)
	st := cse.RunDominator(f)
	got, _ := run(t, f, 2, 3)
	if got.I != want.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, want.I)
	}
	if st.Removed != 0 {
		t.Errorf("removed a killed expression: %+v\n%s", st, f)
	}
}

// TestAvailCSELoopKills: an expression recomputed in a loop whose
// operand the loop modifies is not available at the loop entry of the
// next iteration.
func TestAvailCSELoopKills(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    loadI 0 => r3
    jump -> b1
b1:
    loadI 1 => r4
    add r2, r4 => r2
    add r2, r2 => r5
    add r3, r5 => r3
    cmpLT r2, r1 => r6
    cbr r6 -> b1, b2
b2:
    ret r3
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, 4)
	st := cse.RunAvail(f)
	got, _ := run(t, f, 4)
	if got.I != want.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, want.I)
	}
	if st.Removed != 0 {
		t.Errorf("removed a loop-varying expression: %+v\n%s", st, f)
	}
}
