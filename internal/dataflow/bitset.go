// Package dataflow provides the dense bitset type and the iterative
// dataflow analyses (liveness, availability, anticipability) that the
// optimization passes share.
package dataflow

import (
	"math/bits"
	"strconv"
	"strings"
)

// BitSet is a fixed-capacity dense bit vector.  All binary operations
// require operands of identical capacity.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns an empty set with capacity for n elements.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// NewBitSetFamily returns nb independent empty capacity-n sets backed
// by three bulk allocations (the headers, one flat word array, and the
// pointer table) instead of nb separate NewBitSet calls.  The members
// are ordinary BitSets in every observable way; their word slices are
// disjoint views of the shared backing, so even handing individual
// members to PutScratch is safe.
func NewBitSetFamily(nb, n int) []*BitSet {
	w := (n + 63) / 64
	if w == 0 {
		w = 1
	}
	hdrs := make([]BitSet, nb)
	words := make([]uint64, nb*w)
	ptrs := make([]*BitSet, nb)
	for i := range hdrs {
		hdrs[i] = BitSet{words: words[i*w : (i+1)*w : (i+1)*w], n: n}
		ptrs[i] = &hdrs[i]
	}
	return ptrs
}

// Len returns the set's capacity.
func (s *BitSet) Len() int { return s.n }

// Set adds element i.
func (s *BitSet) Set(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Clear removes element i.
func (s *BitSet) Clear(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether element i is in the set.
func (s *BitSet) Has(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// SetAll adds every element in [0, Len).
func (s *BitSet) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// ClearAll empties the set.
func (s *BitSet) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes the bits beyond capacity so Equal and Count stay exact.
func (s *BitSet) trim() {
	if extra := s.n & 63; extra != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(extra)) - 1
	}
}

// Reset re-dimensions the set to capacity n and empties it, reusing
// the backing array when it is large enough.  A Reset set is
// indistinguishable from a fresh NewBitSet(n).
func (s *BitSet) Reset(n int) {
	w := (n + 63) / 64
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
		clear(s.words)
	}
	s.n = n
}

// Copy returns an independent duplicate of the set.
func (s *BitSet) Copy() *BitSet {
	return &BitSet{words: append([]uint64(nil), s.words...), n: s.n}
}

// CopyFrom overwrites s with t's contents.
func (s *BitSet) CopyFrom(t *BitSet) {
	copy(s.words, t.words)
}

// Union adds every element of t; it reports whether s changed.
func (s *BitSet) Union(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		if nw := s.words[i] | w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersect keeps only the elements also in t; reports whether s changed.
func (s *BitSet) Intersect(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		if nw := s.words[i] & w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// UnionDiff adds every element of t that is not in u — s ∪= (t ∖ u) —
// without materializing the difference.  The dataflow solvers use it
// for terms like LATERIN(i) ∩ ¬ANTLOC(i) that would otherwise cost a
// temporary vector per edge per iteration.
func (s *BitSet) UnionDiff(t, u *BitSet) {
	for i, w := range t.words {
		s.words[i] |= w &^ u.words[i]
	}
}

// AndNotOf overwrites s with t ∖ u.  Unlike Subtract it does not read
// s's previous contents, so a scratch vector can absorb difference
// terms like EARLIEST(b) = ANTIN(b) ∖ AVIN(b) in one pass with no
// intermediate copy.
func (s *BitSet) AndNotOf(t, u *BitSet) {
	for i, w := range t.words {
		s.words[i] = w &^ u.words[i]
	}
}

// Subtract removes every element of t; reports whether s changed.
func (s *BitSet) Subtract(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		if nw := s.words[i] &^ w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Equal reports whether the two sets hold exactly the same elements.
func (s *BitSet) Equal(t *BitSet) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Count returns the number of elements in the set.
func (s *BitSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *BitSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order.
func (s *BitSet) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// String renders the set as {1, 5, 9} for debugging.
func (s *BitSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(strconv.Itoa(i))
	})
	sb.WriteByte('}')
	return sb.String()
}
