package dataflow

import (
	"testing"
)

func TestBitSetReset(t *testing.T) {
	s := NewBitSet(100)
	s.Set(3)
	s.Set(99)

	// Shrinking reuses the backing array and empties the set.
	s.Reset(64)
	if s.Len() != 64 {
		t.Fatalf("Len = %d, want 64", s.Len())
	}
	if !s.Empty() {
		t.Fatalf("Reset set not empty: %v", s)
	}
	s.Set(63)
	if !s.Has(63) || s.Count() != 1 {
		t.Fatalf("set after Reset broken: %v", s)
	}

	// Growing past capacity reallocates; still empty.
	s.Reset(1000)
	if s.Len() != 1000 || !s.Empty() {
		t.Fatalf("grow Reset: len=%d empty=%v", s.Len(), s.Empty())
	}

	// A Reset set behaves exactly like a fresh one under SetAll/Equal.
	s.Reset(70)
	s.SetAll()
	fresh := NewBitSet(70)
	fresh.SetAll()
	if !s.Equal(fresh) {
		t.Fatalf("Reset+SetAll != NewBitSet+SetAll")
	}
}

func TestUnionDiff(t *testing.T) {
	s := NewBitSet(130)
	u := NewBitSet(130)
	v := NewBitSet(130)
	s.Set(1)
	u.Set(1)
	u.Set(64)
	u.Set(129)
	v.Set(64)
	s.UnionDiff(u, v) // s ∪= u ∖ v = {1, 129}
	want := NewBitSet(130)
	want.Set(1)
	want.Set(129)
	if !s.Equal(want) {
		t.Fatalf("UnionDiff = %v, want %v", s, want)
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	if !PoolEnabled() {
		t.Fatal("pool disabled at test start")
	}
	s := GetScratch(100)
	if s.Len() != 100 || !s.Empty() {
		t.Fatalf("GetScratch: len=%d empty=%v", s.Len(), s.Empty())
	}
	s.Set(42)
	PutScratch(s)
	// A recycled set must come back empty regardless of what the
	// previous borrower left in it.
	r := GetScratch(100)
	if !r.Empty() {
		t.Fatalf("recycled scratch not empty: %v", r)
	}
	PutScratch(r)
	PutScratch(nil) // must be a no-op
}

func TestScratchPoolDisabled(t *testing.T) {
	prev := SetPoolEnabled(false)
	defer SetPoolEnabled(prev)
	if PoolEnabled() {
		t.Fatal("PoolEnabled after disable")
	}
	s := GetScratch(64)
	if s.Len() != 64 || !s.Empty() {
		t.Fatalf("disabled GetScratch: len=%d empty=%v", s.Len(), s.Empty())
	}
	PutScratch(s) // dropped, not pooled
	if SetPoolEnabled(false) {
		t.Error("SetPoolEnabled reported the pool enabled; want disabled")
	}
}

func benchSets(n int) (*BitSet, *BitSet) {
	a, b := NewBitSet(n), NewBitSet(n)
	for i := 0; i < n; i += 3 {
		a.Set(i)
	}
	for i := 0; i < n; i += 7 {
		b.Set(i)
	}
	return a, b
}

func BenchmarkBitSetUnion(b *testing.B) {
	x, y := benchSets(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Union(y)
	}
}

func BenchmarkBitSetIntersect(b *testing.B) {
	x, y := benchSets(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Intersect(y)
	}
}

func BenchmarkBitSetForEach(b *testing.B) {
	x, _ := benchSets(1024)
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		x.ForEach(func(e int) { sum += e })
	}
	_ = sum
}

func BenchmarkBitSetReset(b *testing.B) {
	x, _ := benchSets(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Reset(1024)
	}
}

// BenchmarkScratchPool measures a borrow/return round trip against a
// fresh allocation of the same size.
func BenchmarkScratchPool(b *testing.B) {
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := GetScratch(1024)
			PutScratch(s)
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = NewBitSet(1024)
		}
	})
}
