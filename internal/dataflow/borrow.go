package dataflow

// Borrower tracks the scratch vectors one analysis run draws from the
// shared pool so Release can hand every one of them back at once.
// Only the vectors — the actual allocation churn — are pooled; the
// small per-block pointer tables are not worth the bookkeeping.  The
// zero value is ready to use.  (internal/pre predates this type and
// keeps its own private copy; the alternate redundancy-elimination
// backends borrow through this one.)
type Borrower struct {
	borrowed []*BitSet
}

// Get borrows one empty capacity-n vector.
func (bw *Borrower) Get(n int) *BitSet {
	s := GetScratch(n)
	bw.borrowed = append(bw.borrowed, s)
	return s
}

// PerBlock returns a block-indexed family of empty capacity-n vectors.
// Families are bulk-allocated (NewBitSetFamily) rather than drawn from
// the pool: one run borrows several families at once, far more sets
// than the pool retains across GC cycles, so pooling them mostly
// missed; three allocations per family beats nb near-certain misses.
// Bulk families die with the run instead of returning on Release.
func (bw *Borrower) PerBlock(nb, n int) []*BitSet {
	return NewBitSetFamily(nb, n)
}

// Release returns every borrowed vector to the pool.
func (bw *Borrower) Release() {
	for _, s := range bw.borrowed {
		PutScratch(s)
	}
	bw.borrowed = nil
}
