package dataflow_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
	"repro/internal/ir"
)

// mkSet builds a bitset of capacity n from a bitmask over the low 64.
func mkSet(n int, mask uint64) *dataflow.BitSet {
	s := dataflow.NewBitSet(n)
	for i := 0; i < n && i < 64; i++ {
		if mask&(1<<uint(i)) != 0 {
			s.Set(i)
		}
	}
	return s
}

// elems extracts a canonical slice form.
func elems(s *dataflow.BitSet) []int {
	var out []int
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

func TestBitSetBasics(t *testing.T) {
	s := dataflow.NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Error("Set/Has broken")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Clear broken")
	}
	s.SetAll()
	if s.Count() != 130 {
		t.Errorf("SetAll count = %d, want 130", s.Count())
	}
	s.ClearAll()
	if !s.Empty() {
		t.Error("ClearAll broken")
	}
	if got := mkSet(10, 0b1010001).String(); got != "{0, 4, 6}" {
		t.Errorf("String = %s", got)
	}
}

// Property-based set laws via testing/quick.
func TestBitSetLaws(t *testing.T) {
	const n = 100
	cfgQ := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}

	// Union is commutative and idempotent; De Morgan-ish containment.
	if err := quick.Check(func(a, b uint64) bool {
		x, y := mkSet(n, a), mkSet(n, b)
		u1 := x.Copy()
		u1.Union(y)
		u2 := y.Copy()
		u2.Union(x)
		if !u1.Equal(u2) {
			return false
		}
		u3 := u1.Copy()
		u3.Union(u1)
		return u3.Equal(u1)
	}, cfgQ); err != nil {
		t.Error(err)
	}

	// Intersection distributes over union.
	if err := quick.Check(func(a, b, c uint64) bool {
		x, y, z := mkSet(n, a), mkSet(n, b), mkSet(n, c)
		l := y.Copy()
		l.Union(z)
		l.Intersect(x) // x ∩ (y ∪ z)
		r1 := x.Copy()
		r1.Intersect(y)
		r2 := x.Copy()
		r2.Intersect(z)
		r1.Union(r2) // (x∩y) ∪ (x∩z)
		return l.Equal(r1)
	}, cfgQ); err != nil {
		t.Error(err)
	}

	// Subtract then union restores a superset relationship.
	if err := quick.Check(func(a, b uint64) bool {
		x, y := mkSet(n, a), mkSet(n, b)
		d := x.Copy()
		d.Subtract(y)
		// d ∩ y = ∅
		chk := d.Copy()
		chk.Intersect(y)
		if !chk.Empty() {
			return false
		}
		// d ∪ (x∩y) = x
		xy := x.Copy()
		xy.Intersect(y)
		d.Union(xy)
		return d.Equal(x)
	}, cfgQ); err != nil {
		t.Error(err)
	}

	// Count agrees with ForEach.
	if err := quick.Check(func(a uint64) bool {
		x := mkSet(n, a)
		return x.Count() == len(elems(x))
	}, cfgQ); err != nil {
		t.Error(err)
	}
}

func TestLiveness(t *testing.T) {
	// b0: r3 = r1+r2; cbr r3 -> b1 b2
	// b1: r4 = r1+r1; jump b3
	// b2: r4 = r2+r2; jump b3
	// b3: ret r4        — r4 live into b3; r1 live into b1; r2 into b2.
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    cbr r3 -> b1, b2
b1:
    add r1, r1 => r4
    jump -> b3
b2:
    add r2, r2 => r4
    jump -> b3
b3:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	lv := dataflow.ComputeLiveness(f)
	byName := map[string]*ir.Block{}
	for _, b := range f.Blocks {
		byName[b.Name] = b
	}
	check := func(block string, reg ir.Reg, wantIn bool) {
		t.Helper()
		if got := lv.LiveIn[byName[block].ID].Has(int(reg)); got != wantIn {
			t.Errorf("LiveIn[%s][r%d] = %v, want %v", block, reg, got, wantIn)
		}
	}
	check("b3", 4, true)
	check("b3", 1, false)
	check("b1", 1, true)
	check("b1", 2, false)
	check("b2", 2, true)
	check("b2", 1, false)
	check("b0", 1, true)
	check("b0", 2, true)
	check("b0", 3, false) // defined in b0
}

func TestLivenessPhi(t *testing.T) {
	// φ operands are live out of the corresponding predecessor only.
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    cbr r1 -> b1, b2
b1:
    loadI 1 => r3
    jump -> b3
b2:
    loadI 2 => r4
    jump -> b3
b3:
    phi r3, r4 => r5
    ret r5
}
`
	f := ir.MustParseFunc(src)
	lv := dataflow.ComputeLiveness(f)
	byName := map[string]*ir.Block{}
	for _, b := range f.Blocks {
		byName[b.Name] = b
	}
	if !lv.LiveOut[byName["b1"].ID].Has(3) {
		t.Error("r3 must be live out of b1 (φ use)")
	}
	if lv.LiveOut[byName["b2"].ID].Has(3) {
		t.Error("r3 must not be live out of b2")
	}
	if lv.LiveIn[byName["b3"].ID].Has(3) {
		t.Error("φ operands are not live-in to the φ's block")
	}
}

func TestExprKeyCanonicalization(t *testing.T) {
	f := ir.NewFunc("scratch", 0)
	a := f.NewInstr(ir.OpAdd, 5, 1, 2)
	b := f.NewInstr(ir.OpAdd, 6, 2, 1)
	ka, ok1 := dataflow.KeyOf(a)
	kb, ok2 := dataflow.KeyOf(b)
	if !ok1 || !ok2 || ka != kb {
		t.Errorf("commutative keys differ: %v vs %v", ka, kb)
	}
	s := f.NewInstr(ir.OpSub, 5, 1, 2)
	s2 := f.NewInstr(ir.OpSub, 6, 2, 1)
	ks, _ := dataflow.KeyOf(s)
	ks2, _ := dataflow.KeyOf(s2)
	if ks == ks2 {
		t.Error("sub keys must be order-sensitive")
	}
	if _, ok := dataflow.KeyOf(f.NewCopy(1, 2)); ok {
		t.Error("copies are not expressions")
	}
	if _, ok := dataflow.KeyOf(f.NewCall("f", ir.NoReg)); ok {
		t.Error("calls are not expressions")
	}
	if _, ok := dataflow.KeyOf(f.NewInstr(ir.OpLoadW, 3, 1)); !ok {
		t.Error("loads are expressions (with memory kills)")
	}
}

func TestUniverseLocalProperties(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    stw r3 => [r1]
    ldw [r1] => r4
    copy r4 => r1
    add r1, r2 => r5
    ret r5
}
`
	f := ir.MustParseFunc(src)
	u := dataflow.BuildUniverse(f)
	idx := func(op ir.Op, a, b ir.Reg) int {
		k, _ := dataflow.KeyOf(f.NewInstr(op, 99, a, b))
		e, ok := u.Index[k]
		if !ok {
			t.Fatalf("expression %v not in universe", k)
		}
		return e
	}
	add := idx(ir.OpAdd, 1, 2)
	ld := idx(ir.OpLoadW, 1, ir.NoReg)
	bid := f.Entry().ID
	// add r1,r2 is computed before any kill → ANTLOC; recomputed after
	// the copy redefines r1, so the *last* computation leaves it
	// available → COMP; r1 is redefined → not transparent.
	if !u.AntLoc[bid].Has(add) {
		t.Error("add should be locally anticipatable")
	}
	if !u.Comp[bid].Has(add) {
		t.Error("add should be locally available (recomputed after kill)")
	}
	if u.Transp[bid].Has(add) {
		t.Error("add must not be transparent (r1 redefined)")
	}
	// The load is computed after a store; stores kill loads, but this
	// load comes after the store and survives until the copy kills its
	// address... the copy defines r1 which is the load's address.
	if u.Transp[bid].Has(ld) {
		t.Error("load must not be transparent (store + address redef)")
	}
	if u.AntLoc[bid].Has(ld) {
		t.Error("load follows a store: not upward-exposed")
	}
}
