package dataflow

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// ExprKey identifies an expression lexically: the opcode plus its
// operand registers (and immediate, for constants).  Two instructions
// compute "the same expression" in the Morel–Renvoise sense exactly
// when their keys are equal.  Commutative operations are canonicalized
// by sorting the two operands, so "add r1, r2" and "add r2, r1" share a
// key.
type ExprKey struct {
	Op    ir.Op
	A, B  ir.Reg
	Imm   int64
	FBits uint64 // float immediate bit pattern (loadF)
}

// String renders the key for debugging.
func (k ExprKey) String() string {
	switch k.Op {
	case ir.OpLoadI:
		return fmt.Sprintf("%s %d", k.Op, k.Imm)
	case ir.OpLoadF:
		return fmt.Sprintf("%s bits(%x)", k.Op, k.FBits)
	}
	if k.B != ir.NoReg {
		return fmt.Sprintf("%s %s, %s", k.Op, k.A, k.B)
	}
	return fmt.Sprintf("%s %s", k.Op, k.A)
}

// KeyOf returns the lexical expression key of an instruction and
// whether the instruction is an expression candidate at all.  Pure
// value-producing operations and memory loads qualify; copies, φs,
// stores, calls, enter and branches do not.
func KeyOf(in *ir.Instr) (ExprKey, bool) {
	op := in.Op
	switch {
	case op == ir.OpCopy || op == ir.OpPhi || op == ir.OpEnter:
		return ExprKey{}, false
	case op.IsTerminator() || op == ir.OpCall || op.IsStore():
		return ExprKey{}, false
	}
	k := ExprKey{Op: op}
	switch op {
	case ir.OpLoadI:
		k.Imm = in.Imm
	case ir.OpLoadF:
		k.FBits = floatBits(in.FImm)
	default:
		if len(in.Args) > 0 {
			k.A = in.Args[0]
		}
		if len(in.Args) > 1 {
			k.B = in.Args[1]
		}
		if op.Commutative() && k.B != ir.NoReg && k.B < k.A {
			k.A, k.B = k.B, k.A
		}
	}
	return k, true
}

// Universe enumerates the distinct expressions of a function and the
// per-block local properties PRE needs.
type Universe struct {
	Fn    *ir.Func
	Keys  []ExprKey
	Index map[ExprKey]int
	// Float reports whether expression i produces a floating value
	// (needed to pick the right temporary copy opcode).
	Float []bool
	// IsLoad marks memory loads, which are killed by stores and calls.
	IsLoad []bool

	// Local properties, indexed [block ID] then expression.
	Transp []*BitSet // operands (and memory, for loads) untouched in block
	AntLoc []*BitSet // locally anticipatable: computed before any kill
	Comp   []*BitSet // locally available: computed and not killed after
}

// BuildUniverse scans f and computes the expression universe and its
// local dataflow properties.
func BuildUniverse(f *ir.Func) *Universe {
	u := &Universe{Fn: f, Index: map[ExprKey]int{}}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := b.Instr(i)
			k, ok := KeyOf(in)
			if !ok {
				continue
			}
			if _, dup := u.Index[k]; !dup {
				u.Index[k] = len(u.Keys)
				u.Keys = append(u.Keys, k)
				u.Float = append(u.Float, in.Op.Float())
				u.IsLoad = append(u.IsLoad, in.Op.IsLoad())
			}
		}
	}
	n := len(u.Keys)

	// usedBy[r] lists expressions having register r as an operand,
	// stored counting-sort style: one flat array partitioned by
	// per-register offsets, so building it costs two allocations
	// rather than one grow-append chain per register.
	nr := f.NumRegs()
	offs := make([]int32, nr+1)
	for _, k := range u.Keys {
		if k.A != ir.NoReg {
			offs[k.A+1]++
		}
		if k.B != ir.NoReg && k.B != k.A {
			offs[k.B+1]++
		}
	}
	for r := 0; r < nr; r++ {
		offs[r+1] += offs[r]
	}
	usedByFlat := make([]int32, offs[nr])
	fill := make([]int32, nr)
	copy(fill, offs[:nr])
	for i, k := range u.Keys {
		if k.A != ir.NoReg {
			usedByFlat[fill[k.A]] = int32(i)
			fill[k.A]++
		}
		if k.B != ir.NoReg && k.B != k.A {
			usedByFlat[fill[k.B]] = int32(i)
			fill[k.B]++
		}
	}
	usedBy := func(r ir.Reg) []int32 { return usedByFlat[offs[r]:offs[r+1]] }
	loads := GetScratch(n)
	defer PutScratch(loads)
	for i, isLd := range u.IsLoad {
		if isLd {
			loads.Set(i)
		}
	}

	nb := len(f.Blocks)
	u.Transp = make([]*BitSet, nb)
	u.AntLoc = make([]*BitSet, nb)
	u.Comp = make([]*BitSet, nb)
	killed := GetScratch(n) // expressions killed so far in this block
	defer PutScratch(killed)
	for _, b := range f.Blocks {
		transp := GetScratch(n)
		transp.SetAll()
		antloc := GetScratch(n)
		comp := GetScratch(n)
		killed.Reset(n)

		kill := func(e int) {
			killed.Set(e)
			transp.Clear(e)
			comp.Clear(e)
		}
		for i := range b.Instrs {
			in := b.Instr(i)
			if e, ok := u.Index[mustKey(in)]; ok {
				if !killed.Has(e) {
					antloc.Set(e)
				}
				comp.Set(e)
			}
			if in.Op.WritesMemory() {
				loads.ForEach(kill)
			}
			if in.Dst != ir.NoReg {
				for _, e := range usedBy(in.Dst) {
					kill(int(e))
				}
			}
		}
		u.Transp[b.ID] = transp
		u.AntLoc[b.ID] = antloc
		u.Comp[b.ID] = comp
	}
	return u
}

// mustKey wraps KeyOf for instructions that may not be candidates; the
// zero key never appears in the index.
func mustKey(in *ir.Instr) ExprKey {
	k, ok := KeyOf(in)
	if !ok {
		return ExprKey{}
	}
	return k
}

// NumExprs returns the size of the universe.
func (u *Universe) NumExprs() int { return len(u.Keys) }

// Release returns the universe's local-property sets to the scratch
// pool.  The owning pass calls it once it is done with the universe;
// afterwards the universe must not be used.  Universes that are never
// Released (tests, diagnostics) are simply collected as garbage.
func (u *Universe) Release() {
	for i := range u.Transp {
		PutScratch(u.Transp[i])
		PutScratch(u.AntLoc[i])
		PutScratch(u.Comp[i])
		u.Transp[i], u.AntLoc[i], u.Comp[i] = nil, nil, nil
	}
}

// MakeInstr materializes expression e into destination register dst,
// allocated in the universe's function arena.
func (u *Universe) MakeInstr(e int, dst ir.Reg) *ir.Instr {
	k := u.Keys[e]
	switch k.Op {
	case ir.OpLoadI:
		return u.Fn.NewLoadI(dst, k.Imm)
	case ir.OpLoadF:
		return u.Fn.NewLoadF(dst, floatFromBits(k.FBits))
	}
	if k.B != ir.NoReg {
		return u.Fn.NewInstr(k.Op, dst, k.A, k.B)
	}
	if k.A != ir.NoReg {
		return u.Fn.NewInstr(k.Op, dst, k.A)
	}
	return u.Fn.NewInstr(k.Op, dst)
}

// KillScan clears valid-set entries invalidated by an instruction: any
// expression with dst as an operand and, when memWrite is set, every
// load.  It is the in-block bookkeeping the rewriting phases of the
// redundancy-elimination backends share while walking a block's
// instructions with a "temporary still holds expression e" vector.
func (u *Universe) KillScan(valid *BitSet, dst ir.Reg, memWrite bool) {
	n := len(u.Keys)
	if memWrite {
		for e := 0; e < n; e++ {
			if u.IsLoad[e] && valid.Has(e) {
				valid.Clear(e)
			}
		}
	}
	if dst == ir.NoReg {
		return
	}
	for e := 0; e < n; e++ {
		if !valid.Has(e) {
			continue
		}
		if k := u.Keys[e]; k.A == dst || k.B == dst {
			valid.Clear(e)
		}
	}
}
