package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Liveness holds per-block live-in/live-out register sets.  Registers
// are the elements; the sets have capacity fn.NumRegs().
type Liveness struct {
	LiveIn  []*BitSet // indexed by block ID
	LiveOut []*BitSet
}

// ComputeLiveness solves backward liveness over the CFG.  φ-nodes are
// treated the standard way: a φ's operands are live out of the
// corresponding predecessor, not live into the φ's own block.
func ComputeLiveness(f *ir.Func) *Liveness {
	livenessBuilds.Add(1)
	n := len(f.Blocks)
	nr := f.NumRegs()
	lv := &Liveness{
		LiveIn:  make([]*BitSet, n),
		LiveOut: make([]*BitSet, n),
	}
	// All 4n per-block sets come from two bulk allocations (the BitSet
	// headers and one flat word array) instead of 4n separate
	// NewBitSet calls.  LiveIn/LiveOut escape to the caller inside
	// those bulk arrays; use/def occupy the tail of the same arrays
	// and die with this frame.
	w := (nr + 63) / 64
	hdrs := make([]BitSet, 4*n)
	words := make([]uint64, 4*n*w)
	for i := range hdrs {
		hdrs[i] = BitSet{words: words[i*w : (i+1)*w], n: nr}
	}
	use := hdrs[2*n : 3*n] // upward-exposed non-φ uses
	def := hdrs[3*n:]      // registers defined in block

	for _, b := range f.Blocks {
		lv.LiveIn[b.ID] = &hdrs[2*b.ID]
		lv.LiveOut[b.ID] = &hdrs[2*b.ID+1]
	}
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := b.Instr(ii)
			if in.Op == ir.OpPhi {
				// φ defs happen "on entry"; uses are charged to the
				// predecessors during the fixed-point loop below.
				if in.Dst != ir.NoReg {
					def[b.ID].Set(int(in.Dst))
				}
				continue
			}
			for _, a := range in.Args {
				if !def[b.ID].Has(int(a)) {
					use[b.ID].Set(int(a))
				}
			}
			if in.Dst != ir.NoReg {
				def[b.ID].Set(int(in.Dst))
			}
		}
	}

	// Iterate to fixed point in postorder (reverse RPO) for speed.
	// One scratch vector serves every block and every round.
	rpo := cfg.ReversePostorder(f)
	in := GetScratch(nr)
	defer PutScratch(in)
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := lv.LiveOut[b.ID]
			for _, s := range b.Succs {
				if out.Union(lv.LiveIn[s.ID]) {
					changed = true
				}
				// φ operands flowing along this edge.
				pi := s.PredIndex(b)
				for _, pid := range s.Phis() {
					phi := f.Instr(pid)
					if pi < len(phi.Args) && !out.Has(int(phi.Args[pi])) {
						out.Set(int(phi.Args[pi]))
						changed = true
					}
				}
			}
			in.CopyFrom(out)
			in.Subtract(&def[b.ID])
			in.Union(&use[b.ID])
			if !in.Equal(lv.LiveIn[b.ID]) {
				lv.LiveIn[b.ID].CopyFrom(in)
				changed = true
			}
		}
	}
	return lv
}

// LiveAcrossBlocks returns the set of registers that are live into some
// block, i.e. whose values cross a basic-block boundary.  The paper's
// §5.1 correctness rule requires that no *expression name* be in this
// set when PRE runs.
func LiveAcrossBlocks(f *ir.Func) *BitSet {
	lv := ComputeLiveness(f)
	s := NewBitSet(f.NumRegs())
	for _, b := range f.Blocks {
		s.Union(lv.LiveIn[b.ID])
		// φ operands cross the edge even if not live-in.
		for _, pid := range b.Phis() {
			for _, a := range f.Instr(pid).Args {
				s.Set(int(a))
			}
		}
	}
	return s
}
