package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Liveness holds per-block live-in/live-out register sets.  Registers
// are the elements; the sets have capacity fn.NumRegs().
type Liveness struct {
	LiveIn  []*BitSet // indexed by block ID
	LiveOut []*BitSet
}

// ComputeLiveness solves backward liveness over the CFG.  φ-nodes are
// treated the standard way: a φ's operands are live out of the
// corresponding predecessor, not live into the φ's own block.
func ComputeLiveness(f *ir.Func) *Liveness {
	livenessBuilds.Add(1)
	n := len(f.Blocks)
	nr := f.NumRegs()
	lv := &Liveness{
		LiveIn:  make([]*BitSet, n),
		LiveOut: make([]*BitSet, n),
	}
	// use/def are block-local scratch; the LiveIn/LiveOut results
	// escape to the caller (and analysis caches retain them), so only
	// the scratch comes from — and returns to — the pool.
	use := make([]*BitSet, n) // upward-exposed non-φ uses
	def := make([]*BitSet, n) // registers defined in block
	defer func() {
		for i := range use {
			PutScratch(use[i])
			PutScratch(def[i])
		}
	}()

	for _, b := range f.Blocks {
		lv.LiveIn[b.ID] = NewBitSet(nr)
		lv.LiveOut[b.ID] = NewBitSet(nr)
		use[b.ID] = GetScratch(nr)
		def[b.ID] = GetScratch(nr)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				// φ defs happen "on entry"; uses are charged to the
				// predecessors during the fixed-point loop below.
				if in.Dst != ir.NoReg {
					def[b.ID].Set(int(in.Dst))
				}
				continue
			}
			for _, a := range in.Args {
				if !def[b.ID].Has(int(a)) {
					use[b.ID].Set(int(a))
				}
			}
			if in.Dst != ir.NoReg {
				def[b.ID].Set(int(in.Dst))
			}
		}
	}

	// Iterate to fixed point in postorder (reverse RPO) for speed.
	// One scratch vector serves every block and every round.
	rpo := cfg.ReversePostorder(f)
	in := GetScratch(nr)
	defer PutScratch(in)
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := lv.LiveOut[b.ID]
			for _, s := range b.Succs {
				if out.Union(lv.LiveIn[s.ID]) {
					changed = true
				}
				// φ operands flowing along this edge.
				pi := s.PredIndex(b)
				for _, phi := range s.Phis() {
					if pi < len(phi.Args) && !out.Has(int(phi.Args[pi])) {
						out.Set(int(phi.Args[pi]))
						changed = true
					}
				}
			}
			in.CopyFrom(out)
			in.Subtract(def[b.ID])
			in.Union(use[b.ID])
			if !in.Equal(lv.LiveIn[b.ID]) {
				lv.LiveIn[b.ID].CopyFrom(in)
				changed = true
			}
		}
	}
	return lv
}

// LiveAcrossBlocks returns the set of registers that are live into some
// block, i.e. whose values cross a basic-block boundary.  The paper's
// §5.1 correctness rule requires that no *expression name* be in this
// set when PRE runs.
func LiveAcrossBlocks(f *ir.Func) *BitSet {
	lv := ComputeLiveness(f)
	s := NewBitSet(f.NumRegs())
	for _, b := range f.Blocks {
		s.Union(lv.LiveIn[b.ID])
		// φ operands cross the edge even if not live-in.
		for _, phi := range b.Phis() {
			for _, a := range phi.Args {
				s.Set(int(a))
			}
		}
	}
	return s
}
