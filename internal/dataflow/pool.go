package dataflow

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// ScratchPool recycles BitSets for the iterative dataflow solvers.
// The optimize hot path (liveness, availability/anticipability, PRE's
// edge sets) allocates and drops thousands of identically sized bit
// vectors per function; the pool hands them back instead.
//
// Sets are bucketed by backing-array word count rounded up to a power
// of two, so a Get never reuses a vector that is too small and a
// returned vector serves every smaller capacity in its bucket.  Get
// always returns an empty set of exactly the requested capacity —
// callers cannot observe whether a set was recycled, which is what
// keeps pooling invisible to the deterministic optimizer output.
//
// A ScratchPool is safe for concurrent use (it is sync.Pool per
// bucket); the zero value is ready to use.
type ScratchPool struct {
	// buckets[i] holds sets whose backing arrays are exactly 1<<i
	// words.  32 buckets cover sets of up to 2^37 elements.
	buckets [32]sync.Pool
}

// bucketFor returns the bucket index for a capacity of n elements and
// the rounded word count allocated for that bucket.
func bucketFor(n int) (int, int) {
	w := (n + 63) / 64
	if w == 0 {
		w = 1
	}
	idx := bits.Len(uint(w - 1)) // ceil(log2(w))
	return idx, 1 << idx
}

// Get returns an empty set with capacity for n elements, recycling a
// previously Put set when one is available.
func (p *ScratchPool) Get(n int) *BitSet {
	idx, words := bucketFor(n)
	if s, ok := p.buckets[idx].Get().(*BitSet); ok {
		s.Reset(n)
		return s
	}
	return &BitSet{words: make([]uint64, (n+63)/64, words), n: n}
}

// Put returns a set to the pool for reuse.  The caller must not touch
// s afterwards.  Put(nil) is a no-op.
func (p *ScratchPool) Put(s *BitSet) {
	if s == nil {
		return
	}
	w := cap(s.words)
	if w == 0 {
		return
	}
	idx := bits.Len(uint(w - 1))
	if w != 1<<idx {
		// Not pool-allocated (odd capacity): dropping it keeps the
		// bucket invariant that capacity is exactly 1<<idx.
		return
	}
	p.buckets[idx].Put(s)
}

// shared is the package-level pool the dataflow solvers and PRE draw
// scratch vectors from.
var shared ScratchPool

// poolDisabled gates the shared pool for the allocation-regression
// ablation: when set, GetScratch allocates fresh sets and PutScratch
// drops them, reproducing the pre-pool behavior byte for byte.
var poolDisabled atomic.Bool

// SetPoolEnabled turns the shared scratch pool on or off.  Disabling
// it is the benchmark ablation (`epre bench -hotpath-out` measures
// both states); optimized output is identical either way.  It returns
// the previous state.
func SetPoolEnabled(on bool) bool { return !poolDisabled.Swap(!on) }

// PoolEnabled reports whether the shared scratch pool is active.
func PoolEnabled() bool { return !poolDisabled.Load() }

// GetScratch returns an empty scratch set with capacity n from the
// shared pool (or a fresh allocation when pooling is disabled).
// The caller owns the set until PutScratch.
func GetScratch(n int) *BitSet {
	if poolDisabled.Load() {
		return NewBitSet(n)
	}
	return shared.Get(n)
}

// PutScratch returns a GetScratch set to the shared pool.  Sets that
// escape to callers (liveness results, universes) must never be Put;
// only truly function-local scratch goes back.
func PutScratch(s *BitSet) {
	if poolDisabled.Load() {
		return
	}
	shared.Put(s)
}
