package dataflow

import "repro/internal/ir"

// This file hosts the generic unidirectional bitvector solvers used by
// the alternate redundancy-elimination backends (internal/lcm,
// internal/lospre).  internal/pre keeps its hand-rolled loops: its
// equations are edge-based and its output is golden-pinned, so it is
// deliberately not migrated onto these entry points.

// Meet selects the confluence operator of a dataflow problem.
type Meet int

const (
	// MeetAll intersects the neighboring solutions: an all-paths
	// ("must") property solved to the greatest fixed point.  Callers
	// seed the solution vectors full (except where boundary conditions
	// say otherwise); blocks with no CFG neighbors on the meet side get
	// the empty set, the conventional boundary for ANTOUT at exits and
	// AVIN at the entry.
	MeetAll Meet = iota
	// MeetAny unions the neighboring solutions: an any-path ("may")
	// property solved to the least fixed point.  Callers seed the
	// solution vectors empty.
	MeetAny
)

// meetInto overwrites dst with the meet of sets[b.ID] over the given
// neighbor blocks.  No neighbors yields ∅ under either operator.
func meetInto(dst *BitSet, neighbors []*ir.Block, sets []*BitSet, meet Meet) {
	if len(neighbors) == 0 {
		dst.ClearAll()
		return
	}
	if meet == MeetAll {
		dst.SetAll()
		for _, nb := range neighbors {
			dst.Intersect(sets[nb.ID])
		}
		return
	}
	dst.ClearAll()
	for _, nb := range neighbors {
		dst.Union(sets[nb.ID])
	}
}

// SolveForward iterates a forward bitvector problem to fixpoint over
// the reachable blocks in reverse postorder.  in and out are
// block-ID-indexed vectors (as produced by one borrower.perBlock call
// per direction); the caller seeds out according to the fixpoint it
// wants (full for MeetAll, empty for MeetAny).  Each step meets the
// predecessors' out-sets into in[b.ID], then calls transfer to compute
// the block's new out-set into dst — a pooled scratch vector the
// callback must fully overwrite.  Iteration stops when no out-set
// changes.  All blocks named by Preds edges must be present in rpo
// (run analysis.Cache.RemoveUnreachable first).
func SolveForward(rpo []*ir.Block, meet Meet, in, out []*BitSet, transfer func(b *ir.Block, in, dst *BitSet)) {
	if len(rpo) == 0 {
		return
	}
	dst := GetScratch(out[rpo[0].ID].Len())
	defer PutScratch(dst)
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			meetInto(in[b.ID], b.Preds, out, meet)
			transfer(b, in[b.ID], dst)
			if !dst.Equal(out[b.ID]) {
				out[b.ID].CopyFrom(dst)
				changed = true
			}
		}
	}
}

// SolveBackward is SolveForward's mirror: it iterates in postorder
// (reverse RPO), meets the successors' in-sets into out[b.ID], and
// calls transfer to compute the block's new in-set into dst.  The
// caller seeds in according to the fixpoint it wants.
func SolveBackward(rpo []*ir.Block, meet Meet, out, in []*BitSet, transfer func(b *ir.Block, out, dst *BitSet)) {
	if len(rpo) == 0 {
		return
	}
	dst := GetScratch(in[rpo[0].ID].Len())
	defer PutScratch(dst)
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			meetInto(out[b.ID], b.Succs, in, meet)
			transfer(b, out[b.ID], dst)
			if !dst.Equal(in[b.ID]) {
				in[b.ID].CopyFrom(dst)
				changed = true
			}
		}
	}
}
