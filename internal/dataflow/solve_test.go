package dataflow_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

func TestAndNotOf(t *testing.T) {
	const n = 100
	x, y := mkSet(n, 0b11011), mkSet(n, 0b01110)
	dst := mkSet(n, 0xffff) // pre-filled: AndNotOf must fully overwrite
	dst.AndNotOf(x, y)
	if got := dst.String(); got != "{0, 4}" {
		t.Errorf("AndNotOf = %s, want {0, 4}", got)
	}
	// s may alias t: s = s ∖ u.
	x.AndNotOf(x, y)
	if !x.Equal(dst) {
		t.Errorf("aliased AndNotOf = %s, want %s", x, dst)
	}
}

// The diamond used by the forward and backward solver tests:
//
//	b0 → {b1, b2} → b3
//
// b1 computes r1+r2, b2 kills r2, b3 computes r1+r2.
const solveDiamond = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    cbr r1 -> b1, b2
b1:
    add r1, r2 => r3
    jump -> b3
b2:
    loadI 7 => r2
    jump -> b3
b3:
    add r1, r2 => r4
    ret r4
}
`

// universeFor builds the expression universe plus the block-name index
// for one parsed function.
func universeFor(t *testing.T, src string) (*ir.Func, *dataflow.Universe, map[string]*ir.Block) {
	t.Helper()
	f := ir.MustParseFunc(src)
	u := dataflow.BuildUniverse(f)
	t.Cleanup(u.Release)
	byName := map[string]*ir.Block{}
	for _, b := range f.Blocks {
		byName[b.Name] = b
	}
	return f, u, byName
}

// perBlock allocates one plain (unpooled) vector per block.
func perBlock(nb, n int) []*dataflow.BitSet {
	sets := make([]*dataflow.BitSet, nb)
	for i := range sets {
		sets[i] = dataflow.NewBitSet(n)
	}
	return sets
}

func TestSolveForwardAvailability(t *testing.T) {
	f, u, byName := universeFor(t, solveDiamond)
	n := u.NumExprs()
	rpo := cfg.ReversePostorder(f)
	nb := len(f.Blocks)

	in, out := perBlock(nb, n), perBlock(nb, n)
	for _, b := range f.Blocks {
		if b != f.Entry() {
			out[b.ID].SetAll() // GFP seed for a must problem
		} else {
			out[b.ID].CopyFrom(u.Comp[b.ID])
		}
	}
	dataflow.SolveForward(rpo, dataflow.MeetAll, in, out,
		func(b *ir.Block, bin, dst *dataflow.BitSet) {
			dst.CopyFrom(bin)
			dst.Intersect(u.Transp[b.ID])
			dst.Union(u.Comp[b.ID])
		})

	k, _ := dataflow.KeyOf(f.NewInstr(ir.OpAdd, 99, 1, 2))
	e := u.Index[k]
	// r1+r2 is available out of b1, killed by b2's write to r2, so the
	// all-paths meet at the join must drop it.
	if !out[byName["b1"].ID].Has(e) {
		t.Error("r1+r2 must be available out of b1")
	}
	if out[byName["b2"].ID].Has(e) {
		t.Error("r1+r2 must not be available out of b2 (r2 redefined)")
	}
	if in[byName["b3"].ID].Has(e) {
		t.Error("MeetAll at the join must intersect away r1+r2")
	}
}

func TestSolveBackwardAnticipability(t *testing.T) {
	f, u, byName := universeFor(t, solveDiamond)
	n := u.NumExprs()
	rpo := cfg.ReversePostorder(f)
	nb := len(f.Blocks)

	in, out := perBlock(nb, n), perBlock(nb, n)
	for _, b := range f.Blocks {
		in[b.ID].SetAll()
	}
	dataflow.SolveBackward(rpo, dataflow.MeetAll, out, in,
		func(b *ir.Block, bout, dst *dataflow.BitSet) {
			dst.CopyFrom(bout)
			dst.Intersect(u.Transp[b.ID])
			dst.Union(u.AntLoc[b.ID])
		})

	k, _ := dataflow.KeyOf(f.NewInstr(ir.OpAdd, 99, 1, 2))
	e := u.Index[k]
	// Every path from b0 reaches b3's r1+r2, but b2 redefines r2 on the
	// way, so the expression is anticipated at b0's exit only via b1.
	if !in[byName["b3"].ID].Has(e) {
		t.Error("r1+r2 must be anticipated into b3")
	}
	if !in[byName["b1"].ID].Has(e) {
		t.Error("r1+r2 must be anticipated into b1 (transparent)")
	}
	if in[byName["b2"].ID].Has(e) {
		t.Error("r1+r2 must not be anticipated into b2 (kill)")
	}
	if out[byName["b3"].ID].Count() != 0 {
		t.Error("exit block's out-set must be the empty-meet boundary ∅")
	}
}

func TestSolveBackwardMeetAny(t *testing.T) {
	// A "used on some later path" (may) problem: LFP from empty seeds,
	// union meet.  At the fork both arms contribute their uses.
	f, u, byName := universeFor(t, solveDiamond)
	n := u.NumExprs()
	rpo := cfg.ReversePostorder(f)
	nb := len(f.Blocks)

	in, out := perBlock(nb, n), perBlock(nb, n)
	dataflow.SolveBackward(rpo, dataflow.MeetAny, out, in,
		func(b *ir.Block, bout, dst *dataflow.BitSet) {
			dst.CopyFrom(bout)
			dst.Union(u.AntLoc[b.ID])
		})

	k, _ := dataflow.KeyOf(f.NewInstr(ir.OpAdd, 99, 1, 2))
	e := u.Index[k]
	if !out[byName["b0"].ID].Has(e) {
		t.Error("union meet at the fork must see the use in b1")
	}
	if !out[byName["b2"].ID].Has(e) {
		t.Error("b2 must see b3's use downstream")
	}
}

func TestSolveEmptyRPO(t *testing.T) {
	// Degenerate input must be a no-op, not a panic.
	dataflow.SolveForward(nil, dataflow.MeetAll, nil, nil, nil)
	dataflow.SolveBackward(nil, dataflow.MeetAny, nil, nil, nil)
}
