package dataflow

import "sync/atomic"

var livenessBuilds atomic.Uint64

// LivenessBuilds returns the number of liveness problems solved so far
// process-wide, counting both cached and direct ComputeLiveness calls.
func LivenessBuilds() uint64 { return livenessBuilds.Load() }
