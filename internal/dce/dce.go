// Package dce implements dead-code elimination, part of the paper's
// baseline sequence (§4.1).  An instruction is dead when it has no side
// effects and its result is not live immediately after it; the pass
// iterates liveness and deletion to a fixed point so whole dead chains
// disappear.
package dce

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// Stats reports the number of instructions removed.
type Stats struct {
	Removed int
}

// Run deletes dead instructions from f in place.
func Run(f *ir.Func) Stats {
	return RunWith(f, analysis.NewCache(f))
}

// RunWith is Run drawing liveness from the given cache.  Deletions go
// through Block.RemoveAt, which bumps the code generation, so each
// round's liveness is fresh — and the final (no-op) round leaves valid
// liveness in the cache for the next pass.
func RunWith(f *ir.Func, ac *analysis.Cache) Stats {
	var st Stats
	for {
		lv := ac.Liveness()
		removed := 0
		for _, b := range f.Blocks {
			live := lv.LiveOut[b.ID].Copy()
			// Walk backwards; collect deletions by index.
			var dead []int
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instr(i)
				removable := in.Dst != ir.NoReg &&
					!live.Has(int(in.Dst)) &&
					(in.Op.Pure() || in.Op.IsLoad() || in.Op == ir.OpCopy)
				if removable {
					dead = append(dead, i)
					continue
				}
				if in.Dst != ir.NoReg {
					live.Clear(int(in.Dst))
				}
				if in.Op != ir.OpPhi { // φ uses belong to predecessors
					for _, a := range in.Args {
						live.Set(int(a))
					}
				}
			}
			for _, i := range dead {
				b.RemoveAt(i)
			}
			removed += len(dead)
		}
		st.Removed += removed
		if removed == 0 {
			return st
		}
	}
}
