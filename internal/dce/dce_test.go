package dce_test

import (
	"testing"

	"repro/internal/dce"
	"repro/internal/interp"
	"repro/internal/ir"
)

func countInstrs(f *ir.Func) int { return f.InstrCount() }

func TestRemovesDeadChain(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 1 => r2
    add r1, r2 => r3
    mul r3, r3 => r4
    add r4, r2 => r5
    ret r1
}
`
	f := ir.MustParseFunc(src)
	st := dce.Run(f)
	if st.Removed != 4 {
		t.Errorf("removed %d, want 4\n%s", st.Removed, f)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f}})
	v, err := m.Call("f", interp.IntVal(9))
	if err != nil || v.I != 9 {
		t.Errorf("got %v, %v", v, err)
	}
}

func TestKeepsStoresAndCalls(t *testing.T) {
	const src = `
program globalsize=16

func g(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    stw r1 => [r2]
    ret
}

func f(r1) {
b0:
    enter(r1)
    call g(r1) => r2
    loadI 0 => r3
    stw r1 => [r3]
    ret r1
}
`
	prog, err := ir.ParseProgramString(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	dce.Run(f)
	stores, calls := 0, 0
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op.IsStore() {
			stores++
		}
		if in.Op == ir.OpCall {
			calls++
		}
	})
	if stores != 1 || calls != 1 {
		t.Errorf("stores=%d calls=%d, want 1,1\n%s", stores, calls, f)
	}
}

func TestKeepsLiveThroughLoop(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    loadI 0 => r3
    jump -> b1
b1:
    loadI 1 => r4
    add r2, r4 => r2
    add r3, r2 => r3
    cmpLT r2, r1 => r5
    cbr r5 -> b1, b2
b2:
    ret r3
}
`
	f := ir.MustParseFunc(src)
	before := countInstrs(f)
	st := dce.Run(f)
	if st.Removed != 0 {
		t.Errorf("removed %d live instructions (%d -> %d)\n%s", st.Removed, before, countInstrs(f), f)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f}})
	v, _ := m.Call("f", interp.IntVal(3))
	if v.I != 6 { // 1+2+3
		t.Errorf("got %d, want 6", v.I)
	}
}

func TestRemovesDeadLoad(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    ldw [r1] => r2
    ret r1
}
`
	f := ir.MustParseFunc(src)
	st := dce.Run(f)
	if st.Removed != 1 {
		t.Errorf("dead load kept: %+v\n%s", st, f)
	}
}

func TestRemovesDeadPhi(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 1 => r2
    loadI 2 => r3
    cbr r1 -> b1, b2
b1:
    jump -> b3
b2:
    jump -> b3
b3:
    phi r2, r3 => r4
    ret r1
}
`
	f := ir.MustParseFunc(src)
	st := dce.Run(f)
	if st.Removed < 1 {
		t.Errorf("dead φ kept: %+v\n%s", st, f)
	}
	phis := 0
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpPhi {
			phis++
		}
	})
	if phis != 0 {
		t.Errorf("φ survived\n%s", f)
	}
}
