// Package difftest is the differential-testing harness pairing the
// random program generator (internal/progen) with the optimizer and
// the reference interpreter.
//
// For each seed it generates one program, runs the unoptimized program
// on the checker's standard input tuples to establish reference
// behavior, then runs the output of each optimization level on the
// same inputs and compares everything observable: the return value,
// the printed output stream, and (for levels that claim bit-exact
// float behavior) the final memory image.  Failures are classified —
// miscompile, verifier rejection, panic, timeout — optionally shrunk
// to a minimal reproducer by delta debugging (see shrink.go), and
// persisted as self-describing .iloc artifacts.
package difftest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/progen"
)

// Kind classifies a failure.
type Kind string

// The failure classes.
const (
	// KindMiscompile: optimized code terminated but disagreed with the
	// reference (wrong value, wrong output, wrong memory), or trapped
	// or ran away where the reference terminated cleanly.
	KindMiscompile Kind = "miscompile"
	// KindVerifierReject: a pass produced structurally invalid IR (the
	// pipeline's post-pass ir.Verify or the final whole-program verify
	// failed).
	KindVerifierReject Kind = "verifier-reject"
	// KindPanic: the optimizer panicked.
	KindPanic Kind = "panic"
	// KindTimeout: the run's context expired mid-test; the program is
	// unjudged, not necessarily wrong.
	KindTimeout Kind = "timeout"
)

// OptimizeFunc is the optimizer under test.  The default is the real
// pipeline (core.OptimizeWith); tests substitute deliberately broken
// pipelines to prove the oracle and reducer catch them.
type OptimizeFunc func(ctx context.Context, p *ir.Program, level core.Level) (*ir.Program, error)

// Options configure one fuzzing run.
type Options struct {
	// Ctx bounds the whole run; expiry classifies in-flight programs
	// as KindTimeout and stops the run.
	Ctx context.Context
	// Seed is the base seed; program i uses seed Seed+i.
	Seed uint64
	// N is the number of programs to generate and test.
	N int
	// Levels to test; nil means all four Table 1 levels.
	Levels []core.Level
	// Workers sets test-level parallelism (programs are independent).
	// Results are aggregated in seed order, so the report is identical
	// for any worker count.  <=1 means serial.
	Workers int
	// Shrink enables delta-debugging reduction of failing programs.
	Shrink bool
	// ArtifactDir, when non-empty, receives one .iloc reproducer per
	// failure plus a human-readable metadata header.
	ArtifactDir string
	// Config overrides the per-seed generator configuration; nil means
	// progen.ForSeed, which sweeps the shape space.
	Config *progen.Config
	// CallHeavy forces the generator's call-heavy shape on top of the
	// per-seed sweep (or the explicit Config): dense call sites and
	// depth-two call chains, the silhouette procedural front ends
	// produce.
	CallHeavy bool
	// Optimize overrides the optimizer under test (nil = real pipeline).
	Optimize OptimizeFunc
	// MaxSteps bounds each reference execution (default 1<<20); the
	// optimized run gets 4x the reference's actual step count.
	MaxSteps int64
	// PerPass, for miscompiles, re-runs the level pass by pass under
	// translation validation to name the guilty pass in the detail.
	PerPass bool
	// GVNDiff enables cross-backend differential mode: every level
	// whose pass sequence has a value-numbering slot is optimized twice
	// — once per GVN backend — and both results are validated against
	// the same reference behavior, so the two backends act as free
	// oracles for each other.  Incompatible with a custom Optimize
	// (which has no backend dimension).
	GVNDiff bool
	// PREDiff is GVNDiff for the redundancy-elimination slot: every
	// level with a PRE slot is optimized once per PRE backend
	// (drechsler, lcm, lospre), all validated against the same
	// reference behavior.  Combined with GVNDiff the harness tests the
	// full backend product.  Incompatible with a custom Optimize.
	PREDiff bool
	// Metrics, when non-nil, receives live counters during the run.
	Metrics *Metrics
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) levels() []core.Level {
	if len(o.Levels) > 0 {
		return o.Levels
	}
	return core.Levels
}

func (o Options) maxSteps() int64 {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return 1 << 20
}

// variant is one pipeline configuration under test: a point in the
// (GVN backend × PRE backend) product.
type variant struct {
	gvn core.GVNBackend
	pre core.PREBackend
}

func (o Options) optimize() OptimizeFunc {
	return o.optimizeFor(variant{core.GVNAWZ, core.PREDrechsler})
}

// optimizeFor is the optimizer under test with explicit backends; a
// custom Optimize override has no backend dimension and wins outright.
func (o Options) optimizeFor(v variant) OptimizeFunc {
	if o.Optimize != nil {
		return o.Optimize
	}
	return func(ctx context.Context, p *ir.Program, level core.Level) (*ir.Program, error) {
		return core.OptimizeWith(p, level, core.OptimizeOptions{Ctx: ctx, GVN: v.gvn, PRE: v.pre})
	}
}

// passSeqDiffers reports whether two pipeline configurations produce
// different pass sequences at a level; identical sequences make the
// variants byte-identical, so testing both would be pure waste.
func passSeqDiffers(level core.Level, a, b variant) bool {
	x := core.PassNamesWith(level, a.gvn, a.pre)
	y := core.PassNamesWith(level, b.gvn, b.pre)
	for i := range x {
		if x[i] != y[i] {
			return true
		}
	}
	return false
}

// variants lists the pipeline configurations one level is tested with:
// just the default, plus every GVN backend when GVNDiff is set and the
// level has a value-numbering slot, crossed with every PRE backend when
// PREDiff is set and the level has a redundancy-elimination slot.
func (o Options) variants(level core.Level) []variant {
	def := variant{core.GVNAWZ, core.PREDrechsler}
	gvns := []core.GVNBackend{core.GVNAWZ}
	if o.GVNDiff && passSeqDiffers(level, def, variant{core.GVNPrecise, core.PREDrechsler}) {
		gvns = core.GVNBackends
	}
	pres := []core.PREBackend{core.PREDrechsler}
	if o.PREDiff && passSeqDiffers(level, def, variant{core.GVNAWZ, core.PRELCM}) {
		pres = core.PREBackends
	}
	vs := make([]variant, 0, len(gvns)*len(pres))
	for _, g := range gvns {
		for _, p := range pres {
			vs = append(vs, variant{g, p})
		}
	}
	return vs
}

// Failure describes one failing (program, level) pair.
type Failure struct {
	Seed  uint64
	Level core.Level
	// GVN is the value-numbering backend the failing pipeline ran with
	// (set in GVNDiff mode; empty means the default backend).
	GVN core.GVNBackend
	// PRE is the redundancy-elimination backend the failing pipeline
	// ran with (set in PREDiff mode; empty means the default backend).
	PRE    core.PREBackend
	Kind   Kind
	Detail string
	// Program is the reproducer: the original generated program, or
	// the minimized one when shrinking succeeded.
	Program *ir.Program
	// OrigInstrs and MinInstrs are the static instruction counts
	// before and after reduction (equal when Shrunk is false).
	OrigInstrs int
	MinInstrs  int
	Shrunk     bool
	// Artifact is the path the reproducer was written to, if any.
	Artifact string
}

func (f *Failure) String() string {
	level := string(f.Level)
	if f.GVN != "" {
		level += "/gvn=" + string(f.GVN)
	}
	if f.PRE != "" {
		level += "/pre=" + string(f.PRE)
	}
	s := fmt.Sprintf("%s at %s (seed %d): %s", f.Kind, level, f.Seed, f.Detail)
	if f.Shrunk {
		s += fmt.Sprintf(" [shrunk %d -> %d instrs]", f.OrigInstrs, f.MinInstrs)
	}
	return s
}

// Report summarizes a run.
type Report struct {
	Programs int
	Failures []Failure
	ByKind   map[Kind]int
	Elapsed  time.Duration
}

// Run executes the differential test over opt.N programs and returns
// the aggregated report.  The only error return is context expiry
// before any verdicts could be collected; individual program failures
// are data, not errors.
func Run(opt Options) (*Report, error) {
	ctx := opt.ctx()
	if (opt.GVNDiff || opt.PREDiff) && opt.Optimize != nil {
		return nil, fmt.Errorf("difftest: GVNDiff/PREDiff is incompatible with a custom Optimize (no backend dimension)")
	}
	start := time.Now()
	n := opt.N
	if n <= 0 {
		n = 1
	}
	workers := opt.Workers
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// Each index is tested independently; results land in a fixed slot
	// so aggregation order — and therefore the report — is identical
	// for any worker count.
	results := make([][]Failure, n)
	tested := make([]bool, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			results[i] = testSeed(ctx, opt.Seed+uint64(i), opt)
			tested[i] = true
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					results[i] = testSeed(ctx, opt.Seed+uint64(i), opt)
					tested[i] = true
				}
			}()
		}
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			work <- i
		}
		close(work)
		wg.Wait()
	}

	rep := &Report{ByKind: map[Kind]int{}, Elapsed: time.Since(start)}
	for idx, fs := range results {
		if !tested[idx] {
			continue
		}
		rep.Programs++
		for i := range fs {
			f := &fs[i]
			if opt.Shrink && f.Kind != KindTimeout {
				shrinkFailure(ctx, f, opt)
			}
			if opt.ArtifactDir != "" && f.Kind != KindTimeout {
				if path, err := writeArtifact(opt.ArtifactDir, f); err == nil {
					f.Artifact = path
				} else {
					f.Detail += fmt.Sprintf(" (artifact write failed: %v)", err)
				}
			}
			rep.Failures = append(rep.Failures, *f)
			rep.ByKind[f.Kind]++
		}
	}
	if opt.Metrics != nil {
		opt.Metrics.observeReport(rep)
	}
	if rep.Programs == 0 {
		return rep, fmt.Errorf("difftest: run cancelled before any program was tested: %w", ctx.Err())
	}
	return rep, nil
}

// refRun is the reference behavior of one input tuple.
type refRun struct {
	input  []interp.Value
	ret    interp.Value
	output []interp.Value
	mem    []byte
	steps  int64
}

// testSeed generates the program for one seed and tests every level,
// returning at most one failure per level.
func testSeed(ctx context.Context, seed uint64, opt Options) []Failure {
	cfg := progen.ForSeed(seed)
	if opt.Config != nil {
		cfg = *opt.Config
	}
	if opt.CallHeavy {
		cfg.CallHeavy = true
	}
	prog := progen.Generate(cfg, seed)
	refs := referenceRuns(ctx, prog, opt.maxSteps())
	if opt.Metrics != nil {
		opt.Metrics.programs.Add(1)
	}

	var failures []Failure
	for _, level := range opt.levels() {
		for _, v := range opt.variants(level) {
			if ctx.Err() != nil {
				failures = append(failures, Failure{
					Seed: seed, Level: level, Kind: KindTimeout,
					Detail: ctx.Err().Error(), Program: prog,
					OrigInstrs: prog.InstrCount(), MinInstrs: prog.InstrCount(),
				})
				continue
			}
			if f := testLevel(ctx, prog, refs, seed, level, v, opt); f != nil {
				failures = append(failures, *f)
			}
		}
	}
	return failures
}

// referenceRuns executes the unoptimized program on the checker's
// standard input tuples.  Inputs whose reference behavior is undefined
// (trap) or unaffordable (step limit) are dropped — progen guarantees
// neither happens, but externally supplied configs must not crash the
// harness.
func referenceRuns(ctx context.Context, prog *ir.Program, maxSteps int64) []refRun {
	var refs []refRun
	for _, in := range check.ProgramInputs(prog, "main", 3) {
		m := interp.NewMachine(prog)
		m.MaxSteps = maxSteps
		m.SetContext(ctx)
		ret, err := m.Call("main", in...)
		if err != nil {
			continue
		}
		refs = append(refs, refRun{
			input:  in,
			ret:    ret,
			output: m.Output,
			mem:    m.Mem,
			steps:  m.Steps,
		})
	}
	return refs
}

// floatTolFor returns the comparison tolerance a level is entitled to:
// the reassociating levels legitimately change float rounding, so they
// are compared within the same relative tolerance translation
// validation grants them; the exact levels get bit-for-bit comparison
// plus a final-memory check.
func floatTolFor(level core.Level) (tol float64, exactMem bool) {
	switch level {
	case core.LevelReassoc, core.LevelDist:
		return 1e-6, false
	}
	return 0, true
}

// testLevel runs one optimization level (with one pipeline variant)
// against the reference behavior and returns a classified failure, or
// nil.
func testLevel(ctx context.Context, prog *ir.Program, refs []refRun, seed uint64, level core.Level, v variant, opt Options) *Failure {
	var gvnTag core.GVNBackend
	var preTag core.PREBackend
	if opt.GVNDiff {
		gvnTag = v.gvn // record the pipeline variant on any failure
	}
	if opt.PREDiff {
		preTag = v.pre
	}
	fail := func(kind Kind, detail string, repro *ir.Program) *Failure {
		if repro == nil {
			repro = prog
		}
		n := prog.InstrCount()
		return &Failure{
			Seed: seed, Level: level, GVN: gvnTag, PRE: preTag, Kind: kind, Detail: detail,
			Program: repro, OrigInstrs: n, MinInstrs: n,
		}
	}

	optimized, panicMsg, err := safeOptimize(ctx, prog, level, opt.optimizeFor(v))
	switch {
	case panicMsg != "":
		return fail(KindPanic, panicMsg, nil)
	case err != nil:
		if ctx.Err() != nil {
			return fail(KindTimeout, err.Error(), nil)
		}
		return fail(KindVerifierReject, err.Error(), nil)
	}
	if verr := ir.VerifyProgram(optimized); verr != nil {
		return fail(KindVerifierReject, verr.Error(), nil)
	}

	tol, exactMem := floatTolFor(level)
	for _, ref := range refs {
		if detail := compareRun(ctx, optimized, ref, tol, exactMem); detail != "" {
			if ctx.Err() != nil {
				return fail(KindTimeout, ctx.Err().Error(), nil)
			}
			if opt.PerPass {
				detail += blamePass(ctx, prog, level, v)
			}
			return fail(KindMiscompile, detail, nil)
		}
	}
	return nil
}

// compareRun executes the optimized program on one reference input and
// returns a human-readable mismatch description, or "" on agreement.
func compareRun(ctx context.Context, optimized *ir.Program, ref refRun, tol float64, exactMem bool) string {
	m := interp.NewMachine(optimized)
	// The reference terminated in ref.steps; optimization never slows a
	// program down by 4x plus a constant, so hitting this budget means
	// the transformed program loops where the original did not.
	m.MaxSteps = 4*ref.steps + 4096
	m.SetContext(ctx)
	got, err := m.Call("main", ref.input...)
	if err != nil {
		var sl *interp.StepLimitError
		if errors.As(err, &sl) {
			return fmt.Sprintf("on input %v: reference finished in %d steps but optimized code exceeded %d (runaway loop)",
				ref.input, ref.steps, m.MaxSteps)
		}
		return fmt.Sprintf("on input %v: reference returns %s but optimized code fails: %v", ref.input, ref.ret, err)
	}
	if !check.ValuesAgree(ref.ret, got, tol) {
		return fmt.Sprintf("on input %v: result %s, want %s", ref.input, got, ref.ret)
	}
	if len(m.Output) != len(ref.output) {
		return fmt.Sprintf("on input %v: printed %d values, want %d", ref.input, len(m.Output), len(ref.output))
	}
	for i := range ref.output {
		if !check.ValuesAgree(ref.output[i], m.Output[i], tol) {
			return fmt.Sprintf("on input %v: printed value %d is %s, want %s",
				ref.input, i, m.Output[i], ref.output[i])
		}
	}
	if exactMem && !memEqual(ref.mem, m.Mem) {
		return fmt.Sprintf("on input %v: final memory images differ", ref.input)
	}
	return ""
}

func memEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// safeOptimize runs the optimizer with panics converted into data.
func safeOptimize(ctx context.Context, p *ir.Program, level core.Level, optimize OptimizeFunc) (out *ir.Program, panicMsg string, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			panicMsg = fmt.Sprintf("optimizer panic: %v\n%s", r, buf)
		}
	}()
	out, err = optimize(ctx, p.Clone(), level)
	return out, "", err
}

// blamePass re-runs the level under per-pass translation validation
// and names the first pass with an error diagnostic.  Best effort: the
// real pipeline optimizes whole programs, so the blame run can only
// narrow, never widen, the already-established miscompile.
func blamePass(ctx context.Context, prog *ir.Program, level core.Level, v variant) string {
	_, diags, err := core.CheckedOptimizeFor(ctx, prog, level, v.gvn, v.pre)
	for _, d := range check.Errors(diags) {
		if d.Pass != "" {
			return fmt.Sprintf(" [blamed pass: %s]", d.Pass)
		}
	}
	if err != nil {
		return fmt.Sprintf(" [blame run failed: %v]", err)
	}
	return " [per-pass validation did not isolate a pass]"
}

// shrinkFailure reduces f.Program with delta debugging and updates the
// failure in place when a smaller reproducer is found.
func shrinkFailure(ctx context.Context, f *Failure, opt Options) {
	reduced, ok := Shrink(ctx, f.Program, ShrinkOptions{
		Level:    f.Level,
		Kind:     f.Kind,
		Optimize: opt.optimizeFor(variant{f.GVN, f.PRE}),
		MaxSteps: opt.maxSteps(),
	})
	if ok && reduced.InstrCount() < f.Program.InstrCount() {
		f.Program = reduced
		f.MinInstrs = reduced.InstrCount()
		f.Shrunk = true
	}
}

// writeArtifact persists one failure as an .iloc file whose leading
// comment block carries the metadata; the file reparses cleanly, so a
// reproducer is a single `epre run` away.
func writeArtifact(dir string, f *Failure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("%s-seed%d-%s", f.Kind, f.Seed, f.Level)
	if f.GVN != "" {
		name += "-gvn-" + string(f.GVN)
	}
	if f.PRE != "" {
		name += "-pre-" + string(f.PRE)
	}
	name += ".iloc"
	path := filepath.Join(dir, name)
	var b strings.Builder
	fmt.Fprintf(&b, "# difftest artifact\n")
	fmt.Fprintf(&b, "# kind: %s\n", f.Kind)
	fmt.Fprintf(&b, "# seed: %d\n", f.Seed)
	fmt.Fprintf(&b, "# level: %s\n", f.Level)
	if f.GVN != "" {
		fmt.Fprintf(&b, "# gvn: %s\n", f.GVN)
	}
	if f.PRE != "" {
		fmt.Fprintf(&b, "# pre: %s\n", f.PRE)
	}
	fmt.Fprintf(&b, "# shrunk: %v (%d -> %d instructions)\n", f.Shrunk, f.OrigInstrs, f.MinInstrs)
	for _, line := range strings.Split(f.Detail, "\n") {
		fmt.Fprintf(&b, "# detail: %s\n", line)
	}
	b.WriteString(f.Program.String())
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
