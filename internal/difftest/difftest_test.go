package difftest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/progen"
)

// smallConfig keeps test programs quick to generate and interpret.
func smallConfig() *progen.Config {
	cfg := progen.Default()
	cfg.Blocks = 4
	cfg.BlockInstrs = 5
	cfg.Fuel = 16
	return &cfg
}

// TestCleanPipeline runs the real optimizer over a batch of programs
// and expects zero failures: the repo's own pipeline must be clean.
func TestCleanPipeline(t *testing.T) {
	rep, err := Run(Options{Seed: 1, N: 25, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Programs != 25 {
		t.Fatalf("tested %d programs, want 25", rep.Programs)
	}
	for _, f := range rep.Failures {
		t.Errorf("unexpected failure: %s\n%s", f.String(), f.Program)
	}
}

// TestGVNDiffMode: cross-backend differential fuzzing — both GVN
// backends over the same programs, zero divergence expected from the
// repo's own pipeline, and the mode doubles only the levels that have
// a value-numbering slot.
func TestGVNDiffMode(t *testing.T) {
	rep, err := Run(Options{Seed: 1, N: 25, Workers: 4, GVNDiff: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Programs != 25 {
		t.Fatalf("tested %d programs, want 25", rep.Programs)
	}
	for _, f := range rep.Failures {
		t.Errorf("cross-backend divergence: %s\n%s", f.String(), f.Program)
	}

	// The backend fan-out applies exactly to the GVN-slot levels.
	var o Options
	o.GVNDiff = true
	for _, l := range core.Levels {
		got := len(o.variants(l))
		want := 1
		if l == core.LevelReassoc || l == core.LevelDist {
			want = 2
		}
		if got != want {
			t.Errorf("%s: tested with %d variants, want %d", l, got, want)
		}
	}
	if len(Options{}.variants(core.LevelDist)) != 1 {
		t.Error("GVNDiff off must test a single variant")
	}

	// A custom pipeline has no backend dimension; combining it with
	// GVNDiff must be rejected, not silently degraded.
	if _, err := Run(Options{N: 1, GVNDiff: true, Optimize: sabotage(core.LevelDist)}); err == nil {
		t.Error("GVNDiff with custom Optimize did not error")
	}
}

// TestPREDiffMode: cross-backend differential fuzzing over the three
// PRE backends — zero divergence expected from the repo's own pipeline,
// the fan-out applies exactly to the PRE-slot levels, and combining
// with GVNDiff tests the full backend product.
func TestPREDiffMode(t *testing.T) {
	rep, err := Run(Options{Seed: 1, N: 25, Workers: 4, PREDiff: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Programs != 25 {
		t.Fatalf("tested %d programs, want 25", rep.Programs)
	}
	for _, f := range rep.Failures {
		t.Errorf("cross-backend divergence: %s\n%s", f.String(), f.Program)
	}

	var o Options
	o.PREDiff = true
	for _, l := range core.Levels {
		got := len(o.variants(l))
		want := 1
		if l != core.LevelBaseline {
			want = 3
		}
		if got != want {
			t.Errorf("%s: tested with %d variants, want %d", l, got, want)
		}
	}
	o.GVNDiff = true
	if got := len(o.variants(core.LevelDist)); got != 6 {
		t.Errorf("GVNDiff+PREDiff at dist: %d variants, want the full 2x3 product", got)
	}
	if got := len(o.variants(core.LevelPartial)); got != 3 {
		t.Errorf("GVNDiff+PREDiff at partial: %d variants, want 3 (no GVN slot)", got)
	}

	if _, err := Run(Options{N: 1, PREDiff: true, Optimize: sabotage(core.LevelPartial)}); err == nil {
		t.Error("PREDiff with custom Optimize did not error")
	}
}

// TestPREDiffTagsBackend: a miscompile in PREDiff mode carries the PRE
// backend tag through the failure string and artifact naming.
func TestPREDiffTagsBackend(t *testing.T) {
	cfg := smallConfig()
	var f *Failure
	for seed := uint64(1); seed <= 20 && f == nil; seed++ {
		prog := progen.Generate(*cfg, seed)
		refs := referenceRuns(context.Background(), prog, 1<<20)
		f = testLevel(context.Background(), prog, refs, seed, core.LevelPartial,
			variant{core.GVNAWZ, core.PRELospre},
			Options{PREDiff: true, Optimize: sabotage(core.LevelPartial)})
	}
	if f == nil {
		t.Fatal("sabotaged pipeline not caught on any of 20 seeds")
	}
	if f.PRE != core.PRELospre {
		t.Errorf("failure PRE tag = %q, want lospre", f.PRE)
	}
	if !strings.Contains(f.String(), "pre=lospre") {
		t.Errorf("failure string does not name the backend: %s", f.String())
	}
}

// TestGVNDiffCatchesPreciseBug: a sabotaged precise backend (wrong
// result only when the precise pipeline runs) is caught and the
// failure names the backend.
func TestGVNDiffCatchesPreciseBug(t *testing.T) {
	// Sabotage cannot go through Options.Optimize in GVNDiff mode, so
	// simulate the harness's per-backend loop directly: testLevel with
	// a pipeline that miscompiles regardless of backend stands in for a
	// precise-only bug — what matters is the failure's GVN tag.
	cfg := smallConfig()
	var f *Failure
	for seed := uint64(1); seed <= 20 && f == nil; seed++ {
		prog := progen.Generate(*cfg, seed)
		refs := referenceRuns(context.Background(), prog, 1<<20)
		f = testLevel(context.Background(), prog, refs, seed, core.LevelDist,
			variant{core.GVNPrecise, core.PREDrechsler},
			Options{GVNDiff: true, Optimize: sabotage(core.LevelDist)})
	}
	if f == nil {
		t.Fatal("sabotaged pipeline not caught on any of 20 seeds")
	}
	if f.GVN != core.GVNPrecise {
		t.Errorf("failure GVN tag = %q, want precise", f.GVN)
	}
	if !strings.Contains(f.String(), "gvn=precise") {
		t.Errorf("failure string does not name the backend: %s", f.String())
	}
}

// sabotage wraps the real pipeline but, at the target level, flips
// every integer add in main to a subtract — a classic miscompile.
func sabotage(target core.Level) OptimizeFunc {
	return func(ctx context.Context, p *ir.Program, level core.Level) (*ir.Program, error) {
		out, err := core.OptimizeWith(p, level, core.OptimizeOptions{Ctx: ctx})
		if err != nil || level != target {
			return out, err
		}
		if f := out.Func("main"); f != nil {
			for _, b := range f.Blocks {
				for _, inID := range b.Instrs {
					in := b.Fn.Instr(inID)
					if in.Op == ir.OpAdd {
						in.Op = ir.OpSub
					}
				}
			}
		}
		return out, nil
	}
}

// TestInjectedBugCaughtAndShrunk is the oracle's acceptance test: a
// deliberately broken pass must be detected as a miscompile at exactly
// the broken level, and the reducer must shrink the reproducer to a
// handful of instructions (the ISSUE's bound is 25).
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run(Options{
		Seed:        1,
		N:           3,
		Config:      smallConfig(),
		Optimize:    sabotage(core.LevelPartial),
		Shrink:      true,
		ArtifactDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("injected bug was not detected")
	}
	for _, f := range rep.Failures {
		if f.Kind != KindMiscompile {
			t.Errorf("failure classified as %s, want %s: %s", f.Kind, KindMiscompile, f.Detail)
		}
		if f.Level != core.LevelPartial {
			t.Errorf("failure blamed on level %s, want %s", f.Level, core.LevelPartial)
		}
		if !f.Shrunk {
			t.Errorf("seed %d: failure was not shrunk (%d instrs)", f.Seed, f.OrigInstrs)
		}
		if f.MinInstrs > 25 {
			t.Errorf("seed %d: minimized reproducer has %d instructions, want <= 25:\n%s",
				f.Seed, f.MinInstrs, f.Program)
		}
		if f.MinInstrs >= f.OrigInstrs {
			t.Errorf("seed %d: shrink did not reduce (%d -> %d)", f.Seed, f.OrigInstrs, f.MinInstrs)
		}
		// The artifact must exist, carry its metadata header, and
		// reparse to a verifiable program.
		if f.Artifact == "" {
			t.Fatalf("seed %d: no artifact written", f.Seed)
		}
		data, err := os.ReadFile(f.Artifact)
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		for _, want := range []string{
			"# kind: miscompile",
			fmt.Sprintf("# seed: %d", f.Seed),
			"# level: partial",
			"# shrunk: true",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("artifact missing %q", want)
			}
		}
		back, err := ir.ParseProgramString(text)
		if err != nil {
			t.Fatalf("artifact does not reparse: %v", err)
		}
		if err := ir.VerifyProgram(back); err != nil {
			t.Fatalf("reparsed artifact does not verify: %v", err)
		}
	}
	// Clean levels must not be blamed.
	for _, f := range rep.Failures {
		if f.Level == core.LevelBaseline || f.Level == core.LevelReassoc || f.Level == core.LevelDist {
			t.Errorf("clean level %s reported a failure", f.Level)
		}
	}
	names, _ := filepath.Glob(filepath.Join(dir, "miscompile-seed*-partial.iloc"))
	if len(names) != len(rep.Failures) {
		t.Errorf("found %d artifacts for %d failures", len(names), len(rep.Failures))
	}
}

// TestWorkerDeterminism: the report — failures, order, details,
// reproducer bytes — must be identical for any worker count.
func TestWorkerDeterminism(t *testing.T) {
	run := func(workers int) *Report {
		rep, err := Run(Options{
			Seed:     10,
			N:        8,
			Config:   smallConfig(),
			Optimize: sabotage(core.LevelBaseline),
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1)
	parallel := run(4)
	if len(serial.Failures) == 0 {
		t.Fatal("expected failures from the sabotaged pipeline")
	}
	if len(serial.Failures) != len(parallel.Failures) {
		t.Fatalf("worker count changed failure count: %d vs %d",
			len(serial.Failures), len(parallel.Failures))
	}
	for i := range serial.Failures {
		a, b := serial.Failures[i], parallel.Failures[i]
		if a.Seed != b.Seed || a.Level != b.Level || a.Kind != b.Kind || a.Detail != b.Detail {
			t.Errorf("failure %d differs across worker counts:\n  serial:   %s\n  parallel: %s",
				i, a.String(), b.String())
		}
		if a.Program.String() != b.Program.String() {
			t.Errorf("failure %d: reproducer bytes differ across worker counts", i)
		}
	}
}

// TestClassifyPanic: an optimizer panic is caught, classified, and
// does not take down the run.
func TestClassifyPanic(t *testing.T) {
	boom := func(ctx context.Context, p *ir.Program, level core.Level) (*ir.Program, error) {
		if level == core.LevelDist {
			panic("injected panic")
		}
		return core.OptimizeWith(p, level, core.OptimizeOptions{Ctx: ctx})
	}
	rep, err := Run(Options{Seed: 3, N: 2, Config: smallConfig(), Optimize: boom})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.ByKind[KindPanic]; got != 2 {
		t.Fatalf("got %d panic failures, want 2 (one per program at dist)", got)
	}
	for _, f := range rep.Failures {
		if f.Kind == KindPanic && !strings.Contains(f.Detail, "injected panic") {
			t.Errorf("panic detail lost: %q", f.Detail)
		}
	}
}

// TestClassifyVerifierReject: structurally invalid output is caught by
// the whole-program verify and classified distinctly from miscompiles.
func TestClassifyVerifierReject(t *testing.T) {
	mangle := func(ctx context.Context, p *ir.Program, level core.Level) (*ir.Program, error) {
		out, err := core.OptimizeWith(p, level, core.OptimizeOptions{Ctx: ctx})
		if err != nil || level != core.LevelBaseline {
			return out, err
		}
		// Chop the terminator off main's last block.
		f := out.Func("main")
		b := f.Blocks[len(f.Blocks)-1]
		b.Instrs = b.Instrs[:len(b.Instrs)-1]
		return out, nil
	}
	rep, err := Run(Options{Seed: 4, N: 1, Config: smallConfig(), Optimize: mangle})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.ByKind[KindVerifierReject]; got != 1 {
		t.Fatalf("got %d verifier rejections, want 1 (kinds: %v)", got, rep.ByKind)
	}
}

// TestClassifyTimeout: an expired context yields timeout
// classifications, never spurious miscompiles.
func TestClassifyTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	slow := func(c context.Context, p *ir.Program, level core.Level) (*ir.Program, error) {
		cancel() // expire mid-run, after generation
		return core.OptimizeWith(p, level, core.OptimizeOptions{Ctx: c})
	}
	rep, err := Run(Options{Ctx: ctx, Seed: 5, N: 1, Config: smallConfig(), Optimize: slow})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		if f.Kind != KindTimeout {
			t.Errorf("cancelled run produced %s (%s), want only timeouts", f.Kind, f.Detail)
		}
	}
}

// TestCancelledBeforeStart: a context that is already dead produces an
// error, not an empty "all clear" report.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(Options{Ctx: ctx, N: 5}); err == nil {
		t.Fatal("expected an error from a pre-cancelled run")
	}
}

// TestPerPassBlame: with PerPass on, a miscompile's detail names the
// pass the per-pass validation isolated (here the whole level is
// sabotaged post-pipeline, so blame cannot isolate a real pass — the
// detail must say so rather than guess).
func TestPerPassBlame(t *testing.T) {
	rep, err := Run(Options{
		Seed:     1,
		N:        4,
		Config:   smallConfig(),
		Optimize: sabotage(core.LevelPartial),
		Levels:   []core.Level{core.LevelPartial},
		PerPass:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("got no failures from the sabotaged pipeline")
	}
	d := rep.Failures[0].Detail
	if !strings.Contains(d, "blamed pass") && !strings.Contains(d, "per-pass validation") {
		t.Errorf("per-pass blame left no trace in detail: %q", d)
	}
}

// TestMetrics: counters reflect the run.
func TestMetrics(t *testing.T) {
	m := NewMetrics()
	rep, err := Run(Options{
		Seed: 2, N: 4, Config: smallConfig(),
		Optimize: sabotage(core.LevelBaseline),
		Levels:   []core.Level{core.LevelBaseline},
		Metrics:  m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Get("programs"); got != 4 {
		t.Errorf("programs counter = %d, want 4", got)
	}
	if got := m.Get("failures"); got != int64(len(rep.Failures)) {
		t.Errorf("failures counter = %d, want %d", got, len(rep.Failures))
	}
	var b strings.Builder
	m.WriteTo(&b)
	if !strings.Contains(b.String(), "programs_per_second") {
		t.Errorf("metrics JSON missing rate gauge: %s", b.String())
	}
}

// TestShrinkPreservesKind: the reducer never accepts a candidate whose
// failure class drifts — reducing a miscompile cannot return a program
// that merely panics.
func TestShrinkPreservesKind(t *testing.T) {
	prog := progen.Generate(*smallConfig(), 1)
	reduced, ok := Shrink(context.Background(), prog, ShrinkOptions{
		Level:    core.LevelPartial,
		Kind:     KindMiscompile,
		Optimize: sabotage(core.LevelPartial),
		MaxSteps: 1 << 20,
	})
	if !ok {
		t.Fatal("shrink made no progress on a sabotaged program")
	}
	if err := ir.VerifyProgram(reduced); err != nil {
		t.Fatalf("reduced program does not verify: %v", err)
	}
	refs := referenceRuns(context.Background(), reduced, 1<<20)
	f := testLevel(context.Background(), reduced, refs, 1, core.LevelPartial,
		variant{core.GVNAWZ, core.PREDrechsler},
		Options{Optimize: sabotage(core.LevelPartial)})
	if f == nil || f.Kind != KindMiscompile {
		t.Fatalf("reduced program no longer reproduces the miscompile: %+v", f)
	}
}

// TestShrinkBudget: reduction respects its attempt budget and context.
func TestShrinkBudget(t *testing.T) {
	prog := progen.Generate(*smallConfig(), 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		Shrink(context.Background(), prog, ShrinkOptions{
			Level:       core.LevelPartial,
			Kind:        KindMiscompile,
			Optimize:    sabotage(core.LevelPartial),
			MaxSteps:    1 << 20,
			MaxAttempts: 10,
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shrink with a 10-attempt budget did not return promptly")
	}
}
