package difftest

import (
	"expvar"
	"fmt"
	"io"
)

// Metrics is the fuzzing run's observability surface, mirroring the
// serve daemon's expvar pattern: per-instance, never registered in the
// process-global namespace, safe for concurrent update from the worker
// pool.
type Metrics struct {
	programs expvar.Int // programs generated and tested
	failures expvar.Int // total failures across all classes
	byKind   expvar.Map // failure class -> count
	elapsedS expvar.Float
	rate     expvar.Float // programs per second
	top      expvar.Map
}

// NewMetrics builds an unpublished metrics set.
func NewMetrics() *Metrics {
	m := &Metrics{}
	m.byKind.Init()
	m.top.Init()
	m.top.Set("programs", &m.programs)
	m.top.Set("failures", &m.failures)
	m.top.Set("failures_by_kind", &m.byKind)
	m.top.Set("elapsed_seconds", &m.elapsedS)
	m.top.Set("programs_per_second", &m.rate)
	return m
}

// observeReport folds a finished run's aggregates into the counters.
func (m *Metrics) observeReport(rep *Report) {
	m.failures.Add(int64(len(rep.Failures)))
	for kind, n := range rep.ByKind {
		m.byKind.Add(string(kind), int64(n))
	}
	secs := rep.Elapsed.Seconds()
	m.elapsedS.Set(secs)
	if secs > 0 {
		m.rate.Set(float64(rep.Programs) / secs)
	}
}

// Get returns a named counter, for tests.
func (m *Metrics) Get(name string) int64 {
	if v, ok := m.top.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// WriteTo renders the metrics as an expvar-style JSON document.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	n, err := fmt.Fprintf(w, "%s\n", m.top.String())
	return int64(n), err
}
