package difftest

import (
	"context"

	"repro/internal/core"
	"repro/internal/ir"
)

// ShrinkOptions configure the reducer.
type ShrinkOptions struct {
	// Level and Kind pin the failure being reduced: a candidate is
	// accepted only if it still fails with the same kind at the same
	// level, so reduction can never wander onto a different bug.
	Level core.Level
	Kind  Kind
	// Optimize is the pipeline under test (same seam as Options).
	Optimize OptimizeFunc
	// MaxSteps bounds each reference execution during the predicate.
	MaxSteps int64
	// MaxAttempts bounds total predicate evaluations (default 2500) —
	// each evaluation optimizes and interprets the candidate, so the
	// budget is what keeps reduction of a stubborn program bounded.
	MaxAttempts int
}

func (o ShrinkOptions) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return 2500
	}
	return o.MaxAttempts
}

// Shrink reduces a failing program by delta debugging.  Candidates are
// produced by four structural simplifications — dropping whole helper
// functions, dropping blocks, dropping instruction runs (at halving
// granularities, ddmin style), and replacing pure instructions with
// constant zeros — and a candidate is kept only when it (a) still
// passes the structural verifier and (b) still reproduces the pinned
// failure.  Invalid or non-reproducing candidates are discarded, so
// every intermediate state of the reduction is itself a valid, failing
// reproducer; cancellation simply stops early with the best so far.
//
// The second return is false when no candidate was accepted (the
// original is already minimal or the budget was spent fruitlessly).
func Shrink(ctx context.Context, prog *ir.Program, opt ShrinkOptions) (*ir.Program, bool) {
	attempts := 0
	try := func(cand *ir.Program) bool {
		if cand == nil || attempts >= opt.maxAttempts() || ctx.Err() != nil {
			return false
		}
		attempts++
		return reproduces(ctx, cand, opt)
	}

	cur := prog
	shrunk := false
	for {
		improved := false

		// 1. Drop helper functions (biggest single win).
		for fi := len(cur.Funcs) - 1; fi >= 1; fi-- {
			if cand := dropFunc(cur, fi); try(cand) {
				cur, improved, shrunk = cand, true, true
			}
		}

		// 2. Drop whole blocks, later blocks first so indices of the
		// blocks still to be visited stay valid after an acceptance.
		for fi := range cur.Funcs {
			for bi := len(cur.Funcs[fi].Blocks) - 1; bi >= 1; bi-- {
				if cand := dropBlock(cur, fi, bi); try(cand) {
					cur, improved, shrunk = cand, true, true
				}
			}
		}

		// 3. Simplify conditional branches to one-armed jumps.
		for fi := range cur.Funcs {
			for bi := range cur.Funcs[fi].Blocks {
				for keep := 0; keep < 2; keep++ {
					if cand := cbrToJump(cur, fi, bi, keep); try(cand) {
						cur, improved, shrunk = cand, true, true
					}
				}
			}
		}

		// 4. Drop instruction runs, halving the chunk size (ddmin).
		for fi := range cur.Funcs {
			for bi := range cur.Funcs[fi].Blocks {
				n := len(cur.Funcs[fi].Blocks[bi].Instrs)
				for chunk := n/2 + 1; chunk >= 1; chunk /= 2 {
					lo := 0
					for lo < len(cur.Funcs[fi].Blocks[bi].Instrs) {
						cand := dropInstrs(cur, fi, bi, lo, lo+chunk)
						if try(cand) {
							cur, improved, shrunk = cand, true, true
							continue // same lo: the slice shifted left
						}
						lo += chunk
					}
				}
			}
		}

		// 5. Replace pure computations with constant zeros, severing
		// operand chains so earlier stages can delete their inputs on
		// the next round.
		for fi := range cur.Funcs {
			for bi := range cur.Funcs[fi].Blocks {
				for ii := 0; ii < len(cur.Funcs[fi].Blocks[bi].Instrs); ii++ {
					if cand := constify(cur, fi, bi, ii); try(cand) {
						cur, improved, shrunk = cand, true, true
					}
				}
			}
		}

		if !improved || attempts >= opt.maxAttempts() || ctx.Err() != nil {
			return cur, shrunk
		}
	}
}

// reproduces reports whether the candidate still fails with the pinned
// kind at the pinned level.
func reproduces(ctx context.Context, cand *ir.Program, opt ShrinkOptions) bool {
	if ir.VerifyProgram(cand) != nil {
		return false
	}
	refs := referenceRuns(ctx, cand, opt.MaxSteps)
	// The variant argument is irrelevant here: ShrinkOptions.Optimize is
	// always set and already bound to the failing pipeline variant.
	f := testLevel(ctx, cand, refs, 0, opt.Level, variant{core.GVNAWZ, core.PREDrechsler}, Options{
		Optimize: opt.Optimize,
		MaxSteps: opt.MaxSteps,
	})
	return f != nil && f.Kind == opt.Kind
}

// dropFunc removes function fi (never main, index 0).  Calls to it
// would trap in the reference run, making every input unjudgable, so
// the candidate only survives when the function was genuinely
// irrelevant to the failure.
func dropFunc(p *ir.Program, fi int) *ir.Program {
	if fi <= 0 || fi >= len(p.Funcs) {
		return nil
	}
	q := p.Clone()
	q.Funcs = append(q.Funcs[:fi], q.Funcs[fi+1:]...)
	return q
}

// dropBlock removes block bi of function fi, unlinking every edge and
// repairing the terminators of its former predecessors.
func dropBlock(p *ir.Program, fi, bi int) *ir.Program {
	q := p.Clone()
	f := q.Funcs[fi]
	if bi <= 0 || bi >= len(f.Blocks) {
		return nil
	}
	b := f.Blocks[bi]
	for len(b.Preds) > 0 {
		pred := b.Preds[0]
		if pred == b {
			// Self-loop: drop the edge on the successor side only.
			ir.RemoveEdge(b, b)
			continue
		}
		ir.RemoveEdge(pred, b)
		fixTerminator(pred)
	}
	for len(b.Succs) > 0 {
		ir.RemoveEdge(b, b.Succs[0])
	}
	f.RemoveBlocks(func(x *ir.Block) bool { return x == b })
	return q
}

// fixTerminator rewrites a block's terminator to match its remaining
// successor count after edge removal: a one-armed cbr becomes a jump,
// a zero-armed branch becomes a return.
func fixTerminator(b *ir.Block) {
	t := b.Terminator()
	if t == nil {
		return
	}
	switch {
	case t.Op == ir.OpCBr && len(b.Succs) == 1:
		t.Op = ir.OpJump
		t.Args = nil
	case (t.Op == ir.OpCBr || t.Op == ir.OpJump) && len(b.Succs) == 0:
		t.Op = ir.OpRet
		t.Args = nil
	}
}

// cbrToJump keeps exactly one arm of a conditional branch.
func cbrToJump(p *ir.Program, fi, bi, keep int) *ir.Program {
	q := p.Clone()
	b := q.Funcs[fi].Blocks[bi]
	t := b.Terminator()
	if t == nil || t.Op != ir.OpCBr || len(b.Succs) != 2 || keep > 1 {
		return nil
	}
	drop := b.Succs[1-keep]
	ir.RemoveEdge(b, drop)
	t.Op = ir.OpJump
	t.Args = nil
	return q
}

// dropInstrs removes the removable instructions with index in [lo,hi)
// of the block — everything except enter, φ-nodes and the terminator.
// Returns nil when the range removes nothing.
func dropInstrs(p *ir.Program, fi, bi, lo, hi int) *ir.Program {
	q := p.Clone()
	b := q.Funcs[fi].Blocks[bi]
	kept := b.Instrs[:0]
	dropped := 0
	for i, inID := range b.Instrs {
		in := b.Fn.Instr(inID)
		removable := i >= lo && i < hi &&
			in.Op != ir.OpEnter && in.Op != ir.OpPhi && !in.Op.IsTerminator()
		if removable {
			dropped++
			continue
		}
		kept = append(kept, inID)
	}
	if dropped == 0 {
		return nil
	}
	b.Instrs = kept
	q.Funcs[fi].MarkCodeMutated()
	return q
}

// constify replaces a pure value-producing instruction with a load of
// constant zero (of the matching type), preserving the definition but
// severing its operand dependencies.
func constify(p *ir.Program, fi, bi, ii int) *ir.Program {
	q := p.Clone()
	b := q.Funcs[fi].Blocks[bi]
	if ii >= len(b.Instrs) {
		return nil
	}
	in := b.Instr(ii)
	if !in.Op.Pure() || in.Dst == ir.NoReg || in.IsConst() ||
		in.Op == ir.OpPhi || in.Op == ir.OpEnter || len(in.Args) == 0 {
		return nil
	}
	if in.Op.Float() {
		in.SetLoadF(0)
	} else {
		in.SetLoadI(0)
	}
	q.Funcs[fi].MarkCodeMutated()
	return q
}
