package gvn

// ClassesForTest exposes the congruence partitioner to the external
// regression test, which compares it against the retired byte-string
// keying implementation.
var ClassesForTest = classes
