// Package gvn implements partition-based global value numbering and the
// global renaming scheme of the paper's §3.2.
//
// The analysis is Alpern, Wegman and Zadeck's optimistic congruence
// partitioning ("Detecting equality of variables in programs", POPL
// 1988) in its simplest variation, exactly the one the paper reports
// using ("Our implementation of global value numbering uses the
// simplest variation described by Alpern, Wegman, and Zadeck", §4):
// all values start optimistically merged by operator and the partition
// is refined — split — until operand classes agree position-wise.
// Congruences that hold only through loops (e.g. two separately named
// induction variables with identical updates) survive because the
// partition only splits on disproof.
//
// Renaming then encodes the discovered equivalences into the name
// space: every member of a congruence class is renamed to one
// representative register, so lexically identical expressions carry
// identical names — the precondition PRE needs (§2.2).  φ-targets and
// the copies that replace φs are the only "variable names"; everything
// else is an "expression name".  No instruction is added, deleted, or
// moved, exactly as the paper specifies.
package gvn

import (
	"math"
	"sort"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// Stats reports the outcome of a GVN run.
type Stats struct {
	Values  int // SSA values considered
	Classes int // final congruence classes
	PhiDups int // duplicate φ-nodes removed after renaming
}

// Run performs global value numbering on f: it builds pruned SSA
// (folding copies), partitions the values into congruence classes,
// renames every value to its class representative, removes duplicated
// φ-nodes, and translates out of SSA by inserting copies.  The
// function is modified in place.
func Run(f *ir.Func) Stats {
	return RunWith(f, analysis.NewCache(f))
}

// RunWith is Run drawing CFG analyses from the given cache: when the
// CFG has not changed since a previous pass built the dominator tree,
// SSA construction here reuses it.
func RunWith(f *ir.Func, ac *analysis.Cache) Stats {
	ssa.BuildWith(f, ssa.BuildOptions{Prune: true, FoldCopies: true}, ac)
	st := Partition(f)
	ssa.DestructWith(f, ac)
	return st
}

// def describes the defining site of one SSA value.
type def struct {
	in    *ir.Instr
	block *ir.Block
	// enterIdx is the parameter position when in.Op == OpEnter,
	// else -1.
	enterIdx int
}

// initKey is the structured operator-level identity of a value — what
// the byte-buffer keys of the original implementation spelled out with
// encoding/binary.  kind disambiguates the payload space: 'p' enter
// parameter (position), 'c'/'f' integer/float constant (value bits),
// 'F' φ (block), 'u' opaque load/call result (the register itself),
// 'o' ordinary operator (opcode).  Being a comparable struct it keys a
// Go map directly, with no per-intern allocation.
type initKey struct {
	kind    uint8
	payload uint64
}

// initSentinel starts every refinement hash chain (see classes): fold
// ids are assigned sequentially from zero, so the sentinel in the high
// word can never collide with a real chain prefix.
const initSentinel = uint64(0xFFFFFFFF) << 32

// classes computes the coarsest congruence partition of f's SSA
// values.  It returns the values in ascending register order and a
// register-indexed table of class ids (0 marks a register that is not
// an SSA value).  Two values are congruent exactly when their class
// ids are equal.
//
// The refinement key of a value is its initial operator key plus the
// classes of its operands, position-wise.  Instead of spelling that
// tuple into a byte buffer and interning it through map[string]uint32
// (an allocation per value per round), the tuple is folded pairwise
// through an integer-keyed map: h₀ = intern(sentinel | init), hᵢ =
// intern(hᵢ₋₁ · classᵢ).  Each intern is a bijection between (prefix,
// class) pairs and fresh ids, so equal final ids mean equal tuples —
// the same partition the byte keys produced, without the buffers.
func classes(f *ir.Func) ([]ir.Reg, []uint32) {
	nr := f.NumRegs()
	defs := make([]def, nr)
	values := make([]ir.Reg, 0, nr)
	addValue := func(r ir.Reg, d def) {
		if defs[r].in != nil {
			// Multiple defs: not SSA; keep the first, the partition
			// will simply be conservative for this register.
			return
		}
		defs[r] = d
		values = append(values, r)
	}
	for _, b := range f.Blocks {
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpEnter {
				for i, p := range in.Args {
					addValue(p, def{in: in, block: b, enterIdx: i})
				}
				continue
			}
			if in.Dst != ir.NoReg {
				addValue(in.Dst, def{in: in, block: b, enterIdx: -1})
			}
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })

	// Initial optimistic partition over structured keys.
	initID := make([]uint32, nr)
	keyIDs := make(map[initKey]uint32, len(values))
	for _, v := range values {
		d := defs[v]
		var k initKey
		switch {
		case d.enterIdx >= 0:
			k = initKey{'p', uint64(d.enterIdx)}
		case d.in.Op == ir.OpLoadI:
			k = initKey{'c', uint64(d.in.Imm)}
		case d.in.Op == ir.OpLoadF:
			k = initKey{'f', floatBitsOf(d.in.FImm)}
		case d.in.Op == ir.OpPhi:
			k = initKey{'F', uint64(d.block.ID)}
		case d.in.Op == ir.OpCall || d.in.Op.IsLoad():
			// Loads and call results are opaque: singleton classes.
			k = initKey{'u', uint64(v)}
		default:
			k = initKey{'o', uint64(d.in.Op)}
		}
		id, ok := keyIDs[k]
		if !ok {
			id = uint32(len(keyIDs) + 1)
			keyIDs[k] = id
		}
		initID[v] = id
	}

	// Refine to the coarsest congruence.  The fold map and the class
	// tables are the only per-round state, and all of them are reused
	// round over round (the map via clear, the tables by swapping).
	class := make([]uint32, nr)
	next := make([]uint32, nr)
	for _, v := range values {
		class[v] = initID[v]
	}
	classOf := func(r ir.Reg) uint32 {
		if int(r) < nr {
			if c := class[r]; c != 0 {
				return c
			}
		}
		// Uses of registers with no def (should not happen after SSA
		// construction): unique by register.
		return ^uint32(r)
	}
	fold := make(map[uint64]uint32, len(values))
	var foldID uint32
	intern := func(k uint64) uint32 {
		id, ok := fold[k]
		if !ok {
			foldID++
			id = foldID
			fold[k] = id
		}
		return id
	}
	var seen []bool // marks final ids when counting classes per round
	prevCount := -1
	for {
		clear(fold)
		foldID = 0
		for _, v := range values {
			d := defs[v]
			h := intern(initSentinel | uint64(initID[v]))
			if d.enterIdx < 0 && d.in.Op != ir.OpLoadI && d.in.Op != ir.OpLoadF {
				for _, a := range d.in.Args {
					h = intern(uint64(h)<<32 | uint64(classOf(a)))
				}
			}
			next[v] = h
		}
		// Count distinct classes (final ids only; the fold counter
		// also numbers intermediate prefixes).
		if int(foldID)+1 > len(seen) {
			seen = make([]bool, foldID+1)
		} else {
			clear(seen[:foldID+1])
		}
		count := 0
		for _, v := range values {
			if !seen[next[v]] {
				seen[next[v]] = true
				count++
			}
		}
		class, next = next, class
		same := count == prevCount
		prevCount = count
		if same {
			break
		}
	}
	return values, class
}

// Partition value-numbers an SSA-form function and renames values to
// class representatives in place (leaving the function in SSA form,
// with duplicate φs removed).  Exposed separately so callers that
// manage SSA themselves can reuse it; most callers want Run.
func Partition(f *ir.Func) Stats {
	values, class := classes(f)
	return renameToReps(f, values, class)
}

// AWZClasses exposes the AWZ congruence partition of an SSA-form
// function without renaming: the values in ascending register order
// and a register-indexed class table (0 marks a non-value register).
// The refinement tests and the gvncompare report consume it to compare
// the two backends' partitions on identical SSA input.
func AWZClasses(f *ir.Func) ([]ir.Reg, []uint32) { return classes(f) }

// renameToReps encodes a congruence partition into the name space:
// every member of a class is renamed to one representative register
// and duplicated φ-nodes are removed.  Shared by both GVN backends —
// they differ only in how the partition is computed.
func renameToReps(f *ir.Func, values []ir.Reg, class []uint32) Stats {
	// Pick one representative register per class and rewrite.  Values
	// are visited in ascending register order, so representative
	// numbering is deterministic and independent of how the class ids
	// happen to be numbered.
	var maxClass uint32
	for _, v := range values {
		if class[v] > maxClass {
			maxClass = class[v]
		}
	}
	rep := make([]ir.Reg, maxClass+1)
	nClasses := 0
	for _, v := range values {
		if c := class[v]; rep[c] == ir.NoReg {
			rep[c] = f.NewReg()
			nClasses++
		}
	}
	rename := func(r ir.Reg) ir.Reg {
		if int(r) < len(class) {
			if c := class[r]; c != 0 {
				return rep[c]
			}
		}
		return r
	}
	st := Stats{Values: len(values), Classes: nClasses}
	var phiSeen []ir.Reg // φ-dsts already kept in the current block
	for _, b := range f.Blocks {
		phiSeen = phiSeen[:0]
		kept := b.Instrs[:0]
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			for i, a := range in.Args {
				if in.Op != ir.OpEnter {
					in.Args[i] = rename(a)
				}
			}
			if in.Op == ir.OpEnter {
				for i, p := range in.Args {
					in.Args[i] = rename(p)
					if i < len(f.Params) {
						f.Params[i] = in.Args[i]
					}
				}
			}
			if in.Dst != ir.NoReg {
				in.Dst = rename(in.Dst)
			}
			if in.Op == ir.OpPhi {
				dup := false
				for _, d := range phiSeen {
					if d == in.Dst {
						dup = true
						break
					}
				}
				if dup {
					st.PhiDups++
					continue // congruent φ already present
				}
				phiSeen = append(phiSeen, in.Dst)
			}
			kept = append(kept, inID)
		}
		b.Instrs = kept
	}
	// Renaming rewrites instructions in place, bypassing the Block
	// helpers.
	f.MarkCodeMutated()
	return st
}

func floatBitsOf(f float64) uint64 { return math.Float64bits(f) }
