// Package gvn implements partition-based global value numbering and the
// global renaming scheme of the paper's §3.2.
//
// The analysis is Alpern, Wegman and Zadeck's optimistic congruence
// partitioning ("Detecting equality of variables in programs", POPL
// 1988) in its simplest variation, exactly the one the paper reports
// using ("Our implementation of global value numbering uses the
// simplest variation described by Alpern, Wegman, and Zadeck", §4):
// all values start optimistically merged by operator and the partition
// is refined — split — until operand classes agree position-wise.
// Congruences that hold only through loops (e.g. two separately named
// induction variables with identical updates) survive because the
// partition only splits on disproof.
//
// Renaming then encodes the discovered equivalences into the name
// space: every member of a congruence class is renamed to one
// representative register, so lexically identical expressions carry
// identical names — the precondition PRE needs (§2.2).  φ-targets and
// the copies that replace φs are the only "variable names"; everything
// else is an "expression name".  No instruction is added, deleted, or
// moved, exactly as the paper specifies.
package gvn

import (
	"encoding/binary"
	"math"
	"sort"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// Stats reports the outcome of a GVN run.
type Stats struct {
	Values  int // SSA values considered
	Classes int // final congruence classes
	PhiDups int // duplicate φ-nodes removed after renaming
}

// Run performs global value numbering on f: it builds pruned SSA
// (folding copies), partitions the values into congruence classes,
// renames every value to its class representative, removes duplicated
// φ-nodes, and translates out of SSA by inserting copies.  The
// function is modified in place.
func Run(f *ir.Func) Stats {
	return RunWith(f, analysis.NewCache(f))
}

// RunWith is Run drawing CFG analyses from the given cache: when the
// CFG has not changed since a previous pass built the dominator tree,
// SSA construction here reuses it.
func RunWith(f *ir.Func, ac *analysis.Cache) Stats {
	ssa.BuildWith(f, ssa.BuildOptions{Prune: true, FoldCopies: true}, ac)
	st := Partition(f)
	ssa.DestructWith(f, ac)
	return st
}

// Partition value-numbers an SSA-form function and renames values to
// class representatives in place (leaving the function in SSA form,
// with duplicate φs removed).  Exposed separately so callers that
// manage SSA themselves can reuse it; most callers want Run.
func Partition(f *ir.Func) Stats {
	type def struct {
		in    *ir.Instr
		block *ir.Block
		// enterIdx is the parameter position when in.Op == OpEnter,
		// else -1.
		enterIdx int
	}
	defs := map[ir.Reg]def{}
	var values []ir.Reg
	addValue := func(r ir.Reg, d def) {
		if _, dup := defs[r]; dup {
			// Multiple defs: not SSA; keep the first, the partition
			// will simply be conservative for this register.
			return
		}
		defs[r] = d
		values = append(values, r)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpEnter {
				for i, p := range in.Args {
					addValue(p, def{in: in, block: b, enterIdx: i})
				}
				continue
			}
			if in.Dst != ir.NoReg {
				addValue(in.Dst, def{in: in, block: b, enterIdx: -1})
			}
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })

	// Initial optimistic partition.
	initID := map[ir.Reg]uint32{}
	keyIDs := map[string]uint32{}
	intern := func(k []byte) uint32 {
		id, ok := keyIDs[string(k)]
		if !ok {
			id = uint32(len(keyIDs) + 1)
			keyIDs[string(k)] = id
		}
		return id
	}
	var buf []byte
	for _, v := range values {
		d := defs[v]
		buf = buf[:0]
		switch {
		case d.enterIdx >= 0:
			buf = append(buf, 'p')
			buf = binary.AppendUvarint(buf, uint64(d.enterIdx))
		case d.in.Op == ir.OpLoadI:
			buf = append(buf, 'c')
			buf = binary.AppendVarint(buf, d.in.Imm)
		case d.in.Op == ir.OpLoadF:
			buf = append(buf, 'f')
			buf = binary.AppendUvarint(buf, floatBitsOf(d.in.FImm))
		case d.in.Op == ir.OpPhi:
			buf = append(buf, 'F')
			buf = binary.AppendUvarint(buf, uint64(d.block.ID))
		case d.in.Op == ir.OpCall || d.in.Op.IsLoad():
			// Loads and call results are opaque: singleton classes.
			buf = append(buf, 'u')
			buf = binary.AppendUvarint(buf, uint64(v))
		default:
			buf = append(buf, 'o', byte(d.in.Op))
		}
		initID[v] = intern(buf)
	}

	// Refine to the coarsest congruence: a value's key is its initial
	// key plus the classes of its operands, position-wise.
	class := map[ir.Reg]uint32{}
	for _, v := range values {
		class[v] = initID[v]
	}
	classOf := func(r ir.Reg) uint32 {
		if c, ok := class[r]; ok {
			return c
		}
		// Uses of registers with no def (should not happen after SSA
		// construction): unique by register.
		return ^uint32(r)
	}
	prevCount := -1
	for {
		next := map[ir.Reg]uint32{}
		ids := map[string]uint32{}
		for _, v := range values {
			d := defs[v]
			buf = buf[:0]
			buf = binary.AppendUvarint(buf, uint64(initID[v]))
			if d.enterIdx < 0 && d.in.Op != ir.OpLoadI && d.in.Op != ir.OpLoadF {
				for _, a := range d.in.Args {
					buf = binary.AppendUvarint(buf, uint64(classOf(a)))
				}
			}
			id, ok := ids[string(buf)]
			if !ok {
				id = uint32(len(ids) + 1)
				ids[string(buf)] = id
			}
			next[v] = id
		}
		count := len(ids)
		same := count == prevCount
		prevCount = count
		class = next
		if same {
			break
		}
	}

	// Pick one representative register per class and rewrite.
	rep := map[uint32]ir.Reg{}
	for _, v := range values {
		c := class[v]
		if _, ok := rep[c]; !ok {
			rep[c] = f.NewReg()
		}
	}
	rename := func(r ir.Reg) ir.Reg {
		if c, ok := class[r]; ok {
			return rep[c]
		}
		return r
	}
	st := Stats{Values: len(values), Classes: len(rep)}
	for _, b := range f.Blocks {
		seenPhi := map[ir.Reg]bool{}
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if in.Op != ir.OpEnter {
					in.Args[i] = rename(a)
				}
			}
			if in.Op == ir.OpEnter {
				for i, p := range in.Args {
					in.Args[i] = rename(p)
					if i < len(f.Params) {
						f.Params[i] = in.Args[i]
					}
				}
			}
			if in.Dst != ir.NoReg {
				in.Dst = rename(in.Dst)
			}
			if in.Op == ir.OpPhi {
				if seenPhi[in.Dst] {
					st.PhiDups++
					continue // congruent φ already present
				}
				seenPhi[in.Dst] = true
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	// Renaming rewrites instructions in place, bypassing the Block
	// helpers.
	f.MarkCodeMutated()
	return st
}

func floatBitsOf(f float64) uint64 { return math.Float64bits(f) }
