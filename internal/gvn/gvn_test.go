package gvn_test

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/gvn"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pre"
)

func run(t *testing.T, f *ir.Func, args ...int64) (interp.Value, int64) {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(f.Name, vals...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v, m.Steps
}

// TestSection22NamingExample is the paper's §2.2 example:
//
//	x = y + z      r1 ← ry + rz ; rx ← r1
//	a = y          ra ← ry
//	b = a + z      r2 ← ra + rz ; rb ← r2
//
// "Obviously, r1 and r2 receive the same value ... PRE cannot discover
// this fact even though value numbering can."  After GVN renaming the
// two adds must be lexically identical, and PRE removes the second.
func TestSection22NamingExample(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    copy r3 => r4
    copy r1 => r5
    add r5, r2 => r6
    copy r6 => r7
    add r4, r7 => r8
    ret r8
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, 3, 4)

	// Without GVN, the two adds are lexically different.
	u := dataflow.BuildUniverse(f)
	k1, _ := dataflow.KeyOf(f.Entry().Instr(1)) // add r1, r2
	k2, _ := dataflow.KeyOf(f.Entry().Instr(4)) // add r5, r2
	if k1 == k2 {
		t.Fatal("test premise broken: keys already equal")
	}
	_ = u

	gvn.Run(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got, _ := run(t, f, 3, 4)
	if got.I != want.I {
		t.Fatalf("GVN changed semantics: %d vs %d", got.I, want.I)
	}
	// The congruent adds must now share one lexical key (same target
	// name and operands).
	var addKeys []dataflow.ExprKey
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpAdd {
			if k, ok := dataflow.KeyOf(in); ok {
				addKeys = append(addKeys, k)
			}
		}
	})
	equalPair := false
	for i := 0; i < len(addKeys); i++ {
		for j := i + 1; j < len(addKeys); j++ {
			if addKeys[i] == addKeys[j] {
				equalPair = true
			}
		}
	}
	if !equalPair {
		t.Errorf("GVN did not unify the congruent adds\n%s", f)
	}

	// And PRE can now delete the duplicate.
	before := f.InstrCount()
	pre.RunToFixpoint(f)
	if f.InstrCount() >= before {
		t.Errorf("PRE removed nothing after GVN: %d -> %d\n%s", before, f.InstrCount(), f)
	}
	got2, _ := run(t, f, 3, 4)
	if got2.I != want.I {
		t.Errorf("GVN+PRE changed semantics")
	}
}

// TestLoopCongruence: two separately named induction variables with
// identical updates are congruent — the optimistic analysis proves it
// through the loop, which pessimistic (hash-based) value numbering
// cannot.
func TestLoopCongruence(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    loadI 0 => r3
    loadI 0 => r4
    jump -> b1
b1:
    loadI 1 => r5
    add r2, r5 => r2
    loadI 1 => r6
    add r3, r6 => r3
    add r4, r2 => r4
    add r4, r3 => r4
    cmpLT r2, r1 => r7
    cbr r7 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, 10)
	st := gvn.Run(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got, _ := run(t, f, 10)
	if got.I != want.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, want.I)
	}
	// The two induction variables collapse into one congruence class:
	// fewer classes than values.
	if st.Classes >= st.Values {
		t.Errorf("no congruence discovered: %d classes for %d values", st.Classes, st.Values)
	}
	// After renaming, the adds updating the two counters are lexically
	// identical; φ-dedup should have removed one φ.
	if st.PhiDups == 0 {
		t.Errorf("congruent φs not deduplicated: %+v\n%s", st, f)
	}
}

// TestGVNPreservesDistinctValues: values that merely look similar must
// not be merged.
func TestGVNPreservesDistinctValues(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    sub r1, r2 => r4
    mul r3, r4 => r5
    loadI 3 => r6
    loadI 4 => r7
    add r6, r7 => r8
    add r5, r8 => r9
    ret r9
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, 9, 2)
	gvn.Run(f)
	got, _ := run(t, f, 9, 2)
	if got.I != want.I {
		t.Fatalf("semantics changed: %d vs %d (want (9+2)*(9-2)+7=84)", got.I, want.I)
	}
}

// TestGVNConstantsByValue: loadI of equal constants are congruent,
// different constants are not.
func TestGVNConstantsByValue(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 5 => r2
    loadI 5 => r3
    loadI 6 => r4
    add r2, r3 => r5
    add r5, r4 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, 0)
	st := gvn.Run(f)
	got, _ := run(t, f, 0)
	if got.I != want.I || got.I != 16 {
		t.Fatalf("got %d, want 16", got.I)
	}
	if st.Classes >= st.Values {
		t.Errorf("equal constants not merged: %+v", st)
	}
}

// TestGVNCallsOpaque: two calls to the same function with the same
// arguments must NOT be considered congruent (calls have effects).
func TestGVNCallsOpaque(t *testing.T) {
	const src = `
program globalsize=16

func g() {
b0:
    enter()
    loadI 0 => r1
    ldw [r1] => r2
    loadI 1 => r3
    add r2, r3 => r4
    stw r4 => [r1]
    ret r4
}

func f() {
b0:
    enter()
    call g() => r1
    call g() => r2
    add r1, r2 => r3
    ret r3
}
`
	prog, err := ir.ParseProgramString(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	gvn.Run(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(prog)
	v, err := m.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 3 { // 1 + 2
		t.Errorf("call results wrongly merged: got %d, want 3", v.I)
	}
}
