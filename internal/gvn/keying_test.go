package gvn_test

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"repro/internal/gvn"
	"repro/internal/ir"
	"repro/internal/ssa"
	"repro/internal/suite"
)

// oldClasses is the retired string-keyed partitioner, verbatim in
// spirit: refinement keys are spelled into byte buffers with
// encoding/binary and interned through map[string]uint32.  It is the
// reference the integer-keyed classes() must match partition-for-
// partition.
func oldClasses(f *ir.Func) map[ir.Reg]uint32 {
	type def struct {
		in       *ir.Instr
		block    *ir.Block
		enterIdx int
	}
	defs := map[ir.Reg]def{}
	var values []ir.Reg
	addValue := func(r ir.Reg, d def) {
		if _, dup := defs[r]; dup {
			return
		}
		defs[r] = d
		values = append(values, r)
	}
	for _, b := range f.Blocks {
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpEnter {
				for i, p := range in.Args {
					addValue(p, def{in: in, block: b, enterIdx: i})
				}
				continue
			}
			if in.Dst != ir.NoReg {
				addValue(in.Dst, def{in: in, block: b, enterIdx: -1})
			}
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })

	initID := map[ir.Reg]uint32{}
	keyIDs := map[string]uint32{}
	intern := func(k []byte) uint32 {
		id, ok := keyIDs[string(k)]
		if !ok {
			id = uint32(len(keyIDs) + 1)
			keyIDs[string(k)] = id
		}
		return id
	}
	var buf []byte
	for _, v := range values {
		d := defs[v]
		buf = buf[:0]
		switch {
		case d.enterIdx >= 0:
			buf = append(buf, 'p')
			buf = binary.AppendUvarint(buf, uint64(d.enterIdx))
		case d.in.Op == ir.OpLoadI:
			buf = append(buf, 'c')
			buf = binary.AppendVarint(buf, d.in.Imm)
		case d.in.Op == ir.OpLoadF:
			buf = append(buf, 'f')
			buf = binary.AppendUvarint(buf, math.Float64bits(d.in.FImm))
		case d.in.Op == ir.OpPhi:
			buf = append(buf, 'F')
			buf = binary.AppendUvarint(buf, uint64(d.block.ID))
		case d.in.Op == ir.OpCall || d.in.Op.IsLoad():
			buf = append(buf, 'u')
			buf = binary.AppendUvarint(buf, uint64(v))
		default:
			buf = append(buf, 'o', byte(d.in.Op))
		}
		initID[v] = intern(buf)
	}

	class := map[ir.Reg]uint32{}
	for _, v := range values {
		class[v] = initID[v]
	}
	classOf := func(r ir.Reg) uint32 {
		if c, ok := class[r]; ok {
			return c
		}
		return ^uint32(r)
	}
	prevCount := -1
	for {
		next := map[ir.Reg]uint32{}
		ids := map[string]uint32{}
		for _, v := range values {
			d := defs[v]
			buf = buf[:0]
			buf = binary.AppendUvarint(buf, uint64(initID[v]))
			if d.enterIdx < 0 && d.in.Op != ir.OpLoadI && d.in.Op != ir.OpLoadF {
				for _, a := range d.in.Args {
					buf = binary.AppendUvarint(buf, uint64(classOf(a)))
				}
			}
			id, ok := ids[string(buf)]
			if !ok {
				id = uint32(len(ids) + 1)
				ids[string(buf)] = id
			}
			next[v] = id
		}
		count := len(ids)
		same := count == prevCount
		prevCount = count
		class = next
		if same {
			break
		}
	}
	return class
}

// samePartition reports whether the two class assignments induce the
// same equivalence relation over the given values: the class-id
// correspondence must be a bijection.
func samePartition(values []ir.Reg, newClass []uint32, oldClass map[ir.Reg]uint32) (ir.Reg, bool) {
	oldToNew := map[uint32]uint32{}
	newToOld := map[uint32]uint32{}
	for _, v := range values {
		nc, oc := newClass[v], oldClass[v]
		if m, ok := oldToNew[oc]; ok && m != nc {
			return v, false
		}
		if m, ok := newToOld[nc]; ok && m != oc {
			return v, false
		}
		oldToNew[oc] = nc
		newToOld[nc] = oc
	}
	return ir.NoReg, true
}

// TestIntegerKeyingMatchesStringKeying pins the GVN keying rewrite:
// over every function of every suite routine (in the SSA form GVN
// actually partitions), the integer-keyed refinement must produce
// exactly the congruence classes the byte-string keying produced.
func TestIntegerKeyingMatchesStringKeying(t *testing.T) {
	for _, r := range suite.All() {
		prog, err := r.Compile()
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		for _, f := range prog.Funcs {
			ssa.Build(f, ssa.BuildOptions{Prune: true, FoldCopies: true})
			values, newClass := gvn.ClassesForTest(f)
			oldClass := oldClasses(f)
			if len(oldClass) != len(values) {
				t.Fatalf("%s/%s: value count differs: old %d, new %d",
					r.Name, f.Name, len(oldClass), len(values))
			}
			if v, ok := samePartition(values, newClass, oldClass); !ok {
				t.Errorf("%s/%s: partitions differ at r%d", r.Name, f.Name, v)
			}
		}
	}
}
