// Precise SSA-native global value numbering: a sparse, optimistic,
// iterative value-numbering analysis in the style of Pai's iterative
// GVN (arXiv 1504.03239), with the value-expression semantics of
// Saleena and Paleri (arXiv 1302.6325).
//
// The AWZ partitioner in gvn.go treats φ as an uninterpreted operator
// keyed by its block, so it can never discover congruences that flow
// *through* a φ: φ(x, x) is not congruent to x, and φ(x+1, y+1) is not
// congruent to φ(x, y)+1, even though both hold on every path.  This
// backend represents each value by a value expression in a persistent
// hash-consed table and iterates an optimistic assignment to a
// fixpoint, applying two φ rules each round:
//
//	fold:    φ_b(v, v, ..., v)            ≡ v          (self and
//	         still-optimistic operands are ignored first)
//	compose: φ_b(op(s1,t1), ..., op(sk,tk)) ≡ op(φ_b(s1..sk), φ_b(t1..tk))
//
// The compose rule manufactures "phantom" φ expressions — value-φs
// that exist in no instruction — and because a real φ over the same
// operands interns to the same node, φ(x+1, y+1) and φ(x,y)+1 meet in
// one congruence class.  Back-edge congruences (two induction
// variables with identical updates) fall out of the optimistic start
// exactly as they do for AWZ.
//
// Termination: expression nodes are append-only and a node's operands
// always have strictly smaller ids, so the compose recursion descends
// a finite value-expression height.  Rounds stop when the partition
// induced by the assignment is unchanged; the round count is capped at
// len(values)+8 (a partition over n values cannot refine more than n
// times, and the φ rules only ever move a value between existing
// justification chains), with a sound pessimistic fallback should the
// cap ever be hit.
//
// The result is strictly at least as coarse a partition as AWZ's — the
// refinement invariant gvn's suite test enforces — and renaming reuses
// the exact machinery of the AWZ backend, so the downstream contract
// (renaming only; no instruction added, deleted, or moved) is
// unchanged.
package gvn

import (
	"encoding/binary"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// RunPrecise performs precise global value numbering on f: pruned SSA
// construction, the iterative value-expression partition, renaming to
// class representatives, and SSA destruction.  Drop-in alternative to
// Run.
func RunPrecise(f *ir.Func) Stats {
	return RunPreciseWith(f, analysis.NewCache(f))
}

// RunPreciseWith is RunPrecise drawing CFG analyses from the given
// cache, mirroring RunWith.
func RunPreciseWith(f *ir.Func, ac *analysis.Cache) Stats {
	ssa.BuildWith(f, ssa.BuildOptions{Prune: true, FoldCopies: true}, ac)
	st := PartitionPrecise(f)
	ssa.DestructWith(f, ac)
	return st
}

// PartitionPrecise value-numbers an SSA-form function with the precise
// iterative analysis and renames values to class representatives in
// place, exactly as Partition does for the AWZ partition.
func PartitionPrecise(f *ir.Func) Stats {
	values, class := PreciseClasses(f)
	return renameToReps(f, values, class)
}

// top is the optimistic "not yet computed" value number.  It is the
// zero value of the assignment array, so unprocessed values are ⊤ by
// construction; real node ids start at 1.
const top = uint32(0)

// pnode is one hash-consed value expression.  kind reuses the initKey
// vocabulary: 'c'/'f' integer/float constant, 'p' parameter position,
// 'u' opaque load/call result, 'o' operator, 'F' (value-)φ.
type pnode struct {
	kind    uint8
	op      ir.Op
	block   int32
	payload uint64
	args    []uint32 // node ids; always < this node's own id
}

// ptable is the persistent append-only expression table.  Node ids are
// stable across rounds, which is what lets the analysis compare keys
// built in different rounds and lets the compose recursion terminate
// (operand ids strictly decrease).
type ptable struct {
	nodes []pnode // nodes[0] is the ⊤ sentinel
	ids   map[string]uint32
	keyb  []byte // reused key-encoding buffer
}

func newPTable() *ptable {
	return &ptable{nodes: make([]pnode, 1), ids: map[string]uint32{}}
}

// intern returns the id of the node, creating it if new.  The byte key
// is an unambiguous encoding: fixed-width fields plus a length-prefixed
// argument vector.
func (t *ptable) intern(n pnode) uint32 {
	b := t.keyb[:0]
	b = append(b, n.kind, byte(n.op))
	b = binary.LittleEndian.AppendUint32(b, uint32(n.block))
	b = binary.LittleEndian.AppendUint64(b, n.payload)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(n.args)))
	for _, a := range n.args {
		b = binary.LittleEndian.AppendUint32(b, a)
	}
	t.keyb = b
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	id := uint32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	t.ids[string(b)] = id
	return id
}

func (t *ptable) leaf(kind uint8, payload uint64) uint32 {
	return t.intern(pnode{kind: kind, payload: payload})
}

// opNode interns an operator application, canonicalizing commutative
// operand order so a+b and b+a meet in one node.
func (t *ptable) opNode(op ir.Op, args []uint32) uint32 {
	n := pnode{kind: 'o', op: op, args: append([]uint32(nil), args...)}
	if op.Commutative() && len(n.args) == 2 && n.args[0] > n.args[1] {
		n.args[0], n.args[1] = n.args[1], n.args[0]
	}
	return t.intern(n)
}

// phiNode applies the φ rules and interns the result.  ⊤ operand
// slots are ignored by both rules: a slot is ⊤ when the operand is the
// φ's own register (a loop-carried self-reference contributes no value
// of its own — the caller canonicalizes that by register identity, not
// by value-number coincidence, which would oscillate) or when the
// operand is still optimistically uncomputed (the fixpoint check
// verifies the assumption; a non-self ⊤ cannot survive past the first
// round).  Real φs and phantom φs canonicalize the same way, which is
// what lets them meet in one node.
func (t *ptable) phiNode(block int32, args []uint32) uint32 {
	canon := args

	// fold: collect the distinct non-⊤ operands.
	first := top
	uniform := true
	for _, a := range canon {
		if a == top {
			continue
		}
		if first == top {
			first = a
		} else if a != first {
			uniform = false
		}
	}
	if first == top {
		// Every operand was self or ⊤ (an isolated cycle): no value
		// flows in; give the φ its own uninterpreted node.
		return t.intern(pnode{kind: 'F', block: block, args: canon})
	}
	if uniform {
		return first
	}

	// compose: if every operand is the same operator applied
	// positionally, push the operator below the φ.  A ⊤ slot of the
	// outer φ stays a ⊤ slot of every component φ: "the φ keeps its
	// value along this edge" decomposes into each component keeping
	// its own.  Operand ids are strictly smaller than any node
	// containing them, so this recursion descends the finite
	// value-expression height.
	if compOp, arity, ok := t.commonOp(canon); ok {
		newArgs := make([]uint32, arity)
		for pos := 0; pos < arity; pos++ {
			sub := make([]uint32, len(canon))
			for i, a := range canon {
				if a == top {
					sub[i] = top
					continue
				}
				sub[i] = t.nodes[a].args[pos]
			}
			newArgs[pos] = t.phiNode(block, sub)
		}
		return t.opNode(compOp, newArgs)
	}

	return t.intern(pnode{kind: 'F', block: block, args: canon})
}

// commonOp reports whether every non-⊤ operand is an application of
// one identical pure operator (same opcode, same arity), enabling the
// compose rule.
func (t *ptable) commonOp(args []uint32) (ir.Op, int, bool) {
	var op ir.Op
	arity := -1
	for _, a := range args {
		if a == top {
			continue
		}
		n := &t.nodes[a]
		if n.kind != 'o' || !n.op.Pure() {
			return 0, 0, false
		}
		if arity == -1 {
			op, arity = n.op, len(n.args)
		} else if n.op != op || len(n.args) != arity {
			return 0, 0, false
		}
	}
	if arity <= 0 {
		return 0, 0, false
	}
	return op, arity, true
}

// PreciseClasses computes the precise value-expression partition of
// f's SSA values.  Like AWZClasses it returns the values in ascending
// register order and a register-indexed class-id table (0 marks a
// register that is not an SSA value); two values are congruent exactly
// when their class ids are equal.
func PreciseClasses(f *ir.Func) ([]ir.Reg, []uint32) {
	nr := f.NumRegs()
	defs := make([]def, nr)
	var order []ir.Reg // processing order: defs in RPO, then leftovers
	addValue := func(r ir.Reg, d def) {
		if defs[r].in != nil {
			return // not SSA; keep the first def, stay conservative
		}
		defs[r] = d
		order = append(order, r)
	}
	rpo := cfg.ReversePostorder(f)
	inRPO := make([]bool, len(f.Blocks))
	collect := func(b *ir.Block) {
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpEnter {
				for i, p := range in.Args {
					addValue(p, def{in: in, block: b, enterIdx: i})
				}
				continue
			}
			if in.Dst != ir.NoReg {
				addValue(in.Dst, def{in: in, block: b, enterIdx: -1})
			}
		}
	}
	for _, b := range rpo {
		inRPO[b.ID] = true
		collect(b)
	}
	for _, b := range f.Blocks { // unreachable leftovers, in block order
		if !inRPO[b.ID] {
			collect(b)
		}
	}

	t := newPTable()
	vn := make([]uint32, nr) // current assignment; 0 is ⊤
	prev := make([]uint32, nr)

	// valueize computes the value expression of one definition from
	// the current assignment (Gauss–Seidel: within a round, operands
	// defined earlier in RPO already carry this round's numbers).
	valueize := func(v ir.Reg) uint32 {
		d := defs[v]
		switch {
		case d.enterIdx >= 0:
			return t.leaf('p', uint64(d.enterIdx))
		case d.in.Op == ir.OpLoadI:
			return t.leaf('c', uint64(d.in.Imm))
		case d.in.Op == ir.OpLoadF:
			return t.leaf('f', floatBitsOf(d.in.FImm))
		case d.in.Op == ir.OpCall || d.in.Op.IsLoad():
			return t.leaf('u', uint64(v))
		case d.in.Op == ir.OpCopy:
			// A copy is its source's value (SSA construction normally
			// folds copies away; direct Partition callers may not).
			if a := d.in.Args[0]; int(a) < nr && vn[a] != top {
				return vn[a]
			}
			return t.leaf('u', uint64(v))
		case d.in.Op == ir.OpPhi:
			// Self-referential slots (the operand register IS the φ's
			// destination, a loop-carried identity) canonicalize to ⊤.
			args := make([]uint32, len(d.in.Args))
			for i, a := range d.in.Args {
				if a != v && int(a) < nr {
					args[i] = vn[a]
				}
			}
			return t.phiNode(int32(d.block.ID), args)
		default:
			args := make([]uint32, len(d.in.Args))
			for i, a := range d.in.Args {
				if int(a) < nr && vn[a] != top {
					args[i] = vn[a]
				} else {
					// Use of a register with no SSA def: unique.
					args[i] = t.leaf('u', uint64(a))
				}
			}
			return t.opNode(d.in.Op, args)
		}
	}

	converged := false
	for round := 0; round < len(order)+8; round++ {
		copy(prev, vn)
		changed := false
		for _, v := range order {
			nv := valueize(v)
			if nv != vn[v] {
				vn[v] = nv
				changed = true
			}
		}
		if !changed || samePartition(order, prev, vn) {
			converged = true
			break
		}
	}
	if !converged {
		// Never expected (see the termination note above); fall back
		// to the sound pessimistic partition: every value singleton.
		for i, v := range order {
			vn[v] = uint32(i) + 1
		}
	}

	values := append([]ir.Reg(nil), order...)
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	class := make([]uint32, nr)
	for _, v := range values {
		class[v] = vn[v]
	}
	return values, class
}

// samePartition reports whether two value-number assignments induce
// the same partition over the given values (ids themselves may differ
// between rounds; only the grouping matters).
func samePartition(values []ir.Reg, a, b []uint32) bool {
	a2b := map[uint32]uint32{}
	b2a := map[uint32]uint32{}
	for _, v := range values {
		if m, ok := a2b[a[v]]; ok {
			if m != b[v] {
				return false
			}
		} else {
			a2b[a[v]] = b[v]
		}
		if m, ok := b2a[b[v]]; ok {
			if m != a[v] {
				return false
			}
		} else {
			b2a[b[v]] = a[v]
		}
	}
	return true
}
