package gvn_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/gvn"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/progen"
	"repro/internal/ssa"
)

// classOf looks a register's congruence class up in a register-indexed
// class table, failing the test for a non-value register.
func classOf(t *testing.T, class []uint32, r ir.Reg) uint32 {
	t.Helper()
	if int(r) >= len(class) || class[r] == 0 {
		t.Fatalf("r%d is not a value (class table len %d)", r, len(class))
	}
	return class[r]
}

// TestPreciseFoldPhi: φ(x, x) ≡ x.  AWZ keys φs by their block and
// never merges a φ with a non-φ, so this is precisely the kind of
// congruence only the iterative backend discovers.
func TestPreciseFoldPhi(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    cmpLT r1, r1 => r2
    cbr r2 -> b1, b2
b1:
    jump -> b3
b2:
    jump -> b3
b3:
    phi r1, r1 => r3
    add r3, r1 => r4
    add r1, r1 => r5
    ret r4
}
`
	f := ir.MustParseFunc(src)
	_, pc := gvn.PreciseClasses(f)
	if classOf(t, pc, 3) != classOf(t, pc, 1) {
		t.Errorf("φ(x,x) not congruent to x under precise GVN")
	}
	// The add over the folded φ matches the add over x directly.
	if classOf(t, pc, 4) != classOf(t, pc, 5) {
		t.Errorf("add over folded φ not congruent to add over x")
	}
	_, ac := gvn.AWZClasses(f)
	if classOf(t, ac, 3) == classOf(t, ac, 1) {
		t.Errorf("test premise broken: AWZ already folds φ(x,x)")
	}
}

// TestPreciseComposePhi: φ(x+1, y+1) ≡ φ(x, y)+1 — the compose rule
// pushes the operator below the value-φ, so the real φ over the sums
// and the phantom φ under the add meet in one class.
func TestPreciseComposePhi(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    loadI 1 => r3
    cmpLT r1, r2 => r4
    cbr r4 -> b1, b2
b1:
    add r1, r3 => r5
    jump -> b3
b2:
    add r2, r3 => r6
    jump -> b3
b3:
    phi r5, r6 => r7
    phi r1, r2 => r8
    add r8, r3 => r9
    ret r9
}
`
	f := ir.MustParseFunc(src)
	_, pc := gvn.PreciseClasses(f)
	if classOf(t, pc, 7) != classOf(t, pc, 9) {
		t.Errorf("φ(x+1,y+1) not congruent to φ(x,y)+1 under precise GVN")
	}
	_, ac := gvn.AWZClasses(f)
	if classOf(t, ac, 7) == classOf(t, ac, 9) {
		t.Errorf("test premise broken: AWZ already composes value-φs")
	}

	// End to end: renaming the discovered class must preserve results.
	// (The source is already in SSA form, so rename in place rather
	// than round-tripping through SSA construction.)
	g := ir.MustParseFunc(src)
	want, _ := run(t, g, 3, 9)
	gvn.PartitionPrecise(g)
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}
	got, _ := run(t, g, 3, 9)
	if got.I != want.I {
		t.Fatalf("precise GVN changed semantics: %d vs %d", got.I, want.I)
	}
}

// TestRunPreciseEndToEnd: the full pipeline entry point — SSA
// construction, precise partition, renaming, SSA destruction — on
// non-SSA input, semantics preserved and congruence discovered.
func TestRunPreciseEndToEnd(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    loadI 0 => r3
    loadI 0 => r4
    jump -> b1
b1:
    loadI 1 => r5
    add r2, r5 => r2
    loadI 1 => r6
    add r3, r6 => r3
    add r4, r2 => r4
    add r4, r3 => r4
    cmpLT r2, r1 => r7
    cbr r7 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, 10)
	st := gvn.RunPrecise(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got, _ := run(t, f, 10)
	if got.I != want.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, want.I)
	}
	if st.Classes >= st.Values {
		t.Errorf("no congruence discovered: %+v", st)
	}
}

// TestPreciseSelfPhi: a loop-invariant value carried by a
// self-referential φ on the back edge — r3 = φ(r2, r3) — folds to its
// initial value.
func TestPreciseSelfPhi(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 7 => r2
    loadI 0 => r4
    jump -> b1
b1:
    phi r2, r3 => r3
    phi r4, r6 => r5
    add r5, r3 => r6
    cmpLT r6, r1 => r7
    cbr r7 -> b1, b2
b2:
    ret r6
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, 50)
	_, pc := gvn.PreciseClasses(f)
	if classOf(t, pc, 3) != classOf(t, pc, 2) {
		t.Errorf("self-referential φ not folded to its loop-invariant input")
	}
	st := gvn.PartitionPrecise(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if st.Classes >= st.Values {
		t.Errorf("no congruence found: %+v", st)
	}
	got, _ := run(t, f, 50)
	if got.I != want.I {
		t.Fatalf("renaming changed semantics: %d vs %d", got.I, want.I)
	}
}

// TestPreciseBackEdgeCongruence: the classic two-induction-variable
// loop — optimism must survive the back edge for both backends, and
// the precise partition must still group the counters.
func TestPreciseBackEdgeCongruence(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    loadI 0 => r3
    loadI 1 => r4
    jump -> b1
b1:
    phi r2, r6 => r5
    phi r3, r8 => r7
    add r5, r4 => r6
    add r7, r4 => r8
    cmpLT r6, r1 => r9
    cbr r9 -> b1, b2
b2:
    add r6, r8 => r10
    ret r10
}
`
	f := ir.MustParseFunc(src)
	_, pc := gvn.PreciseClasses(f)
	if classOf(t, pc, 5) != classOf(t, pc, 7) {
		t.Errorf("congruent loop φs not merged")
	}
	if classOf(t, pc, 6) != classOf(t, pc, 8) {
		t.Errorf("congruent induction updates not merged")
	}
	// r2 and r3 are both loadI 0.
	if classOf(t, pc, 2) != classOf(t, pc, 3) {
		t.Errorf("equal constants not merged")
	}
}

// TestPreciseCommutativeCanon: a+b ≡ b+a under the precise backend
// (AWZ's positional refinement cannot see it).
func TestPreciseCommutativeCanon(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    add r2, r1 => r4
    sub r1, r2 => r5
    sub r2, r1 => r6
    ret r3
}
`
	f := ir.MustParseFunc(src)
	_, pc := gvn.PreciseClasses(f)
	if classOf(t, pc, 3) != classOf(t, pc, 4) {
		t.Errorf("commutative operands not canonicalized")
	}
	if classOf(t, pc, 5) == classOf(t, pc, 6) {
		t.Errorf("non-commutative sub wrongly canonicalized")
	}
}

// TestPreciseMixedIntFloatDistinct: loadI 0 and loadF 0 share a bit
// pattern but must never be congruent, and neither may int and float
// arithmetic over them.
func TestPreciseMixedIntFloatDistinct(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    loadF 0 => r3
    loadI 0 => r4
    loadF 0 => r5
    add r2, r4 => r6
    fadd r3, r5 => r7
    ret r6
}
`
	f := ir.MustParseFunc(src)
	_, pc := gvn.PreciseClasses(f)
	if classOf(t, pc, 2) == classOf(t, pc, 3) {
		t.Errorf("int 0 and float 0.0 wrongly congruent")
	}
	if classOf(t, pc, 2) != classOf(t, pc, 4) {
		t.Errorf("equal int constants not congruent")
	}
	if classOf(t, pc, 3) != classOf(t, pc, 5) {
		t.Errorf("equal float constants not congruent")
	}
	if classOf(t, pc, 6) == classOf(t, pc, 7) {
		t.Errorf("add and fadd results wrongly congruent")
	}
}

// refinesAWZ asserts the AWZ-refinement invariant on one SSA-form
// function: every AWZ congruence also holds under the precise backend
// (precise is coarser-or-equal; it only ever adds equivalences).
func refinesAWZ(t *testing.T, f *ir.Func, tag string) {
	t.Helper()
	values, ac := gvn.AWZClasses(f)
	_, pc := gvn.PreciseClasses(f)
	// For each AWZ class, all members must share one precise class.
	rep := map[uint32]uint32{} // AWZ class -> precise class of first member
	for _, v := range values {
		p, ok := rep[ac[v]]
		if !ok {
			rep[ac[v]] = pc[v]
			continue
		}
		if pc[v] != p {
			t.Errorf("%s: AWZ congruence split by precise backend (r%d: awz=%d precise=%d vs %d)",
				tag, v, ac[v], pc[v], p)
			return
		}
	}
}

// TestPreciseRefinesAWZRandom: on random programs — including
// irreducible CFGs — the precise partition must be a coarsening of
// AWZ's, and renaming from it must preserve behavior.
func TestPreciseRefinesAWZRandom(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		cfg := progen.ForSeed(seed)
		prog := progen.Generate(cfg, seed)
		ref := interp.NewMachine(prog.Clone())
		refVals := make(map[string]interp.Value)
		for _, f := range prog.Funcs {
			if f.Name != "main" {
				continue
			}
			var args []interp.Value
			for i := 0; i < cfg.IntParams; i++ {
				args = append(args, interp.IntVal(int64(seed)+int64(i)))
			}
			for i := 0; i < cfg.FloatParams; i++ {
				args = append(args, interp.FloatVal(float64(seed)*0.5))
			}
			v, err := ref.Call(f.Name, args...)
			if err != nil {
				t.Fatalf("seed %d: reference run: %v", seed, err)
			}
			refVals[f.Name] = v

			ac := analysis.NewCache(f)
			ssa.BuildWith(f, ssa.BuildOptions{Prune: true, FoldCopies: true}, ac)
			refinesAWZ(t, f, "seed")
			gvn.PartitionPrecise(f)
			ssa.DestructWith(f, ac)
			if err := ir.Verify(f); err != nil {
				t.Fatalf("seed %d: after precise GVN: %v\n%s", seed, err, f)
			}
			m := interp.NewMachine(prog)
			got, err := m.Call(f.Name, args...)
			if err != nil {
				t.Fatalf("seed %d: optimized run: %v", seed, err)
			}
			if got != v {
				t.Fatalf("seed %d: precise GVN changed main's result: %v vs %v", seed, got, v)
			}
		}
	}
}

// TestPreciseIrreducible: the iterative analysis converges on
// explicitly irreducible CFGs (two-entry cycles progen can emit) and
// still refines AWZ there.
func TestPreciseIrreducible(t *testing.T) {
	n := 0
	for seed := uint64(1); seed <= 200 && n < 10; seed++ {
		cfg := progen.ForSeed(seed)
		if !cfg.Irreducible {
			continue
		}
		n++
		prog := progen.Generate(cfg, seed)
		for _, f := range prog.Funcs {
			ac := analysis.NewCache(f)
			ssa.BuildWith(f, ssa.BuildOptions{Prune: true, FoldCopies: true}, ac)
			refinesAWZ(t, f, "irreducible")
			st := gvn.PartitionPrecise(f)
			if st.Values > 0 && st.Classes == 0 {
				t.Errorf("seed %d %s: empty partition over %d values", seed, f.Name, st.Values)
			}
			ssa.DestructWith(f, ac)
			if err := ir.Verify(f); err != nil {
				t.Fatalf("seed %d %s: %v", seed, f.Name, err)
			}
		}
	}
	if n == 0 {
		t.Fatal("no irreducible configs among the first 200 seeds")
	}
}
