package interp

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ir"
)

// infiniteLoop is a program that branches forever, for deadline tests.
const infiniteLoop = `
program globalsize=0

func spin() {
b0:
    enter()
    loadI 0 => r1
    loadI 1 => r2
    jump -> b1
b1:
    add r1, r2 => r1
    jump -> b1
}
`

// TestContextDeadline: a machine with an expired context aborts with an
// error wrapping context.DeadlineExceeded instead of spinning until the
// step limit.
func TestContextDeadline(t *testing.T) {
	p, err := ir.ParseProgramString(infiniteLoop)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	m := NewMachine(p)
	m.SetContext(ctx)
	start := time.Now()
	_, err = m.Call("spin")
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error should wrap context.DeadlineExceeded, got: %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("cancellation took %v, polling is too coarse", el)
	}
}

// TestContextNotExpired: an un-cancelled context leaves execution
// untouched.
func TestContextNotExpired(t *testing.T) {
	const src = `
program globalsize=0

func ten(): int {
b0:
    enter()
    loadI 10 => r1
    ret r1
}
`
	p, err := ir.ParseProgramString(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	m.SetContext(context.Background())
	v, err := m.Call("ten")
	if err != nil {
		t.Fatal(err)
	}
	if v.Float || v.I != 10 {
		t.Errorf("got %s, want 10", v)
	}
}
