// Package interp executes ILOC programs directly, counting every
// dynamic operation.  It replaces the paper's back end, which
// "consumes ILOC and produces C ... instrumented to accumulate dynamic
// counts of ILOC operations" (§4).  The dynamic operation count —
// including branches, as the paper counts them — is the metric of
// Table 1.
//
// The machine model: an unbounded set of virtual registers per frame,
// each holding an int64 or a float64; a flat byte-addressed memory for
// statically allocated arrays (stw/ldw move 8-byte integers, std/ldd
// 8-byte doubles, sts/lds 4-byte singles); call frames with by-value
// scalar arguments (arrays are passed as addresses).  Recursion is
// permitted up to a depth limit even though the Mini-Fortran front end
// never emits it.
package interp

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ir"
)

// Value is a dynamically typed register value.
type Value struct {
	Float bool
	I     int64
	F     float64
}

// IntVal wraps an integer.
func IntVal(i int64) Value { return Value{I: i} }

// FloatVal wraps a float.  NaNs are canonicalized to a single bit
// pattern: NaN sign and payload are not observable machine state, so
// IEEE-equivalent rewrites that only perturb them — peephole's
// a+(−b) → a−b, say — stay bit-identical under the translation
// validator's exact memory comparison.
func FloatVal(f float64) Value {
	if math.IsNaN(f) {
		f = math.NaN()
	}
	return Value{Float: true, F: f}
}

// String renders the value.
func (v Value) String() string {
	if v.Float {
		return fmt.Sprintf("%g", v.F)
	}
	return fmt.Sprintf("%d", v.I)
}

// StepLimitError reports that a run exceeded its MaxSteps budget.  It
// is a distinct type so differential harnesses can tell a runaway
// execution (a possible miscompile that introduced an infinite loop)
// from an ordinary trap or an external cancellation.
type StepLimitError struct {
	Func  string
	Limit int64
}

func (e *StepLimitError) Error() string {
	return fmt.Sprintf("interp: step limit (%d) exceeded in %s", e.Limit, e.Func)
}

// Trap describes a runtime error with the function and block where it
// occurred.
type Trap struct {
	Func  string
	Block string
	Msg   string
}

func (t *Trap) Error() string {
	return fmt.Sprintf("interp: trap in %s at %s: %s", t.Func, t.Block, t.Msg)
}

// Machine executes one program.
type Machine struct {
	Prog *ir.Program
	Mem  []byte
	// Steps counts executed operations (including branches and
	// copies; excluding the enter pseudo-operation and φ-nodes).
	Steps int64
	// PathSteps optionally records per-block execution counts, keyed
	// by function name then block name; enabled by EnableBlockCounts.
	BlockCounts map[string]map[string]int64
	// MaxSteps aborts runaway executions (0 = default limit).
	MaxSteps int64
	// MaxDepth bounds the call stack (0 = default).
	MaxDepth int
	// Output collects values printed by the "print" builtin.
	Output []Value
	// OpCounts optionally records executed operations per opcode;
	// enabled by EnableOpCounts.  Strength-reduction experiments read
	// the multiply row (operation counts alone are mul/add-neutral).
	OpCounts map[ir.Op]int64

	countBlocks bool
	depth       int
	ctx         context.Context
}

// DefaultMaxSteps bounds a single Run.
const DefaultMaxSteps = 2_000_000_000

// DefaultMaxDepth bounds call nesting.
const DefaultMaxDepth = 256

// NewMachine prepares a machine with memory sized to the program's
// global segment.
func NewMachine(p *ir.Program) *Machine {
	size := p.GlobalSize
	if size < 8 {
		size = 8
	}
	return &Machine{
		Prog:     p,
		Mem:      make([]byte, size),
		MaxSteps: DefaultMaxSteps,
		MaxDepth: DefaultMaxDepth,
	}
}

// ctxPollMask decides how often the run loop polls the context: every
// 4096 executed operations, cheap against the cost of the operations
// themselves yet prompt against any realistic deadline.
const ctxPollMask = 1<<12 - 1

// SetContext attaches a context to the machine.  Call polls it
// periodically (every few thousand operations) and aborts with an error
// wrapping ctx.Err() once the context is cancelled or its deadline
// passes, so callers can bound an interpretation by wall-clock time as
// well as by MaxSteps.
func (m *Machine) SetContext(ctx context.Context) { m.ctx = ctx }

// EnableBlockCounts turns on per-block dynamic counting.
func (m *Machine) EnableBlockCounts() {
	m.countBlocks = true
	m.BlockCounts = map[string]map[string]int64{}
}

// EnableOpCounts turns on per-opcode dynamic counting.
func (m *Machine) EnableOpCounts() {
	m.OpCounts = map[ir.Op]int64{}
}

// Call runs the named function with the given arguments and returns
// its result (the zero Value for void returns).
func (m *Machine) Call(name string, args ...Value) (Value, error) {
	f := m.Prog.Func(name)
	if f == nil {
		return Value{}, fmt.Errorf("interp: no function %q", name)
	}
	return m.run(f, args)
}

func (m *Machine) trap(f *ir.Func, b *ir.Block, format string, args ...any) error {
	return &Trap{Func: f.Name, Block: b.Name, Msg: fmt.Sprintf(format, args...)}
}

func (m *Machine) run(f *ir.Func, args []Value) (Value, error) {
	if m.depth >= m.MaxDepth {
		return Value{}, fmt.Errorf("interp: call depth limit (%d) exceeded at %s", m.MaxDepth, f.Name)
	}
	m.depth++
	defer func() { m.depth-- }()

	regs := make([]Value, f.NumRegs())
	cur := f.Entry()
	var prev *ir.Block
	var blockCounts map[string]int64
	if m.countBlocks {
		blockCounts = m.BlockCounts[f.Name]
		if blockCounts == nil {
			blockCounts = map[string]int64{}
			m.BlockCounts[f.Name] = blockCounts
		}
	}

	for {
		if blockCounts != nil {
			blockCounts[cur.Name]++
		}
		// φ-nodes evaluate in parallel from the incoming edge.
		phis := cur.Phis()
		if len(phis) > 0 {
			if prev == nil {
				return Value{}, m.trap(f, cur, "φ in entry block")
			}
			pi := cur.PredIndex(prev)
			if pi < 0 {
				return Value{}, m.trap(f, cur, "no edge from %s", prev.Name)
			}
			vals := make([]Value, len(phis))
			for i, pid := range phis {
				phi := f.Instr(pid)
				if pi >= len(phi.Args) {
					return Value{}, m.trap(f, cur, "φ operand index out of range")
				}
				vals[i] = regs[phi.Args[pi]]
			}
			for i, pid := range phis {
				regs[f.Instr(pid).Dst] = vals[i]
			}
		}

		var branchTaken = -1
		var retVal Value
		var returned bool
		for ii := len(phis); ii < len(cur.Instrs); ii++ {
			in := cur.Instr(ii)
			if in.Op == ir.OpEnter {
				if len(args) != len(in.Args) {
					return Value{}, m.trap(f, cur, "called with %d args, want %d", len(args), len(in.Args))
				}
				for i, p := range in.Args {
					regs[p] = args[i]
				}
				continue
			}
			m.Steps++
			if m.OpCounts != nil {
				m.OpCounts[in.Op]++
			}
			if m.Steps > m.MaxSteps {
				return Value{}, &StepLimitError{Func: f.Name, Limit: m.MaxSteps}
			}
			if m.ctx != nil && m.Steps&ctxPollMask == 0 {
				if err := m.ctx.Err(); err != nil {
					return Value{}, fmt.Errorf("interp: cancelled in %s after %d ops: %w", f.Name, m.Steps, err)
				}
			}
			switch in.Op {
			case ir.OpJump:
				branchTaken = 0
			case ir.OpCBr:
				v := regs[in.Args[0]]
				if v.Float {
					return Value{}, m.trap(f, cur, "cbr on float value")
				}
				if v.I != 0 {
					branchTaken = 0
				} else {
					branchTaken = 1
				}
			case ir.OpRet:
				returned = true
				if len(in.Args) == 1 {
					retVal = regs[in.Args[0]]
				}
			case ir.OpCall:
				res, err := m.callTarget(f, cur, in, regs)
				if err != nil {
					return Value{}, err
				}
				if in.Dst != ir.NoReg {
					regs[in.Dst] = res
				}
			default:
				if err := m.exec(f, cur, in, regs); err != nil {
					return Value{}, err
				}
			}
			if returned || branchTaken >= 0 {
				break
			}
		}
		if returned {
			return retVal, nil
		}
		if branchTaken < 0 {
			return Value{}, m.trap(f, cur, "fell off the end of a block")
		}
		if branchTaken >= len(cur.Succs) {
			return Value{}, m.trap(f, cur, "branch target %d out of range", branchTaken)
		}
		prev, cur = cur, cur.Succs[branchTaken]
	}
}

// callTarget dispatches a call instruction: "print" is the built-in
// output primitive; every other name must be a program function.
func (m *Machine) callTarget(f *ir.Func, b *ir.Block, in *ir.Instr, regs []Value) (Value, error) {
	if f.SymName(in.Sym) == "print" {
		for _, a := range in.Args {
			m.Output = append(m.Output, regs[a])
		}
		return Value{}, nil
	}
	callee := m.Prog.Func(f.SymName(in.Sym))
	if callee == nil {
		return Value{}, m.trap(f, b, "call to undefined function %q", f.SymName(in.Sym))
	}
	args := make([]Value, len(in.Args))
	for i, a := range in.Args {
		args[i] = regs[a]
	}
	return m.run(callee, args)
}

func (m *Machine) checkAddr(f *ir.Func, b *ir.Block, addr int64, size int64) error {
	if addr < 0 || addr+size > int64(len(m.Mem)) {
		return m.trap(f, b, "memory access [%d..%d) out of bounds (size %d)", addr, addr+size, len(m.Mem))
	}
	return nil
}

func (m *Machine) exec(f *ir.Func, b *ir.Block, in *ir.Instr, regs []Value) error {
	wantInt := func(i int) (int64, error) {
		v := regs[in.Args[i]]
		if v.Float {
			return 0, m.trap(f, b, "%s: operand %d is float, want int", in.Op, i)
		}
		return v.I, nil
	}
	wantFloat := func(i int) (float64, error) {
		v := regs[in.Args[i]]
		if !v.Float {
			return 0, m.trap(f, b, "%s: operand %d is int, want float", in.Op, i)
		}
		return v.F, nil
	}
	setI := func(x int64) { regs[in.Dst] = IntVal(x) }
	setF := func(x float64) { regs[in.Dst] = FloatVal(x) }

	ii := func(fn func(a, b int64) int64) error {
		a, err := wantInt(0)
		if err != nil {
			return err
		}
		c, err := wantInt(1)
		if err != nil {
			return err
		}
		setI(fn(a, c))
		return nil
	}
	ff := func(fn func(a, b float64) float64) error {
		a, err := wantFloat(0)
		if err != nil {
			return err
		}
		c, err := wantFloat(1)
		if err != nil {
			return err
		}
		setF(fn(a, c))
		return nil
	}
	icmp := func(fn func(a, b int64) bool) error {
		a, err := wantInt(0)
		if err != nil {
			return err
		}
		c, err := wantInt(1)
		if err != nil {
			return err
		}
		if fn(a, c) {
			setI(1)
		} else {
			setI(0)
		}
		return nil
	}
	fcmp := func(fn func(a, b float64) bool) error {
		a, err := wantFloat(0)
		if err != nil {
			return err
		}
		c, err := wantFloat(1)
		if err != nil {
			return err
		}
		if fn(a, c) {
			setI(1)
		} else {
			setI(0)
		}
		return nil
	}

	switch in.Op {
	case ir.OpLoadI:
		setI(in.Imm)
	case ir.OpLoadF:
		setF(in.FImm)
	case ir.OpCopy:
		regs[in.Dst] = regs[in.Args[0]]

	case ir.OpAdd:
		return ii(func(a, b int64) int64 { return a + b })
	case ir.OpSub:
		return ii(func(a, b int64) int64 { return a - b })
	case ir.OpMul:
		return ii(func(a, b int64) int64 { return a * b })
	case ir.OpDiv:
		a, err := wantInt(0)
		if err != nil {
			return err
		}
		c, err := wantInt(1)
		if err != nil {
			return err
		}
		if c == 0 {
			return m.trap(f, b, "integer division by zero")
		}
		setI(a / c)
	case ir.OpMod:
		a, err := wantInt(0)
		if err != nil {
			return err
		}
		c, err := wantInt(1)
		if err != nil {
			return err
		}
		if c == 0 {
			return m.trap(f, b, "integer modulus by zero")
		}
		setI(a % c)
	case ir.OpNeg:
		a, err := wantInt(0)
		if err != nil {
			return err
		}
		setI(-a)
	case ir.OpAnd:
		return ii(func(a, b int64) int64 { return a & b })
	case ir.OpOr:
		return ii(func(a, b int64) int64 { return a | b })
	case ir.OpXor:
		return ii(func(a, b int64) int64 { return a ^ b })
	case ir.OpNot:
		a, err := wantInt(0)
		if err != nil {
			return err
		}
		setI(^a)
	case ir.OpShl:
		return ii(func(a, b int64) int64 { return a << uint64(b&63) })
	case ir.OpShr:
		return ii(func(a, b int64) int64 { return a >> uint64(b&63) })
	case ir.OpMin:
		return ii(func(a, b int64) int64 { return min(a, b) })
	case ir.OpMax:
		return ii(func(a, b int64) int64 { return max(a, b) })
	case ir.OpAbs:
		a, err := wantInt(0)
		if err != nil {
			return err
		}
		if a < 0 {
			a = -a
		}
		setI(a)

	case ir.OpFAdd:
		return ff(func(a, b float64) float64 { return a + b })
	case ir.OpFSub:
		return ff(func(a, b float64) float64 { return a - b })
	case ir.OpFMul:
		return ff(func(a, b float64) float64 { return a * b })
	case ir.OpFDiv:
		return ff(func(a, b float64) float64 { return a / b })
	case ir.OpFNeg:
		a, err := wantFloat(0)
		if err != nil {
			return err
		}
		setF(-a)
	case ir.OpFMin:
		return ff(math.Min)
	case ir.OpFMax:
		return ff(math.Max)
	case ir.OpSqrt:
		a, err := wantFloat(0)
		if err != nil {
			return err
		}
		setF(math.Sqrt(a))
	case ir.OpFAbs:
		a, err := wantFloat(0)
		if err != nil {
			return err
		}
		setF(math.Abs(a))

	case ir.OpI2F:
		a, err := wantInt(0)
		if err != nil {
			return err
		}
		setF(float64(a))
	case ir.OpF2I:
		a, err := wantFloat(0)
		if err != nil {
			return err
		}
		setI(int64(a))

	case ir.OpCmpEQ:
		return icmp(func(a, b int64) bool { return a == b })
	case ir.OpCmpNE:
		return icmp(func(a, b int64) bool { return a != b })
	case ir.OpCmpLT:
		return icmp(func(a, b int64) bool { return a < b })
	case ir.OpCmpLE:
		return icmp(func(a, b int64) bool { return a <= b })
	case ir.OpCmpGT:
		return icmp(func(a, b int64) bool { return a > b })
	case ir.OpCmpGE:
		return icmp(func(a, b int64) bool { return a >= b })
	case ir.OpFCmpEQ:
		return fcmp(func(a, b float64) bool { return a == b })
	case ir.OpFCmpNE:
		return fcmp(func(a, b float64) bool { return a != b })
	case ir.OpFCmpLT:
		return fcmp(func(a, b float64) bool { return a < b })
	case ir.OpFCmpLE:
		return fcmp(func(a, b float64) bool { return a <= b })
	case ir.OpFCmpGT:
		return fcmp(func(a, b float64) bool { return a > b })
	case ir.OpFCmpGE:
		return fcmp(func(a, b float64) bool { return a >= b })

	case ir.OpLoadW:
		addr, err := wantInt(0)
		if err != nil {
			return err
		}
		if err := m.checkAddr(f, b, addr, 8); err != nil {
			return err
		}
		setI(int64(binary.LittleEndian.Uint64(m.Mem[addr:])))
	case ir.OpLoadD:
		addr, err := wantInt(0)
		if err != nil {
			return err
		}
		if err := m.checkAddr(f, b, addr, 8); err != nil {
			return err
		}
		setF(math.Float64frombits(binary.LittleEndian.Uint64(m.Mem[addr:])))
	case ir.OpLoadS:
		addr, err := wantInt(0)
		if err != nil {
			return err
		}
		if err := m.checkAddr(f, b, addr, 4); err != nil {
			return err
		}
		setF(float64(math.Float32frombits(binary.LittleEndian.Uint32(m.Mem[addr:]))))
	case ir.OpStoreW:
		v, err := wantInt(0)
		if err != nil {
			return err
		}
		addr, err := wantInt(1)
		if err != nil {
			return err
		}
		if err := m.checkAddr(f, b, addr, 8); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(m.Mem[addr:], uint64(v))
	case ir.OpStoreD:
		v, err := wantFloat(0)
		if err != nil {
			return err
		}
		addr, err := wantInt(1)
		if err != nil {
			return err
		}
		if err := m.checkAddr(f, b, addr, 8); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(m.Mem[addr:], math.Float64bits(v))
	case ir.OpStoreS:
		v, err := wantFloat(0)
		if err != nil {
			return err
		}
		addr, err := wantInt(1)
		if err != nil {
			return err
		}
		if err := m.checkAddr(f, b, addr, 4); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(m.Mem[addr:], math.Float32bits(float32(v)))

	default:
		return m.trap(f, b, "unhandled opcode %s", in.Op)
	}
	return nil
}

// ReadFloat64 reads a float64 from memory (for test drivers).
func (m *Machine) ReadFloat64(addr int64) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(m.Mem[addr:]))
}

// WriteFloat64 writes a float64 into memory (for test drivers).
func (m *Machine) WriteFloat64(addr int64, v float64) {
	binary.LittleEndian.PutUint64(m.Mem[addr:], math.Float64bits(v))
}

// ReadInt64 reads an int64 from memory.
func (m *Machine) ReadInt64(addr int64) int64 {
	return int64(binary.LittleEndian.Uint64(m.Mem[addr:]))
}

// WriteInt64 writes an int64 into memory.
func (m *Machine) WriteInt64(addr int64, v int64) {
	binary.LittleEndian.PutUint64(m.Mem[addr:], uint64(v))
}
