package interp_test

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

func mustProg(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.ParseProgramString(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArithmetic(t *testing.T) {
	const src = `
program globalsize=0

func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    mul r3, r1 => r4
    sub r4, r2 => r5
    loadI 3 => r6
    div r5, r6 => r7
    mod r5, r6 => r8
    shl r7, r8 => r9
    min r9, r4 => r10
    ret r10
}
`
	m := interp.NewMachine(mustProg(t, src))
	v, err := m.Call("f", interp.IntVal(5), interp.IntVal(2))
	if err != nil {
		t.Fatal(err)
	}
	// r3=7 r4=35 r5=33 r7=11 r8=0 r9=11 r10=min(11,35)=11
	if v.I != 11 {
		t.Errorf("got %d, want 11", v.I)
	}
	if m.Steps != 9 { // 8 ops + ret
		t.Errorf("Steps = %d, want 9", m.Steps)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	const src = `
program globalsize=64

func f() {
b0:
    enter()
    loadI 0 => r1
    loadI 8 => r2
    loadI 16 => r3
    loadI 123 => r4
    stw r4 => [r1]
    loadF 2.75 => r5
    std r5 => [r2]
    sts r5 => [r3]
    ldw [r1] => r6
    ldd [r2] => r7
    lds [r3] => r8
    i2f r6 => r9
    fadd r9, r7 => r10
    fadd r10, r8 => r11
    ret r11
}
`
	m := interp.NewMachine(mustProg(t, src))
	v, err := m.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 123+2.75+2.75 {
		t.Errorf("got %g, want 128.5", v.F)
	}
	if m.ReadInt64(0) != 123 {
		t.Error("stw/ReadInt64 mismatch")
	}
	if m.ReadFloat64(8) != 2.75 {
		t.Error("std/ReadFloat64 mismatch")
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div0", `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    div r1, r2 => r3
    ret r3
}
`, "division by zero"},
		{"oob", `
program globalsize=8
func f(r1) {
b0:
    enter(r1)
    loadI 1000 => r2
    ldw [r2] => r3
    ret r3
}
`, "out of bounds"},
		{"negaddr", `
program globalsize=8
func f(r1) {
b0:
    enter(r1)
    loadI -4 => r2
    ldw [r2] => r3
    ret r3
}
`, "out of bounds"},
		{"typeerr", `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    loadF 1.5 => r2
    add r1, r2 => r3
    ret r3
}
`, "want int"},
		{"badcallee", `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    call nosuch(r1) => r2
    ret r2
}
`, "undefined function"},
		{"argcount", `
program globalsize=0
func g(r1, r2) {
b0:
    enter(r1, r2)
    ret r1
}
func f(r1) {
b0:
    enter(r1)
    call g(r1) => r2
    ret r2
}
`, "want 2"},
		{"floatbranch", `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    loadF 1.0 => r2
    cbr r2 -> b1, b1
b1:
    ret r1
}
`, "cbr on float"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := interp.NewMachine(mustProg(t, c.src))
			_, err := m.Call("f", interp.IntVal(1))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("got %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	const src = `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    jump -> b1
b1:
    jump -> b1
}
`
	m := interp.NewMachine(mustProg(t, src))
	m.MaxSteps = 1000
	_, err := m.Call("f", interp.IntVal(0))
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("got %v", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	const src = `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    call f(r1) => r2
    ret r2
}
`
	m := interp.NewMachine(mustProg(t, src))
	m.MaxDepth = 10
	_, err := m.Call("f", interp.IntVal(0))
	if err == nil || !strings.Contains(err.Error(), "depth limit") {
		t.Errorf("got %v", err)
	}
}

func TestPhiExecution(t *testing.T) {
	// The interpreter executes SSA form directly (parallel φ semantics).
	const src = `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    loadI 10 => r3
    jump -> b1
b1:
    phi r2, r4 => r5
    phi r3, r5 => r6
    loadI 1 => r7
    add r5, r7 => r4
    cmpLT r4, r1 => r8
    cbr r8 -> b1, b2
b2:
    ret r6
}
`
	// φs swap-read: r6 gets the PREVIOUS r5 each iteration.
	m := interp.NewMachine(mustProg(t, src))
	v, err := m.Call("f", interp.IntVal(3))
	if err != nil {
		t.Fatal(err)
	}
	// iter1: r5=0 r6=10 r4=1; iter2: r5=1 r6=0 r4=2; iter3: r5=2 r6=1 r4=3 exit → ret r6=1
	if v.I != 1 {
		t.Errorf("got %d, want 1 (parallel φ semantics)", v.I)
	}
}

func TestPrintBuiltin(t *testing.T) {
	const src = `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    call print(r1)
    loadF 1.5 => r2
    call print(r2)
    ret
}
`
	m := interp.NewMachine(mustProg(t, src))
	if _, err := m.Call("f", interp.IntVal(42)); err != nil {
		t.Fatal(err)
	}
	if len(m.Output) != 2 || m.Output[0].I != 42 || m.Output[1].F != 1.5 {
		t.Errorf("output = %v", m.Output)
	}
}

func TestBlockCounts(t *testing.T) {
	const src = `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    jump -> b1
b1:
    loadI 1 => r3
    add r2, r3 => r2
    cmpLT r2, r1 => r4
    cbr r4 -> b1, b2
b2:
    ret r2
}
`
	m := interp.NewMachine(mustProg(t, src))
	m.EnableBlockCounts()
	if _, err := m.Call("f", interp.IntVal(5)); err != nil {
		t.Fatal(err)
	}
	counts := m.BlockCounts["f"]
	if counts["b1"] != 5 || counts["b0"] != 1 || counts["b2"] != 1 {
		t.Errorf("block counts: %v", counts)
	}
}

func TestUninitializedRegisterReadsZero(t *testing.T) {
	const src = `
program globalsize=0
func f(r1) {
b0:
    enter(r1)
    add r1, r9 => r2
    ret r2
}
`
	m := interp.NewMachine(mustProg(t, src))
	v, err := m.Call("f", interp.IntVal(7))
	if err != nil || v.I != 7 {
		t.Errorf("got %v, %v", v, err)
	}
}
