package interp_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/peephole"
	"repro/internal/sccp"
)

// TestFoldMatchesExecution checks, for every pure operation over a grid
// of constant operands, that compile-time folding (sccp and peephole)
// computes exactly what the interpreter computes.  This pins the three
// implementations of each operator's semantics to one another and
// exercises every arithmetic arm of all three packages.
func TestFoldMatchesExecution(t *testing.T) {
	intOps2 := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpMin, ir.OpMax,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE}
	intOps1 := []ir.Op{ir.OpNeg, ir.OpNot, ir.OpAbs, ir.OpI2F}
	fltOps2 := []ir.Op{ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFMin, ir.OpFMax,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE}
	fltOps1 := []ir.Op{ir.OpFNeg, ir.OpSqrt, ir.OpFAbs, ir.OpF2I}

	intVals := []int64{0, 1, -1, 2, 7, -13, 63, 64, 1 << 40, -(1 << 40)}
	fltVals := []float64{0, 1, -1, 0.5, -2.25, 16, 1e10, -1e-10}

	same := func(a, b interp.Value) bool {
		if a.Float != b.Float {
			return false
		}
		if a.Float {
			return a.F == b.F || (a.F != a.F && b.F != b.F) // NaN == NaN here
		}
		return a.I == b.I
	}
	check := func(name string, build func(f *ir.Func) *ir.Instr) {
		t.Helper()
		mk := func() *ir.Func {
			f := ir.NewFunc("f", 0)
			b := f.Entry()
			ret := build(f)
			b.Append(b.Fn.NewInstr(ir.OpRet, ir.NoReg, ret.Dst))
			return f
		}
		run := func(f *ir.Func) (interp.Value, error) {
			m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f}})
			return m.Call("f")
		}
		plain, errPlain := run(mk())

		folded := mk()
		sccp.Run(folded)
		viaSccp, errSccp := run(folded)

		peeped := mk()
		peephole.Run(peeped, peephole.Options{})
		viaPeep, errPeep := run(peeped)

		if (errPlain == nil) != (errSccp == nil) || (errPlain == nil) != (errPeep == nil) {
			t.Errorf("%s: trap disagreement: plain=%v sccp=%v peep=%v", name, errPlain, errSccp, errPeep)
			return
		}
		if errPlain != nil {
			return // all trap consistently (e.g. division by zero)
		}
		if !same(plain, viaSccp) {
			t.Errorf("%s: sccp fold %v != execution %v", name, viaSccp, plain)
		}
		if !same(plain, viaPeep) {
			t.Errorf("%s: peephole fold %v != execution %v", name, viaPeep, plain)
		}
	}

	for _, op := range intOps2 {
		for _, a := range intVals {
			for _, b := range intVals {
				op, a, b := op, a, b
				check(fmt.Sprintf("%s(%d,%d)", op, a, b), func(f *ir.Func) *ir.Instr {
					blk := f.Entry()
					ra, rb, rc := f.NewReg(), f.NewReg(), f.NewReg()
					blk.Append(blk.Fn.NewLoadI(ra, a))
					blk.Append(blk.Fn.NewLoadI(rb, b))
					in := f.NewInstr(op, rc, ra, rb)
					blk.Append(in)
					return in
				})
			}
		}
	}
	for _, op := range intOps1 {
		for _, a := range intVals {
			op, a := op, a
			check(fmt.Sprintf("%s(%d)", op, a), func(f *ir.Func) *ir.Instr {
				blk := f.Entry()
				ra, rc := f.NewReg(), f.NewReg()
				blk.Append(blk.Fn.NewLoadI(ra, a))
				in := f.NewInstr(op, rc, ra)
				blk.Append(in)
				return in
			})
		}
	}
	for _, op := range fltOps2 {
		for _, a := range fltVals {
			for _, b := range fltVals {
				op, a, b := op, a, b
				check(fmt.Sprintf("%s(%g,%g)", op, a, b), func(f *ir.Func) *ir.Instr {
					blk := f.Entry()
					ra, rb, rc := f.NewReg(), f.NewReg(), f.NewReg()
					blk.Append(blk.Fn.NewLoadF(ra, a))
					blk.Append(blk.Fn.NewLoadF(rb, b))
					in := f.NewInstr(op, rc, ra, rb)
					blk.Append(in)
					return in
				})
			}
		}
	}
	for _, op := range fltOps1 {
		for _, a := range fltVals {
			op, a := op, a
			check(fmt.Sprintf("%s(%g)", op, a), func(f *ir.Func) *ir.Instr {
				blk := f.Entry()
				ra, rc := f.NewReg(), f.NewReg()
				blk.Append(blk.Fn.NewLoadF(ra, a))
				in := f.NewInstr(op, rc, ra)
				blk.Append(in)
				return in
			})
		}
	}
}

// buildAndRun assembles a single-block function whose body is produced
// by build (returning the register to ret) and interprets it.
func buildAndRun(t *testing.T, globalSize int64, build func(f *ir.Func) ir.Reg) (interp.Value, *interp.Machine, error) {
	t.Helper()
	f := ir.NewFunc("f", 0)
	ret := build(f)
	f.Entry().Append(f.Entry().Fn.NewInstr(ir.OpRet, ir.NoReg, ret))
	p := &ir.Program{Funcs: []*ir.Func{f}, GlobalSize: globalSize}
	m := interp.NewMachine(p)
	v, err := m.Call("f")
	return v, m, err
}

// TestCopySemantics pins copy: the destination receives exactly the
// source value, including its integer/float kind.
func TestCopySemantics(t *testing.T) {
	v, _, err := buildAndRun(t, 0, func(f *ir.Func) ir.Reg {
		b := f.Entry()
		ra, rc := f.NewReg(), f.NewReg()
		b.Append(b.Fn.NewLoadI(ra, -42))
		b.Append(b.Fn.NewInstr(ir.OpCopy, rc, ra))
		return rc
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Float || v.I != -42 {
		t.Errorf("copy of int -42: got %v", v)
	}
	v, _, err = buildAndRun(t, 0, func(f *ir.Func) ir.Reg {
		b := f.Entry()
		ra, rc := f.NewReg(), f.NewReg()
		b.Append(b.Fn.NewLoadF(ra, -2.25))
		b.Append(b.Fn.NewInstr(ir.OpCopy, rc, ra))
		return rc
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Float || v.F != -2.25 {
		t.Errorf("copy of float -2.25: got %v", v)
	}
}

// TestMemoryOpSemantics pins the load/store family over a value grid:
// stw/ldw round-trip 8-byte integers exactly, std/ldd round-trip
// float64 bit patterns exactly, and sts/lds narrow through float32 —
// lds(sts(x)) must equal float64(float32(x)) bit for bit.
func TestMemoryOpSemantics(t *testing.T) {
	const addr = 16
	roundTrip := func(store, load ir.Op, val interp.Value) (interp.Value, error) {
		t.Helper()
		v, _, err := buildAndRun(t, 64, func(f *ir.Func) ir.Reg {
			b := f.Entry()
			rv, rp, rc := f.NewReg(), f.NewReg(), f.NewReg()
			if val.Float {
				b.Append(b.Fn.NewLoadF(rv, val.F))
			} else {
				b.Append(b.Fn.NewLoadI(rv, val.I))
			}
			b.Append(b.Fn.NewLoadI(rp, addr))
			b.Append(b.Fn.NewInstr(store, ir.NoReg, rv, rp))
			b.Append(b.Fn.NewInstr(load, rc, rp))
			return rc
		})
		return v, err
	}

	intVals := []int64{0, 1, -1, 123, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64}
	for _, want := range intVals {
		got, err := roundTrip(ir.OpStoreW, ir.OpLoadW, interp.Value{I: want})
		if err != nil {
			t.Fatalf("stw/ldw %d: %v", want, err)
		}
		if got.Float || got.I != want {
			t.Errorf("stw/ldw %d: got %v", want, got)
		}
	}

	fltVals := []float64{0, math.Copysign(0, -1), 1.5, -2.25, 1e300, 5e-324, math.Inf(1), math.Inf(-1), math.NaN()}
	for _, want := range fltVals {
		got, err := roundTrip(ir.OpStoreD, ir.OpLoadD, interp.Value{Float: true, F: want})
		if err != nil {
			t.Fatalf("std/ldd %g: %v", want, err)
		}
		if !got.Float || math.Float64bits(got.F) != math.Float64bits(want) {
			t.Errorf("std/ldd %g: got %v", want, got)
		}

		got, err = roundTrip(ir.OpStoreS, ir.OpLoadS, interp.Value{Float: true, F: want})
		if err != nil {
			t.Fatalf("sts/lds %g: %v", want, err)
		}
		narrowed := float64(float32(want))
		same := math.Float64bits(got.F) == math.Float64bits(narrowed) ||
			(math.IsNaN(got.F) && math.IsNaN(narrowed))
		if !got.Float || !same {
			t.Errorf("sts/lds %g: got %v, want %g", want, got, narrowed)
		}
	}
}

// TestMemoryOpBounds pins the trap semantics of every load and store:
// any access that is not wholly inside [0, GlobalSize) traps rather
// than reading or corrupting adjacent state.
func TestMemoryOpBounds(t *testing.T) {
	const size = 64
	ops := []struct {
		op    ir.Op
		width int64
	}{
		{ir.OpLoadW, 8}, {ir.OpLoadD, 8}, {ir.OpLoadS, 4},
		{ir.OpStoreW, 8}, {ir.OpStoreD, 8}, {ir.OpStoreS, 4},
	}
	for _, tc := range ops {
		for _, addr := range []int64{-8, -1, size - tc.width + 1, size, 1 << 32} {
			_, _, err := buildAndRun(t, size, func(f *ir.Func) ir.Reg {
				b := f.Entry()
				rv, rp, rc := f.NewReg(), f.NewReg(), f.NewReg()
				b.Append(b.Fn.NewLoadI(rc, 0))
				b.Append(b.Fn.NewLoadI(rp, addr))
				if tc.op.IsStore() {
					if tc.op == ir.OpStoreW {
						b.Append(b.Fn.NewLoadI(rv, 1))
					} else {
						b.Append(b.Fn.NewLoadF(rv, 1))
					}
					b.Append(b.Fn.NewInstr(tc.op, ir.NoReg, rv, rp))
				} else {
					b.Append(b.Fn.NewInstr(tc.op, rc, rp))
				}
				return rc
			})
			if err == nil {
				t.Errorf("%s at [%d..%d) in size-%d memory: want trap, got none",
					tc.op, addr, addr+tc.width, size)
			}
		}
	}
}

// TestOpSemanticsCoverage fails loudly when an operation is added to
// ir/op.go without execution-semantics coverage.  Every op returned by
// ir.Ops must be claimed by a test; an unclaimed op means this audit
// has a gap, and a claim for an op that no longer exists is stale.
func TestOpSemanticsCoverage(t *testing.T) {
	covered := map[ir.Op]string{
		// Pure value operations: folded-vs-executed grid above.
		ir.OpLoadI: "TestFoldMatchesExecution", ir.OpLoadF: "TestFoldMatchesExecution",
		ir.OpAdd: "TestFoldMatchesExecution", ir.OpSub: "TestFoldMatchesExecution",
		ir.OpMul: "TestFoldMatchesExecution", ir.OpDiv: "TestFoldMatchesExecution",
		ir.OpMod: "TestFoldMatchesExecution", ir.OpNeg: "TestFoldMatchesExecution",
		ir.OpAnd: "TestFoldMatchesExecution", ir.OpOr: "TestFoldMatchesExecution",
		ir.OpXor: "TestFoldMatchesExecution", ir.OpNot: "TestFoldMatchesExecution",
		ir.OpShl: "TestFoldMatchesExecution", ir.OpShr: "TestFoldMatchesExecution",
		ir.OpMin: "TestFoldMatchesExecution", ir.OpMax: "TestFoldMatchesExecution",
		ir.OpFAdd: "TestFoldMatchesExecution", ir.OpFSub: "TestFoldMatchesExecution",
		ir.OpFMul: "TestFoldMatchesExecution", ir.OpFDiv: "TestFoldMatchesExecution",
		ir.OpFNeg: "TestFoldMatchesExecution", ir.OpFMin: "TestFoldMatchesExecution",
		ir.OpFMax: "TestFoldMatchesExecution",
		ir.OpI2F:  "TestFoldMatchesExecution", ir.OpF2I: "TestFoldMatchesExecution",
		ir.OpSqrt: "TestFoldMatchesExecution", ir.OpFAbs: "TestFoldMatchesExecution",
		ir.OpAbs:   "TestFoldMatchesExecution",
		ir.OpCmpEQ: "TestFoldMatchesExecution", ir.OpCmpNE: "TestFoldMatchesExecution",
		ir.OpCmpLT: "TestFoldMatchesExecution", ir.OpCmpLE: "TestFoldMatchesExecution",
		ir.OpCmpGT: "TestFoldMatchesExecution", ir.OpCmpGE: "TestFoldMatchesExecution",
		ir.OpFCmpEQ: "TestFoldMatchesExecution", ir.OpFCmpNE: "TestFoldMatchesExecution",
		ir.OpFCmpLT: "TestFoldMatchesExecution", ir.OpFCmpLE: "TestFoldMatchesExecution",
		ir.OpFCmpGT: "TestFoldMatchesExecution", ir.OpFCmpGE: "TestFoldMatchesExecution",

		// Copies and memory: dedicated tests in this file.
		ir.OpCopy:  "TestCopySemantics",
		ir.OpLoadW: "TestMemoryOpSemantics", ir.OpLoadD: "TestMemoryOpSemantics",
		ir.OpLoadS:  "TestMemoryOpSemantics",
		ir.OpStoreW: "TestMemoryOpSemantics", ir.OpStoreD: "TestMemoryOpSemantics",
		ir.OpStoreS: "TestMemoryOpSemantics",

		// Control flow and linkage: interp_test.go.
		ir.OpRet:   "TestArithmetic (every fixture returns)",
		ir.OpJump:  "TestStepLimit, TestPhiExecution",
		ir.OpCBr:   "TestTraps (cbr on float), TestPhiExecution",
		ir.OpCall:  "TestTraps, TestCallDepthLimit, TestPrintBuiltin",
		ir.OpEnter: "TestTraps (parameter binding)",
		ir.OpPhi:   "TestPhiExecution",
	}
	for _, op := range ir.Ops() {
		if covered[op] == "" {
			t.Errorf("op %s has no semantics coverage; add a test and claim it here", op)
		}
	}
	ops := make(map[ir.Op]bool, len(covered))
	for _, op := range ir.Ops() {
		ops[op] = true
	}
	for op := range covered {
		if !ops[op] {
			t.Errorf("coverage table claims op %s, which ir.Ops no longer lists", op)
		}
	}
}
