package interp_test

import (
	"fmt"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/peephole"
	"repro/internal/sccp"
)

// TestFoldMatchesExecution checks, for every pure operation over a grid
// of constant operands, that compile-time folding (sccp and peephole)
// computes exactly what the interpreter computes.  This pins the three
// implementations of each operator's semantics to one another and
// exercises every arithmetic arm of all three packages.
func TestFoldMatchesExecution(t *testing.T) {
	intOps2 := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpMin, ir.OpMax,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE}
	intOps1 := []ir.Op{ir.OpNeg, ir.OpNot, ir.OpAbs, ir.OpI2F}
	fltOps2 := []ir.Op{ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFMin, ir.OpFMax,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE}
	fltOps1 := []ir.Op{ir.OpFNeg, ir.OpSqrt, ir.OpFAbs, ir.OpF2I}

	intVals := []int64{0, 1, -1, 2, 7, -13, 63, 64, 1 << 40, -(1 << 40)}
	fltVals := []float64{0, 1, -1, 0.5, -2.25, 16, 1e10, -1e-10}

	same := func(a, b interp.Value) bool {
		if a.Float != b.Float {
			return false
		}
		if a.Float {
			return a.F == b.F || (a.F != a.F && b.F != b.F) // NaN == NaN here
		}
		return a.I == b.I
	}
	check := func(name string, build func(f *ir.Func) *ir.Instr) {
		t.Helper()
		mk := func() *ir.Func {
			f := ir.NewFunc("f", 0)
			b := f.Entry()
			ret := build(f)
			b.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.Reg{ret.Dst}})
			return f
		}
		run := func(f *ir.Func) (interp.Value, error) {
			m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f}})
			return m.Call("f")
		}
		plain, errPlain := run(mk())

		folded := mk()
		sccp.Run(folded)
		viaSccp, errSccp := run(folded)

		peeped := mk()
		peephole.Run(peeped, peephole.Options{})
		viaPeep, errPeep := run(peeped)

		if (errPlain == nil) != (errSccp == nil) || (errPlain == nil) != (errPeep == nil) {
			t.Errorf("%s: trap disagreement: plain=%v sccp=%v peep=%v", name, errPlain, errSccp, errPeep)
			return
		}
		if errPlain != nil {
			return // all trap consistently (e.g. division by zero)
		}
		if !same(plain, viaSccp) {
			t.Errorf("%s: sccp fold %v != execution %v", name, viaSccp, plain)
		}
		if !same(plain, viaPeep) {
			t.Errorf("%s: peephole fold %v != execution %v", name, viaPeep, plain)
		}
	}

	for _, op := range intOps2 {
		for _, a := range intVals {
			for _, b := range intVals {
				op, a, b := op, a, b
				check(fmt.Sprintf("%s(%d,%d)", op, a, b), func(f *ir.Func) *ir.Instr {
					blk := f.Entry()
					ra, rb, rc := f.NewReg(), f.NewReg(), f.NewReg()
					blk.Append(ir.LoadI(ra, a))
					blk.Append(ir.LoadI(rb, b))
					in := ir.NewInstr(op, rc, ra, rb)
					blk.Append(in)
					return in
				})
			}
		}
	}
	for _, op := range intOps1 {
		for _, a := range intVals {
			op, a := op, a
			check(fmt.Sprintf("%s(%d)", op, a), func(f *ir.Func) *ir.Instr {
				blk := f.Entry()
				ra, rc := f.NewReg(), f.NewReg()
				blk.Append(ir.LoadI(ra, a))
				in := ir.NewInstr(op, rc, ra)
				blk.Append(in)
				return in
			})
		}
	}
	for _, op := range fltOps2 {
		for _, a := range fltVals {
			for _, b := range fltVals {
				op, a, b := op, a, b
				check(fmt.Sprintf("%s(%g,%g)", op, a, b), func(f *ir.Func) *ir.Instr {
					blk := f.Entry()
					ra, rb, rc := f.NewReg(), f.NewReg(), f.NewReg()
					blk.Append(ir.LoadF(ra, a))
					blk.Append(ir.LoadF(rb, b))
					in := ir.NewInstr(op, rc, ra, rb)
					blk.Append(in)
					return in
				})
			}
		}
	}
	for _, op := range fltOps1 {
		for _, a := range fltVals {
			if op == ir.OpSqrt && a < 0 {
				continue // NaN compares unequal to itself; skip
			}
			op, a := op, a
			check(fmt.Sprintf("%s(%g)", op, a), func(f *ir.Func) *ir.Instr {
				blk := f.Entry()
				ra, rc := f.NewReg(), f.NewReg()
				blk.Append(ir.LoadF(ra, a))
				in := ir.NewInstr(op, rc, ra)
				blk.Append(in)
				return in
			})
		}
	}
}
