package ir

import "strings"

// Instruction storage: every instruction of a function lives in a
// per-function arena — a chain of fixed-capacity chunks — and is
// identified by a dense InstrID assigned at allocation.  Chunks are
// extended in place and never reallocated, so *Instr pointers handed
// out by the constructors stay valid for the life of the function,
// while IDs keep side tables (and the Block instruction lists) free of
// pointers.  Operand lists are carved out of a shared per-function
// register pool, so a typical instruction costs no allocation of its
// own: one chunk allocation covers instrChunkSize instructions and one
// pool chunk covers argChunkSize operands.
//
// Ownership discipline: instructions are created only through the
// Func constructors (NewInstr, NewLoadI, NewLoadF, NewCopy, NewCall,
// NewPhi, CloneInstr).  The Block mutators verify ownership, and the
// repo linter's irconstruct rule rejects &ir.Instr{} composite
// literals outside this package.

const (
	instrChunkBits = 8
	instrChunkSize = 1 << instrChunkBits // instructions per arena chunk
	instrChunkMask = instrChunkSize - 1

	argChunkSize = 1024 // registers per operand-pool chunk
)

// Instr returns the arena instruction with the given dense ID.  The
// returned pointer is stable: arena chunks are never moved.
func (f *Func) Instr(id InstrID) *Instr {
	return &f.arena[id>>instrChunkBits][id&instrChunkMask]
}

// NumInstrIDs returns one past the highest allocated InstrID, so side
// tables indexed by InstrID can be sized with it.  IDs are never
// reused; instructions removed from a block keep their arena slot (and
// stay readable through Instr) until the function is dropped.
func (f *Func) NumInstrIDs() int { return int(f.numInstrs) }

// allocInstr reserves the next arena slot and stamps its ID.
func (f *Func) allocInstr() *Instr {
	if int(f.numInstrs)&instrChunkMask == 0 {
		f.arena = append(f.arena, make([]Instr, 0, instrChunkSize))
	}
	c := &f.arena[len(f.arena)-1]
	*c = append(*c, Instr{id: f.numInstrs + 1})
	f.numInstrs++
	return &(*c)[len(*c)-1]
}

// allocArgs carves an operand list of length n out of the register
// pool.  The view is capacity-clipped: a later append through it
// cannot bleed into a neighbouring instruction's operands.
func (f *Func) allocArgs(n int) []Reg {
	if n == 0 {
		return nil
	}
	if len(f.argPool)+n > cap(f.argPool) {
		c := argChunkSize
		if n > c {
			c = n
		}
		f.argPool = make([]Reg, 0, c)
	}
	s := len(f.argPool)
	f.argPool = f.argPool[:s+n]
	return f.argPool[s : s+n : s+n]
}

// NewInstr allocates an instruction in the function's arena with the
// given opcode, destination and operands (copied into the operand
// pool).
func (f *Func) NewInstr(op Op, dst Reg, args ...Reg) *Instr {
	in := f.allocInstr()
	in.Op, in.Dst = op, dst
	if len(args) > 0 {
		a := f.allocArgs(len(args))
		copy(a, args)
		in.Args = a
	}
	return in
}

// NewLoadI builds "loadI imm => dst" in the arena.
func (f *Func) NewLoadI(dst Reg, imm int64) *Instr {
	in := f.allocInstr()
	in.Op, in.Dst, in.Imm = OpLoadI, dst, imm
	return in
}

// NewLoadF builds "loadF fimm => dst" in the arena.
func (f *Func) NewLoadF(dst Reg, fimm float64) *Instr {
	in := f.allocInstr()
	in.Op, in.Dst, in.FImm = OpLoadF, dst, fimm
	return in
}

// NewCopy builds "copy src => dst" in the arena.
func (f *Func) NewCopy(dst, src Reg) *Instr {
	in := f.allocInstr()
	in.Op, in.Dst = OpCopy, dst
	a := f.allocArgs(1)
	a[0] = src
	in.Args = a
	return in
}

// NewCall builds "call callee(args...)" in the arena, interning the
// callee name into the function's symbol table.
func (f *Func) NewCall(callee string, dst Reg, args ...Reg) *Instr {
	in := f.NewInstr(OpCall, dst, args...)
	in.Sym = f.InternSym(callee)
	return in
}

// NewPhi builds a φ-node with nargs zeroed operand slots (one per
// predecessor, to be filled by the caller).
func (f *Func) NewPhi(dst Reg, nargs int) *Instr {
	in := f.allocInstr()
	in.Op, in.Dst = OpPhi, dst
	in.Args = f.allocArgs(nargs)
	return in
}

// CloneInstr copies in — owned by function src, which may be f itself
// or another function — into f's arena, re-interning any symbol.
func (f *Func) CloneInstr(in *Instr, src *Func) *Instr {
	cp := f.allocInstr()
	id := cp.id
	*cp = *in
	cp.id = id
	if len(in.Args) > 0 {
		a := f.allocArgs(len(in.Args))
		copy(a, in.Args)
		cp.Args = a
	} else {
		cp.Args = nil
	}
	if in.Sym != NoSym && src != f {
		cp.Sym = f.InternSym(src.SymName(in.Sym))
	}
	return cp
}

// owns reports whether in is a live slot of f's arena.
func (f *Func) owns(in *Instr) bool {
	id := in.ID()
	return id >= 0 && int(id) < f.NumInstrIDs() && f.Instr(id) == in
}

// InternSym interns a name into the function's symbol table and
// returns its index.  The empty name is NoSym.  Interning copies the
// string, so parser line buffers are not retained.
func (f *Func) InternSym(name string) Sym {
	if name == "" {
		return NoSym
	}
	if len(f.syms) == 0 {
		f.syms = append(f.syms, "") // slot 0 is NoSym
	}
	if f.symIdx == nil {
		f.symIdx = make(map[string]Sym, len(f.syms)+8)
		for i, s := range f.syms {
			if s != "" {
				f.symIdx[s] = Sym(i)
			}
		}
	}
	if s, ok := f.symIdx[name]; ok {
		return s
	}
	name = strings.Clone(name)
	s := Sym(len(f.syms))
	f.syms = append(f.syms, name)
	f.symIdx[name] = s
	return s
}

// SymName resolves an interned symbol back to its name.
func (f *Func) SymName(s Sym) string {
	if s <= 0 || int(s) >= len(f.syms) {
		return ""
	}
	return f.syms[s]
}

// internedName interns a block label through the symbol table and
// returns the canonical stored string.
func (f *Func) internedName(name string) string {
	s := f.InternSym(name)
	if s == NoSym {
		return ""
	}
	return f.syms[s]
}
