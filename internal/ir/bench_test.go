package ir_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/suite"
)

// benchCorpus renders the largest suite routines to ILOC text: the
// parser/printer workload is the same code the optimizer hot path
// reads and writes.
func benchCorpus(b *testing.B) map[string]string {
	b.Helper()
	corpus := map[string]string{}
	for _, name := range []string{"tomcatv", "deseco", "sgemv"} {
		r, ok := suite.ByName(name)
		if !ok {
			b.Fatalf("no suite routine %q", name)
		}
		prog, err := r.Compile()
		if err != nil {
			b.Fatal(err)
		}
		corpus[name] = prog.String()
	}
	return corpus
}

func BenchmarkParse(b *testing.B) {
	for name, text := range benchCorpus(b) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				if _, err := ir.ParseProgramString(text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPrint(b *testing.B) {
	for name, text := range benchCorpus(b) {
		prog, err := ir.ParseProgramString(text)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if out := prog.String(); len(out) == 0 {
					b.Fatal("empty print")
				}
			}
		})
	}
}

// TestParseRoundTrip pins the parser refactor: parse(print(parse(x)))
// must reproduce print(parse(x)) byte for byte over the bench corpus.
func TestParseRoundTrip(t *testing.T) {
	for _, name := range []string{"tomcatv", "deseco", "sgemv"} {
		r, ok := suite.ByName(name)
		if !ok {
			t.Fatalf("no suite routine %q", name)
		}
		prog, err := r.Compile()
		if err != nil {
			t.Fatal(err)
		}
		text := prog.String()
		reparsed, err := ir.ParseProgramString(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		if got := reparsed.String(); got != text {
			t.Errorf("%s: print→parse→print not a fixpoint", name)
		}
	}
}
