package ir

import "fmt"

// Block is a basic block: a straight-line instruction sequence ending in
// exactly one terminator.  Successor order is significant for cbr
// (Succs[0] is the taken/true target) and for φ-operands, which appear
// in predecessor order.
//
// Instrs holds dense arena IDs rather than pointers; resolve one with
// Block.Instr (by position) or Func.Instr (by ID).  The ID slice may be
// rebuilt freely by passes (filtering, splicing); the arena slots
// behind the IDs are stable for the life of the function.
type Block struct {
	ID     int // dense index within the function
	Name   string
	Instrs []InstrID
	Succs  []*Block
	Preds  []*Block
	Fn     *Func
}

// Instr returns the instruction at position i in the block.
func (b *Block) Instr(i int) *Instr { return b.Fn.Instr(b.Instrs[i]) }

// mustOwn verifies that in was allocated from the owning function's
// arena and returns its ID.  Catching foreign instructions here keeps
// every ID in a block resolvable through the function.
func (b *Block) mustOwn(in *Instr) InstrID {
	if b.Fn == nil || !b.Fn.owns(in) {
		panic(fmt.Sprintf("ir: instruction %v not allocated from the arena of the owning function", in.Op))
	}
	return in.ID()
}

// Terminator returns the block's final instruction, or nil if the block
// is empty or unterminated (only legal mid-construction).
func (b *Block) Terminator() *Instr {
	if n := len(b.Instrs); n > 0 {
		if in := b.Instr(n - 1); in.Op.IsTerminator() {
			return in
		}
	}
	return nil
}

// markCode bumps the owning function's code generation.
func (b *Block) markCode() {
	if b.Fn != nil {
		b.Fn.MarkCodeMutated()
	}
}

// Append adds an instruction at the end of the block, before any
// existing terminator.
func (b *Block) Append(in *Instr) {
	id := b.mustOwn(in)
	b.markCode()
	if t := b.Terminator(); t != nil {
		tid := b.Instrs[len(b.Instrs)-1]
		b.Instrs = append(b.Instrs[:len(b.Instrs)-1], id, tid)
		return
	}
	b.Instrs = append(b.Instrs, id)
}

// InsertAt inserts an instruction at index i.
func (b *Block) InsertAt(i int, in *Instr) {
	id := b.mustOwn(in)
	b.markCode()
	b.Instrs = append(b.Instrs, NoInstr)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = id
}

// RemoveAt deletes the instruction at index i.  The vacated tail slot
// is cleared so the slice backing array does not go on referencing the
// removed instruction's ID.
func (b *Block) RemoveAt(i int) {
	b.markCode()
	n := len(b.Instrs)
	copy(b.Instrs[i:], b.Instrs[i+1:])
	b.Instrs[n-1] = NoInstr
	b.Instrs = b.Instrs[:n-1]
}

// PredIndex returns the position of p in b.Preds, or -1.
func (b *Block) PredIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// Phis returns the IDs of the block's leading φ-instructions.
func (b *Block) Phis() []InstrID {
	n := 0
	for n < len(b.Instrs) && b.Instr(n).Op == OpPhi {
		n++
	}
	return b.Instrs[:n]
}

// AddEdge links b to succ, maintaining both adjacency lists.
func AddEdge(b, succ *Block) {
	b.Succs = append(b.Succs, succ)
	succ.Preds = append(succ.Preds, b)
	if b.Fn != nil {
		b.Fn.MarkCFGMutated()
	}
}

// RemoveEdge unlinks the edge b→succ.  If the target has φ-nodes, the
// operand for b is removed from each.
func RemoveEdge(b, succ *Block) {
	pi := succ.PredIndex(b)
	if pi < 0 {
		panic(fmt.Sprintf("ir: no edge %s -> %s", b.Name, succ.Name))
	}
	for _, pid := range succ.Phis() {
		phi := succ.Fn.Instr(pid)
		phi.Args = append(phi.Args[:pi], phi.Args[pi+1:]...)
	}
	succ.Preds = append(succ.Preds[:pi], succ.Preds[pi+1:]...)
	for i, s := range b.Succs {
		if s == succ {
			b.Succs = append(b.Succs[:i], b.Succs[i+1:]...)
			break
		}
	}
	if b.Fn != nil {
		b.Fn.MarkCFGMutated()
	}
}

// ReplaceSucc rewrites every successor edge b→from into b→to without
// touching predecessor lists; callers maintain those separately.
func (b *Block) ReplaceSucc(from, to *Block) {
	for i, s := range b.Succs {
		if s == from {
			b.Succs[i] = to
			if b.Fn != nil {
				b.Fn.MarkCFGMutated()
			}
		}
	}
}

// ReplacePred swaps predecessor old for new in place, preserving the
// positions of φ-operands.  This is the building block for critical
// edge splitting: the new block inherits old's φ slot.
func (b *Block) ReplacePred(old, new *Block) {
	for i, p := range b.Preds {
		if p == old {
			b.Preds[i] = new
			if b.Fn != nil {
				b.Fn.MarkCFGMutated()
			}
			return
		}
	}
	panic(fmt.Sprintf("ir: %s is not a predecessor of %s", old.Name, b.Name))
}

// String returns the block label.
func (b *Block) String() string { return b.Name }
