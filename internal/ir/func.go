package ir

import "fmt"

// Func is a single procedure: an entry block, a set of basic blocks and
// a virtual-register namespace.  Blocks[0] is always the entry block,
// whose first instruction is the enter operation defining the formal
// parameters.
//
// The function owns all storage for its instructions: the chunked
// instruction arena (see arena.go), the operand pool backing the Args
// lists, and the symbol table interning call symbols and block labels.
type Func struct {
	Name   string
	Params []Reg // parameter registers, in order (also on the enter instr)
	Blocks []*Block

	// Arena storage (see arena.go).
	arena     [][]Instr
	numInstrs InstrID
	argPool   []Reg
	syms      []string
	symIdx    map[string]Sym

	nextReg  Reg
	nextName int

	// Analysis generations.  cfgGen advances whenever the block/edge
	// structure changes (blocks added or removed, edges rewired);
	// codeGen advances on any mutation at all, structural or
	// instruction-level.  Cached analyses remember the generation they
	// were built at and rebuild when it has moved on (see
	// internal/analysis).  The ir and cfg mutating helpers bump these
	// automatically; passes that rewrite instruction slices directly
	// must call MarkCodeMutated themselves.
	cfgGen  uint64
	codeGen uint64
}

// CFGGeneration returns the structural mutation counter: it advances
// whenever blocks or edges change, invalidating CFG-shape analyses
// (reverse postorder, dominators, loops).
func (f *Func) CFGGeneration() uint64 { return f.cfgGen }

// CodeGeneration returns the code mutation counter: it advances on any
// mutation (a superset of CFGGeneration), invalidating analyses that
// read instructions, such as liveness.
func (f *Func) CodeGeneration() uint64 { return f.codeGen }

// MarkCFGMutated records a structural change (blocks/edges), bumping
// both generations.
func (f *Func) MarkCFGMutated() {
	f.cfgGen++
	f.codeGen++
}

// MarkCodeMutated records an instruction-level change that left the
// block/edge structure intact.  Passes that rewrite instruction slices
// in place (rather than through the Block helpers) call this so cached
// liveness is invalidated.
func (f *Func) MarkCodeMutated() { f.codeGen++ }

// NewFunc creates an empty function with an entry block containing an
// enter instruction for nparams parameters.
func NewFunc(name string, nparams int) *Func {
	f := &Func{Name: name, nextReg: 1}
	entry := f.NewBlock()
	params := make([]Reg, nparams)
	for i := range params {
		params[i] = f.NewReg()
	}
	f.Params = params
	entry.Append(f.NewInstr(OpEnter, NoReg, params...))
	return f
}

// NewReg allocates a fresh virtual register.  Allocating widens the
// register namespace that liveness sets are sized by, so it counts as
// a code mutation.
func (f *Func) NewReg() Reg {
	r := f.nextReg
	f.nextReg++
	f.codeGen++
	return r
}

// NumRegs returns one more than the highest allocated register, so that
// slices indexed by Reg can be sized with it.
func (f *Func) NumRegs() int { return int(f.nextReg) }

// SetRegHint raises the register counter to at least n (used by the
// parser when register numbers appear in the text).
func (f *Func) SetRegHint(n Reg) {
	if n >= f.nextReg {
		f.nextReg = n + 1
	}
}

// NewBlock appends a fresh, empty block with a unique label.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks), Name: f.internedName(fmt.Sprintf("b%d", f.nextName)), Fn: f}
	f.nextName++
	f.Blocks = append(f.Blocks, b)
	f.MarkCFGMutated()
	return b
}

// NewBlockNamed appends a fresh block with the given label, interned
// into the function's symbol table.
func (f *Func) NewBlockNamed(name string) *Block {
	b := &Block{ID: len(f.Blocks), Name: f.internedName(name), Fn: f}
	f.nextName++
	f.Blocks = append(f.Blocks, b)
	f.MarkCFGMutated()
	return b
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// EnterInstr returns the enter instruction in the entry block, or nil.
func (f *Func) EnterInstr() *Instr {
	if len(f.Blocks) > 0 && len(f.Blocks[0].Instrs) > 0 {
		if in := f.Blocks[0].Instr(0); in.Op == OpEnter {
			return in
		}
	}
	return nil
}

// Renumber reassigns dense block IDs after blocks are added or removed.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.ID = i
	}
}

// RemoveBlocks deletes every block for which dead reports true, fixing
// IDs.  Callers must already have unlinked all edges into dead blocks.
func (f *Func) RemoveBlocks(dead func(*Block) bool) {
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if !dead(b) {
			kept = append(kept, b)
		}
	}
	tail := f.Blocks[len(kept):]
	f.Blocks = kept
	for i := range tail {
		tail[i] = nil // release the dropped blocks to the collector
	}
	f.Renumber()
	f.MarkCFGMutated()
}

// InstrCount returns the static number of instructions in the function.
// This is the metric of the paper's Table 2 (code expansion).
func (f *Func) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// ForEachInstr calls fn for every instruction in block order.
func (f *Func) ForEachInstr(fn func(b *Block, i int, in *Instr)) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			fn(b, i, f.Instr(b.Instrs[i]))
		}
	}
}

// Clone returns a deep copy of the function.  The clone's arena is
// compacted to the live instructions in block order, so IDs are dense
// again even if the original accumulated dead arena slots; IDs are
// therefore not preserved across Clone.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:     f.Name,
		Params:   append([]Reg(nil), f.Params...),
		syms:     append([]string(nil), f.syms...),
		nextReg:  f.nextReg,
		nextName: f.nextName,
	}
	old2new := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Name: b.Name, Fn: nf}
		nb.Instrs = make([]InstrID, len(b.Instrs))
		for i, id := range b.Instrs {
			in := f.Instr(id)
			cp := nf.allocInstr()
			cid := cp.id
			*cp = *in
			cp.id = cid
			if len(in.Args) > 0 {
				a := nf.allocArgs(len(in.Args))
				copy(a, in.Args)
				cp.Args = a
			} else {
				cp.Args = nil
			}
			nb.Instrs[i] = cp.ID()
		}
		nf.Blocks = append(nf.Blocks, nb)
		old2new[b] = nb
	}
	for _, b := range f.Blocks {
		nb := old2new[b]
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, old2new[s])
		}
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, old2new[p])
		}
	}
	return nf
}

// Program is a collection of functions plus a static data segment
// layout.  GlobalSize is the number of bytes of flat memory the program
// needs for its statically allocated arrays; Data holds optional
// initialized words keyed by byte offset.
type Program struct {
	Funcs      []*Func
	GlobalSize int64
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Clone deep-copies the whole program.
func (p *Program) Clone() *Program {
	np := &Program{GlobalSize: p.GlobalSize}
	for _, f := range p.Funcs {
		np.Funcs = append(np.Funcs, f.Clone())
	}
	return np
}

// InstrCount returns the static instruction count over all functions.
func (p *Program) InstrCount() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.InstrCount()
	}
	return n
}
