package ir

import (
	"testing"
)

// FuzzParseRoundTrip checks the printer/parser pair: any text the
// parser accepts must print to a form that parses again to the same
// printed text (print∘parse is idempotent), and re-verification must
// agree between the two parses.  Seeds live in
// testdata/fuzz/FuzzParseRoundTrip.
func FuzzParseRoundTrip(f *testing.F) {
	f.Add("program globalsize=0\n\nfunc f() {\nb0:\n    enter()\n    loadI 1 => r1\n    ret r1\n}\n")
	f.Add("program globalsize=8\n\nfunc f(r1, r2) {\nb0:\n    enter(r1, r2)\n    add r1, r2 => r3\n    cmp_LT r1, r2 => r4\n    cbr r4 -> b1, b2\nb1:\n    ret r3\nb2:\n    ret r1\n}\n")
	f.Add("program globalsize=0\n\nfunc g(r1) {\nb0:\n    enter(r1)\n    loadFI 1.5 => r2\n    i2f r1 => r3\n    fadd r2, r3 => r4\n    fret r4\n}\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := ParseProgramString(text)
		if err != nil {
			t.Skip()
		}
		printed := p.String()
		p2, err := ParseProgramString(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput:\n%s\nprinted:\n%s", err, text, printed)
		}
		printed2 := p2.String()
		if printed2 != printed {
			t.Fatalf("print∘parse not idempotent:\nfirst:\n%s\nsecond:\n%s", printed, printed2)
		}
		err1 := VerifyProgram(p)
		err2 := VerifyProgram(p2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("verify disagrees across round trip: %v vs %v\nprinted:\n%s", err1, err2, printed)
		}
	})
}
