package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Reg names a virtual register.  Register 0 is "no register".
type Reg int32

// NoReg is the absent register (e.g. the destination of a store).
const NoReg Reg = 0

// String renders the register in ILOC syntax: r1, r2, ...
func (r Reg) String() string {
	if r == NoReg {
		return "r?"
	}
	return "r" + strconv.Itoa(int(r))
}

// Instr is a single ILOC instruction.
//
// Only the fields relevant to Op are meaningful: Imm for loadI, FImm for
// loadF, Sym for call.  Branch targets are not stored on the
// instruction; they are the owning block's Succs, in order.
type Instr struct {
	Op   Op
	Dst  Reg
	Args []Reg
	Imm  int64   // integer immediate (loadI)
	FImm float64 // floating immediate (loadF)
	Sym  string  // callee name (call)
}

// NewInstr builds an instruction with the given opcode, destination and
// arguments.
func NewInstr(op Op, dst Reg, args ...Reg) *Instr {
	return &Instr{Op: op, Dst: dst, Args: args}
}

// LoadI builds "loadI imm => dst".
func LoadI(dst Reg, imm int64) *Instr { return &Instr{Op: OpLoadI, Dst: dst, Imm: imm} }

// LoadF builds "loadF fimm => dst".
func LoadF(dst Reg, f float64) *Instr { return &Instr{Op: OpLoadF, Dst: dst, FImm: f} }

// Copy builds "copy src => dst".
func Copy(dst, src Reg) *Instr { return &Instr{Op: OpCopy, Dst: dst, Args: []Reg{src}} }

// Clone returns a deep copy of the instruction.
func (in *Instr) Clone() *Instr {
	cp := *in
	cp.Args = append([]Reg(nil), in.Args...)
	return &cp
}

// Uses returns the registers read by the instruction (the Args slice;
// callers must not mutate it through this accessor).
func (in *Instr) Uses() []Reg { return in.Args }

// ReplaceUses rewrites every use of register old to new and reports how
// many operands changed.
func (in *Instr) ReplaceUses(old, new Reg) int {
	n := 0
	for i, a := range in.Args {
		if a == old {
			in.Args[i] = new
			n++
		}
	}
	return n
}

// IsConst reports whether the instruction materializes a constant.
func (in *Instr) IsConst() bool { return in.Op == OpLoadI || in.Op == OpLoadF }

// String renders the instruction in ILOC text syntax (without branch
// targets, which belong to the block).
func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpLoadI:
		fmt.Fprintf(&b, " %d", in.Imm)
	case OpLoadF:
		fmt.Fprintf(&b, " %s", formatFloat(in.FImm))
	case OpCall:
		b.WriteByte(' ')
		b.WriteString(in.Sym)
		b.WriteByte('(')
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteByte(')')
	case OpEnter:
		b.WriteByte('(')
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteByte(')')
	case OpLoadW, OpLoadD, OpLoadS:
		fmt.Fprintf(&b, " [%s]", in.Args[0])
	case OpStoreW, OpStoreD, OpStoreS:
		fmt.Fprintf(&b, " %s => [%s]", in.Args[0], in.Args[1])
		return b.String()
	default:
		for i, a := range in.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte(' ')
			b.WriteString(a.String())
		}
	}
	if in.Dst != NoReg {
		fmt.Fprintf(&b, " => %s", in.Dst)
	}
	return b.String()
}

// formatFloat renders a float immediate so that the parser can read it
// back exactly and always distinguishes it from an integer.
func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eEnN") { // ensure a float marker (Inf/NaN keep letters)
		s += ".0"
	}
	return s
}
