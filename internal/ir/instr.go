package ir

import "strconv"

// Reg names a virtual register.  Register 0 is "no register".
type Reg int32

// NoReg is the absent register (e.g. the destination of a store).
const NoReg Reg = 0

// regNameCacheSize bounds the precomputed register-name table; names
// of larger register numbers fall back to strconv.
const regNameCacheSize = 2048

// regNames caches the textual form of small register numbers so the
// print hot path does not call strconv.Itoa once per operand.
var regNames = func() [regNameCacheSize]string {
	var t [regNameCacheSize]string
	t[0] = "r?"
	for i := 1; i < len(t); i++ {
		t[i] = "r" + strconv.Itoa(i)
	}
	return t
}()

// String renders the register in ILOC syntax: r1, r2, ...
func (r Reg) String() string {
	if r > NoReg && int(r) < len(regNames) {
		return regNames[r]
	}
	if r == NoReg {
		return "r?"
	}
	return "r" + strconv.Itoa(int(r))
}

// appendReg appends the register's ILOC name to buf.
func appendReg(buf []byte, r Reg) []byte {
	if r > NoReg && int(r) < len(regNames) {
		return append(buf, regNames[r]...)
	}
	if r == NoReg {
		return append(buf, "r?"...)
	}
	buf = append(buf, 'r')
	return strconv.AppendInt(buf, int64(r), 10)
}

// InstrID densely identifies an instruction within its owning
// function's arena.  IDs are assigned in allocation order and never
// reused for the life of the function, so side tables indexed by
// InstrID stay valid across block-list surgery.
type InstrID int32

// NoInstr is the absent instruction ID.
const NoInstr InstrID = -1

// Sym is an interned symbol: an index into the owning function's
// symbol table (see Func.InternSym and Func.SymName).  The zero Sym is
// the empty name.
type Sym int32

// NoSym is the absent symbol.
const NoSym Sym = 0

// Instr is a single ILOC instruction, stored in its function's arena.
//
// Only the fields relevant to Op are meaningful: Imm for loadI, FImm
// for loadF, Sym for call.  Branch targets are not stored on the
// instruction; they are the owning block's Succs, in order.  Args is a
// capacity-clipped view into the function's operand pool: elements may
// be rewritten in place (and the view shrunk), but appending past its
// length reallocates the list off-pool.
type Instr struct {
	Op   Op
	Dst  Reg
	Args []Reg
	Imm  int64   // integer immediate (loadI)
	FImm float64 // floating immediate (loadF)
	Sym  Sym     // interned callee name (call)

	// id holds the arena slot plus one, so the zero Instr — which was
	// not allocated from any arena — reports NoInstr.
	id InstrID
}

// ID returns the instruction's dense arena ID, or NoInstr if the
// instruction was not allocated from a function arena.
func (in *Instr) ID() InstrID {
	if in.id == 0 {
		return NoInstr
	}
	return in.id - 1
}

// Uses returns the registers read by the instruction (the Args list;
// callers must not grow it through this accessor).
func (in *Instr) Uses() []Reg { return in.Args }

// ReplaceUses rewrites every use of register old to new and reports how
// many operands changed.
func (in *Instr) ReplaceUses(old, new Reg) int {
	n := 0
	for i, a := range in.Args {
		if a == old {
			in.Args[i] = new
			n++
		}
	}
	return n
}

// IsConst reports whether the instruction materializes a constant.
func (in *Instr) IsConst() bool { return in.Op == OpLoadI || in.Op == OpLoadF }

// appendInstr appends the instruction in ILOC text syntax (without
// branch targets, which belong to the block).  The owning function
// resolves interned call symbols.
func appendInstr(buf []byte, f *Func, in *Instr) []byte {
	buf = append(buf, in.Op.String()...)
	switch in.Op {
	case OpLoadI:
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, in.Imm, 10)
	case OpLoadF:
		buf = append(buf, ' ')
		buf = appendFloat(buf, in.FImm)
	case OpCall:
		buf = append(buf, ' ')
		buf = append(buf, f.SymName(in.Sym)...)
		buf = append(buf, '(')
		for i, a := range in.Args {
			if i > 0 {
				buf = append(buf, ", "...)
			}
			buf = appendReg(buf, a)
		}
		buf = append(buf, ')')
	case OpEnter:
		buf = append(buf, '(')
		for i, a := range in.Args {
			if i > 0 {
				buf = append(buf, ", "...)
			}
			buf = appendReg(buf, a)
		}
		buf = append(buf, ')')
	case OpLoadW, OpLoadD, OpLoadS:
		buf = append(buf, " ["...)
		buf = appendReg(buf, in.Args[0])
		buf = append(buf, ']')
	case OpStoreW, OpStoreD, OpStoreS:
		buf = append(buf, ' ')
		buf = appendReg(buf, in.Args[0])
		buf = append(buf, " => ["...)
		buf = appendReg(buf, in.Args[1])
		buf = append(buf, ']')
		return buf
	default:
		for i, a := range in.Args {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, ' ')
			buf = appendReg(buf, a)
		}
	}
	if in.Dst != NoReg {
		buf = append(buf, " => "...)
		buf = appendReg(buf, in.Dst)
	}
	return buf
}

// InstrString renders an instruction of f in ILOC text syntax.
func (f *Func) InstrString(in *Instr) string {
	return string(appendInstr(nil, f, in))
}

// appendFloat renders a float immediate so that the parser can read it
// back exactly and always distinguishes it from an integer.
func appendFloat(buf []byte, fl float64) []byte {
	start := len(buf)
	buf = strconv.AppendFloat(buf, fl, 'g', -1, 64)
	marker := false
	for _, c := range buf[start:] { // ensure a float marker (Inf/NaN keep letters)
		if c == '.' || c == 'e' || c == 'E' || c == 'n' || c == 'N' {
			marker = true
			break
		}
	}
	if !marker {
		buf = append(buf, ".0"...)
	}
	return buf
}

// formatFloat is appendFloat as a string.
func formatFloat(fl float64) string { return string(appendFloat(nil, fl)) }

// SetLoadI rewrites the instruction in place into loadI v => dst,
// keeping its arena identity.
func (in *Instr) SetLoadI(v int64) {
	in.Op, in.Args, in.Imm, in.FImm, in.Sym = OpLoadI, nil, v, 0, NoSym
}

// SetLoadF rewrites the instruction in place into loadF v => dst.
func (in *Instr) SetLoadF(v float64) {
	in.Op, in.Args, in.Imm, in.FImm, in.Sym = OpLoadF, nil, 0, v, NoSym
}

// SetCopy rewrites the instruction in place into copy src => dst.  The
// operand list reuses the instruction's existing pool view when it has
// capacity.
func (in *Instr) SetCopy(src Reg) {
	in.Op, in.Imm, in.FImm, in.Sym = OpCopy, 0, 0, NoSym
	in.Args = append(in.Args[:0], src)
}

// SetOp2 rewrites the instruction in place into a two-operand pure
// operation op a, b => dst.
func (in *Instr) SetOp2(op Op, a, b Reg) {
	in.Op, in.Imm, in.FImm, in.Sym = op, 0, 0, NoSym
	in.Args = append(in.Args[:0], a, b)
}
