package ir_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// sampleFunc exercises every syntactic form the printer emits.
const sampleFunc = `
func sample(r1, r2) {
b0:
    enter(r1, r2)
    loadI 42 => r3
    loadF 2.5 => r4
    add r1, r3 => r5
    fadd r4, r4 => r6
    sub r5, r3 => r7
    neg r7 => r8
    i2f r8 => r9
    f2i r9 => r10
    sqrt r6 => r11
    cmpLT r10, r3 => r12
    cbr r12 -> b1, b2
b1:
    stw r5 => [r3]
    ldw [r3] => r13
    std r6 => [r5]
    ldd [r5] => r14
    sts r6 => [r5]
    lds [r5] => r15
    call helper(r13, r5) => r16
    copy r16 => r17
    jump -> b2
b2:
    min r3, r5 => r18
    max r3, r5 => r19
    and r3, r5 => r20
    or r3, r5 => r21
    xor r3, r5 => r22
    not r3 => r23
    shl r3, r5 => r24
    shr r3, r5 => r25
    mod r5, r3 => r26
    div r5, r3 => r27
    fabs r4 => r28
    abs r8 => r29
    ret r5
}
`

func TestRoundTrip(t *testing.T) {
	f, err := ir.ParseFuncString(sampleFunc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	text1 := f.String()
	f2, err := ir.ParseFuncString(text1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	text2 := f2.String()
	if text1 != text2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestRoundTripProgram(t *testing.T) {
	src := "program globalsize=128\n" + sampleFunc + `
func helper(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    ret r3
}
`
	p, err := ir.ParseProgramString(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.GlobalSize != 128 {
		t.Errorf("globalsize = %d, want 128", p.GlobalSize)
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("got %d functions", len(p.Funcs))
	}
	text := p.String()
	p2, err := ir.ParseProgramString(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p2.String() != text {
		t.Error("program round trip not stable")
	}
}

func TestParseRejects(t *testing.T) {
	progCases := []struct{ src, want string }{
		{"", "empty input"},
		{"program globalsize=x\n", "bad globalsize"},
		{"program foo=1\n", "unknown program field"},
	}
	for _, c := range progCases {
		_, err := ir.ParseProgramString(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: got %v, want error containing %q", c.src, err, c.want)
		}
	}
	cases := []struct{ src, want string }{
		{"func f() {\n}\n", "no blocks"},
		{"func f() {\nb0:\n    bogus r1 => r2\n}\n", "unknown opcode"},
		{"func f() {\n    loadI 1 => r1\n}\n", "before first label"},
		{"func f() {\nb0:\n    jump -> nowhere\n}\n", "undefined label"},
		{"func f() {\nb0:\n    loadI 1 => r1\nb0:\n    ret\n}\n", "duplicate label"},
		{"func f() {\nb0:\n    add r1 => r2\n}\n", "expects 2 operands"},
		{"func f() {\nb0:\n    add r1, r2\n}\n", "requires a destination"},
		{"func f() {\nb0:\n    loadI 9999999999999999999999 => r1\n}\n", "bad integer immediate"},
		{"func f() {\nb0:\n    add rx, r2 => r3\n}\n", "bad register"},
	}
	for _, c := range cases {
		_, err := ir.ParseFuncString(c.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestVerifyCatches(t *testing.T) {
	// Build structurally broken functions by hand.
	t.Run("missing terminator", func(t *testing.T) {
		f := ir.NewFunc("f", 0)
		if err := ir.Verify(f); err == nil {
			t.Error("expected error for unterminated block")
		}
	})
	t.Run("cbr with one successor", func(t *testing.T) {
		f := ir.NewFunc("f", 1)
		b := f.Entry()
		b2 := f.NewBlock()
		b.Append(b.Fn.NewInstr(ir.OpCBr, ir.NoReg, f.Params[0]))
		ir.AddEdge(b, b2)
		b2.Append(b2.Fn.NewInstr(ir.OpRet, ir.NoReg))
		if err := ir.Verify(f); err == nil || !strings.Contains(err.Error(), "successors") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("phi arity mismatch", func(t *testing.T) {
		f := ir.NewFunc("f", 1)
		b := f.Entry()
		b2 := f.NewBlock()
		b.Append(b.Fn.NewInstr(ir.OpJump, ir.NoReg))
		ir.AddEdge(b, b2)
		phi := f.NewInstr(ir.OpPhi, f.NewReg(), f.Params[0], f.Params[0])
		b2.InsertAt(0, phi)
		b2.Append(b2.Fn.NewInstr(ir.OpRet, ir.NoReg))
		if err := ir.Verify(f); err == nil || !strings.Contains(err.Error(), "φ") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("register out of range", func(t *testing.T) {
		f := ir.NewFunc("f", 0)
		b := f.Entry()
		b.Append(b.Fn.NewLoadI(ir.Reg(9999), 1))
		b.Append(b.Fn.NewInstr(ir.OpRet, ir.NoReg))
		if err := ir.Verify(f); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("dangling pred", func(t *testing.T) {
		f := ir.NewFunc("f", 0)
		b := f.Entry()
		b2 := f.NewBlock()
		b.Append(b.Fn.NewInstr(ir.OpRet, ir.NoReg))
		b2.Append(b2.Fn.NewInstr(ir.OpRet, ir.NoReg))
		b2.Preds = append(b2.Preds, b) // bogus: b has no edge to b2
		if err := ir.Verify(f); err == nil || !strings.Contains(err.Error(), "missing from") {
			t.Errorf("got %v", err)
		}
	})
}

func TestCloneIndependence(t *testing.T) {
	f, err := ir.ParseFuncString(sampleFunc)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Clone()
	if g.String() != f.String() {
		t.Fatal("clone differs from original")
	}
	// Mutating the clone must not affect the original.
	g.Blocks[0].Instr(1).Imm = 999
	g.Blocks[0].Instr(3).Args[0] = ir.Reg(2)
	if strings.Contains(f.String(), "999") {
		t.Error("mutating clone leaked into original")
	}
	// Edges must reference the clone's blocks, not the original's.
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Fn != g {
				t.Fatal("clone successor points into original function")
			}
		}
	}
}

func TestRemoveEdgeTrimsPhis(t *testing.T) {
	f := ir.NewFunc("f", 2)
	b0 := f.Entry()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b0.Append(b0.Fn.NewInstr(ir.OpCBr, ir.NoReg, f.Params[0]))
	ir.AddEdge(b0, b1)
	ir.AddEdge(b0, b2)
	b1.Append(b1.Fn.NewInstr(ir.OpJump, ir.NoReg))
	ir.AddEdge(b1, b3)
	b2.Append(b2.Fn.NewInstr(ir.OpJump, ir.NoReg))
	ir.AddEdge(b2, b3)
	phi := f.NewInstr(ir.OpPhi, f.NewReg(), f.Params[0], f.Params[1])
	b3.InsertAt(0, phi)
	b3.Append(b3.Fn.NewInstr(ir.OpRet, ir.NoReg, phi.Dst))
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	ir.RemoveEdge(b2, b3)
	if len(phi.Args) != 1 || phi.Args[0] != f.Params[0] {
		t.Errorf("φ operands after edge removal: %v", phi.Args)
	}
	if len(b3.Preds) != 1 {
		t.Errorf("preds after edge removal: %d", len(b3.Preds))
	}
}

func TestBlockHelpers(t *testing.T) {
	f := ir.NewFunc("f", 0)
	b := f.Entry()
	b.Append(b.Fn.NewLoadI(f.NewReg(), 1))
	b.Append(b.Fn.NewInstr(ir.OpRet, ir.NoReg))
	// Append must keep the terminator last.
	b.Append(b.Fn.NewLoadI(f.NewReg(), 2))
	if b.Terminator() == nil || b.Terminator().Op != ir.OpRet {
		t.Fatal("Append broke the terminator position")
	}
	if len(b.Instrs) != 4 {
		t.Fatalf("got %d instrs", len(b.Instrs))
	}
	b.RemoveAt(1)
	if len(b.Instrs) != 3 {
		t.Fatalf("RemoveAt: got %d instrs", len(b.Instrs))
	}
}

func TestInstrHelpers(t *testing.T) {
	f := ir.NewFunc("f", 0)
	in := f.NewInstr(ir.OpAdd, 3, 1, 2)
	if n := in.ReplaceUses(1, 7); n != 1 || in.Args[0] != 7 {
		t.Errorf("ReplaceUses: n=%d args=%v", n, in.Args)
	}
	cp := f.CloneInstr(in, f)
	cp.Args[0] = 9
	if in.Args[0] == 9 {
		t.Error("CloneInstr shares Args")
	}
	if !f.NewLoadI(1, 5).IsConst() || f.NewCopy(1, 2).IsConst() {
		t.Error("IsConst misclassifies")
	}
}

func TestOpTable(t *testing.T) {
	// Mnemonic lookup round-trips for every op with a name.
	for op := ir.OpLoadI; op <= ir.OpPhi; op++ {
		got, ok := ir.OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	// Associative ops are commutative.
	for op := ir.OpLoadI; op <= ir.OpPhi; op++ {
		if op.Associative() && !op.Commutative() {
			t.Errorf("%s associative but not commutative", op)
		}
	}
	if !ir.OpStoreW.WritesMemory() || !ir.OpLoadW.ReadsMemory() {
		t.Error("memory flags wrong")
	}
	if ir.OpSub.Associative() || ir.OpShl.Associative() {
		t.Error("sub/shl must not be associative")
	}
}
