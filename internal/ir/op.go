// Package ir defines the ILOC-like three-address intermediate
// representation used throughout the library.
//
// The representation follows the paper's description of ILOC (Briggs &
// Cooper, "Effective Partial Redundancy Elimination", PLDI 1994, §2.1):
// most operations have three addresses — two source operands and a
// target.  Values live in an unbounded set of virtual registers; memory
// is reached only through explicit load and store operations whose
// addresses are computed with ordinary arithmetic.  Control flow is
// explicit: every basic block ends in exactly one terminator (jump,
// conditional branch, or return).
//
// The package provides construction helpers, a textual printer and
// parser that round-trip, a structural verifier, and deep cloning.
package ir

import "fmt"

// Op identifies an ILOC operation.
type Op uint8

// The ILOC operation set.
const (
	OpInvalid Op = iota

	// Constants.
	OpLoadI // loadI <imm>          => dst   (integer constant)
	OpLoadF // loadF <fimm>         => dst   (floating constant)

	// Integer arithmetic.
	OpAdd // add  a, b => dst
	OpSub // sub  a, b => dst
	OpMul // mul  a, b => dst
	OpDiv // div  a, b => dst  (quotient truncated toward zero)
	OpMod // mod  a, b => dst
	OpNeg // neg  a    => dst

	// Bitwise and shift operations.
	OpAnd // and a, b => dst
	OpOr  // or  a, b => dst
	OpXor // xor a, b => dst
	OpNot // not a    => dst
	OpShl // shl a, b => dst
	OpShr // shr a, b => dst (arithmetic shift right)

	// Integer min/max (associative, commutative; the paper lists min
	// and max among the associative operations of §2.1).
	OpMin // min a, b => dst
	OpMax // max a, b => dst

	// Floating-point arithmetic (registers hold float64).
	OpFAdd // fadd a, b => dst
	OpFSub // fsub a, b => dst
	OpFMul // fmul a, b => dst
	OpFDiv // fdiv a, b => dst
	OpFNeg // fneg a    => dst
	OpFMin // fmin a, b => dst
	OpFMax // fmax a, b => dst

	// Conversions.
	OpI2F // i2f a => dst
	OpF2I // f2i a => dst (truncates toward zero)

	// Pure unary intrinsics.
	OpSqrt // sqrt a => dst (float)
	OpFAbs // fabs a => dst (float)
	OpAbs  // abs  a => dst (integer)

	// Integer comparisons; result is the integer 0 or 1.
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Floating comparisons; result is the integer 0 or 1.
	OpFCmpEQ
	OpFCmpNE
	OpFCmpLT
	OpFCmpLE
	OpFCmpGT
	OpFCmpGE

	// Copy ("i2i" in classic ILOC).  Copies are the only instructions
	// whose targets count as variable names under the paper's naming
	// discipline (§2.2); every other target is an expression name.
	OpCopy // copy a => dst

	// Memory operations.  Addresses are byte offsets into the flat
	// program memory.  ldw/stw move 8-byte integers, ldd/std move
	// 8-byte float64s, lds/sts move 4-byte float32s (widened to
	// float64 in registers).  Stores name the value first and the
	// address second: "stw a => [b]" means MEM[b] = a.
	OpLoadW  // ldw [a] => dst
	OpLoadD  // ldd [a] => dst
	OpLoadS  // lds [a] => dst
	OpStoreW // stw a => [b]
	OpStoreD // std a => [b]
	OpStoreS // sts a => [b]

	// Control flow.
	OpJump // jump -> succ0
	OpCBr  // cbr a -> succ0, succ1   (succ0 if a != 0)
	OpRet  // ret [a]

	// Procedure linkage.
	OpCall  // call name(args...) [=> dst]
	OpEnter // enter(params...)  — first instruction of the entry block

	// SSA φ-node: one argument per predecessor, in predecessor order.
	OpPhi // phi a, b, ... => dst
)

// opInfo records the static properties of an operation.
type opInfo struct {
	name        string
	arity       int  // -1 means variadic (call, enter, phi)
	hasDst      bool // defines a register
	commutative bool
	associative bool
	float       bool // float-valued result
	pure        bool // no side effects, no memory access
	terminator  bool
	memRead     bool
	memWrite    bool
}

var opTable = [...]opInfo{
	OpInvalid: {name: "invalid"},

	OpLoadI: {name: "loadI", arity: 0, hasDst: true, pure: true},
	OpLoadF: {name: "loadF", arity: 0, hasDst: true, pure: true, float: true},

	OpAdd: {name: "add", arity: 2, hasDst: true, pure: true, commutative: true, associative: true},
	OpSub: {name: "sub", arity: 2, hasDst: true, pure: true},
	OpMul: {name: "mul", arity: 2, hasDst: true, pure: true, commutative: true, associative: true},
	OpDiv: {name: "div", arity: 2, hasDst: true, pure: true},
	OpMod: {name: "mod", arity: 2, hasDst: true, pure: true},
	OpNeg: {name: "neg", arity: 1, hasDst: true, pure: true},

	OpAnd: {name: "and", arity: 2, hasDst: true, pure: true, commutative: true, associative: true},
	OpOr:  {name: "or", arity: 2, hasDst: true, pure: true, commutative: true, associative: true},
	OpXor: {name: "xor", arity: 2, hasDst: true, pure: true, commutative: true, associative: true},
	OpNot: {name: "not", arity: 1, hasDst: true, pure: true},
	OpShl: {name: "shl", arity: 2, hasDst: true, pure: true},
	OpShr: {name: "shr", arity: 2, hasDst: true, pure: true},

	OpMin: {name: "min", arity: 2, hasDst: true, pure: true, commutative: true, associative: true},
	OpMax: {name: "max", arity: 2, hasDst: true, pure: true, commutative: true, associative: true},

	OpFAdd: {name: "fadd", arity: 2, hasDst: true, pure: true, float: true, commutative: true, associative: true},
	OpFSub: {name: "fsub", arity: 2, hasDst: true, pure: true, float: true},
	OpFMul: {name: "fmul", arity: 2, hasDst: true, pure: true, float: true, commutative: true, associative: true},
	OpFDiv: {name: "fdiv", arity: 2, hasDst: true, pure: true, float: true},
	OpFNeg: {name: "fneg", arity: 1, hasDst: true, pure: true, float: true},
	OpFMin: {name: "fmin", arity: 2, hasDst: true, pure: true, float: true, commutative: true, associative: true},
	OpFMax: {name: "fmax", arity: 2, hasDst: true, pure: true, float: true, commutative: true, associative: true},

	OpI2F: {name: "i2f", arity: 1, hasDst: true, pure: true, float: true},
	OpF2I: {name: "f2i", arity: 1, hasDst: true, pure: true},

	OpSqrt: {name: "sqrt", arity: 1, hasDst: true, pure: true, float: true},
	OpFAbs: {name: "fabs", arity: 1, hasDst: true, pure: true, float: true},
	OpAbs:  {name: "abs", arity: 1, hasDst: true, pure: true},

	OpCmpEQ: {name: "cmpEQ", arity: 2, hasDst: true, pure: true, commutative: true},
	OpCmpNE: {name: "cmpNE", arity: 2, hasDst: true, pure: true, commutative: true},
	OpCmpLT: {name: "cmpLT", arity: 2, hasDst: true, pure: true},
	OpCmpLE: {name: "cmpLE", arity: 2, hasDst: true, pure: true},
	OpCmpGT: {name: "cmpGT", arity: 2, hasDst: true, pure: true},
	OpCmpGE: {name: "cmpGE", arity: 2, hasDst: true, pure: true},

	OpFCmpEQ: {name: "fcmpEQ", arity: 2, hasDst: true, pure: true, commutative: true},
	OpFCmpNE: {name: "fcmpNE", arity: 2, hasDst: true, pure: true, commutative: true},
	OpFCmpLT: {name: "fcmpLT", arity: 2, hasDst: true, pure: true},
	OpFCmpLE: {name: "fcmpLE", arity: 2, hasDst: true, pure: true},
	OpFCmpGT: {name: "fcmpGT", arity: 2, hasDst: true, pure: true},
	OpFCmpGE: {name: "fcmpGE", arity: 2, hasDst: true, pure: true},

	OpCopy: {name: "copy", arity: 1, hasDst: true, pure: true},

	OpLoadW:  {name: "ldw", arity: 1, hasDst: true, memRead: true},
	OpLoadD:  {name: "ldd", arity: 1, hasDst: true, float: true, memRead: true},
	OpLoadS:  {name: "lds", arity: 1, hasDst: true, float: true, memRead: true},
	OpStoreW: {name: "stw", arity: 2, memWrite: true},
	OpStoreD: {name: "std", arity: 2, memWrite: true},
	OpStoreS: {name: "sts", arity: 2, memWrite: true},

	OpJump: {name: "jump", arity: 0, terminator: true},
	OpCBr:  {name: "cbr", arity: 1, terminator: true},
	OpRet:  {name: "ret", arity: -1, terminator: true},

	OpCall:  {name: "call", arity: -1, memRead: true, memWrite: true},
	OpEnter: {name: "enter", arity: -1},

	OpPhi: {name: "phi", arity: -1, hasDst: true, pure: true},
}

// String returns the ILOC mnemonic for the operation.
func (op Op) String() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Arity reports the fixed operand count, or -1 for variadic operations.
func (op Op) Arity() int { return opTable[op].arity }

// HasDst reports whether the operation defines a register.
func (op Op) HasDst() bool { return opTable[op].hasDst }

// Commutative reports whether the operands may be swapped.
func (op Op) Commutative() bool { return opTable[op].commutative }

// Associative reports whether the operation is associative, and hence a
// candidate for global reassociation.  Floating-point addition and
// multiplication are marked associative, mirroring the paper's FORTRAN
// setting; the reassociation pass has a switch to exclude them.
func (op Op) Associative() bool { return opTable[op].associative }

// Float reports whether the result is floating point.
func (op Op) Float() bool { return opTable[op].float }

// Pure reports whether the operation has no side effects and reads no
// memory; pure operations are the ones PRE and reassociation may move.
func (op Op) Pure() bool { return opTable[op].pure }

// IsTerminator reports whether the operation ends a basic block.
func (op Op) IsTerminator() bool { return opTable[op].terminator }

// ReadsMemory reports whether the operation may read memory.
func (op Op) ReadsMemory() bool { return opTable[op].memRead }

// WritesMemory reports whether the operation may write memory.
func (op Op) WritesMemory() bool { return opTable[op].memWrite }

// IsLoad reports whether the operation is a memory load.
func (op Op) IsLoad() bool { return op == OpLoadW || op == OpLoadD || op == OpLoadS }

// IsStore reports whether the operation is a memory store.
func (op Op) IsStore() bool { return op == OpStoreW || op == OpStoreD || op == OpStoreS }

// IsCompare reports whether the operation is a comparison producing 0/1.
func (op Op) IsCompare() bool { return op >= OpCmpEQ && op <= OpFCmpGE }

// Ops returns every valid operation, in opcode order.  Tooling that
// must stay exhaustive over the instruction set — the interpreter's
// semantics audit, the random program generator — iterates this list
// instead of hard-coding opcode ranges, so a newly added operation is
// picked up (or loudly reported as unhandled) automatically.
func Ops() []Op {
	ops := make([]Op, 0, len(opTable)-1)
	for op := range opTable {
		if Op(op) != OpInvalid && opTable[op].name != "" {
			ops = append(ops, Op(op))
		}
	}
	return ops
}

// opByName maps mnemonics back to opcodes for the parser.
var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opTable))
	for op, info := range opTable {
		if info.name != "" {
			m[info.name] = Op(op)
		}
	}
	return m
}()

// OpByName returns the operation with the given ILOC mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}
