package ir

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseError describes a syntax error in ILOC text, with a line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("iloc:%d: %s", e.Line, e.Msg) }

// ParseProgram reads a program in the textual ILOC format produced by
// Program.Fprint.  Comments run from '#' to end of line.
func ParseProgram(r io.Reader) (*Program, error) {
	p := &parser{sc: bufio.NewScanner(r)}
	p.sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return p.program()
}

// ParseProgramString is ParseProgram over a string.
func ParseProgramString(s string) (*Program, error) {
	return ParseProgram(strings.NewReader(s))
}

// ParseFuncString parses a single function definition.
func ParseFuncString(s string) (*Func, error) {
	prog, err := ParseProgramString("program globalsize=0\n" + s)
	if err != nil {
		return nil, err
	}
	if len(prog.Funcs) != 1 {
		return nil, fmt.Errorf("iloc: expected exactly one function, got %d", len(prog.Funcs))
	}
	return prog.Funcs[0], nil
}

// MustParseFunc parses a function and panics on error; intended for
// tests and examples with literal ILOC text.
func MustParseFunc(s string) *Func {
	f, err := ParseFuncString(s)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	sc   *bufio.Scanner
	line int
	cur  string
	eof  bool
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// next advances to the next non-empty, non-comment line.
func (p *parser) next() bool {
	for p.sc.Scan() {
		p.line++
		line := p.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			p.cur = line
			return true
		}
	}
	p.eof = true
	return false
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	if !p.next() {
		return nil, p.errf("empty input")
	}
	if strings.HasPrefix(p.cur, "program") {
		rest := strings.TrimSpace(strings.TrimPrefix(p.cur, "program"))
		for _, field := range strings.Fields(rest) {
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				return nil, p.errf("bad program field %q", field)
			}
			switch k {
			case "globalsize":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, p.errf("bad globalsize %q", v)
				}
				prog.GlobalSize = n
			default:
				return nil, p.errf("unknown program field %q", k)
			}
		}
		if !p.next() {
			return prog, nil
		}
	}
	for !p.eof {
		f, err := p.function()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	if err := p.sc.Err(); err != nil {
		return nil, err
	}
	return prog, nil
}

// pendingEdge remembers a branch-target reference to resolve after all
// labels are known.
type pendingEdge struct {
	block   *Block
	targets []string
	line    int
}

func (p *parser) function() (*Func, error) {
	head := p.cur
	if !strings.HasPrefix(head, "func ") {
		return nil, p.errf("expected 'func', got %q", head)
	}
	open := strings.IndexByte(head, '(')
	closeP := strings.LastIndexByte(head, ')')
	if open < 0 || closeP < open || !strings.HasSuffix(strings.TrimSpace(head[closeP+1:]), "{") {
		return nil, p.errf("malformed function header %q", head)
	}
	name := strings.TrimSpace(head[len("func "):open])
	if name == "" {
		return nil, p.errf("missing function name")
	}
	f := &Func{Name: name, nextReg: 1}
	params, err := p.regList(f, head[open+1:closeP])
	if err != nil {
		return nil, err
	}
	f.Params = params
	for _, r := range params {
		f.SetRegHint(r)
	}

	labels := map[string]*Block{}
	var edges []pendingEdge
	var cur *Block
	for p.next() {
		line := p.cur
		if line == "}" {
			break
		}
		if label, ok := strings.CutSuffix(line, ":"); ok && !strings.ContainsAny(label, " \t") {
			if _, dup := labels[label]; dup {
				return nil, p.errf("duplicate label %q", label)
			}
			cur = f.NewBlockNamed(label)
			labels[label] = cur
			continue
		}
		if cur == nil {
			return nil, p.errf("instruction before first label: %q", line)
		}
		in, targets, err := p.instruction(line, f)
		if err != nil {
			return nil, err
		}
		cur.Instrs = append(cur.Instrs, in.ID())
		if len(targets) > 0 {
			edges = append(edges, pendingEdge{block: cur, targets: targets, line: p.line})
		}
	}
	if len(f.Blocks) == 0 {
		return nil, p.errf("function %s has no blocks", name)
	}
	for _, e := range edges {
		for _, t := range e.targets {
			tb, ok := labels[t]
			if !ok {
				return nil, &ParseError{Line: e.line, Msg: fmt.Sprintf("undefined label %q", t)}
			}
			AddEdge(e.block, tb)
		}
	}
	p.next() // move past '}' for the caller's loop
	return f, nil
}

// instruction parses one instruction line; it returns the parsed
// instruction and any branch-target labels.
func (p *parser) instruction(line string, f *Func) (*Instr, []string, error) {
	// Split off branch targets: "... -> b1, b2".
	var targets []string
	if op, rest, ok := strings.Cut(line, "->"); ok {
		line = strings.TrimSpace(op)
		for {
			t, more, cont := strings.Cut(rest, ",")
			targets = append(targets, strings.TrimSpace(t))
			if !cont {
				break
			}
			rest = more
		}
	}
	// Split off destination: "... => rN" (but stores write "=> [rN]").
	var dstTok string
	if i := strings.LastIndex(line, "=>"); i >= 0 {
		dstTok = strings.TrimSpace(line[i+2:])
		line = strings.TrimSpace(line[:i])
	}
	mnemonic, operands, _ := strings.Cut(line, " ")
	if strings.HasPrefix(line, "enter(") {
		mnemonic, operands = "enter", line[len("enter"):]
	}
	op, ok := OpByName(strings.TrimSpace(mnemonic))
	if !ok {
		return nil, nil, p.errf("unknown opcode %q", mnemonic)
	}
	// Allocate the arena slot up front; on a parse error the whole
	// function is discarded, so an unplaced slot is harmless.
	in := f.allocInstr()
	in.Op = op
	operands = strings.TrimSpace(operands)

	switch op {
	case OpLoadI:
		n, err := strconv.ParseInt(operands, 10, 64)
		if err != nil {
			return nil, nil, p.errf("bad integer immediate %q", operands)
		}
		in.Imm = n
	case OpLoadF:
		fl, err := strconv.ParseFloat(operands, 64)
		if err != nil {
			return nil, nil, p.errf("bad float immediate %q", operands)
		}
		in.FImm = fl
	case OpCall:
		open := strings.IndexByte(operands, '(')
		closeP := strings.LastIndexByte(operands, ')')
		if open < 0 || closeP < open {
			return nil, nil, p.errf("malformed call %q", operands)
		}
		in.Sym = f.InternSym(strings.TrimSpace(operands[:open]))
		args, err := p.regList(f, operands[open+1:closeP])
		if err != nil {
			return nil, nil, err
		}
		in.Args = args
	case OpEnter:
		open := strings.IndexByte(operands, '(')
		closeP := strings.LastIndexByte(operands, ')')
		src := operands
		if open >= 0 && closeP > open {
			src = operands[open+1 : closeP]
		}
		args, err := p.regList(f, src)
		if err != nil {
			return nil, nil, err
		}
		in.Args = args
	case OpStoreW, OpStoreD, OpStoreS:
		// "stw rV => [rA]" — the address arrived in dstTok.
		v, err := p.reg(operands)
		if err != nil {
			return nil, nil, err
		}
		addrTok := strings.TrimSuffix(strings.TrimPrefix(dstTok, "["), "]")
		a, err := p.reg(addrTok)
		if err != nil {
			return nil, nil, err
		}
		va := f.allocArgs(2)
		va[0], va[1] = v, a
		in.Args = va
		dstTok = ""
	case OpLoadW, OpLoadD, OpLoadS:
		addrTok := strings.TrimSuffix(strings.TrimPrefix(operands, "["), "]")
		a, err := p.reg(addrTok)
		if err != nil {
			return nil, nil, err
		}
		la := f.allocArgs(1)
		la[0] = a
		in.Args = la
	default:
		if operands != "" {
			args, err := p.regList(f, operands)
			if err != nil {
				return nil, nil, err
			}
			in.Args = args
		}
	}

	if dstTok != "" {
		if !op.HasDst() && op != OpCall { // calls may return a value
			return nil, nil, p.errf("%s cannot have a destination", op)
		}
		d, err := p.reg(dstTok)
		if err != nil {
			return nil, nil, err
		}
		in.Dst = d
	} else if op.HasDst() && op != OpPhi {
		return nil, nil, p.errf("%s requires a destination", op)
	}
	if a := op.Arity(); a >= 0 && len(in.Args) != a {
		return nil, nil, p.errf("%s expects %d operands, got %d", op, a, len(in.Args))
	}
	for _, r := range in.Args {
		f.SetRegHint(r)
	}
	f.SetRegHint(in.Dst)
	return in, targets, nil
}

// regList parses a comma-separated register list into f's operand
// pool, so a function of N instructions costs a handful of
// register-slice allocations instead of N.
func (p *parser) regList(f *Func, s string) ([]Reg, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	n := 1 + strings.Count(s, ",")
	regs := f.allocArgs(n)[:0]
	for {
		part, rest, more := strings.Cut(s, ",")
		r, err := p.reg(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		regs = append(regs, r)
		if !more {
			break
		}
		s = rest
	}
	return regs, nil
}

func (p *parser) reg(tok string) (Reg, error) {
	if len(tok) < 2 || tok[0] != 'r' {
		return NoReg, p.errf("expected register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n <= 0 {
		return NoReg, p.errf("bad register %q", tok)
	}
	return Reg(n), nil
}
