package ir

import (
	"fmt"
	"io"
	"strings"
)

// Fprint prints the function in ILOC text syntax.  Instruction lines
// are rendered into one reused buffer, so printing costs a handful of
// allocations per function rather than one per instruction.
func (f *Func) Fprint(w io.Writer) {
	buf := make([]byte, 0, 128)
	buf = append(buf, "func "...)
	buf = append(buf, f.Name...)
	buf = append(buf, '(')
	for i, p := range f.Params {
		if i > 0 {
			buf = append(buf, ", "...)
		}
		buf = appendReg(buf, p)
	}
	buf = append(buf, ") {\n"...)
	w.Write(buf)
	for _, b := range f.Blocks {
		buf = append(buf[:0], b.Name...)
		buf = append(buf, ":\n"...)
		for i := range b.Instrs {
			in := b.Instr(i)
			buf = append(buf, "    "...)
			buf = appendInstr(buf, f, in)
			if in.Op.IsTerminator() && in.Op != OpRet {
				buf = append(buf, " ->"...)
				for j, s := range b.Succs {
					if j > 0 {
						buf = append(buf, ',')
					}
					buf = append(buf, ' ')
					buf = append(buf, s.Name...)
				}
			}
			buf = append(buf, '\n')
		}
		w.Write(buf)
	}
	io.WriteString(w, "}\n")
}

// String renders the function as ILOC text.
func (f *Func) String() string {
	var sb strings.Builder
	f.Fprint(&sb)
	return sb.String()
}

// Fprint prints the whole program in ILOC text syntax.
func (p *Program) Fprint(w io.Writer) {
	fmt.Fprintf(w, "program globalsize=%d\n", p.GlobalSize)
	for _, f := range p.Funcs {
		io.WriteString(w, "\n")
		f.Fprint(w)
	}
}

// String renders the program as ILOC text.
func (p *Program) String() string {
	var sb strings.Builder
	p.Fprint(&sb)
	return sb.String()
}
