package ir

import (
	"fmt"
	"io"
	"strings"
)

// Fprint prints the function in ILOC text syntax.
func (f *Func) Fprint(w io.Writer) {
	fmt.Fprintf(w, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			io.WriteString(w, ", ")
		}
		io.WriteString(w, p.String())
	}
	io.WriteString(w, ") {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(w, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			io.WriteString(w, "    ")
			io.WriteString(w, in.String())
			if in.Op.IsTerminator() && in.Op != OpRet {
				io.WriteString(w, " ->")
				for i, s := range b.Succs {
					if i > 0 {
						io.WriteString(w, ",")
					}
					io.WriteString(w, " ")
					io.WriteString(w, s.Name)
				}
			}
			io.WriteString(w, "\n")
		}
	}
	io.WriteString(w, "}\n")
}

// String renders the function as ILOC text.
func (f *Func) String() string {
	var sb strings.Builder
	f.Fprint(&sb)
	return sb.String()
}

// Fprint prints the whole program in ILOC text syntax.
func (p *Program) Fprint(w io.Writer) {
	fmt.Fprintf(w, "program globalsize=%d\n", p.GlobalSize)
	for _, f := range p.Funcs {
		io.WriteString(w, "\n")
		f.Fprint(w)
	}
}

// String renders the program as ILOC text.
func (p *Program) String() string {
	var sb strings.Builder
	p.Fprint(&sb)
	return sb.String()
}
