package ir_test

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// randFunc builds a random structurally valid function: a chain of
// blocks with random pure instructions, random branches among later
// blocks (no irreducible back edges needed for a print/parse check),
// and a return.
func randFunc(rng *rand.Rand) *ir.Func {
	f := ir.NewFunc("g", 1+rng.Intn(3))
	nblocks := 1 + rng.Intn(5)
	blocks := []*ir.Block{f.Entry()}
	for i := 1; i < nblocks; i++ {
		blocks = append(blocks, f.NewBlock())
	}
	// Registers available so far.
	regs := append([]ir.Reg(nil), f.Params...)
	newVal := func(b *ir.Block) {
		switch rng.Intn(6) {
		case 0:
			r := f.NewReg()
			b.Append(f.NewLoadI(r, int64(rng.Intn(100)-50)))
			regs = append(regs, r)
		case 1:
			r := f.NewReg()
			b.Append(f.NewLoadF(r, float64(rng.Intn(100))/4))
			regs = append(regs, r)
		case 2:
			r := f.NewReg()
			b.Append(f.NewCopy(r, regs[rng.Intn(len(regs))]))
			regs = append(regs, r)
		default:
			ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpXor, ir.OpMin, ir.OpCmpLT}
			r := f.NewReg()
			b.Append(f.NewInstr(ops[rng.Intn(len(ops))], r,
				regs[rng.Intn(len(regs))], regs[rng.Intn(len(regs))]))
			regs = append(regs, r)
		}
	}
	for bi, b := range blocks {
		n := rng.Intn(5)
		for k := 0; k < n; k++ {
			newVal(b)
		}
		// Terminator: last block returns; others branch forward.
		if bi == len(blocks)-1 {
			if rng.Intn(2) == 0 {
				b.Append(f.NewInstr(ir.OpRet, ir.NoReg))
			} else {
				b.Append(f.NewInstr(ir.OpRet, ir.NoReg, regs[rng.Intn(len(regs))]))
			}
			continue
		}
		rest := blocks[bi+1:]
		if rng.Intn(3) == 0 && len(rest) >= 2 {
			b.Append(f.NewInstr(ir.OpCBr, ir.NoReg, regs[rng.Intn(len(regs))]))
			ir.AddEdge(b, rest[rng.Intn(len(rest))])
			ir.AddEdge(b, rest[rng.Intn(len(rest))])
		} else {
			b.Append(f.NewInstr(ir.OpJump, ir.NoReg))
			ir.AddEdge(b, rest[rng.Intn(len(rest))])
		}
	}
	return f
}

// TestRandomRoundTrip: print → parse → print is the identity on random
// valid functions, and parsing preserves the verifier's judgment.
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 300; trial++ {
		f := randFunc(rng)
		if err := ir.Verify(f); err != nil {
			t.Fatalf("trial %d: generator produced invalid function: %v\n%s", trial, err, f)
		}
		text := f.String()
		g, err := ir.ParseFuncString(text)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, text)
		}
		if err := ir.Verify(g); err != nil {
			t.Fatalf("trial %d: reparsed function invalid: %v", trial, err)
		}
		if g.String() != text {
			t.Fatalf("trial %d: round trip differs:\n--- printed ---\n%s\n--- reprinted ---\n%s",
				trial, text, g.String())
		}
	}
}

// TestRandomCloneEquality: Clone produces an identical, independent
// function for random inputs.
func TestRandomCloneEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(778))
	for trial := 0; trial < 100; trial++ {
		f := randFunc(rng)
		g := f.Clone()
		if f.String() != g.String() {
			t.Fatalf("trial %d: clone differs", trial)
		}
		if err := ir.Verify(g); err != nil {
			t.Fatalf("trial %d: clone invalid: %v", trial, err)
		}
	}
}
