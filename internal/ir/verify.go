package ir

import (
	"fmt"
	"strings"
)

// VerifyError aggregates the structural problems found in a function.
type VerifyError struct {
	Func     string
	Problems []string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("ir: verify %s: %s", e.Func, strings.Join(e.Problems, "; "))
}

// Verify checks the structural invariants of a function:
//
//   - every block ends in exactly one terminator, and terminators appear
//     nowhere else;
//   - jump has one successor, cbr two, ret none;
//   - successor/predecessor lists agree;
//   - φ-nodes appear only at the start of a block, have one operand
//     per predecessor, and no two φ-nodes in a block define the same
//     register;
//   - operand counts match each opcode's arity, destinations are present
//     exactly when required, and register numbers are in range;
//   - the entry block starts with enter and has no predecessors;
//   - every block entry is a valid arena ID and no instruction appears
//     in two places.
func Verify(f *Func) error {
	var probs []string
	errf := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}

	if len(f.Blocks) == 0 {
		errf("no blocks")
		return &VerifyError{Func: f.Name, Problems: probs}
	}
	if in := f.EnterInstr(); in == nil {
		errf("entry block does not start with enter")
	} else if len(in.Args) != len(f.Params) {
		errf("enter has %d params, function declares %d", len(in.Args), len(f.Params))
	}
	if len(f.Entry().Preds) != 0 {
		errf("entry block has predecessors")
	}

	seen := map[string]bool{}
	seenID := make([]bool, f.NumInstrIDs())
	for bi, b := range f.Blocks {
		if b.ID != bi {
			errf("%s: stale block ID %d (want %d)", b.Name, b.ID, bi)
		}
		if seen[b.Name] {
			errf("duplicate block name %s", b.Name)
		}
		seen[b.Name] = true
		if b.Fn != f {
			errf("%s: wrong owning function", b.Name)
		}

		t := b.Terminator()
		if t == nil {
			errf("%s: missing terminator", b.Name)
		}
		phisDone := false
		var phiDsts map[Reg]bool
		for i, id := range b.Instrs {
			if id < 0 || int(id) >= f.NumInstrIDs() {
				errf("%s: instruction %d has out-of-range arena ID %d", b.Name, i, id)
				continue
			}
			if seenID[id] {
				errf("%s: arena ID %d appears in more than one block position", b.Name, id)
			}
			seenID[id] = true
			in := f.Instr(id)
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				errf("%s: terminator %s not at block end", b.Name, in.Op)
			}
			if in.Op == OpPhi {
				if phisDone {
					errf("%s: φ after non-φ instruction", b.Name)
				}
				if len(in.Args) != len(b.Preds) {
					errf("%s: φ has %d operands for %d predecessors", b.Name, len(in.Args), len(b.Preds))
				}
				if in.Dst != NoReg {
					if phiDsts[in.Dst] {
						errf("%s: two φ-nodes define %s", b.Name, in.Dst)
					}
					if phiDsts == nil {
						phiDsts = map[Reg]bool{}
					}
					phiDsts[in.Dst] = true
				}
			} else if in.Op != OpEnter {
				phisDone = true
			}
			if in.Op == OpEnter && !(bi == 0 && i == 0) {
				errf("%s: enter outside entry position", b.Name)
			}
			if a := in.Op.Arity(); a >= 0 && len(in.Args) != a {
				errf("%s: %s has %d operands, wants %d", b.Name, in.Op, len(in.Args), a)
			}
			if in.Op.HasDst() && in.Dst == NoReg {
				errf("%s: %s missing destination", b.Name, in.Op)
			}
			// Calls may or may not produce a value.
			if !in.Op.HasDst() && in.Dst != NoReg && in.Op != OpCall {
				errf("%s: %s has spurious destination", b.Name, in.Op)
			}
			if in.Op == OpRet && len(in.Args) > 1 {
				errf("%s: ret with %d values", b.Name, len(in.Args))
			}
			for _, r := range in.Args {
				if r == NoReg || int(r) >= f.NumRegs() {
					errf("%s: operand register %s out of range", b.Name, r)
				}
			}
			if in.Dst != NoReg && int(in.Dst) >= f.NumRegs() {
				errf("%s: destination register %s out of range", b.Name, in.Dst)
			}
		}

		if t != nil {
			want := -1
			switch t.Op {
			case OpJump:
				want = 1
			case OpCBr:
				want = 2
			case OpRet:
				want = 0
			}
			if want >= 0 && len(b.Succs) != want {
				errf("%s: %s with %d successors (want %d)", b.Name, t.Op, len(b.Succs), want)
			}
		}
		for _, s := range b.Succs {
			if s.PredIndex(b) < 0 {
				errf("edge %s->%s missing from %s.Preds", b.Name, s.Name, s.Name)
			}
		}
		for _, p := range b.Preds {
			found := false
			for _, s := range p.Succs {
				if s == b {
					found = true
				}
			}
			if !found {
				errf("edge %s->%s missing from %s.Succs", p.Name, b.Name, p.Name)
			}
		}
	}
	if len(probs) == 0 {
		return nil
	}
	return &VerifyError{Func: f.Name, Problems: probs}
}

// VerifyProgram verifies every function in the program.
func VerifyProgram(p *Program) error {
	for _, f := range p.Funcs {
		if err := Verify(f); err != nil {
			return err
		}
	}
	return nil
}
