// Package lang is the single source-language registry: every consumer
// that accepts textual sources (suite routines, the serve API, the
// epre and ilocfilter CLIs) dispatches through this table instead of
// hand-rolled prefix sniffing.  Three languages are registered: raw
// ILOC, Mini-Fortran, and PL/0.
package lang

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/minift"
	"repro/internal/pl0"
)

// Language describes one supported source language.
type Language struct {
	// Name is the canonical name used in serve requests and cache keys.
	Name string
	// Aliases are accepted alternate spellings (e.g. legacy serve
	// Format values).
	Aliases []string
	// Ext is the file extension (with dot) the CLIs dispatch on.
	Ext string
	// Keywords are the words a source of this language can start with,
	// used by Detect.
	Keywords []string
	// Compile translates source text into a verified ILOC program.
	Compile func(src string) (*ir.Program, error)
}

func compileILOC(src string) (*ir.Program, error) {
	p, err := ir.ParseProgramString(src)
	if err != nil {
		return nil, err
	}
	if err := ir.VerifyProgram(p); err != nil {
		return nil, err
	}
	return p, nil
}

// languages is the registry, in detection order.  Keyword sets are
// disjoint: ILOC text always starts with "program", Mini-Fortran with
// "func", and a valid PL/0 program with a declaration or statement
// keyword (a bare leading identifier would be an assignment to an
// undeclared variable, which cannot compile anyway).
var languages = []*Language{
	{
		Name:     "iloc",
		Keywords: []string{"program"},
		Ext:      ".iloc",
		Compile:  compileILOC,
	},
	{
		Name:     "mf",
		Aliases:  []string{"minift"},
		Keywords: []string{"func"},
		Ext:      ".mf",
		Compile:  minift.Compile,
	},
	{
		Name: "pl0",
		Keywords: []string{
			"const", "var", "procedure", "call", "begin",
			"if", "while", "write", "odd",
		},
		Ext:     ".pl0",
		Compile: pl0.Compile,
	},
}

// All returns the registered languages in detection order.
func All() []*Language {
	out := make([]*Language, len(languages))
	copy(out, languages)
	return out
}

// Names returns the canonical language names in detection order.
func Names() []string {
	names := make([]string, len(languages))
	for i, l := range languages {
		names[i] = l.Name
	}
	return names
}

// ByName resolves a canonical name or alias ("" resolves to nil,
// meaning "detect").
func ByName(name string) (*Language, error) {
	if name == "" {
		return nil, nil
	}
	for _, l := range languages {
		if l.Name == name {
			return l, nil
		}
		for _, a := range l.Aliases {
			if a == name {
				return l, nil
			}
		}
	}
	return nil, fmt.Errorf("unknown language %q (want one of %s)", name, strings.Join(Names(), ", "))
}

// ByExt resolves a file extension like ".pl0"; unknown extensions
// resolve to nil, meaning "detect from content".
func ByExt(ext string) *Language {
	for _, l := range languages {
		if l.Ext == ext {
			return l
		}
	}
	return nil
}

// firstWord returns the first keyword-shaped word of src, skipping
// whitespace and the comment syntax of every registered language
// ("#" and "//" line comments, "(* ... *)" blocks).
func firstWord(src string) string {
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '#', c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*)")
			if end < 0 {
				return ""
			}
			i += 2 + end + 2
		default:
			start := i
			for i < len(src) {
				c := src[i]
				if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
					i++
					continue
				}
				break
			}
			return src[start:i]
		}
	}
	return ""
}

// Detect sniffs the language of a source from its first word.
func Detect(src string) (*Language, error) {
	word := firstWord(src)
	for _, l := range languages {
		for _, kw := range l.Keywords {
			if word == kw {
				return l, nil
			}
		}
	}
	return nil, fmt.Errorf("unrecognized source language (starts with %q; iloc starts with \"program\", mf with \"func\", pl0 with a declaration or statement keyword)", word)
}

// Compile translates src using the named language, or by detection
// when name is empty.  It returns the program and the canonical name
// of the language that compiled it.
func Compile(src, name string) (*ir.Program, string, error) {
	l, err := ByName(name)
	if err != nil {
		return nil, "", err
	}
	if l == nil {
		l, err = Detect(src)
		if err != nil {
			return nil, "", err
		}
	}
	prog, err := l.Compile(src)
	if err != nil {
		return nil, l.Name, err
	}
	return prog, l.Name, nil
}
