package lang

import (
	"strings"
	"testing"
)

func TestDetect(t *testing.T) {
	cases := []struct{ src, want string }{
		{"program globalsize=0\n\nfunc f() {\nb0:\n    enter()\n    ret\n}\n", "iloc"},
		{"  \n\tprogram globalsize=8", "iloc"},
		{"func main(): int {\n  return 1\n}\n", "mf"},
		{"# comment\nfunc f() {}", "mf"},
		{"// comment\nfunc f() {}", "mf"},
		{"write 1.", "pl0"},
		{"(* hello *)\nconst n = 3; write n.", "pl0"},
		{"var x; begin x := 1; write x end.", "pl0"},
		{"procedure p; p := 1; write p().", "pl0"},
		{"if 1 = 1 then write 1.", "pl0"},
		{"while 0 > 1 do write 0.", "pl0"},
		{"call p.", "pl0"},
		{"odd", "pl0"},
	}
	for _, c := range cases {
		l, err := Detect(c.src)
		if err != nil {
			t.Errorf("Detect(%q): %v", c.src, err)
			continue
		}
		if l.Name != c.want {
			t.Errorf("Detect(%q) = %s, want %s", c.src, l.Name, c.want)
		}
	}
}

func TestDetectRejects(t *testing.T) {
	for _, src := range []string{"", "x := 1.", "123", "(* unterminated", "#only a comment"} {
		if _, err := Detect(src); err == nil {
			t.Errorf("Detect(%q): expected error", src)
		}
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"iloc": "iloc", "mf": "mf", "minift": "mf", "pl0": "pl0",
	} {
		l, err := ByName(name)
		if err != nil || l == nil || l.Name != want {
			t.Errorf("ByName(%q) = %v, %v; want %s", name, l, err, want)
		}
	}
	if l, err := ByName(""); err != nil || l != nil {
		t.Errorf("ByName(\"\") = %v, %v; want nil, nil", l, err)
	}
	if _, err := ByName("cobol"); err == nil || !strings.Contains(err.Error(), "unknown language") {
		t.Errorf("ByName(cobol) err = %v", err)
	}
}

func TestByExt(t *testing.T) {
	for ext, want := range map[string]string{".iloc": "iloc", ".mf": "mf", ".pl0": "pl0"} {
		if l := ByExt(ext); l == nil || l.Name != want {
			t.Errorf("ByExt(%q) = %v, want %s", ext, l, want)
		}
	}
	if l := ByExt(".txt"); l != nil {
		t.Errorf("ByExt(.txt) = %v, want nil", l)
	}
}

func TestCompileDispatch(t *testing.T) {
	cases := []struct{ src, name, wantLang string }{
		{"write 6 * 7.", "", "pl0"},
		{"write 6 * 7.", "pl0", "pl0"},
		{"func f(): int {\n  return 42\n}\n", "", "mf"},
		{"program globalsize=0\n\nfunc f() {\nb0:\n    enter()\n    loadI 42 => r1\n    ret r1\n}\n", "", "iloc"},
	}
	for _, c := range cases {
		prog, got, err := Compile(c.src, c.name)
		if err != nil {
			t.Errorf("Compile(%q, %q): %v", c.src, c.name, err)
			continue
		}
		if got != c.wantLang {
			t.Errorf("Compile(%q, %q) lang = %s, want %s", c.src, c.name, got, c.wantLang)
		}
		if prog == nil || len(prog.Funcs) == 0 {
			t.Errorf("Compile(%q, %q): empty program", c.src, c.name)
		}
	}
	// Forcing the wrong language must fail with that language's parser.
	if _, _, err := Compile("write 1.", "mf"); err == nil {
		t.Error("Compile(pl0 source as mf): expected error")
	}
	if _, _, err := Compile("write 1.", "cobol"); err == nil {
		t.Error("Compile with unknown language: expected error")
	}
}
