// Package lcm implements lazy code motion, the Knoop–Rüthing–Steffen
// formulation of partial redundancy elimination, as an alternate
// backend to the paper's Drechsler–Stadel variant (internal/pre).
//
// Where Drechsler–Stadel places insertions on edges, this backend uses
// the block-granularity restatement (Dragon Book §9.5): four
// unidirectional bitvector problems over the expression universe, with
// critical edges split first so block boundaries are expressive enough
// to stand in for edges.
//
//	ANTIN(b)    = ANTLOC(b) ∪ (ANTOUT(b) ∩ TRANSP(b))     backward ∩, ∅ at exits
//	AVOUT*(b)   = (ANTIN(b) ∪ AVIN*(b)) ∩ TRANSP(b)       forward ∩, ∅ into entry
//	EARLIEST(b) = ANTIN(b) ∖ AVIN*(b)
//	POUT(b)     = (EARLIEST(b) ∪ PIN(b)) ∖ ANTLOC(b)      forward ∩, ∅ into entry
//	LATEST(b)   = (EARLIEST∪PIN)(b) ∩ (ANTLOC(b) ∪ ¬⋂ₛ(EARLIEST∪PIN)(s))
//	USEDOUT(b)  = ⋃ₛ (ANTLOC ∪ USEDOUT)(s) ∖ LATEST(s)    backward ∪, ∅ at exits
//
// Down-safety (anticipability) bounds how early a computation may
// move; AVOUT* is availability under the fiction that every
// down-safe point computes, making EARLIEST the earliest down-safe
// frontier; postponability then slides each insertion as far down as
// it can go without passing a use, which is what makes the result
// lifetime-optimal; USEDOUT prunes isolated insertions that no later
// use would consume.  Because LATEST ⊆ EARLIEST ∪ PIN ⊆ ANTIN, the
// backend never inserts a computation on a path that did not already
// compute it (the down-safety guarantee; TestLCMDownSafety pins it).
//
// The transformation inserts h ← e at the top of every block with
// e ∈ LATEST ∩ USEDOUT and rewrites upward-exposed occurrences to
// copies from h wherever e ∈ ANTLOC ∖ (LATEST ∖ USEDOUT).  Unlike
// internal/pre there is no Mode A naming discipline: rewrites always
// go through a fresh temporary, and the downstream copy-coalescing
// passes are trusted to clean up.
package lcm

import (
	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// Stats reports what one LCM run did to a function.
type Stats struct {
	Exprs         int // size of the expression universe
	Inserted      int // h ← e computations inserted at block tops
	Replaced      int // occurrences rewritten into copies from the temp
	EdgesSplit    int // critical edges split
	RemovedBlocks int // unreachable blocks dropped before analysis
	Rounds        int // iterations used by RunToFixpoint
}

// Changed reports whether the run made optimization progress — the
// fixpoint driver's termination condition.
func (s Stats) Changed() bool { return s.Inserted+s.Replaced > 0 }

// Mutated reports whether the run modified the function at all,
// including CFG surgery that Changed does not count as progress.
func (s Stats) Mutated() bool {
	return s.Changed() || s.EdgesSplit+s.RemovedBlocks > 0
}

// MaxRounds bounds RunToFixpoint; each round can move one more level
// of an expression chain (an operand's computation blocks upward
// exposure of its parents), mirroring internal/pre.
const MaxRounds = 32

// RunToFixpoint applies Run repeatedly until LCM finds nothing more.
func RunToFixpoint(f *ir.Func) Stats {
	return RunToFixpointWith(f, analysis.NewCache(f))
}

// RunToFixpointWith is RunToFixpoint drawing CFG analyses from the
// given cache.
func RunToFixpointWith(f *ir.Func, ac *analysis.Cache) Stats {
	var total Stats
	for i := 0; i < MaxRounds; i++ {
		st := RunWith(f, ac)
		total.Inserted += st.Inserted
		total.Replaced += st.Replaced
		total.EdgesSplit += st.EdgesSplit
		total.RemovedBlocks += st.RemovedBlocks
		total.Exprs = st.Exprs
		total.Rounds++
		if !st.Changed() {
			break
		}
	}
	return total
}

// Run performs one round of lazy code motion on f and returns
// statistics.  The function is modified in place.
func Run(f *ir.Func) Stats {
	return RunWith(f, analysis.NewCache(f))
}

// RunWith is Run drawing CFG analyses from the given cache.
func RunWith(f *ir.Func, ac *analysis.Cache) Stats {
	var st Stats
	st.RemovedBlocks = ac.RemoveUnreachable()
	st.EdgesSplit = cfg.SplitCriticalEdges(f)
	u := dataflow.BuildUniverse(f)
	defer u.Release()
	n := u.NumExprs()
	st.Exprs = n
	if n == 0 {
		return st
	}
	rpo := ac.RPO()
	nb := len(f.Blocks)

	var bw dataflow.Borrower
	defer bw.Release()
	tmp := bw.Get(n)

	// Down-safety: anticipated expressions (backward, all-paths).
	antin := bw.PerBlock(nb, n)
	antout := bw.PerBlock(nb, n)
	for _, b := range f.Blocks {
		antin[b.ID].SetAll()
	}
	dataflow.SolveBackward(rpo, dataflow.MeetAll, antout, antin,
		func(b *ir.Block, out, dst *dataflow.BitSet) {
			dst.CopyFrom(out)
			dst.Intersect(u.Transp[b.ID])
			dst.Union(u.AntLoc[b.ID])
		})

	// Availability under the earliest-placement fiction (forward,
	// all-paths): a down-safe entry point counts as a computation.
	avin := bw.PerBlock(nb, n)
	avout := bw.PerBlock(nb, n)
	for _, b := range f.Blocks {
		avout[b.ID].SetAll()
	}
	dataflow.SolveForward(rpo, dataflow.MeetAll, avin, avout,
		func(b *ir.Block, in, dst *dataflow.BitSet) {
			dst.CopyFrom(in)
			dst.Union(antin[b.ID])
			dst.Intersect(u.Transp[b.ID])
		})

	// The earliest down-safe frontier.
	earliest := bw.PerBlock(nb, n)
	for _, b := range f.Blocks {
		earliest[b.ID].AndNotOf(antin[b.ID], avin[b.ID])
	}

	// Postponability (forward, all-paths): slide insertions down until
	// a use is about to be passed.
	pin := bw.PerBlock(nb, n)
	pout := bw.PerBlock(nb, n)
	for _, b := range f.Blocks {
		pout[b.ID].SetAll()
	}
	dataflow.SolveForward(rpo, dataflow.MeetAll, pin, pout,
		func(b *ir.Block, in, dst *dataflow.BitSet) {
			dst.CopyFrom(in)
			dst.Union(earliest[b.ID])
			dst.Subtract(u.AntLoc[b.ID])
		})

	// frontier = EARLIEST ∪ PIN: the points still allowed to hold the
	// insertion.  LATEST keeps the ones that cannot slide any further:
	// the block uses e itself, or some successor has left the frontier.
	frontier := bw.PerBlock(nb, n)
	latest := bw.PerBlock(nb, n)
	for _, b := range f.Blocks {
		fr := frontier[b.ID]
		fr.CopyFrom(earliest[b.ID])
		fr.Union(pin[b.ID])
	}
	for _, b := range f.Blocks {
		tmp.SetAll() // ⋂ over no successors is ⊤: exits keep ANTLOC only
		for _, s := range b.Succs {
			tmp.Intersect(frontier[s.ID])
		}
		set := latest[b.ID]
		set.CopyFrom(frontier[b.ID])
		set.Intersect(u.AntLoc[b.ID])
		set.UnionDiff(frontier[b.ID], tmp)
	}

	// Isolation pruning (backward, any-path): is the temporary used on
	// some path after the block?
	uin := bw.PerBlock(nb, n)
	uout := bw.PerBlock(nb, n)
	dataflow.SolveBackward(rpo, dataflow.MeetAny, uout, uin,
		func(b *ir.Block, out, dst *dataflow.BitSet) {
			dst.CopyFrom(out)
			dst.Union(u.AntLoc[b.ID])
			dst.Subtract(latest[b.ID])
		})

	// Insert and replace decisions per block.  An expression whose only
	// latest point is isolated (LATEST ∖ USEDOUT) keeps its original
	// occurrence and gets no temp traffic at all.
	insertHere := bw.PerBlock(nb, n)
	replaceHere := bw.PerBlock(nb, n)
	interesting := bw.Get(n)
	for _, b := range f.Blocks {
		ins := insertHere[b.ID]
		ins.CopyFrom(latest[b.ID])
		ins.Intersect(uout[b.ID])
		interesting.Union(ins)
		tmp.AndNotOf(latest[b.ID], uout[b.ID])
		replaceHere[b.ID].AndNotOf(u.AntLoc[b.ID], tmp)
	}
	if interesting.Empty() {
		return st
	}

	temp := ac.BorrowRegs(n)
	defer ac.ReturnRegs(temp)
	interesting.ForEach(func(e int) { temp[e] = f.NewReg() })

	// Perform insertions at block tops, after any φs and the enter.
	insertedInstr := map[*ir.Instr]bool{}
	for _, b := range f.Blocks {
		set := insertHere[b.ID]
		if set.Empty() {
			continue
		}
		pos := 0
		for pos < len(b.Instrs) && (b.Instr(pos).Op == ir.OpPhi || b.Instr(pos).Op == ir.OpEnter) {
			pos++
		}
		set.ForEach(func(e int) {
			in := u.MakeInstr(e, temp[e])
			insertedInstr[in] = true
			b.InsertAt(pos, in)
			pos++
			st.Inserted++
		})
	}

	// Rewrite upward-exposed occurrences into copies from the temp.
	// The valid vector starts from the block's replace set and decays
	// at kills, so occurrences past the first kill stay untouched (they
	// are not upward-exposed and the equations made no promise about
	// them — any redundancy there is re-exposed to the next round).
	hValid := bw.Get(n)
	for _, b := range f.Blocks {
		hValid.CopyFrom(replaceHere[b.ID])
		hValid.Intersect(interesting)
		if hValid.Empty() {
			continue
		}
		kept := make([]ir.InstrID, 0, len(b.Instrs))
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if insertedInstr[in] {
				kept = append(kept, inID)
				continue
			}
			dstForKill := in.Dst
			if k, ok := dataflow.KeyOf(in); ok {
				if e, found := u.Index[k]; found && hValid.Has(e) {
					kept = append(kept, f.NewCopy(in.Dst, temp[e]).ID())
					st.Replaced++
					u.KillScan(hValid, dstForKill, false)
					continue
				}
			}
			kept = append(kept, inID)
			u.KillScan(hValid, dstForKill, in.Op.WritesMemory())
		}
		b.Instrs = kept
	}
	if st.Changed() {
		// The kept-slice rewrites above bypass the Block helpers.
		f.MarkCodeMutated()
	}
	return st
}
