package lcm_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/coalesce"
	"repro/internal/dce"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lcm"
)

func run(t *testing.T, f *ir.Func, fn string, args ...int64) (int64, int64) {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(fn, vals...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v.I, m.Steps
}

// cleanup removes the compensation copies LCM leaves behind; like the
// paper's pipeline, the backend relies on coalescing for that.
func cleanup(f *ir.Func) {
	dce.Run(f)
	coalesce.Run(f)
	cfg.RemoveEmptyBlocks(f)
	dce.Run(f)
}

// TestLCMIfExample is the §2 diamond: x+y in the then-arm and again
// after the join.  LCM must insert on the else side and turn the join
// computation into a copy, shortening the then path without
// lengthening the else path.
func TestLCMIfExample(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    cbr r1 -> b1, b2
b1:
    add r1, r2 => r3
    jump -> b3
b2:
    loadI 7 => r4
    jump -> b3
b3:
    add r1, r2 => r3
    ret r3
}
`
	f := ir.MustParseFunc(src)
	wantThen, thenBefore := run(t, f, "f", 1, 2)
	wantElse, elseBefore := run(t, f, "f", 0, 2)

	st := lcm.Run(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if st.Inserted == 0 || st.Replaced == 0 {
		t.Errorf("stats show no motion: %+v", st)
	}
	cleanup(f)
	gotThen, thenAfter := run(t, f, "f", 1, 2)
	gotElse, elseAfter := run(t, f, "f", 0, 2)
	if gotThen != wantThen || gotElse != wantElse {
		t.Fatalf("semantics changed: (%d,%d) vs (%d,%d)", gotThen, gotElse, wantThen, wantElse)
	}
	if thenAfter >= thenBefore {
		t.Errorf("then path should shorten: %d -> %d\n%s", thenBefore, thenAfter, f)
	}
	if elseAfter > elseBefore {
		t.Errorf("else path lengthened: %d -> %d\n%s", elseBefore, elseAfter, f)
	}
}

// TestLCMLoopInvariant: x+y recomputed on every iteration must move to
// the (split-edge) preheader, leaving at most the two accumulator adds
// inside the loop.
func TestLCMLoopInvariant(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    add r1, r2 => r6
    add r4, r6 => r4
    loadI 1 => r7
    add r5, r7 => r5
    cmpLT r5, r3 => r8
    cbr r8 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	want, before := run(t, f, "f", 3, 4, 10)
	lcm.RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	cleanup(f)
	got, after := run(t, f, "f", 3, 4, 10)
	if got != want {
		t.Fatalf("semantics changed: %d vs %d", got, want)
	}
	if before-after < 9 {
		t.Errorf("expected ≥9 ops saved hoisting the invariant, got %d (%d -> %d)\n%s",
			before-after, before, after, f)
	}
	dom := cfg.BuildDomTree(f)
	li := cfg.FindLoops(f, dom)
	adds := 0
	for _, b := range f.Blocks {
		if li.Depth(b) == 0 {
			continue
		}
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpAdd {
				adds++
			}
		}
	}
	if adds > 2 {
		t.Errorf("loop still has %d adds, want ≤2\n%s", adds, f)
	}
}

// TestLCMDownSafety is the backend's defining guarantee: LCM never
// inserts a computation on a path that did not already compute it.
// Both programs compute the expression on only one side of a branch
// (the second inside a loop, the classic speculation temptation), so
// any insertion reachable without passing an original computation
// would lengthen the skip path.  The dynamic op count on that path
// must not grow, and the expression must not appear in any block it
// did not occupy before.
func TestLCMDownSafety(t *testing.T) {
	cases := []struct {
		src      string
		args     []int64 // drives the path that skips the computation
		computes string  // the only block allowed to hold mul r2, r2
	}{
		{`
func f(r1, r2) {
b0:
    enter(r1, r2)
    cbr r1 -> b1, b2
b1:
    mul r2, r2 => r3
    ret r3
b2:
    loadI 0 => r4
    ret r4
}
`, []int64{0, 5}, "b1"},
		{`
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    cmpLT r5, r1 => r6
    cbr r6 -> b2, b3
b2:
    mul r2, r2 => r7
    add r4, r7 => r4
    jump -> b3
b3:
    loadI 1 => r8
    add r5, r8 => r5
    cmpLT r5, r3 => r9
    cbr r9 -> b1, b4
b4:
    ret r4
}
`, []int64{0, 5, 10}, "b2"},
	}
	for ci, c := range cases {
		f := ir.MustParseFunc(c.src)
		want, before := run(t, f, "f", c.args...)
		lcm.RunToFixpoint(f)
		if err := ir.Verify(f); err != nil {
			t.Fatal(err)
		}
		cleanup(f)
		got, after := run(t, f, "f", c.args...)
		if got != want {
			t.Errorf("case %d: semantics changed: %d vs %d", ci, got, want)
		}
		if after > before {
			t.Errorf("case %d: skip path lengthened %d -> %d\n%s", ci, before, after, f)
		}
		for _, b := range f.Blocks {
			for _, inID := range b.Instrs {
				in := b.Fn.Instr(inID)
				if in.Op == ir.OpMul && len(in.Args) == 2 && in.Args[0] == 2 && in.Args[1] == 2 &&
					b.Name != c.computes {
					t.Errorf("case %d: mul r2, r2 speculated into %s\n%s", ci, b.Name, f)
				}
			}
		}
	}
}

// TestLCMLoadsNotHoistedPastStores: a load in a loop containing a
// store to an unknown address must stay put (transparency kills it).
func TestLCMLoadsNotHoistedPastStores(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    jump -> b1
b1:
    ldw [r1] => r5
    stw r5 => [r2]
    loadI 1 => r6
    add r4, r6 => r4
    cmpLT r4, r3 => r7
    cbr r7 -> b1, b2
b2:
    ret r5
}
`
	f := ir.MustParseFunc(src)
	st := lcm.RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		if b.Name != "b1" {
			for _, inID := range b.Instrs {
				in := b.Fn.Instr(inID)
				if in.Op == ir.OpLoadW {
					t.Fatalf("load hoisted out of the store loop (stats %+v)\n%s", st, f)
				}
			}
		}
	}
}

// TestLCMIsolation: a computation whose only consumer is in its own
// block (nothing downstream would reuse the temp) must be left alone —
// no insertion, no copy churn.
func TestLCMIsolation(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    ret r3
}
`
	f := ir.MustParseFunc(src)
	st := lcm.Run(f)
	if st.Inserted != 0 || st.Replaced != 0 {
		t.Errorf("isolated computation moved: %+v\n%s", st, f)
	}
}
