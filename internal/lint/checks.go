package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// checkMapOrder flags range loops over (locally inferable) map values
// whose bodies feed an ordered sink: appending to a slice that is
// never subsequently sorted in the same function, or printing/writing
// directly.  The canonical deterministic idiom — collect keys, sort,
// iterate the sorted slice — passes, because the appended-to slice is
// an argument of a sort call later in the function.
//
// Map-typed expressions are inferred syntactically, without go/types:
// identifiers bound by `make(map[...]...)`, map composite literals,
// `var x map[...]...` declarations, and function parameters declared
// with a map type.  Maps hidden behind struct fields or function
// results are invisible to the check — a deliberate trade for a
// stdlib-only linter; the named-type cases are the ones that occur in
// pass bodies.
func (c *checker) checkMapOrder(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		maps := mapIdents(fd)
		sorted := sortedArgs(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			x, ok := rs.X.(*ast.Ident)
			if !ok || !maps[x.Name] {
				return true
			}
			c.inspectMapRangeBody(rs, x.Name, sorted)
			return true
		})
	}
}

// mapIdents collects the names in fd that are locally known to be
// map-typed.
func mapIdents(fd *ast.FuncDecl) map[string]bool {
	maps := map[string]bool{}
	bind := func(names []*ast.Ident, typ ast.Expr) {
		if _, ok := typ.(*ast.MapType); ok {
			for _, n := range names {
				maps[n.Name] = true
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			bind(field.Names, field.Type)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				switch r := rhs.(type) {
				case *ast.CallExpr:
					if fn, ok := r.Fun.(*ast.Ident); ok && fn.Name == "make" && len(r.Args) > 0 {
						if _, ok := r.Args[0].(*ast.MapType); ok {
							maps[id.Name] = true
						}
					}
				case *ast.CompositeLit:
					if _, ok := r.Type.(*ast.MapType); ok {
						maps[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			bind(n.Names, n.Type)
		}
		return true
	})
	return maps
}

// sortedArgs collects identifier names that appear as arguments to a
// sort.* call anywhere in fd — slices that the function does put into
// canonical order.
func sortedArgs(fd *ast.FuncDecl) map[string]bool {
	sorted := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "sort" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				sorted[id.Name] = true
			}
		}
		return true
	})
	return sorted
}

// inspectMapRangeBody reports ordered sinks inside one range-over-map
// body.
func (c *checker) inspectMapRangeBody(rs *ast.RangeStmt, mapName string, sorted map[string]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && len(call.Args) > 0 {
				if dst, ok := call.Args[0].(*ast.Ident); ok && !sorted[dst.Name] {
					c.report(call.Pos(), "maporder",
						"append to %q inside range over map %q: iteration order leaks into the slice; sort it afterwards or collect+sort keys first", dst.Name, mapName)
				}
			}
		case *ast.SelectorExpr:
			if isOutputCall(fun) {
				c.report(call.Pos(), "maporder",
					"%s inside range over map %q: output depends on map iteration order", fun.Sel.Name, mapName)
			}
		}
		return true
	})
}

// isOutputCall recognizes printing/writing selectors: fmt.*Print*,
// and Write/WriteString/WriteByte/WriteRune methods.
func isOutputCall(sel *ast.SelectorExpr) bool {
	name := sel.Sel.Name
	if x, ok := sel.X.(*ast.Ident); ok && x.Name == "fmt" {
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf", "Sprint", "Sprintln", "Sprintf":
			return name[0] != 'S' // Sprint into a local is judged at its own sink
		}
		return false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// checkIRConstruct flags direct construction of ir.Instr values —
// composite literals (`ir.Instr{...}`, `&ir.Instr{...}`, `[]ir.Instr`
// element literals) and `new(ir.Instr)` — outside internal/ir.  Since
// the arena refactor, instructions live in their function's chunked
// arena and carry a private dense InstrID; a bare literal has no
// identity (ID() reports NoInstr) and the block mutators reject it at
// the first Append/InsertAt.  Construction must go through a Func's
// allocators: NewInstr, NewLoadI/NewLoadF, NewCopy, NewCall, NewPhi,
// or CloneInstr.
//
// The ir package is resolved through the file's actual import spec, so
// aliased imports are still caught and unrelated packages that happen
// to export an Instr type are not.
func (c *checker) checkIRConstruct(f *ast.File) {
	irName := importLocalName(f, "repro/internal/ir")
	if irName == "" {
		return
	}
	isIRInstr := func(e ast.Expr) bool {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Instr" {
			return false
		}
		x, ok := sel.X.(*ast.Ident)
		return ok && x.Name == irName
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if isIRInstr(n.Type) {
				c.report(n.Pos(), "irconstruct",
					"%s.Instr composite literal outside internal/ir: arena instructions must come from a Func allocator (NewInstr, NewLoadI, NewCopy, NewCall, NewPhi, CloneInstr) so they carry a valid InstrID", irName)
			}
		case *ast.CallExpr:
			if fn, ok := n.Fun.(*ast.Ident); ok && fn.Name == "new" && len(n.Args) == 1 && isIRInstr(n.Args[0]) {
				c.report(n.Pos(), "irconstruct",
					"new(%s.Instr) outside internal/ir: arena instructions must come from a Func allocator so they carry a valid InstrID", irName)
			}
		}
		return true
	})
}

// importLocalName returns the name the file uses for the given import
// path ("" when the file does not import it): the alias when one is
// given, otherwise the path's last element.
func importLocalName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "" // not referenced by selector; dot imports don't occur here
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// borrowKinds maps the arena borrow methods to their release
// counterparts.
var borrowKinds = map[string]string{
	"BorrowInts":   "ReturnInts",
	"BorrowRegs":   "ReturnRegs",
	"BorrowBlocks": "ReturnBlocks",
	"BorrowBools":  "ReturnBools",
}

// checkScratch enforces the arena discipline per function: every
// Borrow* result must be bound to a variable, and that variable must
// either be passed to the matching Return* call (directly or in a
// defer) or handed to the caller via a return statement (ownership
// transfer — the caller releases, as canonicalDsts in internal/pre
// does).
func (c *checker) checkScratch(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		type borrow struct {
			pos  token.Pos
			kind string // Borrow method name
		}
		borrowed := map[string]borrow{}
		released := map[string]bool{}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				id, ok := n.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				if kind := borrowCallKind(n.Rhs[0]); kind != "" {
					borrowed[id.Name] = borrow{pos: n.Pos(), kind: kind}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				for _, ret := range borrowKinds {
					if sel.Sel.Name == ret && len(n.Args) == 1 {
						if id, ok := n.Args[0].(*ast.Ident); ok {
							released[id.Name] = true
						}
					}
				}
				// A bare Borrow call whose result is not assigned can
				// never be returned to the arena.
				if kind := borrowCallKind(n); kind != "" && !isAssignedBorrow(fd.Body, n) {
					c.report(n.Pos(), "scratch",
						"%s result is not bound to a variable, so it can never be released", kind)
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					ast.Inspect(res, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							released[id.Name] = true // ownership transfer
						}
						return true
					})
				}
			}
			return true
		})

		names := make([]string, 0, len(borrowed))
		for name := range borrowed {
			names = append(names, name)
		}
		// Canonical report order (the linter obeys its own maporder rule).
		sort.Strings(names)
		for _, name := range names {
			b := borrowed[name]
			if !released[name] {
				c.report(b.pos, "scratch",
					"%q borrowed via %s is never released; defer the matching %s or return it to transfer ownership", name, b.kind, borrowKinds[b.kind])
			}
		}
	}
}

// borrowCallKind returns the Borrow* method name when e is a call to
// one (possibly re-sliced, as in `ac.BorrowBlocks(n)[:0]`), else "".
func borrowCallKind(e ast.Expr) string {
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = sl.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if _, ok := borrowKinds[sel.Sel.Name]; ok {
		return sel.Sel.Name
	}
	return ""
}

// isAssignedBorrow reports whether the given borrow call expression is
// the right-hand side of some single-assignment in body (directly or
// under a re-slice).
func isAssignedBorrow(body *ast.BlockStmt, target *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		rhs := as.Rhs[0]
		if sl, ok := rhs.(*ast.SliceExpr); ok {
			rhs = sl.X
		}
		if rhs == target {
			found = true
		}
		return true
	})
	return found
}
