// Package lint is the repo-invariant linter behind cmd/eprelint: a
// small, stdlib-only (go/parser + go/ast, no go/packages) static
// analyzer for the project conventions the Go compiler and go vet
// cannot see.  It enforces four invariants, each scoped to the
// packages where it is a correctness property rather than a style
// preference:
//
//   - cfgwrite: only internal/ir and internal/cfg may write a block's
//     Succs/Preds edge lists directly.  Everyone else must go through
//     the mutating helpers (ir.AddEdge, ir.RemoveEdge, the cfg
//     package), because those are what bump the function's CFG
//     generation — a pass that edits edges behind the analysis cache's
//     back poisons every consumer of dominators or liveness after it.
//
//   - irconstruct: only internal/ir may construct ir.Instr values
//     directly (`&ir.Instr{...}`, `new(ir.Instr)`).  Instructions live
//     in their function's arena and carry a private dense InstrID;
//     a bare literal has no identity and the block mutators panic on
//     it.  Everyone else allocates through a Func (NewInstr, NewLoadI,
//     NewCopy, NewCall, NewPhi, CloneInstr).
//
//   - timenow / maporder: pass bodies must be deterministic.  Reading
//     the wall clock (time.Now, time.Since) or letting map iteration
//     order reach an ordered sink (append to a slice that is never
//     sorted, printing, writing) makes two runs of the same pipeline
//     diverge, which breaks the golden-output tests, the serve cache,
//     and the differential fuzzer's shrinker.
//
//   - scratch: a buffer borrowed from the analysis cache's scratch
//     arena (BorrowInts/BorrowRegs/BorrowBlocks/BorrowBools) must be
//     released with the matching Return call in the same function, or
//     handed to the caller via return (ownership transfer, DESIGN.md
//     §12).  A borrow that simply goes out of scope silently defeats
//     the arena.
//
// False positives are suppressed inline with a directive comment on
// the offending line or the line above:
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory; an ignored finding with no justification
// is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one linter finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string // "cfgwrite", "irconstruct", "timenow", "maporder", "scratch"
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// nonPassPackages are the internal packages whose files are NOT "pass
// bodies", each exempt from the determinism/scratch checks for a
// stated reason.  Every other internal/ package is a pass package by
// default, so a newly added optimization backend (internal/lcm,
// internal/lospre, ...) is linted the moment it exists — the old
// allowlist silently skipped new packages until someone remembered to
// register them.  cmd/ binaries are never pass bodies (they print and
// time things on purpose); the cfgwrite check still applies to them.
var nonPassPackages = map[string]bool{
	"internal/core":     true, // pass manager: owns timing instrumentation and pass-list printing
	"internal/difftest": true, // fuzz harness: reports wall-clock and writes artifacts by design
	"internal/serve":    true, // HTTP daemon: timestamps, logging, request-scoped output
	"internal/interp":   true, // interpreter: not in the pipeline; traces print by design
	"internal/ir":       true, // data-structure layer: printers/dumps, not transformation code
	"internal/lint":     true, // the linter itself (its output is sorted, not pass output)
	"internal/minift":   true, // frontend: compiles source, runs before the pipeline
	// internal/pl0 and internal/lang are deliberately NOT here: the
	// PL/0 front end and the language registry hold the determinism
	// rules (no wall clock, no map-order iteration, balanced scratch)
	// with zero suppressions, so they stay pass packages.
	"internal/progen": true, // random-program generator: seeded, runs outside the pipeline
	"internal/suite":  true, // benchmark harness: measures time and renders tables
}

// isPassPackage reports whether pkgRel holds pass bodies subject to
// the determinism and scratch checks.
func isPassPackage(pkgRel string) bool {
	return strings.HasPrefix(pkgRel, "internal/") && !nonPassPackages[pkgRel]
}

// cfgOwners may write Succs/Preds directly: ir defines the helpers,
// cfg is the dedicated CFG-surgery toolkit (its entry points mark the
// mutation themselves).
var cfgOwners = map[string]bool{
	"internal/ir":  true,
	"internal/cfg": true,
}

// File lints one parsed file belonging to the module-relative package
// pkgRel (e.g. "internal/gvn").
func File(fset *token.FileSet, f *ast.File, pkgRel string) []Diagnostic {
	c := &checker{fset: fset, pkgRel: pkgRel, ignores: directives(fset, f)}
	if !cfgOwners[pkgRel] {
		c.checkCFGWrites(f)
	}
	if pkgRel != "internal/ir" {
		c.checkIRConstruct(f)
	}
	if isPassPackage(pkgRel) {
		c.checkTimeNow(f)
		c.checkMapOrder(f)
		c.checkScratch(f)
	}
	sort.Slice(c.diags, func(i, j int) bool {
		a, b := c.diags[i].Pos, c.diags[j].Pos
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return c.diags
}

// Dir parses and lints every non-test .go file in one directory.
// pkgRel is the directory's module-relative path.
func Dir(dir, pkgRel string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	// Package names sorted so the output order never depends on map
	// iteration (the linter holds itself to its own rules).
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		files := make([]string, 0, len(pkgs[name].Files))
		for fname := range pkgs[name].Files {
			files = append(files, fname)
		}
		sort.Strings(files)
		for _, fname := range files {
			diags = append(diags, File(fset, pkgs[name].Files[fname], pkgRel)...)
		}
	}
	return diags, nil
}

// Tree walks the module rooted at root and lints every package
// directory (skipping testdata, vendored and hidden trees).
func Tree(root string) ([]Diagnostic, error) {
	var diags []Diagnostic
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		hasGo := false
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ds, err := Dir(path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		diags = append(diags, ds...)
		return nil
	})
	return diags, err
}

type checker struct {
	fset    *token.FileSet
	pkgRel  string
	ignores map[int]map[string]bool // line → suppressed checks
	diags   []Diagnostic
}

// directives collects //lint:ignore CHECK reason comments.  A
// directive suppresses its check on the comment's own line and on the
// line immediately below (covering both trailing and leading styles).
func directives(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	ignores := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "lint:ignore ") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore "))
			if len(fields) < 2 {
				continue // no reason given: directive does not apply
			}
			line := fset.Position(c.Pos()).Line
			for _, l := range []int{line, line + 1} {
				if ignores[l] == nil {
					ignores[l] = map[string]bool{}
				}
				ignores[l][fields[0]] = true
			}
		}
	}
	return ignores
}

func (c *checker) report(pos token.Pos, check, format string, args ...any) {
	p := c.fset.Position(pos)
	if c.ignores[p.Line][check] {
		return
	}
	c.diags = append(c.diags, Diagnostic{Pos: p, Check: check, Message: fmt.Sprintf(format, args...)})
}

// checkCFGWrites flags direct writes to a block's Succs/Preds edge
// lists (assignment, indexed assignment, or append-into) outside the
// CFG-owning packages.
func (c *checker) checkCFGWrites(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if name := edgeListTarget(lhs); name != "" {
				c.report(lhs.Pos(), "cfgwrite",
					"direct write to %s outside internal/ir and internal/cfg; use ir.AddEdge/ir.RemoveEdge or the cfg helpers so the CFG generation is bumped", name)
			}
		}
		return true
	})
}

// edgeListTarget returns "X.Succs"-style text when the expression
// names a block edge list (directly or via an index), else "".
func edgeListTarget(e ast.Expr) string {
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ix.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Succs" && sel.Sel.Name != "Preds") {
		return ""
	}
	if x, ok := sel.X.(*ast.Ident); ok {
		return x.Name + "." + sel.Sel.Name
	}
	return "(...)." + sel.Sel.Name
}

// checkTimeNow flags wall-clock reads in pass bodies.
func (c *checker) checkTimeNow(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if x, ok := sel.X.(*ast.Ident); ok && x.Name == "time" &&
			(sel.Sel.Name == "Now" || sel.Sel.Name == "Since") {
			c.report(call.Pos(), "timenow",
				"time.%s in a pass body: pass behavior must be reproducible; timing belongs in the pass manager's OnPass hook", sel.Sel.Name)
		}
		return true
	})
}
