package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// lintSrc parses src as a single file of the given module-relative
// package and returns the findings.
func lintSrc(t *testing.T, pkgRel, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return File(fset, f, pkgRel)
}

func wantChecks(t *testing.T, diags []Diagnostic, want ...string) {
	t.Helper()
	var got []string
	for _, d := range diags {
		got = append(got, d.Check)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %v", len(got), diags, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d: check %q, want %q (%s)", i, got[i], want[i], diags[i])
		}
	}
}

func TestCFGWriteFlagged(t *testing.T) {
	src := `package dce
func f(b *Block) {
	b.Succs = nil
	b.Preds = append(b.Preds, b)
	b.Succs[0] = b
	b.Instrs = nil // not an edge list
}`
	wantChecks(t, lintSrc(t, "internal/dce", src), "cfgwrite", "cfgwrite", "cfgwrite")
}

func TestCFGWriteAllowedInOwners(t *testing.T) {
	src := `package ir
func f(b *Block) { b.Succs = nil }`
	wantChecks(t, lintSrc(t, "internal/ir", src))
	src2 := `package cfg
func f(b *Block) { b.Preds = nil }`
	wantChecks(t, lintSrc(t, "internal/cfg", src2))
}

func TestCFGWriteSuppressedWithReason(t *testing.T) {
	src := `package progen
func f(b *Block) {
	b.Succs = nil //lint:ignore cfgwrite fresh block in a generator
}`
	wantChecks(t, lintSrc(t, "internal/progen", src))

	// A directive without a reason does not suppress.
	src2 := `package progen
func f(b *Block) {
	b.Succs = nil //lint:ignore cfgwrite
}`
	wantChecks(t, lintSrc(t, "internal/progen", src2), "cfgwrite")
}

func TestTimeNowFlaggedInPassBodies(t *testing.T) {
	src := `package gvn
import "time"
func f() time.Time { return time.Now() }`
	wantChecks(t, lintSrc(t, "internal/gvn", src), "timenow")

	// The pass manager (internal/core) owns timing instrumentation.
	src2 := `package core
import "time"
func f() time.Time { return time.Now() }`
	wantChecks(t, lintSrc(t, "internal/core", src2))
}

func TestMapOrderAppendFlagged(t *testing.T) {
	src := `package pre
func f(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}`
	wantChecks(t, lintSrc(t, "internal/pre", src), "maporder")
}

func TestMapOrderSortedAppendAllowed(t *testing.T) {
	src := `package pre
import "sort"
func f(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}`
	wantChecks(t, lintSrc(t, "internal/pre", src))
}

func TestMapOrderPrintFlagged(t *testing.T) {
	src := `package sccp
import "fmt"
func f() {
	m := make(map[string]int)
	for k := range m {
		fmt.Println(k)
	}
}`
	wantChecks(t, lintSrc(t, "internal/sccp", src), "maporder")
}

func TestMapOrderWriteFlagged(t *testing.T) {
	src := `package sccp
import "strings"
func f(w *strings.Builder) {
	m := map[string]int{}
	for k := range m {
		w.WriteString(k)
	}
}`
	wantChecks(t, lintSrc(t, "internal/sccp", src), "maporder")
}

func TestMapOrderCommutativeBodyAllowed(t *testing.T) {
	// Pure map-to-map work and counting are order-independent.
	src := `package gvn
func f(m map[int]int) int {
	n := 0
	other := map[int]bool{}
	for k, v := range m {
		n += v
		other[k] = true
	}
	return n
}`
	wantChecks(t, lintSrc(t, "internal/gvn", src))
}

func TestMapOrderSliceRangeNotFlagged(t *testing.T) {
	src := `package gvn
func f(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}`
	wantChecks(t, lintSrc(t, "internal/gvn", src))
}

func TestScratchUnreleasedFlagged(t *testing.T) {
	src := `package ssa
func f(ac *Cache, n int) {
	buf := ac.BorrowInts(n)
	_ = buf
}`
	wantChecks(t, lintSrc(t, "internal/ssa", src), "scratch")
}

func TestScratchDeferReleaseAllowed(t *testing.T) {
	src := `package ssa
func f(ac *Cache, n int) {
	buf := ac.BorrowInts(n)
	defer ac.ReturnInts(buf)
	work := ac.BorrowBlocks(n)[:0]
	_ = work
	ac.ReturnBlocks(work)
}`
	wantChecks(t, lintSrc(t, "internal/ssa", src))
}

func TestScratchOwnershipTransferAllowed(t *testing.T) {
	// Returning the borrowed buffer hands ownership to the caller
	// (canonicalDsts-style) — not a leak.
	src := `package pre
func f(ac *Cache, n int) []int {
	buf := ac.BorrowInts(n)
	return buf
}`
	wantChecks(t, lintSrc(t, "internal/pre", src))
}

func TestScratchMismatchedKindFlagged(t *testing.T) {
	src := `package ssa
func f(ac *Cache, n int) {
	buf := ac.BorrowBools(n)
	ac.ReturnInts(nil)
	_ = buf
}`
	wantChecks(t, lintSrc(t, "internal/ssa", src), "scratch")
}

func TestScratchUnboundBorrowFlagged(t *testing.T) {
	src := `package ssa
func f(ac *Cache, n int) {
	use(ac.BorrowInts(n))
}`
	diags := lintSrc(t, "internal/ssa", src)
	wantChecks(t, diags, "scratch")
	if !strings.Contains(diags[0].Message, "not bound") {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
}

// TestPassPackageDenylist pins the coverage inversion: internal/
// packages are pass packages unless explicitly exempted, so a newly
// added backend package is linted without registration, while cmd/
// binaries and the exempted harness packages stay out of the
// determinism checks (the cfgwrite check applies to them regardless).
func TestPassPackageDenylist(t *testing.T) {
	for pkg, want := range map[string]bool{
		"internal/lcm":     true,
		"internal/lospre":  true,
		"internal/pre":     true,
		"internal/newpass": true, // hypothetical future backend: covered by default
		"internal/core":    false,
		"internal/suite":   false,
		"internal/lint":    false,
		"cmd/epre":         false,
		"cmd/ilocfilter":   false,
	} {
		if got := isPassPackage(pkg); got != want {
			t.Errorf("isPassPackage(%q) = %v, want %v", pkg, got, want)
		}
	}

	// The determinism checks really fire in the newly covered packages…
	src := `package lospre
import "time"
func f() time.Time { return time.Now() }`
	wantChecks(t, lintSrc(t, "internal/lospre", src), "timenow")

	// …and really stay off in cmd/ even for map-order sinks.
	src2 := `package main
import "fmt"
func f(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}`
	wantChecks(t, lintSrc(t, "cmd/epre", src2))
}

// TestMapOrderInsertionPointMap is the fixture the lcm/lospre
// backends motivated: both keep per-block insertion-point maps, and
// draining one into the instruction stream without sorting would make
// the emitted order depend on map iteration.  The unsorted drain must
// be flagged; the canonical collect-keys-sort-iterate drain must pass.
func TestMapOrderInsertionPointMap(t *testing.T) {
	src := `package lcm
func drain(insertAt map[*Block][]*Instr) []*Instr {
	var out []*Instr
	for _, instrs := range insertAt {
		out = append(out, instrs...)
	}
	return out
}`
	wantChecks(t, lintSrc(t, "internal/lcm", src), "maporder")

	src2 := `package lcm
import "sort"
func drain(insertAt map[int][]*Instr) []*Instr {
	keys := make([]int, 0, len(insertAt))
	for b := range insertAt {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	var out []*Instr
	for _, b := range keys {
		out = append(out, insertAt[b]...)
	}
	return out
}`
	wantChecks(t, lintSrc(t, "internal/lcm", src2))
}

// TestIRConstructFlagged pins the arena invariant the refactor
// introduced: a bare ir.Instr literal has no InstrID, so passes must
// allocate through a Func.  Both literal spellings and new() are
// caught.
func TestIRConstructFlagged(t *testing.T) {
	src := `package peephole
import "repro/internal/ir"
func f() *ir.Instr {
	in := &ir.Instr{Op: ir.OpAdd}
	_ = ir.Instr{}
	return in
}`
	wantChecks(t, lintSrc(t, "internal/peephole", src), "irconstruct", "irconstruct")

	src2 := `package peephole
import "repro/internal/ir"
func f() *ir.Instr { return new(ir.Instr) }`
	wantChecks(t, lintSrc(t, "internal/peephole", src2), "irconstruct")
}

func TestIRConstructAliasedImportFlagged(t *testing.T) {
	src := `package gvn
import myir "repro/internal/ir"
func f() *myir.Instr { return &myir.Instr{} }`
	wantChecks(t, lintSrc(t, "internal/gvn", src), "irconstruct")
}

func TestIRConstructAllowedInIR(t *testing.T) {
	// The ir package itself allocates arena chunks and the zero-value
	// scaffolding; the unqualified spelling there is the implementation.
	src := `package ir
func f() *Instr { return &Instr{} }`
	wantChecks(t, lintSrc(t, "internal/ir", src))
}

func TestIRConstructUnrelatedInstrAllowed(t *testing.T) {
	// A different package exporting an Instr type is not ours; the
	// check resolves the selector through the actual import path.
	src := `package interp
import "some/other/asm"
func f() *asm.Instr { return &asm.Instr{} }`
	wantChecks(t, lintSrc(t, "internal/interp", src))
}

func TestIRConstructAllocatorCallsAllowed(t *testing.T) {
	src := `package pre
import "repro/internal/ir"
func f(fn *ir.Func) ir.InstrID {
	in := fn.NewInstr(ir.OpAdd, 1, 2, 3)
	return in.ID()
}`
	wantChecks(t, lintSrc(t, "internal/pre", src))
}

func TestIRConstructSuppressedWithReason(t *testing.T) {
	src := `package difftest
import "repro/internal/ir"
func f() {
	_ = ir.Instr{} //lint:ignore irconstruct detached scratch value, never enters a block
}`
	wantChecks(t, lintSrc(t, "internal/difftest", src))
}

// TestRepoClean is the gate that wires the linter into the test
// suite: the repository itself must lint clean.  This is the same
// walk cmd/eprelint and `make lint` perform.
func TestRepoClean(t *testing.T) {
	diags, err := Tree("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
