// Package lospre implements speculative partial redundancy
// elimination ("lospre", after Krause's lifetime-optimal speculative
// PRE) as an alternate backend to internal/pre and internal/lcm.
//
// Instead of the classical four-problem dataflow cascade, each
// expression is placed by solving one minimum s-t cut over a small
// graph with two nodes per block — N(b) for the block's entry, X(b)
// for its exit — plus a use node U(b) per block that computes the
// expression.  A node on the sink side of the cut means "the temporary
// h holds the expression's value here".  Cut arcs are exactly the
// placement costs:
//
//   - X(p)→N(b), capacity freq(edge): insert h ← e on the CFG edge;
//   - N(b)→X(b), capacity freq(b), present when b is transparent and
//     does not compute e: insert h ← e at the bottom of b;
//   - N(b)→U(b), capacity freq(b), present when e is upward-exposed
//     in b: leave the occurrence computing (the status quo).
//
// Forced labels encode the program facts as infinite arcs: s→N(entry)
// (nothing is available at function entry), s→X(b) when b kills the
// operands without recomputing, s→N/X at points where the operands are
// not definitely assigned, and — for expressions whose speculation
// could introduce a trap (loads, integer div/mod) — s→N/X at points
// that are not down-safe, which collapses the solution to classical
// non-speculative motion for exactly those expressions.  U(b)→t and
// X(b)→t (when b computes e) are the sink-side forcings.  Block
// frequencies are loop-depth estimates (8^depth), so the min cut
// naturally pays one insertion outside a loop to spare a computation
// inside it, including on paths that did not compute e — that is the
// speculation classical PRE's down-safety forbids.
//
// The cut is solved by a budgeted Dinic (see mincut.go): linear work
// on the structured CFGs the linear-time formulation targets, with a
// safe fallback — leave the expression untouched — when the budget
// trips on an adversarial graph.  An expression is only transformed
// when its max flow is strictly below the status-quo cost, which both
// skips useless churn and guarantees the fixpoint driver terminates.
package lospre

import (
	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// Stats reports what one lospre run did to a function.
type Stats struct {
	Exprs         int // size of the expression universe
	Transformed   int // expressions whose cut beat the status quo
	Inserted      int // h ← e computations inserted (edges and block bottoms)
	Replaced      int // occurrences rewritten into copies from the temp
	Rewritten     int // occurrences rewritten to h ← e; t ← copy h
	Fallbacks     int // expressions skipped because the cut budget tripped
	EdgesSplit    int // critical edges split
	RemovedBlocks int // unreachable blocks dropped before analysis
	Rounds        int // iterations used by RunToFixpoint
}

// Changed reports whether the run made optimization progress — the
// fixpoint driver's termination condition.  Every transformed
// expression yields at least one Replaced occurrence (a cut strictly
// cheaper than the status quo leaves some use reading the temp), so
// Replaced alone is the progress signal.
func (s Stats) Changed() bool { return s.Replaced > 0 }

// Mutated reports whether the run modified the function at all.
func (s Stats) Mutated() bool {
	return s.Inserted+s.Replaced+s.Rewritten+s.EdgesSplit+s.RemovedBlocks > 0
}

// MaxRounds bounds RunToFixpoint.  The strict-improvement guard makes
// each round lower the modeled execution cost, so this is a backstop,
// not the usual termination path.
const MaxRounds = 8

// maxDepth caps the loop-depth frequency exponent so freq stays far
// below the forced-label capacity.
const maxDepth = 12

// speculatable reports whether computing op on a path that did not
// originally compute it can trap: loads (bounds) and integer division
// and modulus (zero divisor) cannot be speculated; every other pure
// operation is total in internal/interp.
func speculatable(op ir.Op) bool {
	return !op.IsLoad() && op != ir.OpDiv && op != ir.OpMod
}

// RunToFixpoint applies Run repeatedly until lospre finds nothing more.
func RunToFixpoint(f *ir.Func) Stats {
	return RunToFixpointWith(f, analysis.NewCache(f))
}

// RunToFixpointWith is RunToFixpoint drawing CFG analyses from the
// given cache.
func RunToFixpointWith(f *ir.Func, ac *analysis.Cache) Stats {
	var total Stats
	for i := 0; i < MaxRounds; i++ {
		st := RunWith(f, ac)
		total.Transformed += st.Transformed
		total.Inserted += st.Inserted
		total.Replaced += st.Replaced
		total.Rewritten += st.Rewritten
		total.Fallbacks += st.Fallbacks
		total.EdgesSplit += st.EdgesSplit
		total.RemovedBlocks += st.RemovedBlocks
		total.Exprs = st.Exprs
		total.Rounds++
		if !st.Changed() {
			break
		}
	}
	return total
}

// Run performs one round of speculative PRE on f and returns
// statistics.  The function is modified in place.
func Run(f *ir.Func) Stats {
	return RunWith(f, analysis.NewCache(f))
}

// Node numbering within the placement graph.
const (
	srcNode  = 0
	sinkNode = 1
)

func nNode(b *ir.Block) int { return 2 + 3*b.ID }
func xNode(b *ir.Block) int { return 3 + 3*b.ID }
func uNode(b *ir.Block) int { return 4 + 3*b.ID }

// RunWith is Run drawing CFG analyses from the given cache.
func RunWith(f *ir.Func, ac *analysis.Cache) Stats {
	return runWith(f, ac, 0)
}

// runWith is RunWith with a test seam: forcedBudgetTrips > 0 makes the
// first that many cut solves report budget exhaustion, exercising the
// conservative fallback without an adversarial graph.
func runWith(f *ir.Func, ac *analysis.Cache, forcedBudgetTrips int) Stats {
	var st Stats
	st.RemovedBlocks = ac.RemoveUnreachable()
	st.EdgesSplit = cfg.SplitCriticalEdges(f)
	u := dataflow.BuildUniverse(f)
	defer u.Release()
	n := u.NumExprs()
	st.Exprs = n
	if n == 0 {
		return st
	}
	rpo := ac.RPO()
	nb := len(f.Blocks)
	nr := f.NumRegs()

	var bw dataflow.Borrower
	defer bw.Release()

	// Down-safety (anticipability), needed to pin the non-speculatable
	// expressions to classical placement.
	antin := bw.PerBlock(nb, n)
	antout := bw.PerBlock(nb, n)
	for _, b := range f.Blocks {
		antin[b.ID].SetAll()
	}
	dataflow.SolveBackward(rpo, dataflow.MeetAll, antout, antin,
		func(b *ir.Block, out, dst *dataflow.BitSet) {
			dst.CopyFrom(out)
			dst.Intersect(u.Transp[b.ID])
			dst.Union(u.AntLoc[b.ID])
		})

	// Definite assignment of registers (forward, all-paths): an
	// insertion may only be placed where the expression's operands are
	// certainly defined, or checked mode would reject the output.
	defs := bw.PerBlock(nb, nr)
	for _, b := range f.Blocks {
		set := defs[b.ID]
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpEnter {
				for _, p := range in.Args {
					set.Set(int(p))
				}
			}
			if in.Dst != ir.NoReg {
				set.Set(int(in.Dst))
			}
		}
	}
	defin := bw.PerBlock(nb, nr)
	defout := bw.PerBlock(nb, nr)
	for _, b := range f.Blocks {
		defout[b.ID].SetAll()
	}
	dataflow.SolveForward(rpo, dataflow.MeetAll, defin, defout,
		func(b *ir.Block, in, dst *dataflow.BitSet) {
			dst.CopyFrom(in)
			dst.Union(defs[b.ID])
		})
	definedAt := func(sets []*dataflow.BitSet, b *ir.Block, e int) bool {
		k := u.Keys[e]
		if k.A != ir.NoReg && !sets[b.ID].Has(int(k.A)) {
			return false
		}
		if k.B != ir.NoReg && !sets[b.ID].Has(int(k.B)) {
			return false
		}
		return true
	}

	// Execution frequency estimates from loop depth.
	loops := ac.Loops()
	freq := make([]int64, nb)
	for _, b := range f.Blocks {
		d := loops.Depth(b)
		if d > maxDepth {
			d = maxDepth
		}
		freq[b.ID] = int64(1) << uint(3*d)
	}

	// Per-expression placement decisions, accumulated and applied in
	// one rewrite pass at the end.
	transformed := bw.Get(n)
	navail := bw.PerBlock(nb, n) // N(b) on the sink side: h valid at entry
	topIns := make([][]int, nb)  // insertions at block top (edge, single-pred side)
	botIns := make([][]int, nb)  // insertions before the terminator
	g := newMincut(2 + 3*nb)
	mark := make([]bool, 2+3*nb)

	for e := 0; e < n; e++ {
		spec := speculatable(u.Keys[e].Op)
		trivial := int64(0)
		for _, b := range f.Blocks {
			if u.AntLoc[b.ID].Has(e) {
				trivial += freq[b.ID]
			}
		}
		if trivial == 0 {
			// Computed only after kills in its blocks: no upward-exposed
			// use to redirect, nothing to gain.
			continue
		}

		g.reset()
		entry := f.Entry()
		g.addEdge(srcNode, nNode(entry), inf)
		for _, b := range f.Blocks {
			comp := u.Comp[b.ID].Has(e)
			transp := u.Transp[b.ID].Has(e)
			if !definedAt(defin, b, e) || (!spec && !antin[b.ID].Has(e)) {
				if b != entry {
					g.addEdge(srcNode, nNode(b), inf)
				}
			}
			switch {
			case comp:
				g.addEdge(xNode(b), sinkNode, inf)
			case !transp || !definedAt(defout, b, e) || (!spec && !antout[b.ID].Has(e)):
				g.addEdge(srcNode, xNode(b), inf)
			default:
				g.addEdge(nNode(b), xNode(b), freq[b.ID])
			}
			if u.AntLoc[b.ID].Has(e) {
				g.addEdge(nNode(b), uNode(b), freq[b.ID])
				g.addEdge(uNode(b), sinkNode, inf)
			}
		}
		for _, b := range f.Blocks {
			for _, s := range b.Succs {
				g.addEdge(xNode(b), nNode(s), min(freq[b.ID], freq[s.ID]))
			}
		}

		flow, ok := g.maxflow(srcNode, sinkNode)
		if forcedBudgetTrips > 0 {
			forcedBudgetTrips--
			ok = false
		}
		if !ok {
			st.Fallbacks++
			continue
		}
		if flow >= trivial {
			continue // no strict improvement: keep the status quo
		}

		g.minCutReachable(srcNode, mark)
		transformed.Set(e)
		st.Transformed++
		for _, b := range f.Blocks {
			if !mark[nNode(b)] {
				navail[b.ID].Set(e)
			}
			if mark[nNode(b)] && !mark[xNode(b)] && !u.Comp[b.ID].Has(e) {
				botIns[b.ID] = append(botIns[b.ID], e)
			}
		}
		for _, b := range f.Blocks {
			for _, s := range b.Succs {
				if !mark[xNode(b)] || mark[nNode(s)] {
					continue
				}
				// Insertion on the edge b→s; critical edges are split,
				// so one endpoint owns the edge exclusively.
				if len(b.Succs) == 1 {
					botIns[b.ID] = append(botIns[b.ID], e)
				} else {
					topIns[s.ID] = append(topIns[s.ID], e)
				}
			}
		}
	}
	if transformed.Empty() {
		return st
	}

	temp := ac.BorrowRegs(n)
	defer ac.ReturnRegs(temp)
	transformed.ForEach(func(e int) { temp[e] = f.NewReg() })

	insertedInstr := map[*ir.Instr]bool{}
	for _, b := range f.Blocks {
		for _, e := range topIns[b.ID] {
			pos := 0
			for pos < len(b.Instrs) && (b.Instr(pos).Op == ir.OpPhi || b.Instr(pos).Op == ir.OpEnter) {
				pos++
			}
			in := u.MakeInstr(e, temp[e])
			insertedInstr[in] = true
			b.InsertAt(pos, in)
			st.Inserted++
		}
		for _, e := range botIns[b.ID] {
			in := u.MakeInstr(e, temp[e])
			insertedInstr[in] = true
			b.InsertAt(len(b.Instrs)-1, in) // before the terminator
			st.Inserted++
		}
	}

	// Rewrite every occurrence of a transformed expression.  Where the
	// cut proved h valid the occurrence becomes a copy; elsewhere it
	// recomputes through h so downstream labels stay honest (the Comp
	// forcing assumed exactly this).
	hValid := bw.Get(n)
	for _, b := range f.Blocks {
		hValid.CopyFrom(navail[b.ID])
		kept := make([]ir.InstrID, 0, len(b.Instrs))
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if insertedInstr[in] {
				if k, ok := dataflow.KeyOf(in); ok {
					if e, found := u.Index[k]; found {
						hValid.Set(e)
					}
				}
				kept = append(kept, inID)
				continue
			}
			dstForKill := in.Dst
			if k, ok := dataflow.KeyOf(in); ok {
				if e, found := u.Index[k]; found && transformed.Has(e) {
					if hValid.Has(e) {
						kept = append(kept, f.NewCopy(in.Dst, temp[e]).ID())
						st.Replaced++
					} else {
						kept = append(kept, u.MakeInstr(e, temp[e]).ID(), f.NewCopy(in.Dst, temp[e]).ID())
						hValid.Set(e)
						st.Rewritten++
					}
					u.KillScan(hValid, dstForKill, false)
					continue
				}
			}
			kept = append(kept, inID)
			u.KillScan(hValid, dstForKill, in.Op.WritesMemory())
		}
		b.Instrs = kept
	}
	// The kept-slice rewrites above bypass the Block helpers.
	f.MarkCodeMutated()
	return st
}
