package lospre

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/coalesce"
	"repro/internal/dce"
	"repro/internal/interp"
	"repro/internal/ir"
)

func run(t *testing.T, f *ir.Func, fn string, args ...int64) (int64, int64) {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(fn, vals...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v.I, m.Steps
}

func cleanup(f *ir.Func) {
	dce.Run(f)
	coalesce.Run(f)
	cfg.RemoveEmptyBlocks(f)
	dce.Run(f)
}

// opOutside counts occurrences of op outside the named blocks.
func opOutside(f *ir.Func, op ir.Op, inside ...string) int {
	allowed := map[string]bool{}
	for _, name := range inside {
		allowed[name] = true
	}
	n := 0
	for _, b := range f.Blocks {
		if allowed[b.Name] {
			continue
		}
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// TestLospreLoopInvariant: the classic full-redundancy-in-a-loop case.
// The loop body's frequency estimate dwarfs the preheader edge, so the
// cut moves the computation out.
func TestLospreLoopInvariant(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    add r1, r2 => r6
    add r4, r6 => r4
    loadI 1 => r7
    add r5, r7 => r5
    cmpLT r5, r3 => r8
    cbr r8 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	want, before := run(t, f, "f", 3, 4, 10)
	st := RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if st.Transformed == 0 || st.Inserted == 0 {
		t.Errorf("invariant not moved: %+v\n%s", st, f)
	}
	cleanup(f)
	got, after := run(t, f, "f", 3, 4, 10)
	if got != want {
		t.Fatalf("semantics changed: %d vs %d", got, want)
	}
	if before-after < 9 {
		t.Errorf("expected ≥9 ops saved, got %d (%d -> %d)\n%s", before-after, before, after, f)
	}
}

// TestLospreSpeculativeHoist is what separates lospre from the
// down-safe backends: a computation guarded by a condition inside a
// loop is hoisted out anyway, because one speculative evaluation
// outside beats the expected many inside — exactly the motion
// internal/pre and internal/lcm must refuse.
func TestLospreSpeculativeHoist(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    cmpLT r5, r1 => r6
    cbr r6 -> b2, b3
b2:
    mul r2, r2 => r7
    add r4, r7 => r4
    jump -> b3
b3:
    loadI 1 => r8
    add r5, r8 => r5
    cmpLT r5, r3 => r9
    cbr r9 -> b1, b4
b4:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	wantHot, hotBefore := run(t, f, "f", 10, 5, 10)
	wantCold, _ := run(t, f, "f", 0, 5, 10)
	st := RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	cleanup(f)
	gotHot, hotAfter := run(t, f, "f", 10, 5, 10)
	gotCold, _ := run(t, f, "f", 0, 5, 10)
	if gotHot != wantHot || gotCold != wantCold {
		t.Fatalf("semantics changed: (%d,%d) vs (%d,%d)", gotHot, gotCold, wantHot, wantCold)
	}
	if st.Transformed == 0 {
		t.Fatalf("no speculation attempted: %+v\n%s", st, f)
	}
	// The mul must have left the loop: fewer dynamic ops on the hot
	// path, and no mul remaining in the loop blocks.
	if hotAfter >= hotBefore {
		t.Errorf("hot path not shortened: %d -> %d\n%s", hotBefore, hotAfter, f)
	}
	dom := cfg.BuildDomTree(f)
	li := cfg.FindLoops(f, dom)
	for _, b := range f.Blocks {
		if li.Depth(b) > 0 {
			for _, inID := range b.Instrs {
				in := b.Fn.Instr(inID)
				if in.Op == ir.OpMul {
					t.Errorf("mul still inside the loop in %s\n%s", b.Name, f)
				}
			}
		}
	}
}

// TestLospreNonSpeculatableDiv: an integer division may trap, so it
// must never run on a path that did not originally run it.  Calling
// with a zero divisor on the skip path proves it behaviorally: the
// original program returns cleanly, and so must the optimized one
// (run fails the test on a trap).
func TestLospreNonSpeculatableDiv(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    cmpLT r5, r1 => r6
    cbr r6 -> b2, b3
b2:
    div r2, r3 => r7
    add r4, r7 => r4
    jump -> b3
b3:
    loadI 1 => r8
    add r5, r8 => r5
    loadI 10 => r9
    cmpLT r5, r9 => r10
    cbr r10 -> b1, b4
b4:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, "f", 0, 5, 0) // skip path, divisor zero: no trap
	RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	cleanup(f)
	got, _ := run(t, f, "f", 0, 5, 0)
	if got != want {
		t.Fatalf("semantics changed: %d vs %d", got, want)
	}
	if n := opOutside(f, ir.OpDiv, "b2"); n != 0 {
		t.Errorf("div speculated out of its guarded block\n%s", f)
	}
}

// TestLospreLoadsRespectStores: a load in a loop with a store to an
// unknown address is neither transparent nor down-safe outside, so it
// stays put; without the store the load is down-safe at the preheader
// and classical (non-speculative) motion hoists it.
func TestLospreLoadsRespectStores(t *testing.T) {
	const withStore = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    jump -> b1
b1:
    ldw [r1] => r5
    stw r5 => [r2]
    loadI 1 => r6
    add r4, r6 => r4
    cmpLT r4, r3 => r7
    cbr r7 -> b1, b2
b2:
    ret r5
}
`
	f := ir.MustParseFunc(withStore)
	RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if n := opOutside(f, ir.OpLoadW, "b1"); n != 0 {
		t.Errorf("load hoisted past a store\n%s", f)
	}

	const noStore = `
func f(r1, r3) {
b0:
    enter(r1, r3)
    loadI 0 => r4
    jump -> b1
b1:
    ldw [r1] => r5
    add r4, r5 => r4
    loadI 1 => r6
    add r4, r6 => r4
    cmpLT r4, r3 => r7
    cbr r7 -> b1, b2
b2:
    ret r4
}
`
	f2 := ir.MustParseFunc(noStore)
	prog := &ir.Program{Funcs: []*ir.Func{f2}, GlobalSize: 64}
	m := interp.NewMachine(prog.Clone())
	m.WriteInt64(8, 5)
	want, _ := m.Call("f", interp.IntVal(8), interp.IntVal(40))
	st := RunToFixpoint(f2)
	if err := ir.Verify(f2); err != nil {
		t.Fatal(err)
	}
	if st.Transformed == 0 {
		t.Errorf("unconditional loop load not hoisted: %+v\n%s", st, f2)
	}
	m2 := interp.NewMachine(prog.Clone())
	m2.WriteInt64(8, 5)
	got, err := m2.Call("f", interp.IntVal(8), interp.IntVal(40))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != want.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, want.I)
	}
}

// TestLospreBudgetFallback drives the conservative fallback through
// the test seam: when every cut solve reports budget exhaustion the
// pass must transform nothing and leave the code byte-identical.
func TestLospreBudgetFallback(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    add r1, r2 => r6
    add r4, r6 => r4
    loadI 1 => r7
    add r5, r7 => r5
    cmpLT r5, r3 => r8
    cbr r8 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	cfg.SplitCriticalEdges(f) // CFG normalization happens either way
	before := f.String()
	st := runWith(f, analysis.NewCache(f), 1<<30)
	if st.Fallbacks == 0 {
		t.Fatalf("test seam did not trip: %+v", st)
	}
	if st.Transformed != 0 || st.Inserted != 0 || st.Replaced != 0 || st.Rewritten != 0 {
		t.Errorf("fallback still transformed: %+v", st)
	}
	if after := f.String(); after != before {
		t.Errorf("fallback modified the function:\n--- before\n%s\n--- after\n%s", before, after)
	}
	// And with the real budget the same input does transform.
	f2 := ir.MustParseFunc(src)
	if st2 := RunWith(f2, analysis.NewCache(f2)); st2.Transformed == 0 {
		t.Errorf("real budget failed to transform the control case: %+v", st2)
	}
}

// TestLospreStrictImprovementSkips: a single straight-line computation
// has status-quo cost equal to any placement (the cut can do no better
// than the use's own edge), so the strict-improvement guard must leave
// it alone — the same guard is what makes the fixpoint terminate.
func TestLospreStrictImprovementSkips(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    ret r3
}
`
	f := ir.MustParseFunc(src)
	st := RunToFixpoint(f)
	if st.Transformed != 0 {
		t.Errorf("cost-neutral move taken: %+v\n%s", st, f)
	}
	if st.Rounds != 1 {
		t.Errorf("fixpoint did not stop immediately: %+v", st)
	}
	if !strings.Contains(f.String(), "add r1, r2") {
		t.Errorf("original computation disturbed\n%s", f)
	}
}

// TestLosprePureDiamondSpeculates documents the cost-model difference
// from the down-safe backends: with uniform frequencies the §2 diamond
// is resolved by one speculative computation above the branch (cost 1)
// instead of edge insertion plus a surviving compute (cost 2).  Both
// paths must stay semantically intact.
func TestLosprePureDiamondSpeculates(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    cbr r1 -> b1, b2
b1:
    add r1, r2 => r3
    jump -> b3
b2:
    loadI 7 => r4
    jump -> b3
b3:
    add r1, r2 => r5
    ret r5
}
`
	f := ir.MustParseFunc(src)
	wantThen, _ := run(t, f, "f", 1, 2)
	wantElse, _ := run(t, f, "f", 0, 2)
	st := RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if st.Transformed == 0 || st.Inserted != 1 {
		t.Errorf("expected one speculative insertion above the branch: %+v\n%s", st, f)
	}
	cleanup(f)
	gotThen, _ := run(t, f, "f", 1, 2)
	gotElse, _ := run(t, f, "f", 0, 2)
	if gotThen != wantThen || gotElse != wantElse {
		t.Fatalf("semantics changed: (%d,%d) vs (%d,%d)", gotThen, gotElse, wantThen, wantElse)
	}
}
