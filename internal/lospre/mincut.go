package lospre

// Budgeted max-flow / min-cut on small per-expression placement
// graphs.  The solver is Dinic's algorithm with one twist: every BFS
// and DFS step debits a work budget sized linearly in the graph
// (workFactor·(V+E)).  On the structured, mostly series-parallel CFGs
// the linear-time lospre formulation assumes, the number of blocking-
// flow phases is a small constant, so the budget never trips; on
// adversarial graphs it trips and the caller falls back to the
// conservative no-motion placement instead of paying the general
// O(V²E) worst case.

// inf is the forced-label capacity.  It is large enough that no finite
// cut can reach it (total finite capacity is bounded by blocks×maxFreq
// ≪ 2⁶⁰) and small enough that summing a few cannot overflow int64.
const inf = int64(1) << 60

// workFactor scales the per-solve budget: workFactor·(V+E) elementary
// steps.  Dinic needs one BFS plus one blocking-flow DFS per phase, so
// this allows roughly workFactor/4 phases — far more than structured
// CFGs ever need, far less than the quadratic worst case.
const workFactor = 64

// mincut is a flow network over nodes 0..nodes-1.  Arcs are stored in
// pairs: arc i and i^1 are each other's reverses, so the residual of
// pushing on i is credited to i^1.
type mincut struct {
	nodes int
	to    []int32   // arc target
	cap   []int64   // residual capacity
	adj   [][]int32 // per-node arc indices, in insertion order
	// Dinic state, reused across solves.
	level []int32
	iter  []int32
	queue []int32
}

// newMincut returns a network with the given node count.
func newMincut(nodes int) *mincut {
	return &mincut{
		nodes: nodes,
		adj:   make([][]int32, nodes),
		level: make([]int32, nodes),
		iter:  make([]int32, nodes),
		queue: make([]int32, 0, nodes),
	}
}

// reset empties the arc set, keeping node count and backing arrays.
func (g *mincut) reset() {
	g.to = g.to[:0]
	g.cap = g.cap[:0]
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
}

// addEdge adds a directed arc from → to with the given capacity (and
// its zero-capacity reverse).
func (g *mincut) addEdge(from, to int, c int64) {
	g.adj[from] = append(g.adj[from], int32(len(g.to)))
	g.to = append(g.to, int32(to))
	g.cap = append(g.cap, c)
	g.adj[to] = append(g.adj[to], int32(len(g.to)))
	g.to = append(g.to, int32(from))
	g.cap = append(g.cap, 0)
}

// bfs builds the level graph; reports whether t is reachable.  Each
// arc examination debits the budget.
func (g *mincut) bfs(s, t int, budget *int64) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	g.queue = g.queue[:0]
	g.level[s] = 0
	g.queue = append(g.queue, int32(s))
	for qi := 0; qi < len(g.queue); qi++ {
		v := g.queue[qi]
		for _, ai := range g.adj[v] {
			*budget--
			if *budget < 0 {
				return false
			}
			if g.cap[ai] > 0 && g.level[g.to[ai]] < 0 {
				g.level[g.to[ai]] = g.level[v] + 1
				g.queue = append(g.queue, g.to[ai])
			}
		}
	}
	return g.level[t] >= 0
}

// dfs pushes a blocking augmenting path of at most limit flow.
func (g *mincut) dfs(v, t int, limit int64, budget *int64) int64 {
	if v == t {
		return limit
	}
	for ; g.iter[v] < int32(len(g.adj[v])); g.iter[v]++ {
		*budget--
		if *budget < 0 {
			return 0
		}
		ai := g.adj[v][g.iter[v]]
		w := g.to[ai]
		if g.cap[ai] <= 0 || g.level[w] != g.level[v]+1 {
			continue
		}
		pushed := g.dfs(int(w), t, min(limit, g.cap[ai]), budget)
		if pushed > 0 {
			g.cap[ai] -= pushed
			g.cap[ai^1] += pushed
			return pushed
		}
	}
	return 0
}

// maxflow computes the s-t max flow under the linear work budget.
// ok=false means the budget tripped (or the flow degenerated to the
// forced-label capacity, which a feasible placement graph never does)
// and the result must not be used.
func (g *mincut) maxflow(s, t int) (flow int64, ok bool) {
	budget := int64(workFactor) * int64(g.nodes+len(g.to))
	for g.bfs(s, t, &budget) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			pushed := g.dfs(s, t, inf, &budget)
			if pushed == 0 {
				break
			}
			flow += pushed
			if flow >= inf {
				return flow, false
			}
		}
		if budget < 0 {
			return flow, false
		}
	}
	if budget < 0 {
		return flow, false
	}
	return flow, true
}

// minCutReachable marks the source side of the minimum cut: every node
// reachable from s in the residual graph.  Deterministic for a given
// arc insertion order.
func (g *mincut) minCutReachable(s int, mark []bool) {
	for i := range mark {
		mark[i] = false
	}
	g.queue = g.queue[:0]
	mark[s] = true
	g.queue = append(g.queue, int32(s))
	for qi := 0; qi < len(g.queue); qi++ {
		v := g.queue[qi]
		for _, ai := range g.adj[v] {
			if w := g.to[ai]; g.cap[ai] > 0 && !mark[w] {
				mark[w] = true
				g.queue = append(g.queue, w)
			}
		}
	}
}
