// Package lvn implements local (hash-based) value numbering — one of
// the two passes the paper reports missing from its optimizer ("we are
// currently missing passes for strength reduction and hash-based value
// numbering", §4.1) and expects to benefit from reassociation.  It is
// provided as an extension so the benchmark harness can measure the
// paper's conjecture.
//
// The algorithm is the classic Cocke–Schwartz scheme, one basic block
// at a time: every register maps to a value number; expressions hash
// on (opcode, operand value numbers) with commutative operands
// canonicalized; a redundant computation whose previous result still
// lives in a register is replaced by a copy.  Constants get value
// numbers by value and fold through pure operators.  Loads hash on
// (load, address VN, memory epoch); stores and calls advance the
// epoch.
package lvn

import (
	"repro/internal/ir"
	"repro/internal/sccp"
)

// Stats reports the rewrites performed.
type Stats struct {
	Replaced int // computations replaced by copies
	Folded   int // computations folded to constants
}

// Changed reports whether the run modified the function.
func (s Stats) Changed() bool { return s.Replaced+s.Folded > 0 }

// Run performs local value numbering on every block of f.
func Run(f *ir.Func) Stats {
	var st Stats
	for _, b := range f.Blocks {
		runBlock(f, b, &st)
	}
	if st.Changed() {
		// Rewrites assign b.Instrs[i] directly, bypassing the Block
		// helpers.
		f.MarkCodeMutated()
	}
	return st
}

type vn = int32

type exprKey struct {
	op    ir.Op
	a, b  vn
	epoch int32 // memory epoch, loads only
}

type constVal struct {
	isFloat bool
	i       int64
	f       float64
}

type state struct {
	next    vn
	regVN   map[ir.Reg]vn
	exprVN  map[exprKey]vn
	constVN map[constVal]vn
	home    map[vn]ir.Reg   // register that held the value last
	vnConst map[vn]constVal // constant value, if known
	epoch   int32
}

func (s *state) fresh() vn {
	s.next++
	return s.next
}

func (s *state) valueOf(r ir.Reg) vn {
	if v, ok := s.regVN[r]; ok {
		return v
	}
	v := s.fresh()
	s.regVN[r] = v
	s.home[v] = r
	return v
}

// define records that r now holds value v (clobbering r's old value's
// home if r was it).
func (s *state) define(r ir.Reg, v vn) {
	if old, ok := s.regVN[r]; ok && s.home[old] == r {
		delete(s.home, old)
	}
	s.regVN[r] = v
	s.home[v] = r
}

// homeOf returns a register currently holding v, if any.
func (s *state) homeOf(v vn) (ir.Reg, bool) {
	r, ok := s.home[v]
	if !ok {
		return ir.NoReg, false
	}
	if s.regVN[r] != v {
		delete(s.home, v)
		return ir.NoReg, false
	}
	return r, true
}

func (s *state) constOf(v vn) (constVal, bool) {
	c, ok := s.vnConst[v]
	return c, ok
}

func (s *state) vnForConst(c constVal) vn {
	if v, ok := s.constVN[c]; ok {
		return v
	}
	v := s.fresh()
	s.constVN[c] = v
	s.vnConst[v] = c
	return v
}

func runBlock(f *ir.Func, b *ir.Block, st *Stats) {
	s := &state{
		regVN:   map[ir.Reg]vn{},
		exprVN:  map[exprKey]vn{},
		constVN: map[constVal]vn{},
		home:    map[vn]ir.Reg{},
		vnConst: map[vn]constVal{},
	}
	for idx, inID := range b.Instrs {
		in := b.Fn.Instr(inID)
		switch {
		case in.Op == ir.OpLoadI:
			s.define(in.Dst, s.vnForConst(constVal{i: in.Imm}))
			continue
		case in.Op == ir.OpLoadF:
			s.define(in.Dst, s.vnForConst(constVal{isFloat: true, f: in.FImm}))
			continue
		case in.Op == ir.OpCopy:
			s.define(in.Dst, s.valueOf(in.Args[0]))
			continue
		case in.Op == ir.OpEnter:
			for _, p := range in.Args {
				s.valueOf(p)
			}
			continue
		case in.Op == ir.OpCall:
			s.epoch++
			if in.Dst != ir.NoReg {
				s.define(in.Dst, s.fresh())
			}
			continue
		case in.Op.IsStore():
			s.epoch++
			continue
		case in.Op == ir.OpPhi || in.Op.IsTerminator():
			if in.Dst != ir.NoReg {
				s.define(in.Dst, s.fresh())
			}
			continue
		}

		// Pure operations and loads.
		key := exprKey{op: in.Op}
		if len(in.Args) > 0 {
			key.a = s.valueOf(in.Args[0])
		}
		if len(in.Args) > 1 {
			key.b = s.valueOf(in.Args[1])
		}
		if in.Op.Commutative() && key.b != 0 && key.b < key.a {
			key.a, key.b = key.b, key.a
		}
		if in.Op.IsLoad() {
			key.epoch = s.epoch
		}

		// Constant folding through value numbers.
		if in.Op.Pure() && len(in.Args) > 0 {
			if folded, ok := s.tryFold(f, in); ok {
				b.Instrs[idx] = folded.ID()
				var c constVal
				if folded.Op == ir.OpLoadF {
					c = constVal{isFloat: true, f: folded.FImm}
				} else {
					c = constVal{i: folded.Imm}
				}
				s.define(in.Dst, s.vnForConst(c))
				st.Folded++
				continue
			}
		}

		if v, ok := s.exprVN[key]; ok {
			if home, live := s.homeOf(v); live {
				b.Instrs[idx] = f.NewCopy(in.Dst, home).ID()
				s.define(in.Dst, v)
				st.Replaced++
				continue
			}
			// Recompute, but keep the same value number.
			s.define(in.Dst, v)
			continue
		}
		v := s.fresh()
		s.exprVN[key] = v
		s.define(in.Dst, v)
	}
}

// tryFold evaluates in when all operand value numbers are constants.
func (s *state) tryFold(f *ir.Func, in *ir.Instr) (*ir.Instr, bool) {
	ints := make([]int64, len(in.Args))
	floats := make([]float64, len(in.Args))
	isF := make([]bool, len(in.Args))
	for i, a := range in.Args {
		c, ok := s.constOf(s.valueOf(a))
		if !ok {
			return nil, false
		}
		ints[i], floats[i], isF[i] = c.i, c.f, c.isFloat
	}
	iv, fv, isFloat, ok := sccp.Fold(in.Op, ints, floats, isF)
	if !ok {
		return nil, false
	}
	if isFloat {
		return f.NewLoadF(in.Dst, fv), true
	}
	return f.NewLoadI(in.Dst, iv), true
}
