package lvn_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lvn"
)

func run(t *testing.T, f *ir.Func, args ...int64) interp.Value {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(f.Name, vals...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

// TestLVNCatchesRenamedRedundancy is the §2.2 example restated locally:
// value numbering sees through copies where lexical matching cannot.
func TestLVNCatchesRenamedRedundancy(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    copy r1 => r4
    add r4, r2 => r5
    add r3, r5 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	want := run(t, f, 3, 4)
	st := lvn.Run(f)
	got := run(t, f, 3, 4)
	if got.I != want.I || got.I != 14 {
		t.Fatalf("got %d, want 14", got.I)
	}
	if st.Replaced != 1 {
		t.Errorf("Replaced = %d, want 1\n%s", st.Replaced, f)
	}
	if countOps(f, ir.OpAdd) != 2 {
		t.Errorf("redundant add remains\n%s", f)
	}
}

// TestLVNCommutative: a+b and b+a share a value number.
func TestLVNCommutative(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    add r2, r1 => r4
    mul r3, r4 => r5
    ret r5
}
`
	f := ir.MustParseFunc(src)
	st := lvn.Run(f)
	if st.Replaced != 1 {
		t.Errorf("commutative pair not matched: %+v\n%s", st, f)
	}
	if got := run(t, f, 3, 4); got.I != 49 {
		t.Errorf("got %d, want 49", got.I)
	}
}

// TestLVNRespectsKills: a redefined operand separates the values.
func TestLVNRespectsKills(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    loadI 1 => r4
    add r1, r4 => r1
    add r1, r2 => r5
    sub r5, r3 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	st := lvn.Run(f)
	if st.Replaced != 0 {
		t.Errorf("matched across a kill: %+v\n%s", st, f)
	}
	if got := run(t, f, 10, 20); got.I != 1 {
		t.Errorf("got %d, want 1", got.I)
	}
}

// TestLVNLoadsAndStores: identical loads common until a store
// intervenes.
func TestLVNLoadsAndStores(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    ldw [r1] => r2
    ldw [r1] => r3
    add r2, r3 => r4
    stw r4 => [r1]
    ldw [r1] => r5
    add r4, r5 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	st := lvn.Run(f)
	if st.Replaced != 1 {
		t.Errorf("Replaced = %d, want 1 (second load commons, third must not)\n%s", st.Replaced, f)
	}
	prog := &ir.Program{Funcs: []*ir.Func{f}, GlobalSize: 16}
	m := interp.NewMachine(prog)
	m.WriteInt64(0, 5)
	v, err := m.Call("f", interp.IntVal(0))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 20 { // 5+5=10 stored; 10+10=20
		t.Errorf("got %d, want 20", v.I)
	}
}

// TestLVNConstantFolding: constants flow through value numbers even
// via copies.
func TestLVNConstantFolding(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 6 => r2
    copy r2 => r3
    loadI 7 => r4
    mul r3, r4 => r5
    add r5, r1 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	st := lvn.Run(f)
	if st.Folded != 1 {
		t.Errorf("Folded = %d, want 1\n%s", st.Folded, f)
	}
	if got := run(t, f, 0); got.I != 42 {
		t.Errorf("got %d, want 42", got.I)
	}
}
