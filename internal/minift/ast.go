package minift

// BaseType is a scalar element type.
type BaseType uint8

// Scalar types of the language.
const (
	TypeInvalid BaseType = iota
	TypeInt              // 64-bit integer
	TypeReal             // 64-bit float (FORTRAN DOUBLE PRECISION)
	TypeReal4            // 32-bit float (FORTRAN REAL); widened to float64 in registers
	TypeVoid             // function with no result
)

// String names the type.
func (t BaseType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeReal:
		return "real"
	case TypeReal4:
		return "real4"
	case TypeVoid:
		return "void"
	}
	return "invalid"
}

// ElemSize returns the in-memory size of an array element in bytes.
// This is where the paper's §4.2 distribution example comes from: a
// single-precision array access multiplies its index by 4, a
// double-precision one by 8.
func (t BaseType) ElemSize() int64 {
	if t == TypeReal4 {
		return 4
	}
	return 8
}

// IsFloat reports whether values of this type live in float registers.
func (t BaseType) IsFloat() bool { return t == TypeReal || t == TypeReal4 }

// Type is a scalar or array type.  Arrays have FORTRAN semantics:
// column-major layout and 1-based indexing.  Dims hold one expression
// per dimension; for parameters, a dimension may reference another
// parameter (FORTRAN adjustable arrays) and trailing dimensions may be
// the wildcard (nil entry, written "*").
type Type struct {
	Base  BaseType
	Dims  []Expr // nil for scalars; entries may be nil for '*'
	IsArr bool
}

// Scalar builds a scalar type.
func Scalar(b BaseType) Type { return Type{Base: b} }

// String renders the type.
func (t Type) String() string {
	if !t.IsArr {
		return t.Base.String()
	}
	s := "["
	for i := range t.Dims {
		if i > 0 {
			s += ","
		}
		if t.Dims[i] == nil {
			s += "*"
		} else {
			s += "…"
		}
	}
	return s + "]" + t.Base.String()
}

// Expr is an expression node.
type Expr interface{ exprPos() Pos }

// BinExpr is a binary operation.
type BinExpr struct {
	Pos  Pos
	Op   Kind // TokPlus .. TokOr
	L, R Expr
}

// UnExpr is unary minus or logical not.
type UnExpr struct {
	Pos Pos
	Op  Kind // TokMinus or TokNot
	X   Expr
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// RealLit is a real literal.
type RealLit struct {
	Pos Pos
	V   float64
}

// VarRef references a scalar variable or parameter (or a whole array
// when passed as an argument).
type VarRef struct {
	Pos  Pos
	Name string
}

// IndexExpr reads an array element: a[i] or a[i,j].
type IndexExpr struct {
	Pos  Pos
	Name string
	Idx  []Expr
}

// CallExpr calls a function (or builtin: sqrt, abs, min, max, real,
// int) and yields its value.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (e *BinExpr) exprPos() Pos   { return e.Pos }
func (e *UnExpr) exprPos() Pos    { return e.Pos }
func (e *IntLit) exprPos() Pos    { return e.Pos }
func (e *RealLit) exprPos() Pos   { return e.Pos }
func (e *VarRef) exprPos() Pos    { return e.Pos }
func (e *IndexExpr) exprPos() Pos { return e.Pos }
func (e *CallExpr) exprPos() Pos  { return e.Pos }

// Stmt is a statement node.
type Stmt interface{ stmtPos() Pos }

// VarDecl declares a local variable, optionally initialized.
type VarDecl struct {
	Pos  Pos
	Name string
	Ty   Type
	Init Expr // nil for none (arrays may not have initializers)
}

// AssignStmt stores into a scalar variable or array element.
type AssignStmt struct {
	Pos Pos
	// Target: either Name (scalar) or Name+Idx (element).
	Name string
	Idx  []Expr // nil for scalar assignment
	Val  Expr
}

// IfStmt is a conditional with an optional else arm.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt // nil for none
}

// ForStmt is a FORTRAN-style counted DO loop: for i = lo to hi
// [step c] { ... }.  The step must be a positive integer constant
// (default 1); the body runs while i <= hi, and i retains its final
// value afterwards.
type ForStmt struct {
	Pos  Pos
	Var  string
	Lo   Expr
	Hi   Expr
	Step int64
	Body []Stmt
}

// WhileStmt is a top-tested loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// ReturnStmt returns from the function, with a value when the function
// has a result type.
type ReturnStmt struct {
	Pos Pos
	Val Expr // nil for void
}

// ExprStmt evaluates a call for its side effects.
type ExprStmt struct {
	Pos  Pos
	Call *CallExpr
}

// PrintStmt emits a value through the interpreter's output channel.
type PrintStmt struct {
	Pos Pos
	Val Expr
}

func (s *VarDecl) stmtPos() Pos    { return s.Pos }
func (s *AssignStmt) stmtPos() Pos { return s.Pos }
func (s *IfStmt) stmtPos() Pos     { return s.Pos }
func (s *ForStmt) stmtPos() Pos    { return s.Pos }
func (s *WhileStmt) stmtPos() Pos  { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos { return s.Pos }
func (s *ExprStmt) stmtPos() Pos   { return s.Pos }
func (s *PrintStmt) stmtPos() Pos  { return s.Pos }

// Param is a formal parameter.
type Param struct {
	Pos  Pos
	Name string
	Ty   Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Result BaseType // TypeVoid for none
	Body   []Stmt
}

// File is a parsed source file.
type File struct {
	Funcs []*FuncDecl
}
