package minift

import (
	"fmt"

	"repro/internal/ir"
)

// Compile parses and compiles Mini-Fortran source into an ILOC
// program.  The generated code is deliberately naive: fresh
// temporaries for every expression node, copies for every assignment,
// left-associated sums and explicit 1-based column-major address
// arithmetic — the exact input shape the paper's optimizer expects
// from an unsophisticated front end.
func Compile(src string) (*ir.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileFile(file)
}

// MustCompile compiles source and panics on error (tests, examples).
func MustCompile(src string) *ir.Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// signature describes a callable function.
type signature struct {
	params []Param
	result BaseType
}

// CompileFile compiles a parsed file.
func CompileFile(file *File) (*ir.Program, error) {
	cc := &compiler{
		prog: &ir.Program{},
		sigs: map[string]signature{},
	}
	for _, fn := range file.Funcs {
		if _, dup := cc.sigs[fn.Name]; dup {
			return nil, errf(fn.Pos, "function %s redefined", fn.Name)
		}
		cc.sigs[fn.Name] = signature{params: fn.Params, result: fn.Result}
	}
	for _, fn := range file.Funcs {
		if err := cc.compileFunc(fn); err != nil {
			return nil, err
		}
	}
	cc.prog.GlobalSize = cc.nextAddr
	if err := ir.VerifyProgram(cc.prog); err != nil {
		return nil, fmt.Errorf("minift: internal error: %w", err)
	}
	return cc.prog, nil
}

type compiler struct {
	prog     *ir.Program
	sigs     map[string]signature
	nextAddr int64 // static data segment layout cursor
}

// symbol binds a name in a function scope.
type symbol struct {
	// Scalars: reg holds the value.  Arrays: reg holds the base
	// address for parameters, or NoReg with staticBase set for locals.
	reg        ir.Reg
	ty         Type
	staticBase int64
	isArray    bool
	// dimRegs[i] is a register holding dimension i's extent (needed
	// only for leading dimensions of multi-dimensional arrays).
	dimRegs []ir.Reg
}

// fnCtx carries per-function compilation state.
type fnCtx struct {
	fn     *ir.Func
	decl   *FuncDecl
	syms   map[string]*symbol
	cur    *ir.Block
	result BaseType
}

func (cc *compiler) compileFunc(decl *FuncDecl) error {
	f := ir.NewFunc(decl.Name, len(decl.Params))
	ctx := &fnCtx{fn: f, decl: decl, syms: map[string]*symbol{}, cur: f.Entry(), result: decl.Result}

	// Bind parameters.
	for i, p := range decl.Params {
		if _, dup := ctx.syms[p.Name]; dup {
			return errf(p.Pos, "parameter %s redeclared", p.Name)
		}
		sym := &symbol{reg: f.Params[i], ty: p.Ty, isArray: p.Ty.IsArr}
		ctx.syms[p.Name] = sym
	}
	// Resolve parameter array dimensions (constants or parameter names).
	for _, p := range decl.Params {
		sym := ctx.syms[p.Name]
		if !p.Ty.IsArr {
			continue
		}
		for di, dim := range p.Ty.Dims {
			var dreg ir.Reg
			switch d := dim.(type) {
			case nil:
				dreg = ir.NoReg // '*': extent unknown, only legal trailing
			case *IntLit:
				dreg = ctx.emitLoadI(d.V)
			case *VarRef:
				ds, ok := ctx.syms[d.Name]
				if !ok || ds.isArray || ds.ty.Base != TypeInt {
					return errf(p.Pos, "array dimension %q must be an int parameter", d.Name)
				}
				dreg = ds.reg
			default:
				return errf(p.Pos, "unsupported array dimension expression")
			}
			if dreg == ir.NoReg && di != len(p.Ty.Dims)-1 {
				return errf(p.Pos, "'*' is only allowed as the last dimension")
			}
			sym.dimRegs = append(sym.dimRegs, dreg)
		}
	}

	if err := cc.stmts(ctx, decl.Body); err != nil {
		return err
	}
	// Implicit return if control can fall off the end.
	if ctx.cur.Terminator() == nil {
		switch decl.Result {
		case TypeVoid:
			ctx.cur.Append(ctx.fn.NewInstr(ir.OpRet, ir.NoReg))
		case TypeInt:
			z := ctx.emitLoadI(0)
			ctx.cur.Append(ctx.fn.NewInstr(ir.OpRet, ir.NoReg, z))
		default:
			z := ctx.emit(ctx.fn.NewLoadF(ctx.fn.NewReg(), 0))
			ctx.cur.Append(ctx.fn.NewInstr(ir.OpRet, ir.NoReg, z))
		}
	}
	cc.prog.Funcs = append(cc.prog.Funcs, f)
	return nil
}

// emit appends an instruction to the current block and returns its
// destination register.
func (ctx *fnCtx) emit(in *ir.Instr) ir.Reg {
	ctx.cur.Append(in)
	return in.Dst
}

func (ctx *fnCtx) emitLoadI(v int64) ir.Reg {
	return ctx.emit(ctx.fn.NewLoadI(ctx.fn.NewReg(), v))
}

func (ctx *fnCtx) emitOp(op ir.Op, args ...ir.Reg) ir.Reg {
	return ctx.emit(ctx.fn.NewInstr(op, ctx.fn.NewReg(), args...))
}

// startBlock begins a new block, jumping to it from the current one if
// the current block is unterminated.
func (ctx *fnCtx) startBlock() *ir.Block {
	b := ctx.fn.NewBlock()
	if ctx.cur != nil && ctx.cur.Terminator() == nil {
		ctx.jumpTo(b)
	}
	ctx.cur = b
	return b
}

func (ctx *fnCtx) jumpTo(target *ir.Block) {
	ctx.cur.Append(ctx.fn.NewInstr(ir.OpJump, ir.NoReg))
	ir.AddEdge(ctx.cur, target)
}

func (ctx *fnCtx) branchTo(cond ir.Reg, then, els *ir.Block) {
	ctx.cur.Append(ctx.fn.NewInstr(ir.OpCBr, ir.NoReg, cond))
	ir.AddEdge(ctx.cur, then)
	ir.AddEdge(ctx.cur, els)
}

func (cc *compiler) stmts(ctx *fnCtx, list []Stmt) error {
	for _, s := range list {
		if err := cc.stmt(ctx, s); err != nil {
			return err
		}
		if ctx.cur.Terminator() != nil {
			// Code after return in this block is unreachable; start a
			// fresh (unreachable) block so emission stays legal.
			if s != list[len(list)-1] {
				ctx.cur = ctx.fn.NewBlock()
			}
		}
	}
	return nil
}

func (cc *compiler) stmt(ctx *fnCtx, s Stmt) error {
	switch st := s.(type) {
	case *VarDecl:
		if _, dup := ctx.syms[st.Name]; dup {
			return errf(st.Pos, "%s redeclared", st.Name)
		}
		if st.Ty.IsArr {
			size := st.Ty.Base.ElemSize()
			total := size
			var dimRegs []ir.Reg
			for _, dim := range st.Ty.Dims {
				lit, ok := dim.(*IntLit)
				if !ok || lit.V <= 0 {
					return errf(st.Pos, "local array dimensions must be positive integer constants")
				}
				total *= lit.V
				dimRegs = append(dimRegs, ctx.emitLoadI(lit.V))
			}
			// Align to 8 bytes.
			cc.nextAddr = (cc.nextAddr + 7) &^ 7
			base := cc.nextAddr
			cc.nextAddr += total
			ctx.syms[st.Name] = &symbol{
				ty: st.Ty, isArray: true, staticBase: base,
				reg: ctx.emitLoadI(base), dimRegs: dimRegs,
			}
			return nil
		}
		reg := ctx.fn.NewReg()
		ctx.syms[st.Name] = &symbol{reg: reg, ty: st.Ty}
		if st.Init != nil {
			v, ty, err := cc.expr(ctx, st.Init)
			if err != nil {
				return err
			}
			v, err = cc.convert(ctx, v, ty, st.Ty.Base, st.Pos)
			if err != nil {
				return err
			}
			ctx.emit(ctx.fn.NewCopy(reg, v))
		} else {
			// Zero-initialize so uses before assignment are defined.
			if st.Ty.Base.IsFloat() {
				z := ctx.emit(ctx.fn.NewLoadF(ctx.fn.NewReg(), 0))
				ctx.emit(ctx.fn.NewCopy(reg, z))
			} else {
				z := ctx.emitLoadI(0)
				ctx.emit(ctx.fn.NewCopy(reg, z))
			}
		}
		return nil

	case *AssignStmt:
		sym, ok := ctx.syms[st.Name]
		if !ok {
			return errf(st.Pos, "undefined variable %s", st.Name)
		}
		if st.Idx == nil {
			if sym.isArray {
				return errf(st.Pos, "cannot assign to array %s as a whole", st.Name)
			}
			v, ty, err := cc.expr(ctx, st.Val)
			if err != nil {
				return err
			}
			v, err = cc.convert(ctx, v, ty, sym.ty.Base, st.Pos)
			if err != nil {
				return err
			}
			ctx.emit(ctx.fn.NewCopy(sym.reg, v))
			return nil
		}
		if !sym.isArray {
			return errf(st.Pos, "%s is not an array", st.Name)
		}
		addr, err := cc.arrayAddr(ctx, sym, st.Idx, st.Pos)
		if err != nil {
			return err
		}
		v, ty, err := cc.expr(ctx, st.Val)
		if err != nil {
			return err
		}
		want := sym.ty.Base
		v, err = cc.convert(ctx, v, ty, want, st.Pos)
		if err != nil {
			return err
		}
		op := ir.OpStoreW
		switch want {
		case TypeReal:
			op = ir.OpStoreD
		case TypeReal4:
			op = ir.OpStoreS
		}
		ctx.cur.Append(ctx.fn.NewInstr(op, ir.NoReg, v, addr))
		return nil

	case *IfStmt:
		cond, ty, err := cc.expr(ctx, st.Cond)
		if err != nil {
			return err
		}
		if ty != TypeInt {
			return errf(st.Pos, "if condition must be int (a comparison), got %s", ty)
		}
		thenB := ctx.fn.NewBlock()
		var elseB *ir.Block
		joinB := ctx.fn.NewBlock()
		if st.Else != nil {
			elseB = ctx.fn.NewBlock()
			ctx.branchTo(cond, thenB, elseB)
		} else {
			ctx.branchTo(cond, thenB, joinB)
		}
		ctx.cur = thenB
		if err := cc.stmts(ctx, st.Then); err != nil {
			return err
		}
		if ctx.cur.Terminator() == nil {
			ctx.jumpTo(joinB)
		}
		if elseB != nil {
			ctx.cur = elseB
			if err := cc.stmts(ctx, st.Else); err != nil {
				return err
			}
			if ctx.cur.Terminator() == nil {
				ctx.jumpTo(joinB)
			}
		}
		ctx.cur = joinB
		return nil

	case *ForStmt:
		sym, ok := ctx.syms[st.Var]
		if !ok {
			// Implicitly declare the loop variable (FORTRAN habit).
			sym = &symbol{reg: ctx.fn.NewReg(), ty: Scalar(TypeInt)}
			ctx.syms[st.Var] = sym
		}
		if sym.isArray || sym.ty.Base != TypeInt {
			return errf(st.Pos, "loop variable %s must be an int scalar", st.Var)
		}
		lo, loTy, err := cc.expr(ctx, st.Lo)
		if err != nil {
			return err
		}
		if loTy != TypeInt {
			return errf(st.Pos, "loop bounds must be int")
		}
		hi, hiTy, err := cc.expr(ctx, st.Hi)
		if err != nil {
			return err
		}
		if hiTy != TypeInt {
			return errf(st.Pos, "loop bounds must be int")
		}
		// FORTRAN DO: bounds evaluated once; bottom-tested loop with a
		// guarding top test (the Figure 3 shape).
		hiVar := ctx.fn.NewReg()
		ctx.emit(ctx.fn.NewCopy(hiVar, hi))
		ctx.emit(ctx.fn.NewCopy(sym.reg, lo))
		guard := ctx.emitOp(ir.OpCmpGT, sym.reg, hiVar)
		bodyB := ctx.fn.NewBlock()
		exitB := ctx.fn.NewBlock()
		ctx.branchTo(guard, exitB, bodyB)
		ctx.cur = bodyB
		if err := cc.stmts(ctx, st.Body); err != nil {
			return err
		}
		if ctx.cur.Terminator() == nil {
			stepR := ctx.emitLoadI(st.Step)
			next := ctx.emitOp(ir.OpAdd, sym.reg, stepR)
			ctx.emit(ctx.fn.NewCopy(sym.reg, next))
			again := ctx.emitOp(ir.OpCmpLE, sym.reg, hiVar)
			ctx.branchTo(again, bodyB, exitB)
		}
		ctx.cur = exitB
		return nil

	case *WhileStmt:
		headB := ctx.startBlock()
		cond, ty, err := cc.expr(ctx, st.Cond)
		if err != nil {
			return err
		}
		if ty != TypeInt {
			return errf(st.Pos, "while condition must be int (a comparison), got %s", ty)
		}
		bodyB := ctx.fn.NewBlock()
		exitB := ctx.fn.NewBlock()
		ctx.branchTo(cond, bodyB, exitB)
		ctx.cur = bodyB
		if err := cc.stmts(ctx, st.Body); err != nil {
			return err
		}
		if ctx.cur.Terminator() == nil {
			ctx.jumpTo(headB)
		}
		ctx.cur = exitB
		return nil

	case *ReturnStmt:
		if ctx.result == TypeVoid {
			if st.Val != nil {
				return errf(st.Pos, "%s returns no value", ctx.decl.Name)
			}
			ctx.cur.Append(ctx.fn.NewInstr(ir.OpRet, ir.NoReg))
			return nil
		}
		if st.Val == nil {
			return errf(st.Pos, "%s must return a %s", ctx.decl.Name, ctx.result)
		}
		v, ty, err := cc.expr(ctx, st.Val)
		if err != nil {
			return err
		}
		v, err = cc.convert(ctx, v, ty, ctx.result, st.Pos)
		if err != nil {
			return err
		}
		ctx.cur.Append(ctx.fn.NewInstr(ir.OpRet, ir.NoReg, v))
		return nil

	case *ExprStmt:
		_, _, err := cc.call(ctx, st.Call, true)
		return err

	case *PrintStmt:
		v, _, err := cc.expr(ctx, st.Val)
		if err != nil {
			return err
		}
		ctx.cur.Append(ctx.fn.NewCall("print", ir.NoReg, v))
		return nil
	}
	return errf(s.stmtPos(), "unhandled statement")
}

// convert coerces a value between scalar types (int→real implicit,
// real→int explicit only through int()).
func (cc *compiler) convert(ctx *fnCtx, v ir.Reg, from, to BaseType, pos Pos) (ir.Reg, error) {
	ff := from.IsFloat()
	tf := to.IsFloat()
	switch {
	case ff == tf:
		return v, nil
	case !ff && tf:
		return ctx.emitOp(ir.OpI2F, v), nil
	default:
		return ir.NoReg, errf(pos, "cannot implicitly convert %s to %s (use int())", from, to)
	}
}

// arrayAddr emits 1-based column-major address arithmetic:
//
//	addr = base + ((i1−1) + (i2−1)·d1 + (i3−1)·d1·d2 + …) · elemsize
//
// in a naive left-associated chain with fresh temporaries.  This is
// the address shape whose reassociation the paper's Figure 1 and §2.1
// discussion motivate ("it arises routinely in multi-dimensional array
// addressing computations").
func (cc *compiler) arrayAddr(ctx *fnCtx, sym *symbol, idx []Expr, pos Pos) (ir.Reg, error) {
	if len(idx) != len(sym.ty.Dims) {
		return ir.NoReg, errf(pos, "array has %d dimensions, got %d indices", len(sym.ty.Dims), len(idx))
	}
	one := ctx.emitLoadI(1)
	var linear ir.Reg
	var stride ir.Reg // product of leading extents; nil until needed
	for di, ie := range idx {
		iv, ity, err := cc.expr(ctx, ie)
		if err != nil {
			return ir.NoReg, err
		}
		if ity != TypeInt {
			return ir.NoReg, errf(ie.exprPos(), "array index must be int")
		}
		term := ctx.emitOp(ir.OpSub, iv, one)
		if di > 0 {
			term = ctx.emitOp(ir.OpMul, term, stride)
		}
		if linear == ir.NoReg {
			linear = term
		} else {
			linear = ctx.emitOp(ir.OpAdd, linear, term)
		}
		// Maintain the cumulative stride for the next dimension.
		if di < len(idx)-1 {
			d := sym.dimRegs[di]
			if d == ir.NoReg {
				return ir.NoReg, errf(pos, "dimension %d of %s has unknown extent", di+1, "array")
			}
			if stride == ir.NoReg {
				stride = d
			} else {
				stride = ctx.emitOp(ir.OpMul, stride, d)
			}
		}
	}
	esize := ctx.emitLoadI(sym.ty.Base.ElemSize())
	scaled := ctx.emitOp(ir.OpMul, linear, esize)
	return ctx.emitOp(ir.OpAdd, sym.reg, scaled), nil
}

// expr compiles an expression, returning the result register and type.
func (cc *compiler) expr(ctx *fnCtx, e Expr) (ir.Reg, BaseType, error) {
	switch ex := e.(type) {
	case *IntLit:
		return ctx.emitLoadI(ex.V), TypeInt, nil
	case *RealLit:
		return ctx.emit(ctx.fn.NewLoadF(ctx.fn.NewReg(), ex.V)), TypeReal, nil

	case *VarRef:
		sym, ok := ctx.syms[ex.Name]
		if !ok {
			return ir.NoReg, TypeInvalid, errf(ex.Pos, "undefined variable %s", ex.Name)
		}
		if sym.isArray {
			return ir.NoReg, TypeInvalid, errf(ex.Pos, "array %s used as a scalar", ex.Name)
		}
		ty := sym.ty.Base
		if ty == TypeReal4 {
			ty = TypeReal // scalars of real4 behave as real in registers
		}
		return sym.reg, ty, nil

	case *IndexExpr:
		sym, ok := ctx.syms[ex.Name]
		if !ok {
			return ir.NoReg, TypeInvalid, errf(ex.Pos, "undefined variable %s", ex.Name)
		}
		if !sym.isArray {
			return ir.NoReg, TypeInvalid, errf(ex.Pos, "%s is not an array", ex.Name)
		}
		addr, err := cc.arrayAddr(ctx, sym, ex.Idx, ex.Pos)
		if err != nil {
			return ir.NoReg, TypeInvalid, err
		}
		switch sym.ty.Base {
		case TypeReal:
			return ctx.emitOp(ir.OpLoadD, addr), TypeReal, nil
		case TypeReal4:
			return ctx.emitOp(ir.OpLoadS, addr), TypeReal, nil
		default:
			return ctx.emitOp(ir.OpLoadW, addr), TypeInt, nil
		}

	case *UnExpr:
		v, ty, err := cc.expr(ctx, ex.X)
		if err != nil {
			return ir.NoReg, TypeInvalid, err
		}
		if ex.Op == TokNot {
			if ty != TypeInt {
				return ir.NoReg, TypeInvalid, errf(ex.Pos, "'!' needs an int operand")
			}
			z := ctx.emitLoadI(0)
			return ctx.emitOp(ir.OpCmpEQ, v, z), TypeInt, nil
		}
		if ty.IsFloat() {
			return ctx.emitOp(ir.OpFNeg, v), ty, nil
		}
		return ctx.emitOp(ir.OpNeg, v), TypeInt, nil

	case *BinExpr:
		return cc.binExpr(ctx, ex)

	case *CallExpr:
		r, ty, err := cc.call(ctx, ex, false)
		return r, ty, err
	}
	return ir.NoReg, TypeInvalid, errf(e.exprPos(), "unhandled expression")
}

var intBinOps = map[Kind]ir.Op{
	TokPlus: ir.OpAdd, TokMinus: ir.OpSub, TokStar: ir.OpMul,
	TokSlash: ir.OpDiv, TokPercent: ir.OpMod,
	TokEq: ir.OpCmpEQ, TokNe: ir.OpCmpNE, TokLt: ir.OpCmpLT,
	TokLe: ir.OpCmpLE, TokGt: ir.OpCmpGT, TokGe: ir.OpCmpGE,
	TokAnd: ir.OpAnd, TokOr: ir.OpOr,
}

var floatBinOps = map[Kind]ir.Op{
	TokPlus: ir.OpFAdd, TokMinus: ir.OpFSub, TokStar: ir.OpFMul,
	TokSlash: ir.OpFDiv,
	TokEq:    ir.OpFCmpEQ, TokNe: ir.OpFCmpNE, TokLt: ir.OpFCmpLT,
	TokLe: ir.OpFCmpLE, TokGt: ir.OpFCmpGT, TokGe: ir.OpFCmpGE,
}

func (cc *compiler) binExpr(ctx *fnCtx, ex *BinExpr) (ir.Reg, BaseType, error) {
	l, lt, err := cc.expr(ctx, ex.L)
	if err != nil {
		return ir.NoReg, TypeInvalid, err
	}
	r, rt, err := cc.expr(ctx, ex.R)
	if err != nil {
		return ir.NoReg, TypeInvalid, err
	}
	// Implicit int→real promotion, FORTRAN style.
	if lt.IsFloat() != rt.IsFloat() {
		if lt.IsFloat() {
			r, rt = ctx.emitOp(ir.OpI2F, r), TypeReal
		} else {
			l, lt = ctx.emitOp(ir.OpI2F, l), TypeReal
		}
	}
	isFloat := lt.IsFloat()
	if isFloat {
		op, ok := floatBinOps[ex.Op]
		if !ok {
			return ir.NoReg, TypeInvalid, errf(ex.Pos, "operator %s not defined on real", ex.Op)
		}
		resTy := TypeReal
		if op >= ir.OpFCmpEQ && op <= ir.OpFCmpGE {
			resTy = TypeInt
		}
		return ctx.emitOp(op, l, r), resTy, nil
	}
	op, ok := intBinOps[ex.Op]
	if !ok {
		return ir.NoReg, TypeInvalid, errf(ex.Pos, "operator %s not defined on int", ex.Op)
	}
	_ = rt
	return ctx.emitOp(op, l, r), TypeInt, nil
}

// builtins maps names to unary/binary pure operations, dispatched on
// the first argument's type where both flavors exist.
func (cc *compiler) call(ctx *fnCtx, ex *CallExpr, stmtCtx bool) (ir.Reg, BaseType, error) {
	// Builtins.
	switch ex.Name {
	case "sqrt", "abs", "int", "real":
		if len(ex.Args) != 1 {
			return ir.NoReg, TypeInvalid, errf(ex.Pos, "%s takes 1 argument", ex.Name)
		}
		v, ty, err := cc.expr(ctx, ex.Args[0])
		if err != nil {
			return ir.NoReg, TypeInvalid, err
		}
		switch ex.Name {
		case "sqrt":
			if !ty.IsFloat() {
				v = ctx.emitOp(ir.OpI2F, v)
			}
			return ctx.emitOp(ir.OpSqrt, v), TypeReal, nil
		case "abs":
			if ty.IsFloat() {
				return ctx.emitOp(ir.OpFAbs, v), TypeReal, nil
			}
			return ctx.emitOp(ir.OpAbs, v), TypeInt, nil
		case "int":
			if !ty.IsFloat() {
				return v, TypeInt, nil
			}
			return ctx.emitOp(ir.OpF2I, v), TypeInt, nil
		default: // real
			if ty.IsFloat() {
				return v, TypeReal, nil
			}
			return ctx.emitOp(ir.OpI2F, v), TypeReal, nil
		}
	case "min", "max":
		if len(ex.Args) != 2 {
			return ir.NoReg, TypeInvalid, errf(ex.Pos, "%s takes 2 arguments", ex.Name)
		}
		l, lt, err := cc.expr(ctx, ex.Args[0])
		if err != nil {
			return ir.NoReg, TypeInvalid, err
		}
		r, rt, err := cc.expr(ctx, ex.Args[1])
		if err != nil {
			return ir.NoReg, TypeInvalid, err
		}
		if lt.IsFloat() != rt.IsFloat() {
			if lt.IsFloat() {
				r = ctx.emitOp(ir.OpI2F, r)
			} else {
				l = ctx.emitOp(ir.OpI2F, l)
			}
			lt = TypeReal
		}
		if lt.IsFloat() {
			op := ir.OpFMin
			if ex.Name == "max" {
				op = ir.OpFMax
			}
			return ctx.emitOp(op, l, r), TypeReal, nil
		}
		op := ir.OpMin
		if ex.Name == "max" {
			op = ir.OpMax
		}
		return ctx.emitOp(op, l, r), TypeInt, nil
	}

	sig, ok := cc.sigs[ex.Name]
	if !ok {
		return ir.NoReg, TypeInvalid, errf(ex.Pos, "undefined function %s", ex.Name)
	}
	if len(ex.Args) != len(sig.params) {
		return ir.NoReg, TypeInvalid, errf(ex.Pos, "%s takes %d arguments, got %d", ex.Name, len(sig.params), len(ex.Args))
	}
	args := make([]ir.Reg, len(ex.Args))
	for i, a := range ex.Args {
		p := sig.params[i]
		if p.Ty.IsArr {
			// Array argument: pass the base address.
			vr, isVar := a.(*VarRef)
			if !isVar {
				return ir.NoReg, TypeInvalid, errf(a.exprPos(), "argument %d of %s must be an array name", i+1, ex.Name)
			}
			sym, found := ctx.syms[vr.Name]
			if !found || !sym.isArray {
				return ir.NoReg, TypeInvalid, errf(a.exprPos(), "%s is not an array", vr.Name)
			}
			if sym.ty.Base != p.Ty.Base {
				return ir.NoReg, TypeInvalid, errf(a.exprPos(), "array element type mismatch: %s vs %s", sym.ty.Base, p.Ty.Base)
			}
			args[i] = sym.reg
			continue
		}
		v, ty, err := cc.expr(ctx, a)
		if err != nil {
			return ir.NoReg, TypeInvalid, err
		}
		v, err = cc.convert(ctx, v, ty, p.Ty.Base, a.exprPos())
		if err != nil {
			return ir.NoReg, TypeInvalid, err
		}
		args[i] = v
	}
	in := ctx.fn.NewCall(ex.Name, ir.NoReg, args...)
	if sig.result != TypeVoid {
		in.Dst = ctx.fn.NewReg()
	} else if !stmtCtx {
		return ir.NoReg, TypeInvalid, errf(ex.Pos, "%s returns no value", ex.Name)
	}
	ctx.cur.Append(in)
	res := sig.result
	if res == TypeReal4 {
		res = TypeReal
	}
	return in.Dst, res, nil
}
