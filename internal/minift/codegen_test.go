package minift_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/minift"
)

func runProg(t *testing.T, src, fn string, args ...interp.Value) (*interp.Machine, interp.Value) {
	t.Helper()
	prog, err := minift.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(prog)
	v, err := m.Call(fn, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, prog)
	}
	return m, v
}

// TestColumnMajorLayout verifies FORTRAN storage order: a[i,j] and
// a[i+1,j] are adjacent (stride = element size), while a[i,j+1] is a
// whole column away.
func TestColumnMajorLayout(t *testing.T) {
	const src = `
func f(): int {
    var a: [4,4]int
    a[1,1] = 11
    a[2,1] = 21
    a[1,2] = 12
    return 0
}
`
	m, _ := runProg(t, src, "f")
	// Column-major, 1-based, 8-byte ints, base 0:
	// a[1,1] at 0; a[2,1] at 8; a[1,2] at 4*8=32.
	if got := m.ReadInt64(0); got != 11 {
		t.Errorf("a[1,1] at 0 = %d", got)
	}
	if got := m.ReadInt64(8); got != 21 {
		t.Errorf("a[2,1] at 8 = %d", got)
	}
	if got := m.ReadInt64(32); got != 12 {
		t.Errorf("a[1,2] at 32 = %d", got)
	}
}

// TestReal4Narrowing: storing into a real4 array rounds to float32.
func TestReal4Narrowing(t *testing.T) {
	const src = `
func f(): real {
    var a: [4]real4
    a[1] = 0.1
    return a[1]
}
`
	_, v := runProg(t, src, "f")
	if v.F != float64(float32(0.1)) {
		t.Errorf("got %.17g, want float32-rounded %.17g", v.F, float64(float32(0.1)))
	}
	if v.F == 0.1 {
		t.Error("no narrowing happened")
	}
}

// TestIntToRealPromotion: mixed arithmetic promotes, FORTRAN style.
func TestIntToRealPromotion(t *testing.T) {
	const src = `
func f(n: int): real {
    return n * 2.5 + 1
}
`
	_, v := runProg(t, src, "f", interp.IntVal(4))
	if v.F != 11.0 {
		t.Errorf("got %g, want 11", v.F)
	}
}

// TestLoopBoundsEvaluatedOnce: FORTRAN DO semantics — changing the
// bound variable inside the loop does not change the trip count.
func TestLoopBoundsEvaluatedOnce(t *testing.T) {
	const src = `
func f(): int {
    var n: int = 5
    var c: int = 0
    for i = 1 to n {
        n = 100
        c = c + 1
    }
    return c
}
`
	_, v := runProg(t, src, "f")
	if v.I != 5 {
		t.Errorf("trip count %d, want 5", v.I)
	}
}

// TestLoopVariableFinalValue: i holds last-tested value after the loop.
func TestLoopVariableFinalValue(t *testing.T) {
	const src = `
func f(): int {
    var i: int = 0
    for i = 1 to 5 {
    }
    return i
}
`
	_, v := runProg(t, src, "f")
	if v.I != 6 {
		t.Errorf("final i = %d, want 6", v.I)
	}
}

// TestZeroTripLoop: lo > hi skips the body entirely.
func TestZeroTripLoop(t *testing.T) {
	const src = `
func f(): int {
    var c: int = 0
    for i = 5 to 1 {
        c = c + 1
    }
    return c
}
`
	_, v := runProg(t, src, "f")
	if v.I != 0 {
		t.Errorf("zero-trip loop ran %d times", v.I)
	}
}

// TestStepLoop: step 3 from 1 to 10 visits 1,4,7,10.
func TestStepLoop(t *testing.T) {
	const src = `
func f(): int {
    var s: int = 0
    for i = 1 to 10 step 3 {
        s = s * 100 + i
    }
    return s
}
`
	_, v := runProg(t, src, "f")
	if v.I != 1040710 {
		t.Errorf("got %d, want 1040710", v.I)
	}
}

// TestArrayParameterAliasing: arrays pass by reference; the callee's
// writes are visible to the caller.
func TestArrayParameterAliasing(t *testing.T) {
	const src = `
func fill(n: int, a: [*]int) {
    for i = 1 to n {
        a[i] = i * 10
    }
}

func f(): int {
    var x: [8]int
    fill(4, x)
    return x[1] + x[4]
}
`
	_, v := runProg(t, src, "f")
	if v.I != 50 {
		t.Errorf("got %d, want 50", v.I)
	}
}

// TestAdjustableLeadingDimension: a [ld,*] parameter uses the passed
// leading dimension for addressing, not the declared one.
func TestAdjustableLeadingDimension(t *testing.T) {
	const src = `
func diag(n: int, a: [n,*]int): int {
    var s: int = 0
    for i = 1 to n {
        s = s + a[i,i]
    }
    return s
}

func f(): int {
    var a: [3,3]int
    for j = 1 to 3 {
        for i = 1 to 3 {
            a[i,j] = i * 10 + j
        }
    }
    return diag(3, a)
}
`
	_, v := runProg(t, src, "f")
	if v.I != 11+22+33 {
		t.Errorf("got %d, want 66", v.I)
	}
}

// TestShortCircuitFreeLogic: && and || are bitwise over 0/1 (both
// sides evaluate); the checker rejects float operands.
func TestLogicOps(t *testing.T) {
	const src = `
func f(a: int, b: int): int {
    var r: int = 0
    if a > 0 && b > 0 {
        r = r + 1
    }
    if a > 0 || b > 0 {
        r = r + 10
    }
    if !(a > 0) {
        r = r + 100
    }
    return r
}
`
	cases := []struct{ a, b, want int64 }{
		{1, 1, 11}, {1, 0, 10}, {0, 1, 110}, {0, 0, 100},
	}
	for _, c := range cases {
		_, v := runProg(t, src, "f", interp.IntVal(c.a), interp.IntVal(c.b))
		if v.I != c.want {
			t.Errorf("f(%d,%d) = %d, want %d", c.a, c.b, v.I, c.want)
		}
	}
}

// TestBuiltins covers sqrt/abs/min/max/int/real.
func TestBuiltins(t *testing.T) {
	const src = `
func f(x: real, n: int): real {
    var a: real = sqrt(x)
    var b: real = abs(0.0 - a)
    var c: int = abs(0 - n)
    var d: real = min(a, b) + max(a, b)
    var e: int = min(c, 3) + max(c, 3)
    return d + real(e) + real(int(2.9))
}
`
	_, v := runProg(t, src, "f", interp.FloatVal(16.0), interp.IntVal(5))
	// a=4 b=4 c=5 d=8 e=3+5=8 int(2.9)=2 → 8+8+2 = 18
	if v.F != 18.0 {
		t.Errorf("got %g, want 18", v.F)
	}
}

// TestNestedCalls: call results feed other calls.
func TestNestedCalls(t *testing.T) {
	const src = `
func inc(x: int): int {
    return x + 1
}

func f(n: int): int {
    return inc(inc(inc(n)))
}
`
	_, v := runProg(t, src, "f", interp.IntVal(4))
	if v.I != 7 {
		t.Errorf("got %d, want 7", v.I)
	}
}

// TestImplicitReturnValue: falling off the end of a value function
// returns zero.
func TestImplicitReturnValue(t *testing.T) {
	const src = `
func f(n: int): int {
    if n > 0 {
        return n
    }
}
`
	_, v := runProg(t, src, "f", interp.IntVal(-3))
	if v.I != 0 {
		t.Errorf("got %d, want 0", v.I)
	}
	_, v = runProg(t, src, "f", interp.IntVal(3))
	if v.I != 3 {
		t.Errorf("got %d, want 3", v.I)
	}
}

// TestTwoArraysDistinctStorage: separate locals get separate segments.
func TestTwoArraysDistinctStorage(t *testing.T) {
	const src = `
func f(): int {
    var a: [4]int
    var b: [4]int
    a[1] = 1
    b[1] = 2
    return a[1] * 10 + b[1]
}
`
	_, v := runProg(t, src, "f")
	if v.I != 12 {
		t.Errorf("got %d, want 12 (arrays alias?)", v.I)
	}
}
