package minift

import (
	"strconv"
	"strings"
)

// lexer turns source text into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) nextByte() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Next returns the next token.
func (lx *lexer) Next() (Token, error) {
	// Skip whitespace and comments ("#" or "//" to end of line).
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.nextByte()
		case c == '#':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.nextByte()
			}
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.nextByte()
			}
		default:
			goto scan
		}
	}
scan:
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.nextByte()
	switch {
	case isAlpha(c):
		start := lx.off - 1
		for lx.off < len(lx.src) && (isAlpha(lx.peekByte()) || isDigit(lx.peekByte())) {
			lx.nextByte()
		}
		word := lx.src[start:lx.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Pos: pos, Text: word}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: word}, nil

	case isDigit(c) || (c == '.' && isDigit(lx.peekByte())):
		start := lx.off - 1
		isReal := c == '.'
		for lx.off < len(lx.src) {
			p := lx.peekByte()
			if isDigit(p) {
				lx.nextByte()
				continue
			}
			if p == '.' && !isReal {
				isReal = true
				lx.nextByte()
				continue
			}
			if (p == 'e' || p == 'E') && lx.off+1 < len(lx.src) {
				q := lx.src[lx.off+1]
				if isDigit(q) || ((q == '+' || q == '-') && lx.off+2 < len(lx.src) && isDigit(lx.src[lx.off+2])) {
					isReal = true
					lx.nextByte() // e
					lx.nextByte() // sign or digit
					continue
				}
			}
			break
		}
		text := lx.src[start:lx.off]
		if isReal {
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Token{}, errf(pos, "bad real literal %q", text)
			}
			return Token{Kind: TokRealLit, Pos: pos, Real: v}, nil
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, errf(pos, "bad integer literal %q", text)
		}
		return Token{Kind: TokIntLit, Pos: pos, Int: v}, nil
	}

	two := func(second byte, with, without Kind) (Token, error) {
		if lx.peekByte() == second {
			lx.nextByte()
			return Token{Kind: with, Pos: pos}, nil
		}
		return Token{Kind: without, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ':':
		return Token{Kind: TokColon, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign)
	case '!':
		return two('=', TokNe, TokNot)
	case '<':
		return two('=', TokLe, TokLt)
	case '>':
		return two('=', TokGe, TokGt)
	case '&':
		if lx.peekByte() == '&' {
			lx.nextByte()
			return Token{Kind: TokAnd, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '&'")
	case '|':
		if lx.peekByte() == '|' {
			lx.nextByte()
			return Token{Kind: TokOr, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '|'")
	}
	if strings.ContainsRune("\x00", rune(c)) {
		return Token{}, errf(pos, "unexpected NUL byte")
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}
