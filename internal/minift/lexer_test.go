package minift

import (
	"testing"
)

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	lx := newLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks := lexAll(t, "func f(x: int) { x = x + 1 }")
	kinds := []Kind{TokFunc, TokIdent, TokLParen, TokIdent, TokColon, TokIntType,
		TokRParen, TokLBrace, TokIdent, TokAssign, TokIdent, TokPlus, TokIntLit,
		TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexerNumbers(t *testing.T) {
	cases := []struct {
		src    string
		isReal bool
		i      int64
		f      float64
	}{
		{"42", false, 42, 0},
		{"0", false, 0, 0},
		{"3.5", true, 0, 3.5},
		{".5", true, 0, 0.5},
		{"1e3", true, 0, 1000},
		{"2.5e-2", true, 0, 0.025},
		{"7E+1", true, 0, 70},
	}
	for _, c := range cases {
		toks := lexAll(t, c.src)
		tok := toks[0]
		if c.isReal {
			if tok.Kind != TokRealLit || tok.Real != c.f {
				t.Errorf("%q: got %v %v", c.src, tok.Kind, tok.Real)
			}
		} else {
			if tok.Kind != TokIntLit || tok.Int != c.i {
				t.Errorf("%q: got %v %v", c.src, tok.Kind, tok.Int)
			}
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks := lexAll(t, "# a comment\nx // another\ny")
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Errorf("comments not skipped: %v", toks)
	}
}

func TestLexerOperators(t *testing.T) {
	toks := lexAll(t, "== != <= >= < > && || ! = %")
	kinds := []Kind{TokEq, TokNe, TokLe, TokGe, TokLt, TokGt, TokAnd, TokOr, TokNot, TokAssign, TokPercent, TokEOF}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks := lexAll(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "&x", "|y", "$"} {
		lx := newLexer(src)
		_, err := lx.Next()
		if err == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func TestParserConstructs(t *testing.T) {
	// Every statement form in one program; must parse and compile.
	const src = `
func helper(a: real): real {
    return a * 2.0
}

func main(n: int): real {
    var i: int = 0
    var s: real = 0.0
    var m: [4,4]real
    var v: [8]real4
    while i < n {
        i = i + 1
        if i % 2 == 0 {
            s = s + 1.0
        } else if i % 3 == 0 {
            s = s - 0.5
        } else {
            s = s + helper(real(i))
        }
    }
    for j = 1 to 4 step 2 {
        m[j, 1] = s / real(j)
        v[j] = real(j)
        s = s + m[j, 1] + v[j]
    }
    print s
    return s
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("got %d funcs", len(prog.Funcs))
	}
}

func TestParserPrecedence(t *testing.T) {
	// 2 + 3 * 4 == 14, (2+3)*4 == 20, unary minus binds tightly,
	// comparisons bind looser than arithmetic, && looser than ==.
	const src = `
func f(): int {
    var a: int = 2 + 3 * 4
    var b: int = (2 + 3) * 4
    var c: int = -2 * 3
    var d: int = 0
    if a + 6 == b && b / 2 == 10 {
        d = 1
    }
    return a * 1000000 + b * 10000 + (c + 100) * 100 + d
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
}
