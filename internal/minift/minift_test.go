package minift_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/minift"
)

// fooSrc is the paper's Figure 2 source program.
const fooSrc = `
func foo(y: int, z: int): int {
    var s: int = 0
    var x: int = y + z
    for i = x to 100 {
        s = 1 + s + x
    }
    return s
}
`

func TestCompileFoo(t *testing.T) {
	prog, err := minift.Compile(fooSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(prog)
	v, err := m.Call("foo", interp.IntVal(1), interp.IntVal(2))
	if err != nil {
		t.Fatal(err)
	}
	// x=3, 98 iterations: s_k = k + 98*3 ... s = 98*(1+3) = 392.
	if v.I != 392 {
		t.Fatalf("foo(1,2) = %d, want 392", v.I)
	}
}

// saxpySrc exercises 1-D single-precision array addressing.
const saxpySrc = `
func saxpy(n: int, a: real, x: [*]real4, y: [*]real4) {
    for i = 1 to n {
        y[i] = a * x[i] + y[i]
    }
}

func driver(n: int): real {
    var x: [64]real4
    var y: [64]real4
    for i = 1 to n {
        x[i] = real(i)
        y[i] = real(2 * i)
    }
    saxpy(n, 3.0, x, y)
    var s: real = 0.0
    for i = 1 to n {
        s = s + y[i]
    }
    return s
}
`

func TestSaxpyAllLevels(t *testing.T) {
	want := 0.0
	n := 40
	for i := 1; i <= n; i++ {
		want += 3.0*float64(i) + 2.0*float64(i)
	}
	for _, level := range append([]core.Level{core.LevelNone}, core.Levels...) {
		prog, err := minift.Compile(saxpySrc)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := core.Optimize(prog, level)
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		m := interp.NewMachine(opt)
		v, err := m.Call("driver", interp.IntVal(int64(n)))
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		if v.F != want {
			t.Errorf("%s: driver(%d) = %v, want %v", level, n, v.F, want)
		}
	}
}

// gemm with 2-D column-major arrays and adjustable dimensions.
const gemmSrc = `
func mm(n: int, a: [n,*]real, b: [n,*]real, c: [n,*]real) {
    for j = 1 to n {
        for i = 1 to n {
            var s: real = 0.0
            for k = 1 to n {
                s = s + a[i,k] * b[k,j]
            }
            c[i,j] = s
        }
    }
}

func driver(n: int): real {
    var a: [8,8]real
    var b: [8,8]real
    var c: [8,8]real
    for j = 1 to n {
        for i = 1 to n {
            a[i,j] = real(i + j)
            b[i,j] = real(i - j)
        }
    }
    mm(n, a, b, c)
    var s: real = 0.0
    for j = 1 to n {
        for i = 1 to n {
            s = s + c[i,j]
        }
    }
    return s
}
`

func TestGemmAllLevels(t *testing.T) {
	n := 8
	// Reference in Go (column-major irrelevant for the checksum).
	a := make([][]float64, n+1)
	b := make([][]float64, n+1)
	c := make([][]float64, n+1)
	for i := 1; i <= n; i++ {
		a[i] = make([]float64, n+1)
		b[i] = make([]float64, n+1)
		c[i] = make([]float64, n+1)
	}
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			a[i][j] = float64(i + j)
			b[i][j] = float64(i - j)
		}
	}
	want := 0.0
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			for k := 1; k <= n; k++ {
				c[i][j] += a[i][k] * b[k][j]
			}
			want += c[i][j]
		}
	}
	counts := map[core.Level]int64{}
	for _, level := range append([]core.Level{core.LevelNone}, core.Levels...) {
		prog, err := minift.Compile(gemmSrc)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := core.Optimize(prog, level)
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		m := interp.NewMachine(opt)
		v, err := m.Call("driver", interp.IntVal(int64(n)))
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		if v.F != want {
			t.Errorf("%s: driver(%d) = %v, want %v", level, n, v.F, want)
		}
		counts[level] = m.Steps
	}
	t.Logf("gemm dynamic counts: none=%d baseline=%d partial=%d reassoc=%d dist=%d",
		counts[core.LevelNone], counts[core.LevelBaseline], counts[core.LevelPartial],
		counts[core.LevelReassoc], counts[core.LevelDist])
	if counts[core.LevelPartial] >= counts[core.LevelBaseline] {
		t.Errorf("PRE should improve gemm: partial=%d baseline=%d",
			counts[core.LevelPartial], counts[core.LevelBaseline])
	}
	if counts[core.LevelReassoc] >= counts[core.LevelPartial] {
		t.Errorf("reassociation should improve gemm: reassoc=%d partial=%d",
			counts[core.LevelReassoc], counts[core.LevelPartial])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"func f(", "expected"},
		{"func f() { var x: int = }", "expected an expression"},
		{"func f() { x = 1 }", "undefined variable"},
		{"func f() { var x: int x = y }", "undefined variable"},
		{"func f() { var a: [4]real a = 1.0 }", "cannot assign to array"},
		{"func f() { var a: [4]real a[1,2] = 1.0 }", "dimensions"},
		{"func f(): int { return 1.5 }", "convert"},
		{"func f() { for i = 1.0 to 3 { } }", "loop bounds must be int"},
		{"func f() { for i = 1 to 3 step 0 { } }", "positive"},
		{"func f() { g() }", "undefined function"},
		{"func f() { f(1) }", "takes 0 arguments"},
		{"func f() { var x: [0]int }", "positive integer"},
	}
	for _, c := range cases {
		_, err := minift.Compile(c.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q, got none", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}
