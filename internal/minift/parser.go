package minift

// parser is a recursive-descent parser for Mini-Fortran.
type parser struct {
	lx  *lexer
	tok Token // lookahead
}

// Parse parses a whole source file.
func Parse(src string) (*File, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	file := &File{}
	for p.tok.Kind != TokEOF {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		file.Funcs = append(file.Funcs, fn)
	}
	return file, nil
}

func (p *parser) advance() error {
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", k, p.tok.Kind)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return Token{}, err
	}
	return t, nil
}

func (p *parser) accept(k Kind) (bool, error) {
	if p.tok.Kind != k {
		return false, nil
	}
	return true, p.advance()
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokFunc); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Pos: pos, Name: name.Text, Result: TypeVoid}
	for p.tok.Kind != TokRParen {
		if len(fn.Params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		pname, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		ty, err := p.parseType(true)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Pos: pname.Pos, Name: pname.Text, Ty: ty})
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if ok, err := p.accept(TokColon); err != nil {
		return nil, err
	} else if ok {
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		fn.Result = base
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) baseType() (BaseType, error) {
	switch p.tok.Kind {
	case TokIntType:
		return TypeInt, p.advance()
	case TokRealType:
		return TypeReal, p.advance()
	case TokReal4Type:
		return TypeReal4, p.advance()
	}
	return TypeInvalid, errf(p.tok.Pos, "expected a type, found %s", p.tok.Kind)
}

// parseType parses "int", "real", "real4" or "[d1,d2]base".  In
// parameter position (param=true) a dimension may be '*' (unknown) or
// an identifier naming another parameter.
func (p *parser) parseType(param bool) (Type, error) {
	if p.tok.Kind != TokLBracket {
		b, err := p.baseType()
		return Scalar(b), err
	}
	if err := p.advance(); err != nil {
		return Type{}, err
	}
	t := Type{IsArr: true}
	for {
		switch p.tok.Kind {
		case TokStar:
			if !param {
				return Type{}, errf(p.tok.Pos, "'*' dimension only allowed for parameters")
			}
			t.Dims = append(t.Dims, nil)
			if err := p.advance(); err != nil {
				return Type{}, err
			}
		case TokIntLit:
			t.Dims = append(t.Dims, &IntLit{Pos: p.tok.Pos, V: p.tok.Int})
			if err := p.advance(); err != nil {
				return Type{}, err
			}
		case TokIdent:
			if !param {
				return Type{}, errf(p.tok.Pos, "local array dimensions must be integer constants")
			}
			t.Dims = append(t.Dims, &VarRef{Pos: p.tok.Pos, Name: p.tok.Text})
			if err := p.advance(); err != nil {
				return Type{}, err
			}
		default:
			return Type{}, errf(p.tok.Pos, "expected array dimension, found %s", p.tok.Kind)
		}
		if ok, err := p.accept(TokComma); err != nil {
			return Type{}, err
		} else if !ok {
			break
		}
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return Type{}, err
	}
	b, err := p.baseType()
	if err != nil {
		return Type{}, err
	}
	t.Base = b
	return t, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.tok.Kind != TokRBrace {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, p.advance() // consume '}'
}

func (p *parser) stmt() (Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokVar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		ty, err := p.parseType(false)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Pos: pos, Name: name.Text, Ty: ty}
		if ok, err := p.accept(TokAssign); err != nil {
			return nil, err
		} else if ok {
			if ty.IsArr {
				return nil, errf(pos, "array variables cannot be initialized")
			}
			d.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return d, nil

	case TokIf:
		return p.ifStmt()

	case TokFor:
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		lo, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokTo); err != nil {
			return nil, err
		}
		hi, err := p.expr()
		if err != nil {
			return nil, err
		}
		step := int64(1)
		if ok, err := p.accept(TokStep); err != nil {
			return nil, err
		} else if ok {
			st, err := p.expect(TokIntLit)
			if err != nil {
				return nil, err
			}
			if st.Int <= 0 {
				return nil, errf(st.Pos, "loop step must be a positive integer constant")
			}
			step = st.Int
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Pos: pos, Var: v.Text, Lo: lo, Hi: hi, Step: step, Body: body}, nil

	case TokWhile:
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil

	case TokReturn:
		if err := p.advance(); err != nil {
			return nil, err
		}
		s := &ReturnStmt{Pos: pos}
		// A value follows unless the next token starts a new statement
		// or closes the block.
		switch p.tok.Kind {
		case TokRBrace, TokVar, TokIf, TokFor, TokWhile, TokReturn, TokPrint, TokEOF:
		default:
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Val = v
		}
		return s, nil

	case TokPrint:
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &PrintStmt{Pos: pos, Val: v}, nil

	case TokIdent:
		name := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.Kind {
		case TokLParen:
			// Call statement.
			call, err := p.callArgs(name)
			if err != nil {
				return nil, err
			}
			return &ExprStmt{Pos: pos, Call: call}, nil
		case TokLBracket:
			// Element assignment.
			if err := p.advance(); err != nil {
				return nil, err
			}
			var idx []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				idx = append(idx, e)
				if ok, err := p.accept(TokComma); err != nil {
					return nil, err
				} else if !ok {
					break
				}
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: pos, Name: name.Text, Idx: idx, Val: val}, nil
		case TokAssign:
			if err := p.advance(); err != nil {
				return nil, err
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: pos, Name: name.Text, Val: val}, nil
		}
		return nil, errf(p.tok.Pos, "expected '=', '[' or '(' after identifier, found %s", p.tok.Kind)
	}
	return nil, errf(pos, "expected a statement, found %s", p.tok.Kind)
}

func (p *parser) ifStmt() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if ok, err := p.accept(TokElse); err != nil {
		return nil, err
	} else if ok {
		if p.tok.Kind == TokIf {
			elif, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = []Stmt{elif}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

// Expression grammar (loosest to tightest):
//
//	expr   := and ("||" and)*
//	and    := cmp ("&&" cmp)*
//	cmp    := sum (relop sum)?
//	sum    := term (("+"|"-") term)*
//	term   := unary (("*"|"/"|"%") unary)*
//	unary  := ("-"|"!") unary | primary
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOr {
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: pos, Op: TokOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokAnd {
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: pos, Op: TokAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.sumExpr()
	if err != nil {
		return nil, err
	}
	switch p.tok.Kind {
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.sumExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Pos: pos, Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) sumExpr() (Expr, error) {
	l, err := p.termExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPlus || p.tok.Kind == TokMinus {
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.termExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: pos, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) termExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokStar || p.tok.Kind == TokSlash || p.tok.Kind == TokPercent {
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Pos: pos, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.tok.Kind == TokMinus || p.tok.Kind == TokNot {
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: pos, Op: op, X: x}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	switch p.tok.Kind {
	case TokIntLit:
		e := &IntLit{Pos: p.tok.Pos, V: p.tok.Int}
		return e, p.advance()
	case TokRealLit:
		e := &RealLit{Pos: p.tok.Pos, V: p.tok.Real}
		return e, p.advance()
	case TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIntType, TokRealType:
		// Conversion builtins spelled as "int(x)" / "real(i)".
		name := Token{Kind: TokIdent, Pos: p.tok.Pos, Text: p.tok.Kind.convName()}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokLParen {
			return nil, errf(p.tok.Pos, "expected '(' after %s", name.Text)
		}
		return p.callArgs(name)
	case TokIdent:
		name := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.Kind {
		case TokLParen:
			return p.callArgs(name)
		case TokLBracket:
			if err := p.advance(); err != nil {
				return nil, err
			}
			var idx []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				idx = append(idx, e)
				if ok, err := p.accept(TokComma); err != nil {
					return nil, err
				} else if !ok {
					break
				}
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: name.Pos, Name: name.Text, Idx: idx}, nil
		}
		return &VarRef{Pos: name.Pos, Name: name.Text}, nil
	}
	return nil, errf(p.tok.Pos, "expected an expression, found %s", p.tok.Kind)
}

func (k Kind) convName() string {
	if k == TokIntType {
		return "int"
	}
	return "real"
}

func (p *parser) callArgs(name Token) (*CallExpr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	call := &CallExpr{Pos: name.Pos, Name: name.Text}
	for p.tok.Kind != TokRParen {
		if len(call.Args) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
	}
	return call, p.advance() // consume ')'
}
