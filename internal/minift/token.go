// Package minift implements the Mini-Fortran front end: a small
// imperative language with FORTRAN-flavored semantics (column-major,
// 1-based arrays; DO-style counted loops; single- and double-precision
// reals) compiling to naive three-address ILOC.
//
// The front end deliberately does NOT implement the naming discipline
// of the paper's §2.2: every expression gets a fresh temporary, every
// assignment is a copy to the variable's register, and array addresses
// are emitted as left-associated chains.  That is the shape the
// paper's optimizer levels start from — "This translation does not
// conform to the naming discipline discussed in Section 2.2" (§3.1) —
// leaving reassociation and global value numbering their full job.
package minift

import "fmt"

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	TokEOF Kind = iota
	TokIdent
	TokIntLit
	TokRealLit

	// Keywords.
	TokFunc
	TokVar
	TokIf
	TokElse
	TokFor
	TokTo
	TokStep
	TokWhile
	TokReturn
	TokPrint
	TokIntType
	TokRealType
	TokReal4Type

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokColon
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq  // ==
	TokNe  // !=
	TokLt  // <
	TokLe  // <=
	TokGt  // >
	TokGe  // >=
	TokAnd // &&
	TokOr  // ||
	TokNot // !
)

var kindNames = map[Kind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokIntLit: "integer literal",
	TokRealLit: "real literal", TokFunc: "'func'", TokVar: "'var'", TokIf: "'if'",
	TokElse: "'else'", TokFor: "'for'", TokTo: "'to'", TokStep: "'step'",
	TokWhile: "'while'", TokReturn: "'return'", TokPrint: "'print'",
	TokIntType: "'int'", TokRealType: "'real'", TokReal4Type: "'real4'",
	TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'", TokRBrace: "'}'",
	TokLBracket: "'['", TokRBracket: "']'", TokComma: "','", TokColon: "':'",
	TokAssign: "'='", TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'",
	TokSlash: "'/'", TokPercent: "'%'", TokEq: "'=='", TokNe: "'!='",
	TokLt: "'<'", TokLe: "'<='", TokGt: "'>'", TokGe: "'>='",
	TokAnd: "'&&'", TokOr: "'||'", TokNot: "'!'",
}

// String names the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"func": TokFunc, "var": TokVar, "if": TokIf, "else": TokElse,
	"for": TokFor, "to": TokTo, "step": TokStep, "while": TokWhile,
	"return": TokReturn, "print": TokPrint,
	"int": TokIntType, "real": TokRealType, "real4": TokReal4Type,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string  // identifier text
	Int  int64   // integer literal value
	Real float64 // real literal value
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("minift:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
