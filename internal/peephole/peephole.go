// Package peephole implements the paper's "global peephole
// optimization" baseline pass (§4.1): constant folding over locally
// known constants, algebraic identities, and reconstruction of the
// operations that reassociation rewrote — in particular add(x, neg y)
// back into sub(x, y) "when profitable" (§3.1).
//
// The pass also optionally rewrites multiplication by a power-of-two
// constant into a shift.  Section 5.2 of the paper warns that this
// conversion must not run before global reassociation ("if
// ((x×y)×2)×z is prematurely converted into ((x×y)≪1)×z, we lose the
// opportunity to group z with either x or y"); the pipeline therefore
// only enables it in the post-reassociation peephole run, and the
// ablation bench measures the damage of doing it early.
package peephole

import (
	"math"
	"math/bits"

	"repro/internal/ir"
	"repro/internal/sccp"
)

// Options configure the peephole pass.
type Options struct {
	// MulToShift rewrites integer multiplication by a power of two
	// into a left shift.  See the package comment and paper §5.2.
	MulToShift bool
}

// Stats reports the rewrites performed.
type Stats struct {
	Folded     int // constant-folded instructions
	Identities int // algebraic identities applied
	SubRebuilt int // add(x, neg y) → sub(x, y) reconstructions
	Shifts     int // mul → shl conversions
}

// Changed reports whether the run modified the function.
func (s Stats) Changed() bool { return s.Folded+s.Identities+s.SubRebuilt+s.Shifts > 0 }

// Run performs peephole optimization on f in place.
func Run(f *ir.Func, opt Options) Stats {
	var st Stats
	for _, b := range f.Blocks {
		runBlock(f, b, opt, &st)
	}
	if st.Changed() {
		// Rewrites mutate instructions in place, bypassing the Block
		// helpers.
		f.MarkCodeMutated()
	}
	return st
}

type constVal struct {
	isFloat bool
	i       int64
	f       float64
}

// runBlock rewrites one block with local knowledge of constants and
// negations, rebuilding the instruction list (shift rewrites prepend a
// loadI for the shift amount).
func runBlock(f *ir.Func, b *ir.Block, opt Options, st *Stats) {
	consts := map[ir.Reg]constVal{} // reg → constant it holds, within this block
	negs := map[ir.Reg]ir.Reg{}     // reg → y where reg = neg y / fneg y

	invalidate := func(r ir.Reg) {
		delete(consts, r)
		delete(negs, r)
		// Drop any negation record whose source was clobbered.
		for d, s := range negs {
			if s == r {
				delete(negs, d)
			}
		}
	}

	out := make([]ir.InstrID, 0, len(b.Instrs))
	for _, inID := range b.Instrs {
		in := b.Fn.Instr(inID)
		if !tryFold(in, consts, st) && !tryIdentity(in, consts, negs, st) && !tryNegRebuild(in, negs, st) && opt.MulToShift {
			tryShift(f, &out, in, consts, st)
		}
		out = append(out, inID)

		if in.Dst != ir.NoReg {
			invalidate(in.Dst)
			switch in.Op {
			case ir.OpLoadI:
				consts[in.Dst] = constVal{i: in.Imm}
			case ir.OpLoadF:
				consts[in.Dst] = constVal{isFloat: true, f: in.FImm}
			case ir.OpNeg, ir.OpFNeg:
				negs[in.Dst] = in.Args[0]
			case ir.OpCopy:
				if c, ok := consts[in.Args[0]]; ok {
					consts[in.Dst] = c
				}
				if s, ok := negs[in.Args[0]]; ok {
					negs[in.Dst] = s
				}
			}
		}
	}
	b.Instrs = out
}

// tryFold folds a pure instruction whose operands are all locally
// known constants.
func tryFold(in *ir.Instr, consts map[ir.Reg]constVal, st *Stats) bool {
	if !in.Op.Pure() || in.Dst == ir.NoReg || in.IsConst() || in.Op == ir.OpPhi ||
		in.Op == ir.OpCopy || len(in.Args) == 0 {
		// Copies are exempt: folding "copy h => t" into "loadI c => t"
		// would re-materialize hoisted constants inside loops.
		return false
	}
	n := len(in.Args)
	if n > 2 {
		return false // pure ops take at most two operands
	}
	// Fixed-size scratch keeps the per-instruction probe allocation-free.
	var ints [2]int64
	var floats [2]float64
	var isF [2]bool
	for i, a := range in.Args {
		c, ok := consts[a]
		if !ok {
			return false
		}
		ints[i], floats[i], isF[i] = c.i, c.f, c.isFloat
	}
	iv, fv, isFloat, ok := sccp.Fold(in.Op, ints[:n], floats[:n], isF[:n])
	if !ok {
		return false
	}
	if isFloat {
		in.SetLoadF(fv)
	} else {
		in.SetLoadI(iv)
	}
	st.Folded++
	return true
}

// tryIdentity applies algebraic simplifications that need at most one
// constant operand.  Floating-point identities are restricted to the
// exact ones (x×1.0, x/1.0); x+0.0 is not exact for x = −0.0.
func tryIdentity(in *ir.Instr, consts map[ir.Reg]constVal, negs map[ir.Reg]ir.Reg, st *Stats) bool {
	isIntConst := func(r ir.Reg, want int64) bool {
		c, ok := consts[r]
		return ok && !c.isFloat && c.i == want
	}
	isFloatConst := func(r ir.Reg, want float64) bool {
		c, ok := consts[r]
		return ok && c.isFloat && c.f == want
	}
	replaceCopy := func(src ir.Reg) bool {
		in.SetCopy(src)
		st.Identities++
		return true
	}
	replaceConstI := func(v int64) bool {
		in.SetLoadI(v)
		st.Identities++
		return true
	}
	switch in.Op {
	case ir.OpAdd:
		if isIntConst(in.Args[0], 0) {
			return replaceCopy(in.Args[1])
		}
		if isIntConst(in.Args[1], 0) {
			return replaceCopy(in.Args[0])
		}
	case ir.OpSub:
		if isIntConst(in.Args[1], 0) {
			return replaceCopy(in.Args[0])
		}
		if in.Args[0] == in.Args[1] {
			return replaceConstI(0)
		}
	case ir.OpMul:
		if isIntConst(in.Args[0], 1) {
			return replaceCopy(in.Args[1])
		}
		if isIntConst(in.Args[1], 1) {
			return replaceCopy(in.Args[0])
		}
		if isIntConst(in.Args[0], 0) || isIntConst(in.Args[1], 0) {
			return replaceConstI(0)
		}
	case ir.OpDiv:
		if isIntConst(in.Args[1], 1) {
			return replaceCopy(in.Args[0])
		}
	case ir.OpFMul:
		if isFloatConst(in.Args[0], 1) {
			return replaceCopy(in.Args[1])
		}
		if isFloatConst(in.Args[1], 1) {
			return replaceCopy(in.Args[0])
		}
	case ir.OpFDiv:
		if isFloatConst(in.Args[1], 1) {
			return replaceCopy(in.Args[0])
		}
	case ir.OpNeg, ir.OpFNeg:
		if s, ok := negs[in.Args[0]]; ok {
			return replaceCopy(s)
		}
	case ir.OpShl, ir.OpShr:
		if isIntConst(in.Args[1], 0) {
			return replaceCopy(in.Args[0])
		}
	case ir.OpXor:
		if in.Args[0] == in.Args[1] {
			return replaceConstI(0)
		}
	case ir.OpAnd, ir.OpOr, ir.OpMin, ir.OpMax:
		if in.Args[0] == in.Args[1] {
			return replaceCopy(in.Args[0])
		}
	}
	return false
}

// tryNegRebuild reconstructs subtraction: add(x, neg y) → sub(x, y),
// undoing reassociation's additive rewriting where it did not pay off.
func tryNegRebuild(in *ir.Instr, negs map[ir.Reg]ir.Reg, st *Stats) bool {
	switch in.Op {
	case ir.OpAdd:
		if y, ok := negs[in.Args[1]]; ok {
			in.SetOp2(ir.OpSub, in.Args[0], y)
			st.SubRebuilt++
			return true
		}
		if y, ok := negs[in.Args[0]]; ok {
			in.SetOp2(ir.OpSub, in.Args[1], y)
			st.SubRebuilt++
			return true
		}
	case ir.OpFAdd:
		if y, ok := negs[in.Args[1]]; ok {
			in.SetOp2(ir.OpFSub, in.Args[0], y)
			st.SubRebuilt++
			return true
		}
		if y, ok := negs[in.Args[0]]; ok {
			in.SetOp2(ir.OpFSub, in.Args[1], y)
			st.SubRebuilt++
			return true
		}
	}
	return false
}

// tryShift rewrites mul by a power-of-two constant into shl, emitting
// a loadI for the shift amount ahead of the rewritten instruction.
func tryShift(f *ir.Func, out *[]ir.InstrID, in *ir.Instr, consts map[ir.Reg]constVal, st *Stats) bool {
	if in.Op != ir.OpMul {
		return false
	}
	for i := 0; i < 2; i++ {
		c, ok := consts[in.Args[i]]
		if !ok || c.isFloat || c.i <= 1 || c.i&(c.i-1) != 0 {
			continue
		}
		shift := int64(bits.TrailingZeros64(uint64(c.i)))
		other := in.Args[1-i]
		amt := f.NewReg()
		*out = append(*out, f.NewLoadI(amt, shift).ID())
		consts[amt] = constVal{i: shift}
		in.SetOp2(ir.OpShl, other, amt)
		st.Shifts++
		return true
	}
	return false
}

// FoldsExactly reports whether v is exactly representable when folded —
// a helper kept for tests of float identity safety.
func FoldsExactly(v float64) bool { return !math.IsNaN(v) }
