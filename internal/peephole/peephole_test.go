package peephole_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/peephole"
)

func run(t *testing.T, f *ir.Func, args ...int64) interp.Value {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(f.Name, vals...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

func TestIdentities(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    add r1, r2 => r3
    loadI 1 => r4
    mul r3, r4 => r5
    sub r5, r2 => r6
    div r6, r4 => r7
    xor r7, r7 => r8
    add r7, r8 => r9
    ret r9
}
`
	f := ir.MustParseFunc(src)
	want := run(t, f, 37)
	st := peephole.Run(f, peephole.Options{})
	got := run(t, f, 37)
	if got.I != want.I || got.I != 37 {
		t.Fatalf("got %d, want 37", got.I)
	}
	if st.Identities < 4 {
		t.Errorf("Identities = %d, want ≥4\n%s", st.Identities, f)
	}
	if countOps(f, ir.OpMul) != 0 || countOps(f, ir.OpDiv) != 0 {
		t.Errorf("x*1 or x/1 survived\n%s", f)
	}
	if countOps(f, ir.OpXor) != 0 {
		t.Errorf("x^x survived\n%s", f)
	}
}

func TestNegRebuild(t *testing.T) {
	// add(x, neg y) → sub(x, y): the reconstruction the paper's §3.1
	// promises after reassociation's additive rewriting.
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    neg r2 => r3
    add r1, r3 => r4
    ret r4
}
`
	f := ir.MustParseFunc(src)
	st := peephole.Run(f, peephole.Options{})
	if st.SubRebuilt != 1 {
		t.Errorf("SubRebuilt = %d, want 1\n%s", st.SubRebuilt, f)
	}
	if countOps(f, ir.OpSub) != 1 {
		t.Errorf("no sub reconstructed\n%s", f)
	}
	if got := run(t, f, 10, 3); got.I != 7 {
		t.Errorf("got %d, want 7", got.I)
	}
}

func TestDoubleNeg(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    neg r1 => r2
    neg r2 => r3
    ret r3
}
`
	f := ir.MustParseFunc(src)
	st := peephole.Run(f, peephole.Options{})
	if st.Identities != 1 {
		t.Errorf("neg(neg x) not simplified: %+v\n%s", st, f)
	}
	if got := run(t, f, 5); got.I != 5 {
		t.Errorf("got %d, want 5", got.I)
	}
}

func TestMulToShift(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 8 => r2
    mul r1, r2 => r3
    loadI 3 => r4
    mul r1, r4 => r5
    add r3, r5 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	st := peephole.Run(f, peephole.Options{MulToShift: true})
	if st.Shifts != 1 {
		t.Errorf("Shifts = %d, want 1 (only ×8 converts)\n%s", st.Shifts, f)
	}
	if countOps(f, ir.OpShl) != 1 || countOps(f, ir.OpMul) != 1 {
		t.Errorf("conversion wrong\n%s", f)
	}
	if got := run(t, f, 5); got.I != 55 {
		t.Errorf("got %d, want 55", got.I)
	}
	// Disabled by default.
	g := ir.MustParseFunc(src)
	st2 := peephole.Run(g, peephole.Options{})
	if st2.Shifts != 0 {
		t.Error("shift conversion ran without the option")
	}
}

func TestLocalConstFold(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 6 => r2
    loadI 7 => r3
    mul r2, r3 => r4
    add r4, r1 => r5
    ret r5
}
`
	f := ir.MustParseFunc(src)
	st := peephole.Run(f, peephole.Options{})
	if st.Folded != 1 {
		t.Errorf("Folded = %d, want 1\n%s", st.Folded, f)
	}
	if got := run(t, f, 0); got.I != 42 {
		t.Errorf("got %d, want 42", got.I)
	}
}

// TestInvalidationAcrossRedefinition: a constant record must die when
// its register is redefined.
func TestInvalidationAcrossRedefinition(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 1 => r2
    copy r1 => r2
    loadI 0 => r3
    add r2, r3 => r4
    ret r4
}
`
	f := ir.MustParseFunc(src)
	peephole.Run(f, peephole.Options{})
	// add r2, 0 → copy r2 (identity), NOT loadI 1 (stale constant).
	if got := run(t, f, 99); got.I != 99 {
		t.Errorf("stale constant used: got %d, want 99\n%s", got.I, f)
	}
}

// TestConstantsDoNotCrossBlocks: the pass is block-local by design.
func TestConstantsDoNotCrossBlocks(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 3 => r2
    jump -> b1
b1:
    loadI 4 => r3
    add r2, r3 => r4
    ret r4
}
`
	f := ir.MustParseFunc(src)
	st := peephole.Run(f, peephole.Options{})
	if st.Folded != 0 {
		t.Errorf("folded across a block boundary: %+v", st)
	}
	if got := run(t, f, 0); got.I != 7 {
		t.Errorf("got %d, want 7", got.I)
	}
}
