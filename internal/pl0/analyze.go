package pl0

// Semantic analysis: build the lexical scope tree, resolve every name,
// mark scalars that are referenced from nested procedures (they get
// demoted to static memory), and lay out the static data segment.

type symKind uint8

const (
	symConst symKind = iota
	symVar
	symParam
	symArray
	symProc
)

func (k symKind) String() string {
	switch k {
	case symConst:
		return "constant"
	case symVar:
		return "variable"
	case symParam:
		return "parameter"
	case symArray:
		return "array"
	case symProc:
		return "procedure"
	}
	return "symbol"
}

// symbol is one declared name.
type symbol struct {
	kind     symKind
	pos      Pos
	name     string
	val      int64     // symConst: the constant's value
	length   int64     // symArray: element count
	captured bool      // scalar referenced from a nested procedure
	addr     int64     // static address (arrays and captured scalars)
	owner    *procInfo // scope that declares this symbol
	proc     *procInfo // symProc: the procedure it names
}

// procInfo is one node of the scope tree: the top-level block ("main")
// or a procedure, with its declarations and children.
type procInfo struct {
	name     string // scope-flattened dotted ir.Func name
	node     *Proc  // nil for the top-level block
	parent   *procInfo
	block    *Block
	syms     map[string]*symbol
	order    []string // declaration order (determinism: never range syms)
	children []*procInfo
}

// unit is an analyzed program: the scope tree in pre-order plus the
// static data segment size.
type unit struct {
	root       *procInfo
	procs      []*procInfo // pre-order walk of the scope tree
	globalSize int64
}

func analyze(ast *Program) (*unit, error) {
	u := &unit{}
	root, err := u.buildScope(ast.Block, "main", nil, nil)
	if err != nil {
		return nil, err
	}
	u.root = root
	for _, pi := range u.procs {
		if err := u.resolveStmt(pi, pi.block.Body); err != nil {
			return nil, err
		}
	}
	// Static layout: one 8-byte word per captured scalar, 8·len bytes
	// per array, assigned in a deterministic pre-order walk.
	var cursor int64
	for _, pi := range u.procs {
		for _, n := range pi.order {
			s := pi.syms[n]
			switch s.kind {
			case symArray:
				s.addr = cursor
				cursor += 8 * s.length
			case symVar, symParam:
				if s.captured {
					s.addr = cursor
					cursor += 8
				}
			}
		}
	}
	u.globalSize = cursor
	return u, nil
}

func (u *unit) buildScope(blk *Block, name string, parent *procInfo, node *Proc) (*procInfo, error) {
	pi := &procInfo{name: name, node: node, parent: parent, block: blk, syms: map[string]*symbol{}}
	u.procs = append(u.procs, pi)
	declare := func(s *symbol) error {
		if prev, dup := pi.syms[s.name]; dup {
			return errf(s.pos, "%s redeclared (previous declaration was a %s)", s.name, prev.kind)
		}
		s.owner = pi
		pi.syms[s.name] = s
		pi.order = append(pi.order, s.name)
		return nil
	}
	if node != nil {
		for _, p := range node.Params {
			if err := declare(&symbol{kind: symParam, pos: p.Pos, name: p.Name}); err != nil {
				return nil, err
			}
		}
	}
	for _, c := range blk.Consts {
		if err := declare(&symbol{kind: symConst, pos: c.Pos, name: c.Name, val: c.Val}); err != nil {
			return nil, err
		}
	}
	for _, v := range blk.Vars {
		k := symVar
		if v.ArrayLen > 0 {
			k = symArray
		}
		if err := declare(&symbol{kind: k, pos: v.Pos, name: v.Name, length: v.ArrayLen}); err != nil {
			return nil, err
		}
	}
	for _, pr := range blk.Procs {
		if parent == nil && pr.Name == "main" {
			return nil, errf(pr.Pos, "procedure name main is reserved for the top-level block")
		}
		// Scope-flattened unique ir.Func name: top-level procedures keep
		// their bare name; nested ones are dotted with their ancestry.
		childName := pr.Name
		if parent != nil {
			childName = name + "." + pr.Name
		}
		child, err := u.buildScope(pr.Block, childName, pi, pr)
		if err != nil {
			return nil, err
		}
		pi.children = append(pi.children, child)
		if err := declare(&symbol{kind: symProc, pos: pr.Pos, name: pr.Name, proc: child}); err != nil {
			return nil, err
		}
	}
	return pi, nil
}

// resolve looks a name up through the enclosing scopes.
func resolve(pi *procInfo, name string) *symbol {
	for s := pi; s != nil; s = s.parent {
		if sym, ok := s.syms[name]; ok {
			return sym
		}
	}
	return nil
}

// markUse records an up-level reference: a scalar used outside its
// declaring scope must live in static memory.
func markUse(pi *procInfo, sym *symbol) {
	if (sym.kind == symVar || sym.kind == symParam) && sym.owner != pi {
		sym.captured = true
	}
}

func (u *unit) resolveStmt(pi *procInfo, s Stmt) error {
	switch st := s.(type) {
	case *AssignStmt:
		sym := resolve(pi, st.Name)
		if sym == nil {
			return errf(st.Pos, "undefined name %s", st.Name)
		}
		switch sym.kind {
		case symConst:
			return errf(st.Pos, "cannot assign to constant %s", st.Name)
		case symProc:
			// Pascal-style return value: only the procedure being
			// compiled may assign to its own name.
			if sym.proc != pi {
				return errf(st.Pos, "cannot assign to procedure %s", st.Name)
			}
			if st.Index != nil {
				return errf(st.Pos, "cannot subscript procedure %s", st.Name)
			}
		case symArray:
			if st.Index == nil {
				return errf(st.Pos, "array %s assigned without a subscript", st.Name)
			}
		default:
			if st.Index != nil {
				return errf(st.Pos, "%s %s is not an array", sym.kind, st.Name)
			}
			markUse(pi, sym)
		}
		if st.Index != nil {
			if err := u.resolveExpr(pi, st.Index); err != nil {
				return err
			}
		}
		return u.resolveExpr(pi, st.Value)

	case *CallStmt:
		return u.resolveCall(pi, st.Pos, st.Name, st.Args)

	case *BeginStmt:
		for _, sub := range st.List {
			if err := u.resolveStmt(pi, sub); err != nil {
				return err
			}
		}
		return nil

	case *IfStmt:
		if err := u.resolveCond(pi, st.Cond); err != nil {
			return err
		}
		if err := u.resolveStmt(pi, st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return u.resolveStmt(pi, st.Else)
		}
		return nil

	case *WhileStmt:
		if err := u.resolveCond(pi, st.Cond); err != nil {
			return err
		}
		return u.resolveStmt(pi, st.Body)

	case *WriteStmt:
		return u.resolveExpr(pi, st.Value)
	}
	return errf(s.stmtPos(), "unhandled statement")
}

func (u *unit) resolveCond(pi *procInfo, c Cond) error {
	switch cn := c.(type) {
	case *OddCond:
		return u.resolveExpr(pi, cn.X)
	case *RelCond:
		if err := u.resolveExpr(pi, cn.A); err != nil {
			return err
		}
		return u.resolveExpr(pi, cn.B)
	}
	return errf(c.condPos(), "unhandled condition")
}

func (u *unit) resolveExpr(pi *procInfo, e Expr) error {
	switch ex := e.(type) {
	case *NumberExpr:
		return nil
	case *Ident:
		sym := resolve(pi, ex.Name)
		if sym == nil {
			return errf(ex.Pos, "undefined name %s", ex.Name)
		}
		switch sym.kind {
		case symArray:
			return errf(ex.Pos, "array %s used as a scalar", ex.Name)
		case symProc:
			return errf(ex.Pos, "procedure %s used as a value (call it with arguments)", ex.Name)
		}
		markUse(pi, sym)
		return nil
	case *IndexExpr:
		sym := resolve(pi, ex.Name)
		if sym == nil {
			return errf(ex.Pos, "undefined name %s", ex.Name)
		}
		if sym.kind != symArray {
			return errf(ex.Pos, "%s %s is not an array", sym.kind, ex.Name)
		}
		return u.resolveExpr(pi, ex.Index)
	case *BinExpr:
		if err := u.resolveExpr(pi, ex.L); err != nil {
			return err
		}
		return u.resolveExpr(pi, ex.R)
	case *UnaryExpr:
		return u.resolveExpr(pi, ex.X)
	case *CallExpr:
		return u.resolveCall(pi, ex.Pos, ex.Name, ex.Args)
	}
	return errf(e.exprPos(), "unhandled expression")
}

func (u *unit) resolveCall(pi *procInfo, pos Pos, name string, args []Expr) error {
	sym := resolve(pi, name)
	if sym == nil {
		return errf(pos, "undefined procedure %s", name)
	}
	if sym.kind != symProc {
		return errf(pos, "%s %s is not a procedure", sym.kind, name)
	}
	want := len(sym.proc.node.Params)
	if len(args) != want {
		return errf(pos, "%s takes %d arguments, got %d", name, want, len(args))
	}
	for _, a := range args {
		if err := u.resolveExpr(pi, a); err != nil {
			return err
		}
	}
	return nil
}
