package pl0

// Program is a parsed PL/0 source: one top-level block, closed by ".".
type Program struct {
	Block *Block
}

// Block is a declaration region plus its body statement: constants,
// variables (scalars or fixed-length arrays), nested procedures, then
// exactly one statement.
type Block struct {
	Consts []ConstDecl
	Vars   []VarDecl
	Procs  []*Proc
	Body   Stmt
}

// ConstDecl binds a name to an integer literal.
type ConstDecl struct {
	Pos  Pos
	Name string
	Val  int64
}

// VarDecl declares a scalar (ArrayLen == 0) or an array of ArrayLen
// 8-byte words indexed 1..ArrayLen.
type VarDecl struct {
	Pos      Pos
	Name     string
	ArrayLen int64
}

// Proc is a (possibly nested) procedure with by-value integer
// parameters.  A procedure returns a value by assigning to its own
// name, Pascal-style; the value defaults to 0.
type Proc struct {
	Pos    Pos
	Name   string
	Params []Param
	Block  *Block
}

// Param is a formal parameter.
type Param struct {
	Pos  Pos
	Name string
}

// Stmt is a statement node.
type Stmt interface{ stmtPos() Pos }

// AssignStmt is "name := value" or "name[index] := value".
type AssignStmt struct {
	Pos   Pos
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
}

// CallStmt is "call name(args)" in statement position (result dropped).
type CallStmt struct {
	Pos  Pos
	Name string
	Args []Expr
}

// BeginStmt is "begin s1; s2; ... end".
type BeginStmt struct {
	Pos  Pos
	List []Stmt
}

// IfStmt is "if cond then s [else s]".
type IfStmt struct {
	Pos  Pos
	Cond Cond
	Then Stmt
	Else Stmt // nil when absent
}

// WhileStmt is "while cond do s".
type WhileStmt struct {
	Pos  Pos
	Cond Cond
	Body Stmt
}

// WriteStmt is "write expr".
type WriteStmt struct {
	Pos   Pos
	Value Expr
}

func (s *AssignStmt) stmtPos() Pos { return s.Pos }
func (s *CallStmt) stmtPos() Pos   { return s.Pos }
func (s *BeginStmt) stmtPos() Pos  { return s.Pos }
func (s *IfStmt) stmtPos() Pos     { return s.Pos }
func (s *WhileStmt) stmtPos() Pos  { return s.Pos }
func (s *WriteStmt) stmtPos() Pos  { return s.Pos }

// Cond is a boolean condition node ("odd e" or "a relop b").
type Cond interface{ condPos() Pos }

// OddCond is "odd expr".
type OddCond struct {
	Pos Pos
	X   Expr
}

// RelCond is "a relop b" with Op one of TokEq/TokNe/TokLt/TokLe/TokGt/TokGe.
type RelCond struct {
	Pos  Pos
	Op   Kind
	A, B Expr
}

func (c *OddCond) condPos() Pos { return c.Pos }
func (c *RelCond) condPos() Pos { return c.Pos }

// Expr is an integer expression node.
type Expr interface{ exprPos() Pos }

// Ident references a constant, scalar variable, or parameter by name.
type Ident struct {
	Pos  Pos
	Name string
}

// IndexExpr is "name[index]".
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// NumberExpr is an integer literal.
type NumberExpr struct {
	Pos Pos
	Val int64
}

// BinExpr is "l op r" with Op one of TokPlus/TokMinus/TokStar/TokSlash.
type BinExpr struct {
	Pos  Pos
	Op   Kind
	L, R Expr
}

// UnaryExpr is unary minus.
type UnaryExpr struct {
	Pos Pos
	X   Expr
}

// CallExpr is "name(args)" in expression position: the called
// procedure's return value.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (e *Ident) exprPos() Pos      { return e.Pos }
func (e *IndexExpr) exprPos() Pos  { return e.Pos }
func (e *NumberExpr) exprPos() Pos { return e.Pos }
func (e *BinExpr) exprPos() Pos    { return e.Pos }
func (e *UnaryExpr) exprPos() Pos  { return e.Pos }
func (e *CallExpr) exprPos() Pos   { return e.Pos }
