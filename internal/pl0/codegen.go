package pl0

import (
	"fmt"

	"repro/internal/ir"
)

// lower translates the analyzed scope tree into one ir.Func per
// procedure (pre-order, so "main" comes first).  The code is
// deliberately naive, like the Mini-Fortran front end: fresh
// temporaries per expression node, a copy per assignment, explicit
// base+(i-1)*8 address chains, and branch targets attached to the
// emitted cbr/jump only after the destination blocks exist.
func lower(u *unit) (*ir.Program, error) {
	prog := &ir.Program{GlobalSize: u.globalSize}
	for _, pi := range u.procs {
		f, err := genProc(pi)
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	return prog, nil
}

// fnCtx carries per-procedure lowering state.
type fnCtx struct {
	pi     *procInfo
	fn     *ir.Func
	cur    *ir.Block
	retReg ir.Reg             // Pascal-style return value slot
	regs   map[*symbol]ir.Reg // uncaptured scalars
}

func genProc(pi *procInfo) (*ir.Func, error) {
	nparams := 0
	if pi.node != nil {
		nparams = len(pi.node.Params)
	}
	f := ir.NewFunc(pi.name, nparams)
	ctx := &fnCtx{pi: pi, fn: f, cur: f.Entry(), regs: map[*symbol]ir.Reg{}}

	// Return value defaults to 0; "p := e" inside p overwrites it.
	ctx.retReg = f.NewReg()
	z := ctx.emitLoadI(0)
	ctx.emit(f.NewCopy(ctx.retReg, z))

	// Bind parameters: captured ones are spilled to their static slot
	// at entry and accessed through memory from then on.
	if pi.node != nil {
		for i, p := range pi.node.Params {
			sym := pi.syms[p.Name]
			if sym.captured {
				addr := ctx.emitLoadI(sym.addr)
				ctx.cur.Append(f.NewInstr(ir.OpStoreW, ir.NoReg, f.Params[i], addr))
			} else {
				ctx.regs[sym] = f.Params[i]
			}
		}
	}
	// Local scalars start at 0.  Captured ones live in memory and are
	// re-zeroed on every activation of their declaring procedure;
	// uncaptured ones are plain registers.
	for _, n := range pi.order {
		sym := pi.syms[n]
		if sym.kind != symVar {
			continue
		}
		if sym.captured {
			zero := ctx.emitLoadI(0)
			addr := ctx.emitLoadI(sym.addr)
			ctx.cur.Append(f.NewInstr(ir.OpStoreW, ir.NoReg, zero, addr))
		} else {
			reg := f.NewReg()
			ctx.regs[sym] = reg
			zero := ctx.emitLoadI(0)
			ctx.emit(f.NewCopy(reg, zero))
		}
	}

	if err := ctx.stmt(pi.block.Body); err != nil {
		return nil, err
	}
	ctx.cur.Append(f.NewInstr(ir.OpRet, ir.NoReg, ctx.retReg))
	return f, nil
}

// emit appends an instruction to the current block and returns its
// destination register.
func (ctx *fnCtx) emit(in *ir.Instr) ir.Reg {
	ctx.cur.Append(in)
	return in.Dst
}

func (ctx *fnCtx) emitLoadI(v int64) ir.Reg {
	return ctx.emit(ctx.fn.NewLoadI(ctx.fn.NewReg(), v))
}

func (ctx *fnCtx) emitOp(op ir.Op, args ...ir.Reg) ir.Reg {
	return ctx.emit(ctx.fn.NewInstr(op, ctx.fn.NewReg(), args...))
}

func (ctx *fnCtx) jumpTo(target *ir.Block) {
	ctx.cur.Append(ctx.fn.NewInstr(ir.OpJump, ir.NoReg))
	ir.AddEdge(ctx.cur, target)
}

func (ctx *fnCtx) branchTo(cond ir.Reg, then, els *ir.Block) {
	ctx.cur.Append(ctx.fn.NewInstr(ir.OpCBr, ir.NoReg, cond))
	ir.AddEdge(ctx.cur, then)
	ir.AddEdge(ctx.cur, els)
}

// startBlock begins a new block, jumping to it from the current one.
func (ctx *fnCtx) startBlock() *ir.Block {
	b := ctx.fn.NewBlock()
	ctx.jumpTo(b)
	ctx.cur = b
	return b
}

// readScalar loads a scalar's current value: register for uncaptured
// symbols, a fresh ldw through the static slot otherwise.
func (ctx *fnCtx) readScalar(sym *symbol) ir.Reg {
	if sym.captured {
		addr := ctx.emitLoadI(sym.addr)
		return ctx.emitOp(ir.OpLoadW, addr)
	}
	return ctx.regs[sym]
}

// writeScalar stores v into a scalar.
func (ctx *fnCtx) writeScalar(sym *symbol, v ir.Reg) {
	if sym.captured {
		addr := ctx.emitLoadI(sym.addr)
		ctx.cur.Append(ctx.fn.NewInstr(ir.OpStoreW, ir.NoReg, v, addr))
		return
	}
	ctx.emit(ctx.fn.NewCopy(ctx.regs[sym], v))
}

// arrayAddr emits the naive 1-based address chain
//
//	addr = base + (i − 1) · 8
//
// with fresh temporaries for every node — the §3.1 subscript shape
// whose redundancy reassociation exposes.
func (ctx *fnCtx) arrayAddr(sym *symbol, index Expr) (ir.Reg, error) {
	base := ctx.emitLoadI(sym.addr)
	iv, err := ctx.expr(index)
	if err != nil {
		return ir.NoReg, err
	}
	one := ctx.emitLoadI(1)
	off := ctx.emitOp(ir.OpSub, iv, one)
	eight := ctx.emitLoadI(8)
	boff := ctx.emitOp(ir.OpMul, off, eight)
	return ctx.emitOp(ir.OpAdd, base, boff), nil
}

func (ctx *fnCtx) stmt(s Stmt) error {
	switch st := s.(type) {
	case *AssignStmt:
		sym := resolve(ctx.pi, st.Name)
		if sym.kind == symArray {
			addr, err := ctx.arrayAddr(sym, st.Index)
			if err != nil {
				return err
			}
			v, err := ctx.expr(st.Value)
			if err != nil {
				return err
			}
			ctx.cur.Append(ctx.fn.NewInstr(ir.OpStoreW, ir.NoReg, v, addr))
			return nil
		}
		v, err := ctx.expr(st.Value)
		if err != nil {
			return err
		}
		if sym.kind == symProc {
			ctx.emit(ctx.fn.NewCopy(ctx.retReg, v))
			return nil
		}
		ctx.writeScalar(sym, v)
		return nil

	case *CallStmt:
		sym := resolve(ctx.pi, st.Name)
		args, err := ctx.exprList(st.Args)
		if err != nil {
			return err
		}
		// Statement position: the return value is dropped.
		ctx.cur.Append(ctx.fn.NewCall(sym.proc.name, ir.NoReg, args...))
		return nil

	case *BeginStmt:
		for _, sub := range st.List {
			if err := ctx.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *IfStmt:
		cond, err := ctx.cond(st.Cond)
		if err != nil {
			return err
		}
		thenB := ctx.fn.NewBlock()
		joinB := ctx.fn.NewBlock()
		if st.Else != nil {
			elseB := ctx.fn.NewBlock()
			ctx.branchTo(cond, thenB, elseB)
			ctx.cur = thenB
			if err := ctx.stmt(st.Then); err != nil {
				return err
			}
			ctx.jumpTo(joinB)
			ctx.cur = elseB
			if err := ctx.stmt(st.Else); err != nil {
				return err
			}
			ctx.jumpTo(joinB)
		} else {
			ctx.branchTo(cond, thenB, joinB)
			ctx.cur = thenB
			if err := ctx.stmt(st.Then); err != nil {
				return err
			}
			ctx.jumpTo(joinB)
		}
		ctx.cur = joinB
		return nil

	case *WhileStmt:
		headB := ctx.startBlock()
		cond, err := ctx.cond(st.Cond)
		if err != nil {
			return err
		}
		bodyB := ctx.fn.NewBlock()
		exitB := ctx.fn.NewBlock()
		ctx.branchTo(cond, bodyB, exitB)
		ctx.cur = bodyB
		if err := ctx.stmt(st.Body); err != nil {
			return err
		}
		ctx.jumpTo(headB)
		ctx.cur = exitB
		return nil

	case *WriteStmt:
		v, err := ctx.expr(st.Value)
		if err != nil {
			return err
		}
		ctx.cur.Append(ctx.fn.NewCall("print", ir.NoReg, v))
		return nil
	}
	return errf(s.stmtPos(), "unhandled statement")
}

func (ctx *fnCtx) cond(c Cond) (ir.Reg, error) {
	switch cn := c.(type) {
	case *OddCond:
		x, err := ctx.expr(cn.X)
		if err != nil {
			return ir.NoReg, err
		}
		one := ctx.emitLoadI(1)
		return ctx.emitOp(ir.OpAnd, x, one), nil
	case *RelCond:
		a, err := ctx.expr(cn.A)
		if err != nil {
			return ir.NoReg, err
		}
		b, err := ctx.expr(cn.B)
		if err != nil {
			return ir.NoReg, err
		}
		op, ok := relOps[cn.Op]
		if !ok {
			return ir.NoReg, errf(cn.Pos, "unhandled relational operator %s", cn.Op)
		}
		return ctx.emitOp(op, a, b), nil
	}
	return ir.NoReg, errf(c.condPos(), "unhandled condition")
}

var relOps = map[Kind]ir.Op{
	TokEq: ir.OpCmpEQ, TokNe: ir.OpCmpNE, TokLt: ir.OpCmpLT,
	TokLe: ir.OpCmpLE, TokGt: ir.OpCmpGT, TokGe: ir.OpCmpGE,
}

var arithOps = map[Kind]ir.Op{
	TokPlus: ir.OpAdd, TokMinus: ir.OpSub,
	TokStar: ir.OpMul, TokSlash: ir.OpDiv,
}

func (ctx *fnCtx) exprList(list []Expr) ([]ir.Reg, error) {
	regs := make([]ir.Reg, len(list))
	for i, e := range list {
		v, err := ctx.expr(e)
		if err != nil {
			return nil, err
		}
		regs[i] = v
	}
	return regs, nil
}

func (ctx *fnCtx) expr(e Expr) (ir.Reg, error) {
	switch ex := e.(type) {
	case *NumberExpr:
		return ctx.emitLoadI(ex.Val), nil

	case *Ident:
		sym := resolve(ctx.pi, ex.Name)
		if sym.kind == symConst {
			return ctx.emitLoadI(sym.val), nil
		}
		return ctx.readScalar(sym), nil

	case *IndexExpr:
		sym := resolve(ctx.pi, ex.Name)
		addr, err := ctx.arrayAddr(sym, ex.Index)
		if err != nil {
			return ir.NoReg, err
		}
		return ctx.emitOp(ir.OpLoadW, addr), nil

	case *BinExpr:
		l, err := ctx.expr(ex.L)
		if err != nil {
			return ir.NoReg, err
		}
		r, err := ctx.expr(ex.R)
		if err != nil {
			return ir.NoReg, err
		}
		op, ok := arithOps[ex.Op]
		if !ok {
			return ir.NoReg, errf(ex.Pos, "unhandled operator %s", ex.Op)
		}
		return ctx.emitOp(op, l, r), nil

	case *UnaryExpr:
		v, err := ctx.expr(ex.X)
		if err != nil {
			return ir.NoReg, err
		}
		return ctx.emitOp(ir.OpNeg, v), nil

	case *CallExpr:
		sym := resolve(ctx.pi, ex.Name)
		args, err := ctx.exprList(ex.Args)
		if err != nil {
			return ir.NoReg, err
		}
		return ctx.emit(ctx.fn.NewCall(sym.proc.name, ctx.fn.NewReg(), args...)), nil
	}
	return ir.NoReg, errf(e.exprPos(), "unhandled expression")
}

// String renders a scope-tree summary for debugging.
func (u *unit) String() string {
	return fmt.Sprintf("pl0 unit: %d procs, %d bytes static", len(u.procs), u.globalSize)
}
