package pl0

import (
	"testing"

	"repro/internal/check"
	"repro/internal/ir"
)

// FuzzPL0Parse feeds arbitrary text to the front end.  Rejection is
// fine; acceptance obliges the compiler to hand over a structurally
// valid program: ir.Verify must pass (Compile enforces that), the
// printed ILOC must re-parse to a byte-identical print, and the
// checked-mode def-use analysis must report no errors.  Seeds live in
// testdata/fuzz/FuzzPL0Parse.
func FuzzPL0Parse(f *testing.F) {
	f.Add("write 1.")
	f.Add("var x; begin x := 2; write x * x end.")
	f.Add("const n = 3; var a[7], i; begin i := 1; while i <= n do begin a[i] := i; i := i + 1 end; write a[n] end.")
	f.Add("procedure g(a, b);\nif b = 0 then g := a else g := g(b, a - (a / b) * b);\nwrite g(12, 18).")
	f.Add("procedure o(n);\nvar s;\n\tprocedure in;\n\ts := s + n;\nbegin\n\tcall in;\n\to := s\nend;\nwrite o(5).")
	f.Add("var x; if odd x then x := -x else x := x / 2.")
	f.Add("(* comment *) write -(1 + 2) * 3.")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err != nil {
			t.Skip()
		}
		printed := prog.String()
		back, err := ir.ParseProgramString(printed)
		if err != nil {
			t.Fatalf("compiled program does not re-parse: %v\nsource:\n%s\niloc:\n%s", err, src, printed)
		}
		if back.String() != printed {
			t.Fatalf("print∘parse not idempotent for compiled program\nsource:\n%s", src)
		}
		diags := check.Program(prog, check.Options{})
		if errs := check.Errors(diags); len(errs) != 0 {
			t.Fatalf("checker rejects compiled program: %v\nsource:\n%s\niloc:\n%s", errs, src, printed)
		}
	})
}
