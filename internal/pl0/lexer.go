package pl0

import "strconv"

// lexer turns source text into tokens.  PL/0 comments are Pascal-style
// "(* ... *)" blocks (non-nesting).
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peekByteAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *lexer) nextByte() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Next returns the next token.
func (lx *lexer) Next() (Token, error) {
	// Skip whitespace and (* ... *) comments.
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.nextByte()
		case c == '(' && lx.peekByteAt(1) == '*':
			open := lx.pos()
			lx.nextByte() // (
			lx.nextByte() // *
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByteAt(1) == ')' {
					lx.nextByte()
					lx.nextByte()
					closed = true
					break
				}
				lx.nextByte()
			}
			if !closed {
				return Token{}, errf(open, "unterminated comment")
			}
		default:
			goto scan
		}
	}
scan:
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.nextByte()
	switch {
	case isAlpha(c):
		start := lx.off - 1
		for lx.off < len(lx.src) && (isAlpha(lx.peekByte()) || isDigit(lx.peekByte())) {
			lx.nextByte()
		}
		word := lx.src[start:lx.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Pos: pos, Text: word}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: word}, nil

	case isDigit(c):
		start := lx.off - 1
		for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
			lx.nextByte()
		}
		text := lx.src[start:lx.off]
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, errf(pos, "bad number literal %q", text)
		}
		return Token{Kind: TokNumber, Pos: pos, Num: v}, nil
	}

	switch c {
	case '.':
		return Token{Kind: TokPeriod, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case ':':
		if lx.peekByte() == '=' {
			lx.nextByte()
			return Token{Kind: TokAssign, Pos: pos}, nil
		}
		return Token{}, errf(pos, "expected ':=' after ':'")
	case '=':
		return Token{Kind: TokEq, Pos: pos}, nil
	case '#':
		return Token{Kind: TokNe, Pos: pos}, nil
	case '<':
		if lx.peekByte() == '=' {
			lx.nextByte()
			return Token{Kind: TokLe, Pos: pos}, nil
		}
		return Token{Kind: TokLt, Pos: pos}, nil
	case '>':
		if lx.peekByte() == '=' {
			lx.nextByte()
			return Token{Kind: TokGe, Pos: pos}, nil
		}
		return Token{Kind: TokGt, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}
