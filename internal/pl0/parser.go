package pl0

// parser is a recursive-descent parser over the token stream, one
// token of lookahead.
type parser struct {
	lx  *lexer
	tok Token
}

// parse parses a complete PL/0 program: block ".".
func parse(src string) (*Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	blk, err := p.block()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPeriod); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, errf(p.tok.Pos, "trailing input after '.'")
	}
	return &Program{Block: blk}, nil
}

func (p *parser) advance() error {
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, got %s", k, p.tok.Kind)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) accept(k Kind) (bool, error) {
	if p.tok.Kind != k {
		return false, nil
	}
	return true, p.advance()
}

// block = { "const" ident "=" number {"," ident "=" number} ";"
//
//	| "var" vardecl {"," vardecl} ";"
//	| "procedure" ident ["(" params ")"] ";" block ";" }
//	statement .
func (p *parser) block() (*Block, error) {
	blk := &Block{}
	for {
		switch p.tok.Kind {
		case TokConst:
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				name, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokEq); err != nil {
					return nil, err
				}
				neg := false
				if ok, err := p.accept(TokMinus); err != nil {
					return nil, err
				} else if ok {
					neg = true
				}
				num, err := p.expect(TokNumber)
				if err != nil {
					return nil, err
				}
				v := num.Num
				if neg {
					v = -v
				}
				blk.Consts = append(blk.Consts, ConstDecl{Pos: name.Pos, Name: name.Text, Val: v})
				if ok, err := p.accept(TokComma); err != nil {
					return nil, err
				} else if !ok {
					break
				}
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}

		case TokVar:
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				name, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				d := VarDecl{Pos: name.Pos, Name: name.Text}
				if ok, err := p.accept(TokLBracket); err != nil {
					return nil, err
				} else if ok {
					n, err := p.expect(TokNumber)
					if err != nil {
						return nil, err
					}
					if n.Num <= 0 {
						return nil, errf(n.Pos, "array length must be positive, got %d", n.Num)
					}
					d.ArrayLen = n.Num
					if _, err := p.expect(TokRBracket); err != nil {
						return nil, err
					}
				}
				blk.Vars = append(blk.Vars, d)
				if ok, err := p.accept(TokComma); err != nil {
					return nil, err
				} else if !ok {
					break
				}
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}

		case TokProcedure:
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			proc := &Proc{Pos: name.Pos, Name: name.Text}
			if ok, err := p.accept(TokLParen); err != nil {
				return nil, err
			} else if ok {
				if p.tok.Kind != TokRParen {
					for {
						pn, err := p.expect(TokIdent)
						if err != nil {
							return nil, err
						}
						proc.Params = append(proc.Params, Param{Pos: pn.Pos, Name: pn.Text})
						if ok, err := p.accept(TokComma); err != nil {
							return nil, err
						} else if !ok {
							break
						}
					}
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			proc.Block = body
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			blk.Procs = append(blk.Procs, proc)

		default:
			stmt, err := p.statement()
			if err != nil {
				return nil, err
			}
			blk.Body = stmt
			return blk, nil
		}
	}
}

// statement = ident [ "[" expr "]" ] ":=" expr
//
//	| "call" ident ["(" args ")"]
//	| "begin" statement {";" statement} "end"
//	| "if" condition "then" statement ["else" statement]
//	| "while" condition "do" statement
//	| "write" expr .
func (p *parser) statement() (Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		st := &AssignStmt{Pos: pos, Name: name}
		if ok, err := p.accept(TokLBracket); err != nil {
			return nil, err
		} else if ok {
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			st.Index = idx
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Value = val
		return st, nil

	case TokCall:
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		st := &CallStmt{Pos: pos, Name: name.Text}
		args, err := p.callArgs()
		if err != nil {
			return nil, err
		}
		st.Args = args
		return st, nil

	case TokBegin:
		if err := p.advance(); err != nil {
			return nil, err
		}
		st := &BeginStmt{Pos: pos}
		for {
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			st.List = append(st.List, s)
			if ok, err := p.accept(TokSemi); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if _, err := p.expect(TokEnd); err != nil {
			return nil, err
		}
		return st, nil

	case TokIf:
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.condition()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokThen); err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Pos: pos, Cond: cond, Then: then}
		if ok, err := p.accept(TokElse); err != nil {
			return nil, err
		} else if ok {
			els, err := p.statement()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case TokWhile:
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.condition()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokDo); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil

	case TokWrite:
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &WriteStmt{Pos: pos, Value: v}, nil
	}
	return nil, errf(pos, "expected statement, got %s", p.tok.Kind)
}

// callArgs parses an optional parenthesized argument list.
func (p *parser) callArgs() ([]Expr, error) {
	ok, err := p.accept(TokLParen)
	if err != nil || !ok {
		return nil, err
	}
	var args []Expr
	if p.tok.Kind != TokRParen {
		for {
			a, err := p.expression()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if ok, err := p.accept(TokComma); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

// condition = "odd" expr | expr relop expr .
func (p *parser) condition() (Cond, error) {
	pos := p.tok.Pos
	if ok, err := p.accept(TokOdd); err != nil {
		return nil, err
	} else if ok {
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &OddCond{Pos: pos, X: x}, nil
	}
	a, err := p.expression()
	if err != nil {
		return nil, err
	}
	op := p.tok.Kind
	switch op {
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
	default:
		return nil, errf(p.tok.Pos, "expected relational operator, got %s", op)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	b, err := p.expression()
	if err != nil {
		return nil, err
	}
	return &RelCond{Pos: pos, Op: op, A: a, B: b}, nil
}

// expression = ["+"|"-"] term {("+"|"-") term} .
func (p *parser) expression() (Expr, error) {
	pos := p.tok.Pos
	neg := false
	if p.tok.Kind == TokPlus || p.tok.Kind == TokMinus {
		neg = p.tok.Kind == TokMinus
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	e, err := p.term()
	if err != nil {
		return nil, err
	}
	if neg {
		e = &UnaryExpr{Pos: pos, X: e}
	}
	for p.tok.Kind == TokPlus || p.tok.Kind == TokMinus {
		op := p.tok.Kind
		opPos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		e = &BinExpr{Pos: opPos, Op: op, L: e, R: r}
	}
	return e, nil
}

// term = factor {("*"|"/") factor} .
func (p *parser) term() (Expr, error) {
	e, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokStar || p.tok.Kind == TokSlash {
		op := p.tok.Kind
		opPos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		e = &BinExpr{Pos: opPos, Op: op, L: e, R: r}
	}
	return e, nil
}

// factor = ident ["[" expr "]" | "(" args ")"] | number | "(" expr ")" .
func (p *parser) factor() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.Kind {
		case TokLBracket:
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: pos, Name: name, Index: idx}, nil
		case TokLParen:
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Pos: pos, Name: name, Args: args}, nil
		}
		return &Ident{Pos: pos, Name: name}, nil

	case TokNumber:
		v := p.tok.Num
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumberExpr{Pos: pos, Val: v}, nil

	case TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(pos, "expected expression, got %s", p.tok.Kind)
}
