// Package pl0 implements a PL/0-style procedural front end: a second
// source language beside Mini-Fortran, in the spirit of Wirth's PL/0
// and of is-hoku/pl0dash-go's recursive-descent compiler.  The dialect
// keeps PL/0's shape — const/var/procedure declarations, nested
// procedures with lexical scoping, begin/end, if/then/else, while/do,
// call, odd — and adds what the optimizer study needs:
//
//   - procedures take by-value integer parameters and return a value
//     Pascal-style, by assignment to the procedure's own name, so
//     call-heavy and recursive workloads (gcd, ackermann) are
//     expressible;
//   - a small array extension, "var a[n]" with subscripted load/store,
//     so loop nests emit real 1-based address arithmetic — the §3.1
//     shape whose redundancy only appears after reassociation;
//   - "write e" prints a value through the interpreter's print builtin,
//     giving workloads observable output.
//
// Lowering is deliberately naive, exactly like the Mini-Fortran front
// end: every expression node gets a fresh temporary, every assignment
// is a copy, array addresses are left-associated base+(i-1)*8 chains,
// and branch targets are backpatched after their blocks exist.  Nested
// procedures are scope-flattened onto top-level ir.Funcs with dotted
// names ("outer.inner"); variables referenced from an inner procedure
// are demoted to statically allocated memory slots (a FORTRAN-style
// deviation from PL/0's display/static-link semantics — see DESIGN.md
// §18), which conveniently turns up-level traffic into the load/store
// redundancy PRE is paid to remove.
package pl0

import "repro/internal/ir"

// Compile translates PL/0 source into an unoptimized, structurally
// verified ILOC program.  The program's entry function is "main" (the
// top-level block); each procedure becomes its own function under its
// scope-flattened name.
func Compile(src string) (*ir.Program, error) {
	ast, err := parse(src)
	if err != nil {
		return nil, err
	}
	root, err := analyze(ast)
	if err != nil {
		return nil, err
	}
	prog, err := lower(root)
	if err != nil {
		return nil, err
	}
	if err := ir.VerifyProgram(prog); err != nil {
		return nil, err
	}
	return prog, nil
}
