package pl0

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/interp"
	"repro/internal/ir"
)

// run compiles src and calls fn with integer args, returning the result.
func run(t *testing.T, src, fn string, args ...int64) (int64, []interp.Value) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := interp.NewMachine(prog)
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	got, err := m.Call(fn, vals...)
	if err != nil {
		t.Fatalf("Call(%s): %v", fn, err)
	}
	return got.I, m.Output
}

func TestLexer(t *testing.T) {
	lx := newLexer("const n = 10; (* comment *) x := n <= 3 # 4 >= a[2].")
	var kinds []Kind
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatalf("lex: %v", err)
		}
		kinds = append(kinds, tok.Kind)
		if tok.Kind == TokEOF {
			break
		}
	}
	want := []Kind{
		TokConst, TokIdent, TokEq, TokNumber, TokSemi,
		TokIdent, TokAssign, TokIdent, TokLe, TokNumber, TokNe,
		TokNumber, TokGe, TokIdent, TokLBracket, TokNumber, TokRBracket,
		TokPeriod, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"(* open", "x : y", "?", "99999999999999999999"} {
		lx := newLexer(src)
		var err error
		for i := 0; i < 10 && err == nil; i++ {
			var tok Token
			tok, err = lx.Next()
			if tok.Kind == TokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("lex(%q): expected error", src)
		}
	}
}

func TestCompileSimple(t *testing.T) {
	got, out := run(t, `
		procedure answer;
		answer := 6 * 7;
		write 42.
	`, "main")
	if got != 0 {
		t.Fatalf("main returned %d, want 0", got)
	}
	if len(out) != 1 || out[0].I != 42 {
		t.Fatalf("output = %v, want [42]", out)
	}
}

func TestProcReturn(t *testing.T) {
	src := `
		procedure square(x);
		square := x * x;
		write square(9).
	`
	got, out := run(t, src, "square", 12)
	if got != 144 {
		t.Fatalf("square(12) = %d, want 144", got)
	}
	if len(out) != 0 {
		t.Fatalf("square printed %v", out)
	}
	_, out = run(t, src, "main")
	if len(out) != 1 || out[0].I != 81 {
		t.Fatalf("main output = %v, want [81]", out)
	}
}

func TestRecursionGCD(t *testing.T) {
	src := `
		procedure gcd(a, b);
		if b = 0 then gcd := a
		else begin
			gcd := gcd(b, a - (a / b) * b)
		end;
		write gcd(1071, 462).
	`
	got, _ := run(t, src, "gcd", 1071, 462)
	if got != 21 {
		t.Fatalf("gcd(1071,462) = %d, want 21", got)
	}
}

func TestWhileOddNeg(t *testing.T) {
	// Collatz step count from 27 (111 steps) exercises while, odd, and
	// division; the negation checks odd on negative values.
	src := `
		procedure collatz(n);
		var steps;
		begin
			steps := 0;
			while n # 1 do begin
				if odd n then n := 3 * n + 1
				else n := n / 2;
				steps := steps + 1
			end;
			collatz := steps
		end;
		procedure oddneg(n);
		if odd n then oddneg := 1 else oddneg := 0;
		write collatz(27).
	`
	got, _ := run(t, src, "collatz", 27)
	if got != 111 {
		t.Fatalf("collatz(27) = %d, want 111", got)
	}
	if got, _ := run(t, src, "oddneg", -3); got != 1 {
		t.Fatalf("oddneg(-3) = %d, want 1", got)
	}
	if got, _ := run(t, src, "oddneg", -4); got != 0 {
		t.Fatalf("oddneg(-4) = %d, want 0", got)
	}
}

func TestArrays(t *testing.T) {
	// Fill a[i] = i*i, then sum.
	src := `
		procedure sumsq(n);
		var a[50], i, s;
		begin
			i := 1;
			while i <= n do begin
				a[i] := i * i;
				i := i + 1
			end;
			s := 0;
			i := 1;
			while i <= n do begin
				s := s + a[i];
				i := i + 1
			end;
			sumsq := s
		end;
		write sumsq(10).
	`
	got, _ := run(t, src, "sumsq", 10)
	if got != 385 {
		t.Fatalf("sumsq(10) = %d, want 385", got)
	}
}

func TestNestedCapture(t *testing.T) {
	// An inner procedure reads and writes its parent's locals.
	src := `
		procedure outer(n);
		var acc, i;
			procedure bump;
			acc := acc + i * i;
		begin
			acc := 0;
			i := 1;
			while i <= n do begin
				call bump;
				i := i + 1
			end;
			outer := acc
		end;
		write outer(4).
	`
	got, _ := run(t, src, "outer", 4)
	if got != 30 {
		t.Fatalf("outer(4) = %d, want 30", got)
	}
	// Fresh activations must re-zero captured locals.
	got, _ = run(t, `
		procedure f(n);
		var acc;
			procedure g;
			acc := acc + n;
		begin
			call g;
			call g;
			f := acc
		end;
		procedure twice(n);
		begin
			call f(n);
			twice := f(n)
		end;
		write twice(5).
	`, "twice", 5)
	if got != 10 {
		t.Fatalf("twice(5) = %d, want 10 (captured acc not re-zeroed)", got)
	}
}

func TestConstScopingShadowing(t *testing.T) {
	src := `
		const k = 7;
		var g;
		procedure inner;
		const k = 100;
		inner := k;
		procedure outerk;
		outerk := k;
		begin
			g := 1;
			write g
		end.
	`
	if got, _ := run(t, src, "inner"); got != 100 {
		t.Fatalf("inner = %d, want 100 (shadowing broken)", got)
	}
	if got, _ := run(t, src, "outerk"); got != 7 {
		t.Fatalf("outerk = %d, want 7", got)
	}
}

func TestMutualRecursion(t *testing.T) {
	// isEven/isOdd by mutual recursion: later siblings are callable.
	src := `
		procedure iseven(n);
		if n = 0 then iseven := 1 else iseven := isodd(n - 1);
		procedure isodd(n);
		if n = 0 then isodd := 0 else isodd := iseven(n - 1);
		write iseven(10).
	`
	if got, _ := run(t, src, "iseven", 10); got != 1 {
		t.Fatalf("iseven(10) = %d, want 1", got)
	}
	if got, _ := run(t, src, "isodd", 7); got != 1 {
		t.Fatalf("isodd(7) = %d, want 1", got)
	}
}

func TestFlattenedNames(t *testing.T) {
	src := `
		procedure a;
			procedure b;
				procedure c;
				c := 3;
			b := c() + 2;
		a := b() + 1;
		write a().
	`
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var names []string
	for _, f := range prog.Funcs {
		names = append(names, f.Name)
	}
	want := []string{"main", "a", "a.b", "a.b.c"}
	if len(names) != len(want) {
		t.Fatalf("funcs = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("funcs = %v, want %v", names, want)
		}
	}
	m := interp.NewMachine(prog)
	got, err := m.Call("a")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.I != 6 {
		t.Fatalf("a() = %d, want 6", got.I)
	}
}

func TestUnaryAndPrecedence(t *testing.T) {
	got, out := run(t, `
		begin
			write -3 + 4 * 5;
			write (2 + 3) * (7 - 5);
			write -(2 + 3);
			write 17 / 5;
			write -17 / 5
		end.
	`, "main")
	_ = got
	want := []int64{17, 10, -5, 3, -3}
	if len(out) != len(want) {
		t.Fatalf("output %v, want %v", out, want)
	}
	for i, w := range want {
		if out[i].I != w {
			t.Fatalf("output[%d] = %d, want %d", i, out[i].I, w)
		}
	}
}

func TestVerifyAndRoundTrip(t *testing.T) {
	src := `
		var total;
		procedure fib(n);
		if n < 2 then fib := n
		else fib := fib(n - 1) + fib(n - 2);
		begin
			total := fib(10);
			write total
		end.
	`
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	text := prog.String()
	back, err := ir.ParseProgramString(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.String() != text {
		t.Fatalf("print/parse round trip not stable")
	}
	diags := check.Program(prog, check.Options{})
	if errs := check.Errors(diags); len(errs) != 0 {
		t.Fatalf("checker: %v", errs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"", "expected statement"},
		{"x := 1", "expected '.'"},
		{"begin x := 1 end.", "undefined name x"},
		{"var x; x := .", "expected expression"},
		{"var x; if x then x := 1.", "expected relational operator"},
		{"var x; x := (1 + 2.", "expected ')'"},
		{"const c = 1; c := 2.", "cannot assign to constant"},
		{"var a[3]; a := 1.", "without a subscript"},
		{"var a[3], a; a[1] := 1.", "redeclared"},
		{"var x; x[1] := 2.", "not an array"},
		{"var x; x := y.", "undefined name y"},
		{"var x; procedure p; p := 1; x := p.", "procedure p used as a value"},
		{"procedure p; p := 1; begin call p(1) end.", "takes 0 arguments, got 1"},
		{"procedure p(a, b); p := a + b; begin call p(1) end.", "takes 2 arguments, got 1"},
		{"procedure main; main := 1; write 1.", "reserved"},
		{"var a[0]; a[1] := 1.", "array length must be positive"},
		{"procedure q; q := 1; q := 2.", "cannot assign to procedure"},
		{"var x; begin x := 1; write x end. extra", "trailing input"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("Compile(%q): expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q): error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestStaticLayout(t *testing.T) {
	src := `
		var g, a[4];
		procedure p(x);
			procedure q;
			q := x;
		p := q();
		begin
			g := 2;
			a[1] := p(5);
			write a[1] + g
		end.
	`
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// g captured? no — only main uses g, but p's x is captured by q.
	// Layout: a (32 bytes) + x (8) = 40; g stays in a register.
	if prog.GlobalSize != 40 {
		t.Fatalf("GlobalSize = %d, want 40", prog.GlobalSize)
	}
	m := interp.NewMachine(prog)
	if _, err := m.Call("main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(m.Output) != 1 || m.Output[0].I != 7 {
		t.Fatalf("output = %v, want [7]", m.Output)
	}
}
