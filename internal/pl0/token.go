package pl0

import "fmt"

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	TokEOF Kind = iota
	TokIdent
	TokNumber

	// Keywords.
	TokConst
	TokVar
	TokProcedure
	TokCall
	TokBegin
	TokEnd
	TokIf
	TokThen
	TokElse
	TokWhile
	TokDo
	TokOdd
	TokWrite

	// Punctuation and operators.
	TokPeriod   // .
	TokComma    // ,
	TokSemi     // ;
	TokAssign   // :=
	TokEq       // =
	TokNe       // #
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
)

var kindNames = map[Kind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokNumber: "number",
	TokConst: "'const'", TokVar: "'var'", TokProcedure: "'procedure'",
	TokCall: "'call'", TokBegin: "'begin'", TokEnd: "'end'", TokIf: "'if'",
	TokThen: "'then'", TokElse: "'else'", TokWhile: "'while'", TokDo: "'do'",
	TokOdd: "'odd'", TokWrite: "'write'",
	TokPeriod: "'.'", TokComma: "','", TokSemi: "';'", TokAssign: "':='",
	TokEq: "'='", TokNe: "'#'", TokLt: "'<'", TokLe: "'<='", TokGt: "'>'",
	TokGe: "'>='", TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'",
	TokSlash: "'/'", TokLParen: "'('", TokRParen: "')'",
	TokLBracket: "'['", TokRBracket: "']'",
}

// String names the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"const": TokConst, "var": TokVar, "procedure": TokProcedure,
	"call": TokCall, "begin": TokBegin, "end": TokEnd, "if": TokIf,
	"then": TokThen, "else": TokElse, "while": TokWhile, "do": TokDo,
	"odd": TokOdd, "write": TokWrite,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // identifier text
	Num  int64  // number literal value
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("pl0:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
