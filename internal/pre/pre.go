// Package pre implements partial redundancy elimination.
//
// The formulation follows Drechsler and Stadel's simplification of
// Morel–Renvoise (the variant the paper says it uses, §4: "Our
// implementation of PRE uses a variation described by Drechsler and
// Stadel.  Their formulation supports edge placement for enhanced
// optimization and simplifies the data-flow equations...").  The
// equations are the unidirectional lazy-code-motion system:
//
//	ANTIN(b)  = ANTLOC(b) ∪ (ANTOUT(b) ∩ TRANSP(b))
//	ANTOUT(b) = ⋂ ANTIN(succ)                      (∅ at exits)
//	AVIN(b)   = ⋂ AVOUT(pred)                      (∅ at entry)
//	AVOUT(b)  = COMP(b) ∪ (AVIN(b) ∩ TRANSP(b))
//
//	EARLIEST(i→j) = ANTIN(j) ∩ ¬AVOUT(i) ∩ (¬TRANSP(i) ∪ ¬ANTOUT(i))
//	LATER(i→j)    = EARLIEST(i→j) ∪ (LATERIN(i) ∩ ¬ANTLOC(i))
//	LATERIN(j)    = ⋂ LATER(i→j)                   (∅ at entry)
//
//	INSERT(i→j) = LATER(i→j) ∩ ¬LATERIN(j)
//	DELETE(b)   = ANTLOC(b) ∩ ¬LATERIN(b)
//
// Insertions land on edges; the pass splits critical edges first so
// every insertion point is the end of a one-successor block or the top
// of a one-predecessor block.  The transformation never lengthens an
// execution path (paper §2).
package pre

import (
	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// Stats reports what one PRE run did to a function.
type Stats struct {
	Exprs         int // size of the expression universe
	Inserted      int // computations inserted on edges / block boundaries
	Rewritten     int // Mode B computations replaced by copies
	Deleted       int // Mode A computations removed outright
	ModeA         int // expressions handled under the naming discipline
	EdgesSplit    int // critical edges split
	RemovedBlocks int // unreachable blocks dropped before analysis
	Rounds        int // iterations used by RunToFixpoint
}

// Changed reports whether the run made optimization progress — the
// fixpoint driver's termination condition.
func (s Stats) Changed() bool { return s.Inserted+s.Rewritten+s.Deleted > 0 }

// Mutated reports whether the run modified the function at all,
// including CFG surgery (edge splits, unreachable-block removal) that
// Changed does not count as progress.
func (s Stats) Mutated() bool {
	return s.Changed() || s.EdgesSplit+s.RemovedBlocks > 0
}

// MaxRounds bounds RunToFixpoint; each round can hoist one more level
// of an expression chain, so the bound corresponds to the deepest
// expression tree worth chasing.
const MaxRounds = 32

// RunToFixpoint applies Run repeatedly until PRE finds nothing more.
// A single application moves each expression at most one level (the
// computation of an operand blocks upward exposure of its parents);
// iterating is what hoists whole invariant chains out of loops, as in
// the paper's Figure 9.
func RunToFixpoint(f *ir.Func) Stats {
	return RunToFixpointWith(f, analysis.NewCache(f))
}

// RunToFixpointWith is RunToFixpoint drawing CFG analyses from the
// given cache.
func RunToFixpointWith(f *ir.Func, ac *analysis.Cache) Stats {
	var total Stats
	for i := 0; i < MaxRounds; i++ {
		st := RunWith(f, ac)
		total.Inserted += st.Inserted
		total.Rewritten += st.Rewritten
		total.Deleted += st.Deleted
		total.EdgesSplit += st.EdgesSplit
		total.RemovedBlocks += st.RemovedBlocks
		total.ModeA = st.ModeA
		total.Exprs = st.Exprs
		total.Rounds++
		if !st.Changed() {
			break
		}
	}
	return total
}

// Run performs partial redundancy elimination on f and returns
// statistics.  The function is modified in place.
func Run(f *ir.Func) Stats {
	return RunWith(f, analysis.NewCache(f))
}

// RunWith is Run drawing CFG analyses from the given cache.
func RunWith(f *ir.Func, ac *analysis.Cache) Stats {
	var st Stats
	st.RemovedBlocks = ac.RemoveUnreachable()
	st.EdgesSplit = cfg.SplitCriticalEdges(f)
	u := dataflow.BuildUniverse(f)
	defer u.Release()
	n := u.NumExprs()
	st.Exprs = n
	if n == 0 {
		return st
	}
	rpo := ac.RPO()
	nb := len(f.Blocks)

	// All dataflow vectors below are function-local: they come from the
	// scratch pool and go back wholesale when the run finishes.  One
	// extra vector (tmp) absorbs every per-iteration intermediate that
	// used to be a fresh Copy.
	var bw borrower
	defer bw.release()
	tmp := bw.get(n)

	// --- Anticipability (backward) ---
	antin := bw.perBlock(nb, n)
	antout := bw.perBlock(nb, n)
	for _, b := range f.Blocks {
		antin[b.ID].SetAll()
	}
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := antout[b.ID]
			if len(b.Succs) == 0 {
				out.ClearAll()
			} else {
				out.SetAll()
				for _, s := range b.Succs {
					out.Intersect(antin[s.ID])
				}
			}
			tmp.CopyFrom(out)
			tmp.Intersect(u.Transp[b.ID])
			tmp.Union(u.AntLoc[b.ID])
			if !tmp.Equal(antin[b.ID]) {
				antin[b.ID].CopyFrom(tmp)
				changed = true
			}
		}
	}

	// --- Availability (forward) ---
	avin := bw.perBlock(nb, n)
	avout := bw.perBlock(nb, n)
	for _, b := range f.Blocks {
		if b != f.Entry() {
			avout[b.ID].SetAll()
		} else {
			avout[b.ID].CopyFrom(u.Comp[b.ID])
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			in := avin[b.ID]
			if len(b.Preds) == 0 {
				in.ClearAll()
			} else {
				in.SetAll()
				for _, p := range b.Preds {
					in.Intersect(avout[p.ID])
				}
			}
			tmp.CopyFrom(in)
			tmp.Intersect(u.Transp[b.ID])
			tmp.Union(u.Comp[b.ID])
			if !tmp.Equal(avout[b.ID]) {
				avout[b.ID].CopyFrom(tmp)
				changed = true
			}
		}
	}

	// --- EARLIEST on edges (plus the virtual entry edge) ---
	type edge struct {
		from, to *ir.Block // from == nil for the virtual entry edge
	}
	edges := make([]edge, 0, nb+1)
	edges = append(edges, edge{nil, f.Entry()})
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			edges = append(edges, edge{b, s})
		}
	}
	earliest := bw.perEdge(len(edges), n)
	for ei, e := range edges {
		set := earliest[ei]
		set.CopyFrom(antin[e.to.ID])
		if e.from != nil {
			set.Subtract(avout[e.from.ID])
			// ∩ (¬TRANSP(i) ∪ ¬ANTOUT(i)):
			tmp.CopyFrom(u.Transp[e.from.ID])
			tmp.Intersect(antout[e.from.ID])
			set.Subtract(tmp)
		}
	}

	// --- LATER / LATERIN (forward over edges, greatest fixed point) ---
	// The virtual entry edge gives LATERIN(entry) = EARLIEST(v→entry) =
	// ANTIN(entry), so nothing in the entry block is ever deleted and
	// no insertion lands before the procedure starts.
	laterin := bw.perBlock(nb, n)
	for _, b := range f.Blocks {
		laterin[b.ID].SetAll()
	}
	later := bw.perEdge(len(edges), n)
	for ei := range edges {
		later[ei].SetAll()
	}
	recompute := bw.perBlock(nb, n)
	for changed := true; changed; {
		changed = false
		for ei, e := range edges {
			tmp.CopyFrom(earliest[ei])
			if e.from != nil {
				// ∪ (LATERIN(i) ∩ ¬ANTLOC(i)), without materializing
				// the intermediate: x ∪ (y ∖ z) word-wise.
				tmp.UnionDiff(laterin[e.from.ID], u.AntLoc[e.from.ID])
			}
			if !tmp.Equal(later[ei]) {
				later[ei].CopyFrom(tmp)
				changed = true
			}
		}
		for _, b := range f.Blocks {
			recompute[b.ID].SetAll()
		}
		for ei, e := range edges {
			recompute[e.to.ID].Intersect(later[ei])
		}
		for _, b := range f.Blocks {
			if !recompute[b.ID].Equal(laterin[b.ID]) {
				laterin[b.ID].CopyFrom(recompute[b.ID])
				changed = true
			}
		}
	}

	// --- INSERT / DELETE ---
	insert := bw.perEdge(len(edges), n)
	for ei, e := range edges {
		set := insert[ei]
		set.CopyFrom(later[ei])
		set.Subtract(laterin[e.to.ID])
	}
	del := bw.perBlock(nb, n)
	for _, b := range f.Blocks {
		set := del[b.ID]
		set.CopyFrom(u.AntLoc[b.ID])
		set.Subtract(laterin[b.ID])
	}

	// --- Allocate temporaries for interesting expressions ---
	//
	// Two modes, chosen per expression:
	//
	// Mode A (the paper's naming discipline, §2.2): when every
	// occurrence of e computes into the same register t, t has no other
	// definitions, t is not an operand of e, and every use of t is
	// local to a block that defines it first (the §5.1 rule), then t
	// itself is the temporary: insertions compute "t ← e" and deleted
	// occurrences are removed outright, with no compensation copies.
	// After GVN and normalization this mode almost always applies, and
	// it is what lets iterated PRE hoist chained expressions
	// (Figure 9 hoists both r6←r0+1 and r7←r6+r1).
	//
	// Mode B (fresh temporaries): otherwise a fresh register h carries
	// e; deletions become copies from h and surviving occurrences are
	// rewritten to "h ← e; t ← copy h".  This mode is safe on arbitrary
	// input code that ignores the naming discipline.
	temp := ac.BorrowRegs(n)
	defer ac.ReturnRegs(temp)
	modeA := ac.BorrowBools(n)
	defer ac.ReturnBools(modeA)
	interesting := bw.get(n)
	for ei := range edges {
		interesting.Union(insert[ei])
	}
	for _, b := range f.Blocks {
		interesting.Union(del[b.ID])
	}
	canon := canonicalDsts(f, u, ac)
	defer ac.ReturnRegs(canon)
	// Mode A applies to every canonically named expression, not just
	// the ones with global insert/delete sets: the same scan then also
	// removes block-local recomputations (classic PRE presentations
	// assume a local CSE ran; under the naming discipline the two
	// coincide).
	for e := 0; e < n; e++ {
		if t := canon[e]; t != ir.NoReg {
			temp[e] = t
			modeA[e] = true
			st.ModeA++
		} else if interesting.Has(e) {
			temp[e] = f.NewReg()
		}
	}

	// --- Perform insertions ---
	insertedInstr := map[*ir.Instr]bool{}
	for ei, e := range edges {
		set := insert[ei]
		if set.Empty() {
			continue
		}
		var at *ir.Block
		var atTop bool
		switch {
		case e.from == nil:
			at, atTop = e.to, true
		case len(e.from.Succs) == 1:
			at, atTop = e.from, false
		case len(e.to.Preds) == 1:
			at, atTop = e.to, true
		default:
			// Cannot happen: critical edges were split.
			at = cfg.SplitEdge(e.from, e.to)
			atTop = false
			st.EdgesSplit++
		}
		set.ForEach(func(x int) {
			in := u.MakeInstr(x, temp[x])
			insertedInstr[in] = true
			if atTop {
				pos := 0
				for pos < len(at.Instrs) && (at.Instr(pos).Op == ir.OpPhi || at.Instr(pos).Op == ir.OpEnter) {
					pos++
				}
				at.InsertAt(pos, in)
			} else {
				at.Append(in)
			}
			st.Inserted++
		})
	}

	// --- Rewrite original computations ---
	hValid := bw.get(n)
	for _, b := range f.Blocks {
		hValid.CopyFrom(del[b.ID])
		hValid.Intersect(interesting)
		kept := make([]ir.InstrID, 0, len(b.Instrs))
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if insertedInstr[in] {
				// Our own insertion: it validates the temp and is
				// never a deletion candidate.
				if k, ok := dataflow.KeyOf(in); ok {
					if e, found := u.Index[k]; found {
						hValid.Set(e)
					}
				}
				kept = append(kept, inID)
				continue
			}
			dstForKill := in.Dst
			if k, ok := dataflow.KeyOf(in); ok {
				if e, found := u.Index[k]; found && (modeA[e] || interesting.Has(e)) {
					switch {
					case modeA[e] && hValid.Has(e):
						// Redundant under the naming discipline: the
						// canonical register already holds the value.
						// Delete the computation outright.
						st.Deleted++
						continue
					case modeA[e]:
						hValid.Set(e)
					case hValid.Has(e):
						// Mode B redundant: copy from the temp.
						kept = append(kept, f.NewCopy(in.Dst, temp[e]).ID())
						st.Rewritten++
						killScan(u, hValid, n, dstForKill, false)
						continue
					default:
						// Mode B first (or post-kill) computation:
						// compute into the temp, then copy out.
						kept = append(kept, u.MakeInstr(e, temp[e]).ID(), f.NewCopy(in.Dst, temp[e]).ID())
						hValid.Set(e)
						st.Rewritten++
						killScan(u, hValid, n, dstForKill, false)
						continue
					}
				}
			}
			kept = append(kept, inID)
			killScan(u, hValid, n, dstForKill, in.Op.WritesMemory())
		}
		b.Instrs = kept
	}
	if st.Changed() {
		// The kept-slice rewrites above bypass the Block helpers.
		f.MarkCodeMutated()
	}
	return st
}

// killScan clears hValid entries invalidated by a definition of dst
// and, when memWrite is set, by a potential memory write (loads).
func killScan(u *dataflow.Universe, hValid *dataflow.BitSet, n int, dst ir.Reg, memWrite bool) {
	if memWrite {
		for e := 0; e < n; e++ {
			if u.IsLoad[e] && hValid.Has(e) {
				hValid.Clear(e)
			}
		}
	}
	if dst == ir.NoReg {
		return
	}
	for e := 0; e < n; e++ {
		if !hValid.Has(e) {
			continue
		}
		if k := u.Keys[e]; k.A == dst || k.B == dst {
			hValid.Clear(e)
		}
	}
}

// canonicalDsts finds, for each expression, the Mode A canonical
// destination register, or NoReg when the conditions fail.  The
// returned slice is borrowed from the cache's arena; the caller
// returns it with ReturnRegs.
func canonicalDsts(f *ir.Func, u *dataflow.Universe, ac *analysis.Cache) []ir.Reg {
	n := u.NumExprs()
	canon := ac.BorrowRegs(n)
	for i := range canon {
		canon[i] = ir.Reg(-1) // unseen
	}
	defCount := ac.BorrowInts(f.NumRegs())
	defer ac.ReturnInts(defCount)
	exprDefCount := ac.BorrowInts(n)
	defer ac.ReturnInts(exprDefCount)
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpEnter {
			for _, p := range in.Args {
				defCount[p]++
			}
			return
		}
		if in.Dst != ir.NoReg {
			defCount[in.Dst]++
		}
		if k, ok := dataflow.KeyOf(in); ok {
			if e, found := u.Index[k]; found {
				exprDefCount[e]++
				switch {
				case canon[e] == ir.Reg(-1):
					canon[e] = in.Dst
				case canon[e] != in.Dst:
					canon[e] = ir.NoReg // mixed destinations
				}
			}
		}
	})
	// Reject: other defs of t, t an operand of e, or t used non-locally.
	nonLocalUse := ac.BorrowBools(f.NumRegs())
	defer ac.ReturnBools(nonLocalUse)
	definedHere := ac.BorrowInts(f.NumRegs())
	defer ac.ReturnInts(definedHere)
	gen := 0
	for _, b := range f.Blocks {
		gen++
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op != ir.OpEnter {
				for _, a := range in.Args {
					if definedHere[a] != gen {
						nonLocalUse[a] = true
					}
				}
			}
			if in.Dst != ir.NoReg {
				definedHere[in.Dst] = gen
			}
		}
	}
	for e := 0; e < n; e++ {
		t := canon[e]
		if t == ir.Reg(-1) || t == ir.NoReg {
			canon[e] = ir.NoReg
			continue
		}
		k := u.Keys[e]
		if defCount[t] != exprDefCount[e] || k.A == t || k.B == t || nonLocalUse[t] {
			canon[e] = ir.NoReg
		}
	}
	return canon
}

// borrower tracks the scratch vectors one PRE run draws from the
// shared pool so release can hand every one of them back at once.
// Only the vectors — the actual allocation churn — are pooled; the
// small per-block/per-edge pointer tables are not worth the
// bookkeeping.
type borrower struct {
	borrowed []*dataflow.BitSet
}

// get borrows one empty capacity-n vector.
func (bw *borrower) get(n int) *dataflow.BitSet {
	s := dataflow.GetScratch(n)
	bw.borrowed = append(bw.borrowed, s)
	return s
}

// perBlock returns a block-indexed family of empty capacity-n vectors.
// Families are bulk-allocated (dataflow.NewBitSetFamily) rather than
// pooled: one PRE round holds several families at once — more sets
// than the pool retains across GC cycles — so pooling them mostly
// missed.  Bulk families die with the run instead of being released.
func (bw *borrower) perBlock(nb, n int) []*dataflow.BitSet {
	return dataflow.NewBitSetFamily(nb, n)
}

// perEdge borrows an edge-indexed family of empty capacity-n vectors.
func (bw *borrower) perEdge(ne, n int) []*dataflow.BitSet {
	return bw.perBlock(ne, n)
}

// release returns every borrowed vector to the pool.
func (bw *borrower) release() {
	for _, s := range bw.borrowed {
		dataflow.PutScratch(s)
	}
	bw.borrowed = nil
}
