package pre_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/coalesce"
	"repro/internal/dce"
	"repro/internal/gvn"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pre"
)

func run(t *testing.T, f *ir.Func, fn string, args ...int64) (int64, int64) {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(fn, vals...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v.I, m.Steps
}

// TestSection2IfExample reproduces the paper's first §2 figure: x+y
// computed in the then-arm and again after the join.  PRE must insert
// on the else path and delete the join computation, so the then path
// gets shorter and the else path stays the same length.
func TestSection2IfExample(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    cbr r1 -> b1, b2
b1:
    add r1, r2 => r3
    jump -> b3
b2:
    loadI 7 => r4
    jump -> b3
b3:
    add r1, r2 => r3
    ret r3
}
`
	f := ir.MustParseFunc(src)
	wantThen, thenBefore := run(t, f, "f", 1, 2)
	wantElse, elseBefore := run(t, f, "f", 0, 2)

	st := pre.Run(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	gotThen, thenAfter := run(t, f, "f", 1, 2)
	gotElse, elseAfter := run(t, f, "f", 0, 2)
	if gotThen != wantThen || gotElse != wantElse {
		t.Fatalf("semantics changed: (%d,%d) vs (%d,%d)", gotThen, gotElse, wantThen, wantElse)
	}
	if thenAfter >= thenBefore {
		t.Errorf("then path should shorten: %d -> %d\n%s", thenBefore, thenAfter, f)
	}
	if elseAfter > elseBefore {
		t.Errorf("else path lengthened: %d -> %d\n%s", elseBefore, elseAfter, f)
	}
	if st.Inserted == 0 || st.Deleted+st.Rewritten == 0 {
		t.Errorf("stats show no motion: %+v", st)
	}
}

// TestSection2LoopInvariant reproduces the paper's second §2 figure:
// x+y inside a loop, available along the back edge but not from the
// preheader.  PRE must hoist it.
func TestSection2LoopInvariant(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    add r1, r2 => r6
    add r4, r6 => r4
    loadI 1 => r7
    add r5, r7 => r5
    cmpLT r5, r3 => r8
    cbr r8 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	want, before := run(t, f, "f", 3, 4, 10)
	pre.RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got, after := run(t, f, "f", 3, 4, 10)
	if got != want {
		t.Fatalf("semantics changed: %d vs %d", got, want)
	}
	if after >= before {
		t.Errorf("loop invariant not hoisted: %d -> %d ops\n%s", before, after, f)
	}
	// The add must now execute once, not ten times: at least 9 ops saved.
	if before-after < 9 {
		t.Errorf("expected ≥9 ops saved, got %d\n%s", before-after, f)
	}
}

// TestChainedHoisting checks the Figure 9 effect: a two-level
// invariant chain (r0+1 then (r0+1)+r1) fully hoists via iteration.
func TestChainedHoisting(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    loadI 1 => r6
    add r1, r6 => r7
    add r7, r2 => r8
    add r4, r8 => r4
    loadI 1 => r9
    add r5, r9 => r5
    cmpLT r5, r3 => r10
    cbr r10 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, "f", 3, 4, 10)
	// GVN first, as the paper's pipeline does: the naming discipline is
	// what lets iterated PRE hoist the chain without compensation
	// copies pinning it.
	gvn.Run(f)
	st := pre.RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got, _ := run(t, f, "f", 3, 4, 10)
	if got != want {
		t.Fatalf("semantics changed: %d vs %d", got, want)
	}
	t.Logf("rounds: %d", st.Rounds)
	// Count remaining adds in loop blocks (blocks inside natural loops).
	adds := loopOpCount(f, ir.OpAdd)
	// Only the two accumulator updates (r4 and r5) may remain.
	if adds > 2 {
		t.Errorf("loop still has %d adds, want ≤2\n%s", adds, f)
	}
}

// loopOpCount counts occurrences of op inside natural loops.
func loopOpCount(f *ir.Func, op ir.Op) int {
	dom := cfg.BuildDomTree(f)
	li := cfg.FindLoops(f, dom)
	n := 0
	for _, b := range f.Blocks {
		if li.Depth(b) == 0 {
			continue
		}
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// TestNeverLengthensPath is the paper's key safety property: for every
// input (hence every path), PRE must not increase the dynamic count.
func TestNeverLengthensPath(t *testing.T) {
	cases := []string{
		// Diamond with partially redundant expr.
		`
func f(r1, r2) {
b0:
    enter(r1, r2)
    cbr r1 -> b1, b2
b1:
    add r1, r2 => r3
    mul r3, r3 => r4
    jump -> b3
b2:
    loadI 1 => r4
    jump -> b3
b3:
    add r1, r2 => r5
    add r4, r5 => r6
    ret r6
}
`,
		// Expression used only on one side (must NOT be hoisted into
		// the other path).
		`
func f(r1, r2) {
b0:
    enter(r1, r2)
    cbr r1 -> b1, b2
b1:
    mul r2, r2 => r3
    ret r3
b2:
    loadI 0 => r4
    ret r4
}
`,
	}
	// PRE's guarantee concerns *computations*: the compensation copies
	// of Mode B are bookkeeping that coalescing removes (the paper
	// relies on the same cleanup, §3.2).  Measure with the cleanup.
	for ci, src := range cases {
		for _, arg := range []int64{0, 1} {
			f := ir.MustParseFunc(src)
			want, before := run(t, f, "f", arg, 5)
			pre.RunToFixpoint(f)
			dce.Run(f)
			coalesce.Run(f)
			cfg.RemoveEmptyBlocks(f)
			got, after := run(t, f, "f", arg, 5)
			if got != want {
				t.Errorf("case %d arg %d: semantics changed", ci, arg)
			}
			if after > before {
				t.Errorf("case %d arg %d: path lengthened %d -> %d\n%s", ci, arg, before, after, f)
			}
		}
	}
}

// TestLoadsNotHoistedPastStores: a load inside a loop that contains a
// store to an unknown address must stay put.
func TestLoadsNotHoistedPastStores(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    ldw [r1] => r6
    add r4, r6 => r4
    stw r4 => [r2]
    loadI 1 => r7
    add r5, r7 => r5
    cmpLT r5, r3 => r8
    cbr r8 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	pre.RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	// The ldw must still be inside the loop, since the stw kills it.
	if loopOpCount(f, ir.OpLoadW) == 0 {
		t.Errorf("load was moved out of the loop despite the store\n%s", f)
	}
	// Semantics: aliased addresses r1 == r2.
	prog := &ir.Program{Funcs: []*ir.Func{f.Clone()}, GlobalSize: 64}
	m := interp.NewMachine(prog)
	m.WriteInt64(8, 5)
	v, err := m.Call("f", interp.IntVal(8), interp.IntVal(8), interp.IntVal(4))
	if err != nil {
		t.Fatal(err)
	}
	// s starts 0; iteration i: s += mem[8]; mem[8] = s.
	// i1: s=5, mem=5; i2: s=10, mem=10; i3: s=20; i4: s=40.
	if v.I != 40 {
		t.Errorf("aliasing semantics broken: got %d, want 40", v.I)
	}
}

// TestLoadHoistedWhenSafe: with no stores in the loop, a loop-invariant
// load hoists like any expression (redundant load elimination).
func TestLoadHoistedWhenSafe(t *testing.T) {
	const src = `
func f(r1, r3) {
b0:
    enter(r1, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    ldw [r1] => r6
    add r4, r6 => r4
    loadI 1 => r7
    add r5, r7 => r5
    cmpLT r5, r3 => r8
    cbr r8 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	prog := &ir.Program{Funcs: []*ir.Func{f.Clone()}, GlobalSize: 64}
	m := interp.NewMachine(prog)
	m.WriteInt64(8, 7)
	v, _ := m.Call("f", interp.IntVal(8), interp.IntVal(5))
	before := m.Steps

	pre.RunToFixpoint(f)
	prog2 := &ir.Program{Funcs: []*ir.Func{f.Clone()}, GlobalSize: 64}
	m2 := interp.NewMachine(prog2)
	m2.WriteInt64(8, 7)
	v2, err := m2.Call("f", interp.IntVal(8), interp.IntVal(5))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != v2.I {
		t.Fatalf("semantics changed: %d vs %d", v.I, v2.I)
	}
	if m2.Steps >= before {
		t.Errorf("invariant load not hoisted: %d -> %d\n%s", before, m2.Steps, f)
	}
}

// TestFullyRedundantSameBlock: PRE's Mode A scan removes block-local
// recomputation under the naming discipline.
func TestFullyRedundantSameBlock(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    add r1, r2 => r3
    mul r3, r3 => r4
    add r1, r2 => r3
    add r4, r3 => r5
    ret r5
}
`
	f := ir.MustParseFunc(src)
	want, _ := run(t, f, "f", 3, 4)
	pre.Run(f)
	got, _ := run(t, f, "f", 3, 4)
	if got != want {
		t.Fatalf("semantics changed: %d vs %d", got, want)
	}
	adds := 0
	for _, id := range f.Entry().Instrs {
		if f.Instr(id).Op == ir.OpAdd {
			adds++
		}
	}
	if adds != 2 { // r1+r2 once, r4+r3 once
		t.Errorf("local redundancy not removed: %d adds\n%s", adds, f)
	}
}
