package progen

// Corpus renders n deterministic programs as canonical ILOC text by
// sweeping the ForSeed configuration space from the given seed — the
// workload exporter behind `epre loadgen`, which replays a corpus
// against the optimization service.  Same (seed, n) → same corpus,
// byte for byte, across processes and platforms.
func Corpus(seed uint64, n int) []string {
	if n <= 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		s := seed + uint64(i)
		out[i] = Generate(ForSeed(s), s).String()
	}
	return out
}
