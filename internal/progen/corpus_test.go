package progen

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// TestCorpusDeterministic: same (seed, n) yields the same programs byte
// for byte; different seeds diverge; every program parses and verifies.
func TestCorpusDeterministic(t *testing.T) {
	a := Corpus(7, 6)
	b := Corpus(7, 6)
	if len(a) != 6 {
		t.Fatalf("len = %d, want 6", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("program %d differs between identical corpus calls", i)
		}
		if !strings.HasPrefix(strings.TrimSpace(a[i]), "program") {
			t.Errorf("program %d is not ILOC text", i)
		}
		p, err := ir.ParseProgramString(a[i])
		if err != nil {
			t.Fatalf("program %d does not parse: %v", i, err)
		}
		if err := ir.VerifyProgram(p); err != nil {
			t.Errorf("program %d does not verify: %v", i, err)
		}
	}
	// A corpus sweeps shapes: consecutive programs differ.
	if a[0] == a[1] {
		t.Error("corpus programs 0 and 1 identical")
	}
	// Overlapping corpus windows agree program for program: Corpus(8,·)
	// starts where Corpus(7,·) index 1 sits.
	if Corpus(8, 1)[0] != a[1] {
		t.Error("overlapping corpus windows disagree")
	}
	if Corpus(9999, 1)[0] == a[0] {
		t.Error("different seeds produced the same program")
	}
	if Corpus(1, 0) != nil || Corpus(1, -3) != nil {
		t.Error("non-positive n should yield nil")
	}
}
