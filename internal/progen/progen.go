// Package progen generates random-but-well-defined ILOC programs for
// differential testing.
//
// Generation is seeded and fully deterministic: the same Config and
// seed always produce a byte-identical program.  Every program the
// generator emits satisfies three guarantees that make it usable as a
// differential-testing workload without any per-program vetting:
//
//   - it passes ir.VerifyProgram (structurally well formed);
//   - it terminates on every input: each cycle in the control-flow
//     graph is routed through a "trampoline" block that decrements a
//     shared fuel register and exits once the budget is spent, so even
//     irreducible loop nests run a bounded number of iterations;
//   - it never traps in the interpreter: register pools are segregated
//     by type so int and float values never mix, divisor operands are
//     forced odd (hence nonzero) with "or x, 1", and every memory
//     address is masked into a small aligned arena inside the global
//     segment.
//
// Programs deliberately contain the shapes the optimizer is paid to
// handle: diamonds and loops with multiple backedges (φ-pressure after
// SSA construction), critical edges, optional irreducible regions and
// unreachable blocks, lexically repeated expressions (PRE/GVN bait),
// reassociable sub/neg chains, loads and stores in disjoint arenas,
// and calls that clobber memory.
package progen

import (
	"math/rand"

	"repro/internal/ir"
)

// Memory arena layout.  The generated program's GlobalSize is fixed and
// every address is masked into one of four disjoint regions, so loads
// and stores are always in bounds, always aligned, and never overlap a
// region holding values of a different type.
const (
	arenaW      = 0   // int64 words, 8-byte slots at offsets 0..56
	arenaD      = 64  // float64 slots at offsets 64..120
	arenaS      = 128 // float32 slots at offsets 128..188
	arenaCallee = 192 // scratch region owned by generated callees
	// GlobalSize is the data-segment size of every generated program.
	GlobalSize = 256

	maskW = 56 // 0b111000: 8-aligned offsets within a 64-byte arena
	maskS = 60 // 0b111100: 4-aligned offsets within a 64-byte arena
)

// Config sets the size and shape knobs of one generated program.
type Config struct {
	// Blocks is the number of random body blocks (entry, exit and any
	// trampolines are extra).
	Blocks int
	// BlockInstrs is the approximate instruction count per body block.
	BlockInstrs int
	// IntParams and FloatParams size the generated main function's
	// parameter list.  Parameters feed branch conditions and expression
	// operands, so different input tuples genuinely exercise different
	// paths.
	IntParams   int
	FloatParams int
	// Fuel bounds the total number of backedge traversals, and hence
	// execution time, on any input.
	Fuel int64
	// Floats enables floating-point arithmetic.
	Floats bool
	// Memory enables loads and stores into the typed arenas.
	Memory bool
	// Calls enables a generated callee and call sites in main, which
	// exercise the rank-0/clobber rules (calls read and write memory,
	// so no load may move across one).
	Calls bool
	// CallHeavy (implies Calls) shifts the shape toward procedural
	// code: call sites are emitted ~5x as often, the helper gains a
	// second-level callee so call chains reach depth two, and the body
	// gets extra blocks.  This is the silhouette PL/0-style front ends
	// produce, where PRE must reason around many clobber points.
	CallHeavy bool
	// Irreducible forces a two-entry cycle — a region no structured
	// source would produce but every CFG-level pass must survive.
	Irreducible bool
	// Unreachable appends a block no edge targets.
	Unreachable bool
	// BiasRedundant re-emits earlier expressions verbatim under fresh
	// names, manufacturing the partial and full redundancies PRE and
	// GVN are meant to remove.
	BiasRedundant bool
	// BiasChains emits sub/neg/add chains, the reassociation pass's
	// favorite food (paper §3: rewriting x-y as x+(-y) to expose
	// commutativity).
	BiasChains bool
}

// Default returns a mid-sized configuration with every feature on
// except the pathological CFG shapes.
func Default() Config {
	return Config{
		Blocks:        6,
		BlockInstrs:   8,
		IntParams:     2,
		FloatParams:   1,
		Fuel:          48,
		Floats:        true,
		Memory:        true,
		Calls:         true,
		BiasRedundant: true,
		BiasChains:    true,
	}
}

// ForSeed derives a varied configuration from a seed, so a fuzzing run
// over consecutive seeds sweeps the shape space (small/large, with and
// without floats, memory, calls, irreducible regions) rather than
// testing one silhouette a thousand times.  Deterministic in the seed.
func ForSeed(seed uint64) Config {
	rng := rand.New(rand.NewSource(int64(seed ^ 0x9e3779b97f4a7c15)))
	c := Default()
	c.Blocks = 3 + rng.Intn(8)
	c.BlockInstrs = 4 + rng.Intn(10)
	c.IntParams = 1 + rng.Intn(3)
	c.FloatParams = rng.Intn(3)
	c.Fuel = int64(16 + rng.Intn(64))
	c.Floats = rng.Intn(4) != 0
	c.Memory = rng.Intn(4) != 0
	c.Calls = rng.Intn(3) != 0
	c.Irreducible = rng.Intn(3) == 0
	c.Unreachable = rng.Intn(4) == 0
	c.BiasRedundant = rng.Intn(3) != 0
	c.BiasChains = rng.Intn(3) != 0
	c.CallHeavy = rng.Intn(5) == 0
	return c
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.Blocks <= 0 {
		c.Blocks = d.Blocks
	}
	if c.BlockInstrs <= 0 {
		c.BlockInstrs = d.BlockInstrs
	}
	if c.IntParams < 0 {
		c.IntParams = 0
	}
	if c.FloatParams < 0 {
		c.FloatParams = 0
	}
	if c.Fuel <= 0 {
		c.Fuel = d.Fuel
	}
	if c.CallHeavy {
		c.Calls = true
		c.Blocks += 3
	}
	return c
}

// Generate builds one program from the configuration and seed.  The
// result is structurally verified before being returned; a verifier
// complaint indicates a bug in the generator itself and panics so it
// cannot masquerade as an optimizer failure.
func Generate(cfg Config, seed uint64) *ir.Program {
	cfg = cfg.withDefaults()
	g := &gen{
		rng: rand.New(rand.NewSource(int64(seed))),
		cfg: cfg,
	}
	prog := &ir.Program{GlobalSize: GlobalSize}
	if cfg.Calls {
		prog.Funcs = append(prog.Funcs, g.genCallees()...)
	}
	prog.Funcs = append([]*ir.Func{g.genMain()}, prog.Funcs...)
	if err := ir.VerifyProgram(prog); err != nil {
		panic("progen: generated invalid program (seed " +
			itoa(seed) + "): " + err.Error())
	}
	return prog
}

func itoa(u uint64) string {
	if u == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	return string(buf[i:])
}

// gen carries the mutable state of one generation run.
type gen struct {
	rng *rand.Rand
	cfg Config
	f   *ir.Func

	// Register pools.  "ints" and "floats" are readable anywhere: they
	// are defined in the entry block, so every use is dominated.
	// "mutI" and "mutF" are the subsets that body blocks may also
	// redefine — multiple defs reaching a merge is exactly what forces
	// φ-nodes during SSA construction.
	ints   []ir.Reg
	floats []ir.Reg
	mutI   []ir.Reg
	mutF   []ir.Reg

	// Well-known entry-defined registers.
	zero, one          ir.Reg
	fuel               ir.Reg
	maskWReg, maskSReg ir.Reg
	baseW, baseD       ir.Reg
	baseS              ir.Reg

	// Block-local fresh definitions, readable only later in the same
	// block (trivially dominated); reset at every block boundary.
	localI []ir.Reg
	localF []ir.Reg

	// Recorded (op, a, b) triples for redundancy bait.
	exprs []exprTemplate

	calleeName string
}

type exprTemplate struct {
	op   ir.Op
	a, b ir.Reg
}

// ---------------------------------------------------------------------
// main-function generation

func (g *gen) genMain() *ir.Func {
	cfg := g.cfg
	f := ir.NewFunc("main", cfg.IntParams+cfg.FloatParams)
	g.f = f
	entry := f.Entry()

	// Parameters: the first IntParams are integers, the rest floats.
	for i, p := range f.Params {
		if i < cfg.IntParams {
			g.ints = append(g.ints, p)
		} else {
			g.floats = append(g.floats, p)
		}
	}

	emit := func(in *ir.Instr) { entry.Instrs = append(entry.Instrs, in.ID()) }
	newI := func(imm int64) ir.Reg {
		r := f.NewReg()
		emit(f.NewLoadI(r, imm))
		return r
	}
	newF := func(imm float64) ir.Reg {
		r := f.NewReg()
		emit(f.NewLoadF(r, imm))
		return r
	}

	g.zero = newI(0)
	g.one = newI(1)
	g.ints = append(g.ints, g.zero, g.one)
	for i := 0; i < 3; i++ {
		g.ints = append(g.ints, newI(int64(g.rng.Intn(200)-100)))
	}
	g.fuel = newI(cfg.Fuel)
	if cfg.Memory {
		g.maskWReg = newI(maskW)
		g.maskSReg = newI(maskS)
		g.baseW = newI(arenaW)
		g.baseD = newI(arenaD)
		g.baseS = newI(arenaS)
	}
	if cfg.Floats {
		for i := 0; i < 3; i++ {
			g.floats = append(g.floats, newF(float64(g.rng.Intn(64))/4.0-4.0))
		}
	}

	// Mutable registers, initialized from the immutable pools so their
	// starting values depend on the parameters.
	for i := 0; i < 3; i++ {
		r := f.NewReg()
		emit(f.NewInstr(ir.OpAdd, r, g.pickInt(), g.pickInt()))
		g.mutI = append(g.mutI, r)
		g.ints = append(g.ints, r)
	}
	if cfg.Floats {
		for i := 0; i < 2; i++ {
			r := f.NewReg()
			emit(f.NewInstr(ir.OpFAdd, r, g.pickFloat(), g.pickFloat()))
			g.mutF = append(g.mutF, r)
			g.floats = append(g.floats, r)
		}
	}

	// Body blocks, then the exit block.
	body := make([]*ir.Block, cfg.Blocks)
	for i := range body {
		body[i] = f.NewBlock()
	}
	exit := f.NewBlockNamed("exit")

	entry.Instrs = append(entry.Instrs, f.NewInstr(ir.OpJump, ir.NoReg).ID())
	ir.AddEdge(entry, body[0])

	for i, b := range body {
		g.fillBlock(b)
		g.terminate(b, i, body, exit)
	}

	g.fillExit(exit)

	// Reroute every backward edge through a fuel trampoline.  Edges are
	// classified by the body-order index: entry precedes all body
	// blocks, exit follows them, so an edge into a block at the same or
	// smaller index is the only way a cycle can close.
	g.insertTrampolines(body, exit)

	if cfg.Unreachable {
		g.addUnreachable()
	}
	return f
}

// pickInt returns a random readable integer register, preferring the
// block-local pool now and then so fresh values flow into later
// expressions.
func (g *gen) pickInt() ir.Reg {
	if len(g.localI) > 0 && g.rng.Intn(3) == 0 {
		return g.localI[g.rng.Intn(len(g.localI))]
	}
	return g.ints[g.rng.Intn(len(g.ints))]
}

func (g *gen) pickFloat() ir.Reg {
	if len(g.localF) > 0 && g.rng.Intn(3) == 0 {
		return g.localF[g.rng.Intn(len(g.localF))]
	}
	return g.floats[g.rng.Intn(len(g.floats))]
}

// pickGlobalInt avoids block-locals; used for recorded redundancy
// templates, which may be re-emitted in a different block where the
// local would not dominate.
func (g *gen) pickGlobalInt() ir.Reg {
	return g.ints[g.rng.Intn(len(g.ints))]
}

func (g *gen) freshLocalI(b *ir.Block, in *ir.Instr) ir.Reg {
	b.Instrs = append(b.Instrs, in.ID())
	g.localI = append(g.localI, in.Dst)
	return in.Dst
}

func (g *gen) freshLocalF(b *ir.Block, in *ir.Instr) ir.Reg {
	b.Instrs = append(b.Instrs, in.ID())
	g.localF = append(g.localF, in.Dst)
	return in.Dst
}

// fillBlock emits roughly cfg.BlockInstrs random instructions.
func (g *gen) fillBlock(b *ir.Block) {
	g.localI = g.localI[:0]
	g.localF = g.localF[:0]
	n := g.cfg.BlockInstrs - 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		g.emitRandom(b)
	}
	// Guarantee at least one cross-block dataflow update per block.
	g.emitMutIntUpdate(b)
}

var intBinOps = []ir.Op{
	ir.OpAdd, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpMin, ir.OpMax,
	ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
}

var intCmpOps = []ir.Op{
	ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
}

var floatCmpOps = []ir.Op{
	ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE,
}

// emitRandom appends one random construct (one to four instructions).
func (g *gen) emitRandom(b *ir.Block) {
	type emitter struct {
		weight int
		fn     func(*ir.Block)
	}
	cands := []emitter{
		{30, g.emitIntBin},
		{8, g.emitIntUnary},
		{8, g.emitCompare},
		{6, g.emitDivMod},
		{12, g.emitMutIntUpdate},
		{3, g.emitPrint},
	}
	if g.cfg.BiasChains {
		cands = append(cands, emitter{10, g.emitChain})
	}
	if g.cfg.BiasRedundant {
		cands = append(cands, emitter{12, g.emitRedundant})
	}
	if g.cfg.Floats {
		cands = append(cands,
			emitter{8, g.emitFloatBin},
			emitter{4, g.emitFloatUnary},
			emitter{6, g.emitMutFloatUpdate})
	}
	if g.cfg.Memory {
		cands = append(cands, emitter{7, g.emitStore}, emitter{7, g.emitLoad})
	}
	if g.cfg.Calls {
		w := 5
		if g.cfg.CallHeavy {
			w = 25
		}
		cands = append(cands, emitter{w, g.emitCall})
	}
	total := 0
	for _, c := range cands {
		total += c.weight
	}
	pick := g.rng.Intn(total)
	for _, c := range cands {
		if pick < c.weight {
			c.fn(b)
			return
		}
		pick -= c.weight
	}
}

func (g *gen) emitIntBin(b *ir.Block) {
	op := intBinOps[g.rng.Intn(len(intBinOps))]
	a, c := g.pickInt(), g.pickInt()
	g.freshLocalI(b, g.f.NewInstr(op, g.f.NewReg(), a, c))
	if g.cfg.BiasRedundant && op.Pure() {
		g.exprs = append(g.exprs, exprTemplate{op: op, a: a, b: c})
	}
}

func (g *gen) emitIntUnary(b *ir.Block) {
	ops := []ir.Op{ir.OpNeg, ir.OpNot, ir.OpAbs}
	op := ops[g.rng.Intn(len(ops))]
	g.freshLocalI(b, g.f.NewInstr(op, g.f.NewReg(), g.pickInt()))
}

func (g *gen) emitCompare(b *ir.Block) {
	if g.cfg.Floats && len(g.floats) > 0 && g.rng.Intn(3) == 0 {
		op := floatCmpOps[g.rng.Intn(len(floatCmpOps))]
		g.freshLocalI(b, g.f.NewInstr(op, g.f.NewReg(), g.pickFloat(), g.pickFloat()))
		return
	}
	op := intCmpOps[g.rng.Intn(len(intCmpOps))]
	g.freshLocalI(b, g.f.NewInstr(op, g.f.NewReg(), g.pickInt(), g.pickInt()))
}

// emitDivMod guards the divisor with "or x, 1": an odd number is never
// zero, so the division cannot trap, yet the guard is a real data
// dependence the optimizer must respect.
func (g *gen) emitDivMod(b *ir.Block) {
	den := g.freshLocalI(b, g.f.NewInstr(ir.OpOr, g.f.NewReg(), g.pickInt(), g.one))
	op := ir.OpDiv
	if g.rng.Intn(2) == 0 {
		op = ir.OpMod
	}
	g.freshLocalI(b, g.f.NewInstr(op, g.f.NewReg(), g.pickInt(), den))
}

// emitMutIntUpdate redefines one of the mutable integers, the move that
// creates multi-def registers and hence φ-functions under SSA.
func (g *gen) emitMutIntUpdate(b *ir.Block) {
	dst := g.mutI[g.rng.Intn(len(g.mutI))]
	switch g.rng.Intn(3) {
	case 0:
		b.Instrs = append(b.Instrs, g.f.NewCopy(dst, g.pickInt()).ID())
	case 1:
		op := intBinOps[g.rng.Intn(len(intBinOps))]
		b.Instrs = append(b.Instrs, g.f.NewInstr(op, dst, dst, g.pickInt()).ID())
	default:
		op := intBinOps[g.rng.Intn(len(intBinOps))]
		b.Instrs = append(b.Instrs, g.f.NewInstr(op, dst, g.pickInt(), g.pickInt()).ID())
	}
}

// emitMutFloatUpdate keeps float magnitudes bounded by restricting the
// update to operations that cannot blow up (no fmul towers): repeated
// fadd/fsub grow linearly per iteration and fuel bounds the iterations.
func (g *gen) emitMutFloatUpdate(b *ir.Block) {
	dst := g.mutF[g.rng.Intn(len(g.mutF))]
	ops := []ir.Op{ir.OpFAdd, ir.OpFSub, ir.OpFMin, ir.OpFMax}
	op := ops[g.rng.Intn(len(ops))]
	b.Instrs = append(b.Instrs, g.f.NewInstr(op, dst, dst, g.pickFloat()).ID())
}

func (g *gen) emitFloatBin(b *ir.Block) {
	ops := []ir.Op{ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFMin, ir.OpFMax}
	op := ops[g.rng.Intn(len(ops))]
	g.freshLocalF(b, g.f.NewInstr(op, g.f.NewReg(), g.pickFloat(), g.pickFloat()))
}

func (g *gen) emitFloatUnary(b *ir.Block) {
	if g.rng.Intn(4) == 0 {
		// i2f bridges the pools (f2i is deliberately never generated:
		// converting NaN or an out-of-range float to int is
		// platform-defined, so differential runs could disagree for
		// reasons that are not miscompiles).
		g.freshLocalF(b, g.f.NewInstr(ir.OpI2F, g.f.NewReg(), g.pickInt()))
		return
	}
	ops := []ir.Op{ir.OpFNeg, ir.OpFAbs, ir.OpSqrt}
	op := ops[g.rng.Intn(len(ops))]
	g.freshLocalF(b, g.f.NewInstr(op, g.f.NewReg(), g.pickFloat()))
}

// emitChain produces a reassociable chain: sequences of sub/neg/add
// over shared operands are what the paper's reassociation rewrites into
// rank-ordered sums.
func (g *gen) emitChain(b *ir.Block) {
	t1 := g.freshLocalI(b, g.f.NewInstr(ir.OpSub, g.f.NewReg(), g.pickInt(), g.pickInt()))
	t2 := g.freshLocalI(b, g.f.NewInstr(ir.OpSub, g.f.NewReg(), t1, g.pickInt()))
	if g.rng.Intn(2) == 0 {
		t3 := g.freshLocalI(b, g.f.NewInstr(ir.OpNeg, g.f.NewReg(), t2))
		g.freshLocalI(b, g.f.NewInstr(ir.OpAdd, g.f.NewReg(), t3, g.pickInt()))
	} else {
		g.freshLocalI(b, g.f.NewInstr(ir.OpAdd, g.f.NewReg(), t2, g.pickInt()))
	}
}

// emitRedundant re-emits a previously recorded expression with a fresh
// destination.  When the original sits on only some paths to this
// block, the copy is a partial redundancy (PRE bait); when it sits in
// the same block, GVN bait.
func (g *gen) emitRedundant(b *ir.Block) {
	if len(g.exprs) == 0 {
		// Nothing recorded yet: record one instead.
		op := intBinOps[g.rng.Intn(len(intBinOps))]
		a, c := g.pickGlobalInt(), g.pickGlobalInt()
		g.freshLocalI(b, g.f.NewInstr(op, g.f.NewReg(), a, c))
		g.exprs = append(g.exprs, exprTemplate{op: op, a: a, b: c})
		return
	}
	t := g.exprs[g.rng.Intn(len(g.exprs))]
	g.freshLocalI(b, g.f.NewInstr(t.op, g.f.NewReg(), t.a, t.b))
}

// emitStore writes a value into the arena matching its type.  The
// offset is masked to stay aligned and in bounds regardless of the
// value it is derived from.
func (g *gen) emitStore(b *ir.Block) {
	addr, kind := g.emitAddr(b)
	switch kind {
	case ir.OpLoadW:
		b.Instrs = append(b.Instrs, g.f.NewInstr(ir.OpStoreW, ir.NoReg, g.pickInt(), addr).ID())
	case ir.OpLoadD:
		b.Instrs = append(b.Instrs, g.f.NewInstr(ir.OpStoreD, ir.NoReg, g.pickFloat(), addr).ID())
	default:
		b.Instrs = append(b.Instrs, g.f.NewInstr(ir.OpStoreS, ir.NoReg, g.pickFloat(), addr).ID())
	}
}

func (g *gen) emitLoad(b *ir.Block) {
	addr, kind := g.emitAddr(b)
	switch kind {
	case ir.OpLoadW:
		g.freshLocalI(b, g.f.NewInstr(ir.OpLoadW, g.f.NewReg(), addr))
	case ir.OpLoadD:
		g.freshLocalF(b, g.f.NewInstr(ir.OpLoadD, g.f.NewReg(), addr))
	default:
		g.freshLocalF(b, g.f.NewInstr(ir.OpLoadS, g.f.NewReg(), addr))
	}
}

// emitAddr materializes an in-bounds aligned address in one of the
// three typed arenas and returns it with the load opcode naming the
// arena's element kind.
func (g *gen) emitAddr(b *ir.Block) (ir.Reg, ir.Op) {
	kinds := []ir.Op{ir.OpLoadW, ir.OpLoadW}
	if g.cfg.Floats {
		kinds = append(kinds, ir.OpLoadD, ir.OpLoadS)
	}
	kind := kinds[g.rng.Intn(len(kinds))]
	mask, base := g.maskWReg, g.baseW
	switch kind {
	case ir.OpLoadD:
		base = g.baseD
	case ir.OpLoadS:
		mask, base = g.maskSReg, g.baseS
	}
	off := g.freshLocalI(b, g.f.NewInstr(ir.OpAnd, g.f.NewReg(), g.pickInt(), mask))
	addr := g.freshLocalI(b, g.f.NewInstr(ir.OpAdd, g.f.NewReg(), off, base))
	return addr, kind
}

func (g *gen) emitCall(b *ir.Block) {
	in := g.f.NewCall(g.calleeName, g.f.NewReg(), g.pickInt(), g.pickInt())
	g.freshLocalI(b, in)
}

func (g *gen) emitPrint(b *ir.Block) {
	in := g.f.NewCall("print", ir.NoReg, g.pickInt())
	b.Instrs = append(b.Instrs, in.ID())
}

// ---------------------------------------------------------------------
// control flow

// terminate attaches a terminator to body block i.  Forward targets are
// strictly later blocks (or exit), so fuel-free paths always make
// progress; backward targets are allowed and later rerouted through
// trampolines by insertTrampolines.
func (g *gen) terminate(b *ir.Block, i int, body []*ir.Block, exit *ir.Block) {
	target := func(lo, hi int) *ir.Block { // body index in [lo,hi], len(body) = exit
		j := lo + g.rng.Intn(hi-lo+1)
		if j >= len(body) {
			return exit
		}
		return body[j]
	}
	forward := func() *ir.Block { return target(i+1, len(body)) }
	anywhere := func() *ir.Block { return target(0, len(body)) }

	if g.cfg.Irreducible && len(body) >= 3 && i < 3 {
		// Force the two-entry cycle {body[1], body[2]}: body[0]
		// branches into the middle of it both ways, body[1] and
		// body[2] keep each other alive until fuel runs out.
		switch i {
		case 0:
			b.Instrs = append(b.Instrs, g.f.NewInstr(ir.OpCBr, ir.NoReg, g.condReg(b)).ID())
			ir.AddEdge(b, body[1])
			ir.AddEdge(b, body[2])
		case 1:
			b.Instrs = append(b.Instrs, g.f.NewInstr(ir.OpJump, ir.NoReg).ID())
			ir.AddEdge(b, body[2])
		case 2:
			b.Instrs = append(b.Instrs, g.f.NewInstr(ir.OpCBr, ir.NoReg, g.condReg(b)).ID())
			ir.AddEdge(b, body[1]) // backward: trampolined later
			ir.AddEdge(b, forward())
		}
		return
	}

	switch r := g.rng.Intn(10); {
	case r < 5: // cbr
		t1 := anywhere()
		t2 := forward()
		if t2 == t1 {
			t2 = exit
		}
		if t1 == t2 { // both resolved to exit; degrade to jump
			b.Instrs = append(b.Instrs, g.f.NewInstr(ir.OpJump, ir.NoReg).ID())
			ir.AddEdge(b, exit)
			return
		}
		b.Instrs = append(b.Instrs, g.f.NewInstr(ir.OpCBr, ir.NoReg, g.condReg(b)).ID())
		ir.AddEdge(b, t1)
		ir.AddEdge(b, t2)
	case r < 9: // jump
		b.Instrs = append(b.Instrs, g.f.NewInstr(ir.OpJump, ir.NoReg).ID())
		ir.AddEdge(b, anywhere())
	default: // early return
		b.Instrs = append(b.Instrs, g.f.NewInstr(ir.OpRet, ir.NoReg, g.mutI[0]).ID())
	}
}

// condReg returns a register to branch on: usually a fresh comparison
// of live values (so different inputs take different paths), sometimes
// a mutable integer directly.  The comparison is appended to b, which
// must not yet have its terminator.
func (g *gen) condReg(b *ir.Block) ir.Reg {
	if g.rng.Intn(3) == 0 {
		return g.mutI[g.rng.Intn(len(g.mutI))]
	}
	op := intCmpOps[g.rng.Intn(len(intCmpOps))]
	r := g.f.NewReg()
	b.Instrs = append(b.Instrs, g.f.NewInstr(op, r, g.pickGlobalInt(), g.pickGlobalInt()).ID())
	return r
}

// fillExit emits the observation trailer: print every mutable register
// (and, with memory on, a probe load from each arena) then return.
// Everything the body computed flows into either a print, the return
// value, or memory — all three of which the differential oracle
// compares.
func (g *gen) fillExit(exit *ir.Block) {
	g.localI = g.localI[:0]
	g.localF = g.localF[:0]
	obs := append([]ir.Reg(nil), g.mutI...)
	obs = append(obs, g.mutF...)
	in := g.f.NewCall("print", ir.NoReg, obs...)
	exit.Instrs = append(exit.Instrs, in.ID())
	if g.cfg.Memory {
		wAddr := g.freshLocalI(exit, g.f.NewInstr(ir.OpAdd, g.f.NewReg(), g.baseW, g.zero))
		wVal := g.freshLocalI(exit, g.f.NewInstr(ir.OpLoadW, g.f.NewReg(), wAddr))
		probe := g.f.NewCall("print", ir.NoReg, wVal)
		exit.Instrs = append(exit.Instrs, probe.ID())
	}
	exit.Instrs = append(exit.Instrs, g.f.NewInstr(ir.OpRet, ir.NoReg, g.mutI[0]).ID())
}

// insertTrampolines reroutes every backward edge (target's body index
// not larger than the source's) through a fresh block that burns one
// unit of fuel and bails out to exit when the budget is gone.  Since
// every cycle in the generated graph must close through at least one
// backward edge, total backedge traversals are bounded by Fuel and the
// program terminates on every input — including inside irreducible
// regions, which have no single loop header to guard.
func (g *gen) insertTrampolines(body []*ir.Block, exit *ir.Block) {
	order := make(map[*ir.Block]int, len(body)+1)
	for i, b := range body {
		order[b] = i
	}
	order[exit] = len(body)

	type backedge struct{ from, to *ir.Block }
	var edges []backedge
	for i, b := range body {
		for _, s := range b.Succs {
			if j, ok := order[s]; ok && j <= i {
				edges = append(edges, backedge{b, s})
			}
		}
	}
	for _, e := range edges {
		t := g.f.NewBlock()
		cond := g.f.NewReg()
		t.Instrs = append(t.Instrs,
			g.f.NewInstr(ir.OpSub, g.fuel, g.fuel, g.one).ID(),
			g.f.NewInstr(ir.OpCmpGT, cond, g.fuel, g.zero).ID(),
			g.f.NewInstr(ir.OpCBr, ir.NoReg, cond).ID(),
		)
		// Splice: from → t → to, preserving the φ-operand slot the
		// old edge held in to.Preds.
		e.from.ReplaceSucc(e.to, t)
		e.to.ReplacePred(e.from, t)
		t.Preds = append(t.Preds, e.from) //lint:ignore cfgwrite fresh block in a generator; splice must keep φ slot order
		t.Succs = append(t.Succs, e.to)   //lint:ignore cfgwrite taken edge: continue the loop
		ir.AddEdge(t, exit)               // fallthrough: fuel exhausted
	}
}

// addUnreachable appends a self-contained block no edge targets.  Dead
// blocks reach the optimizer in real life (front ends emit them after
// returns); passes must neither crash on them nor let them perturb the
// live code.  The block is self-contained so that even analyses that
// pretend it is reachable see no undefined registers.
func (g *gen) addUnreachable() {
	b := g.f.NewBlockNamed("orphan")
	r1 := g.f.NewReg()
	r2 := g.f.NewReg()
	b.Instrs = append(b.Instrs,
		g.f.NewLoadI(r1, 7).ID(),
		g.f.NewInstr(ir.OpMul, r2, r1, r1).ID(),
		g.f.NewInstr(ir.OpRet, ir.NoReg, r2).ID(),
	)
}

// ---------------------------------------------------------------------
// callee generation

// genCallees builds the helper functions call sites in main target.
// The base shape is one straight-line helper; CallHeavy adds a leaf
// helper below it so call chains reach depth two.
func (g *gen) genCallees() []*ir.Func {
	funcs := []*ir.Func{g.genCallee()}
	if g.cfg.CallHeavy {
		funcs = append(funcs, g.genLeafCallee())
	}
	return funcs
}

// genCallee builds a small straight-line helper that hashes its two
// integer arguments, stores into its private arena slice, loads the
// value back and returns a mix.  Because call reads and writes memory,
// call sites in main are barriers the optimizer must respect; the
// store/load pair inside makes any violation observable.
func (g *gen) genCallee() *ir.Func {
	g.calleeName = "aux"
	f := ir.NewFunc("aux", 2)
	b := f.Entry()
	p0, p1 := f.Params[0], f.Params[1]
	emit := func(in *ir.Instr) { b.Instrs = append(b.Instrs, in.ID()) }
	newI := func(imm int64) ir.Reg {
		r := f.NewReg()
		emit(f.NewLoadI(r, imm))
		return r
	}
	mask := newI(maskW)
	base := newI(arenaCallee)
	t1 := f.NewReg()
	ops := []ir.Op{ir.OpAdd, ir.OpXor, ir.OpSub, ir.OpMul}
	emit(f.NewInstr(ops[g.rng.Intn(len(ops))], t1, p0, p1))
	t2 := f.NewReg()
	emit(f.NewInstr(ops[g.rng.Intn(len(ops))], t2, t1, p0))
	off := f.NewReg()
	emit(f.NewInstr(ir.OpAnd, off, t2, mask))
	addr := f.NewReg()
	emit(f.NewInstr(ir.OpAdd, addr, off, base))
	emit(f.NewInstr(ir.OpStoreW, ir.NoReg, t2, addr))
	v := f.NewReg()
	emit(f.NewInstr(ir.OpLoadW, v, addr))
	res := f.NewReg()
	emit(f.NewInstr(ir.OpAdd, res, v, t1))
	if g.cfg.CallHeavy {
		leaf := f.NewReg()
		emit(f.NewCall("auxleaf", leaf, res, t1))
		res = f.NewReg()
		emit(f.NewInstr(ir.OpXor, res, leaf, v))
	}
	emit(f.NewInstr(ir.OpRet, ir.NoReg, res))
	return f
}

// genLeafCallee builds the depth-two leaf helper: pure integer mixing,
// no memory traffic, so a correct optimizer may still value-number
// across it only by proving it harmless — which it cannot, since calls
// are uniformly treated as clobbers.
func (g *gen) genLeafCallee() *ir.Func {
	f := ir.NewFunc("auxleaf", 2)
	b := f.Entry()
	p0, p1 := f.Params[0], f.Params[1]
	emit := func(in *ir.Instr) { b.Instrs = append(b.Instrs, in.ID()) }
	ops := []ir.Op{ir.OpAdd, ir.OpXor, ir.OpSub, ir.OpMul}
	t1 := f.NewReg()
	emit(f.NewInstr(ops[g.rng.Intn(len(ops))], t1, p0, p1))
	t2 := f.NewReg()
	emit(f.NewInstr(ops[g.rng.Intn(len(ops))], t2, t1, p1))
	emit(f.NewInstr(ir.OpRet, ir.NoReg, t2))
	return f
}
