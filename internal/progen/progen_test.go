package progen

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/interp"
	"repro/internal/ir"
)

// TestGenerateVerifies sweeps several hundred seeds and checks every
// generated program is structurally valid (Generate panics otherwise)
// and round-trips through the printer and parser.
func TestGenerateVerifies(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		prog := Generate(ForSeed(seed), seed)
		text := prog.String()
		back, err := ir.ParseProgramString(text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, text)
		}
		if got := back.String(); got != text {
			t.Fatalf("seed %d: print/parse round trip not idempotent", seed)
		}
	}
}

// TestGenerateDeterministic checks byte-identical output for equal
// seeds and different output for different seeds.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ForSeed(7), 7).String()
	b := Generate(ForSeed(7), 7).String()
	if a != b {
		t.Fatalf("same seed produced different programs")
	}
	c := Generate(ForSeed(8), 8).String()
	if a == c {
		t.Fatalf("different seeds produced identical programs")
	}
}

// TestGeneratedProgramsRun executes every generated program on the
// checker's standard input tuples and requires clean termination — no
// traps, no step-limit blowups.  This is the generator's core contract:
// anything that fails here would pollute differential runs with
// false alarms.
func TestGeneratedProgramsRun(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		prog := Generate(ForSeed(seed), seed)
		for _, in := range check.ProgramInputs(prog, "main", 3) {
			m := interp.NewMachine(prog)
			m.MaxSteps = 1 << 20
			if _, err := m.Call("main", in...); err != nil {
				t.Fatalf("seed %d input %v: %v\n%s", seed, in, err, prog.String())
			}
		}
	}
}

// TestShapeKnobs spot-checks that the config knobs show up in the
// output: irreducible regions, unreachable blocks, calls, memory ops.
func TestShapeKnobs(t *testing.T) {
	cfg := Default()
	cfg.Irreducible = true
	cfg.Unreachable = true
	prog := Generate(cfg, 42)
	text := prog.String()
	for _, want := range []string{"orphan:", "call aux(", "stw ", "cbr "} {
		if !strings.Contains(text, want) {
			t.Errorf("generated program missing %q:\n%s", want, text)
		}
	}
	main := prog.Func("main")
	if main == nil {
		t.Fatal("no main")
	}
	// The forced irreducible region: body[1] and body[2] form a cycle
	// with two distinct entries from body[0].
	var orphan *ir.Block
	for _, b := range main.Blocks {
		if b.Name == "orphan" {
			orphan = b
		}
	}
	if orphan == nil || len(orphan.Preds) != 0 {
		t.Errorf("expected an orphan block with no predecessors")
	}

	cfg = Default()
	cfg.Memory = false
	cfg.Calls = false
	cfg.Floats = false
	text = Generate(cfg, 42).String()
	for _, banned := range []string{"ldw", "ldd", "stw", "std", "call aux", "fadd"} {
		if strings.Contains(text, banned) {
			t.Errorf("feature-disabled program still contains %q", banned)
		}
	}
}

// TestFuelBoundsExecution checks the trampoline mechanism: even with
// heavy looping the interpreter finishes well under the step ceiling,
// and the fuel knob scales the bound.
func TestFuelBoundsExecution(t *testing.T) {
	cfg := Default()
	cfg.Blocks = 10
	cfg.Fuel = 8
	for seed := uint64(0); seed < 50; seed++ {
		prog := Generate(cfg, seed)
		for _, in := range check.ProgramInputs(prog, "main", 2) {
			m := interp.NewMachine(prog)
			m.MaxSteps = 1 << 18
			if _, err := m.Call("main", in...); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}
