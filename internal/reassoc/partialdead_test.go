package reassoc_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pre"
	"repro/internal/reassoc"
)

// TestForwardPropEliminatesPartiallyDead verifies the paper's §3.1
// observation: "forward propagation eliminates partially-dead
// expressions ... By copying expressions to their use points, forward
// propagation trivially ensures that every expression is used on every
// path to an exit."
//
// Here t = x*y is computed before the branch but used only on the
// then-path: it is partially dead (dead along the else-path).  After
// reassociation the multiplication must execute only where its value
// is used.
func TestForwardPropEliminatesPartiallyDead(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    mul r1, r2 => r3
    cbr r1 -> b1, b2
b1:
    add r3, r2 => r4
    ret r4
b2:
    ret r2
}
`
	f := ir.MustParseFunc(src)
	run := func(g *ir.Func, a int64) (int64, int64) {
		m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{g.Clone()}})
		m.EnableOpCounts()
		v, err := m.Call("f", interp.IntVal(a), interp.IntVal(7))
		if err != nil {
			t.Fatalf("%v\n%s", err, g)
		}
		return v.I, m.OpCounts[ir.OpMul]
	}
	wantThen, mulsThen := run(f, 3)
	wantElse, mulsElse := run(f, 0)
	if mulsThen != 1 || mulsElse != 1 {
		t.Fatalf("premise: the mul executes on both paths (%d, %d)", mulsThen, mulsElse)
	}

	reassoc.Run(f, reassoc.DefaultOptions())
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	gotThen, mT := run(f, 3)
	gotElse, mE := run(f, 0)
	if gotThen != wantThen || gotElse != wantElse {
		t.Fatalf("semantics changed: (%d,%d) vs (%d,%d)", gotThen, gotElse, wantThen, wantElse)
	}
	if mT != 1 {
		t.Errorf("then-path should still multiply once, did %d times", mT)
	}
	if mE != 0 {
		t.Errorf("partially-dead multiply still executes on the else path\n%s", f)
	}
}

// TestPREPreservesNoPartialDeadness: "Subsequent application of PRE
// will preserve this invariant, since PRE will never place an
// expression on a path where it is partially dead."  After forward
// propagation, running PRE must not reintroduce the multiply on the
// dead path.
func TestPREPreservesNoPartialDeadness(t *testing.T) {
	const src = `
func f(r1, r2) {
b0:
    enter(r1, r2)
    mul r1, r2 => r3
    cbr r1 -> b1, b2
b1:
    add r3, r2 => r4
    ret r4
b2:
    ret r2
}
`
	f := ir.MustParseFunc(src)
	run := func(g *ir.Func, a int64) int64 {
		m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{g.Clone()}})
		m.EnableOpCounts()
		if _, err := m.Call("f", interp.IntVal(a), interp.IntVal(7)); err != nil {
			t.Fatalf("%v\n%s", err, g)
		}
		return m.OpCounts[ir.OpMul]
	}
	reassoc.Run(f, reassoc.DefaultOptions())
	// Reuse the full post-reassociation pipeline pieces via pre alone;
	// PRE must keep the else path multiply-free.
	applyPRE(t, f)
	if muls := run(f, 0); muls != 0 {
		t.Errorf("PRE reintroduced the multiply on the dead path (%d)\n%s", muls, f)
	}
	if muls := run(f, 3); muls != 1 {
		t.Errorf("then path multiplies %d times, want 1\n%s", muls, f)
	}
}

// applyPRE runs the PRE pass used by the pipelines.
func applyPRE(t *testing.T, f *ir.Func) {
	t.Helper()
	pre.RunToFixpoint(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}
