package reassoc

import (
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// Options configure the reassociation pass.
type Options struct {
	// Distribute enables rank-guided distribution of multiplication
	// over addition (the paper's "distribution" optimization level).
	Distribute bool
	// AllowFloat treats fadd/fmul as associative, as the paper's
	// FORTRAN setting does.  Languages that forbid floating-point
	// reordering set it false.
	AllowFloat bool
	// MaxDupSize bounds the duplication of *multi-use* subtrees.
	// Propagating a single-use expression forward moves it; cloning a
	// multi-use expression duplicates work that no later pass can
	// re-share (PRE only removes whole-expression redundancy).  A
	// value used more than once is propagated only while its tree has
	// at most MaxDupSize nodes; larger shared subtrees stay put as
	// leaves.  Repeated-squaring chains (x²,x⁴,x⁸,…) are the classic
	// case this guards — naive propagation would turn 6 multiplies
	// into 20.  Zero selects DefaultMaxDupSize.
	MaxDupSize int
}

// DefaultMaxDupSize is the multi-use duplication bound.  It is large
// enough to keep the paper's Figure 6 behavior (whole address
// expressions and small shared terms propagate) and small enough to
// preserve exponentiation-by-squaring DAGs.
const DefaultMaxDupSize = 8

// DefaultOptions match the paper's "reassociation" level.
func DefaultOptions() Options { return Options{Distribute: false, AllowFloat: true} }

// Stats reports the work done by one reassociation run.  BeforeProp and
// AfterProp are the static instruction counts around forward
// propagation — the two columns of the paper's Table 2.
type Stats struct {
	BeforeProp int
	AfterProp  int
	Trees      int // expression trees built and re-emitted
	MaxTree    int // largest tree size seen
}

// Expansion returns the code growth factor AfterProp/BeforeProp
// (Table 2's "expansion" column).
func (s Stats) Expansion() float64 {
	if s.BeforeProp == 0 {
		return 1
	}
	return float64(s.AfterProp) / float64(s.BeforeProp)
}

// Run performs global reassociation on f in place:
// pruned SSA (copies folded) → ranks → forward propagation with tree
// rewriting (sub→add+neg, flatten, sort by rank, optional
// distribution) → dead-code pruning of the now-unused original
// expression chains → φ-removal by predecessor copies.
//
// Propagation happens while the function is still in SSA form: single
// assignment means a cloned tree is valid anywhere its leaves
// dominate, so re-emitting at use sites can never read a clobbered
// value.  φ-inputs — one of the paper's essential propagation targets
// — are rebuilt at the end of the corresponding predecessor, which is
// where their value crosses the edge.
func Run(f *ir.Func, opt Options) Stats {
	return RunWith(f, opt, analysis.NewCache(f))
}

// RunWith is Run drawing CFG analyses (dominators, liveness, reverse
// postorder) from the given cache.
func RunWith(f *ir.Func, opt Options, ac *analysis.Cache) Stats {
	ssa.BuildWith(f, ssa.BuildOptions{Prune: true, FoldCopies: true}, ac)
	ranks := ComputeRanksWith(f, ac)

	var st Stats
	st.BeforeProp = f.InstrCount()

	p := &propagator{f: f, ranks: ranks, opt: opt, maxDup: opt.MaxDupSize}
	if p.maxDup <= 0 {
		p.maxDup = DefaultMaxDupSize
	}
	p.indexDefs()
	p.propagate(&st)
	prunedDead(f)
	st.AfterProp = f.InstrCount()
	// Propagation and pruning rewrite instruction slices in place.
	f.MarkCodeMutated()

	ssa.DestructWith(f, ac)
	return st
}

type propagator struct {
	f     *ir.Func
	ranks *Ranks
	opt   Options

	defCount []int
	defInstr []*ir.Instr
	useCount []int
	treeSize []int        // memoized tree size per register (0 = not computed)
	out      []ir.InstrID // emission buffer for the current site
	budget   int          // remaining tree nodes for the current operand
	maxDup   int
}

// maxTreeNodes bounds a single propagated tree.  Forward propagation
// duplicates shared subtrees, which "in the worst case ... can be
// exponential in the size of the routine" (paper §4.3); the budget
// turns pathological DAGs into leaves instead.
const maxTreeNodes = 4096

func (p *propagator) indexDefs() {
	n := p.f.NumRegs()
	p.defCount = make([]int, n)
	p.defInstr = make([]*ir.Instr, n)
	p.useCount = make([]int, n)
	p.treeSize = make([]int, n)
	p.f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpEnter {
			for _, a := range in.Args {
				p.defCount[a]++
				p.defInstr[a] = in
			}
			return
		}
		for _, a := range in.Args {
			p.useCount[a]++
		}
		if in.Dst != ir.NoReg {
			p.defCount[in.Dst]++
			p.defInstr[in.Dst] = in
		}
	})
}

// sizeOf returns the node count of the expression tree rooted at r
// (barriers count 1), memoized.
func (p *propagator) sizeOf(r ir.Reg) int {
	if p.treeSize[r] != 0 {
		return p.treeSize[r]
	}
	sz := 1
	if !p.barrier(r) {
		def := p.defInstr[r]
		if !def.IsConst() {
			for _, a := range def.Args {
				sz += p.sizeOf(a)
				if sz > maxTreeNodes {
					sz = maxTreeNodes
					break
				}
			}
		}
	}
	p.treeSize[r] = sz
	return sz
}

// barrier reports whether register r must stay a tree leaf: variables
// (copy targets and anything multiply defined), parameters, loads and
// call results.  These are exactly the values the rank rules treat
// like φ-results; propagating a load past a store would also be
// unsound.
func (p *propagator) barrier(r ir.Reg) bool {
	if p.defCount[r] != 1 {
		return true
	}
	def := p.defInstr[r]
	switch def.Op {
	case ir.OpCopy, ir.OpEnter, ir.OpCall, ir.OpPhi,
		ir.OpLoadW, ir.OpLoadD, ir.OpLoadS:
		return true
	}
	return !def.Op.Pure()
}

// treeOf builds the expression tree rooted at r by chasing unique,
// pure definitions backwards through the SSA graph.
func (p *propagator) treeOf(r ir.Reg) *Node {
	if p.barrier(r) || p.budget <= 0 {
		return RegLeaf(r, p.ranks.Of(r))
	}
	// Multi-use values are duplicated by propagation; keep large shared
	// subtrees in place (see Options.MaxDupSize).  Constants are always
	// worth re-materializing.
	if p.useCount[r] > 1 && !p.defInstr[r].IsConst() && p.sizeOf(r) > p.maxDup {
		return RegLeaf(r, p.ranks.Of(r))
	}
	p.budget--
	def := p.defInstr[r]
	switch def.Op {
	case ir.OpLoadI:
		return IntLeaf(def.Imm)
	case ir.OpLoadF:
		return FloatLeaf(def.FImm)
	}
	kids := make([]*Node, len(def.Args))
	for i, a := range def.Args {
		kids[i] = p.treeOf(a)
	}
	return NewNode(def.Op, kids...)
}

// emit generates three-address code for a transformed tree, appending
// to the emission buffer and returning the register holding the value.
// Associative n-ary nodes fold left over their (rank-sorted) children,
// so the low-ranked prefix forms hoistable subexpressions.
func (p *propagator) emit(n *Node) ir.Reg {
	switch {
	case n.IsLeafReg():
		return n.Leaf
	case n.Op == ir.OpLoadI:
		r := p.f.NewReg()
		p.out = append(p.out, p.f.NewLoadI(r, n.Imm).ID())
		return r
	case n.Op == ir.OpLoadF:
		r := p.f.NewReg()
		p.out = append(p.out, p.f.NewLoadF(r, n.FImm).ID())
		return r
	}
	if len(n.Kids) > 2 && n.Op.Associative() {
		acc := p.emit(n.Kids[0])
		for _, k := range n.Kids[1:] {
			kr := p.emit(k)
			r := p.f.NewReg()
			p.out = append(p.out, p.f.NewInstr(n.Op, r, acc, kr).ID())
			acc = r
		}
		return acc
	}
	args := make([]ir.Reg, len(n.Kids))
	for i, k := range n.Kids {
		args[i] = p.emit(k)
	}
	r := p.f.NewReg()
	p.out = append(p.out, p.f.NewInstr(n.Op, r, args...).ID())
	return r
}

// rewriteOperand builds, transforms and re-emits the tree for one
// essential operand, returning the new register.
func (p *propagator) rewriteOperand(r ir.Reg, st *Stats) ir.Reg {
	p.budget = maxTreeNodes
	t := p.treeOf(r)
	if t.IsLeafReg() {
		return r // nothing to propagate
	}
	t = Transform(t, p.opt.Distribute, p.opt.AllowFloat)
	st.Trees++
	if sz := t.Size(); sz > st.MaxTree {
		st.MaxTree = sz
	}
	return p.emit(t)
}

// propagate walks every block rebuilding the essential operands:
// φ-node inputs, branch conditions, store values and addresses, load
// addresses, call arguments and return values.
func (p *propagator) propagate(st *Stats) {
	// atPredEnd[p] collects instructions to insert before p's
	// terminator: the rebuilt trees feeding successor φ-nodes.
	atPredEnd := map[*ir.Block][]ir.InstrID{}

	for _, b := range p.f.Blocks {
		rebuilt := make([]ir.InstrID, 0, len(b.Instrs))
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpPhi {
				// Rebuild each φ input at the end of its predecessor.
				for ai := range in.Args {
					if ai >= len(b.Preds) {
						break
					}
					pred := b.Preds[ai]
					p.out = p.out[:0]
					in.Args[ai] = p.rewriteOperand(in.Args[ai], st)
					atPredEnd[pred] = append(atPredEnd[pred], p.out...)
				}
				rebuilt = append(rebuilt, inID)
				continue
			}
			var operands []int // indices of Args to rewrite
			switch in.Op {
			case ir.OpCopy, ir.OpCBr:
				operands = []int{0}
			case ir.OpRet:
				if len(in.Args) == 1 {
					operands = []int{0}
				}
			case ir.OpCall:
				for i := range in.Args {
					operands = append(operands, i)
				}
			case ir.OpStoreW, ir.OpStoreD, ir.OpStoreS:
				operands = []int{0, 1}
			case ir.OpLoadW, ir.OpLoadD, ir.OpLoadS:
				operands = []int{0}
			default:
				// A multi-use expression that stays put (its tree is
				// too large to duplicate) is itself a propagation
				// root: rebuild its operands so the code below the
				// sharing cut still gets reassociated.
				if in.Dst != ir.NoReg && in.Op.Pure() && !in.IsConst() &&
					p.useCount[in.Dst] > 1 && p.sizeOf(in.Dst) > p.maxDup {
					for i := range in.Args {
						operands = append(operands, i)
					}
				}
			}
			p.out = p.out[:0]
			for _, oi := range operands {
				in.Args[oi] = p.rewriteOperand(in.Args[oi], st)
			}
			rebuilt = append(rebuilt, p.out...)
			rebuilt = append(rebuilt, inID)
		}
		b.Instrs = rebuilt
	}
	for pred, ids := range atPredEnd {
		for _, id := range ids {
			pred.Append(p.f.Instr(id)) // before the terminator
		}
	}
}

// prunedDead removes pure instructions (and loads) whose results are
// never used, iterating to a fixed point.  Forward propagation leaves
// the original expression chains dead; this is the cleanup that makes
// the pass "move" rather than "copy" single-use expressions.
func prunedDead(f *ir.Func) {
	for {
		used := make([]bool, f.NumRegs())
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == ir.OpEnter {
				return
			}
			for _, a := range in.Args {
				used[a] = true
			}
		})
		removed := false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, inID := range b.Instrs {
				in := b.Fn.Instr(inID)
				removable := in.Dst != ir.NoReg && !used[in.Dst] &&
					(in.Op.Pure() || in.Op.IsLoad() || in.Op == ir.OpCopy)
				if removable {
					removed = true
					continue
				}
				kept = append(kept, inID)
			}
			b.Instrs = kept
		}
		if !removed {
			return
		}
	}
}
