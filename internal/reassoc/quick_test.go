package reassoc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// evalTree interprets a tree over an environment of register values
// (integer domain, where every transformation must be value-exact).
func evalTree(n *Node, env map[ir.Reg]int64) int64 {
	switch {
	case n.IsLeafReg():
		return env[n.Leaf]
	case n.Op == ir.OpLoadI:
		return n.Imm
	}
	kids := make([]int64, len(n.Kids))
	for i, k := range n.Kids {
		kids[i] = evalTree(k, env)
	}
	fold := func(f func(a, b int64) int64) int64 {
		acc := kids[0]
		for _, v := range kids[1:] {
			acc = f(acc, v)
		}
		return acc
	}
	switch n.Op {
	case ir.OpAdd:
		return fold(func(a, b int64) int64 { return a + b })
	case ir.OpMul:
		return fold(func(a, b int64) int64 { return a * b })
	case ir.OpSub:
		return kids[0] - kids[1]
	case ir.OpNeg:
		return -kids[0]
	case ir.OpMin:
		return fold(func(a, b int64) int64 { return min(a, b) })
	case ir.OpMax:
		return fold(func(a, b int64) int64 { return max(a, b) })
	case ir.OpAnd:
		return fold(func(a, b int64) int64 { return a & b })
	case ir.OpOr:
		return fold(func(a, b int64) int64 { return a | b })
	case ir.OpXor:
		return fold(func(a, b int64) int64 { return a ^ b })
	}
	panic("evalTree: unhandled op " + n.Op.String())
}

// randTree builds a random integer expression tree with leaves drawn
// from registers r1..r6 and small constants, assigning random ranks.
func randTree(rng *rand.Rand, depth int) *Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(3) == 0 {
			return IntLeaf(int64(rng.Intn(11) - 5))
		}
		return RegLeaf(ir.Reg(1+rng.Intn(6)), 1+rng.Intn(4))
	}
	ops := []ir.Op{ir.OpAdd, ir.OpAdd, ir.OpMul, ir.OpSub, ir.OpMin, ir.OpMax, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNeg}
	op := ops[rng.Intn(len(ops))]
	if op == ir.OpNeg {
		return NewNode(op, randTree(rng, depth-1))
	}
	return NewNode(op, randTree(rng, depth-1), randTree(rng, depth-1))
}

// countLeaves verifies the transformation is a permutation of the
// original leaves modulo the sub→add+neg rewrite (which adds neg nodes
// but never drops or duplicates register leaves — distribution may
// duplicate, so this check runs without distribution).
func countRegLeaves(n *Node, acc map[ir.Reg]int) {
	if n.IsLeafReg() {
		acc[n.Leaf]++
		return
	}
	for _, k := range n.Kids {
		countRegLeaves(k, acc)
	}
}

// TestTransformPreservesValue: the integer value of every random tree
// is unchanged by Transform, with and without distribution.
func TestTransformPreservesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfgQ := &quick.Config{MaxCount: 500, Rand: rng}
	err := quick.Check(func(seed int64, distribute bool) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randTree(r, 4)
		env := map[ir.Reg]int64{}
		for i := ir.Reg(1); i <= 6; i++ {
			env[i] = int64(r.Intn(41) - 20)
		}
		want := evalTree(tree, env)
		got := evalTree(Transform(tree.Clone(), distribute, true), env)
		return got == want
	}, cfgQ)
	if err != nil {
		t.Error(err)
	}
}

// TestTransformLeafPermutation: without distribution, register leaves
// are preserved exactly (sorting is a permutation).
func TestTransformLeafPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cfgQ := &quick.Config{MaxCount: 300, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randTree(r, 4)
		before := map[ir.Reg]int{}
		countRegLeaves(tree, before)
		after := map[ir.Reg]int{}
		countRegLeaves(Transform(tree.Clone(), false, true), after)
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if after[k] != v {
				return false
			}
		}
		return true
	}, cfgQ)
	if err != nil {
		t.Error(err)
	}
}

// TestTransformSortsByRank: after Transform, the children of every
// associative node are in non-decreasing rank order.
func TestTransformSortsByRank(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	var checkSorted func(n *Node) bool
	checkSorted = func(n *Node) bool {
		if n.Op.Associative() && len(n.Kids) > 1 {
			for i := 1; i < len(n.Kids); i++ {
				if n.Kids[i-1].Rank > n.Kids[i].Rank {
					return false
				}
			}
		}
		for _, k := range n.Kids {
			if !checkSorted(k) {
				return false
			}
		}
		return true
	}
	cfgQ := &quick.Config{MaxCount: 300, Rand: rng}
	err := quick.Check(func(seed int64, distribute bool) bool {
		r := rand.New(rand.NewSource(seed))
		tree := Transform(randTree(r, 4), distribute, true)
		return checkSorted(tree)
	}, cfgQ)
	if err != nil {
		t.Error(err)
	}
}

// TestFlattenNoNestedSameOp: associative children never repeat their
// parent's operation after Transform.
func TestFlattenNoNestedSameOp(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	var check func(n *Node) bool
	check = func(n *Node) bool {
		if n.Op.Associative() {
			for _, k := range n.Kids {
				if k.Op == n.Op {
					return false
				}
			}
		}
		for _, k := range n.Kids {
			if !check(k) {
				return false
			}
		}
		return true
	}
	cfgQ := &quick.Config{MaxCount: 300, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return check(Transform(randTree(r, 4), false, true))
	}, cfgQ)
	if err != nil {
		t.Error(err)
	}
}
