// Package reassoc implements the paper's global reassociation (§3.1):
//
//  1. compute a rank for every expression,
//  2. propagate expressions forward to their uses,
//  3. reassociate expressions, sorting their operands by rank
//     (optionally distributing multiplication over addition).
//
// The pass runs on pruned SSA (built internally, with copies folded
// into φ-nodes), removes φ-nodes by inserting copies in predecessor
// blocks, and rebuilds every "essential" operand — φ-copy sources,
// branch conditions, store values and addresses, load addresses, call
// arguments and returned values — as a freshly emitted expression tree
// whose associative operations are flattened and sorted so the
// low-ranked (loop-invariant, constant) operands combine first.  That
// shape is what lets a later PRE pass hoist the maximum number of
// subexpressions the maximum distance.
package reassoc

import (
	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Ranks holds the paper's §3.1 rank function: rank 0 for constants,
// the defining block's rank for φ-results, parameters, loads and
// call-modified values, and max-of-operands for everything else.
// Block ranks follow a reverse-postorder traversal (first block rank 1).
type Ranks struct {
	ByReg   []int // indexed by register; -1 when unknown
	ByBlock []int // indexed by block ID; rank of the block itself
}

// Of returns the rank of r, or a conservatively high rank when r was
// created after ranking (such registers never act as sort keys in
// practice).
func (rk *Ranks) Of(r ir.Reg) int {
	if int(r) < len(rk.ByReg) && rk.ByReg[r] >= 0 {
		return rk.ByReg[r]
	}
	return 1 << 30
}

// ComputeRanks ranks every register of an SSA-form function.  The
// function must be in SSA form so that every operand is ranked before
// it is referenced (the paper: "Since the code is in SSA form, each
// operand will have one definition point and will have been ranked
// before it is referenced").
func ComputeRanks(f *ir.Func) *Ranks {
	return computeRanksRPO(f, cfg.ReversePostorder(f))
}

// ComputeRanksWith is ComputeRanks drawing the reverse postorder from
// the given analysis cache.
func ComputeRanksWith(f *ir.Func, ac *analysis.Cache) *Ranks {
	return computeRanksRPO(f, ac.RPO())
}

func computeRanksRPO(f *ir.Func, rpo []*ir.Block) *Ranks {
	rk := &Ranks{
		ByReg:   make([]int, f.NumRegs()),
		ByBlock: make([]int, len(f.Blocks)),
	}
	for i := range rk.ByReg {
		rk.ByReg[i] = -1
	}
	for i, b := range rpo {
		rk.ByBlock[b.ID] = i + 1 // the first block visited is rank 1
	}
	for _, b := range rpo {
		blockRank := rk.ByBlock[b.ID]
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			switch in.Op {
			case ir.OpEnter:
				for _, p := range in.Args {
					rk.ByReg[p] = blockRank
				}
			case ir.OpPhi, ir.OpCall, ir.OpLoadW, ir.OpLoadD, ir.OpLoadS:
				// Rule 2: φ-results, call results and loads take the
				// block's rank.
				if in.Dst != ir.NoReg {
					rk.ByReg[in.Dst] = blockRank
				}
			case ir.OpLoadI, ir.OpLoadF:
				// Rule 1: constants have rank zero.
				rk.ByReg[in.Dst] = 0
			default:
				if in.Dst == ir.NoReg {
					continue
				}
				// Rule 3: max of the operand ranks.
				r := 0
				for _, a := range in.Args {
					if ar := rk.Of(a); ar > r && ar < 1<<30 {
						r = ar
					} else if ar == 1<<30 {
						// Operand not ranked (possible only in non-SSA
						// input); fall back to the block rank.
						r = blockRank
						break
					}
				}
				rk.ByReg[in.Dst] = r
			}
		}
	}
	return rk
}
