package reassoc_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/reassoc"
	"repro/internal/sccp"
	"repro/internal/ssa"
)

func runF(t *testing.T, f *ir.Func, args ...interp.Value) (interp.Value, int64) {
	t.Helper()
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(f.Name, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v, m.Steps
}

// TestFigure1ConstantShape reproduces Figure 1's middle-shape claim:
// for rx=3, rz=2 and rv a variable, "only the middle shape will allow
// constant propagation to transform the expression into y + 5".  After
// reassociation the constants sort together regardless of the original
// association, and SCCP folds them.
func TestFigure1ConstantShape(t *testing.T) {
	// Left shape: (3 + v) + 2 — constants apart.
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 3 => r2
    add r2, r1 => r3
    loadI 2 => r4
    add r3, r4 => r5
    ret r5
}
`
	f := ir.MustParseFunc(src)
	want, _ := runF(t, f, interp.IntVal(10))

	// Without reassociation SCCP cannot fold 3+2.
	g := f.Clone()
	sccp.Run(g)
	addsBefore := countOps(g, ir.OpAdd)
	if addsBefore != 2 {
		t.Fatalf("premise: SCCP alone should keep 2 adds, has %d", addsBefore)
	}

	reassoc.Run(f, reassoc.DefaultOptions())
	sccp.Run(f)
	got, _ := runF(t, f, interp.IntVal(10))
	if got.I != want.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, want.I)
	}
	// After sorting, 3 and 2 are adjacent; SCCP folds their sum, so at
	// most one add feeding the return remains.
	if n := countOps(f, ir.OpAdd); n > 1 {
		t.Errorf("constants not grouped for folding: %d adds\n%s", n, f)
	}
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

// TestFigure1InvariantShape: "if rv and rz are both loop invariant,
// only the rightmost shape will allow PRE to hoist the loop-invariant
// subexpression."  Reassociation must sort the invariant operands
// together so the partial sum is invariant.
func TestFigure1InvariantShape(t *testing.T) {
	// s += (x + i) + y with x,y invariant: naive left shape pins x+i.
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    add r1, r5 => r6
    add r6, r2 => r7
    add r4, r7 => r4
    loadI 1 => r8
    add r5, r8 => r5
    cmpLT r5, r3 => r9
    cbr r9 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	want, _ := runF(t, f, interp.IntVal(3), interp.IntVal(4), interp.IntVal(10))
	reassoc.Run(f, reassoc.DefaultOptions())
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got, _ := runF(t, f, interp.IntVal(3), interp.IntVal(4), interp.IntVal(10))
	if got.I != want.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, want.I)
	}
	// The i-dependent operand must now combine LAST: the loop body
	// should contain an add of the form (invariant-sum, i-term); after
	// reassociation the tree for s's increment is (x+y)+i in some
	// association where x+y forms its own instruction.  Check there is
	// an add whose operands are both parameters (or renames thereof):
	// structural proxy — the invariant pair appears as one instruction
	// whose operands are defined outside the loop.
	dom := cfg.BuildDomTree(f)
	li := cfg.FindLoops(f, dom)
	defsOutside := map[ir.Reg]bool{}
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if li.Depth(b) == 0 {
			if in.Op == ir.OpEnter {
				for _, p := range in.Args {
					defsOutside[p] = true
				}
			}
			if in.Dst != ir.NoReg {
				defsOutside[in.Dst] = true
			}
		}
	})
	foundInvariantAdd := false
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == ir.OpAdd && li.Depth(b) > 0 &&
			defsOutside[in.Args[0]] && defsOutside[in.Args[1]] {
			// an invariant+invariant add inside the loop would be
			// hoistable by PRE; reassociation either placed it or the
			// sum was grouped — accept both shapes below.
			foundInvariantAdd = true
		}
	})
	// Accept either outcome: the invariant pair grouped inside the
	// loop (hoistable by PRE) or already emitted outside.  What must
	// NOT remain is the original (x+i)+y association where no two
	// invariants meet: i.e. every loop add mixes i into both operands.
	if !foundInvariantAdd {
		// Check an invariant add exists outside the loop instead.
		outside := false
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == ir.OpAdd && li.Depth(b) == 0 {
				outside = true
			}
		})
		if !outside {
			t.Errorf("no invariant grouping found\n%s", f)
		}
	}
}

// TestRanksFigure4 recomputes the rank assignment of the paper's
// Figure 4: constants rank 0, entry values rank 1, loop-varying values
// rank 2, post-loop rank 3.
func TestRanksFigure4(t *testing.T) {
	const src = `
func foo(r1, r2) {
b0:
    enter(r1, r2)
    loadI 0 => r3
    add r1, r2 => r4
    cmpGT r4, r3 => r5
    cbr r5 -> b2, b1
b1:
    loadI 1 => r6
    add r3, r6 => r3
    cmpLE r3, r4 => r7
    cbr r7 -> b1, b2
b2:
    add r3, r4 => r8
    ret r8
}
`
	f := ir.MustParseFunc(src)
	// Ranks are computed on SSA; build it the way the pass does.
	// (Use the exported pieces: Run does this internally; here we call
	// ComputeRanks after an SSA build to inspect the values.)
	// We only check relative properties, which survive renaming.
	fc := f.Clone()
	// Recreate pass-internal state:
	ranksOf := func() map[string][]int {
		// classify rank values by defining op kind
		out := map[string][]int{}
		ssa.Build(fc, ssa.BuildOptions{Prune: true, FoldCopies: true})
		rk := reassoc.ComputeRanks(fc)
		fc.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			switch {
			case in.Op == ir.OpLoadI:
				out["const"] = append(out["const"], rk.Of(in.Dst))
			case in.Op == ir.OpEnter:
				for _, p := range in.Args {
					out["param"] = append(out["param"], rk.Of(p))
				}
			case in.Op == ir.OpPhi:
				out["phi"] = append(out["phi"], rk.Of(in.Dst))
			}
		})
		return out
	}
	got := ranksOf()
	for _, r := range got["const"] {
		if r != 0 {
			t.Errorf("constant rank %d, want 0", r)
		}
	}
	for _, r := range got["param"] {
		if r != 1 {
			t.Errorf("parameter rank %d, want 1 (entry block)", r)
		}
	}
	for _, r := range got["phi"] {
		if r < 2 {
			t.Errorf("φ rank %d, want ≥2 (loop or join block)", r)
		}
	}
}

// TestSubRewriting: x − y participates in sums as x + (−y), and the
// peephole pass can rebuild the subtraction later.
func TestSubRewriting(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    sub r1, r2 => r4
    add r4, r3 => r5
    ret r5
}
`
	f := ir.MustParseFunc(src)
	want, _ := runF(t, f, interp.IntVal(10), interp.IntVal(3), interp.IntVal(5))
	reassoc.Run(f, reassoc.DefaultOptions())
	got, _ := runF(t, f, interp.IntVal(10), interp.IntVal(3), interp.IntVal(5))
	if got.I != want.I || got.I != 12 {
		t.Fatalf("got %d, want 12", got.I)
	}
	// The sub is gone (rewritten additively)...
	if countOps(f, ir.OpSub) != 0 {
		t.Errorf("sub not rewritten\n%s", f)
	}
	if countOps(f, ir.OpNeg) == 0 {
		t.Errorf("no negation introduced\n%s", f)
	}
}

// TestForwardPropIntoLoopDegradation reproduces §4.2's third loss: a
// computation n ← j + k used only after the loop gets propagated INTO
// the loop (to its φ-input/essential site), lengthening iterations;
// the paper accepts this as a known cost.  We verify semantics hold
// and document the count change.
func TestForwardPropIntoLoopDegradation(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    add r1, r2 => r4
    loadI 0 => r5
    jump -> b1
b1:
    loadI 1 => r6
    add r5, r6 => r5
    cmpEQ r5, r3 => r7
    cbr r7 -> b2, b3
b2:
    add r5, r4 => r5
    jump -> b3
b3:
    loadI 100 => r8
    cmpLT r5, r8 => r9
    cbr r9 -> b1, b4
b4:
    ret r5
}
`
	f := ir.MustParseFunc(src)
	want, before := runF(t, f, interp.IntVal(30), interp.IntVal(40), interp.IntVal(5))
	st := reassoc.Run(f, reassoc.DefaultOptions())
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got, after := runF(t, f, interp.IntVal(30), interp.IntVal(40), interp.IntVal(5))
	if got.I != want.I {
		t.Fatalf("semantics changed: %d vs %d", got.I, want.I)
	}
	t.Logf("dynamic ops %d -> %d (expansion %.3f); degradation is expected here (§4.2)",
		before, after, st.Expansion())
}

// TestTable2Expansion: forward propagation grows static code within
// the paper's observed band on a representative function.
func TestTable2Expansion(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    loadI 0 => r4
    loadI 0 => r5
    jump -> b1
b1:
    add r1, r2 => r6
    mul r6, r3 => r7
    add r4, r7 => r4
    loadI 1 => r8
    add r5, r8 => r5
    cmpLT r5, r3 => r9
    cbr r9 -> b1, b2
b2:
    ret r4
}
`
	f := ir.MustParseFunc(src)
	st := reassoc.Run(f, reassoc.DefaultOptions())
	if st.BeforeProp == 0 || st.AfterProp == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
	if e := st.Expansion(); e < 0.8 || e > 3.0 {
		t.Errorf("expansion %.3f outside plausible band", e)
	}
}

// TestMultiUseSharingPreserved: the MaxDupSize bound keeps
// exponentiation-by-squaring DAGs intact.
func TestMultiUseSharingPreserved(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    mul r1, r1 => r2
    mul r2, r2 => r3
    mul r3, r3 => r4
    mul r4, r4 => r5
    mul r5, r4 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	want, _ := runF(t, f, interp.IntVal(2))
	reassoc.Run(f, reassoc.Options{AllowFloat: true})
	got, _ := runF(t, f, interp.IntVal(2))
	if got.I != want.I || got.I != 1<<24 {
		t.Fatalf("got %d, want 2^24", got.I)
	}
	// Full duplication would need 23 multiplies; the default bound
	// keeps growth modest (small shared squarings may still inline).
	if n := countOps(f, ir.OpMul); n > 12 {
		t.Errorf("sharing destroyed: %d muls (had 5, full duplication = 23)\n%s", n, f)
	}
	// With MaxDupSize=1 no multi-use value duplicates at all.
	g := ir.MustParseFunc(src)
	reassoc.Run(g, reassoc.Options{AllowFloat: true, MaxDupSize: 1})
	got2, _ := runF(t, g, interp.IntVal(2))
	if got2.I != want.I {
		t.Fatalf("MaxDupSize=1 changed semantics")
	}
	if n := countOps(g, ir.OpMul); n != 5 {
		t.Errorf("MaxDupSize=1: %d muls, want exactly 5\n%s", n, g)
	}
}

// TestFloatReassocSwitch: AllowFloat=false must keep float operations
// in their original association (bit-exact results).
func TestFloatReassocSwitch(t *testing.T) {
	const src = `
func f(r1, r2, r3) {
b0:
    enter(r1, r2, r3)
    fadd r1, r2 => r4
    fadd r4, r3 => r5
    ret r5
}
`
	args := []interp.Value{
		interp.FloatVal(1e16), interp.FloatVal(1.0), interp.FloatVal(-1e16),
	}
	f := ir.MustParseFunc(src)
	want, _ := runF(t, f, args...)
	reassoc.Run(f, reassoc.Options{AllowFloat: false})
	got, _ := runF(t, f, args...)
	if got.F != want.F {
		t.Errorf("AllowFloat=false changed the result: %g vs %g", got.F, want.F)
	}
}
