package reassoc

import (
	"bytes"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ir"
)

// Node is one vertex of an expression tree built by forward
// propagation.  Interior nodes carry an operation; associative interior
// nodes may have any number of children after flattening.  Leaves are
// either registers (variables, parameters, load and call results — the
// propagation barriers) or constants.
type Node struct {
	Op   ir.Op // OpInvalid for register leaves; OpLoadI/OpLoadF for constants
	Leaf ir.Reg
	Imm  int64
	FImm float64
	Kids []*Node
	Rank int
}

// IsLeafReg reports whether the node is a register leaf.
func (n *Node) IsLeafReg() bool { return n.Op == ir.OpInvalid }

// IsConst reports whether the node is a constant leaf.
func (n *Node) IsConst() bool { return n.Op == ir.OpLoadI || n.Op == ir.OpLoadF }

// Size returns the number of nodes in the tree.
func (n *Node) Size() int {
	s := 1
	for _, k := range n.Kids {
		s += k.Size()
	}
	return s
}

// String renders the tree as a parenthesized expression for debugging
// and golden tests.
func (n *Node) String() string {
	switch {
	case n.IsLeafReg():
		return n.Leaf.String()
	case n.Op == ir.OpLoadI:
		return fmt.Sprintf("%d", n.Imm)
	case n.Op == ir.OpLoadF:
		return fmt.Sprintf("%g", n.FImm)
	}
	parts := make([]string, len(n.Kids))
	for i, k := range n.Kids {
		parts[i] = k.String()
	}
	return fmt.Sprintf("(%s %s)", n.Op, strings.Join(parts, " "))
}

// RegLeaf builds a register leaf with the given rank.
func RegLeaf(r ir.Reg, rank int) *Node { return &Node{Leaf: r, Rank: rank} }

// IntLeaf builds an integer-constant leaf (rank 0).
func IntLeaf(v int64) *Node { return &Node{Op: ir.OpLoadI, Imm: v} }

// FloatLeaf builds a float-constant leaf (rank 0).
func FloatLeaf(v float64) *Node { return &Node{Op: ir.OpLoadF, FImm: v} }

// NewNode builds an interior node; the rank is the max of the kids'.
func NewNode(op ir.Op, kids ...*Node) *Node {
	n := &Node{Op: op, Kids: kids}
	n.recomputeRank()
	return n
}

func (n *Node) recomputeRank() {
	if len(n.Kids) == 0 {
		return // leaves keep their assigned rank (constants stay 0)
	}
	r := 0
	for _, k := range n.Kids {
		if k.Rank > r {
			r = k.Rank
		}
	}
	n.Rank = r
}

// negOf returns the negation opcode matching an additive op.
func negOf(op ir.Op) ir.Op {
	if op == ir.OpFAdd || op == ir.OpFSub {
		return ir.OpFNeg
	}
	return ir.OpNeg
}

// addOf maps a subtract opcode to its additive counterpart.
func addOf(op ir.Op) (ir.Op, bool) {
	switch op {
	case ir.OpSub:
		return ir.OpAdd, true
	case ir.OpFSub:
		return ir.OpFAdd, true
	}
	return op, false
}

// mulAddPair reports whether op is a multiplication and returns the
// matching addition for distribution.
func mulAddPair(op ir.Op) (ir.Op, bool) {
	switch op {
	case ir.OpMul:
		return ir.OpAdd, true
	case ir.OpFMul:
		return ir.OpFAdd, true
	}
	return op, false
}

// Transform applies the paper's reordering to a tree, in place where
// convenient, returning the (possibly new) root:
//
//  1. rewrite x − y as x + (−y), "since addition is associative and
//     subtraction is not" (after Frailey);
//  2. flatten nested associative operations into n-ary nodes;
//  3. sort the operands of each associative (and commutative)
//     operation by rank, so the low-ranked operands are placed
//     together and constants (rank 0) clump at the front;
//  4. optionally distribute a low-ranked multiplier over a
//     higher-ranked sum, partially and rank-guided, then re-sort.
//
// allowFloat gates the treatment of fadd/fmul as associative.
func Transform(root *Node, distribute, allowFloat bool) *Node {
	root = rewriteSub(root, allowFloat)
	root = flatten(root, allowFloat)
	sortKids(root, allowFloat)
	if distribute {
		root = distributeNode(root, allowFloat, 0)
		root = flatten(root, allowFloat)
		// "It is important to re-sort sums after distribution."
		sortKids(root, allowFloat)
	}
	return root
}

func assocOK(op ir.Op, allowFloat bool) bool {
	if !op.Associative() {
		return false
	}
	if op.Float() && !allowFloat {
		return false
	}
	return true
}

// rewriteSub converts subtraction into addition of a negation.
func rewriteSub(n *Node, allowFloat bool) *Node {
	for i, k := range n.Kids {
		n.Kids[i] = rewriteSub(k, allowFloat)
	}
	if add, ok := addOf(n.Op); ok && len(n.Kids) == 2 && assocOK(add, allowFloat) {
		neg := NewNode(negOf(n.Op), n.Kids[1])
		res := NewNode(add, n.Kids[0], neg)
		return res
	}
	n.recomputeRank()
	return n
}

// flatten splices nested same-op associative children into their
// parents, producing n-ary sums and products.
func flatten(n *Node, allowFloat bool) *Node {
	for i, k := range n.Kids {
		n.Kids[i] = flatten(k, allowFloat)
	}
	if assocOK(n.Op, allowFloat) {
		kids := make([]*Node, 0, len(n.Kids))
		for _, k := range n.Kids {
			if k.Op == n.Op {
				kids = append(kids, k.Kids...)
			} else {
				kids = append(kids, k)
			}
		}
		n.Kids = kids
	}
	n.recomputeRank()
	return n
}

// sortKids orders the children of associative (or simply commutative)
// nodes by ascending rank.  Ties break on a deterministic structural
// key so output code is stable run to run.
func sortKids(n *Node, allowFloat bool) {
	scr := scratchPool.Get().(*sortScratch)
	sortKidsRec(n, allowFloat, scr)
	scratchPool.Put(scr)
}

// scratchPool recycles sort scratch across trees (and safely across
// the concurrent table runs, which is why this is a sync.Pool rather
// than a package-level buffer).
var scratchPool = sync.Pool{New: func() any { return new(sortScratch) }}

// sortScratch is reused across every node of one sortKids walk.  A
// child's sort completes before its parent consults the scratch, so a
// single instance serves the whole recursion.
type sortScratch struct {
	buf    []byte // all keys of the node being sorted, concatenated
	ends   []int  // ends[i] = end offset of child i's key in buf
	order  []int
	sorted []*Node
}

func sortKidsRec(n *Node, allowFloat bool, scr *sortScratch) {
	for _, k := range n.Kids {
		sortKidsRec(k, allowFloat, scr)
	}
	canSort := assocOK(n.Op, allowFloat) ||
		(n.Op.Commutative() && (!n.Op.Float() || allowFloat))
	if canSort && len(n.Kids) > 1 {
		// Keys are computed once per child, not once per comparison,
		// and the sort avoids reflection; the ordering is identical to
		// sorting on (Rank, structuralKey) pairwise.
		scr.buf = scr.buf[:0]
		scr.ends = scr.ends[:0]
		for _, k := range n.Kids {
			scr.buf = appendStructuralKey(scr.buf, k)
			scr.ends = append(scr.ends, len(scr.buf))
		}
		key := func(i int) []byte {
			start := 0
			if i > 0 {
				start = scr.ends[i-1]
			}
			return scr.buf[start:scr.ends[i]]
		}
		scr.order = scr.order[:0]
		for i := range n.Kids {
			scr.order = append(scr.order, i)
		}
		slices.SortStableFunc(scr.order, func(i, j int) int {
			a, b := n.Kids[i], n.Kids[j]
			if a.Rank != b.Rank {
				return a.Rank - b.Rank
			}
			return bytes.Compare(key(i), key(j))
		})
		scr.sorted = scr.sorted[:0]
		for _, o := range scr.order {
			scr.sorted = append(scr.sorted, n.Kids[o])
		}
		copy(n.Kids, scr.sorted)
	}
	n.recomputeRank()
}

func structuralKey(n *Node) string {
	return string(appendStructuralKey(nil, n))
}

// appendStructuralKey renders the structural key into buf without the
// intermediate strings that fmt.Sprintf and strings.Join would build.
func appendStructuralKey(buf []byte, n *Node) []byte {
	switch {
	case n.IsLeafReg():
		return fmt.Appendf(buf, "r%09d", n.Leaf)
	case n.Op == ir.OpLoadI:
		return fmt.Appendf(buf, "c%020d", n.Imm)
	case n.Op == ir.OpLoadF:
		return fmt.Appendf(buf, "f%020g", n.FImm)
	}
	buf = append(buf, 'o')
	if n.Op < 100 {
		buf = append(buf, '0')
	}
	if n.Op < 10 {
		buf = append(buf, '0')
	}
	buf = strconv.AppendInt(buf, int64(n.Op), 10)
	for _, k := range n.Kids {
		buf = append(buf, '|')
		buf = appendStructuralKey(buf, k)
	}
	return buf
}

// maxDistributeSize caps tree growth during distribution; beyond this
// size distribution stops (a practical guard the paper's "fast
// heuristic" spirit permits).
const maxDistributeSize = 256

// distributeNode applies the paper's partial, rank-guided distribution
// of multiplication over addition: given a product with a low-ranked
// multiplier m and a sum s of higher rank, the sum's children with
// rank ≤ rank(m) stay grouped in a single product while each
// higher-ranked child gets its own product, e.g.
//
//	a + b×((c+d)+e)  →  a + b×(c+d) + b×e
//
// when a..d have rank 1 and e rank 2.  A full distribution "would
// result in extra multiplications without allowing any additional code
// motion", so grouping follows the multiplier's rank.
func distributeNode(n *Node, allowFloat bool, depth int) *Node {
	for i, k := range n.Kids {
		n.Kids[i] = distributeNode(k, allowFloat, depth+1)
	}
	n.recomputeRank()

	add, isMul := mulAddPair(n.Op)
	if !isMul || !assocOK(add, allowFloat) || n.Size() > maxDistributeSize {
		return n
	}
	// Locate a sum child whose rank exceeds the combined rank of all
	// remaining (multiplier) children.
	sumIdx := -1
	for i, k := range n.Kids {
		if k.Op == add && len(k.Kids) > 1 {
			if sumIdx < 0 || k.Rank > n.Kids[sumIdx].Rank {
				sumIdx = i
			}
		}
	}
	if sumIdx < 0 {
		return n
	}
	sum := n.Kids[sumIdx]
	mulKids := make([]*Node, 0, len(n.Kids)-1)
	mulRank := 0
	for i, k := range n.Kids {
		if i == sumIdx {
			continue
		}
		mulKids = append(mulKids, k)
		if k.Rank > mulRank {
			mulRank = k.Rank
		}
	}
	if len(mulKids) == 0 || mulRank >= sum.Rank {
		return n // only distribute a low-ranked multiplier over a higher-ranked sum
	}
	// Partition the sum's children by the multiplier's rank.
	var low, high []*Node
	for _, k := range sum.Kids {
		if k.Rank <= mulRank {
			low = append(low, k)
		} else {
			high = append(high, k)
		}
	}
	if len(high) == 0 {
		return n
	}
	// Profitability: distribution pays only when it can enable motion —
	// either a low-ranked group exists (m×(low part) hoists) or the
	// high children have different ranks (separating them lets the
	// coarser-ranked products hoist farther once the enclosing sum is
	// re-sorted).  When every child shares one rank above the
	// multiplier, distributing "would result in extra multiplications
	// without allowing any additional code motion" (§3.1) — the
	// c×(b−a) shape in golden-section search is the classic instance.
	if len(low) == 0 {
		minR, maxR := high[0].Rank, high[0].Rank
		for _, k := range high[1:] {
			if k.Rank < minR {
				minR = k.Rank
			}
			if k.Rank > maxR {
				maxR = k.Rank
			}
		}
		if minR == maxR {
			return n
		}
	}
	makeProduct := func(term *Node) *Node {
		kids := make([]*Node, 0, len(mulKids)+1)
		kids = append(kids, cloneNodes(mulKids)...)
		kids = append(kids, term)
		p := NewNode(n.Op, kids...)
		return distributeNode(p, allowFloat, depth+1)
	}
	terms := make([]*Node, 0, len(high)+1)
	if len(low) > 0 {
		var lowTerm *Node
		if len(low) == 1 {
			lowTerm = low[0]
		} else {
			lowTerm = NewNode(add, low...)
		}
		terms = append(terms, makeProduct(lowTerm))
	}
	for _, h := range high {
		terms = append(terms, makeProduct(h))
	}
	if len(terms) == 1 {
		return terms[0]
	}
	return NewNode(add, terms...)
}

func cloneNodes(ns []*Node) []*Node {
	out := make([]*Node, len(ns))
	for i, n := range ns {
		out[i] = n.Clone()
	}
	return out
}

// Clone deep-copies a tree.
func (n *Node) Clone() *Node {
	cp := *n
	cp.Kids = cloneNodes(n.Kids)
	return &cp
}
