package reassoc

import (
	"testing"

	"repro/internal/ir"
)

// TestDistributePaperExample checks the paper's §3.1 example: with
// a,b,c,d of rank 1 and e of rank 2, a + b×((c+d)+e) distributes
// partially into a + b×(c+d) + b×e (modulo commutative tie order).
func TestDistributePaperExample(t *testing.T) {
	a := RegLeaf(1, 1)
	b := RegLeaf(2, 1)
	c := RegLeaf(3, 1)
	d := RegLeaf(4, 1)
	e := RegLeaf(5, 2)
	tree := NewNode(ir.OpAdd, a, NewNode(ir.OpMul, b, NewNode(ir.OpAdd, NewNode(ir.OpAdd, c, d), e)))
	got := Transform(tree, true, true).String()
	want := "(add (mul (add r3 r4) r2) r1 (mul r2 r5))"
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestDistributeAddress checks the array-address case: the rank-0
// element size distributes over the index sum so the column offset can
// be hoisted: base + ((i−1) + (j−1)·ld)·8 → base + 8·(i−1) + 8·((j−1)·ld).
func TestDistributeAddress(t *testing.T) {
	base := RegLeaf(1, 1)
	i := RegLeaf(2, 3) // inner loop
	j := RegLeaf(3, 2) // outer loop
	ld := RegLeaf(4, 1)
	one := IntLeaf(1)
	sum := NewNode(ir.OpAdd,
		NewNode(ir.OpSub, i, one),
		NewNode(ir.OpMul, NewNode(ir.OpSub, j, one.Clone()), ld))
	addr := NewNode(ir.OpAdd, base, NewNode(ir.OpMul, sum, IntLeaf(8)))
	got := Transform(addr.Clone(), true, true)
	nodist := Transform(addr, false, true)
	t.Logf("no-dist: %s", nodist)
	t.Logf("dist:    %s", got)
	// With distribution the multiply by 8 must have been split so that
	// a product involving only j/ld appears as its own operand of the
	// top-level sum.
	if got.Op != ir.OpAdd || len(got.Kids) < 3 {
		t.Fatalf("expected distributed top-level sum with ≥3 terms, got %s", got)
	}
}
