// Package regalloc implements Chaitin–Briggs graph-coloring register
// allocation with optimistic coloring and spill code.
//
// The paper assumes this machinery exists: §3.2 relies on "the
// coalescing phase of a Chaitin-style global register allocator" to
// clean up the copies its transformations introduce, and the
// first author's own thesis contributed the optimistic-coloring
// improvement implemented here.  The allocator completes the compiler
// story and enables the register-pressure experiments: forward
// propagation and PRE's hoisted temporaries lengthen live ranges, so
// the optimization levels differ not just in operation counts but in
// how many spills a finite register file forces.
//
// Algorithm per function, iterated until no spills:
//
//  1. liveness → interference graph (defs interfere with live-out,
//     copies excepted for their source, the Chaitin refinement);
//  2. simplify: repeatedly remove nodes of degree < K; when stuck,
//     optimistically remove a spill candidate anyway (Briggs);
//  3. select: pop nodes, assign the lowest free color; a node with no
//     free color is marked to spill;
//  4. spill: give the value an 8-byte static slot, reload before each
//     use and store after each def with fresh short-lived temporaries,
//     then repeat.
//
// Values whose type (integer vs. float) cannot be inferred are never
// spilled — the memory operations are typed — so allocation can fail
// for very small K; Run reports that as an error rather than guessing.
package regalloc

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/ir"
)

// Result reports one program's allocation.
type Result struct {
	Spilled    int   // values spilled across all functions
	SpillSlots int64 // bytes of spill memory appended to the data segment
	Rounds     int   // build–color–spill iterations summed over functions
	MaxRegs    int   // largest physical register count any function needed
}

// MinK is the smallest supported register file; spill code itself
// needs registers.
const MinK = 4

// MaxRounds bounds the spill iteration.
const MaxRounds = 32

// Run allocates every function of prog to K physical registers
// (r1..rK), inserting spill code backed by static slots appended to
// the program's data segment.  Functions must be φ-free.
func Run(prog *ir.Program, k int) (Result, error) {
	var res Result
	if k < MinK {
		return res, fmt.Errorf("regalloc: K=%d below minimum %d", k, MinK)
	}
	for _, f := range prog.Funcs {
		r, err := runFunc(f, prog, k)
		if err != nil {
			return res, fmt.Errorf("regalloc: %s: %w", f.Name, err)
		}
		res.Spilled += r.Spilled
		res.SpillSlots += r.SpillSlots
		res.Rounds += r.Rounds
		if r.MaxRegs > res.MaxRegs {
			res.MaxRegs = r.MaxRegs
		}
	}
	return res, nil
}

type regType uint8

const (
	typeNone regType = iota // absent: no information yet
	typeInt
	typeFloat
	typeUnknown // conflict: cannot be spilled through typed memory ops
)

func runFunc(f *ir.Func, prog *ir.Program, k int) (Result, error) {
	var res Result
	for _, b := range f.Blocks {
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			if in.Op == ir.OpPhi {
				return res, fmt.Errorf("function still contains φ-nodes")
			}
		}
	}
	spilledEver := map[ir.Reg]bool{}

	for round := 0; round < MaxRounds; round++ {
		res.Rounds++
		types := InferProgramTypes(prog)[f.Name]
		spillable := func(r ir.Reg) bool {
			t := types[r]
			return !spilledEver[r] && (t == typeInt || t == typeFloat)
		}
		g, present := buildInterference(f)
		coloring, toSpill := color(g, present, k, spillable)
		if len(toSpill) == 0 {
			applyColoring(f, coloring, &res)
			return res, nil
		}
		spilledOne := false
		for _, v := range toSpill {
			if !spillable(v) {
				continue
			}
			spillReg(f, prog, v, types[v] == typeFloat)
			spilledEver[v] = true
			res.Spilled++
			res.SpillSlots += 8
			spilledOne = true
		}
		if !spilledOne {
			return res, fmt.Errorf("cannot allocate with K=%d: remaining candidates are unspillable", k)
		}
	}
	return res, fmt.Errorf("did not converge in %d rounds", MaxRounds)
}

// graph is a dense-ish interference graph over registers.
type graph struct {
	adj map[ir.Reg]map[ir.Reg]bool
}

func (g *graph) add(a, b ir.Reg) {
	if a == b {
		return
	}
	if g.adj[a] == nil {
		g.adj[a] = map[ir.Reg]bool{}
	}
	if g.adj[b] == nil {
		g.adj[b] = map[ir.Reg]bool{}
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// buildInterference computes the interference graph and the set of
// registers that appear in the function.
func buildInterference(f *ir.Func) (*graph, map[ir.Reg]bool) {
	lv := dataflow.ComputeLiveness(f)
	g := &graph{adj: map[ir.Reg]map[ir.Reg]bool{}}
	present := map[ir.Reg]bool{}
	note := func(r ir.Reg) {
		if r != ir.NoReg {
			present[r] = true
			if g.adj[r] == nil {
				g.adj[r] = map[ir.Reg]bool{}
			}
		}
	}
	for _, b := range f.Blocks {
		live := lv.LiveOut[b.ID].Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instr(i)
			defs := []ir.Reg(nil)
			if in.Op == ir.OpEnter {
				defs = in.Args
			} else if in.Dst != ir.NoReg {
				defs = []ir.Reg{in.Dst}
			}
			for _, d := range defs {
				note(d)
				skip := ir.NoReg
				if in.Op == ir.OpCopy {
					skip = in.Args[0]
				}
				live.ForEach(func(l int) {
					if ir.Reg(l) != skip {
						g.add(d, ir.Reg(l))
					}
				})
			}
			for _, d := range defs {
				live.Clear(int(d))
			}
			if in.Op != ir.OpEnter {
				for _, a := range in.Args {
					note(a)
					live.Set(int(a))
				}
			}
		}
	}
	return g, present
}

// color runs simplify/select with Briggs optimistic coloring.  It
// returns a color (0-based) per register, and the registers that could
// not be colored.  The spillable predicate steers the optimistic phase
// toward nodes that can actually be spilled (typed values): an
// unspillable node pushed late pops early and colors first.
func color(g *graph, present map[ir.Reg]bool, k int, spillable func(ir.Reg) bool) (map[ir.Reg]int, []ir.Reg) {
	// Deterministic node order.
	nodes := make([]ir.Reg, 0, len(present))
	for r := range present {
		nodes = append(nodes, r)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	degree := map[ir.Reg]int{}
	removed := map[ir.Reg]bool{}
	for _, n := range nodes {
		degree[n] = len(g.adj[n])
	}

	var stack []ir.Reg
	remaining := len(nodes)
	for remaining > 0 {
		// Simplify: any node with degree < k.
		picked := ir.NoReg
		for _, n := range nodes {
			if !removed[n] && degree[n] < k {
				picked = n
				break
			}
		}
		if picked == ir.NoReg {
			// Optimistic spill candidate: highest degree among the
			// spillable nodes (ties by register order for
			// determinism); unspillable ones only as a last resort.
			best := ir.NoReg
			bestDeg := -1
			for _, n := range nodes {
				if !removed[n] && spillable(n) && degree[n] > bestDeg {
					best, bestDeg = n, degree[n]
				}
			}
			if best == ir.NoReg {
				for _, n := range nodes {
					if !removed[n] && degree[n] > bestDeg {
						best, bestDeg = n, degree[n]
					}
				}
			}
			picked = best
		}
		removed[picked] = true
		remaining--
		stack = append(stack, picked)
		for nb := range g.adj[picked] {
			if !removed[nb] {
				degree[nb]--
			}
		}
	}

	coloring := map[ir.Reg]int{}
	var spills []ir.Reg
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		used := map[int]bool{}
		for nb := range g.adj[n] {
			if c, ok := coloring[nb]; ok {
				used[c] = true
			}
		}
		assigned := -1
		for c := 0; c < k; c++ {
			if !used[c] {
				assigned = c
				break
			}
		}
		if assigned < 0 {
			spills = append(spills, n)
			continue
		}
		coloring[n] = assigned
	}
	sort.Slice(spills, func(i, j int) bool { return spills[i] < spills[j] })
	return coloring, spills
}

// applyColoring rewrites every register to its physical register
// (color c → r(c+1)).
func applyColoring(f *ir.Func, coloring map[ir.Reg]int, res *Result) {
	maxColor := -1
	for _, c := range coloring {
		if c > maxColor {
			maxColor = c
		}
	}
	if maxColor+1 > res.MaxRegs {
		res.MaxRegs = maxColor + 1
	}
	phys := func(r ir.Reg) ir.Reg {
		if c, ok := coloring[r]; ok {
			return ir.Reg(c + 1)
		}
		return r
	}
	for _, b := range f.Blocks {
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			for i, a := range in.Args {
				in.Args[i] = phys(a)
			}
			if in.Dst != ir.NoReg {
				in.Dst = phys(in.Dst)
			}
		}
	}
	for i, p := range f.Params {
		f.Params[i] = phys(p)
	}
}

// InferProgramTypes determines int/float per register for every
// function, whole-program: operation results type themselves, copies
// propagate, call arguments type the callee's parameters, and returned
// registers type the callers' call destinations — all to a fixed point
// on the lattice absent → int/float → unknown (conflict).  Exported
// because tests and tools inspect the inference.
func InferProgramTypes(prog *ir.Program) map[string]map[ir.Reg]regType {
	all := map[string]map[ir.Reg]regType{}
	for _, f := range prog.Funcs {
		all[f.Name] = map[ir.Reg]regType{}
	}
	// merge raises r toward unknown on conflicts; reports change.
	// The lattice is typeNone → typeInt/typeFloat → typeUnknown and
	// values only move upward, so the fixpoint terminates.
	merge := func(m map[ir.Reg]regType, r ir.Reg, t regType) bool {
		if t == typeNone || t == typeUnknown || r == ir.NoReg {
			return false
		}
		switch cur := m[r]; {
		case cur == typeNone:
			m[r] = t
			return true
		case cur == typeUnknown || cur == t:
			return false
		default:
			m[r] = typeUnknown
			return true
		}
	}
	// Seed from operation results.
	for _, f := range prog.Funcs {
		m := all[f.Name]
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			if in.Op == ir.OpEnter || in.Op == ir.OpCopy || in.Op == ir.OpCall {
				return
			}
			if in.Dst != ir.NoReg {
				if in.Op.Float() {
					merge(m, in.Dst, typeFloat)
				} else {
					merge(m, in.Dst, typeInt)
				}
			}
		})
	}
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			m := all[f.Name]
			f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
				switch in.Op {
				case ir.OpCopy:
					if merge(m, in.Dst, m[in.Args[0]]) {
						changed = true
					}
				case ir.OpCall:
					callee := prog.Func(f.SymName(in.Sym))
					if callee == nil {
						return
					}
					cm := all[callee.Name]
					for ai, a := range in.Args {
						if ai < len(callee.Params) && merge(cm, callee.Params[ai], m[a]) {
							changed = true
						}
					}
					if in.Dst != ir.NoReg {
						for _, cb := range callee.Blocks {
							if t := cb.Terminator(); t != nil && t.Op == ir.OpRet && len(t.Args) == 1 {
								if merge(m, in.Dst, cm[t.Args[0]]) {
									changed = true
								}
							}
						}
					}
				}
			})
		}
	}
	return all
}

// spillReg gives v a static slot and rewrites every use/def to go
// through memory with fresh temporaries.
func spillReg(f *ir.Func, prog *ir.Program, v ir.Reg, isFloat bool) {
	prog.GlobalSize = (prog.GlobalSize + 7) &^ 7
	slot := prog.GlobalSize
	prog.GlobalSize += 8

	loadOp, storeOp := ir.OpLoadW, ir.OpStoreW
	if isFloat {
		loadOp, storeOp = ir.OpLoadD, ir.OpStoreD
	}

	for _, b := range f.Blocks {
		out := make([]ir.InstrID, 0, len(b.Instrs))
		for _, inID := range b.Instrs {
			in := b.Fn.Instr(inID)
			usesV := false
			if in.Op != ir.OpEnter {
				for _, a := range in.Args {
					if a == v {
						usesV = true
					}
				}
			}
			if usesV {
				addr := f.NewReg()
				tmp := f.NewReg()
				out = append(out, f.NewLoadI(addr, slot).ID(), f.NewInstr(loadOp, tmp, addr).ID())
				for i, a := range in.Args {
					if a == v {
						in.Args[i] = tmp
					}
				}
			}
			out = append(out, inID)
			defsV := in.Dst == v
			if in.Op == ir.OpEnter {
				for _, p := range in.Args {
					if p == v {
						defsV = true
					}
				}
			}
			if defsV {
				addr := f.NewReg()
				out = append(out, f.NewLoadI(addr, slot).ID(),
					f.NewInstr(storeOp, ir.NoReg, v, addr).ID())
			}
		}
		b.Instrs = out
	}
}
