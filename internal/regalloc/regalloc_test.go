package regalloc_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minift"
	"repro/internal/regalloc"
	"repro/internal/suite"
)

// maxRegUsed returns the highest register number referenced.
func maxRegUsed(p *ir.Program) ir.Reg {
	var max ir.Reg
	for _, f := range p.Funcs {
		f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
			for _, a := range in.Args {
				if a > max {
					max = a
				}
			}
			if in.Dst > max {
				max = in.Dst
			}
		})
	}
	return max
}

func compileOpt(t *testing.T, src string, level core.Level) *ir.Program {
	t.Helper()
	prog, err := minift.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.Optimize(prog, level)
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

const kernel = `
func driver(n: int): real {
    var a: [16,16]real
    var x: [16]real
    var y: [16]real
    for j = 1 to n {
        x[j] = real(j) / 3.0
        for i = 1 to n {
            a[i,j] = real(i + j) / 2.0
        }
    }
    for i = 1 to n {
        y[i] = 0.0
    }
    for j = 1 to n {
        for i = 1 to n {
            y[i] = y[i] + a[i,j] * x[j]
        }
    }
    var s: real = 0.0
    for i = 1 to n {
        s = s + y[i]
    }
    return s
}
`

// TestAllocatesWithinK: after allocation every register is ≤ K and the
// program still computes the same value.
func TestAllocatesWithinK(t *testing.T) {
	for _, k := range []int{6, 8, 16} {
		prog := compileOpt(t, kernel, core.LevelDist)
		m0 := interp.NewMachine(prog.Clone())
		want, err := m0.Call("driver", interp.IntVal(16))
		if err != nil {
			t.Fatal(err)
		}
		res, err := regalloc.Run(prog, k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := ir.VerifyProgram(prog); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if max := maxRegUsed(prog); int(max) > k {
			t.Errorf("K=%d: register %s in use", k, max)
		}
		m := interp.NewMachine(prog)
		got, err := m.Call("driver", interp.IntVal(16))
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if got.F != want.F {
			t.Errorf("K=%d: result %g, want %g (spills=%d)", k, got.F, want.F, res.Spilled)
		}
		t.Logf("K=%d: spilled=%d slots=%dB rounds=%d maxregs=%d dynops=%d",
			k, res.Spilled, res.SpillSlots, res.Rounds, res.MaxRegs, m.Steps)
	}
}

// TestSpillsAppearUnderPressure: small K forces spills; larger K
// needs none, and dynamic cost decreases with K.
func TestSpillsAppearUnderPressure(t *testing.T) {
	measure := func(k int) (int, int64) {
		prog := compileOpt(t, kernel, core.LevelDist)
		res, err := regalloc.Run(prog, k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		m := interp.NewMachine(prog)
		if _, err := m.Call("driver", interp.IntVal(16)); err != nil {
			t.Fatal(err)
		}
		return res.Spilled, m.Steps
	}
	spillsSmall, opsSmall := measure(6)
	spillsBig, opsBig := measure(24)
	if spillsSmall == 0 {
		t.Error("K=6 should force spills on the matrix kernel")
	}
	if spillsBig != 0 {
		t.Errorf("K=24 should not spill, spilled %d", spillsBig)
	}
	if opsSmall <= opsBig {
		t.Errorf("spill code should cost dynamic ops: K=6 %d vs K=24 %d", opsSmall, opsBig)
	}
}

// TestFloatSpills: a float-heavy function spills float values through
// typed memory operations without corrupting them.
func TestFloatSpills(t *testing.T) {
	// Many simultaneously-live float values.
	const src = `
func driver(x: real): real {
    var a: real = x + 1.0
    var b: real = x * 2.0
    var c: real = x - 3.0
    var d: real = x / 4.0
    var e: real = a * b
    var f: real = c * d
    var g: real = a + c
    var h: real = b + d
    return e * f + g * h + a + b + c + d
}
`
	prog, err := minift.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m0 := interp.NewMachine(prog.Clone())
	want, err := m0.Call("driver", interp.FloatVal(2.5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := regalloc.Run(prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(prog)
	got, err := m.Call("driver", interp.FloatVal(2.5))
	if err != nil {
		t.Fatalf("%v (spills=%d)\n%s", err, res.Spilled, prog)
	}
	if got.F != want.F {
		t.Errorf("got %g, want %g", got.F, want.F)
	}
	if res.Spilled == 0 {
		t.Log("no spills at K=4 (coloring succeeded); result still correct")
	}
}

// TestRejectsTinyK: K below the minimum errors out cleanly.
func TestRejectsTinyK(t *testing.T) {
	prog := compileOpt(t, kernel, core.LevelBaseline)
	if _, err := regalloc.Run(prog, 2); err == nil || !strings.Contains(err.Error(), "below minimum") {
		t.Errorf("got %v", err)
	}
}

// TestWholeSuiteAtK16: every suite routine allocates at K=16 and still
// validates against its reference.
func TestWholeSuiteAtK16(t *testing.T) {
	for _, r := range suite.All() {
		prog, err := r.Compile()
		if err != nil {
			t.Fatal(err)
		}
		opt, err := core.Optimize(prog, core.LevelDist)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := regalloc.Run(opt, 16); err != nil {
			t.Errorf("%s: %v", r.Name, err)
			continue
		}
		if err := ir.VerifyProgram(opt); err != nil {
			t.Errorf("%s: %v", r.Name, err)
			continue
		}
		m := interp.NewMachine(opt)
		v, err := m.Call(r.Driver, r.Args...)
		if err != nil {
			t.Errorf("%s: %v", r.Name, err)
			continue
		}
		if err := r.Check(v); err != nil {
			t.Errorf("%s after regalloc: %v", r.Name, err)
		}
	}
}
