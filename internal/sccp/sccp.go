// Package sccp implements global constant propagation with conditional
// branches, the first pass of the paper's baseline optimization
// sequence (§4.1, citing Wegman and Zadeck).
//
// The implementation is a conditional constant propagation over the
// CFG: a lattice value (⊤ unvisited / constant / ⊥) is tracked for
// every register at every block entry, blocks are processed from a
// worklist, and branch edges are marked executable only when the
// branch condition does not rule them out.  Instructions whose results
// are constant are rewritten to loadI/loadF; conditional branches with
// constant conditions become jumps and unreachable code is removed.
package sccp

import (
	"math"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// lattice value kinds.
const (
	top    = 0 // unvisited / as-yet-unknown
	consti = 1
	constf = 2
	bottom = 3
)

type value struct {
	kind int8
	i    int64
	f    float64
}

func (v value) isConst() bool { return v.kind == consti || v.kind == constf }

// meet combines two lattice values.
func meet(a, b value) value {
	switch {
	case a.kind == top:
		return b
	case b.kind == top:
		return a
	case a.kind == bottom || b.kind == bottom:
		return value{kind: bottom}
	case a.kind == b.kind && a.i == b.i && (a.kind != constf || a.f == b.f):
		return a
	case a.kind == constf && b.kind == constf && a.f == b.f:
		return a
	default:
		return value{kind: bottom}
	}
}

// state is a register→lattice map at a program point.
type state []value

// meetInto merges src into dst; reports whether dst changed.
func (s state) meetInto(src state) bool {
	changed := false
	for i := range s {
		m := meet(s[i], src[i])
		if m != s[i] {
			s[i] = m
			changed = true
		}
	}
	return changed
}

// Stats reports what constant propagation accomplished.
type Stats struct {
	Folded        int // instructions rewritten to constants
	BranchesFixed int // conditional branches made unconditional
	BlocksRemoved int
}

// Changed reports whether the run modified the function.
func (s Stats) Changed() bool { return s.Folded+s.BranchesFixed+s.BlocksRemoved > 0 }

// Run performs conditional constant propagation on f in place.
func Run(f *ir.Func) Stats {
	return RunWith(f, analysis.NewCache(f))
}

// RunWith is Run drawing CFG analyses from the given cache.
func RunWith(f *ir.Func, ac *analysis.Cache) Stats {
	var st Stats
	st.BlocksRemoved = ac.RemoveUnreachable()
	nb := len(f.Blocks)
	nr := f.NumRegs()

	// One backing array holds every block's entry state; out is a
	// single reused evaluation buffer (its contents are dead once the
	// successors have been met into).
	backing := make([]value, nb*nr)
	in := make([]state, nb)
	for i := range in {
		in[i] = backing[i*nr : (i+1)*nr : (i+1)*nr]
	}
	out := make(state, nr)
	edgeExec := map[[2]int]bool{}
	blockSeen := make([]bool, nb)

	work := []*ir.Block{f.Entry()}
	blockSeen[f.Entry().ID] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		copy(out, in[b.ID])
		var condVal value
		for _, instrID := range b.Instrs {
			instr := b.Fn.Instr(instrID)
			condVal = evalInstr(instr, out)
		}
		t := b.Terminator()
		push := func(s *ir.Block) {
			key := [2]int{b.ID, s.ID}
			changedEdge := !edgeExec[key]
			edgeExec[key] = true
			if in[s.ID].meetInto(out) || changedEdge || !blockSeen[s.ID] {
				blockSeen[s.ID] = true
				work = append(work, s)
			}
		}
		if t != nil && t.Op == ir.OpCBr && condVal.kind == consti {
			if condVal.i != 0 {
				push(b.Succs[0])
			} else {
				push(b.Succs[1])
			}
		} else {
			for _, s := range b.Succs {
				push(s)
			}
		}
	}

	// Rewrite: replace constant-valued pure instructions, then fix
	// branches whose conditions are known.
	for _, b := range f.Blocks {
		if !blockSeen[b.ID] {
			continue
		}
		copy(out, in[b.ID])
		for i, instrID := range b.Instrs {
			instr := b.Fn.Instr(instrID)
			evalInstr(instr, out)
			// Copies are never rewritten: re-materializing a constant
			// at each copy would undo PRE's hoisting of loadI out of
			// loops (the copy is the coalescer's business).  Constant
			// *values* still propagate through copies for folding.
			if instr.Dst == ir.NoReg || instr.IsConst() || !instr.Op.Pure() ||
				instr.Op == ir.OpPhi || instr.Op == ir.OpCopy {
				continue
			}
			v := out[instr.Dst]
			if !v.isConst() {
				continue
			}
			if v.kind == consti {
				b.Instrs[i] = f.NewLoadI(instr.Dst, v.i).ID()
			} else {
				b.Instrs[i] = f.NewLoadF(instr.Dst, v.f).ID()
			}
			st.Folded++
		}
		if t := b.Terminator(); t != nil && t.Op == ir.OpCBr {
			v := out[t.Args[0]]
			if v.kind == consti {
				keep := b.Succs[0]
				drop := b.Succs[1]
				if v.i == 0 {
					keep, drop = drop, keep
				}
				ir.RemoveEdge(b, drop)
				b.Instrs[len(b.Instrs)-1] = f.NewInstr(ir.OpJump, ir.NoReg).ID()
				if len(b.Succs) != 1 || b.Succs[0] != keep {
					// RemoveEdge may have removed the wrong duplicate
					// when both targets coincide; normalize.
					for len(b.Succs) > 0 {
						ir.RemoveEdge(b, b.Succs[0])
					}
					ir.AddEdge(b, keep)
				}
				st.BranchesFixed++
			}
		}
	}
	if st.Folded > 0 {
		// Folding assigns b.Instrs[i] directly, bypassing the Block
		// helpers.
		f.MarkCodeMutated()
	}
	st.BlocksRemoved += ac.RemoveUnreachable()
	return st
}

// evalInstr updates the state with the effect of one instruction and
// returns the value of the register tested by a trailing cbr (i.e. the
// last defined value; callers only use it for the branch condition).
func evalInstr(in *ir.Instr, s state) value {
	bot := value{kind: bottom}
	set := func(v value) value {
		if in.Dst != ir.NoReg {
			s[in.Dst] = v
		}
		return v
	}
	switch in.Op {
	case ir.OpEnter:
		for _, a := range in.Args {
			s[a] = bot
		}
		return bot
	case ir.OpLoadI:
		return set(value{kind: consti, i: in.Imm})
	case ir.OpLoadF:
		return set(value{kind: constf, f: in.FImm})
	case ir.OpCopy:
		return set(s[in.Args[0]])
	case ir.OpPhi:
		// φ inputs are per-edge; a flow-insensitive approximation
		// meets all of them (correct, though weaker than SSA SCCP).
		v := value{kind: top}
		for _, a := range in.Args {
			v = meet(v, s[a])
		}
		return set(v)
	case ir.OpCall, ir.OpLoadW, ir.OpLoadD, ir.OpLoadS:
		return set(bot)
	case ir.OpCBr:
		return s[in.Args[0]]
	case ir.OpJump, ir.OpRet, ir.OpStoreW, ir.OpStoreD, ir.OpStoreS:
		return bot
	}
	// Pure arithmetic: fold when all operands are constants.  Operand
	// values live in a fixed-size stack buffer — pure operators take at
	// most two operands, and foldOp does not retain the slice — so the
	// per-instruction evaluation allocates nothing.
	var argbuf [3]value
	args := argbuf[:len(in.Args)]
	if len(in.Args) > len(argbuf) {
		args = make([]value, len(in.Args))
	}
	allConst := true
	anyBottom := false
	for i, a := range in.Args {
		args[i] = s[a]
		if !args[i].isConst() {
			allConst = false
		}
		if args[i].kind == bottom {
			anyBottom = true
		}
	}
	if !allConst {
		if anyBottom {
			return set(bot)
		}
		return set(value{kind: top})
	}
	if v, ok := foldOp(in.Op, args); ok {
		return set(v)
	}
	return set(bot)
}

// foldOp evaluates a pure operation over constant operands.  Division
// or modulus by zero refuses to fold (the runtime will trap).
func foldOp(op ir.Op, a []value) (value, bool) {
	ci := func(x int64) (value, bool) { return value{kind: consti, i: x}, true }
	cf := func(x float64) (value, bool) { return value{kind: constf, f: x}, true }
	b2i := func(x bool) (value, bool) {
		if x {
			return ci(1)
		}
		return ci(0)
	}
	switch op {
	case ir.OpAdd:
		return ci(a[0].i + a[1].i)
	case ir.OpSub:
		return ci(a[0].i - a[1].i)
	case ir.OpMul:
		return ci(a[0].i * a[1].i)
	case ir.OpDiv:
		if a[1].i == 0 {
			return value{}, false
		}
		return ci(a[0].i / a[1].i)
	case ir.OpMod:
		if a[1].i == 0 {
			return value{}, false
		}
		return ci(a[0].i % a[1].i)
	case ir.OpNeg:
		return ci(-a[0].i)
	case ir.OpAnd:
		return ci(a[0].i & a[1].i)
	case ir.OpOr:
		return ci(a[0].i | a[1].i)
	case ir.OpXor:
		return ci(a[0].i ^ a[1].i)
	case ir.OpNot:
		return ci(^a[0].i)
	case ir.OpShl:
		return ci(a[0].i << uint64(a[1].i&63))
	case ir.OpShr:
		return ci(a[0].i >> uint64(a[1].i&63))
	case ir.OpMin:
		return ci(min(a[0].i, a[1].i))
	case ir.OpMax:
		return ci(max(a[0].i, a[1].i))
	case ir.OpAbs:
		if a[0].i < 0 {
			return ci(-a[0].i)
		}
		return ci(a[0].i)
	case ir.OpFAdd:
		return cf(a[0].f + a[1].f)
	case ir.OpFSub:
		return cf(a[0].f - a[1].f)
	case ir.OpFMul:
		return cf(a[0].f * a[1].f)
	case ir.OpFDiv:
		return cf(a[0].f / a[1].f)
	case ir.OpFNeg:
		return cf(-a[0].f)
	case ir.OpFMin:
		return cf(math.Min(a[0].f, a[1].f))
	case ir.OpFMax:
		return cf(math.Max(a[0].f, a[1].f))
	case ir.OpSqrt:
		return cf(math.Sqrt(a[0].f))
	case ir.OpFAbs:
		return cf(math.Abs(a[0].f))
	case ir.OpI2F:
		return cf(float64(a[0].i))
	case ir.OpF2I:
		return ci(int64(a[0].f))
	case ir.OpCmpEQ:
		return b2i(a[0].i == a[1].i)
	case ir.OpCmpNE:
		return b2i(a[0].i != a[1].i)
	case ir.OpCmpLT:
		return b2i(a[0].i < a[1].i)
	case ir.OpCmpLE:
		return b2i(a[0].i <= a[1].i)
	case ir.OpCmpGT:
		return b2i(a[0].i > a[1].i)
	case ir.OpCmpGE:
		return b2i(a[0].i >= a[1].i)
	case ir.OpFCmpEQ:
		return b2i(a[0].f == a[1].f)
	case ir.OpFCmpNE:
		return b2i(a[0].f != a[1].f)
	case ir.OpFCmpLT:
		return b2i(a[0].f < a[1].f)
	case ir.OpFCmpLE:
		return b2i(a[0].f <= a[1].f)
	case ir.OpFCmpGT:
		return b2i(a[0].f > a[1].f)
	case ir.OpFCmpGE:
		return b2i(a[0].f >= a[1].f)
	}
	return value{}, false
}

// Fold exposes constant evaluation of a single pure instruction whose
// operands are the given constant lattice values; peephole reuses it.
func Fold(op ir.Op, ints []int64, floats []float64, isFloat []bool) (int64, float64, bool, bool) {
	args := make([]value, len(ints))
	for i := range args {
		if isFloat[i] {
			args[i] = value{kind: constf, f: floats[i]}
		} else {
			args[i] = value{kind: consti, i: ints[i]}
		}
	}
	v, ok := foldOp(op, args)
	if !ok {
		return 0, 0, false, false
	}
	return v.i, v.f, v.kind == constf, true
}
