package sccp_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sccp"
)

func run(t *testing.T, f *ir.Func, args ...int64) interp.Value {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(a)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f.Clone()}})
	v, err := m.Call(f.Name, vals...)
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	return v
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

func TestFoldsConstantChain(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 3 => r2
    loadI 4 => r3
    add r2, r3 => r4
    mul r4, r4 => r5
    add r5, r1 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	want := run(t, f, 10)
	st := sccp.Run(f)
	got := run(t, f, 10)
	if got.I != want.I || got.I != 59 {
		t.Fatalf("got %d, want 59", got.I)
	}
	if st.Folded < 2 {
		t.Errorf("folded %d, want ≥2 (7 and 49)", st.Folded)
	}
	// add r2,r3 and mul became loadI.
	if countOps(f, ir.OpMul) != 0 {
		t.Errorf("mul not folded\n%s", f)
	}
}

func TestConstantBranchEliminatesCode(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 1 => r2
    cbr r2 -> b1, b2
b1:
    loadI 10 => r3
    jump -> b3
b2:
    loadI 20 => r3
    jump -> b3
b3:
    add r3, r1 => r4
    ret r4
}
`
	f := ir.MustParseFunc(src)
	want := run(t, f, 5)
	st := sccp.Run(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	got := run(t, f, 5)
	if got.I != want.I || got.I != 15 {
		t.Fatalf("got %d, want 15", got.I)
	}
	if st.BranchesFixed != 1 {
		t.Errorf("BranchesFixed = %d, want 1", st.BranchesFixed)
	}
	if st.BlocksRemoved == 0 {
		t.Error("dead branch arm not removed")
	}
	if countOps(f, ir.OpCBr) != 0 {
		t.Errorf("cbr remains\n%s", f)
	}
}

// TestConditionalConstant: the classic SCCP case — a variable is the
// same constant on both arms of a diamond, so the join folds.
func TestConditionalConstant(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    cbr r1 -> b1, b2
b1:
    loadI 7 => r3
    jump -> b3
b2:
    loadI 7 => r3
    jump -> b3
b3:
    loadI 1 => r4
    add r3, r4 => r5
    ret r5
}
`
	f := ir.MustParseFunc(src)
	sccp.Run(f)
	for _, arg := range []int64{0, 1} {
		if got := run(t, f, arg); got.I != 8 {
			t.Fatalf("f(%d) = %d, want 8", arg, got.I)
		}
	}
	// add 7+1 folds because r3 is 7 on both paths.
	if countOps(f, ir.OpAdd) != 0 {
		t.Errorf("join constant not discovered\n%s", f)
	}
}

// TestCopiesNotRematerialized: SCCP must not rewrite copies of
// constants into loadI (that would undo PRE's constant hoisting).
func TestCopiesNotRematerialized(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 5 => r2
    copy r2 => r3
    add r3, r1 => r4
    ret r4
}
`
	f := ir.MustParseFunc(src)
	sccp.Run(f)
	if countOps(f, ir.OpCopy) != 1 {
		t.Errorf("copy was rewritten\n%s", f)
	}
	if got := run(t, f, 3); got.I != 8 {
		t.Errorf("got %d, want 8", got.I)
	}
}

// TestDivByZeroNotFolded: folding 1/0 would turn a runtime trap into
// wrong code; SCCP must leave it.
func TestDivByZeroNotFolded(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 1 => r2
    loadI 0 => r3
    div r2, r3 => r4
    ret r4
}
`
	f := ir.MustParseFunc(src)
	sccp.Run(f)
	if countOps(f, ir.OpDiv) != 1 {
		t.Errorf("div by zero folded away\n%s", f)
	}
	m := interp.NewMachine(&ir.Program{Funcs: []*ir.Func{f}})
	if _, err := m.Call("f", interp.IntVal(0)); err == nil {
		t.Error("expected division-by-zero trap")
	}
}

// TestUnreachableLoopRemoved: constant branch conditions make whole
// loops dead.
func TestUnreachableLoopRemoved(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadI 0 => r2
    cbr r2 -> b1, b2
b1:
    loadI 1 => r3
    add r1, r3 => r1
    cmpLT r1, r3 => r4
    cbr r4 -> b1, b2
b2:
    ret r1
}
`
	f := ir.MustParseFunc(src)
	st := sccp.Run(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if st.BlocksRemoved == 0 {
		t.Errorf("loop not removed\n%s", f)
	}
	if got := run(t, f, 42); got.I != 42 {
		t.Errorf("got %d, want 42", got.I)
	}
}

func TestFloatFolding(t *testing.T) {
	const src = `
func f(r1) {
b0:
    enter(r1)
    loadF 2.0 => r2
    loadF 8.0 => r3
    fmul r2, r3 => r4
    sqrt r4 => r5
    f2i r5 => r6
    ret r6
}
`
	f := ir.MustParseFunc(src)
	sccp.Run(f)
	if got := run(t, f, 0); got.I != 4 {
		t.Fatalf("got %d, want 4", got.I)
	}
	if countOps(f, ir.OpSqrt) != 0 {
		t.Errorf("sqrt of constant not folded\n%s", f)
	}
}
