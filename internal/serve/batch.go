package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// BatchRequest is the POST /optimize/batch body: many programs
// optimized in one HTTP round trip.  Defaults, when set, fill the
// corresponding empty fields of every item, so a homogeneous corpus
// need not repeat its level/backends per item.
type BatchRequest struct {
	Items    []OptimizeRequest `json:"items"`
	Defaults *BatchDefaults    `json:"defaults,omitempty"`
}

// BatchDefaults are request fields applied to items that leave them
// empty.
type BatchDefaults struct {
	Lang   string `json:"lang,omitempty"`
	Format string `json:"format,omitempty"`
	Level  string `json:"level,omitempty"`
	GVN    string `json:"gvn,omitempty"`
	PRE    string `json:"pre,omitempty"`
	Check  bool   `json:"check,omitempty"`
}

// BatchItemResult is one item's outcome.  Exactly one of Error or the
// embedded response is meaningful: a failed item carries its error and
// the HTTP status it would have received as a single request, without
// disturbing its siblings.
type BatchItemResult struct {
	Index  int    `json:"index"`
	Error  string `json:"error,omitempty"`
	Status int    `json:"status,omitempty"`
	*OptimizeResponse
}

// BatchResponse is the POST /optimize/batch reply; Items preserves
// request order.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// handleBatch is the batch endpoint: decode once, fan the items over
// the cache and worker pool (grouping peer-owned items into sub-batch
// forwards), reassemble in order.  Item failures are isolated; the
// batch itself only fails on transport-level problems (bad JSON, too
// many items).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.metrics.batchRequests.Add(1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Items) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch: no items"))
		return
	}
	if len(req.Items) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch: %d items exceeds the %d-item limit", len(req.Items), s.cfg.MaxBatch))
		return
	}
	s.metrics.batchItems.Add(int64(len(req.Items)))
	if req.Defaults != nil {
		for i := range req.Items {
			applyDefaults(&req.Items[i], req.Defaults)
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()

	results := make([]BatchItemResult, len(req.Items))
	specs := make([]*reqSpec, len(req.Items))
	for i := range req.Items {
		results[i].Index = i
		spec, err := s.prepare(&req.Items[i])
		if err != nil {
			results[i].Error = err.Error()
			results[i].Status = http.StatusBadRequest
			continue
		}
		specs[i] = spec
	}

	// Route each prepared item: ring-owned-elsewhere items group into
	// one sub-batch per owner (unless this batch was itself forwarded —
	// the loop guard applies to items exactly as it does to single
	// requests); the rest run here.
	local := make([]int, 0, len(specs))
	byOwner := map[string][]int{}
	forwarded := r.Header.Get(forwardHeader) != ""
	for i, spec := range specs {
		if spec == nil {
			continue
		}
		if owner, isLocal := s.ownerOf(spec.key); !isLocal && !forwarded {
			byOwner[owner] = append(byOwner[owner], i)
		} else {
			local = append(local, i)
		}
	}

	var wg sync.WaitGroup
	for owner, idxs := range byOwner {
		wg.Add(1)
		go func(owner string, idxs []int) {
			defer wg.Done()
			if !s.forwardSubBatch(ctx, owner, &req, idxs, results) {
				// Owner unreachable: serve the group locally instead.
				var lwg sync.WaitGroup
				for _, i := range idxs {
					lwg.Add(1)
					go func(i int) {
						defer lwg.Done()
						s.serveBatchItem(ctx, specs[i], &results[i])
					}(i)
				}
				lwg.Wait()
			}
		}(owner, idxs)
	}
	for _, i := range local {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.serveBatchItem(ctx, specs[i], &results[i])
		}(i)
	}
	wg.Wait()

	writeJSON(w, http.StatusOK, &BatchResponse{Items: results})
}

// serveBatchItem answers one item locally.  Batch items use the
// blocking pool admission (the batch as a whole was already admitted),
// so a deep batch never shreds itself on its own queue pressure.
func (s *Server) serveBatchItem(ctx context.Context, spec *reqSpec, out *BatchItemResult) {
	res, outcome, err := s.serveLocal(ctx, spec, true)
	if err == nil {
		var resp *OptimizeResponse
		if resp, err = s.respond(ctx, spec, res, outcome); err == nil {
			out.OptimizeResponse = resp
			return
		}
	}
	out.Error = err.Error()
	out.Status = statusFor(err)
	switch out.Status {
	case http.StatusServiceUnavailable:
		s.metrics.rejected.Add(1)
	case http.StatusGatewayTimeout:
		s.metrics.timeouts.Add(1)
	default:
		s.metrics.errors.Add(1)
	}
}

// forwardSubBatch sends the given items to their ring owner as one
// batch request and folds the per-item results back into results
// (remapping the sub-batch's indices onto ours).  It reports whether
// the forward round-trip succeeded; on failure the caller serves the
// group locally.
func (s *Server) forwardSubBatch(ctx context.Context, owner string, req *BatchRequest, idxs []int, results []BatchItemResult) bool {
	sub := BatchRequest{Items: make([]OptimizeRequest, len(idxs))}
	for si, i := range idxs {
		sub.Items[si] = req.Items[i]
	}
	body, err := json.Marshal(&sub)
	if err != nil {
		s.metrics.peerForwardErrors.Add(1)
		return false
	}
	status, _, respBody, err := s.peers.forward(ctx, owner, "/optimize/batch", body)
	if err != nil {
		s.metrics.peerForwardErrors.Add(1)
		return false
	}
	if status != http.StatusOK {
		// The owner answered but rejected the sub-batch wholesale (e.g.
		// it is draining).  Treat like unreachability: serve locally.
		s.metrics.peerForwardErrors.Add(1)
		return false
	}
	var subResp BatchResponse
	if err := json.Unmarshal(respBody, &subResp); err != nil || len(subResp.Items) != len(idxs) {
		s.metrics.peerForwardErrors.Add(1)
		return false
	}
	s.metrics.peerForwards.Add(1)
	for si, i := range idxs {
		item := subResp.Items[si]
		item.Index = i
		results[i] = item
	}
	return true
}

func applyDefaults(item *OptimizeRequest, d *BatchDefaults) {
	if item.Lang == "" {
		item.Lang = d.Lang
	}
	if item.Format == "" {
		item.Format = d.Format
	}
	if item.Level == "" {
		item.Level = d.Level
	}
	if item.GVN == "" {
		item.GVN = d.GVN
	}
	if item.PRE == "" {
		item.PRE = d.PRE
	}
	if d.Check {
		item.Check = true
	}
}
