package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func batchSrc(i int) string {
	return fmt.Sprintf(`
func driver(n: int): int {
    var s: int = %d
    for i = 1 to n {
        s = s + i * n + %d
    }
    return s
}
`, i, i*5)
}

func postBatch(t *testing.T, ts *httptest.Server, req BatchRequest) (int, BatchResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/optimize/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad batch response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out, string(raw)
}

// TestBatchEndpoint: many programs in one request come back in order,
// byte-identical to what the single endpoint returns for the same
// programs, with duplicates answered from the cache/flight table.
func TestBatchEndpoint(t *testing.T) {
	s := newServer(t, Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Single-endpoint ground truth.
	singles := make([]OptimizeResponse, 3)
	for i := range singles {
		code, out, raw := postOptimize(t, ts, OptimizeRequest{Source: batchSrc(i), Level: "dist"})
		if code != 200 {
			t.Fatalf("single %d: %d %s", i, code, raw)
		}
		singles[i] = out
	}

	req := BatchRequest{
		Defaults: &BatchDefaults{Level: "dist"},
		Items: []OptimizeRequest{
			{Source: batchSrc(0)},
			{Source: batchSrc(1)},
			{Source: batchSrc(2)},
			{Source: batchSrc(0)}, // duplicate of item 0
		},
	}
	code, out, raw := postBatch(t, ts, req)
	if code != 200 {
		t.Fatalf("batch: %d %s", code, raw)
	}
	if len(out.Items) != 4 {
		t.Fatalf("batch returned %d items, want 4", len(out.Items))
	}
	for i, item := range out.Items {
		if item.Index != i {
			t.Errorf("item %d carries index %d", i, item.Index)
		}
		if item.Error != "" || item.OptimizeResponse == nil {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		want := singles[i%3]
		if item.Key != want.Key || item.ILOC != want.ILOC || item.StaticOps != want.StaticOps {
			t.Errorf("item %d differs from the single-endpoint result", i)
		}
		if !item.Cached {
			t.Errorf("item %d should have hit the cache seeded by the single requests", i)
		}
	}
	m := s.Metrics()
	if m.Get("batch_requests") != 1 {
		t.Errorf("batch_requests = %d, want 1", m.Get("batch_requests"))
	}
	if m.Get("batch_items") != 4 {
		t.Errorf("batch_items = %d, want 4", m.Get("batch_items"))
	}
	// Only the three seed singles computed; the batch was pure hits.
	if m.Get("cache_misses") != 3 {
		t.Errorf("cache_misses = %d, want 3", m.Get("cache_misses"))
	}
}

// TestBatchColdDedup: a cold batch containing duplicates computes each
// distinct program once (cache or single-flight coalescing between
// items of the same batch).
func TestBatchColdDedup(t *testing.T) {
	s := newServer(t, Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	items := make([]OptimizeRequest, 8)
	for i := range items {
		items[i] = OptimizeRequest{Source: batchSrc(i % 2), Level: "dist"}
	}
	code, out, raw := postBatch(t, ts, BatchRequest{Items: items})
	if code != 200 {
		t.Fatalf("batch: %d %s", code, raw)
	}
	for i := range out.Items {
		if out.Items[i].Error != "" {
			t.Fatalf("item %d: %s", i, out.Items[i].Error)
		}
		if out.Items[i].ILOC != out.Items[i%2].ILOC {
			t.Errorf("duplicate item %d differs from item %d", i, i%2)
		}
	}
	if misses := s.Metrics().Get("cache_misses"); misses != 2 {
		t.Errorf("cache_misses = %d, want 2 (8 items, 2 distinct programs)", misses)
	}
}

// TestBatchItemIsolation: one broken item fails alone with its own
// status; its siblings still succeed; the batch itself is a 200.
func TestBatchItemIsolation(t *testing.T) {
	s := newServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, out, raw := postBatch(t, ts, BatchRequest{Items: []OptimizeRequest{
		{Source: batchSrc(0), Level: "dist"},
		{Source: "func broken("},              // parse error
		{Source: batchSrc(1), Level: "bogus"}, // unknown level
		{Source: batchSrc(1), Level: "reassoc"},
	}})
	if code != 200 {
		t.Fatalf("batch: %d %s", code, raw)
	}
	if out.Items[0].Error != "" || out.Items[3].Error != "" {
		t.Errorf("good items failed: %q / %q", out.Items[0].Error, out.Items[3].Error)
	}
	for _, i := range []int{1, 2} {
		if out.Items[i].Error == "" || out.Items[i].Status != http.StatusBadRequest {
			t.Errorf("bad item %d: error=%q status=%d, want a 400", i, out.Items[i].Error, out.Items[i].Status)
		}
	}
}

// TestBatchLimits: an empty batch and an oversized batch are transport
// errors, not item errors; defaults do not override explicit fields.
func TestBatchLimits(t *testing.T) {
	s := newServer(t, Config{MaxBatch: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _, raw := postBatch(t, ts, BatchRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty batch: %d %s", code, raw)
	}
	big := BatchRequest{Items: make([]OptimizeRequest, 3)}
	for i := range big.Items {
		big.Items[i] = OptimizeRequest{Source: batchSrc(i)}
	}
	if code, _, raw := postBatch(t, ts, big); code != http.StatusBadRequest {
		t.Errorf("oversized batch: %d %s", code, raw)
	}
	resp, err := ts.Client().Post(ts.URL+"/optimize/batch", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", resp.StatusCode)
	}

	// Defaults fill empty fields only.
	code, out, raw := postBatch(t, ts, BatchRequest{
		Defaults: &BatchDefaults{Level: "none"},
		Items: []OptimizeRequest{
			{Source: batchSrc(0)},
			{Source: batchSrc(0), Level: "dist"},
		},
	})
	if code != 200 {
		t.Fatalf("%d %s", code, raw)
	}
	if out.Items[0].Level != "none" || out.Items[1].Level != "distribution" {
		t.Errorf("levels = %q, %q; want none, distribution", out.Items[0].Level, out.Items[1].Level)
	}
}
